// Package pipemap is a library for optimally mapping pipelines of data
// parallel tasks onto parallel machines, reproducing Subhlok & Vondran,
// "Optimal Mapping of Sequences of Data Parallel Tasks" (PPoPP 1995).
//
// An application is a linear chain of data parallel tasks processing a
// stream of data sets. Each task has an execution time that is a function
// of its processor count; adjacent tasks communicate through internal
// redistributions (same processors) or external transfers (disjoint
// processors). A mapping clusters tasks into modules, assigns each module
// an exclusive processor set, and optionally replicates modules across
// alternate data sets. pipemap finds the mapping that maximizes
// throughput:
//
//	chain := &pipemap.Chain{ ... }
//	res, err := pipemap.Map(pipemap.Request{
//	    Chain:    chain,
//	    Platform: pipemap.Platform{Procs: 64, MemPerProc: 0.5},
//	})
//	fmt.Println(res.Mapping.String(), res.Throughput)
//
// Two algorithms are provided: a provably optimal dynamic program
// (O(P^4 k^2), section 3 of the paper) and a fast greedy heuristic
// (O(P k), section 4) that is optimal in practice; Map picks automatically
// unless told otherwise. Cost models can be fitted from profiled runs
// (EstimateChain, section 5), mappings can be validated against machine
// geometry (rectangular subarrays and systolic pathways, section 6.1),
// and the Simulate function "runs" a mapping under the paper's execution
// model to measure its throughput.
package pipemap

import (
	"io"
	"net/http"

	"pipemap/internal/adapt"
	"pipemap/internal/core"
	"pipemap/internal/estimate"
	"pipemap/internal/fleet"
	"pipemap/internal/fxrt"
	"pipemap/internal/greedy"
	"pipemap/internal/ingest"
	"pipemap/internal/machine"
	"pipemap/internal/model"
	"pipemap/internal/obs"
	"pipemap/internal/obs/live"
	"pipemap/internal/obs/slo"
	"pipemap/internal/sim"
	"pipemap/internal/tradeoff"
)

// Core model types.
type (
	// Chain is a linear sequence of data parallel tasks with edge costs.
	Chain = model.Chain
	// Task is one data parallel task.
	Task = model.Task
	// Memory is a task's memory requirement (fixed, data, buffers).
	Memory = model.Memory
	// Platform is the processor budget and per-processor memory capacity.
	Platform = model.Platform
	// Module is a mapped cluster of tasks with processors and replicas.
	Module = model.Module
	// Mapping assigns a chain to processors.
	Mapping = model.Mapping
	// Span is a [Lo, Hi) range of task indices.
	Span = model.Span
	// CostFunc is a time as a function of one processor count.
	CostFunc = model.CostFunc
	// CommFunc is a transfer time as a function of sender and receiver
	// processor counts.
	CommFunc = model.CommFunc
	// PolyExec is the paper's polynomial execution model C1 + C2/p + C3*p.
	PolyExec = model.PolyExec
	// PolyComm is the paper's polynomial transfer model
	// C1 + C2/ps + C3/pr + C4*ps + C5*pr.
	PolyComm = model.PolyComm
	// TableCost is a tabulated, interpolated cost function.
	TableCost = model.TableCost
)

// Mapping tool types.
type (
	// Request describes a mapping problem for Map.
	Request = core.Request
	// Result is a mapping solution.
	Result = core.Result
	// Algorithm selects DP, Greedy, or Auto.
	Algorithm = core.Algorithm
)

// Algorithm values.
const (
	// Auto picks DP for small instances, Greedy otherwise.
	Auto = core.Auto
	// DP is the optimal dynamic programming algorithm.
	DP = core.DP
	// Greedy is the fast heuristic.
	Greedy = core.Greedy
)

// Machine geometry types.
type (
	// Grid is a rectangular processor array.
	Grid = machine.Grid
	// Constraints are machine feasibility rules (rectangles, pathways).
	Constraints = machine.Constraints
	// Layout places module instances on a grid.
	Layout = machine.Layout
)

// Estimation types.
type (
	// Profiler measures a chain under a mapping.
	Profiler = estimate.Profiler
	// Measurement is one profiled execution.
	Measurement = estimate.Measurement
	// ExecSample is a (processors, time) observation.
	ExecSample = estimate.ExecSample
	// CommSample is a (sender, receiver, time) observation.
	CommSample = estimate.CommSample
)

// Simulation types.
type (
	// SimOptions configures the execution-model simulator.
	SimOptions = sim.Options
	// SimResult is a simulated run's statistics.
	SimResult = sim.Result
	// SimFailure schedules a fail-stop processor failure on the simulated
	// timeline (see SimOptions.Failures).
	SimFailure = sim.FailureEvent
)

// Map computes the throughput-optimal mapping for a request, optionally
// subject to machine constraints.
func Map(req Request) (Result, error) { return core.Map(req) }

// Remap recomputes the optimal mapping after lostProcs processors have
// failed, the degraded-mode workflow: when the runtime declares instances
// dead, remap onto the surviving processor count and rebuild the pipeline
// from the returned mapping.
func Remap(req Request, lostProcs int) (Result, error) { return core.Remap(req, lostProcs) }

// DataParallel returns the pure data parallel mapping (all tasks on all
// processors), the baseline of the paper's Table 2.
func DataParallel(c *Chain, pl Platform) Mapping { return model.DataParallel(c, pl) }

// Simulate runs a mapping on the discrete-event execution-model simulator
// and returns measured statistics.
func Simulate(m Mapping, opt SimOptions) (SimResult, error) { return sim.New(opt).Run(m) }

// NewTableCost builds a tabulated cost function from (processors, time)
// points with linear interpolation.
func NewTableCost(points map[int]float64) (*TableCost, error) { return model.NewTableCost(points) }

// ZeroExec returns an identically zero cost function (e.g. for free
// internal redistributions between tasks sharing a distribution).
func ZeroExec() CostFunc { return model.ZeroExec() }

// ZeroComm returns an identically zero transfer function.
func ZeroComm() CommFunc { return model.ZeroComm() }

// EstimateChain profiles an application through the paper's eight training
// runs and returns a chain with fitted polynomial cost models. structure
// provides task names, memory and replicability.
func EstimateChain(structure *Chain, prof Profiler, pl Platform) (*Chain, error) {
	return estimate.EstimateChain(structure, prof, pl)
}

// TrainingPlan returns the paper's eight training mappings for a chain.
func TrainingPlan(c *Chain, pl Platform) ([]Mapping, error) {
	return estimate.TrainingPlan(c, pl)
}

// FitExec fits the execution model C1 + C2/p + C3*p to samples.
func FitExec(samples []ExecSample) (PolyExec, error) { return estimate.FitExec(samples) }

// FitComm fits the transfer model C1 + C2/ps + C3/pr + C4*ps + C5*pr.
func FitComm(samples []CommSample) (PolyComm, error) { return estimate.FitComm(samples) }

// Feasible reports whether a mapping satisfies machine constraints,
// returning its grid layout when it does.
func Feasible(m Mapping, cons Constraints) (Layout, bool) { return machine.Feasible(m, cons) }

// Singletons returns the clustering with every task in its own module.
func Singletons(k int) []Span { return model.Singletons(k) }

// AllClusterings enumerates the 2^(k-1) contiguous clusterings of k tasks.
func AllClusterings(k int) [][]Span { return model.AllClusterings(k) }

// Latency-throughput trade-off (extension beyond the paper; latency is
// deferred to Vondran's thesis there).
type (
	// TradeoffPoint is one Pareto-optimal mapping.
	TradeoffPoint = tradeoff.Point
	// TradeoffOptions configures the frontier exploration.
	TradeoffOptions = tradeoff.Options
)

// Frontier returns the Pareto frontier of (throughput, latency) mappings.
func Frontier(c *Chain, pl Platform, opt TradeoffOptions) ([]TradeoffPoint, error) {
	return tradeoff.Frontier(c, pl, opt)
}

// MinLatency returns the mapping minimizing one data set's traversal time.
func MinLatency(c *Chain, pl Platform, opt TradeoffOptions) (Mapping, error) {
	return tradeoff.MinLatency(c, pl, opt)
}

// BestThroughputUnderLatency returns the fastest mapping whose latency
// stays within the bound.
func BestThroughputUnderLatency(c *Chain, pl Platform, bound float64, opt TradeoffOptions) (Mapping, error) {
	return tradeoff.BestThroughputUnderLatency(c, pl, bound, opt)
}

// Certificate reports whether the greedy heuristic is provably optimal
// for a chain, per the paper's Theorems 1 and 2.
type Certificate = greedy.Certificate

// Certify analyzes a chain's cost functions and reports which greedy
// configuration, if any, is provably optimal for it.
func Certify(c *Chain, pl Platform) Certificate { return greedy.Certify(c, pl) }

// Observability types (extension; see DESIGN.md §8). Attach a Tracer
// and/or MetricsRegistry to Request.Trace / Request.Metrics to collect
// solver spans and counters; nil instruments are disabled and free.
type (
	// Tracer collects spans and writes Chrome trace_event JSON for
	// chrome://tracing or ui.perfetto.dev.
	Tracer = obs.Tracer
	// MetricsRegistry collects counters, gauges and timing histograms,
	// exportable as JSON or expvar-style text via Snapshot.
	MetricsRegistry = obs.Registry
	// MetricsSnapshot is a point-in-time copy of a registry.
	MetricsSnapshot = obs.Snapshot
)

// NewTracer returns an enabled trace collector.
func NewTracer() *Tracer { return obs.NewTracer() }

// NewMetricsRegistry returns an enabled metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// Live observability types (extension; see DESIGN.md §9). A LiveMonitor
// ingests per-attempt runtime observations (stage completions with
// latency, retries, timeouts, drops, instance deaths) and computes a
// pipeline health model against the mapping's predictions: per-stage
// observed period vs f_i/r_i, current bottleneck stage, replica liveness,
// degraded-vs-nominal status. LiveServer exposes it over embeddable HTTP:
// /metrics (Prometheus text 0.0.4), /healthz, /readyz, /pipeline JSON,
// /events NDJSON, /debug/pprof. A nil *LiveMonitor is the disabled
// instrument: every method is a no-op and allocation-free.
type (
	// LiveMonitor is the ingestion point and health-model evaluator.
	LiveMonitor = live.Monitor
	// LiveConfig declares the monitored stages and window/clock options.
	LiveConfig = live.Config
	// LiveStageInfo describes one monitored stage (name, replicas,
	// predicted per-data-set period).
	LiveStageInfo = live.StageInfo
	// LiveHealth is the computed health model, JSON-serializable (the
	// /pipeline payload).
	LiveHealth = live.Health
	// LiveServer is the embeddable HTTP server over a monitor.
	LiveServer = live.Server
	// LiveServerOptions configures the server (monitor, extra registry,
	// static snapshot source, pprof toggle).
	LiveServerOptions = live.ServerOptions
	// LiveEvent is one streamed pipeline event (/events NDJSON records).
	LiveEvent = live.Event
)

// NewLiveMonitor returns an enabled monitor for the configured stages.
func NewLiveMonitor(cfg LiveConfig) *LiveMonitor { return live.NewMonitor(cfg) }

// LiveConfigFromMapping derives monitor configuration from a solved
// mapping: one stage per module with the model-predicted period
// f_i/r_i as the health baseline.
func LiveConfigFromMapping(m Mapping) LiveConfig { return live.ConfigFromMapping(m) }

// NewLiveServer returns an unstarted server; call Start(addr) to listen
// or mount Handler() into an existing mux.
func NewLiveServer(opt LiveServerOptions) *LiveServer { return live.NewServer(opt) }

// Adaptive remapping types (extension; see DESIGN.md §10). An
// AdaptController closes the loop over a served pipeline: it ingests
// per-stage observed service times and replica liveness from a
// LiveMonitor's health model, incrementally refits the cost models online,
// periodically re-solves the mapping against the refitted models and the
// surviving processor count, and decides hold / migrate / rollback under a
// hysteresis threshold. An AdaptRuntime executes those decisions on the
// fault-tolerant runtime with bounded-segment drain-and-switch migration.
type (
	// AdaptConfig configures the controller (chain, platform, initial
	// mapping, thresholds, decision-latency budget).
	AdaptConfig = adapt.Config
	// AdaptController is the closed-loop decision engine.
	AdaptController = adapt.Controller
	// AdaptDecision is one controller cycle's outcome.
	AdaptDecision = adapt.Decision
	// AdaptStatus is the controller state served on /pipeline.
	AdaptStatus = adapt.Status
	// AdaptObservation is one segment's runtime evidence for Step.
	AdaptObservation = adapt.Observation
	// AdaptRuntime executes controller decisions on the fault-tolerant
	// runtime with segment-bounded live migration.
	AdaptRuntime = adapt.Runtime
)

// NewAdaptController validates the configuration and returns a controller
// at generation 0 on the initial mapping.
func NewAdaptController(cfg AdaptConfig) (*AdaptController, error) { return adapt.NewController(cfg) }

// Ingestion data plane types (extension; see DESIGN.md §11). An
// IngestPlane fronts a running pipeline stream with a bounded multi-tenant
// admission queue: weighted fair dequeue, per-tenant rate limits,
// deadline-based load shedding (predictive at admission, CoDel-style head
// drop at dispatch), a replica-liveness circuit breaker, live migration
// via Swap, and zero-loss graceful drain. Rejections are structured
// IngestShedError values that map onto HTTP 429/503.
type (
	// IngestConfig configures the plane (queue bounds, dispatchers,
	// deadline budget, breaker floor, metrics registry).
	IngestConfig = ingest.Config
	// IngestQueueConfig bounds the admission queue (depth, per-tenant
	// rate/burst, weights, tenant cap).
	IngestQueueConfig = ingest.QueueConfig
	// IngestPlane is the data plane; Submit blocks for an outcome.
	IngestPlane = ingest.Plane
	// IngestOutcome is one request's result (output, error, sojourn,
	// service time).
	IngestOutcome = ingest.Outcome
	// IngestShedError is a structured overload rejection with a reason
	// and optional retry-after hint.
	IngestShedError = ingest.ShedError
	// IngestCodec translates HTTP JSON payloads to pipeline data sets.
	IngestCodec = ingest.Codec
	// IngestStats is the plane's observable state (served on /v1/ingest
	// and under /pipeline's "ingest" key).
	IngestStats = ingest.Stats
)

// NewIngestPlane starts a stream of pl and builds the admission plane
// around it.
func NewIngestPlane(cfg IngestConfig, pl *fxrt.Pipeline, opts fxrt.StreamOptions) (*IngestPlane, error) {
	return ingest.New(cfg, pl, opts)
}

// Request-scoped tracing and SLO types (extension; see DESIGN.md §13). A
// ReqTracer makes head-based sampling decisions at the ingest door
// (honoring W3C traceparent), collects per-request spans across admission,
// queue wait, every pipeline stage attempt, and the response, and fans
// finished traces out to a bounded NDJSON SpanExporter and an in-memory
// FlightRecorder ring served on /debug/flightrecorder. An SLOEngine
// ingests request outcomes and evaluates availability and latency
// objectives with multi-window burn-rate alerting (/slo). All of it
// follows the house nil-is-disabled, zero-alloc-when-off contract.
type (
	// ReqTracer is the sampling and fan-out hub; set it on IngestConfig.
	ReqTracer = obs.ReqTracer
	// ReqTracerConfig configures sampling rate, exporter and recorder.
	ReqTracerConfig = obs.ReqTracerConfig
	// ReqTrace accumulates one sampled request's spans.
	ReqTrace = obs.ReqTrace
	// TraceID is a W3C trace-context ID (16 bytes, lowercase hex wire
	// form).
	TraceID = obs.TraceID
	// FlightRecorder is the lock-free ring of recent request traces and
	// shed/adapt decisions.
	FlightRecorder = obs.FlightRecorder
	// FlightEntry is one recorded flight-recorder event.
	FlightEntry = obs.FlightEntry
	// SpanExporter writes finished traces as NDJSON without ever
	// blocking the data plane.
	SpanExporter = obs.SpanExporter
	// SLOEngine evaluates service-level objectives over request
	// outcomes.
	SLOEngine = slo.Engine
	// SLOConfig declares the objectives, alert windows and tenant
	// scoping.
	SLOConfig = slo.Config
	// SLOObjective is one availability or latency objective.
	SLOObjective = slo.Objective
	// SLOReport is the /slo payload.
	SLOReport = slo.Report
)

// NewReqTracer builds the request-tracing hub.
func NewReqTracer(cfg ReqTracerConfig) *ReqTracer { return obs.NewReqTracer(cfg) }

// NewFlightRecorder builds a ring keeping the last size entries.
func NewFlightRecorder(size int) *FlightRecorder { return obs.NewFlightRecorder(size) }

// NewSpanExporter starts an NDJSON span exporter writing to w with the
// given buffer depth (0 = default).
func NewSpanExporter(w io.Writer, buf int) *SpanExporter { return obs.NewSpanExporter(w, buf) }

// NewSLOEngine builds an SLO engine.
func NewSLOEngine(cfg SLOConfig) *SLOEngine { return slo.New(cfg) }

// Fleet scheduler types (extension; see DESIGN.md §14). A Fleet admits
// many tenant chain specs against one shared processor pool, partitions
// the pool by a weighted-priority policy, and maps every pipeline through
// a solve-once-place-many cache: identical specs (by the canonical spec
// hash) solve exactly once no matter how many tenants submit them.
// Tenant departure, processor failure, and preemptive eviction rebalance
// the pool and re-place only the pipelines whose allocation changed.
type (
	// Fleet is the multi-pipeline scheduler over one shared pool.
	Fleet = fleet.Fleet
	// FleetConfig configures the pool, optional grid, solver knobs, and
	// metrics registry.
	FleetConfig = fleet.Config
	// FleetSpec is one tenant's admission request (chain plus priority
	// and allocation-cap hints).
	FleetSpec = fleet.Spec
	// FleetPlacement is the externally visible state of one admitted
	// pipeline (allocation, region, mapping, placement generation).
	FleetPlacement = fleet.Placement
	// FleetStats is the counter snapshot; at quiesce Admitted ==
	// Placed + Departed + Evicted.
	FleetStats = fleet.Stats
	// FleetState is the /fleet JSON payload (stats plus placements).
	FleetState = fleet.State
	// FleetCache is the fleet-level solve cache grouping specs into
	// structural families.
	FleetCache = fleet.Cache
	// FleetCacheStats aggregates hit/miss/solve counters across the
	// cache's families.
	FleetCacheStats = fleet.CacheStats
)

// NewFleet builds an empty fleet scheduler over the configured pool.
func NewFleet(cfg FleetConfig) (*Fleet, error) { return fleet.New(cfg) }

// NewFleetCache builds a standalone fleet solve cache.
func NewFleetCache() *FleetCache { return fleet.NewCache() }

// FleetStateHandler serves a fleet's state as JSON on GET (mount at
// /fleet); FleetFailHandler injects processor failures on POST and runs
// onRebalance after the fleet has re-placed the survivors.
func FleetStateHandler(f *Fleet) http.Handler { return fleet.StateHandler(f) }

// FleetFailHandler is the POST /fleet/fail handler.
func FleetFailHandler(f *Fleet, onRebalance func()) http.Handler {
	return fleet.FailHandler(f, onRebalance)
}

// Objective selects what Map optimizes.
type Objective = core.Objective

// Objective values for Request.Objective.
const (
	// ObjectiveMaxThroughput maximizes data sets per second (default, the
	// paper's objective).
	ObjectiveMaxThroughput = core.MaxThroughput
	// ObjectiveMinLatency minimizes one data set's traversal time.
	ObjectiveMinLatency = core.MinLatency
	// ObjectiveThroughputUnderLatency maximizes throughput subject to
	// Request.LatencyBound.
	ObjectiveThroughputUnderLatency = core.ThroughputUnderLatency
)
