#!/usr/bin/env sh
# Smoke test for the live serving modes. Three phases, selectable by the
# first argument (default: all):
#
#   serve   start `pipemap -serve` on the fft+histogram spec with an
#           injected instance death, scrape the endpoints, and fail on
#           malformed Prometheus exposition or a missing health signal.
#   adapt   run the adaptive controller (-adapt) with the same injected
#           death and require /pipeline to report a migrated generation.
#   ingest  stand up the real ingestion data plane (-ingest), submit a
#           data set and read the computed result back, overload it with a
#           concurrent burst and require structured 429/503 sheds plus a
#           positive ingest_shed_total, then SIGTERM it and require a
#           graceful zero-loss drain. Writes a summary to $INGEST_REPORT
#           (default: <tmp>/ingest_report.txt) for CI artifact upload.
#   trace   run the plane with full-rate tracing and span export, submit
#           under a fixed W3C traceparent, and require the trace ID echoed
#           in the response, the flight recorder, /slo, and — after a
#           graceful SIGTERM — the exported NDJSON span file. Writes the
#           trace artifacts to $TRACE_REPORT (default:
#           <tmp>/trace_report.txt) for CI upload.
#   fleet   start the fleet scheduler (-fleet) with the ffthist256 and
#           radar64 specs sharing one pool, submit to both tenants, kill a
#           quarter of the pool over POST /fleet/fail, and require a
#           rebalance generation bump, no over-allocation, live-swapped
#           planes that still answer, and a zero-loss drain on SIGTERM.
#           Writes a summary to $FLEET_REPORT (default:
#           <tmp>/fleet_report.txt) for CI artifact upload.
#
# CI runs this after the unit tests; it needs only curl and the go
# toolchain.
set -eu

PHASE=${1:-all}
OUT=$(mktemp -d)
PID=; PID2=; PID3=; PID4=; PID5=
trap 'kill $PID $PID2 $PID3 $PID4 $PID5 2>/dev/null || true; rm -rf "$OUT"' EXIT

fail() {
    echo "serve_smoke: $1" >&2
    exit 1
}

# wait_http URL LOG: poll until URL answers or give up.
wait_http() {
    i=0
    until curl -fsS "$1" >/dev/null 2>&1; do
        i=$((i + 1))
        if [ "$i" -ge 100 ]; then
            echo "serve_smoke: server at $1 never came up" >&2
            cat "$2" >&2
            exit 1
        fi
        sleep 0.2
    done
}

# wait_log PATTERN LOG: poll until the pattern appears in the log.
wait_log() {
    i=0
    until grep -q "$1" "$2"; do
        i=$((i + 1))
        if [ "$i" -ge 150 ]; then
            echo "serve_smoke: never saw '$1' in the run log" >&2
            cat "$2" >&2
            exit 1
        fi
        sleep 0.2
    done
}

phase_serve() {
    ADDR=127.0.0.1:9127
    go run ./cmd/pipemap -serve "$ADDR" -serve-n 120 -serve-speedup 400 \
        -serve-for 30s -serve-kill auto specs/ffthist256.json >"$OUT/run.log" 2>&1 &
    PID=$!

    wait_http "http://$ADDR/healthz" "$OUT/run.log"
    # Let the run finish so the injected death and final health are settled.
    wait_log "run complete" "$OUT/run.log"

    curl -fsS "http://$ADDR/healthz" | grep -q ok || fail "/healthz not ok"

    curl -fsS "http://$ADDR/metrics" >"$OUT/metrics"
    grep -q 'pipemap_stage_period_seconds{stage=' "$OUT/metrics" \
        || fail "/metrics missing stage period series"
    grep -q '^pipemap_up 1$' "$OUT/metrics" || fail "/metrics missing pipemap_up"
    grep -q '^pipemap_degraded 1$' "$OUT/metrics" \
        || fail "/metrics not degraded after injected death"
    # Lint: every non-comment line must be `name{labels} value`.
    BAD=$(grep -v '^#' "$OUT/metrics" | grep -cvE \
        '^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? (NaN|[+-]Inf|[-+0-9.eE]+)$' || true)
    [ "$BAD" -eq 0 ] || {
        grep -v '^#' "$OUT/metrics" | grep -vE \
            '^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? (NaN|[+-]Inf|[-+0-9.eE]+)$' >&2
        fail "malformed exposition lines"
    }

    curl -fsS "http://$ADDR/pipeline" >"$OUT/pipeline"
    grep -q '"bottleneckStage"' "$OUT/pipeline" || fail "/pipeline missing bottleneck"
    grep -q '"status": "degraded"' "$OUT/pipeline" || fail "/pipeline not degraded"

    # /readyz must report 503 while degraded.
    CODE=$(curl -s -o /dev/null -w '%{http_code}' "http://$ADDR/readyz")
    [ "$CODE" = 503 ] || fail "/readyz = $CODE, want 503 when degraded"

    kill $PID 2>/dev/null || true
    PID=
    echo "serve_smoke: serve phase ok"
}

phase_adapt() {
    ADDR2=127.0.0.1:9128
    go run ./cmd/pipemap -serve "$ADDR2" -serve-n 400 -serve-speedup 400 \
        -serve-for 30s -serve-kill auto \
        -adapt -adapt-interval 250ms -adapt-threshold 0.02 \
        specs/threestage.json >"$OUT/adapt.log" 2>&1 &
    PID2=$!

    wait_http "http://$ADDR2/healthz" "$OUT/adapt.log"

    # Poll /pipeline until the controller reports a post-migration
    # generation; fail on timeout — the injected death must trigger a remap.
    i=0
    while :; do
        curl -fsS "http://$ADDR2/pipeline" >"$OUT/adapt_pipeline" 2>/dev/null || true
        if grep -q '"generation": [1-9]' "$OUT/adapt_pipeline"; then
            break
        fi
        i=$((i + 1))
        if [ "$i" -ge 150 ]; then
            echo "serve_smoke: controller never migrated to a new generation" >&2
            cat "$OUT/adapt_pipeline" >&2
            cat "$OUT/adapt.log" >&2
            exit 1
        fi
        sleep 0.2
    done

    grep -q '"controller"' "$OUT/adapt_pipeline" || fail "/pipeline missing controller state"
    grep -q '"lastDecision"' "$OUT/adapt_pipeline" || fail "/pipeline missing last decision"

    curl -fsS "http://$ADDR2/metrics" >"$OUT/adapt_metrics"
    grep -q 'adapt_cycles' "$OUT/adapt_metrics" || fail "/metrics missing adapt_cycles"
    grep -q 'adapt_migrations' "$OUT/adapt_metrics" || fail "/metrics missing adapt_migrations"

    kill $PID2 2>/dev/null || true
    PID2=
    echo "serve_smoke: adapt phase ok"
}

phase_ingest() {
    ADDR3=127.0.0.1:9129
    REPORT=${INGEST_REPORT:-$OUT/ingest_report.txt}
    # A real binary (not `go run`) so SIGTERM reaches the server directly
    # and the graceful-drain path is what's exercised.
    go build -o "$OUT/pipemap" ./cmd/pipemap
    "$OUT/pipemap" -serve "$ADDR3" -ingest ffthist -ingest-size 64 \
        -queue-depth 4 -ingest-dispatchers 1 -shed-deadline 10s \
        specs/ffthist256.json >"$OUT/ingest.log" 2>&1 &
    PID3=$!

    wait_http "http://$ADDR3/healthz" "$OUT/ingest.log"

    # A well-formed submission returns a computed histogram.
    curl -fsS -X POST -H 'Content-Type: application/json' \
        -d '{"tenant":"smoke","input":{"seed":1}}' \
        "http://$ADDR3/v1/submit" >"$OUT/submit.json" \
        || fail "POST /v1/submit failed"
    grep -q '"result"' "$OUT/submit.json" || fail "/v1/submit carries no result"
    grep -q '"count"' "$OUT/submit.json" || fail "/v1/submit result has no histogram count"

    # Overload burst: 80 concurrent submissions against queue depth 4 and a
    # single dispatcher. The plane must keep answering — some 200s, and the
    # overflow shed with structured 429/503 responses, never a hang.
    mkdir -p "$OUT/burst"
    BPIDS=
    i=0
    while [ "$i" -lt 80 ]; do
        (
            curl -s -o "$OUT/burst/body.$i" -w '%{http_code}' \
                -X POST -H 'Content-Type: application/json' \
                -d "{\"tenant\":\"t$((i % 4))\",\"input\":{\"seed\":$i}}" \
                "http://$ADDR3/v1/submit" >"$OUT/burst/code.$i"
        ) &
        BPIDS="$BPIDS $!"
        i=$((i + 1))
    done
    # Wait for the burst only — a bare `wait` would also wait on the
    # server, which is still running.
    wait $BPIDS
    # The status files carry no trailing newline; count per-file with -l.
    OK=$(grep -lx '200' "$OUT"/burst/code.* 2>/dev/null | wc -l)
    SHED=$(grep -lxE '429|503' "$OUT"/burst/code.* 2>/dev/null | wc -l)
    OTHER=$((80 - OK - SHED))
    [ "$OK" -ge 1 ] || fail "no burst submission completed (ok=$OK shed=$SHED other=$OTHER)"
    [ "$SHED" -ge 1 ] || fail "no burst submission shed (ok=$OK shed=$SHED other=$OTHER)"
    [ "$OTHER" -eq 0 ] || fail "burst produced unexpected statuses (ok=$OK shed=$SHED other=$OTHER)"
    # Shed bodies are structured errors.
    for f in "$OUT"/burst/code.*; do
        if grep -qxE '429|503' "$f"; then
            b="$OUT/burst/body.${f##*.}"
            grep -q '"reason"' "$b" || fail "shed body is not structured: $(cat "$b")"
            break
        fi
    done

    curl -fsS "http://$ADDR3/metrics" >"$OUT/ingest_metrics"
    grep -qE 'ingest_shed_total [1-9]' "$OUT/ingest_metrics" \
        || fail "/metrics ingest_shed_total not positive after overload"
    grep -q 'ingest_admit_total' "$OUT/ingest_metrics" \
        || fail "/metrics missing ingest_admit_total"

    curl -fsS "http://$ADDR3/v1/ingest" >"$OUT/ingest_stats.json"
    grep -q '"admitted"' "$OUT/ingest_stats.json" || fail "/v1/ingest missing stats"

    # Graceful drain: SIGTERM must flush in-flight work and exit cleanly.
    kill -TERM $PID3
    if ! wait $PID3; then
        cat "$OUT/ingest.log" >&2
        fail "server exited non-zero on SIGTERM"
    fi
    PID3=
    grep -q "drain complete" "$OUT/ingest.log" || fail "no drain summary after SIGTERM"

    {
        echo "# ingest overload smoke"
        echo "burst: 80 requests, ok=$OK shed=$SHED"
        echo
        echo "## /v1/ingest"
        cat "$OUT/ingest_stats.json"
        echo
        echo "## ingest metrics"
        grep '^ingest_' "$OUT/ingest_metrics" || true
        echo
        echo "## drain"
        grep -E 'drain|admitted' "$OUT/ingest.log" || true
    } >"$REPORT"
    echo "serve_smoke: ingest phase ok (report: $REPORT)"
}

phase_trace() {
    ADDR4=127.0.0.1:9130
    REPORT=${TRACE_REPORT:-$OUT/trace_report.txt}
    SPANS="$OUT/spans.ndjson"
    go build -o "$OUT/pipemap_trace" ./cmd/pipemap
    "$OUT/pipemap_trace" -serve "$ADDR4" -ingest ffthist -ingest-size 64 \
        -trace-sample 1 -trace-spans "$SPANS" -flight 64 \
        specs/ffthist256.json >"$OUT/trace.log" 2>&1 &
    PID4=$!

    wait_http "http://$ADDR4/healthz" "$OUT/trace.log"

    # Submit under a fixed W3C trace context; the sampled flag forces the
    # request into the trace even independent of the sample rate.
    TRACE_ID=4bf92f3577b34da6a3ce929d0e0e4736
    PARENT="00-$TRACE_ID-00f067aa0ba902b7-01"
    curl -fsS -D "$OUT/trace_headers" -X POST \
        -H 'Content-Type: application/json' -H "traceparent: $PARENT" \
        -d '{"tenant":"smoke","input":{"seed":1}}' \
        "http://$ADDR4/v1/submit" >"$OUT/trace_submit.json" \
        || fail "traced POST /v1/submit failed"
    grep -qi "^x-trace-id: $TRACE_ID" "$OUT/trace_headers" \
        || fail "response did not echo X-Trace-Id"
    grep -qi "^traceparent: 00-$TRACE_ID-" "$OUT/trace_headers" \
        || fail "response did not echo traceparent"
    grep -q "\"trace_id\": *\"$TRACE_ID\"" "$OUT/trace_submit.json" \
        || fail "response body carries no trace_id"

    # The flight recorder holds the request with its spans.
    curl -fsS "http://$ADDR4/debug/flightrecorder" >"$OUT/flight.json"
    grep -q "$TRACE_ID" "$OUT/flight.json" || fail "/debug/flightrecorder missing the trace"
    grep -q '"kind": *"stage"' "$OUT/flight.json" || fail "flight entry has no stage spans"

    # /slo serves objective reports; /metrics carries the burn gauges.
    curl -fsS "http://$ADDR4/slo" >"$OUT/slo.json"
    grep -q '"objectives"' "$OUT/slo.json" || fail "/slo missing objectives"
    grep -q '"availability"' "$OUT/slo.json" || fail "/slo missing availability objective"
    curl -fsS "http://$ADDR4/metrics" | grep -q 'slo_availability_compliance' \
        || fail "/metrics missing SLO gauges"

    # Graceful stop must flush the exporter: the span file ends up with the
    # full trace on disk.
    kill -TERM $PID4
    wait $PID4 || { cat "$OUT/trace.log" >&2; fail "server exited non-zero on SIGTERM"; }
    PID4=
    [ -s "$SPANS" ] || fail "span export file is empty"
    grep -q "$TRACE_ID" "$SPANS" || fail "span export missing the traced request"

    {
        echo "# trace smoke"
        echo "trace id: $TRACE_ID"
        echo
        echo "## /slo"
        cat "$OUT/slo.json"
        echo
        echo "## exported spans"
        cat "$SPANS"
    } >"$REPORT"
    echo "serve_smoke: trace phase ok (report: $REPORT)"
}

phase_fleet() {
    ADDR5=127.0.0.1:9131
    REPORT=${FLEET_REPORT:-$OUT/fleet_report.txt}
    # A real binary so SIGTERM reaches the server and drains every plane.
    go build -o "$OUT/pipemap_fleet" ./cmd/pipemap
    "$OUT/pipemap_fleet" -serve "$ADDR5" -fleet -ingest-size 64 \
        -queue-depth 8 -shed-deadline 10s \
        specs/ffthist256.json specs/radar64.json >"$OUT/fleet.log" 2>&1 &
    PID5=$!

    wait_http "http://$ADDR5/healthz" "$OUT/fleet.log"
    wait_log "fleet serving" "$OUT/fleet.log"

    # Both tenants placed, no over-allocation, and a recorded generation.
    curl -fsS "http://$ADDR5/fleet" >"$OUT/fleet_before.json" || fail "GET /fleet failed"
    grep -q '"ffthist256"' "$OUT/fleet_before.json" || fail "/fleet missing tenant ffthist256"
    grep -q '"radar64"' "$OUT/fleet_before.json" || fail "/fleet missing tenant radar64"
    grep -q '"placed": 2' "$OUT/fleet_before.json" || fail "/fleet does not report 2 placed pipelines"
    GEN_BEFORE=$(grep -o '"generation": [0-9]*' "$OUT/fleet_before.json" | head -1 | grep -o '[0-9]*')
    POOL=$(grep -o '"poolProcs": [0-9]*' "$OUT/fleet_before.json" | grep -o '[0-9]*')
    USED=$(grep -o '"usedProcs": [0-9]*' "$OUT/fleet_before.json" | grep -o '[0-9]*')
    [ "$USED" -le "$POOL" ] || fail "over-allocation before failure: used=$USED pool=$POOL"

    # Both tenants serve real kernel work on their own endpoints.
    curl -fsS -X POST -H 'Content-Type: application/json' \
        -d '{"tenant":"smoke","input":{"seed":1}}' \
        "http://$ADDR5/v1/ffthist256/submit" >"$OUT/fleet_fft.json" \
        || fail "POST /v1/ffthist256/submit failed"
    grep -q '"result"' "$OUT/fleet_fft.json" || fail "ffthist submit carries no result"
    curl -fsS -X POST -H 'Content-Type: application/json' \
        -d '{"tenant":"smoke","input":{"seed":2}}' \
        "http://$ADDR5/v1/radar64/submit" >"$OUT/fleet_radar.json" \
        || fail "POST /v1/radar64/submit failed"
    grep -q '"result"' "$OUT/fleet_radar.json" || fail "radar submit carries no result"

    # Kill a quarter of the pool; the response is the rebalanced state.
    KILL=$((POOL / 4))
    curl -fsS -X POST "http://$ADDR5/fleet/fail?n=$KILL" >"$OUT/fleet_failed.json" \
        || fail "POST /fleet/fail failed"

    # Poll /fleet for the rebalance generation bump and re-shrunk pool.
    i=0
    while :; do
        curl -fsS "http://$ADDR5/fleet" >"$OUT/fleet_after.json" 2>/dev/null || true
        GEN_AFTER=$(grep -o '"generation": [0-9]*' "$OUT/fleet_after.json" | head -1 | grep -o '[0-9]*' || echo 0)
        if [ "${GEN_AFTER:-0}" -gt "$GEN_BEFORE" ]; then
            break
        fi
        i=$((i + 1))
        if [ "$i" -ge 100 ]; then
            echo "serve_smoke: fleet generation never bumped past $GEN_BEFORE after failure" >&2
            cat "$OUT/fleet_after.json" >&2
            cat "$OUT/fleet.log" >&2
            exit 1
        fi
        sleep 0.2
    done
    POOL_AFTER=$(grep -o '"poolProcs": [0-9]*' "$OUT/fleet_after.json" | grep -o '[0-9]*')
    USED_AFTER=$(grep -o '"usedProcs": [0-9]*' "$OUT/fleet_after.json" | grep -o '[0-9]*')
    [ "$POOL_AFTER" -eq $((POOL - KILL)) ] || fail "pool after failure = $POOL_AFTER, want $((POOL - KILL))"
    [ "$USED_AFTER" -le "$POOL_AFTER" ] || fail "over-allocation after failure: used=$USED_AFTER pool=$POOL_AFTER"
    wait_log "remapped" "$OUT/fleet.log"

    # The survivors keep serving on their live-swapped planes.
    curl -fsS -X POST -H 'Content-Type: application/json' \
        -d '{"tenant":"smoke","input":{"seed":3}}' \
        "http://$ADDR5/v1/ffthist256/submit" >/dev/null \
        || fail "post-failure ffthist submit failed"
    curl -fsS -X POST -H 'Content-Type: application/json' \
        -d '{"tenant":"smoke","input":{"seed":4}}' \
        "http://$ADDR5/v1/radar64/submit" >/dev/null \
        || fail "post-failure radar submit failed"

    # fleet_* series are exposed and the exposition still lints.
    curl -fsS "http://$ADDR5/metrics" >"$OUT/fleet_metrics"
    grep -q 'fleet_admitted_total' "$OUT/fleet_metrics" || fail "/metrics missing fleet_admitted_total"
    grep -q 'fleet_pool_utilization' "$OUT/fleet_metrics" || fail "/metrics missing fleet_pool_utilization"
    grep -q 'fleet_cache_hit_rate' "$OUT/fleet_metrics" || fail "/metrics missing fleet_cache_hit_rate"
    grep -qE 'fleet_generation [1-9]' "$OUT/fleet_metrics" || fail "/metrics fleet_generation not positive"
    BAD=$(grep -v '^#' "$OUT/fleet_metrics" | grep -cvE \
        '^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? (NaN|[+-]Inf|[-+0-9.eE]+)$' || true)
    [ "$BAD" -eq 0 ] || {
        grep -v '^#' "$OUT/fleet_metrics" | grep -vE \
            '^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? (NaN|[+-]Inf|[-+0-9.eE]+)$' >&2
        fail "malformed fleet exposition lines"
    }

    # Graceful stop: SIGTERM drains every tenant plane.
    kill -TERM $PID5
    if ! wait $PID5; then
        cat "$OUT/fleet.log" >&2
        fail "fleet server exited non-zero on SIGTERM"
    fi
    PID5=
    grep -q "fleet drain complete" "$OUT/fleet.log" || fail "no fleet drain summary after SIGTERM"

    {
        echo "# fleet smoke"
        echo "pool: $POOL -> $POOL_AFTER after failing $KILL processors"
        echo "generation: $GEN_BEFORE -> $GEN_AFTER"
        echo
        echo "## /fleet after failure"
        cat "$OUT/fleet_after.json"
        echo
        echo "## fleet metrics"
        grep '^fleet_' "$OUT/fleet_metrics" || true
        echo
        echo "## drain"
        grep -E 'fleet' "$OUT/fleet.log" || true
    } >"$REPORT"
    echo "serve_smoke: fleet phase ok (report: $REPORT)"
}

case "$PHASE" in
serve) phase_serve ;;
adapt) phase_adapt ;;
ingest) phase_ingest ;;
trace) phase_trace ;;
fleet) phase_fleet ;;
all)
    phase_serve
    phase_adapt
    phase_ingest
    phase_trace
    phase_fleet
    ;;
*)
    fail "unknown phase '$PHASE' (want serve, adapt, ingest, trace, fleet, or all)"
    ;;
esac

echo "serve_smoke: ok"
