#!/usr/bin/env sh
# Smoke test for the live observability server: start `pipemap -serve` on
# the fft+histogram spec with an injected instance death, scrape the
# endpoints, and fail on malformed Prometheus exposition or a missing
# health signal. A second phase runs the adaptive controller (-adapt) with
# the same injected death and requires /pipeline to report a migrated
# mapping generation. CI runs this after the unit tests; it needs only
# curl and the go toolchain.
set -eu

ADDR=127.0.0.1:9127
ADDR2=127.0.0.1:9128
OUT=$(mktemp -d)
trap 'kill $PID 2>/dev/null || true; kill $PID2 2>/dev/null || true; rm -rf "$OUT"' EXIT

go run ./cmd/pipemap -serve "$ADDR" -serve-n 120 -serve-speedup 400 \
    -serve-for 30s -serve-kill auto specs/ffthist256.json >"$OUT/run.log" 2>&1 &
PID=$!

# Wait for the server to come up.
i=0
until curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -ge 100 ]; then
        echo "serve_smoke: server never came up" >&2
        cat "$OUT/run.log" >&2
        exit 1
    fi
    sleep 0.2
done

# Let the run finish so the injected death and final health are settled.
i=0
until grep -q "run complete" "$OUT/run.log"; do
    i=$((i + 1))
    if [ "$i" -ge 150 ]; then
        echo "serve_smoke: run never completed" >&2
        cat "$OUT/run.log" >&2
        exit 1
    fi
    sleep 0.2
done

fail() {
    echo "serve_smoke: $1" >&2
    exit 1
}

curl -fsS "http://$ADDR/healthz" | grep -q ok || fail "/healthz not ok"

curl -fsS "http://$ADDR/metrics" >"$OUT/metrics"
grep -q 'pipemap_stage_period_seconds{stage=' "$OUT/metrics" \
    || fail "/metrics missing stage period series"
grep -q '^pipemap_up 1$' "$OUT/metrics" || fail "/metrics missing pipemap_up"
grep -q '^pipemap_degraded 1$' "$OUT/metrics" \
    || fail "/metrics not degraded after injected death"
# Lint: every non-comment line must be `name{labels} value`.
BAD=$(grep -v '^#' "$OUT/metrics" | grep -cvE \
    '^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? (NaN|[+-]Inf|[-+0-9.eE]+)$' || true)
[ "$BAD" -eq 0 ] || {
    grep -v '^#' "$OUT/metrics" | grep -vE \
        '^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? (NaN|[+-]Inf|[-+0-9.eE]+)$' >&2
    fail "malformed exposition lines"
}

curl -fsS "http://$ADDR/pipeline" >"$OUT/pipeline"
grep -q '"bottleneckStage"' "$OUT/pipeline" || fail "/pipeline missing bottleneck"
grep -q '"status": "degraded"' "$OUT/pipeline" || fail "/pipeline not degraded"

# /readyz must report 503 while degraded.
CODE=$(curl -s -o /dev/null -w '%{http_code}' "http://$ADDR/readyz")
[ "$CODE" = 503 ] || fail "/readyz = $CODE, want 503 when degraded"

kill $PID 2>/dev/null || true

# --- Adaptive phase: kill an instance, watch the controller remap. ---
go run ./cmd/pipemap -serve "$ADDR2" -serve-n 400 -serve-speedup 400 \
    -serve-for 30s -serve-kill auto \
    -adapt -adapt-interval 250ms -adapt-threshold 0.02 \
    specs/threestage.json >"$OUT/adapt.log" 2>&1 &
PID2=$!

i=0
until curl -fsS "http://$ADDR2/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -ge 100 ]; then
        echo "serve_smoke: adaptive server never came up" >&2
        cat "$OUT/adapt.log" >&2
        exit 1
    fi
    sleep 0.2
done

# Poll /pipeline until the controller reports a post-migration generation;
# fail on timeout — the injected death must trigger a remap.
i=0
while :; do
    curl -fsS "http://$ADDR2/pipeline" >"$OUT/adapt_pipeline" 2>/dev/null || true
    if grep -q '"generation": [1-9]' "$OUT/adapt_pipeline"; then
        break
    fi
    i=$((i + 1))
    if [ "$i" -ge 150 ]; then
        echo "serve_smoke: controller never migrated to a new generation" >&2
        cat "$OUT/adapt_pipeline" >&2
        cat "$OUT/adapt.log" >&2
        exit 1
    fi
    sleep 0.2
done

grep -q '"controller"' "$OUT/adapt_pipeline" || fail "/pipeline missing controller state"
grep -q '"lastDecision"' "$OUT/adapt_pipeline" || fail "/pipeline missing last decision"

curl -fsS "http://$ADDR2/metrics" >"$OUT/adapt_metrics"
grep -q 'adapt_cycles' "$OUT/adapt_metrics" || fail "/metrics missing adapt_cycles"
grep -q 'adapt_migrations' "$OUT/adapt_metrics" || fail "/metrics missing adapt_migrations"

echo "serve_smoke: ok"
