#!/usr/bin/env bash
# bench_gate.sh — CI perf regression gate.
#
# Re-runs the reduced-size perf trajectory and fails the build when any
# spec's adaptive-controller decision latency regresses more than 2x
# against the committed BENCH_solver.json baseline (with a 0.5ms absolute
# floor so sub-noise latencies never flake). The fresh report is written
# to BENCH_gate.json for upload as a CI artifact; the committed baseline
# is never modified.
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE=${BASELINE:-BENCH_solver.json}
OUT=${OUT:-BENCH_gate.json}

if [[ ! -f "$BASELINE" ]]; then
    echo "bench_gate: baseline $BASELINE not found" >&2
    exit 1
fi

go run ./cmd/benchrun -quick -out "$OUT" -gate "$BASELINE"
