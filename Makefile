GO ?= go

.PHONY: build test race bench bench-quick serve-smoke ingest-smoke fleet-smoke fleet-fuzz pipegen pipegen-diff pipegen-fuzz

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Full perf-trajectory run; refreshes BENCH_solver.json (commit the result).
bench:
	$(GO) run ./cmd/benchrun -out BENCH_solver.json

# Reduced-size pass for CI; writes the report without overwriting history
# expectations (same file name so the artifact upload is uniform).
bench-quick:
	$(GO) run ./cmd/benchrun -quick -out BENCH_solver.json

# Start the live observability server briefly and scrape it (used by CI).
serve-smoke:
	./scripts/serve_smoke.sh

# Ingestion data plane overload smoke: submit, burst, assert sheds, drain.
ingest-smoke:
	./scripts/serve_smoke.sh ingest

# Fleet scheduler smoke: two tenants share a pool, kill processors, rebalance.
fleet-smoke:
	./scripts/serve_smoke.sh fleet

# Differential fuzz: cache-hit placements must be bit-identical to fresh solves.
fleet-fuzz:
	$(GO) test ./internal/fleet -run FuzzFleetCacheMatchesFresh -fuzz FuzzFleetCacheMatchesFresh -fuzztime 30s

# Regenerate the committed specialized executors under internal/gen from
# the specs + their solved mappings (commit the result).
pipegen:
	$(GO) run ./cmd/pipegen -all

# Fail if the committed generated executors drift from what the generator
# emits today (CI's golden gate; prints a per-file summary).
pipegen-diff:
	$(GO) run ./cmd/pipegen -all -check

# Differential fuzz: generated executors must be bit-identical to the
# generic fxrt stream on randomized seeds across all three apps.
pipegen-fuzz:
	$(GO) test ./internal/pipegen -run FuzzGeneratedMatchesGeneric -fuzz FuzzGeneratedMatchesGeneric -fuzztime 30s
