GO ?= go

.PHONY: build test race bench bench-quick serve-smoke ingest-smoke fleet-smoke fleet-fuzz

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Full perf-trajectory run; refreshes BENCH_solver.json (commit the result).
bench:
	$(GO) run ./cmd/benchrun -out BENCH_solver.json

# Reduced-size pass for CI; writes the report without overwriting history
# expectations (same file name so the artifact upload is uniform).
bench-quick:
	$(GO) run ./cmd/benchrun -quick -out BENCH_solver.json

# Start the live observability server briefly and scrape it (used by CI).
serve-smoke:
	./scripts/serve_smoke.sh

# Ingestion data plane overload smoke: submit, burst, assert sheds, drain.
ingest-smoke:
	./scripts/serve_smoke.sh ingest

# Fleet scheduler smoke: two tenants share a pool, kill processors, rebalance.
fleet-smoke:
	./scripts/serve_smoke.sh fleet

# Differential fuzz: cache-hit placements must be bit-identical to fresh solves.
fleet-fuzz:
	$(GO) test ./internal/fleet -run FuzzFleetCacheMatchesFresh -fuzz FuzzFleetCacheMatchesFresh -fuzztime 30s
