package pipemap_test

import (
	"testing"

	"pipemap"
)

// exampleChain builds a small chain through the public API only.
func exampleChain() *pipemap.Chain {
	return &pipemap.Chain{
		Tasks: []pipemap.Task{
			{Name: "a", Exec: pipemap.PolyExec{C2: 4}, Mem: pipemap.Memory{Data: 1}, Replicable: true},
			{Name: "b", Exec: pipemap.PolyExec{C1: 0.1, C2: 2, C3: 0.02}, Mem: pipemap.Memory{Data: 1}, Replicable: true},
		},
		ICom: []pipemap.CostFunc{pipemap.ZeroExec()},
		ECom: []pipemap.CommFunc{pipemap.PolyComm{C1: 0.05, C2: 0.3, C3: 0.3}},
	}
}

func TestPublicMapAndSimulate(t *testing.T) {
	chain := exampleChain()
	pl := pipemap.Platform{Procs: 16, MemPerProc: 1}
	res, err := pipemap.Map(pipemap.Request{Chain: chain, Platform: pl})
	if err != nil {
		t.Fatal(err)
	}
	if res.Throughput <= 0 {
		t.Fatal("no throughput predicted")
	}
	if err := res.Mapping.Validate(pl); err != nil {
		t.Fatalf("mapping invalid: %v", err)
	}
	sr, err := pipemap.Simulate(res.Mapping, pipemap.SimOptions{DataSets: 200})
	if err != nil {
		t.Fatal(err)
	}
	if sr.Throughput < res.Throughput*0.85 || sr.Throughput > res.Throughput*1.05 {
		t.Errorf("simulated %g far from predicted %g", sr.Throughput, res.Throughput)
	}
	// The optimum is at least as good as the data parallel baseline.
	if dp := pipemap.DataParallel(chain, pl); res.Throughput < dp.Throughput()-1e-9 {
		t.Errorf("optimal %g below data parallel %g", res.Throughput, dp.Throughput())
	}
}

func TestPublicAlgorithmsAgree(t *testing.T) {
	chain := exampleChain()
	pl := pipemap.Platform{Procs: 12, MemPerProc: 1}
	d, err := pipemap.Map(pipemap.Request{Chain: chain, Platform: pl, Algorithm: pipemap.DP})
	if err != nil {
		t.Fatal(err)
	}
	g, err := pipemap.Map(pipemap.Request{Chain: chain, Platform: pl, Algorithm: pipemap.Greedy})
	if err != nil {
		t.Fatal(err)
	}
	if g.Throughput > d.Throughput*1.001 {
		t.Errorf("greedy %g beats DP %g", g.Throughput, d.Throughput)
	}
}

func TestPublicEstimation(t *testing.T) {
	// Fit from exact samples of a known model.
	truth := pipemap.PolyExec{C1: 0.2, C2: 5, C3: 0.01}
	var samples []pipemap.ExecSample
	for _, p := range []int{1, 2, 4, 8, 16} {
		samples = append(samples, pipemap.ExecSample{Procs: p, Time: truth.Eval(p)})
	}
	fit, err := pipemap.FitExec(samples)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := fit.Eval(32), truth.Eval(32); got < want*0.99 || got > want*1.01 {
		t.Errorf("fitted(32) = %g, want %g", got, want)
	}
	plan, err := pipemap.TrainingPlan(exampleChain(), pipemap.Platform{Procs: 16, MemPerProc: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan) != 8 {
		t.Errorf("training plan has %d runs, want 8", len(plan))
	}
}

func TestPublicFeasibility(t *testing.T) {
	chain := exampleChain()
	pl := pipemap.Platform{Procs: 16, MemPerProc: 1}
	res, err := pipemap.Map(pipemap.Request{Chain: chain, Platform: pl})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := pipemap.Feasible(res.Mapping, pipemap.Constraints{
		Grid: pipemap.Grid{Rows: 4, Cols: 4},
	}); !ok {
		t.Log("optimal mapping infeasible on 4x4; that is allowed, checking constrained search")
		cres, err := pipemap.Map(pipemap.Request{Chain: chain, Platform: pl,
			Machine: &pipemap.Constraints{Grid: pipemap.Grid{Rows: 4, Cols: 4}}})
		if err != nil {
			t.Fatal(err)
		}
		if cres.Layout == nil {
			t.Error("no layout from constrained search")
		}
	}
}

func TestPublicClusteringHelpers(t *testing.T) {
	if got := len(pipemap.AllClusterings(4)); got != 8 {
		t.Errorf("AllClusterings(4) = %d, want 8", got)
	}
	if got := len(pipemap.Singletons(3)); got != 3 {
		t.Errorf("Singletons(3) = %d spans", got)
	}
	tc, err := pipemap.NewTableCost(map[int]float64{1: 10, 2: 6})
	if err != nil {
		t.Fatal(err)
	}
	if tc.Eval(1) != 10 {
		t.Error("TableCost mis-evaluates")
	}
}

func TestPublicObjectives(t *testing.T) {
	chain := exampleChain()
	pl := pipemap.Platform{Procs: 12, MemPerProc: 1}
	thr, err := pipemap.Map(pipemap.Request{Chain: chain, Platform: pl})
	if err != nil {
		t.Fatal(err)
	}
	lat, err := pipemap.Map(pipemap.Request{Chain: chain, Platform: pl,
		Objective: pipemap.ObjectiveMinLatency})
	if err != nil {
		t.Fatal(err)
	}
	if lat.Latency > thr.Latency {
		t.Errorf("min-latency %g worse than throughput optimum's %g", lat.Latency, thr.Latency)
	}
	mid, err := pipemap.Map(pipemap.Request{Chain: chain, Platform: pl,
		Objective:    pipemap.ObjectiveThroughputUnderLatency,
		LatencyBound: (lat.Latency + thr.Latency) / 2})
	if err != nil {
		t.Fatal(err)
	}
	if mid.Latency > (lat.Latency+thr.Latency)/2 {
		t.Error("latency bound violated")
	}
}

func TestPublicFrontierAndCertify(t *testing.T) {
	chain := exampleChain()
	pl := pipemap.Platform{Procs: 12, MemPerProc: 1}
	front, err := pipemap.Frontier(chain, pl, pipemap.TradeoffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(front) == 0 {
		t.Fatal("empty frontier")
	}
	ml, err := pipemap.MinLatency(chain, pl, pipemap.TradeoffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if ml.Latency() > front[0].Latency+1e-9 {
		t.Errorf("MinLatency %g worse than frontier head %g", ml.Latency(), front[0].Latency)
	}
	if _, err := pipemap.BestThroughputUnderLatency(chain, pl, front[0].Latency/2,
		pipemap.TradeoffOptions{}); err == nil {
		t.Error("unsatisfiable bound accepted")
	}
	cert := pipemap.Certify(chain, pl)
	if cert.Reason == "" {
		t.Error("empty certificate reason")
	}
}

func TestPublicRemapDegradedMatchesSimulator(t *testing.T) {
	chain := exampleChain()
	pl := pipemap.Platform{Procs: 16, MemPerProc: 1}
	full, err := pipemap.Map(pipemap.Request{Chain: chain, Platform: pl})
	if err != nil {
		t.Fatal(err)
	}
	// Lose a quarter of the machine and remap onto the survivors.
	lost := 4
	deg, err := pipemap.Remap(pipemap.Request{Chain: chain, Platform: pl}, lost)
	if err != nil {
		t.Fatal(err)
	}
	if deg.Throughput > full.Throughput+1e-9 {
		t.Errorf("degraded optimum %g beats full-machine optimum %g", deg.Throughput, full.Throughput)
	}
	surviving := pipemap.Platform{Procs: pl.Procs - lost, MemPerProc: pl.MemPerProc}
	if err := deg.Mapping.Validate(surviving); err != nil {
		t.Fatalf("degraded mapping invalid: %v", err)
	}
	// The degraded prediction holds up on the simulated degraded machine
	// within the usual simulator tolerance.
	sr, err := pipemap.Simulate(deg.Mapping, pipemap.SimOptions{DataSets: 200})
	if err != nil {
		t.Fatal(err)
	}
	if sr.Throughput < deg.Throughput*0.85 || sr.Throughput > deg.Throughput*1.05 {
		t.Errorf("simulated degraded throughput %g far from predicted %g", sr.Throughput, deg.Throughput)
	}
}

func TestPublicSimulatedFailureDegradesThroughput(t *testing.T) {
	chain := exampleChain()
	pl := pipemap.Platform{Procs: 16, MemPerProc: 1}
	res, err := pipemap.Map(pipemap.Request{Chain: chain, Platform: pl})
	if err != nil {
		t.Fatal(err)
	}
	// Find a replicated module to kill an instance of; skip if the
	// optimum happens not to replicate.
	mod := -1
	for i, m := range res.Mapping.Modules {
		if m.Replicas > 1 {
			mod = i
			break
		}
	}
	if mod < 0 {
		t.Skip("optimal mapping has no replicated module")
	}
	base, err := pipemap.Simulate(res.Mapping, pipemap.SimOptions{DataSets: 200})
	if err != nil {
		t.Fatal(err)
	}
	failed, err := pipemap.Simulate(res.Mapping, pipemap.SimOptions{DataSets: 200,
		Failures: []pipemap.SimFailure{{Time: base.Makespan / 4, Module: mod, Instance: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	if failed.Throughput >= base.Throughput {
		t.Errorf("instance failure did not degrade throughput: %g vs %g",
			failed.Throughput, base.Throughput)
	}
}
