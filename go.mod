module pipemap

go 1.24
