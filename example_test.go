package pipemap_test

import (
	"fmt"

	"pipemap"
)

// ExampleMap finds the throughput-optimal mapping of a two-task pipeline.
func ExampleMap() {
	chain := &pipemap.Chain{
		Tasks: []pipemap.Task{
			{Name: "produce", Exec: pipemap.PolyExec{C2: 6}, Replicable: true},
			{Name: "consume", Exec: pipemap.PolyExec{C1: 0.5, C2: 2}, Replicable: true},
		},
		ICom: []pipemap.CostFunc{pipemap.ZeroExec()},
		ECom: []pipemap.CommFunc{pipemap.ZeroComm()},
	}
	res, err := pipemap.Map(pipemap.Request{
		Chain:    chain,
		Platform: pipemap.Platform{Procs: 8},
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("%v %.2f data sets/s\n", &res.Mapping, res.Throughput)
	// Output: [produce+consume p=1 r=8] 0.94 data sets/s
}

// ExampleSimulate measures a mapping under the paper's execution model.
func ExampleSimulate() {
	chain := &pipemap.Chain{
		Tasks: []pipemap.Task{{Name: "work", Exec: pipemap.PolyExec{C1: 0.25}, Replicable: true}},
	}
	m := pipemap.Mapping{Chain: chain, Modules: []pipemap.Module{
		{Lo: 0, Hi: 1, Procs: 1, Replicas: 2},
	}}
	res, err := pipemap.Simulate(m, pipemap.SimOptions{DataSets: 100})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("%.0f data sets/s\n", res.Throughput)
	// Output: 8 data sets/s
}

// ExampleFitExec recovers the paper's execution time model from profiled
// samples.
func ExampleFitExec() {
	samples := []pipemap.ExecSample{
		{Procs: 1, Time: 4.1},
		{Procs: 2, Time: 2.1},
		{Procs: 4, Time: 1.1},
		{Procs: 8, Time: 0.6},
	}
	fit, err := pipemap.FitExec(samples)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("f(16) = %.3f s\n", fit.Eval(16))
	// Output: f(16) = 0.350 s
}

// ExampleDataParallel compares the optimized mapping against the pure
// data parallel baseline.
func ExampleDataParallel() {
	chain := &pipemap.Chain{
		Tasks: []pipemap.Task{
			{Name: "fft", Exec: pipemap.PolyExec{C2: 4, C3: 0.05}, Replicable: true},
			{Name: "stat", Exec: pipemap.PolyExec{C1: 0.2, C2: 1, C3: 0.05}, Replicable: true},
		},
		ICom: []pipemap.CostFunc{pipemap.ZeroExec()},
		ECom: []pipemap.CommFunc{pipemap.PolyComm{C1: 0.05}},
	}
	pl := pipemap.Platform{Procs: 16}
	opt, err := pipemap.Map(pipemap.Request{Chain: chain, Platform: pl})
	if err != nil {
		fmt.Println(err)
		return
	}
	base := pipemap.DataParallel(chain, pl)
	fmt.Printf("speedup %.1fx\n", opt.Throughput/base.Throughput())
	// Output: speedup 6.4x
}
