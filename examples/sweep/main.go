// Processor sweep: how the optimal mapping of FFT-Hist evolves as the
// machine grows from 8 to 256 processors — where replication kicks in,
// how the clustering stays stable, and how far ahead of pure data
// parallelism the optimized mapping pulls (the crossover structure behind
// Figure 1 and Table 2).
package main

import (
	"fmt"
	"log"

	"pipemap"
	"pipemap/internal/apps"
)

func main() {
	chain, err := apps.FFTHist(256, apps.Message)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("P     algo    mapping                                        opt/s   datapar/s  ratio")
	fmt.Println("----  ------  ---------------------------------------------  ------  ---------  -----")
	for _, procs := range []int{8, 12, 16, 24, 32, 48, 64, 96, 128, 192, 256} {
		platform := pipemap.Platform{Procs: procs, MemPerProc: 0.5}
		res, err := pipemap.Map(pipemap.Request{Chain: chain, Platform: platform})
		if err != nil {
			fmt.Printf("%4d  (infeasible: %v)\n", procs, err)
			continue
		}
		dataPar := pipemap.DataParallel(chain, platform)
		ratio := res.Throughput / dataPar.Throughput()
		fmt.Printf("%4d  %-6v  %-45v  %6.2f  %9.2f  %5.2f\n",
			procs, res.Algorithm, res.Mapping.String(), res.Throughput,
			dataPar.Throughput(), ratio)
	}

	fmt.Println("\nObservations: the rowffts+hist clustering is stable across the sweep;")
	fmt.Println("replication grows with the machine while per-instance sizes stay at the")
	fmt.Println("memory minimum; the advantage over data parallelism widens with P because")
	fmt.Println("per-processor overheads make large single modules increasingly inefficient.")
}
