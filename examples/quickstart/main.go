// Quickstart: define a three-task pipeline with polynomial cost models,
// compute the optimal mapping, and verify it on the execution-model
// simulator.
package main

import (
	"fmt"
	"log"

	"pipemap"
)

func main() {
	// A pipeline of three data parallel tasks processing a stream of data
	// sets: a reader, a transform, and a reducer with noticeable
	// per-processor overhead. Times are seconds per data set; memory is in
	// MB and bounds how far each module can be subdivided.
	chain := &pipemap.Chain{
		Tasks: []pipemap.Task{
			{
				Name:       "read",
				Exec:       pipemap.PolyExec{C1: 0.01, C2: 0.8, C3: 0.001},
				Mem:        pipemap.Memory{Data: 1.0},
				Replicable: true,
			},
			{
				Name:       "transform",
				Exec:       pipemap.PolyExec{C1: 0.02, C2: 2.4, C3: 0.002},
				Mem:        pipemap.Memory{Data: 1.5},
				Replicable: true,
			},
			{
				Name:       "reduce",
				Exec:       pipemap.PolyExec{C1: 0.05, C2: 0.9, C3: 0.01},
				Mem:        pipemap.Memory{Data: 0.4},
				Replicable: true,
			},
		},
		// Edge costs: internal redistribution (same processors) vs
		// external transfer (between processor groups). The second edge is
		// free internally: transform and reduce share a distribution.
		ICom: []pipemap.CostFunc{
			pipemap.PolyExec{C1: 0.005, C2: 0.4, C3: 0.0005},
			pipemap.ZeroExec(),
		},
		ECom: []pipemap.CommFunc{
			pipemap.PolyComm{C1: 0.02, C2: 0.2, C3: 0.2, C4: 0.0005, C5: 0.0005},
			pipemap.PolyComm{C1: 0.05, C2: 0.3, C3: 0.3, C4: 0.0005, C5: 0.0005},
		},
	}
	platform := pipemap.Platform{Procs: 32, MemPerProc: 0.5}

	// Find the optimal mapping: clustering, replication, assignment.
	res, err := pipemap.Map(pipemap.Request{Chain: chain, Platform: platform})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimal mapping (%v): %v\n", res.Algorithm, &res.Mapping)
	fmt.Printf("predicted throughput: %.3f data sets/s, latency %.3f s\n",
		res.Throughput, res.Latency)

	// Baseline: pure data parallelism.
	dataPar := pipemap.DataParallel(chain, platform)
	fmt.Printf("data parallel baseline: %.3f data sets/s (%.1fx slower)\n",
		dataPar.Throughput(), res.Throughput/dataPar.Throughput())

	// Validate the prediction by running the mapping on the simulator.
	simres, err := pipemap.Simulate(res.Mapping, pipemap.SimOptions{DataSets: 500})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated throughput: %.3f data sets/s (%.1f%% of prediction)\n",
		simres.Throughput, 100*simres.Throughput/res.Throughput)
}
