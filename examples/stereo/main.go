// Multibaseline stereo: map the depth-from-disparity pipeline, study how
// replication trades response time for throughput (Figure 3 of the
// paper), and run the real stereo kernels on a synthetic scene.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"pipemap"
	"pipemap/internal/apps"
	"pipemap/internal/kernels"
)

func main() {
	chain := apps.Stereo()
	platform := apps.Platform()

	res, err := pipemap.Map(pipemap.Request{Chain: chain, Platform: platform})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimal mapping: %v\n", &res.Mapping)
	fmt.Printf("predicted: %.1f frames/s, latency %.1f ms\n", res.Throughput, 1e3*res.Latency)
	dataPar := pipemap.DataParallel(chain, platform)
	fmt.Printf("data parallel: %.1f frames/s -> %.2fx speedup\n",
		dataPar.Throughput(), res.Throughput/dataPar.Throughput())

	// Replication study on the diff+err module: response time rises with
	// replication (smaller instances) while throughput rises — the paper's
	// Figure 3 trade-off.
	fmt.Println("\nreplication trade-off for the diff+err module on 40 processors:")
	fmt.Println("replicas  procs/inst  response(s)  effective thr (module alone)")
	for _, r := range []int{1, 2, 4, 8} {
		procs := 40 / r
		m := pipemap.Mapping{Chain: chain, Modules: []pipemap.Module{
			{Lo: 0, Hi: 1, Procs: 12, Replicas: 1},
			{Lo: 1, Hi: 3, Procs: procs, Replicas: r},
			{Lo: 3, Hi: 4, Procs: 4, Replicas: 1},
		}}
		if err := m.Validate(pipemap.Platform{Procs: 64, MemPerProc: 0.5}); err != nil {
			fmt.Printf("%8d  (infeasible: %v)\n", r, err)
			continue
		}
		resp := m.ResponseTimes()[1]
		fmt.Printf("%8d  %10d  %11.4f  %.1f/s\n", r, procs, resp, float64(r)/resp)
	}

	// Run the real kernels: recover a disparity ramp from a synthetic
	// stereo pair.
	const w, h, nDisp = 128, 64, 8
	rng := rand.New(rand.NewSource(9))
	ref := kernels.NewImage(w, h)
	for i := range ref.Pix {
		ref.Pix[i] = rng.Float64()
	}
	// The scene's true disparity grows with y: rows [0,h/2) at 2, rest 5.
	target := kernels.NewImage(w, h)
	for y := 0; y < h; y++ {
		d := 2
		if y >= h/2 {
			d = 5
		}
		for x := 0; x < w; x++ {
			if x-d >= 0 {
				target.Set(x, y, ref.At(x-d, y))
			} else {
				target.Set(x, y, rng.Float64())
			}
		}
	}
	errs := make([]kernels.Image, nDisp)
	for d := 0; d < nDisp; d++ {
		diff := kernels.NewImage(w, h)
		if err := kernels.DiffImage(ref, target, diff, d, 0, h); err != nil {
			log.Fatal(err)
		}
		errs[d] = kernels.NewImage(w, h)
		if err := kernels.ErrorImage(diff, errs[d], 2, 0, h); err != nil {
			log.Fatal(err)
		}
	}
	depth := kernels.NewImage(w, h)
	if err := kernels.DepthMin(errs, depth, 0, h); err != nil {
		log.Fatal(err)
	}
	top, bottom := 0.0, 0.0
	for y := 8; y < h/2-8; y++ {
		top += depth.At(w/2, y)
	}
	for y := h/2 + 8; y < h-8; y++ {
		bottom += depth.At(w/2, y)
	}
	top /= float64(h/2 - 16)
	bottom /= float64(h/2 - 16)
	fmt.Printf("\nreal kernels: recovered disparities %.1f (near plane, true 2) and %.1f (far plane, true 5)\n",
		top, bottom)
}
