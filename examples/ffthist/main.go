// FFT-Hist end to end: the paper's feedback loop on its flagship example.
//
//  1. Profile the application through the eight training runs (here on the
//     execution-model simulator with measurement noise, standing in for
//     the iWarp testbed).
//  2. Fit the polynomial cost models of section 5.
//  3. Predict the optimal mapping with the DP of section 3 and check it
//     against the greedy heuristic of section 4.
//  4. Place it on the 8x8 processor array (section 6.1).
//  5. "Run" the program under the mapping and compare measured throughput
//     with the prediction (Table 2).
//  6. Finally, execute the same pipeline for real — actual FFTs and
//     histograms on goroutine worker pools — to show the mapping applies
//     to a living program, not just a model.
package main

import (
	"fmt"
	"log"

	"pipemap"
	"pipemap/internal/apps"
	"pipemap/internal/sim"
)

func main() {
	truth, err := apps.FFTHist(256, apps.Message)
	if err != nil {
		log.Fatal(err)
	}
	platform := apps.Platform()

	// 1-2. Profile on the noisy simulator and fit the model.
	profiler := sim.Profiler{Sim: sim.New(sim.Options{DataSets: 24, Noise: 0.05, Seed: 42})}
	fitted, err := pipemap.EstimateChain(truth, profiler, platform)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("fitted cost models from 8 training runs (5% measurement noise)")

	// 3. Predict the optimal mapping from the fitted model.
	dpRes, err := pipemap.Map(pipemap.Request{Chain: fitted, Platform: platform,
		Algorithm: pipemap.DP})
	if err != nil {
		log.Fatal(err)
	}
	grRes, err := pipemap.Map(pipemap.Request{Chain: fitted, Platform: platform,
		Algorithm: pipemap.Greedy})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("DP mapping:     %v  (%.2f data sets/s predicted)\n", &dpRes.Mapping, dpRes.Throughput)
	fmt.Printf("greedy mapping: %v  (%.2f data sets/s predicted)\n", &grRes.Mapping, grRes.Throughput)

	// 4. Machine feasibility on the 8x8 array.
	layout, ok := pipemap.Feasible(dpRes.Mapping, pipemap.Constraints{
		Grid: pipemap.Grid{Rows: 8, Cols: 8},
	})
	if !ok {
		fmt.Println("mapping infeasible on the 8x8 array; searching for the feasible optimum")
	} else {
		fmt.Printf("layout on the 8x8 array:\n%s", layout.String())
	}

	// 5. Measure the mapping on the simulator against the ground truth
	// chain (what the "machine" actually does).
	groundMapping := pipemap.Mapping{Chain: truth, Modules: dpRes.Mapping.Modules}
	meas, err := pipemap.Simulate(groundMapping, pipemap.SimOptions{
		DataSets: 400, Noise: 0.03, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("measured: %.2f data sets/s (predicted %.2f, diff %+.1f%%)\n",
		meas.Throughput, dpRes.Throughput,
		100*(meas.Throughput-dpRes.Throughput)/dpRes.Throughput)
	dataPar := pipemap.DataParallel(truth, platform)
	dmeas, err := pipemap.Simulate(dataPar, pipemap.SimOptions{DataSets: 400, Noise: 0.03, Seed: 8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("data parallel: %.2f data sets/s -> optimal/data-parallel ratio %.2fx\n",
		dmeas.Throughput, meas.Throughput/dmeas.Throughput)

	// 6. Run the real program: 128x128 FFT-Hist on goroutine worker pools,
	// with the mapping's structure scaled to a laptop-sized worker budget.
	real := apps.FFTHistRunner{N: 128, DataSets: 24}
	structure := apps.FFTHistStructure(128)
	mapped := pipemap.Mapping{Chain: structure, Modules: []pipemap.Module{
		{Lo: 0, Hi: 1, Procs: 1, Replicas: 2}, // colffts, replicated
		{Lo: 1, Hi: 3, Procs: 2, Replicas: 1}, // rowffts+hist clustered
	}}
	merged := pipemap.DataParallel(structure, pipemap.Platform{Procs: 4})
	statsMapped, err := real.Run(mapped)
	if err != nil {
		log.Fatal(err)
	}
	statsMerged, err := real.Run(merged)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nreal execution (128x128, 4 workers):\n")
	fmt.Printf("  pipelined mapping:  %.1f data sets/s\n", statsMapped.Throughput)
	fmt.Printf("  single-module:      %.1f data sets/s\n", statsMerged.Throughput)
	fmt.Printf("  measured op means: colffts %.1fms, rowffts %.1fms, hist %.1fms, transpose %.1fms\n",
		1e3*statsMapped.Ops["exec:colffts"], 1e3*statsMapped.Ops["exec:rowffts"],
		1e3*statsMapped.Ops["exec:hist"], 1e3*statsMapped.Ops["edge:transpose"])
}
