// Narrowband tracking radar: map the four-stage radar pipeline (pulse
// compression, Doppler processing, CFAR detection, track update), compare
// mapping styles, and run the real signal processing kernels to show the
// pipeline detects targets.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"pipemap"
	"pipemap/internal/apps"
	"pipemap/internal/kernels"
)

func main() {
	chain := apps.Radar()
	platform := apps.Platform()

	res, err := pipemap.Map(pipemap.Request{Chain: chain, Platform: platform})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimal mapping: %v\n", &res.Mapping)
	fmt.Printf("predicted throughput: %.1f coherent intervals/s\n", res.Throughput)
	fmt.Println("(the non-replicable track stage bounds the pipeline)")

	dataPar := pipemap.DataParallel(chain, platform)
	fmt.Printf("data parallel baseline: %.1f/s -> %.1fx speedup from the mapping\n",
		dataPar.Throughput(), res.Throughput/dataPar.Throughput())

	// Simulate the pipeline under both mappings.
	for _, tc := range []struct {
		name string
		m    pipemap.Mapping
	}{{"optimal", res.Mapping}, {"data parallel", dataPar}} {
		sr, err := pipemap.Simulate(tc.m, pipemap.SimOptions{DataSets: 500})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("simulated %-13s %.1f/s, latency %.1f ms\n", tc.name+":",
			sr.Throughput, 1e3*sr.Latency)
	}

	// Run the real radar kernels on one coherent interval: 16 pulses x 512
	// range gates, two injected targets in noise.
	const pulses, gates = 16, 512
	rng := rand.New(rand.NewSource(3))
	chirp := make([]complex128, gates)
	for i := 0; i < 32; i++ {
		phase := 0.05 * float64(i*i)
		chirp[i] = complex(math.Cos(phase), math.Sin(phase))
	}
	chirpFreq := append([]complex128(nil), chirp...)
	if err := kernels.FFT(chirpFreq); err != nil {
		log.Fatal(err)
	}
	cube := kernels.NewMatrix(pulses, gates)
	for p := 0; p < pulses; p++ {
		for g := 0; g < gates; g++ {
			cube.Set(p, g, complex(rng.NormFloat64()*0.05, rng.NormFloat64()*0.05))
		}
	}
	inject := func(gate, doppler int, amp float64) {
		for p := 0; p < pulses; p++ {
			ph := 2 * math.Pi * float64(doppler) * float64(p) / float64(pulses)
			rot := complex(math.Cos(ph), math.Sin(ph))
			for i := 0; i < 32 && gate+i < gates; i++ {
				cube.Set(p, gate+i, cube.At(p, gate+i)+chirp[i]*rot*complex(amp, 0))
			}
		}
	}
	inject(100, 3, 2.0)
	inject(350, 11, 1.5)

	if err := kernels.MatchedFilter(cube, chirpFreq, 0, pulses); err != nil {
		log.Fatal(err)
	}
	if err := kernels.DopplerFFT(cube, 0, gates); err != nil {
		log.Fatal(err)
	}
	kernels.PowerRows(cube, 0, pulses)
	dets := kernels.CFAR(cube, 4, 16, 12, 0, pulses)
	fmt.Printf("\nreal kernels: %d CFAR detections on the injected scene\n", len(dets))
	// Report the two strongest.
	for n := 0; n < 2 && len(dets) > 0; n++ {
		best := 0
		for i, d := range dets {
			if d.Power > dets[best].Power {
				best = i
			}
		}
		d := dets[best]
		fmt.Printf("  target: range gate %d, Doppler bin %d (power %.1f, threshold %.1f)\n",
			d.Range, d.Doppler, d.Power, d.Threshold)
		dets = append(dets[:best], dets[best+1:]...)
	}
}
