// Latency-throughput trade-off: explore the Pareto frontier of FFT-Hist
// mappings, pick a mapping under a latency budget, and check the greedy
// optimality certificate — the extensions pipemap adds beyond the paper
// (which optimizes throughput only and defers latency to Vondran's
// thesis).
package main

import (
	"fmt"
	"log"

	"pipemap"
	"pipemap/internal/apps"
)

func main() {
	chain, err := apps.FFTHist(256, apps.Message)
	if err != nil {
		log.Fatal(err)
	}
	platform := apps.Platform()

	front, err := pipemap.Frontier(chain, platform, pipemap.TradeoffOptions{MinThroughputGain: 0.02})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Pareto frontier (throughput vs one-data-set latency):")
	fmt.Println("  thr/s    latency    mapping")
	for _, p := range front {
		fmt.Printf("  %6.2f   %6.0f ms   %v\n", p.Throughput, 1e3*p.Latency, &p.Mapping)
	}

	// A sensor pipeline often has a response-time budget: find the fastest
	// mapping that still delivers a result within 700 ms.
	const budget = 0.700
	m, err := pipemap.BestThroughputUnderLatency(chain, platform, budget, pipemap.TradeoffOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbest mapping within a %.0f ms latency budget:\n  %v  (%.2f/s at %.0f ms)\n",
		1e3*budget, &m, m.Throughput(), 1e3*m.Latency())

	opt, err := pipemap.Map(pipemap.Request{Chain: chain, Platform: platform})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("unconstrained throughput optimum:\n  %v  (%.2f/s at %.0f ms)\n",
		&opt.Mapping, opt.Throughput, 1e3*opt.Latency)
	fmt.Printf("-> the latency budget costs %.0f%% of peak throughput\n",
		100*(1-m.Throughput()/opt.Throughput))

	// Is the fast greedy heuristic provably optimal on this chain?
	cert := pipemap.Certify(chain, platform)
	fmt.Printf("\ngreedy optimality certificate: optimal=%v\n  %s\n", cert.Optimal, cert.Reason)
}
