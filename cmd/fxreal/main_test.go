package main

import (
	"bytes"
	"strings"
	"testing"

	"pipemap/internal/model"
)

func TestRunFFTHist(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-app", "ffthist", "-map", "1x2,2x1", "-n", "6", "-size", "32"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"throughput:", "exec:colffts", "edge:transpose"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunRadar(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-app", "radar", "-map", "2x1,1x1,1x1", "-n", "4", "-size", "64"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "tracks accumulated") {
		t.Errorf("output missing tracks:\n%s", out.String())
	}
}

func TestRunStereo(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-app", "stereo", "-map", "1x1,2x1,1x1", "-n", "4", "-size", "64"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "depth map computed") {
		t.Errorf("output missing depth note:\n%s", out.String())
	}
}

func TestRunDefaultsToDataParallel(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-app", "ffthist", "-n", "4", "-size", "32"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "colffts+rowffts+hist") {
		t.Errorf("default should be one merged module:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{"-app", "weather"},
		{"-app", "ffthist", "-map", "1x1,1x1,1x1,1x1"},
		{"-app", "ffthist", "-map", "bogus"},
		{"-app", "ffthist", "-map", "0x1"},
		{"-app", "ffthist", "-size", "100"}, // not a power of two
	}
	for _, args := range cases {
		var out bytes.Buffer
		if err := run(args, &out); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestBuildMappingClusterings(t *testing.T) {
	c := newTestChain4()
	m, err := buildMapping(c, "1x1,2x2", "stereo")
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Modules) != 2 || m.Modules[0].Hi != 2 {
		t.Errorf("2-module clustering wrong: %v", m.Modules)
	}
	m3, err := buildMapping(c, "1x1,1x1,1x1", "stereo")
	if err != nil {
		t.Fatal(err)
	}
	if len(m3.Modules) != 3 || m3.Modules[1].Hi != 3 {
		t.Errorf("3-module clustering wrong: %v", m3.Modules)
	}
	m4, err := buildMapping(c, "1x1,1x1,1x1,1x1", "stereo")
	if err != nil {
		t.Fatal(err)
	}
	if len(m4.Modules) != 4 {
		t.Errorf("4-module clustering wrong: %v", m4.Modules)
	}
	if _, err := buildMapping(c, "1x1,1x1,1x1,1x1,1x1", "stereo"); err == nil {
		t.Error("5 modules over 4 tasks accepted")
	}
}

func newTestChain4() *model.Chain {
	c := &model.Chain{
		Tasks: make([]model.Task, 4),
		ICom:  []model.CostFunc{model.ZeroExec(), model.ZeroExec(), model.ZeroExec()},
		ECom:  []model.CommFunc{model.ZeroComm(), model.ZeroComm(), model.ZeroComm()},
	}
	for i := range c.Tasks {
		c.Tasks[i] = model.Task{Name: string(rune('a' + i)), Exec: model.ZeroExec()}
	}
	return c
}
