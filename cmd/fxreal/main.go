// Command fxreal runs one of the paper's applications for real on the
// goroutine runtime — actual FFTs, radar signal processing, or stereo
// depth extraction — under a chosen pipeline mapping, and reports the
// measured throughput and per-operation times.
//
// Usage:
//
//	fxreal -app ffthist|radar|stereo [-map "p1xr1,p2xr2,..."] [-n 16] [-size 128]
//
// The -map flag lists per-module workersxreplicas pairs; module task
// ranges are chosen canonically per application (FFT-Hist: 2 modules =
// {colffts} {rowffts,hist}; radar/stereo analogous). Without -map the
// whole pipeline runs as one module on 4 workers.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"pipemap/internal/apps"
	"pipemap/internal/fxrt"
	"pipemap/internal/model"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "fxreal:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("fxreal", flag.ContinueOnError)
	app := fs.String("app", "ffthist", "application: ffthist, radar, or stereo")
	mapSpec := fs.String("map", "", `per-module workers x replicas, e.g. "2x2,4x1"`)
	n := fs.Int("n", 16, "number of data sets to stream")
	size := fs.Int("size", 128, "data set size (matrix dim / range gates / image width)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var structure *model.Chain
	switch *app {
	case "ffthist":
		structure = apps.FFTHistStructure(*size)
	case "radar":
		structure = apps.RadarStructure()
	case "stereo":
		structure = apps.StereoStructure()
	default:
		return fmt.Errorf("unknown application %q", *app)
	}

	m, err := buildMapping(structure, *mapSpec, *app)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "application: %s, mapping: %v\n", *app, &m)

	var stats fxrt.Stats
	switch *app {
	case "ffthist":
		stats, err = apps.FFTHistRunner{N: *size, DataSets: *n}.Run(m)
	case "radar":
		var tracks map[[2]int]int
		stats, tracks, err = apps.RadarRunner{Pulses: 16, Gates: *size, DataSets: *n}.Run(m)
		if err == nil {
			fmt.Fprintf(stdout, "tracks accumulated: %d cells\n", len(tracks))
		}
	case "stereo":
		r := apps.StereoRunner{W: *size, H: *size / 2, DataSets: *n}
		var last interface{}
		stats, last, err = runStereo(r, m)
		if err == nil && last != nil {
			fmt.Fprintln(stdout, "depth map computed for the final frame")
		}
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "data sets:  %d\n", stats.DataSets)
	fmt.Fprintf(stdout, "throughput: %.2f data sets/s\n", stats.Throughput)
	fmt.Fprintf(stdout, "latency:    %.2f ms\n", 1e3*stats.Latency.Seconds())
	fmt.Fprintln(stdout, "measured operations:")
	for _, op := range sortedOps(stats.Ops) {
		fmt.Fprintf(stdout, "  %-18s %.3f ms\n", op, 1e3*stats.Ops[op])
	}
	return nil
}

func runStereo(r apps.StereoRunner, m model.Mapping) (fxrt.Stats, interface{}, error) {
	stats, last, err := r.Run(m)
	return stats, last, err
}

// buildMapping parses "p1xr1,p2xr2,..." into modules over the canonical
// clusterings of the applications.
func buildMapping(c *model.Chain, spec, app string) (model.Mapping, error) {
	if spec == "" {
		return model.DataParallel(c, model.Platform{Procs: 4}), nil
	}
	parts := strings.Split(spec, ",")
	var spans []model.Span
	switch {
	case len(parts) == 1:
		spans = []model.Span{{Lo: 0, Hi: c.Len()}}
	case app == "ffthist" && len(parts) == 2:
		spans = []model.Span{{Lo: 0, Hi: 1}, {Lo: 1, Hi: 3}}
	case len(parts) == c.Len():
		spans = model.Singletons(c.Len())
	case len(parts) == 2 && c.Len() == 4:
		spans = []model.Span{{Lo: 0, Hi: 2}, {Lo: 2, Hi: 4}}
	case len(parts) == 3 && c.Len() == 4:
		spans = []model.Span{{Lo: 0, Hi: 1}, {Lo: 1, Hi: 3}, {Lo: 3, Hi: 4}}
	default:
		return model.Mapping{}, fmt.Errorf("cannot cluster %d tasks into %d modules", c.Len(), len(parts))
	}
	mods := make([]model.Module, len(parts))
	for i, p := range parts {
		var w, r int
		if _, err := fmt.Sscanf(strings.TrimSpace(p), "%dx%d", &w, &r); err != nil {
			return model.Mapping{}, fmt.Errorf("module spec %q is not WxR: %w", p, err)
		}
		if w < 1 || r < 1 {
			return model.Mapping{}, fmt.Errorf("module spec %q must be positive", p)
		}
		mods[i] = model.Module{Lo: spans[i].Lo, Hi: spans[i].Hi, Procs: w, Replicas: r}
	}
	return model.Mapping{Chain: c, Modules: mods}, nil
}

func sortedOps(ops map[string]float64) []string {
	keys := make([]string, 0, len(ops))
	for k := range ops {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}
