package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// chromeTraceFile mirrors the Chrome trace_event JSON object format for
// schema-checking the -trace output.
type chromeTraceFile struct {
	TraceEvents []struct {
		Name  string         `json:"name"`
		Cat   string         `json:"cat"`
		Phase string         `json:"ph"`
		TS    float64        `json:"ts"`
		Dur   float64        `json:"dur"`
		TID   int            `json:"tid"`
		Args  map[string]any `json:"args"`
	} `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

// checkChromeTrace asserts that path holds a structurally valid Chrome
// trace and returns the parsed file.
func checkChromeTrace(t *testing.T, path string) chromeTraceFile {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var tf chromeTraceFile
	if err := json.Unmarshal(raw, &tf); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if tf.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", tf.DisplayTimeUnit)
	}
	for _, e := range tf.TraceEvents {
		if e.Name == "" {
			t.Error("event with empty name")
		}
		switch e.Phase {
		case "X":
			if e.Dur < 0 {
				t.Errorf("span %q has negative duration", e.Name)
			}
		case "i", "M":
		default:
			t.Errorf("unknown phase %q on event %q", e.Phase, e.Name)
		}
	}
	return tf
}

// TestRunTraceAndMetrics is the acceptance check: -trace on the FFT/
// histogram spec must produce valid Chrome trace JSON with solver spans,
// and -metrics must append a snapshot with DP counters.
func TestRunTraceAndMetrics(t *testing.T) {
	tracePath := filepath.Join(t.TempDir(), "out.json")
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-trace", tracePath, "-metrics", "testdata/ffthist256.json"}, nil, &out); err != nil {
		t.Fatal(err)
	}
	tf := checkChromeTrace(t, tracePath)
	if len(tf.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}
	var sawLayer, sawSolve, sawMap bool
	for _, e := range tf.TraceEvents {
		if e.Cat == "dp" && strings.Contains(e.Name, "layer") {
			sawLayer = true
			if e.Args["states"] == nil {
				t.Errorf("layer span %q missing states arg", e.Name)
			}
		}
		if e.Cat == "dp" && e.Name == "map_chain" {
			sawSolve = true
		}
		if e.Cat == "core" && e.Name == "map" {
			sawMap = true
		}
	}
	if !sawLayer || !sawSolve || !sawMap {
		t.Errorf("missing solver spans: layer=%v solve=%v map=%v", sawLayer, sawSolve, sawMap)
	}

	report := out.String()
	if !strings.Contains(report, "metrics:") {
		t.Errorf("report missing metrics section:\n%s", report)
	}
	for _, want := range []string{"dp.map_chain.states", "dp.map_chain.pruned", "core.map_seconds.count"} {
		if !strings.Contains(report, want) {
			t.Errorf("metrics missing %q:\n%s", want, report)
		}
	}
	if !strings.Contains(report, "trace written to") {
		t.Errorf("report missing trace confirmation:\n%s", report)
	}
}

// TestRunTraceWithJSONOutput checks that -json keeps stdout pure JSON
// while still writing the trace file.
func TestRunTraceWithJSONOutput(t *testing.T) {
	tracePath := filepath.Join(t.TempDir(), "out.json")
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-json", "-trace", tracePath}, strings.NewReader(specJSON), &out); err != nil {
		t.Fatal(err)
	}
	var mapping map[string]any
	if err := json.Unmarshal(out.Bytes(), &mapping); err != nil {
		t.Fatalf("-json output polluted: %v\n%s", err, out.String())
	}
	if tf := checkChromeTrace(t, tracePath); len(tf.TraceEvents) == 0 {
		t.Error("trace empty despite -json run")
	}
}

// TestRunProfiles checks that the pprof flags write non-empty profile
// files.
func TestRunProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pb")
	mem := filepath.Join(dir, "mem.pb")
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-cpuprofile", cpu, "-memprofile", mem}, strings.NewReader(specJSON), &out); err != nil {
		t.Fatal(err)
	}
	// The heap profile is written by a deferred helper; both files must
	// exist. (CPU profiles of sub-millisecond runs may have no samples but
	// still carry a valid header.)
	for _, p := range []string{cpu, mem} {
		if fi, err := os.Stat(p); err != nil || fi.Size() == 0 {
			t.Errorf("profile %s missing or empty (err=%v)", p, err)
		}
	}
}
