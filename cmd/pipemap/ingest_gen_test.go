package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestServeIngestGeneratedBackend runs the ingestion path on the
// pipegen-generated executor (-ingest-gen): solve the committed FFT-Hist
// spec (which must match the baked mapping), serve real submissions on
// the generated engine, and drain gracefully.
func TestServeIngestGeneratedBackend(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	buf := &syncBuffer{}
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{
			"-serve", "127.0.0.1:0",
			"-ingest", "ffthist",
			"-ingest-gen",
			"-ingest-size", "32",
			"-queue-depth", "8",
			"-shed-deadline", "10s",
			"../../specs/ffthist256.json",
		}, strings.NewReader(""), buf)
	}()
	addr := waitFor(t, buf, addrRe, done)[1]
	base := "http://" + addr

	if !strings.Contains(buf.String(), "pipegen-generated executor") {
		t.Errorf("banner does not name the generated engine:\n%s", buf.String())
	}

	for seed := 0; seed < 3; seed++ {
		code, body := httpPost(t, base+"/v1/submit", `{"tenant": "alpha", "input": {"seed": 7}}`)
		if code != http.StatusOK {
			t.Fatalf("/v1/submit = %d: %s", code, body)
		}
		var sub struct {
			App    string `json:"app"`
			Result struct {
				Count int `json:"count"`
			} `json:"result"`
		}
		if err := json.Unmarshal([]byte(body), &sub); err != nil {
			t.Fatalf("/v1/submit JSON: %v\n%s", err, body)
		}
		if sub.App != "ffthist" || sub.Result.Count != 32*32 {
			t.Errorf("submit result = app %q count %d, want ffthist %d", sub.App, sub.Result.Count, 32*32)
		}
	}

	// The generated executor feeds the same live monitor the generic
	// stream would; /pipeline reflects completions.
	code, body, _ := httpGet(t, base+"/pipeline")
	if code != http.StatusOK || !strings.Contains(body, `"completed"`) {
		t.Errorf("/pipeline = %d, want completion stats:\n%s", code, body)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run: %v", err)
		}
	case <-time.After(20 * time.Second):
		t.Fatalf("run did not drain after cancellation:\n%s", buf.String())
	}
	if out := buf.String(); !strings.Contains(out, "drain complete") {
		t.Errorf("no drain summary in output:\n%s", out)
	}
}

func TestServeIngestGenFlagValidation(t *testing.T) {
	cases := [][]string{
		// -ingest-gen needs -ingest.
		{"-serve", ":0", "-ingest-gen", "../../specs/ffthist256.json"},
		// Fault injection is generic-executor only.
		{"-serve", ":0", "-ingest", "ffthist", "-ingest-gen", "-serve-kill", "auto", "../../specs/ffthist256.json"},
	}
	for _, args := range cases {
		if err := run(context.Background(), args, strings.NewReader(""), io.Discard); err == nil {
			t.Errorf("args %v accepted, want error", args)
		}
	}
}

// TestServeIngestGenMappingMismatch: a spec that solves to a different
// mapping than the committed generated executor must be refused with a
// pointer at make pipegen, not served with drifted structure.
func TestServeIngestGenMappingMismatch(t *testing.T) {
	err := run(context.Background(), []string{
		"-serve", "127.0.0.1:0",
		"-ingest", "ffthist",
		"-ingest-gen",
		"-serve-for", "1ms",
		"../../specs/threestage.json",
	}, strings.NewReader(""), io.Discard)
	if err == nil || !strings.Contains(err.Error(), "does not match the generated executor") {
		t.Fatalf("mismatched mapping: err = %v, want baked-mapping mismatch", err)
	}
}
