package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
)

// fleetState mirrors the /fleet JSON payload for test decoding.
type fleetState struct {
	Generation  int64 `json:"generation"`
	PoolProcs   int   `json:"poolProcs"`
	FailedProcs int   `json:"failedProcs"`
	UsedProcs   int   `json:"usedProcs"`
	Placed      int   `json:"placed"`
	Admitted    int64 `json:"admitted"`
	Evicted     int64 `json:"evicted"`
	Rebalances  int64 `json:"rebalances"`
	Cache       struct {
		FullSolves int64   `json:"fullSolves"`
		HitRate    float64 `json:"hitRate"`
	} `json:"cache"`
	Pipelines []struct {
		ID         int64   `json:"id"`
		Tenant     string  `json:"tenant"`
		Alloc      int     `json:"alloc"`
		Procs      int     `json:"procs"`
		Mapping    string  `json:"mapping"`
		Throughput float64 `json:"throughput"`
		Generation int64   `json:"generation"`
	} `json:"pipelines"`
}

func getFleetState(t *testing.T, base string) fleetState {
	t.Helper()
	code, body, _ := httpGet(t, base+"/fleet")
	if code != http.StatusOK {
		t.Fatalf("/fleet = %d: %s", code, body)
	}
	var st fleetState
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("/fleet JSON: %v\n%s", err, body)
	}
	return st
}

// TestFleetServeAcceptance drives the -fleet CLI end to end: two tenant
// specs share one pool, both planes serve real kernel work on their own
// endpoints, /fleet reports the scheduler state, a processor failure over
// POST /fleet/fail rebalances and bumps the generation of every surviving
// pipeline, both tenants still serve afterwards, and the shutdown drain
// loses nothing.
func TestFleetServeAcceptance(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	buf := &syncBuffer{}
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{
			"-serve", "127.0.0.1:0",
			"-fleet",
			"-ingest-size", "32",
			"-queue-depth", "8",
			"-shed-deadline", "10s",
			"../../specs/ffthist256.json",
			"../../specs/radar64.json",
		}, strings.NewReader(""), buf)
	}()
	addr := waitFor(t, buf, addrRe, done)[1]
	base := "http://" + addr

	st := getFleetState(t, base)
	if st.Placed != 2 || len(st.Pipelines) != 2 {
		t.Fatalf("fleet placed %d pipelines, want 2: %+v", st.Placed, st)
	}
	if st.UsedProcs > st.PoolProcs {
		t.Fatalf("over-allocation: used %d > pool %d", st.UsedProcs, st.PoolProcs)
	}
	for _, p := range st.Pipelines {
		if p.Procs > p.Alloc {
			t.Fatalf("tenant %s mapping uses %d procs beyond its allocation %d", p.Tenant, p.Procs, p.Alloc)
		}
	}

	// Both tenants serve real kernel work on their own endpoints.
	code, body := httpPost(t, base+"/v1/ffthist256/submit", `{"tenant": "alpha", "input": {"seed": 7}}`)
	if code != http.StatusOK {
		t.Fatalf("/v1/ffthist256/submit = %d: %s", code, body)
	}
	if !strings.Contains(body, `"ffthist"`) {
		t.Errorf("ffthist submit result lacks the app tag: %s", body)
	}
	code, body = httpPost(t, base+"/v1/radar64/submit", `{"tenant": "alpha", "input": {"seed": 9}}`)
	if code != http.StatusOK {
		t.Fatalf("/v1/radar64/submit = %d: %s", code, body)
	}

	// /metrics exposes fleet_* series and still lints.
	code, body, _ = httpGet(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	lintExposition(t, body)
	for _, want := range []string{"fleet_admitted_total", "fleet_pool_utilization", "fleet_cache_hit_rate", "fleet_generation"} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics lacks %s", want)
		}
	}

	// Kill a quarter of the pool: the fleet must rebalance, bump the
	// generation, and re-place every survivor within the smaller pool.
	preGen := st.Generation
	prePool := st.PoolProcs
	code, body = httpPost(t, base+fmt.Sprintf("/fleet/fail?n=%d", prePool/4), "")
	if code != http.StatusOK {
		t.Fatalf("/fleet/fail = %d: %s", code, body)
	}
	var failed fleetState
	if err := json.Unmarshal([]byte(body), &failed); err != nil {
		t.Fatalf("/fleet/fail JSON: %v\n%s", err, body)
	}
	if failed.Generation <= preGen {
		t.Fatalf("generation %d did not bump past %d after failure", failed.Generation, preGen)
	}
	if failed.PoolProcs != prePool-prePool/4 || failed.FailedProcs != prePool/4 {
		t.Fatalf("pool after failure = %d/%d failed, want %d/%d",
			failed.PoolProcs, failed.FailedProcs, prePool-prePool/4, prePool/4)
	}
	if failed.UsedProcs > failed.PoolProcs {
		t.Fatalf("over-allocation after failure: used %d > pool %d", failed.UsedProcs, failed.PoolProcs)
	}
	for _, p := range failed.Pipelines {
		if p.Generation != failed.Generation {
			t.Errorf("tenant %s still on generation %d, want re-placed at %d", p.Tenant, p.Generation, failed.Generation)
		}
	}

	// Bad failure requests are rejected cleanly.
	if code, _ = httpPost(t, base+"/fleet/fail?n=bogus", ""); code != http.StatusBadRequest {
		t.Errorf("/fleet/fail?n=bogus = %d, want 400", code)
	}
	if code, _ = httpPost(t, base+"/fleet/fail?n=9999", ""); code != http.StatusConflict {
		t.Errorf("/fleet/fail?n=9999 = %d, want 409", code)
	}
	if code, _, _ = httpGet(t, base+"/fleet/fail"); code != http.StatusMethodNotAllowed {
		t.Errorf("GET /fleet/fail = %d, want 405", code)
	}

	// Both tenants keep serving on their swapped planes.
	code, body = httpPost(t, base+"/v1/ffthist256/submit", `{"tenant": "alpha", "input": {"seed": 11}}`)
	if code != http.StatusOK {
		t.Fatalf("post-failure ffthist submit = %d: %s", code, body)
	}
	code, body = httpPost(t, base+"/v1/radar64/submit", `{"tenant": "alpha", "input": {"seed": 12}}`)
	if code != http.StatusOK {
		t.Fatalf("post-failure radar submit = %d: %s", code, body)
	}

	// SIGTERM path: cancel drains every plane and exits cleanly.
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("run: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "fleet drain complete") {
		t.Errorf("missing drain summary:\n%s", out)
	}
	for _, tenant := range []string{"ffthist256", "radar64"} {
		if !strings.Contains(out, "fleet: tenant "+tenant+" remapped") {
			t.Errorf("missing live remap log for %s:\n%s", tenant, out)
		}
	}
}

// TestFleetFlagValidation covers the CLI guard rails.
func TestFleetFlagValidation(t *testing.T) {
	for _, tc := range []struct {
		name string
		args []string
	}{
		{"fleet without serve", []string{"-fleet", "../../specs/ffthist256.json"}},
		{"fleet with ingest", []string{"-serve", "127.0.0.1:0", "-fleet", "-ingest", "ffthist", "../../specs/ffthist256.json"}},
		{"fleet with adapt", []string{"-serve", "127.0.0.1:0", "-fleet", "-adapt", "../../specs/ffthist256.json"}},
		{"fleet-procs without fleet", []string{"-fleet-procs", "32", "../../specs/ffthist256.json"}},
		{"fleet-grid without fleet", []string{"-fleet-grid", "8x8", "../../specs/ffthist256.json"}},
		{"negative fleet-procs", []string{"-serve", "127.0.0.1:0", "-fleet", "-fleet-procs", "-1", "../../specs/ffthist256.json"}},
		{"bad fleet-grid", []string{"-serve", "127.0.0.1:0", "-fleet", "-fleet-grid", "8by8", "../../specs/ffthist256.json"}},
		{"no specs", []string{"-serve", "127.0.0.1:0", "-fleet"}},
		{"unknown app prefix", []string{"-serve", "127.0.0.1:0", "-fleet", "../../specs/threestage.json"}},
	} {
		if err := run(context.Background(), tc.args, strings.NewReader(""), io.Discard); err == nil {
			t.Errorf("%s: accepted, want error", tc.name)
		}
	}
}
