package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"regexp"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// httpPost posts a JSON body and returns status and body.
func httpPost(t *testing.T, url, body string) (int, string) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	return resp.StatusCode, string(b)
}

// TestServeIngestAcceptance runs the full ingestion path through the CLI:
// solve the FFT-Hist spec, stand up the real kernel pipeline behind the
// data plane, submit a data set over HTTP, read the computed histogram
// back, then deliver a graceful drain via context cancellation (the
// SIGTERM path) and check nothing accepted was lost.
func TestServeIngestAcceptance(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	buf := &syncBuffer{}
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{
			"-serve", "127.0.0.1:0",
			"-ingest", "ffthist",
			"-ingest-size", "32",
			"-queue-depth", "8",
			"-shed-deadline", "10s",
			"../../specs/ffthist256.json",
		}, strings.NewReader(""), buf)
	}()
	addr := waitFor(t, buf, addrRe, done)[1]
	base := "http://" + addr

	// A well-formed submission computes a real 32x32 FFT histogram.
	code, body := httpPost(t, base+"/v1/submit", `{"tenant": "alpha", "input": {"seed": 7}}`)
	if code != http.StatusOK {
		t.Fatalf("/v1/submit = %d: %s", code, body)
	}
	var sub struct {
		App    string `json:"app"`
		Result struct {
			Count int `json:"count"`
		} `json:"result"`
		SojournMS float64 `json:"sojournMs"`
	}
	if err := json.Unmarshal([]byte(body), &sub); err != nil {
		t.Fatalf("/v1/submit JSON: %v\n%s", err, body)
	}
	if sub.App != "ffthist" || sub.Result.Count != 32*32 {
		t.Errorf("submit result = app %q count %d, want ffthist %d", sub.App, sub.Result.Count, 32*32)
	}

	// Malformed input is a 400, not a shed.
	code, body = httpPost(t, base+"/v1/submit", `{"input": {"data": [1, 2]}}`)
	if code != http.StatusBadRequest {
		t.Errorf("bad input = %d, want 400: %s", code, body)
	}

	// /v1/ingest serves the plane's stats.
	code, body, _ = httpGet(t, base+"/v1/ingest")
	if code != http.StatusOK {
		t.Fatalf("/v1/ingest = %d", code)
	}
	var st struct {
		Admitted  int64 `json:"admitted"`
		Completed int64 `json:"completed"`
	}
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("/v1/ingest JSON: %v\n%s", err, body)
	}
	if st.Admitted < 1 || st.Completed < 1 {
		t.Errorf("/v1/ingest admitted=%d completed=%d, want both >= 1", st.Admitted, st.Completed)
	}

	// /pipeline embeds the same stats under "ingest".
	code, body, _ = httpGet(t, base+"/pipeline")
	if code != http.StatusOK || !strings.Contains(body, `"ingest"`) {
		t.Errorf("/pipeline = %d, want an ingest key:\n%s", code, body)
	}

	// /metrics exposes the ingest series and still lints.
	code, body, _ = httpGet(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	lintExposition(t, body)
	for _, want := range []string{"ingest_admit_total", "ingest_shed_total", "ingest_queue_depth"} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// The index advertises the mounted submit route.
	if _, idx, _ := httpGet(t, base+"/"); !strings.Contains(idx, "/v1/submit") {
		t.Errorf("index does not list /v1/submit:\n%s", idx)
	}

	// Context cancellation (the SIGTERM path) drains gracefully.
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run: %v", err)
		}
	case <-time.After(20 * time.Second):
		t.Fatalf("run did not drain after cancellation:\n%s", buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "drain complete") {
		t.Errorf("no drain summary in output:\n%s", out)
	}
}

// TestServeIngestOverloadSheds saturates a deliberately tiny plane and
// checks overload is graceful: concurrent submissions beyond the queue
// bound receive structured 429/503 sheds immediately, admitted ones still
// complete, and the drain loses nothing.
func TestServeIngestOverloadSheds(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	buf := &syncBuffer{}
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{
			"-serve", "127.0.0.1:0",
			"-ingest", "ffthist",
			"-ingest-size", "128",
			"-queue-depth", "2",
			"-ingest-dispatchers", "1",
			"-shed-deadline", "30s",
			"../../specs/ffthist256.json",
		}, strings.NewReader(""), buf)
	}()
	addr := waitFor(t, buf, addrRe, done)[1]
	base := "http://" + addr

	const burst = 24
	var ok, shed, other atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			code, body := httpPost(t, base+"/v1/submit",
				fmt.Sprintf(`{"tenant": "t%d", "input": {"seed": %d}}`, i%3, i))
			switch {
			case code == http.StatusOK:
				ok.Add(1)
			case code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable:
				var e struct {
					Error struct {
						Reason string `json:"reason"`
					} `json:"error"`
				}
				if err := json.Unmarshal([]byte(body), &e); err != nil || e.Error.Reason == "" {
					t.Errorf("shed body is not structured: %s", body)
				}
				shed.Add(1)
			default:
				other.Add(1)
				t.Errorf("unexpected status %d: %s", code, body)
			}
		}(i)
	}
	wg.Wait()
	if ok.Load() < 1 {
		t.Errorf("no submission completed under overload (ok=%d shed=%d)", ok.Load(), shed.Load())
	}
	if shed.Load() < 1 {
		t.Errorf("no submission shed under a %d-deep burst against queue depth 2", burst)
	}

	if _, body, _ := httpGet(t, base+"/metrics"); !regexp.MustCompile(`ingest_shed_total [1-9]`).MatchString(body) {
		t.Errorf("/metrics ingest_shed_total not positive after overload")
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run: %v", err)
		}
	case <-time.After(20 * time.Second):
		t.Fatalf("run did not drain after cancellation:\n%s", buf.String())
	}
	// Zero loss: everything admitted was resolved (completed or failed).
	out := buf.String()
	m := regexp.MustCompile(`lifetime admitted (\d+), completed (\d+), failed (\d+)`).FindStringSubmatch(out)
	if m == nil {
		t.Fatalf("no drain accounting in output:\n%s", out)
	}
	var admitted, completed, failed int
	fmt.Sscanf(m[1], "%d", &admitted)
	fmt.Sscanf(m[2], "%d", &completed)
	fmt.Sscanf(m[3], "%d", &failed)
	if admitted < 1 {
		t.Fatalf("nothing admitted: %v", m)
	}
	if completed+failed != admitted {
		t.Errorf("drain lost requests: admitted %d, resolved %d", admitted, completed+failed)
	}
}

func TestServeIngestFlagValidation(t *testing.T) {
	if err := run(context.Background(), []string{"-ingest", "ffthist", "../../specs/ffthist256.json"},
		strings.NewReader(""), io.Discard); err == nil {
		t.Error("-ingest without -serve accepted")
	}
	if err := run(context.Background(), []string{"-serve", ":0", "-ingest", "bogus",
		"../../specs/ffthist256.json"}, strings.NewReader(""), io.Discard); err == nil {
		t.Error("unknown -ingest app accepted")
	}
	if err := run(context.Background(), []string{"-serve", ":0", "-ingest", "ffthist", "-queue-depth", "0",
		"../../specs/ffthist256.json"}, strings.NewReader(""), io.Discard); err == nil {
		t.Error("-queue-depth 0 accepted")
	}
}

// TestServeContextCancelStopsServe checks the plain -serve path (no
// -serve-for) exits cleanly on context cancellation instead of blocking
// forever.
func TestServeContextCancelStopsServe(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	buf := &syncBuffer{}
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{
			"-serve", "127.0.0.1:0",
			"-serve-n", "16",
			"-serve-speedup", "400",
			"../../specs/threestage.json",
		}, strings.NewReader(""), buf)
	}()
	waitFor(t, buf, regexp.MustCompile(`serving until killed`), done)
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not exit after context cancellation")
	}
}

// TestServeStartupErrorsDoNotLeakGoroutines drives every startup error
// path — bad kill spec (pre-listen), occupied address (listen failure),
// unknown ingest app — plus a complete short serve, and checks the
// goroutine count returns to baseline: no orphaned listeners, monitors or
// dispatchers survive a failed or finished serve.
func TestServeStartupErrorsDoNotLeakGoroutines(t *testing.T) {
	// Occupy a port so -serve on it fails at listen time.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	busy := ln.Addr().String()

	runtime.GC()
	before := runtime.NumGoroutine()
	for i := 0; i < 3; i++ {
		if err := run(context.Background(), []string{"-serve", "127.0.0.1:0", "-serve-kill", "bogus",
			"../../specs/threestage.json"}, strings.NewReader(""), io.Discard); err == nil {
			t.Fatal("malformed -serve-kill accepted")
		}
		if err := run(context.Background(), []string{"-serve", busy, "-serve-for", "1ms",
			"../../specs/threestage.json"}, strings.NewReader(""), io.Discard); err == nil {
			t.Fatal("occupied address accepted")
		}
		if err := run(context.Background(), []string{"-serve", busy, "-ingest", "ffthist",
			"../../specs/ffthist256.json"}, strings.NewReader(""), io.Discard); err == nil {
			t.Fatal("occupied address accepted for ingest")
		}
	}
	// A complete short serve must also return to baseline once closed.
	if err := run(context.Background(), []string{"-serve", "127.0.0.1:0", "-serve-n", "8",
		"-serve-speedup", "400", "-serve-for", "1ms", "../../specs/threestage.json"},
		strings.NewReader(""), io.Discard); err != nil {
		t.Fatalf("short serve: %v", err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d before, %d after\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(50 * time.Millisecond)
	}
}
