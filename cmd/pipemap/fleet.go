package main

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"pipemap/internal/core"
	"pipemap/internal/fleet"
	"pipemap/internal/ingest"
	"pipemap/internal/machine"
	"pipemap/internal/model"
	"pipemap/internal/obs/live"
)

// fleetConfig carries the -fleet serving knobs.
type fleetConfig struct {
	addr     string
	procs    int
	grid     machine.Grid
	serveFor time.Duration

	queueDepth   int
	shedDeadline time.Duration
	dispatchers  int
	ingestSize   int
}

// fleetTenant pairs one admitted pipeline with its live ingest plane.
type fleetTenant struct {
	name      string
	app       string
	id        int64
	plane     *ingest.Plane
	placedGen int64 // fleet generation of the mapping the plane runs
}

// fleetAppFor infers the application kernel from the spec's base name, the
// convention the specs/ directory follows (ffthist256, radar64, ...).
func fleetAppFor(name string) (string, error) {
	for _, app := range []string{"ffthist", "radar", "stereo"} {
		if strings.HasPrefix(name, app) {
			return app, nil
		}
	}
	return "", fmt.Errorf("-fleet: cannot infer the application from spec name %q (want an ffthist*, radar*, or stereo* prefix)", name)
}

// fleetRun is the -fleet serving mode: every spec file becomes a tenant
// pipeline admitted into one fleet scheduler sharing a single processor
// pool, each realized as a real kernel ingest plane with its own
// POST /v1/<tenant>/submit endpoint on one live server. /fleet serves the
// scheduler state; POST /fleet/fail kills processors, and the rebalanced
// mappings are live-swapped into the affected planes without dropping a
// request.
func fleetRun(ctx context.Context, stdout io.Writer, fc fleetConfig, specPaths []string) error {
	if len(specPaths) < 1 {
		return fmt.Errorf("-fleet: need at least one spec file argument")
	}

	type parsedSpec struct {
		name  string
		app   string
		chain *model.Chain
		pl    model.Platform
	}
	specs := make([]parsedSpec, 0, len(specPaths))
	pool := fc.procs
	memPerProc := 0.0
	for _, path := range specPaths {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		chain, pl, err := core.ParseChainSpec(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
		app, err := fleetAppFor(name)
		if err != nil {
			return err
		}
		specs = append(specs, parsedSpec{name: name, app: app, chain: chain, pl: pl})
		if fc.procs == 0 && pl.Procs > pool {
			pool = pl.Procs
		}
		// The pool's per-processor memory is the tightest spec's, so no
		// admitted pipeline assumes more memory than its spec allowed.
		if pl.MemPerProc > 0 && (memPerProc == 0 || pl.MemPerProc < memPerProc) {
			memPerProc = pl.MemPerProc
		}
	}

	reg := live.NewRegistry(live.Options{})
	fl, err := fleet.New(fleet.Config{
		Pool:     model.Platform{Procs: pool, MemPerProc: memPerProc},
		Grid:     fc.grid,
		Registry: reg,
	})
	if err != nil {
		return err
	}

	// Admit every tenant, then realize each placement as an ingest plane.
	var (
		mu      sync.Mutex
		tenants []*fleetTenant
	)
	ingestConfig := func() ingest.Config {
		return ingest.Config{
			Queue:         ingest.QueueConfig{Depth: fc.queueDepth},
			Dispatchers:   fc.dispatchers,
			DefaultBudget: fc.shedDeadline,
			LivenessFloor: ingestLivenessFloor,
			Registry:      reg,
		}
	}
	buildFor := func(t *fleetTenant, m model.Mapping) (*ingest.Plane, ingest.Codec, *live.Monitor, error) {
		sc := serveConfig{ingestApp: t.app, ingestSize: fc.ingestSize}
		pl, opts, codec, err := buildIngestApp(sc, m)
		if err != nil {
			return nil, nil, nil, err
		}
		mon := live.NewMonitor(live.ConfigFromMapping(m))
		pl.Monitor = mon
		plane, err := ingest.New(ingestConfig(), pl, opts)
		if err != nil {
			return nil, nil, nil, err
		}
		return plane, codec, mon, nil
	}
	drainAll := func() {
		mu.Lock()
		ts := append([]*fleetTenant(nil), tenants...)
		mu.Unlock()
		for _, t := range ts {
			if t.plane != nil {
				t.plane.Drain()
			}
		}
	}

	extra := map[string]http.Handler{}
	var firstMon *live.Monitor
	for _, s := range specs {
		p, err := fl.Admit(fleet.Spec{
			Tenant:   s.name,
			Chain:    s.chain,
			MaxProcs: s.pl.Procs,
		})
		if err != nil {
			drainAll()
			return err
		}
		t := &fleetTenant{name: s.name, app: s.app, id: p.ID, placedGen: p.Generation}
		plane, codec, mon, err := buildFor(t, p.Mapping)
		if err != nil {
			drainAll()
			return fmt.Errorf("%s: %w", s.name, err)
		}
		t.plane = plane
		if firstMon == nil {
			firstMon = mon
		}
		extra["/v1/"+t.name+"/submit"] = ingest.SubmitHandler(plane, codec)
		extra["/v1/"+t.name+"/ingest"] = ingest.StatusHandler(plane)
		mu.Lock()
		tenants = append(tenants, t)
		mu.Unlock()
	}

	// After a failure-triggered rebalance, move every surviving tenant
	// whose placement generation advanced onto its new mapping via a live
	// swap; evicted tenants are drained (their endpoint stays mounted but
	// the plane rejects new work once drained).
	onRebalance := func() {
		placed := map[int64]fleet.Placement{}
		for _, p := range fl.Placements() {
			placed[p.ID] = p
		}
		mu.Lock()
		ts := append([]*fleetTenant(nil), tenants...)
		mu.Unlock()
		for _, t := range ts {
			p, ok := placed[t.id]
			if !ok {
				fmt.Fprintf(stdout, "fleet: tenant %s evicted; draining its plane\n", t.name)
				t.plane.Drain()
				continue
			}
			if p.Generation == t.placedGen {
				continue
			}
			sc := serveConfig{ingestApp: t.app, ingestSize: fc.ingestSize}
			npl, nopts, _, err := buildIngestApp(sc, p.Mapping)
			if err != nil {
				fmt.Fprintf(stdout, "fleet: tenant %s remap failed: %v\n", t.name, err)
				continue
			}
			npl.Monitor = live.NewMonitor(live.ConfigFromMapping(p.Mapping))
			if err := t.plane.Swap(npl, nopts); err != nil {
				fmt.Fprintf(stdout, "fleet: tenant %s swap failed: %v\n", t.name, err)
				continue
			}
			t.placedGen = p.Generation
			fmt.Fprintf(stdout, "fleet: tenant %s remapped to %d procs (generation %d)\n",
				t.name, p.Alloc, p.Generation)
		}
	}
	extra["/fleet"] = fleet.StateHandler(fl)
	extra["/fleet/fail"] = fleet.FailHandler(fl, onRebalance)

	srv := live.NewServer(live.ServerOptions{
		Monitor:  firstMon,
		Registry: reg,
		Extra:    extra,
	})
	if err := srv.Start(fc.addr); err != nil {
		drainAll()
		return err
	}
	defer srv.Close()

	st := fl.Stats()
	fmt.Fprintf(stdout, "fleet: %d pipeline(s) share a pool of %d processors (%d used, %.0f%% utilization)\n",
		st.Placed, st.PoolProcs, st.UsedProcs, 100*st.Utilization)
	for _, p := range fl.Placements() {
		fmt.Fprintf(stdout, "  %-12s %2d procs  %8.3f/s  %s\n", p.Tenant, p.Alloc, p.Throughput, p.Summary)
	}
	fmt.Fprintf(stdout, "fleet serving on http://%s (POST /v1/<tenant>/submit; /fleet /metrics; POST /fleet/fail?n=N)\n",
		srv.Addr())

	serveWait(ctx, stdout, fc.serveFor)

	fmt.Fprintln(stdout, "fleet draining: admission stopped on every plane")
	var flushed int64
	mu.Lock()
	ts := append([]*fleetTenant(nil), tenants...)
	mu.Unlock()
	for _, t := range ts {
		ds := t.plane.Drain()
		flushed += int64(ds.Flushed)
	}
	st = fl.Stats()
	fmt.Fprintf(stdout, "fleet drain complete: %d request(s) flushed; admitted %d, evicted %d, rebalances %d, cache hit rate %.2f\n",
		flushed, st.Admitted, st.Evicted, st.Rebalances, st.Cache.HitRate)
	return nil
}
