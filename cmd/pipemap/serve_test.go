package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer is a goroutine-safe output sink for a run() driven in the
// background.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

var addrRe = regexp.MustCompile(`http://([0-9.]+:[0-9]+)`)

// waitFor polls the buffer until re matches or the deadline passes.
func waitFor(t *testing.T, buf *syncBuffer, re *regexp.Regexp, done <-chan error) []string {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		if m := re.FindStringSubmatch(buf.String()); m != nil {
			return m
		}
		select {
		case err := <-done:
			t.Fatalf("run exited early (err=%v), output:\n%s", err, buf.String())
		case <-time.After(10 * time.Millisecond):
		}
	}
	t.Fatalf("timeout waiting for %v, output:\n%s", re, buf.String())
	return nil
}

func httpGet(t *testing.T, url string) (int, string, http.Header) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	return resp.StatusCode, string(body), resp.Header
}

// TestServeAcceptance runs the full acceptance path: solve
// specs/ffthist256.json, run it fault-tolerant with an injected instance
// death, and check the served endpoints — valid Prometheus text on
// /metrics, bottleneck = argmax observed period on /pipeline, and /readyz
// flipping to 503/degraded after the death.
func TestServeAcceptance(t *testing.T) {
	buf := &syncBuffer{}
	done := make(chan error, 1)
	go func() {
		done <- run(context.Background(), []string{
			"-serve", "127.0.0.1:0",
			"-serve-n", "120",
			"-serve-speedup", "400",
			"-serve-for", "4s",
			"-serve-kill", "auto",
			"../../specs/ffthist256.json",
		}, strings.NewReader(""), buf)
	}()
	addr := waitFor(t, buf, addrRe, done)[1]
	// The injected permanent failure kills an instance within the first few
	// data sets; wait for the run summary so the health model is settled.
	waitFor(t, buf, regexp.MustCompile(`run complete`), done)

	// /healthz
	code, body, _ := httpGet(t, "http://"+addr+"/healthz")
	if code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Errorf("/healthz = %d %q", code, body)
	}

	// /metrics: valid exposition carrying pipeline and solver families.
	code, body, hdr := httpGet(t, "http://"+addr+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	if ct := hdr.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("/metrics content type = %q", ct)
	}
	lintExposition(t, body)
	for _, want := range []string{
		"pipemap_stage_period_seconds{stage=", "pipemap_stage_deaths_total{stage=",
		"pipemap_degraded 1", "pipemap_up 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// Solver metrics merged from the static registry (dotted names
	// sanitized to underscores: "core.map_seconds" -> core_map_seconds).
	if !strings.Contains(body, "core_map_seconds") {
		t.Errorf("/metrics carries no solver metrics:\n%s", body)
	}

	// /pipeline: bottleneck is the argmax of observed periods and an
	// instance death is recorded.
	code, body, hdr = httpGet(t, "http://"+addr+"/pipeline")
	if code != http.StatusOK || hdr.Get("Content-Type") != "application/json" {
		t.Fatalf("/pipeline = %d %q", code, hdr.Get("Content-Type"))
	}
	var h struct {
		Status          string `json:"status"`
		Ready           bool   `json:"ready"`
		Deaths          int64  `json:"deaths"`
		BottleneckStage int    `json:"bottleneckStage"`
		Stages          []struct {
			Name           string  `json:"name"`
			ObservedPeriod float64 `json:"observedPeriod"`
			Bottleneck     bool    `json:"bottleneck"`
		} `json:"stages"`
	}
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatalf("/pipeline JSON: %v\n%s", err, body)
	}
	if len(h.Stages) != 2 {
		t.Fatalf("/pipeline stages = %d, want 2 (ffthist maps to two modules)", len(h.Stages))
	}
	arg := 0
	for i := range h.Stages {
		if h.Stages[i].ObservedPeriod > h.Stages[arg].ObservedPeriod {
			arg = i
		}
	}
	if h.BottleneckStage != arg || !h.Stages[arg].Bottleneck {
		t.Errorf("bottleneckStage = %d, argmax observed period = %d (%+v)",
			h.BottleneckStage, arg, h.Stages)
	}
	if h.Deaths < 1 {
		t.Errorf("deaths = %d, want >= 1 after -serve-kill", h.Deaths)
	}

	// /readyz: degraded after the injected death.
	code, body, _ = httpGet(t, "http://"+addr+"/readyz")
	if code != http.StatusServiceUnavailable {
		t.Errorf("/readyz = %d, want 503 when degraded", code)
	}
	var rz struct {
		Ready  bool   `json:"ready"`
		Status string `json:"status"`
	}
	if err := json.Unmarshal([]byte(body), &rz); err != nil {
		t.Fatalf("/readyz JSON: %v", err)
	}
	if rz.Ready || rz.Status != "degraded" {
		t.Errorf("/readyz = %+v, want not-ready degraded", rz)
	}

	// /events carries the death.
	code, body, _ = httpGet(t, "http://"+addr+"/events?follow=0")
	if code != http.StatusOK || !strings.Contains(body, `"kind":"death"`) {
		t.Errorf("/events = %d, want a death event:\n%s", code, body)
	}

	if err := <-done; err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(buf.String(), "degraded") {
		t.Errorf("run summary does not mention degradation:\n%s", buf.String())
	}
}

var (
	expoSampleRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? (NaN|[+-]Inf|[-+0-9.eE]+)$`)
	expoTypeRe   = regexp.MustCompile(`^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|summary|histogram|untyped)$`)
)

// lintExposition checks every line of a Prometheus text exposition parses.
func lintExposition(t *testing.T, body string) {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if line == "" || strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if !expoTypeRe.MatchString(line) {
				t.Errorf("malformed comment line: %q", line)
			}
			continue
		}
		if !expoSampleRe.MatchString(line) {
			t.Errorf("malformed sample line: %q", line)
		}
	}
}

func TestServeFlagValidation(t *testing.T) {
	if err := run(context.Background(), []string{"-serve", ":0", "-json", "../../specs/threestage.json"},
		strings.NewReader(""), io.Discard); err == nil {
		t.Error("-serve -json accepted")
	}
	if err := run(context.Background(), []string{"-serve", ":0", "-serve-n", "1", "../../specs/threestage.json"},
		strings.NewReader(""), io.Discard); err == nil {
		t.Error("-serve-n 1 accepted")
	}
	if err := run(context.Background(), []string{"-serve", ":0", "-serve-kill", "9:9", "-serve-for", "1ms",
		"../../specs/threestage.json"}, strings.NewReader(""), io.Discard); err == nil {
		t.Error("out-of-range -serve-kill accepted")
	}
	if err := run(context.Background(), []string{"-serve", ":0", "-serve-kill", "bogus", "-serve-for", "1ms",
		"../../specs/threestage.json"}, strings.NewReader(""), io.Discard); err == nil {
		t.Error("malformed -serve-kill accepted")
	}
}

// TestServeAdaptiveAcceptance drives the closed loop through the CLI: a
// kill-injected generation 0 degrades, the controller remaps onto the
// surviving processors, and /pipeline's controller key reports the
// generation bump; adapt_* series appear on /metrics.
func TestServeAdaptiveAcceptance(t *testing.T) {
	buf := &syncBuffer{}
	done := make(chan error, 1)
	go func() {
		done <- run(context.Background(), []string{
			"-serve", "127.0.0.1:0",
			"-serve-n", "400",
			"-serve-speedup", "400",
			"-serve-for", "4s",
			"-serve-kill", "auto",
			"-adapt",
			"-adapt-interval", "250ms",
			"-adapt-threshold", "0.02",
			"../../specs/threestage.json",
		}, strings.NewReader(""), buf)
	}()
	addr := waitFor(t, buf, addrRe, done)
	waitFor(t, buf, regexp.MustCompile(`run complete`), done)

	code, body, _ := httpGet(t, "http://"+addr[1]+"/pipeline")
	if code != http.StatusOK {
		t.Fatalf("/pipeline = %d", code)
	}
	var payload struct {
		Controller struct {
			Enabled      bool    `json:"enabled"`
			Generation   int     `json:"generation"`
			Migrations   int     `json:"migrations"`
			LostProcs    int     `json:"lostProcs"`
			Threshold    float64 `json:"threshold"`
			LastDecision *struct {
				Action string `json:"action"`
			} `json:"lastDecision"`
		} `json:"controller"`
	}
	if err := json.Unmarshal([]byte(body), &payload); err != nil {
		t.Fatalf("/pipeline JSON: %v\n%s", err, body)
	}
	ctrl := payload.Controller
	if !ctrl.Enabled {
		t.Error("controller not reported enabled on /pipeline")
	}
	if ctrl.Generation < 1 || ctrl.Migrations < 1 {
		t.Errorf("generation=%d migrations=%d, want both >= 1 after the injected death",
			ctrl.Generation, ctrl.Migrations)
	}
	if ctrl.LostProcs < 1 {
		t.Errorf("lostProcs=%d, want >= 1", ctrl.LostProcs)
	}
	if ctrl.Threshold != 0.02 {
		t.Errorf("threshold=%g, want the -adapt-threshold value 0.02", ctrl.Threshold)
	}
	if ctrl.LastDecision == nil {
		t.Error("no lastDecision on /pipeline controller payload")
	}

	code, body, _ = httpGet(t, "http://"+addr[1]+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	lintExposition(t, body)
	for _, want := range []string{"adapt_cycles", "adapt_generation", "adapt_migrations"} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// The migrated generation carries no injected fault, so the served
	// (current-generation) health model is nominal and ready again.
	code, _, _ = httpGet(t, "http://"+addr[1]+"/readyz")
	if code != http.StatusOK {
		t.Errorf("/readyz = %d after remap, want 200 (new generation is healthy)", code)
	}

	if err := <-done; err != nil {
		t.Fatalf("run: %v", err)
	}
	out := buf.String()
	if !regexp.MustCompile(`migrate -> generation [1-9]`).MatchString(out) {
		t.Errorf("run output has no migration line:\n%s", out)
	}
	if !strings.Contains(out, "generation(s)") {
		t.Errorf("run output has no generation summary:\n%s", out)
	}
}

func TestAdaptFlagValidation(t *testing.T) {
	if err := run(context.Background(), []string{"-adapt", "../../specs/threestage.json"},
		strings.NewReader(""), io.Discard); err == nil {
		t.Error("-adapt without -serve accepted")
	}
}
