// Command pipemap is the automatic mapping tool: it reads a JSON chain
// spec (tasks with polynomial cost models, edges, platform) and prints the
// throughput-optimal mapping.
//
// Usage:
//
//	pipemap [-algo auto|dp|greedy] [-grid RxC] [-systolic] [-json]
//	        [-fail-procs N] [-trace out.json] [-metrics]
//	        [-serve addr] [-serve-n N] [-serve-speedup X]
//	        [-serve-for dur] [-serve-kill auto|stage:instance]
//	        [-adapt] [-adapt-interval dur] [-adapt-threshold G]
//	        [-cpuprofile cpu.pb] [-memprofile mem.pb] [spec.json]
//
// With no file argument the spec is read from standard input. -grid adds
// the rectangular-subarray feasibility constraint (e.g. -grid 8x8);
// -systolic additionally enforces pathway limits. -json emits the mapping
// as JSON (consumable by fxsim) instead of a human-readable report.
// -fail-procs N appends a degraded-mode report: the optimal remapping and
// predicted throughput after N processors are lost (not combinable with
// -json, whose output schema stays a single mapping).
//
// Observability: -trace writes the solver's span trace (per-DP-layer
// timing, states evaluated, prune counts) as Chrome trace_event JSON,
// viewable in chrome://tracing or https://ui.perfetto.dev; -metrics
// appends a counters/histograms snapshot to the report; -cpuprofile and
// -memprofile write standard pprof profiles.
//
// Live observability: -serve addr runs the solved mapping on the
// fault-tolerant runtime and serves /metrics (Prometheus text 0.0.4),
// /healthz, /readyz, /pipeline (health-model JSON: per-stage observed
// period vs predicted f_i/r_i, bottleneck, replica liveness), /events
// (NDJSON) and /debug/pprof. -serve-n sets the number of data sets
// streamed, -serve-speedup compresses the emulated stage times,
// -serve-kill injects a permanent instance death ("auto" picks the first
// replicated stage) to demonstrate the degraded path, and -serve-for
// bounds how long the server stays up after the run (default: until
// killed). Not combinable with -json. See DESIGN.md §9.
//
// Adaptive remapping: -adapt closes the loop — the served pipeline streams
// in bounded segments, and between segments a controller refits the cost
// models from observed stage latencies, re-solves the mapping against the
// surviving processors, and live-migrates (drain-and-switch) when the
// predicted gain clears -adapt-threshold. -adapt-interval sets the target
// wall-clock period between decisions (it sizes the drain segments).
// Controller state (generation, last decision, refit residuals) is served
// under the "controller" key of /pipeline and as adapt_* series on
// /metrics; /readyz reports 503 during a migration drain. Combine with
// -serve-kill to watch a death trigger a remap: the injected fault applies
// to generation 0 only, so the migrated pipeline returns to nominal. See
// DESIGN.md §10.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"pipemap/internal/core"
	"pipemap/internal/greedy"
	"pipemap/internal/machine"
	"pipemap/internal/obs"
	"pipemap/internal/tradeoff"
)

func main() {
	// One context governs every serving mode: SIGINT/SIGTERM cancel it, and
	// the serve loops drain and return instead of dying mid-flight.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pipemap:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("pipemap", flag.ContinueOnError)
	algo := fs.String("algo", "auto", "mapping algorithm: auto, dp, or greedy")
	grid := fs.String("grid", "", "grid dimensions RxC for rectangular feasibility (e.g. 8x8)")
	systolic := fs.Bool("systolic", false, "enforce systolic pathway limits (requires -grid)")
	asJSON := fs.Bool("json", false, "emit the mapping as JSON")
	objective := fs.String("objective", "throughput", "optimization objective: throughput or latency")
	latencyBound := fs.Float64("latency-bound", 0, "maximize throughput subject to this latency budget (seconds)")
	certify := fs.Bool("certify", false, "report whether the greedy heuristic is provably optimal for this chain")
	frontier := fs.Bool("frontier", false, "print the latency-throughput Pareto frontier")
	failProcs := fs.Int("fail-procs", 0, "also report the degraded remapping after losing N processors")
	tracePath := fs.String("trace", "", "write the solver trace as Chrome trace_event JSON to this file")
	metrics := fs.Bool("metrics", false, "print a solver metrics snapshot after the report")
	cpuprofile := fs.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memprofile := fs.String("memprofile", "", "write a pprof heap profile to this file")
	serveAddr := fs.String("serve", "", "after solving, run the mapping on the fault-tolerant runtime and serve live observability on this address (e.g. :9090 or 127.0.0.1:0)")
	serveN := fs.Int("serve-n", 200, "with -serve: number of data sets to stream")
	serveSpeedup := fs.Float64("serve-speedup", 20, "with -serve: compress emulated stage times by this factor")
	serveFor := fs.Duration("serve-for", 0, "with -serve: keep serving this long after the run, then exit (0 = serve until killed)")
	serveKill := fs.String("serve-kill", "", "with -serve: permanently fail one stage instance (\"stage:instance\" or \"auto\")")
	adapt := fs.Bool("adapt", false, "with -serve: run the adaptive remapping controller (refit cost models online, re-solve, migrate)")
	adaptInterval := fs.Duration("adapt-interval", 2*time.Second, "with -serve -adapt: target wall-clock period between controller decisions")
	adaptThreshold := fs.Float64("adapt-threshold", 0.1, "with -serve -adapt: minimum predicted relative throughput gain before migrating")
	ingestApp := fs.String("ingest", "", "with -serve: run the real application kernels (ffthist, radar, or stereo) behind an ingestion data plane with POST /v1/submit on the live server")
	queueDepth := fs.Int("queue-depth", 64, "with -ingest: bounded admission queue depth (queue_full sheds beyond it)")
	shedDeadline := fs.Duration("shed-deadline", 2*time.Second, "with -ingest: default per-request deadline budget; requests whose queue wait exceeds it are shed")
	tenantRate := fs.Float64("tenant-rate", 0, "with -ingest: per-tenant admission rate limit in requests/s (0 = unlimited)")
	ingestSize := fs.Int("ingest-size", 0, "with -ingest: problem size (ffthist matrix N, radar range gates, stereo image width; 0 = a serving default)")
	ingestDispatchers := fs.Int("ingest-dispatchers", 4, "with -ingest: concurrent pipeline dispatchers")
	ingestGen := fs.Bool("ingest-gen", false, "with -ingest: serve on the pipegen-generated executor committed under internal/gen (requires the solved mapping to match the generated code; incompatible with -serve-kill)")
	traceSample := fs.Float64("trace-sample", 0, "with -ingest: head-sampling rate for request traces in [0,1] (0 = tracing off; client traceparent sampled flags always force)")
	traceSpans := fs.String("trace-spans", "", "with -ingest: export finished sampled traces as NDJSON to this file")
	flightSize := fs.Int("flight", 256, "with -ingest: flight recorder ring size (last N traces/sheds/adapt decisions at /debug/flightrecorder)")
	sloP99 := fs.Duration("slo-p99", 0, "with -ingest: p99 end-to-end latency objective (0 = the -shed-deadline budget)")
	sloAvailability := fs.Float64("slo-availability", 0.999, "with -ingest: availability objective target in (0,1]")
	fleetMode := fs.Bool("fleet", false, "with -serve: run every spec file argument as a tenant pipeline sharing one processor pool (fleet scheduler; POST /v1/<tenant>/submit, /fleet, POST /fleet/fail)")
	fleetProcs := fs.Int("fleet-procs", 0, "with -fleet: shared pool size in processors (0 = the largest spec's processor count)")
	fleetGrid := fs.String("fleet-grid", "", "with -fleet: pack pipeline allocations as disjoint rectangles on an RxC processor grid (e.g. 8x8)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *traceSample < 0 || *traceSample > 1 {
		return fmt.Errorf("-trace-sample must be in [0,1], got %g", *traceSample)
	}
	if *sloAvailability <= 0 || *sloAvailability > 1 {
		return fmt.Errorf("-slo-availability must be in (0,1], got %g", *sloAvailability)
	}
	if *serveAddr != "" && *asJSON {
		return fmt.Errorf("-serve is not combinable with -json")
	}
	if *adapt && *serveAddr == "" {
		return fmt.Errorf("-adapt requires -serve")
	}
	if *ingestApp != "" && *serveAddr == "" {
		return fmt.Errorf("-ingest requires -serve")
	}
	if *ingestGen {
		if *ingestApp == "" {
			return fmt.Errorf("-ingest-gen requires -ingest")
		}
		if *serveKill != "" {
			return fmt.Errorf("-ingest-gen is not combinable with -serve-kill (generated executors do not support fault injection)")
		}
	}
	if *queueDepth < 1 {
		return fmt.Errorf("-queue-depth must be >= 1, got %d", *queueDepth)
	}
	if *fleetMode {
		if *serveAddr == "" {
			return fmt.Errorf("-fleet requires -serve")
		}
		if *ingestApp != "" || *adapt {
			return fmt.Errorf("-fleet is not combinable with -ingest or -adapt (the fleet manages its own planes)")
		}
		if *fleetProcs < 0 {
			return fmt.Errorf("-fleet-procs must be >= 0, got %d", *fleetProcs)
		}
		fc := fleetConfig{
			addr: *serveAddr, procs: *fleetProcs, serveFor: *serveFor,
			queueDepth: *queueDepth, shedDeadline: *shedDeadline,
			dispatchers: *ingestDispatchers, ingestSize: *ingestSize,
		}
		if *fleetGrid != "" {
			g, err := parseGrid(*fleetGrid)
			if err != nil {
				return err
			}
			fc.grid = g
		}
		return fleetRun(ctx, stdout, fc, fs.Args())
	}
	if *fleetProcs != 0 || *fleetGrid != "" {
		return fmt.Errorf("-fleet-procs and -fleet-grid require -fleet")
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() { writeHeapProfile(*memprofile) }()
	}
	if *failProcs < 0 {
		return fmt.Errorf("-fail-procs must be >= 0, got %d", *failProcs)
	}
	if *failProcs > 0 && *asJSON {
		return fmt.Errorf("-fail-procs is not combinable with -json")
	}

	in := stdin
	if fs.NArg() > 0 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	chain, pl, err := core.ParseChainSpec(in)
	if err != nil {
		return err
	}

	req := core.Request{Chain: chain, Platform: pl}
	if *tracePath != "" {
		req.Trace = obs.NewTracer()
	}
	if *metrics {
		req.Metrics = obs.NewRegistry()
	}
	if *serveAddr != "" && req.Metrics == nil {
		// Collect solver metrics so /metrics merges them into the live
		// exposition even without -metrics.
		req.Metrics = obs.NewRegistry()
	}
	switch *objective {
	case "throughput":
	case "latency":
		req.Objective = core.MinLatency
	default:
		return fmt.Errorf("unknown objective %q", *objective)
	}
	if *latencyBound > 0 {
		req.Objective = core.ThroughputUnderLatency
		req.LatencyBound = *latencyBound
	}
	switch *algo {
	case "auto":
	case "dp":
		req.Algorithm = core.DP
	case "greedy":
		req.Algorithm = core.Greedy
	default:
		return fmt.Errorf("unknown algorithm %q", *algo)
	}
	if *grid != "" {
		g, err := parseGrid(*grid)
		if err != nil {
			return err
		}
		req.Machine = &machine.Constraints{Grid: g, Systolic: *systolic}
	} else if *systolic {
		return fmt.Errorf("-systolic requires -grid")
	}

	res, err := core.Map(req)
	if err != nil {
		return err
	}
	if *certify {
		cert := greedy.Certify(chain, pl)
		fmt.Fprintf(stdout, "certificate: optimal=%v\n  %s\n\n", cert.Optimal, cert.Reason)
	}
	if *frontier {
		front, err := tradeoff.Frontier(chain, pl, tradeoff.Options{MinThroughputGain: 0.02})
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "latency-throughput Pareto frontier:\n")
		for _, pt := range front {
			fmt.Fprintf(stdout, "  %8.3f/s  %8.4fs  %v\n", pt.Throughput, pt.Latency, &pt.Mapping)
		}
		fmt.Fprintln(stdout)
	}
	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(core.EncodeMapping(res.Mapping)); err != nil {
			return err
		}
		return writeTrace(*tracePath, req.Trace)
	}
	fmt.Fprintf(stdout, "algorithm:  %v\n", res.Algorithm)
	fmt.Fprintf(stdout, "mapping:    %v\n", &res.Mapping)
	fmt.Fprintf(stdout, "throughput: %.4f data sets/s\n", res.Throughput)
	fmt.Fprintf(stdout, "latency:    %.4f s\n", res.Latency)
	fmt.Fprintf(stdout, "processors: %d of %d used\n", res.Mapping.TotalProcs(), pl.Procs)
	if res.Layout != nil {
		fmt.Fprintf(stdout, "\nlayout on %dx%d grid:\n%s",
			res.Layout.Grid.Rows, res.Layout.Grid.Cols, res.Layout.String())
		if res.Unconstrained.Throughput() > res.Throughput*1.0001 {
			fmt.Fprintf(stdout, "\nnote: unconstrained optimum %v (%.4f/s) was infeasible on the grid\n",
				&res.Unconstrained, res.Unconstrained.Throughput())
		}
	}
	if *failProcs > 0 {
		deg, err := core.Remap(req, *failProcs)
		if err != nil {
			return fmt.Errorf("degraded remapping after losing %d processors: %w", *failProcs, err)
		}
		fmt.Fprintf(stdout, "\ndegraded after losing %d processors (%d survive):\n",
			*failProcs, pl.Procs-*failProcs)
		fmt.Fprintf(stdout, "  mapping:    %v\n", &deg.Mapping)
		fmt.Fprintf(stdout, "  throughput: %.4f data sets/s (%.1f%% of nominal)\n",
			deg.Throughput, 100*deg.Throughput/res.Throughput)
		fmt.Fprintf(stdout, "  latency:    %.4f s\n", deg.Latency)
	}
	if *metrics {
		fmt.Fprintf(stdout, "\nmetrics:\n")
		if err := req.Metrics.Snapshot().WriteText(stdout); err != nil {
			return err
		}
	}
	if *tracePath != "" {
		if err := writeTrace(*tracePath, req.Trace); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "\ntrace written to %s (%d events) — open in chrome://tracing or ui.perfetto.dev\n",
			*tracePath, req.Trace.Len())
	}
	if *serveAddr != "" {
		fmt.Fprintln(stdout)
		return serveRun(ctx, stdout, res, req, serveConfig{
			addr: *serveAddr, n: *serveN, speedup: *serveSpeedup,
			serveFor: *serveFor, kill: *serveKill,
			adapt: *adapt, adaptInterval: *adaptInterval, adaptThreshold: *adaptThreshold,
			ingestApp: *ingestApp, queueDepth: *queueDepth, shedDeadline: *shedDeadline,
			tenantRate: *tenantRate, ingestSize: *ingestSize, dispatchers: *ingestDispatchers,
			ingestGen: *ingestGen,
			traceSample: *traceSample, traceSpans: *traceSpans, flightSize: *flightSize,
			sloP99: *sloP99, sloAvailability: *sloAvailability,
		})
	}
	return nil
}

// writeTrace writes the collected solver trace as Chrome trace_event JSON.
func writeTrace(path string, tr *obs.Tracer) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeHeapProfile best-effort writes a heap profile; -memprofile is a
// debugging aid, so failures only warn.
func writeHeapProfile(path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pipemap: memprofile:", err)
		return
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		fmt.Fprintln(os.Stderr, "pipemap: memprofile:", err)
	}
}

func parseGrid(s string) (machine.Grid, error) {
	parts := strings.SplitN(strings.ToLower(s), "x", 2)
	if len(parts) != 2 {
		return machine.Grid{}, fmt.Errorf("grid %q is not RxC", s)
	}
	var g machine.Grid
	if _, err := fmt.Sscanf(parts[0], "%d", &g.Rows); err != nil {
		return machine.Grid{}, fmt.Errorf("grid rows %q: %w", parts[0], err)
	}
	if _, err := fmt.Sscanf(parts[1], "%d", &g.Cols); err != nil {
		return machine.Grid{}, fmt.Errorf("grid cols %q: %w", parts[1], err)
	}
	if err := g.Validate(); err != nil {
		return machine.Grid{}, err
	}
	return g, nil
}
