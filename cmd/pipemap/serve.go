package main

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"pipemap/internal/fxrt"
	"pipemap/internal/model"
	"pipemap/internal/obs"
	"pipemap/internal/obs/live"
)

// serveConfig carries the -serve* flags.
type serveConfig struct {
	addr     string
	n        int
	speedup  float64
	serveFor time.Duration
	kill     string
}

// serveRun executes the solved mapping on the fault-tolerant runtime with a
// live observability server attached: one emulated stage per module,
// replicated per the mapping, with stage times compressed by the speedup
// factor. The health model compares observed per-stage periods against the
// model's f_i/r_i (scaled identically), so /pipeline shows the predicted
// bottleneck reproducing live — and, with -serve-kill, how losing a replica
// moves the pipeline to degraded.
func serveRun(stdout io.Writer, m model.Mapping, metrics *obs.Registry, sc serveConfig) error {
	if sc.n < 2 {
		return fmt.Errorf("-serve-n must be >= 2, got %d", sc.n)
	}
	pl, err := fxrt.ModelPipeline(m, sc.speedup)
	if err != nil {
		return err
	}
	// Always run fault-tolerant: retries and death detection are what the
	// live health model observes.
	pl.Retry = fxrt.RetryPolicy{MaxRetries: 2, Backoff: time.Millisecond}
	pl.DeadAfter = 2
	if sc.kill != "" {
		stage, inst, err := resolveKill(sc.kill, m)
		if err != nil {
			return err
		}
		// A permanent failure on one instance: it fails every attempt, is
		// declared dead after DeadAfter consecutive failures, and its share
		// of the stream requeues onto the surviving replicas.
		pl.Faults = append(pl.Faults, fxrt.Fault{
			Stage: stage, Instance: inst, DataSet: -1, Kind: fxrt.FaultFail,
		})
		fmt.Fprintf(stdout, "injecting permanent failure: stage %d instance %d\n", stage, inst)
	}
	mon := live.NewMonitor(live.ConfigFromMapping(m).Scale(sc.speedup))
	pl.Monitor = mon

	opts := live.ServerOptions{Monitor: mon}
	if metrics != nil {
		opts.Static = metrics.Snapshot
	}
	srv := live.NewServer(opts)
	if err := srv.Start(sc.addr); err != nil {
		return err
	}
	defer srv.Close()
	fmt.Fprintf(stdout, "serving live observability on http://%s (/metrics /pipeline /healthz /readyz /events)\n", srv.Addr())

	stats, err := pl.Run(func(i int) fxrt.DataSet { return i }, sc.n, 0)
	if err != nil {
		return err
	}
	h := mon.Health()
	fmt.Fprintf(stdout, "run complete: %d data sets, %.4f data sets/s observed (model predicts %.4f at %gx speedup)\n",
		stats.DataSets, stats.Throughput, m.Throughput()*sc.speedup, sc.speedup)
	fmt.Fprintf(stdout, "health: %s", h.Status)
	if h.Reason != "" {
		fmt.Fprintf(stdout, " (%s)", h.Reason)
	}
	fmt.Fprintf(stdout, "; bottleneck stage %d (%s), predicted %d\n",
		h.BottleneckStage, h.Stages[h.BottleneckStage].Name, h.PredictedBottleneck)
	if stats.Retried+stats.Dropped+stats.Dead > 0 {
		fmt.Fprintf(stdout, "faults: %d retried, %d dropped, %d instance death(s)\n",
			stats.Retried, stats.Dropped, stats.Dead)
	}
	if sc.serveFor > 0 {
		time.Sleep(sc.serveFor)
		return nil
	}
	fmt.Fprintln(stdout, "serving until killed (ctrl-c to exit)")
	select {}
}

// resolveKill parses -serve-kill: "auto" picks instance 0 of the first
// replicated stage; otherwise "stage:instance".
func resolveKill(spec string, m model.Mapping) (int, int, error) {
	if spec == "auto" {
		for i, mod := range m.Modules {
			if mod.Replicas > 1 {
				return i, 0, nil
			}
		}
		return 0, 0, fmt.Errorf("-serve-kill auto: no replicated stage to kill (killing the only instance would only drop data sets)")
	}
	parts := strings.SplitN(spec, ":", 2)
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("-serve-kill %q is not stage:instance or auto", spec)
	}
	stage, err := strconv.Atoi(parts[0])
	if err != nil {
		return 0, 0, fmt.Errorf("-serve-kill stage %q: %w", parts[0], err)
	}
	inst, err := strconv.Atoi(parts[1])
	if err != nil {
		return 0, 0, fmt.Errorf("-serve-kill instance %q: %w", parts[1], err)
	}
	if stage < 0 || stage >= len(m.Modules) {
		return 0, 0, fmt.Errorf("-serve-kill stage %d outside the %d-module mapping", stage, len(m.Modules))
	}
	if inst < 0 || inst >= m.Modules[stage].Replicas {
		return 0, 0, fmt.Errorf("-serve-kill instance %d outside stage %d's %d replicas",
			inst, stage, m.Modules[stage].Replicas)
	}
	return stage, inst, nil
}
