package main

import (
	"context"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"pipemap/internal/adapt"
	"pipemap/internal/core"
	"pipemap/internal/fxrt"
	"pipemap/internal/model"
	"pipemap/internal/obs/live"
)

// serveConfig carries the -serve* and -adapt* flags.
type serveConfig struct {
	addr     string
	n        int
	speedup  float64
	serveFor time.Duration
	kill     string

	adapt          bool
	adaptInterval  time.Duration
	adaptThreshold float64

	ingestApp    string
	queueDepth   int
	shedDeadline time.Duration
	tenantRate   float64
	ingestSize   int
	dispatchers  int
	ingestGen    bool

	traceSample     float64
	traceSpans      string
	flightSize      int
	sloP99          time.Duration
	sloAvailability float64
}

// serveWait blocks until the configured serving window elapses or the
// process is signalled, then reports whether a drain is due to a signal.
func serveWait(ctx context.Context, stdout io.Writer, serveFor time.Duration) {
	if serveFor > 0 {
		select {
		case <-time.After(serveFor):
		case <-ctx.Done():
		}
		return
	}
	fmt.Fprintln(stdout, "serving until killed (ctrl-c or SIGTERM to exit)")
	<-ctx.Done()
}

// serveRun executes the solved mapping on the fault-tolerant runtime with a
// live observability server attached: one emulated stage per module,
// replicated per the mapping, with stage times compressed by the speedup
// factor. The health model compares observed per-stage periods against the
// model's f_i/r_i (scaled identically), so /pipeline shows the predicted
// bottleneck reproducing live — and, with -serve-kill, how losing a replica
// moves the pipeline to degraded.
func serveRun(ctx context.Context, stdout io.Writer, res core.Result, req core.Request, sc serveConfig) error {
	if sc.n < 2 {
		return fmt.Errorf("-serve-n must be >= 2, got %d", sc.n)
	}
	if sc.ingestApp != "" {
		return serveIngest(ctx, stdout, res, req, sc)
	}
	if sc.adapt {
		return serveAdaptive(ctx, stdout, res, req, sc)
	}
	m, metrics := res.Mapping, req.Metrics
	pl, err := fxrt.ModelPipeline(m, sc.speedup)
	if err != nil {
		return err
	}
	// Always run fault-tolerant: retries and death detection are what the
	// live health model observes.
	pl.Retry = fxrt.RetryPolicy{MaxRetries: 2, Backoff: time.Millisecond}
	pl.DeadAfter = 2
	if sc.kill != "" {
		stage, inst, err := resolveKill(sc.kill, m)
		if err != nil {
			return err
		}
		// A permanent failure on one instance: it fails every attempt, is
		// declared dead after DeadAfter consecutive failures, and its share
		// of the stream requeues onto the surviving replicas.
		pl.Faults = append(pl.Faults, fxrt.Fault{
			Stage: stage, Instance: inst, DataSet: -1, Kind: fxrt.FaultFail,
		})
		fmt.Fprintf(stdout, "injecting permanent failure: stage %d instance %d\n", stage, inst)
	}
	mon := live.NewMonitor(live.ConfigFromMapping(m).Scale(sc.speedup))
	pl.Monitor = mon

	opts := live.ServerOptions{Monitor: mon}
	if metrics != nil {
		opts.Static = metrics.Snapshot
	}
	srv := live.NewServer(opts)
	if err := srv.Start(sc.addr); err != nil {
		return err
	}
	defer srv.Close()
	fmt.Fprintf(stdout, "serving live observability on http://%s (/metrics /pipeline /healthz /readyz /events)\n", srv.Addr())

	stats, err := pl.Run(func(i int) fxrt.DataSet { return i }, sc.n, 0)
	if err != nil {
		return err
	}
	h := mon.Health()
	fmt.Fprintf(stdout, "run complete: %d data sets, %.4f data sets/s observed (model predicts %.4f at %gx speedup)\n",
		stats.DataSets, stats.Throughput, m.Throughput()*sc.speedup, sc.speedup)
	fmt.Fprintf(stdout, "health: %s", h.Status)
	if h.Reason != "" {
		fmt.Fprintf(stdout, " (%s)", h.Reason)
	}
	fmt.Fprintf(stdout, "; bottleneck stage %d (%s), predicted %d\n",
		h.BottleneckStage, h.Stages[h.BottleneckStage].Name, h.PredictedBottleneck)
	if stats.Retried+stats.Dropped+stats.Dead > 0 {
		fmt.Fprintf(stdout, "faults: %d retried, %d dropped, %d instance death(s)\n",
			stats.Retried, stats.Dropped, stats.Dead)
	}
	serveWait(ctx, stdout, sc.serveFor)
	return nil
}

// serveAdaptive runs the closed loop: the solved mapping executes in
// bounded segments on the fault-tolerant runtime, and between segments the
// adaptive controller refits the cost models from observed stage
// latencies, re-solves on the surviving processors, and live-migrates when
// the predicted gain clears the threshold. The observability server
// follows the current generation's monitor and serves the controller state
// under /pipeline's "controller" key. An injected -serve-kill fault
// applies to generation 0 only, so a death-triggered remap visibly returns
// the pipeline to nominal.
func serveAdaptive(ctx context.Context, stdout io.Writer, res core.Result, req core.Request, sc serveConfig) error {
	m := res.Mapping
	ctrl, err := adapt.NewController(adapt.Config{
		Chain:     req.Chain,
		Platform:  req.Platform,
		Initial:   m,
		Threshold: sc.adaptThreshold,
		TimeScale: sc.speedup,
		Trace:     req.Trace,
		Metrics:   req.Metrics,
	})
	if err != nil {
		return err
	}

	killStage, killInst := -1, -1
	if sc.kill != "" {
		killStage, killInst, err = resolveKill(sc.kill, m)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "injecting permanent failure: stage %d instance %d (generation 0 only)\n",
			killStage, killInst)
	}

	rt := &adapt.Runtime{
		Controller: ctrl,
		Factory: func(gm model.Mapping, gen int) (*fxrt.Pipeline, error) {
			pl, err := fxrt.ModelPipeline(gm, sc.speedup)
			if err != nil {
				return nil, err
			}
			pl.Retry = fxrt.RetryPolicy{MaxRetries: 2, Backoff: time.Millisecond}
			pl.DeadAfter = 2
			if gen == 0 && killStage >= 0 {
				pl.Faults = append(pl.Faults, fxrt.Fault{
					Stage: killStage, Instance: killInst, DataSet: -1, Kind: fxrt.FaultFail,
				})
			}
			return pl, nil
		},
		MonitorConfig: func(gm model.Mapping) live.Config {
			return live.ConfigFromMapping(gm).Scale(sc.speedup)
		},
		SegmentSize: adaptSegmentSize(m, sc),
		OnSegment: func(gen, segment int, stats fxrt.Stats, d adapt.Decision) {
			if d.Action != adapt.ActionHold {
				fmt.Fprintf(stdout, "cycle %d: %s -> generation %d: %s\n",
					d.Cycle, d.Action, d.Generation, d.Reason)
			}
		},
	}

	opts := live.ServerOptions{
		Source:     rt.Monitor,
		Controller: func() any { return ctrl.Status() },
	}
	if req.Metrics != nil {
		opts.Static = req.Metrics.Snapshot
	}
	srv := live.NewServer(opts)
	if err := srv.Start(sc.addr); err != nil {
		return err
	}
	defer srv.Close()
	fmt.Fprintf(stdout, "serving adaptive pipeline on http://%s (segment size %d; /pipeline carries controller state)\n",
		srv.Addr(), rt.SegmentSize)

	stats, err := rt.Run(sc.n)
	if err != nil {
		return err
	}
	st := ctrl.Status()
	fmt.Fprintf(stdout, "run complete: %d data sets across %d generation(s); %d migration(s), %d rollback(s), %d processor(s) lost\n",
		stats.DataSets, len(stats.Generations), stats.Migrations, stats.Rollbacks, st.LostProcs)
	for _, g := range stats.Generations {
		tag := ""
		if g.Rollback {
			tag = " (rollback)"
		}
		fmt.Fprintf(stdout, "  gen %d%s: %d data sets, %.4f data sets/s observed — %s\n",
			g.Generation, tag, g.DataSets, g.Throughput, g.Mapping)
	}
	serveWait(ctx, stdout, sc.serveFor)
	return nil
}

// adaptSegmentSize targets one controller decision per -adapt-interval of
// wall time: the mapping's predicted runtime throughput times the interval,
// clamped to [8, 256] so a drain never strands an unbounded number of
// in-flight data sets and a decision always has a few observations.
func adaptSegmentSize(m model.Mapping, sc serveConfig) int {
	interval := sc.adaptInterval.Seconds()
	if interval <= 0 {
		interval = 2
	}
	n := int(m.Throughput() * sc.speedup * interval)
	if n < 8 {
		n = 8
	}
	if n > 256 {
		n = 256
	}
	return n
}

// resolveKill parses -serve-kill: "auto" picks instance 0 of the first
// replicated stage; otherwise "stage:instance".
func resolveKill(spec string, m model.Mapping) (int, int, error) {
	if spec == "auto" {
		for i, mod := range m.Modules {
			if mod.Replicas > 1 {
				return i, 0, nil
			}
		}
		return 0, 0, fmt.Errorf("-serve-kill auto: no replicated stage to kill (killing the only instance would only drop data sets)")
	}
	parts := strings.SplitN(spec, ":", 2)
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("-serve-kill %q is not stage:instance or auto", spec)
	}
	stage, err := strconv.Atoi(parts[0])
	if err != nil {
		return 0, 0, fmt.Errorf("-serve-kill stage %q: %w", parts[0], err)
	}
	inst, err := strconv.Atoi(parts[1])
	if err != nil {
		return 0, 0, fmt.Errorf("-serve-kill instance %q: %w", parts[1], err)
	}
	if stage < 0 || stage >= len(m.Modules) {
		return 0, 0, fmt.Errorf("-serve-kill stage %d outside the %d-module mapping", stage, len(m.Modules))
	}
	if inst < 0 || inst >= m.Modules[stage].Replicas {
		return 0, 0, fmt.Errorf("-serve-kill instance %d outside stage %d's %d replicas",
			inst, stage, m.Modules[stage].Replicas)
	}
	return stage, inst, nil
}
