package main

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
)

const specJSON = `{
  "platform": {"procs": 16, "memPerProc": 0.5},
  "tasks": [
    {"name": "a", "exec": [0.01, 1.0, 0.002], "mem": {"data": 0.6}, "replicable": true},
    {"name": "b", "exec": [0.02, 1.5, 0.004], "mem": {"data": 0.8}, "replicable": true}
  ],
  "edges": [
    {"icom": [0.005, 0.2, 0.0005], "ecom": [0.02, 0.1, 0.1, 0.0005, 0.0005]}
  ]
}`

func TestRunFromStdin(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), nil, strings.NewReader(specJSON), &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"mapping:", "throughput:", "latency:", "processors:"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunFromFile(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"testdata/ffthist256.json"}, nil, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "rowffts+hist") {
		t.Errorf("FFT-Hist clustering missing:\n%s", out.String())
	}
}

func TestRunJSONOutput(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-json"}, strings.NewReader(specJSON), &out); err != nil {
		t.Fatal(err)
	}
	var spec struct {
		Modules []struct {
			Procs, Replicas int
		} `json:"modules"`
	}
	if err := json.Unmarshal(out.Bytes(), &spec); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out.String())
	}
	if len(spec.Modules) == 0 {
		t.Error("no modules in JSON output")
	}
}

func TestRunWithGrid(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-grid", "4x4"}, strings.NewReader(specJSON), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "layout on 4x4 grid") {
		t.Errorf("layout missing:\n%s", out.String())
	}
}

func TestRunAlgorithms(t *testing.T) {
	for _, algo := range []string{"dp", "greedy", "auto"} {
		var out bytes.Buffer
		if err := run(context.Background(), []string{"-algo", algo}, strings.NewReader(specJSON), &out); err != nil {
			t.Errorf("algo %s: %v", algo, err)
		}
	}
}

func TestRunCertifyAndFrontier(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-certify", "-frontier"}, strings.NewReader(specJSON), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "certificate:") {
		t.Errorf("certificate missing:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "Pareto frontier") {
		t.Errorf("frontier missing:\n%s", out.String())
	}
}

func TestRunObjectives(t *testing.T) {
	var lat bytes.Buffer
	if err := run(context.Background(), []string{"-objective", "latency"}, strings.NewReader(specJSON), &lat); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(lat.String(), "latency:") {
		t.Errorf("latency output missing:\n%s", lat.String())
	}
	var bounded bytes.Buffer
	if err := run(context.Background(), []string{"-latency-bound", "100"}, strings.NewReader(specJSON), &bounded); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(bounded.String(), "mapping:") {
		t.Errorf("bounded output missing:\n%s", bounded.String())
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{"-algo", "quantum"},
		{"-objective", "fame"},
		{"-systolic"},          // requires -grid
		{"-grid", "nonsense"},  // bad grid
		{"-grid", "0x4"},       // invalid grid
		{"/no/such/file.json"}, // missing file
	}
	for _, args := range cases {
		var out bytes.Buffer
		if err := run(context.Background(), args, strings.NewReader(specJSON), &out); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
	var out bytes.Buffer
	if err := run(context.Background(), nil, strings.NewReader("{"), &out); err == nil {
		t.Error("malformed spec accepted")
	}
}

func TestParseGrid(t *testing.T) {
	g, err := parseGrid("8x8")
	if err != nil || g.Rows != 8 || g.Cols != 8 {
		t.Errorf("parseGrid(8x8) = %v, %v", g, err)
	}
	if _, err := parseGrid("8"); err == nil {
		t.Error("parseGrid(8) accepted")
	}
	if _, err := parseGrid("ax8"); err == nil {
		t.Error("parseGrid(ax8) accepted")
	}
	if _, err := parseGrid("8xb"); err == nil {
		t.Error("parseGrid(8xb) accepted")
	}
}

func TestRunFailProcs(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-fail-procs", "4"}, strings.NewReader(specJSON), &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "degraded after losing 4 processors (12 survive)") {
		t.Errorf("degraded report missing:\n%s", s)
	}
	if !strings.Contains(s, "% of nominal") {
		t.Errorf("nominal comparison missing:\n%s", s)
	}
}

func TestRunFailProcsErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-fail-procs", "-1"},
		{"-fail-procs", "16"},  // loses every processor
		{"-fail-procs", "100"}, // more than the machine has
		{"-fail-procs", "4", "-json"},
	} {
		var out bytes.Buffer
		if err := run(context.Background(), args, strings.NewReader(specJSON), &out); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

// TestRunMalformedSpecs feeds structurally broken variants of the valid
// specs/threestage.json baseline and asserts a clean error (no panic).
func TestRunMalformedSpecs(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"../../specs/threestage.json"}, nil, &out); err != nil {
		t.Fatalf("valid baseline spec rejected: %v", err)
	}
	cases := map[string]string{
		"negative procs": `{
		  "platform": {"procs": -4, "memPerProc": 0.5},
		  "tasks": [{"name": "a", "exec": [0.01, 0.8, 0.001], "mem": {"data": 1.0}, "replicable": true}],
		  "edges": []
		}`,
		"zero procs": `{
		  "platform": {"procs": 0, "memPerProc": 0.5},
		  "tasks": [{"name": "a", "exec": [0.01, 0.8, 0.001], "replicable": true}],
		  "edges": []
		}`,
		"zero tasks": `{
		  "platform": {"procs": 32, "memPerProc": 0.5},
		  "tasks": [],
		  "edges": []
		}`,
		"edge count mismatch": `{
		  "platform": {"procs": 32, "memPerProc": 0.5},
		  "tasks": [{"name": "a", "exec": [0.01, 0.8, 0.001], "replicable": true}],
		  "edges": [{"icom": [], "ecom": [0.05, 0.3, 0.3, 0.0005, 0.0005]}]
		}`,
		"bad exec arity": `{
		  "platform": {"procs": 32, "memPerProc": 0.5},
		  "tasks": [{"name": "a", "exec": [0.01], "replicable": true}],
		  "edges": []
		}`,
		"negative memory": `{
		  "platform": {"procs": 32, "memPerProc": -0.5},
		  "tasks": [{"name": "a", "exec": [0.01, 0.8, 0.001], "replicable": true}],
		  "edges": []
		}`,
	}
	for name, spec := range cases {
		var out bytes.Buffer
		if err := run(context.Background(), nil, strings.NewReader(spec), &out); err == nil {
			t.Errorf("%s: malformed spec accepted", name)
		}
	}
}
