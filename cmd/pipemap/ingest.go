package main

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"pipemap/internal/adapt"
	"pipemap/internal/apps"
	"pipemap/internal/core"
	"pipemap/internal/fxrt"
	"pipemap/internal/gen/ffthist256"
	"pipemap/internal/gen/radar64"
	"pipemap/internal/gen/stereo128"
	"pipemap/internal/ingest"
	"pipemap/internal/model"
	"pipemap/internal/obs"
	"pipemap/internal/obs/live"
	"pipemap/internal/obs/slo"
)

// ingestLivenessFloor opens the admission circuit breaker when any stage
// retains less than half of its replicas: a half-dead stage still serves,
// but admitting a full queue against it would convert queueing into
// deadline sheds, so the breaker rejects at the door instead.
const ingestLivenessFloor = 0.5

// buildIngestApp realizes the solved mapping as a real kernel pipeline for
// the named application, with the fault-tolerance policy the data plane
// expects, and returns the codec translating HTTP payloads to data sets.
func buildIngestApp(sc serveConfig, m model.Mapping) (*fxrt.Pipeline, fxrt.StreamOptions, ingest.Codec, error) {
	var (
		pl    *fxrt.Pipeline
		opts  fxrt.StreamOptions
		codec ingest.Codec
		err   error
	)
	switch sc.ingestApp {
	case "ffthist":
		n := sc.ingestSize
		if n == 0 {
			n = 128
		}
		r := apps.FFTHistRunner{N: n}
		var edges []fxrt.Edge
		pl, edges, err = r.Pipeline(m)
		opts.Edges = edges
		codec = apps.FFTHistCodec{Runner: r}
	case "radar":
		r := apps.RadarRunner{Gates: sc.ingestSize}
		pl, _, err = r.Pipeline(m)
		codec = apps.RadarCodec{Runner: r}
	case "stereo":
		r := apps.StereoRunner{W: sc.ingestSize}
		pl, err = r.Pipeline(m)
		codec = apps.StereoCodec{Runner: r}
	default:
		return nil, opts, nil, fmt.Errorf("-ingest %q: unknown application (want ffthist, radar, or stereo)", sc.ingestApp)
	}
	if err != nil {
		return nil, opts, nil, err
	}
	pl.Retry = ingestRetry
	pl.DeadAfter = 2
	return pl, opts, codec, nil
}

// ingestRetry is the fault-tolerance policy both ingest backends run:
// buildIngestApp sets it on the generic pipeline, buildGenBackend on the
// generated executor, so a live swap between them preserves semantics.
var ingestRetry = fxrt.RetryPolicy{MaxRetries: 2, Backoff: time.Millisecond}

// buildGenBackend builds the pipegen-generated executor for the app as the
// plane's backend (-ingest-gen). The solved mapping must match the
// mapping baked into the committed generated code; size defaults mirror
// buildIngestApp so the codec and the executor agree on dimensions.
func buildGenBackend(sc serveConfig, m model.Mapping, mon *live.Monitor) (ingest.Backend, ingest.Codec, error) {
	checkBaked := func(baked string) error {
		if got := m.String(); got != baked {
			return fmt.Errorf("-ingest-gen: solved mapping %q does not match the generated executor's %q; solve the committed spec, or run make pipegen and rebuild", got, baked)
		}
		return nil
	}
	switch sc.ingestApp {
	case "ffthist":
		if err := checkBaked(ffthist256.MappingString); err != nil {
			return nil, nil, err
		}
		n := sc.ingestSize
		if n == 0 {
			n = 128
		}
		ex, err := ffthist256.New(ffthist256.Config{N: n, Retry: ingestRetry, Monitor: mon})
		if err != nil {
			return nil, nil, err
		}
		return ex, apps.FFTHistCodec{Runner: apps.FFTHistRunner{N: n}}, nil
	case "radar":
		if err := checkBaked(radar64.MappingString); err != nil {
			return nil, nil, err
		}
		gates := sc.ingestSize
		if gates == 0 {
			gates = 256 // the runner's serving default, not the baked 64
		}
		ex, err := radar64.New(radar64.Config{Gates: gates, Retry: ingestRetry, Monitor: mon})
		if err != nil {
			return nil, nil, err
		}
		return ex, apps.RadarCodec{Runner: apps.RadarRunner{Gates: gates}}, nil
	case "stereo":
		if err := checkBaked(stereo128.MappingString); err != nil {
			return nil, nil, err
		}
		w := sc.ingestSize
		if w == 0 {
			w = 128
		}
		ex, err := stereo128.New(stereo128.Config{W: w, Retry: ingestRetry, Monitor: mon})
		if err != nil {
			return nil, nil, err
		}
		return ex, apps.StereoCodec{Runner: apps.StereoRunner{W: w}}, nil
	default:
		return nil, nil, fmt.Errorf("-ingest %q: unknown application (want ffthist, radar, or stereo)", sc.ingestApp)
	}
}

// serveIngest runs the ingestion data plane: the solved mapping realized as
// a real kernel pipeline behind a bounded admission queue, accepting data
// sets as POST /v1/submit on the live observability server and returning
// computed results or structured shed errors. SIGTERM (or -serve-for
// elapsing) stops admission, flushes the backlog and every in-flight
// request, and only then tears the pipeline down — zero accepted requests
// are lost. With -adapt, the remapping controller observes pipeline health
// plus ingest load each interval and live-migrates the plane onto a better
// mapping via Plane.Swap.
func serveIngest(ctx context.Context, stdout io.Writer, res core.Result, req core.Request, sc serveConfig) error {
	m := res.Mapping
	mon := live.NewMonitor(live.ConfigFromMapping(m))
	var (
		pl    *fxrt.Pipeline
		opts  fxrt.StreamOptions
		be    ingest.Backend
		codec ingest.Codec
		err   error
	)
	if sc.ingestGen {
		// Serve on the specialized generated executor; -adapt can still
		// migrate onto the generic engine later via Plane.Swap.
		be, codec, err = buildGenBackend(sc, m, mon)
		if err != nil {
			return err
		}
	} else {
		pl, opts, codec, err = buildIngestApp(sc, m)
		if err != nil {
			return err
		}
		if sc.kill != "" {
			stage, inst, err := resolveKill(sc.kill, m)
			if err != nil {
				return err
			}
			pl.Faults = append(pl.Faults, fxrt.Fault{
				Stage: stage, Instance: inst, DataSet: -1, Kind: fxrt.FaultFail,
			})
			fmt.Fprintf(stdout, "injecting permanent failure: stage %d instance %d\n", stage, inst)
		}
		pl.Monitor = mon
	}
	reg := live.NewRegistry(live.Options{})

	// Observability plumbing: flight recorder (always on — it is one ring
	// of pointers), span exporter (only with -trace-spans), request tracer
	// (only with -trace-sample > 0 or a forcing client header), and the SLO
	// engine evaluating availability and p99 latency.
	flight := obs.NewFlightRecorder(sc.flightSize)
	var exporter *obs.SpanExporter
	if sc.traceSpans != "" {
		f, err := os.Create(sc.traceSpans)
		if err != nil {
			return fmt.Errorf("-trace-spans: %w", err)
		}
		defer f.Close()
		exporter = obs.NewSpanExporter(f, 0)
		defer exporter.Close()
	}
	tracer := obs.NewReqTracer(obs.ReqTracerConfig{
		SampleRate: sc.traceSample,
		Exporter:   exporter,
		Flight:     flight,
	})
	sloP99 := sc.sloP99
	if sloP99 <= 0 {
		sloP99 = sc.shedDeadline
	}
	engine := slo.New(slo.Config{
		Objectives: []slo.Objective{
			{Name: "availability", Target: sc.sloAvailability},
			{Name: "latency_p99", Target: 0.99, LatencyMS: float64(sloP99) / float64(time.Millisecond)},
		},
		PerTenant: true,
		Registry:  reg,
	})

	icfg := ingest.Config{
		Queue:         ingest.QueueConfig{Depth: sc.queueDepth, Rate: sc.tenantRate},
		Dispatchers:   sc.dispatchers,
		DefaultBudget: sc.shedDeadline,
		LivenessFloor: ingestLivenessFloor,
		Registry:      reg,
		Tracer:        tracer,
		SLO:           engine,
	}
	var plane *ingest.Plane
	if sc.ingestGen {
		plane, err = ingest.NewBackend(icfg, be, mon)
	} else {
		plane, err = ingest.New(icfg, pl, opts)
	}
	if err != nil {
		return err
	}

	// The served monitor follows the current backend across live swaps.
	var curMon atomic.Pointer[live.Monitor]
	curMon.Store(mon)

	srvOpts := live.ServerOptions{
		Source:   func() *live.Monitor { return curMon.Load() },
		Registry: reg,
		Ingest:   func() any { return plane.Stats() },
		SLO:      func() any { return engine.Report() },
		Flight:   flight.Snapshot,
		Extra: map[string]http.Handler{
			"/v1/submit": ingest.SubmitHandler(plane, codec),
			"/v1/ingest": ingest.StatusHandler(plane),
		},
	}
	if req.Metrics != nil {
		srvOpts.Static = req.Metrics.Snapshot
	}
	var ctrl *adapt.Controller
	if sc.adapt {
		ctrl, err = adapt.NewController(adapt.Config{
			Chain:     req.Chain,
			Platform:  req.Platform,
			Initial:   m,
			Threshold: sc.adaptThreshold,
			TimeScale: 1,
			Trace:     req.Trace,
			Metrics:   req.Metrics,
			Flight:    flight,
		})
		if err != nil {
			plane.Drain() // the stream is already running; don't leak it
			return err
		}
		srvOpts.Controller = func() any { return ctrl.Status() }
	}
	srv := live.NewServer(srvOpts)
	if err := srv.Start(sc.addr); err != nil {
		plane.Drain()
		return err
	}
	defer srv.Close()
	rate := "unlimited"
	if sc.tenantRate > 0 {
		rate = fmt.Sprintf("%g req/s per tenant", sc.tenantRate)
	}
	engineName := "generic fxrt"
	if sc.ingestGen {
		engineName = "pipegen-generated"
	}
	fmt.Fprintf(stdout, "serving %s ingestion on http://%s via the %s executor (POST /v1/submit; /v1/ingest /pipeline /metrics /readyz)\n",
		codec.App(), srv.Addr(), engineName)
	fmt.Fprintf(stdout, "admission: queue depth %d, deadline budget %s, rate %s, %d dispatcher(s)\n",
		sc.queueDepth, sc.shedDeadline, rate, sc.dispatchers)
	spans := "off"
	if sc.traceSpans != "" {
		spans = sc.traceSpans
	}
	fmt.Fprintf(stdout, "tracing: sample %g, span export %s, flight ring %d (/slo /debug/flightrecorder)\n",
		sc.traceSample, spans, flight.Cap())

	adaptDone := make(chan struct{})
	var adaptWg sync.WaitGroup
	if ctrl != nil {
		interval := sc.adaptInterval
		if interval <= 0 {
			interval = 2 * time.Second
		}
		adaptWg.Add(1)
		go func() {
			defer adaptWg.Done()
			ingestAdaptLoop(stdout, sc, plane, ctrl, &curMon, interval, adaptDone)
		}()
	}

	serveWait(ctx, stdout, sc.serveFor)
	close(adaptDone)
	adaptWg.Wait()

	fmt.Fprintln(stdout, "draining: admission stopped, flushing accepted requests")
	ds := plane.Drain()
	st := plane.Stats()
	var shed int64
	for _, n := range st.Shed {
		shed += n
	}
	fmt.Fprintf(stdout, "drain complete: %d request(s) flushed; lifetime admitted %d, completed %d, failed %d, shed %d\n",
		ds.Flushed, st.Admitted, st.Completed, st.Failed, shed)
	return nil
}

// ingestAdaptLoop drives the remapping controller against the live plane:
// each interval it feeds pipeline health and ingest load evidence into
// Step, and on a migrate or rollback decision rebuilds the kernel pipeline
// on the controller's mapping and swaps the plane onto it without dropping
// a request.
func ingestAdaptLoop(stdout io.Writer, sc serveConfig, plane *ingest.Plane, ctrl *adapt.Controller,
	curMon *atomic.Pointer[live.Monitor], interval time.Duration, done <-chan struct{}) {
	tick := time.NewTicker(interval)
	defer tick.Stop()
	var lastAdmit, lastShed int64
	for {
		select {
		case <-done:
			return
		case <-tick.C:
		}
		st := plane.Stats()
		var shed int64
		for _, n := range st.Shed {
			shed += n
		}
		load := adapt.IngestLoad{
			QueueDepth: st.QueueDepth,
			InFlight:   st.Dispatching,
			AdmitRate:  float64(st.Admitted-lastAdmit) / interval.Seconds(),
			ShedRate:   float64(shed-lastShed) / interval.Seconds(),
		}
		lastAdmit, lastShed = st.Admitted, shed
		h := curMon.Load().Health()
		d := ctrl.Step(adapt.Observation{Health: h, Throughput: h.ObservedThroughput, Ingest: &load})
		if d.Action == adapt.ActionHold {
			continue
		}
		nm := ctrl.Mapping()
		npl, nopts, _, err := buildIngestApp(sc, nm)
		if err != nil {
			fmt.Fprintf(stdout, "cycle %d: %s aborted: %v\n", d.Cycle, d.Action, err)
			continue
		}
		nmon := live.NewMonitor(live.ConfigFromMapping(nm))
		npl.Monitor = nmon
		if err := plane.Swap(npl, nopts); err != nil {
			fmt.Fprintf(stdout, "cycle %d: %s aborted: %v\n", d.Cycle, d.Action, err)
			continue
		}
		curMon.Store(nmon)
		fmt.Fprintf(stdout, "cycle %d: %s -> generation %d: %s\n", d.Cycle, d.Action, d.Generation, d.Reason)
	}
}
