package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

var addrRe = regexp.MustCompile(`http://([0-9.]+:[0-9]+)`)

func waitFor(t *testing.T, buf *syncBuffer, re *regexp.Regexp, done <-chan error) []string {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		if m := re.FindStringSubmatch(buf.String()); m != nil {
			return m
		}
		select {
		case err := <-done:
			t.Fatalf("run exited early (err=%v), output:\n%s", err, buf.String())
		case <-time.After(10 * time.Millisecond):
		}
	}
	t.Fatalf("timeout waiting for %v, output:\n%s", re, buf.String())
	return nil
}

// TestServeReplay drives -serve end to end: simulate the spec with an
// injected fail-stop failure, replay the timeline in virtual time, and
// check the health model reports the death at its simulated timestamp.
func TestServeReplay(t *testing.T) {
	buf := &syncBuffer{}
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-spec", "../../specs/ffthist256.json",
			"-n", "80",
			"-fail", "1.5:1:0",
			"-serve", "127.0.0.1:0",
			"-serve-for", "4s",
		}, buf)
	}()
	addr := waitFor(t, buf, addrRe, done)[1]
	waitFor(t, buf, regexp.MustCompile(`replay complete`), done)

	get := func(path string) (int, string) {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return resp.StatusCode, string(body)
	}

	code, body := get("/pipeline")
	if code != http.StatusOK {
		t.Fatalf("/pipeline = %d", code)
	}
	var h struct {
		Status        string  `json:"status"`
		Finished      bool    `json:"finished"`
		UptimeSeconds float64 `json:"uptimeSeconds"`
		Deaths        int64   `json:"deaths"`
		Completed     int64   `json:"completed"`
		Stages        []struct {
			Live int `json:"live"`
		} `json:"stages"`
	}
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatalf("/pipeline JSON: %v\n%s", err, body)
	}
	if h.Deaths != 1 || h.Status != "degraded" {
		t.Errorf("deaths=%d status=%q, want 1/degraded", h.Deaths, h.Status)
	}
	if h.Completed != 80 || !h.Finished {
		t.Errorf("completed=%d finished=%v, want 80/true", h.Completed, h.Finished)
	}
	if len(h.Stages) != 2 || h.Stages[1].Live != 9 {
		t.Errorf("stage live counts = %+v, want module 1 at 9/10", h.Stages)
	}
	// Virtual uptime is the simulated makespan, not the wall time of the
	// instant replay.
	if h.UptimeSeconds < 1 || h.UptimeSeconds > 60 {
		t.Errorf("virtual uptime = %g, want simulated makespan scale", h.UptimeSeconds)
	}

	code, body = get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	if !strings.Contains(body, "pipemap_stage_deaths_total") ||
		!strings.Contains(body, "pipemap_degraded 1") {
		t.Errorf("/metrics missing death/degraded series:\n%s", body)
	}

	code, body = get("/events?follow=0")
	if code != http.StatusOK || !strings.Contains(body, `"kind":"death"`) {
		t.Errorf("/events = %d, want death event:\n%s", code, body)
	}

	if err := <-done; err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestFailFlagValidation(t *testing.T) {
	if err := run([]string{"-spec", "../../specs/threestage.json", "-fail", "nonsense"},
		io.Discard); err == nil {
		t.Error("malformed -fail accepted")
	}
	if err := run([]string{"-spec", "../../specs/threestage.json", "-fail", "1.0:9:9"},
		io.Discard); err == nil {
		t.Error("out-of-range -fail accepted")
	}
}
