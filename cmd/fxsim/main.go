// Command fxsim runs a mapped task chain on the execution-model simulator
// and reports measured throughput, latency and utilization — the
// reproduction's stand-in for executing the mapping on the machine.
//
// Usage:
//
//	fxsim -spec chain.json [-mapping mapping.json] [-n 400] [-noise 0.03]
//	      [-seed 1] [-gantt] [-trace out.json] [-fail t:module:instance,...]
//	      [-serve addr] [-serve-for dur] [-serve-speed X]
//	      [-cpuprofile cpu.pb] [-memprofile mem.pb]
//
// Without -mapping, the optimal mapping is computed first (like running
// the mapping tool and then the program). -gantt prints an ASCII timeline
// of the first data sets; -trace exports the full simulated timeline as
// Chrome trace_event JSON so it renders in the same viewer
// (chrome://tracing, ui.perfetto.dev) as real runtime traces.
//
// -fail schedules fail-stop processor failures on the simulated timeline
// (comma-separated time:module:instance triples). -serve replays the
// simulated timeline through the live health model in virtual time and
// serves the same endpoints as `pipemap -serve` (/metrics, /healthz,
// /readyz, /pipeline, /events, /debug/pprof): uptime, periods and event
// timestamps are *simulated* seconds. -serve-speed paces the replay in
// virtual seconds per wall second (0 = instant); -serve-for bounds how
// long the server stays up after the replay (default: until killed).
// See DESIGN.md §9.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"pipemap/internal/core"
	"pipemap/internal/model"
	"pipemap/internal/obs/live"
	"pipemap/internal/sim"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "fxsim:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("fxsim", flag.ContinueOnError)
	specPath := fs.String("spec", "", "chain spec JSON file (required)")
	mappingPath := fs.String("mapping", "", "mapping JSON file (default: compute the optimum)")
	n := fs.Int("n", 400, "number of data sets to stream")
	noise := fs.Float64("noise", 0, "relative measurement noise (e.g. 0.03)")
	seed := fs.Int64("seed", 1, "noise seed")
	gantt := fs.Bool("gantt", false, "print an ASCII timeline of the first data sets")
	csvPath := fs.String("csv", "", "write the full trace as CSV to this file")
	stragMod := fs.Int("straggler-module", -1, "inject a straggler into this module (with -straggler-factor)")
	stragFactor := fs.Float64("straggler-factor", 0, "slowdown factor for the straggler instance (e.g. 1.5)")
	tracePath := fs.String("trace", "", "write the simulated timeline as Chrome trace_event JSON to this file")
	cpuprofile := fs.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memprofile := fs.String("memprofile", "", "write a pprof heap profile to this file")
	serveAddr := fs.String("serve", "", "replay the simulated timeline in virtual time through a live observability server on this address (e.g. :9090 or 127.0.0.1:0)")
	serveFor := fs.Duration("serve-for", 0, "with -serve: keep serving this long after the replay, then exit (0 = serve until killed)")
	serveSpeed := fs.Float64("serve-speed", 0, "with -serve: play back at this many virtual seconds per wall second (0 = replay instantly)")
	failSpec := fs.String("fail", "", "inject fail-stop failures: comma-separated time:module:instance triples (e.g. 2.5:1:0)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() { writeHeapProfile(*memprofile) }()
	}
	if *specPath == "" {
		return fmt.Errorf("-spec is required")
	}
	f, err := os.Open(*specPath)
	if err != nil {
		return err
	}
	defer f.Close()
	chain, pl, err := core.ParseChainSpec(f)
	if err != nil {
		return err
	}

	var m model.Mapping
	if *mappingPath != "" {
		mf, err := os.Open(*mappingPath)
		if err != nil {
			return err
		}
		defer mf.Close()
		var spec core.MappingSpec
		if err := json.NewDecoder(mf).Decode(&spec); err != nil {
			return fmt.Errorf("parsing mapping: %w", err)
		}
		m, err = core.DecodeMapping(spec, chain)
		if err != nil {
			return err
		}
		if err := m.Validate(pl); err != nil {
			return err
		}
	} else {
		res, err := core.Map(core.Request{Chain: chain, Platform: pl})
		if err != nil {
			return err
		}
		m = res.Mapping
		fmt.Fprintf(stdout, "computed mapping: %v (predicted %.4f data sets/s)\n\n",
			&m, res.Throughput)
	}

	opts := sim.Options{
		DataSets: *n, Noise: *noise, Seed: *seed,
		Trace: *gantt || *csvPath != "" || *tracePath != "" || *serveAddr != "",
	}
	if *stragMod >= 0 && *stragFactor > 1 {
		opts.StragglerModule = *stragMod
		opts.StragglerFactor = *stragFactor
	}
	if *failSpec != "" {
		failures, err := parseFailures(*failSpec)
		if err != nil {
			return err
		}
		opts.Failures = failures
	}
	res, err := sim.New(opts).Run(m)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "data sets:   %d\n", *n)
	fmt.Fprintf(stdout, "throughput:  %.4f data sets/s (model predicts %.4f)\n",
		res.Throughput, m.Throughput())
	fmt.Fprintf(stdout, "latency:     %.4f s (model lower bound %.4f)\n", res.Latency, m.Latency())
	fmt.Fprintf(stdout, "makespan:    %.4f s\n", res.Makespan)
	for i, u := range res.Utilization {
		mod := m.Modules[i]
		fmt.Fprintf(stdout, "module %d (%s, p=%d r=%d): utilization %.1f%%, blocked send %.3fs recv %.3fs\n",
			i, m.Chain.TaskNames(mod.Lo, mod.Hi), mod.Procs, mod.Replicas, 100*u,
			res.BlockedSend[i], res.BlockedRecv[i])
	}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			return err
		}
		if err := sim.WriteTraceCSV(f, res.Trace); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "trace written to %s (%d segments)\n", *csvPath, len(res.Trace))
	}
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			return err
		}
		if err := sim.WriteTraceChrome(f, res.Trace); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "chrome trace written to %s (%d segments) — open in chrome://tracing or ui.perfetto.dev\n",
			*tracePath, len(res.Trace))
	}
	if *gantt {
		limit := res.Trace
		// Show only the first few data sets for readability.
		var cut []sim.Segment
		for _, s := range limit {
			if s.DataSet < 6 {
				cut = append(cut, s)
			}
		}
		fmt.Fprintf(stdout, "\ntimeline (first 6 data sets):\n%s", sim.Gantt(cut, 100))
	}
	if *serveAddr != "" {
		return serveReplay(stdout, m, res, *serveAddr, *serveFor, *serveSpeed)
	}
	return nil
}

// serveReplay plays the simulated timeline through a live observability
// server in virtual time: the monitor's clock is the replay's virtual
// clock, so /metrics and /pipeline report windowed rates and health as of
// the simulated timeline, not the wall clock.
func serveReplay(stdout io.Writer, m model.Mapping, res sim.Result,
	addr string, serveFor time.Duration, speed float64) error {
	vc := live.NewVirtualClock()
	cfg := live.ConfigFromMapping(m)
	cfg.Options.Clock = vc.Clock()
	mon := live.NewMonitor(cfg)
	srv := live.NewServer(live.ServerOptions{Monitor: mon})
	if err := srv.Start(addr); err != nil {
		return err
	}
	defer srv.Close()
	fmt.Fprintf(stdout, "serving virtual-time replay on http://%s (/metrics /pipeline /events)\n", srv.Addr())
	var pace func(float64)
	if speed > 0 {
		pace = func(dv float64) {
			time.Sleep(time.Duration(dv / speed * float64(time.Second)))
		}
	}
	sim.Replay(res, mon, vc, pace)
	fmt.Fprintf(stdout, "replay complete: %d datasets over %.4f virtual seconds\n",
		res.TraceDataSets(), res.Makespan)
	if serveFor > 0 {
		time.Sleep(serveFor)
		return nil
	}
	select {} // serve until killed
}

// parseFailures parses the -fail flag: comma-separated
// time:module:instance triples.
func parseFailures(spec string) ([]sim.FailureEvent, error) {
	var out []sim.FailureEvent
	for _, part := range strings.Split(spec, ",") {
		var fe sim.FailureEvent
		if n, err := fmt.Sscanf(strings.TrimSpace(part), "%g:%d:%d",
			&fe.Time, &fe.Module, &fe.Instance); err != nil || n != 3 {
			return nil, fmt.Errorf("bad -fail entry %q (want time:module:instance)", part)
		}
		out = append(out, fe)
	}
	return out, nil
}

// writeHeapProfile best-effort writes a heap profile; -memprofile is a
// debugging aid, so failures only warn.
func writeHeapProfile(path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fxsim: memprofile:", err)
		return
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		fmt.Fprintln(os.Stderr, "fxsim: memprofile:", err)
	}
}
