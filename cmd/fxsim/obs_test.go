package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunChromeTrace checks that -trace exports the simulated timeline as
// valid Chrome trace JSON: execution spans on named per-instance rows.
func TestRunChromeTrace(t *testing.T) {
	spec := writeTemp(t, "spec.json", specJSON)
	tracePath := filepath.Join(t.TempDir(), "trace.json")
	var out bytes.Buffer
	if err := run([]string{"-spec", spec, "-n", "30", "-trace", tracePath}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "chrome trace written to") {
		t.Errorf("missing trace confirmation:\n%s", out.String())
	}
	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			TS    float64        `json:"ts"`
			Dur   float64        `json:"dur"`
			TID   int            `json:"tid"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &tf); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(tf.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}
	var spans, names int
	for _, e := range tf.TraceEvents {
		switch e.Phase {
		case "X":
			spans++
			if e.Dur < 0 || e.TS < 0 {
				t.Errorf("span %q has negative ts/dur", e.Name)
			}
		case "M":
			if e.Name != "thread_name" {
				t.Errorf("unexpected metadata %q", e.Name)
			}
			if n, _ := e.Args["name"].(string); !strings.HasPrefix(n, "m") {
				t.Errorf("thread name %q not of form m<mod>.<inst>", n)
			}
			names++
		case "i":
		default:
			t.Errorf("unknown phase %q", e.Phase)
		}
	}
	if spans == 0 {
		t.Error("no execution spans in trace")
	}
	if names == 0 {
		t.Error("no thread_name metadata in trace")
	}
}

// TestRunProfileFlags checks -cpuprofile/-memprofile produce files.
func TestRunProfileFlags(t *testing.T) {
	spec := writeTemp(t, "spec.json", specJSON)
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pb")
	mem := filepath.Join(dir, "mem.pb")
	var out bytes.Buffer
	if err := run([]string{"-spec", spec, "-n", "20", "-cpuprofile", cpu, "-memprofile", mem}, &out); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		if fi, err := os.Stat(p); err != nil || fi.Size() == 0 {
			t.Errorf("profile %s missing or empty (err=%v)", p, err)
		}
	}
}
