package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const specJSON = `{
  "platform": {"procs": 16, "memPerProc": 0.5},
  "tasks": [
    {"name": "a", "exec": [0.01, 1.0, 0.002], "mem": {"data": 0.6}, "replicable": true},
    {"name": "b", "exec": [0.02, 1.5, 0.004], "mem": {"data": 0.8}, "replicable": true}
  ],
  "edges": [
    {"icom": [0.005, 0.2, 0.0005], "ecom": [0.02, 0.1, 0.1, 0.0005, 0.0005]}
  ]
}`

const mappingJSON = `{
  "modules": [
    {"lo": 0, "hi": 1, "procs": 4, "replicas": 2},
    {"lo": 1, "hi": 2, "procs": 4, "replicas": 2}
  ]
}`

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunComputesMapping(t *testing.T) {
	spec := writeTemp(t, "spec.json", specJSON)
	var out bytes.Buffer
	if err := run([]string{"-spec", spec, "-n", "100"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"computed mapping:", "throughput:", "utilization"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunWithExplicitMapping(t *testing.T) {
	spec := writeTemp(t, "spec.json", specJSON)
	mapping := writeTemp(t, "mapping.json", mappingJSON)
	var out bytes.Buffer
	if err := run([]string{"-spec", spec, "-mapping", mapping, "-n", "50"}, &out); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "computed mapping") {
		t.Error("explicit mapping ignored")
	}
}

func TestRunGantt(t *testing.T) {
	spec := writeTemp(t, "spec.json", specJSON)
	var out bytes.Buffer
	if err := run([]string{"-spec", spec, "-n", "20", "-gantt"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "timeline") || !strings.Contains(out.String(), "m0.0") {
		t.Errorf("gantt missing:\n%s", out.String())
	}
}

func TestRunNoise(t *testing.T) {
	spec := writeTemp(t, "spec.json", specJSON)
	var a, b bytes.Buffer
	if err := run([]string{"-spec", spec, "-n", "100", "-noise", "0.1", "-seed", "3"}, &a); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-spec", spec, "-n", "100", "-noise", "0.1", "-seed", "3"}, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("same seed produced different output")
	}
}

func TestRunCSVExport(t *testing.T) {
	spec := writeTemp(t, "spec.json", specJSON)
	csvPath := filepath.Join(t.TempDir(), "trace.csv")
	var out bytes.Buffer
	if err := run([]string{"-spec", spec, "-n", "10", "-csv", csvPath}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "module,instance,task,kind,dataset,start,end") {
		t.Errorf("CSV header missing:\n%s", string(data[:80]))
	}
	if !strings.Contains(out.String(), "trace written") {
		t.Error("CSV note missing from output")
	}
}

func TestRunErrors(t *testing.T) {
	spec := writeTemp(t, "spec.json", specJSON)
	badMapping := writeTemp(t, "bad.json", `{"modules": [{"lo":0,"hi":2,"procs":99,"replicas":1}]}`)
	cases := [][]string{
		{},
		{"-spec", "/no/such/file"},
		{"-spec", spec, "-mapping", "/no/such/file"},
		{"-spec", spec, "-mapping", badMapping}, // over budget
	}
	for _, args := range cases {
		var out bytes.Buffer
		if err := run(args, &out); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
