// Command pipegen compiles chain specs plus solved mappings into
// specialized pipeline executors (see internal/pipegen and DESIGN.md
// section 15).
//
// Regenerate every committed example (make pipegen):
//
//	pipegen -all
//
// Verify the committed code matches what the specs solve to (make
// pipegen-diff; CI fails on drift):
//
//	pipegen -all -check
//
// Or generate a one-off executor from any spec:
//
//	pipegen -spec specs/ffthist256.json -app ffthist -pkg myexec -o out.go
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"pipemap/internal/pipegen"
)

func main() {
	var (
		all   = flag.Bool("all", false, "regenerate every committed example under internal/gen")
		check = flag.Bool("check", false, "with -all: verify committed files match instead of writing")
		root  = flag.String("root", ".", "repo root the committed examples are resolved against")
		spec  = flag.String("spec", "", "chain spec to solve and compile (single-executor mode)")
		app   = flag.String("app", "", "application binding: ffthist, radar, or stereo")
		pkg   = flag.String("pkg", "", "emitted package name (single-executor mode)")
		out   = flag.String("o", "", "output file; empty writes to stdout")
		size  = flag.Int("size", 0, "baked default workload size; 0 keeps the app default")
	)
	flag.Parse()
	if err := run(*all, *check, *root, *spec, *app, *pkg, *out, *size); err != nil {
		fmt.Fprintln(os.Stderr, "pipegen:", err)
		os.Exit(1)
	}
}

func run(all, check bool, root, spec, app, pkg, out string, size int) error {
	if all {
		return runAll(check, root)
	}
	if spec == "" || app == "" || pkg == "" {
		return fmt.Errorf("need -all, or -spec with -app and -pkg")
	}
	m, err := pipegen.SolveSpec(spec)
	if err != nil {
		return err
	}
	src, err := pipegen.Generate(pipegen.Options{
		App: app, Package: pkg, SpecPath: spec, Mapping: m, Size: size,
	})
	if err != nil {
		return err
	}
	if out == "" {
		_, err = os.Stdout.Write(src)
		return err
	}
	return os.WriteFile(out, src, 0o644)
}

func runAll(check bool, root string) error {
	var drift int
	for _, x := range pipegen.Examples {
		src, err := pipegen.GenerateExample(root, x)
		if err != nil {
			return fmt.Errorf("%s: %w", x.Name, err)
		}
		file := x.File(root)
		if check {
			have, err := os.ReadFile(file)
			if err != nil {
				return fmt.Errorf("%s: %w (run make pipegen)", x.Name, err)
			}
			if !bytes.Equal(have, src) {
				fmt.Fprintf(os.Stderr, "pipegen: %s drifted from %s\n", file, x.SpecPath)
				drift++
				continue
			}
			fmt.Printf("%-12s ok (%s)\n", x.Name, file)
			continue
		}
		if err := os.MkdirAll(filepath.Dir(file), 0o755); err != nil {
			return err
		}
		if err := os.WriteFile(file, src, 0o644); err != nil {
			return err
		}
		fmt.Printf("%-12s wrote %s (%d bytes)\n", x.Name, file, len(src))
	}
	if drift > 0 {
		return fmt.Errorf("%d generated file(s) out of date; run make pipegen and commit", drift)
	}
	return nil
}
