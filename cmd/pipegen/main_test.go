package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunAllCheckPasses(t *testing.T) {
	if err := runAll(true, "../.."); err != nil {
		t.Fatalf("committed examples drifted: %v", err)
	}
}

func TestRunSingleSpec(t *testing.T) {
	out := filepath.Join(t.TempDir(), "exec.go")
	err := run(false, false, ".", "../../specs/ffthist256.json", "ffthist", "mypkg", out, 64)
	if err != nil {
		t.Fatal(err)
	}
	src, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(src), "package mypkg") {
		t.Error("output missing package clause")
	}
	if !strings.Contains(string(src), "cfg.N = 64") {
		t.Error("output missing baked size override")
	}
}

func TestRunRejectsPartialFlags(t *testing.T) {
	if err := run(false, false, ".", "", "", "", "", 0); err == nil {
		t.Fatal("run without -all or -spec succeeded, want error")
	}
}
