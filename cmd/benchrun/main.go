// Command benchrun records the repo's performance trajectory: it times the
// DP and greedy solvers on the committed chain specs, times one adaptive
// controller decision cycle (ingest + refit + re-solve — the latency the
// closed loop adds between stream segments), measures the fault-tolerant
// runtime's throughput against the model bound, and writes the report to
// BENCH_solver.json. Commit the refreshed file to extend the perf history;
// CI runs a reduced-size pass (-quick) and uploads the report as an
// artifact.
//
// Usage:
//
//	go run ./cmd/benchrun [-out BENCH_solver.json] [-quick] [spec...]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"pipemap/internal/bench"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchrun:", err)
		os.Exit(1)
	}
}

func run(argv []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchrun", flag.ContinueOnError)
	out := fs.String("out", "BENCH_solver.json", "output path for the JSON report (empty = stdout only)")
	gate := fs.String("gate", "", "baseline BENCH_solver.json to gate against: fail when a spec's adapt decision latency regresses more than 2x (with a 0.5ms absolute floor)")
	quick := fs.Bool("quick", false, "reduced-size run for CI (fewer data sets and repetitions)")
	runs := fs.Int("runs", 0, "timing repetitions per solver (0 = default)")
	datasets := fs.Int("datasets", 0, "data sets streamed through the runtime (0 = default)")
	speedup := fs.Float64("speedup", 0, "runtime time compression (0 = default)")
	fs.SetOutput(stdout)
	if err := fs.Parse(argv); err != nil {
		return err
	}

	specs := fs.Args()
	if len(specs) == 0 {
		specs = []string{"specs/ffthist256.json", "specs/radar64.json", "specs/stereo128.json", "specs/threestage.json"}
	}
	opt := bench.PerfOptions{Runs: *runs, DataSets: *datasets, Speedup: *speedup}
	if *quick {
		if opt.Runs == 0 {
			opt.Runs = 2
		}
		if opt.DataSets == 0 {
			opt.DataSets = 80
		}
		if opt.Speedup == 0 {
			opt.Speedup = 200
		}
	}

	rep, err := bench.RunPerf(specs, opt)
	if err != nil {
		return err
	}
	fmt.Fprint(stdout, bench.RenderPerf(rep))

	if *out != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %s\n", *out)
	}
	if *gate != "" {
		if err := gateAgainst(*gate, rep, stdout); err != nil {
			return err
		}
	}
	return nil
}

// gateFloorSeconds is the absolute regression floor: sub-half-millisecond
// decision latencies are within scheduler noise of each other, so a 2x
// move below the floor is not a regression.
const gateFloorSeconds = 0.0005

// gateAgainst compares the fresh report's adapt decision latencies to the
// committed baseline and fails on a >2x regression above the floor. Specs
// absent from the baseline pass (they are new).
func gateAgainst(baselinePath string, rep bench.PerfReport, stdout io.Writer) error {
	buf, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("gate baseline: %w", err)
	}
	var base bench.PerfReport
	if err := json.Unmarshal(buf, &base); err != nil {
		return fmt.Errorf("gate baseline %s: %w", baselinePath, err)
	}
	baseline := make(map[string]float64, len(base.Specs))
	for _, sp := range base.Specs {
		baseline[sp.Spec] = sp.AdaptDecisionSeconds
	}
	var failures []string
	for _, sp := range rep.Specs {
		old, ok := baseline[sp.Spec]
		if !ok || old <= 0 {
			continue
		}
		verdict := "ok"
		if sp.AdaptDecisionSeconds > 2*old && sp.AdaptDecisionSeconds > gateFloorSeconds {
			verdict = "REGRESSED"
			failures = append(failures, fmt.Sprintf("%s: adapt decision %.3fms vs baseline %.3fms (>2x)",
				sp.Spec, sp.AdaptDecisionSeconds*1e3, old*1e3))
		}
		fmt.Fprintf(stdout, "gate %-28s adapt %8.3fms baseline %8.3fms  %s\n",
			sp.Spec, sp.AdaptDecisionSeconds*1e3, old*1e3, verdict)
	}
	if len(failures) > 0 {
		return fmt.Errorf("adapt decision latency gate failed:\n  %s", strings.Join(failures, "\n  "))
	}
	return nil
}
