// Command benchrun records the repo's performance trajectory: it times the
// DP and greedy solvers on the committed chain specs, times one adaptive
// controller decision cycle (ingest + refit + re-solve — the latency the
// closed loop adds between stream segments), measures the fault-tolerant
// runtime's throughput against the model bound, and writes the report to
// BENCH_solver.json. Commit the refreshed file to extend the perf history;
// CI runs a reduced-size pass (-quick) and uploads the report as an
// artifact.
//
// Usage:
//
//	go run ./cmd/benchrun [-out BENCH_solver.json] [-quick] [spec...]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"pipemap/internal/bench"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchrun:", err)
		os.Exit(1)
	}
}

func run(argv []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchrun", flag.ContinueOnError)
	out := fs.String("out", "BENCH_solver.json", "output path for the JSON report (empty = stdout only)")
	quick := fs.Bool("quick", false, "reduced-size run for CI (fewer data sets and repetitions)")
	runs := fs.Int("runs", 0, "timing repetitions per solver (0 = default)")
	datasets := fs.Int("datasets", 0, "data sets streamed through the runtime (0 = default)")
	speedup := fs.Float64("speedup", 0, "runtime time compression (0 = default)")
	fs.SetOutput(stdout)
	if err := fs.Parse(argv); err != nil {
		return err
	}

	specs := fs.Args()
	if len(specs) == 0 {
		specs = []string{"specs/ffthist256.json", "specs/threestage.json"}
	}
	opt := bench.PerfOptions{Runs: *runs, DataSets: *datasets, Speedup: *speedup}
	if *quick {
		if opt.Runs == 0 {
			opt.Runs = 2
		}
		if opt.DataSets == 0 {
			opt.DataSets = 80
		}
		if opt.Speedup == 0 {
			opt.Speedup = 200
		}
	}

	rep, err := bench.RunPerf(specs, opt)
	if err != nil {
		return err
	}
	fmt.Fprint(stdout, bench.RenderPerf(rep))

	if *out != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %s\n", *out)
	}
	return nil
}
