package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunWritesReport(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	var buf bytes.Buffer
	err := run([]string{
		"-quick", "-datasets", "20", "-runs", "1", "-out", out,
		"../../specs/threestage.json",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "threestage") || !strings.Contains(buf.String(), "wrote ") {
		t.Errorf("output missing table/confirmation:\n%s", buf.String())
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Specs []struct {
			Spec           string  `json:"spec"`
			DPSolveSeconds float64 `json:"dpSolveSeconds"`
		} `json:"specs"`
	}
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("report not JSON: %v", err)
	}
	if len(rep.Specs) != 1 || rep.Specs[0].DPSolveSeconds <= 0 {
		t.Errorf("report = %+v", rep)
	}
}

func TestRunBadSpec(t *testing.T) {
	if err := run([]string{"-out", "", "no-such.json"}, &bytes.Buffer{}); err == nil {
		t.Error("missing spec accepted")
	}
}
