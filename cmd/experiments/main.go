// Command experiments regenerates every table and figure of the paper's
// evaluation (section 6) plus the quantitative claims of sections 4 and
// 6.3. See DESIGN.md for the experiment index.
//
// Usage:
//
//	experiments [-run all|table1|table2|figure1|figure2|figure3|figure4|
//	             figure5|figure6|accuracy|agreement|pathology] [-seed 7]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"pipemap/internal/apps"
	"pipemap/internal/bench"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	which := fs.String("run", "all", "experiment to run (all, table1, table2, figure1..figure6, accuracy, agreement, pathology, tradeoff, quality, training, secondorder, sweep, commmatters)")
	seed := fs.Int64("seed", 7, "seed for simulated measurements")
	if err := fs.Parse(args); err != nil {
		return err
	}

	run := func(name string) bool { return *which == "all" || *which == name }
	ran := false

	if run("table1") {
		ran = true
		rows, err := bench.Table1()
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "== Table 1: Optimal and Feasible Optimal Mappings for FFT-Hist ==\n\n%s\n",
			bench.RenderTable1(rows))
	}
	if run("table2") {
		ran = true
		rows, err := bench.Table2(*seed)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "== Table 2: Performance Results ==\n\n%s\n", bench.RenderTable2(rows))
	}
	if run("figure1") {
		ran = true
		rows, err := bench.Figure1()
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "== Figure 1: Combinations of data and task parallel mappings ==\n\n%s\n",
			bench.RenderFigure1(rows))
	}
	if run("figure2") {
		ran = true
		s, err := bench.Figure2()
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "== %s\n", s)
	}
	if run("figure3") {
		ran = true
		s, err := bench.Figure3()
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "== %s\n", s)
	}
	if run("figure4") {
		ran = true
		s, err := bench.Figure4()
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "== %s\n", s)
	}
	if run("figure5") {
		ran = true
		fmt.Fprintf(w, "== %s\n", bench.Figure5())
	}
	if run("figure6") {
		ran = true
		s, err := bench.Figure6()
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "== %s\n", s)
	}
	if run("accuracy") {
		ran = true
		cfgs, err := apps.Table2Configs()
		if err != nil {
			return err
		}
		var rows []bench.AccuracyResult
		for i, cfg := range cfgs {
			r, err := bench.Accuracy(cfg, 0.03, *seed+int64(i))
			if err != nil {
				return err
			}
			rows = append(rows, r)
		}
		fmt.Fprintf(w, "== Section 6.3: model accuracy (paper: average error < 10%%) ==\n\n%s\n",
			bench.RenderAccuracy(rows))
	}
	if run("agreement") {
		ran = true
		rows, err := bench.Agreement()
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "== Section 6.3: DP and greedy reach the same mapping ==\n\n%s\n",
			bench.RenderAgreement(rows))
	}
	if run("tradeoff") {
		ran = true
		rows, err := bench.Tradeoff()
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "== Extension: latency-throughput Pareto frontier (FFT-Hist 256 message) ==\n\n%s\n",
			bench.RenderTradeoff(rows))
	}
	if run("quality") {
		ran = true
		q, err := bench.HeuristicQuality(60, *seed)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "== Extension: greedy heuristic quality on random chains ==\n\n%s\n",
			bench.RenderQuality(q))
	}
	if run("training") {
		ran = true
		rows, err := bench.TrainingSizeStudy(0.05, *seed)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "== Extension: model accuracy vs training set size (5%% noise) ==\n\n%s\n",
			bench.RenderTrainingSize(rows))
	}
	if run("secondorder") {
		ran = true
		rows, err := bench.SecondOrder()
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "== Section 6.4: second-order pipeline-coupling effects ==\n\n%s\n",
			bench.RenderSecondOrder(rows))
	}
	if run("sweep") {
		ran = true
		rows, err := bench.Sweep()
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "== Extension: optimal mapping evolution over machine sizes ==\n\n%s\n",
			bench.RenderSweep(rows))
	}
	if run("commmatters") {
		ran = true
		rows, err := bench.CommMatters()
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "== Claim 1: a realistic communication model matters (vs Choudhary et al. [4]) ==\n\n%s\n",
			bench.RenderCommMatters(rows))
	}
	if run("pathology") {
		ran = true
		r, err := bench.Pathology()
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "== %s\n", bench.RenderPathology(r))
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", *which)
	}
	return nil
}
