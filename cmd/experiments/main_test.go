package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunSingleExperiments(t *testing.T) {
	cases := []struct {
		name string
		want string
	}{
		{"table1", "Optimal and Feasible"},
		{"figure1", "mixed optimal"},
		{"figure2", "execution model"},
		{"figure3", "replication"},
		{"figure5", "colffts"},
		{"pathology", "DP (optimal)"},
		{"tradeoff", "Pareto"},
		{"secondorder", "straggler"},
		{"quality", "exact optimum"},
		{"sweep", "ratio"},
		{"commmatters", "comm-aware"},
		{"figure4", "T_3"},
		{"figure6", "8x8"},
		{"training", "training runs"},
	}
	for _, tc := range cases {
		var out bytes.Buffer
		if err := run([]string{"-run", tc.name}, &out); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if !strings.Contains(out.String(), tc.want) {
			t.Errorf("%s: output missing %q:\n%s", tc.name, tc.want, out.String())
		}
	}
}

func TestRunTable2Seeded(t *testing.T) {
	var a, b bytes.Buffer
	if err := run([]string{"-run", "table2", "-seed", "5"}, &a); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-run", "table2", "-seed", "5"}, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("same seed produced different Table 2")
	}
	if !strings.Contains(a.String(), "Radar") {
		t.Error("Table 2 missing Radar row")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-run", "figure99"}, &out); err == nil {
		t.Error("unknown experiment accepted")
	}
}
