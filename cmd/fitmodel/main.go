// Command fitmodel derives the paper's polynomial cost models (section 5)
// from profiled timing samples and emits a chain spec consumable by
// cmd/pipemap, closing the profile -> fit -> map -> run loop at the
// command line.
//
// Usage:
//
//	fitmodel [samples.json]
//
// The input lists per-task execution samples and per-edge internal and
// external communication samples:
//
//	{
//	  "platform": {"procs": 64, "memPerProc": 0.5},
//	  "tasks": [
//	    {"name": "colffts", "mem": {"data": 1.4}, "replicable": true,
//	     "samples": [{"procs": 4, "time": 0.31}, {"procs": 8, "time": 0.17}, ...]}
//	  ],
//	  "edges": [
//	    {"icom": [{"procs": 8, "time": 0.09}, ...],
//	     "ecom": [{"sendProcs": 3, "recvProcs": 4, "time": 0.14}, ...]}
//	  ]
//	}
//
// The output is a chain spec with fitted [C1, C2, C3] / [C1..C5]
// coefficients.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"pipemap/internal/core"
	"pipemap/internal/estimate"
)

// samplesFile is the input format.
type samplesFile struct {
	Platform core.PlatformSpec `json:"platform"`
	Tasks    []taskSamples     `json:"tasks"`
	Edges    []edgeSamples     `json:"edges"`
}

type taskSamples struct {
	Name       string          `json:"name"`
	Mem        core.MemorySpec `json:"mem"`
	Replicable bool            `json:"replicable"`
	MinProcs   int             `json:"minProcs,omitempty"`
	Samples    []execSample    `json:"samples"`
}

type edgeSamples struct {
	ICom []execSample `json:"icom"`
	Ecom []commSample `json:"ecom"`
}

type execSample struct {
	Procs int     `json:"procs"`
	Time  float64 `json:"time"`
}

type commSample struct {
	SendProcs int     `json:"sendProcs"`
	RecvProcs int     `json:"recvProcs"`
	Time      float64 `json:"time"`
}

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "fitmodel:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("fitmodel", flag.ContinueOnError)
	stats := fs.Bool("stats", false, "print goodness-of-fit statistics instead of the JSON spec")
	if err := fs.Parse(args); err != nil {
		return err
	}
	in := stdin
	if fs.NArg() > 0 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	var sf samplesFile
	dec := json.NewDecoder(in)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sf); err != nil {
		return fmt.Errorf("parsing samples: %w", err)
	}
	if len(sf.Tasks) == 0 {
		return fmt.Errorf("no tasks in samples file")
	}
	if len(sf.Edges) != len(sf.Tasks)-1 {
		return fmt.Errorf("%d tasks but %d edges (want %d)",
			len(sf.Tasks), len(sf.Edges), len(sf.Tasks)-1)
	}

	spec := core.ChainSpec{Platform: sf.Platform}
	for _, ts := range sf.Tasks {
		samples := make([]estimate.ExecSample, len(ts.Samples))
		for i, s := range ts.Samples {
			samples[i] = estimate.ExecSample{Procs: s.Procs, Time: s.Time}
		}
		fit, err := estimate.FitExec(samples)
		if err != nil {
			return fmt.Errorf("fitting task %q: %w", ts.Name, err)
		}
		if *stats {
			st, err := estimate.ExecFitStats(fit, samples)
			if err != nil {
				return err
			}
			fmt.Fprintf(stdout, "task %-12s %v  (%s)\n", ts.Name, fit, st)
		}
		spec.Tasks = append(spec.Tasks, core.TaskSpec{
			Name:       ts.Name,
			Exec:       []float64{fit.C1, fit.C2, fit.C3},
			Mem:        ts.Mem,
			Replicable: ts.Replicable,
			MinProcs:   ts.MinProcs,
		})
	}
	for i, es := range sf.Edges {
		edge := core.EdgeSpec{}
		if len(es.ICom) > 0 {
			samples := make([]estimate.ExecSample, len(es.ICom))
			for j, s := range es.ICom {
				samples[j] = estimate.ExecSample{Procs: s.Procs, Time: s.Time}
			}
			fit, err := estimate.FitExec(samples)
			if err != nil {
				return fmt.Errorf("fitting edge %d icom: %w", i, err)
			}
			if *stats {
				st, err := estimate.ExecFitStats(fit, samples)
				if err != nil {
					return err
				}
				fmt.Fprintf(stdout, "edge %d icom    %v  (%s)\n", i, fit, st)
			}
			edge.ICom = []float64{fit.C1, fit.C2, fit.C3}
		}
		if len(es.Ecom) == 0 {
			return fmt.Errorf("edge %d has no external communication samples", i)
		}
		samples := make([]estimate.CommSample, len(es.Ecom))
		for j, s := range es.Ecom {
			samples[j] = estimate.CommSample{
				SendProcs: s.SendProcs, RecvProcs: s.RecvProcs, Time: s.Time,
			}
		}
		fit, err := estimate.FitComm(samples)
		if err != nil {
			return fmt.Errorf("fitting edge %d ecom: %w", i, err)
		}
		if *stats {
			st, err := estimate.CommFitStats(fit, samples)
			if err != nil {
				return err
			}
			fmt.Fprintf(stdout, "edge %d ecom    %v  (%s)\n", i, fit, st)
		}
		edge.Ecom = []float64{fit.C1, fit.C2, fit.C3, fit.C4, fit.C5}
		spec.Edges = append(spec.Edges, edge)
	}
	if *stats {
		return nil
	}

	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(spec)
}
