package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"strings"
	"testing"

	"pipemap/internal/core"
	"pipemap/internal/model"
)

// synthSamples generates exact samples of known polynomial models.
func synthSamples() string {
	exec := model.PolyExec{C1: 0.1, C2: 2.0, C3: 0.01}
	icom := model.PolyExec{C1: 0.01, C2: 0.5, C3: 0.001}
	ecom := model.PolyComm{C1: 0.05, C2: 0.3, C3: 0.4, C4: 0.002, C5: 0.001}
	var exs, ics, ecs []string
	for _, p := range []int{1, 2, 4, 8, 16} {
		exs = append(exs, fmt.Sprintf(`{"procs": %d, "time": %g}`, p, exec.Eval(p)))
		ics = append(ics, fmt.Sprintf(`{"procs": %d, "time": %g}`, p, icom.Eval(p)))
	}
	for _, pq := range [][2]int{{1, 1}, {2, 4}, {4, 2}, {8, 8}, {3, 5}, {16, 2}} {
		ecs = append(ecs, fmt.Sprintf(`{"sendProcs": %d, "recvProcs": %d, "time": %g}`,
			pq[0], pq[1], ecom.Eval(pq[0], pq[1])))
	}
	return fmt.Sprintf(`{
      "platform": {"procs": 16, "memPerProc": 0.5},
      "tasks": [
        {"name": "a", "mem": {"data": 0.6}, "replicable": true, "samples": [%s]},
        {"name": "b", "mem": {"data": 0.8}, "replicable": true, "samples": [%s]}
      ],
      "edges": [
        {"icom": [%s], "ecom": [%s]}
      ]
    }`, strings.Join(exs, ","), strings.Join(exs, ","),
		strings.Join(ics, ","), strings.Join(ecs, ","))
}

func TestFitModelRecoversCoefficients(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, strings.NewReader(synthSamples()), &out); err != nil {
		t.Fatal(err)
	}
	var spec core.ChainSpec
	if err := json.Unmarshal(out.Bytes(), &spec); err != nil {
		t.Fatalf("output is not a chain spec: %v\n%s", err, out.String())
	}
	if len(spec.Tasks) != 2 || len(spec.Edges) != 1 {
		t.Fatalf("spec shape %d/%d", len(spec.Tasks), len(spec.Edges))
	}
	wantExec := []float64{0.1, 2.0, 0.01}
	for i, w := range wantExec {
		if math.Abs(spec.Tasks[0].Exec[i]-w) > 1e-6 {
			t.Errorf("task exec C%d = %g, want %g", i+1, spec.Tasks[0].Exec[i], w)
		}
	}
	wantEcom := []float64{0.05, 0.3, 0.4, 0.002, 0.001}
	for i, w := range wantEcom {
		if math.Abs(spec.Edges[0].Ecom[i]-w) > 1e-6 {
			t.Errorf("edge ecom C%d = %g, want %g", i+1, spec.Edges[0].Ecom[i], w)
		}
	}
	// The emitted spec must be consumable by the mapper.
	if _, _, err := core.BuildChainSpec(spec); err != nil {
		t.Errorf("fitted spec rejected by the mapper: %v", err)
	}
}

func TestFitModelStats(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-stats"}, strings.NewReader(synthSamples()), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "R2=") {
		t.Errorf("stats output missing R2:\n%s", out.String())
	}
	if strings.Contains(out.String(), "{") {
		t.Errorf("stats mode should not emit JSON:\n%s", out.String())
	}
}

func TestFitModelErrors(t *testing.T) {
	cases := []string{
		``,
		`{}`,
		`{"platform":{"procs":4},"tasks":[{"name":"a","samples":[]}],"edges":[]}`,
		`{"platform":{"procs":4},"tasks":[{"name":"a","samples":[{"procs":1,"time":1}]},
		  {"name":"b","samples":[{"procs":1,"time":1}]}],
		  "edges":[{"icom":[],"ecom":[]}]}`,
		`{"unknown": 1}`,
	}
	for i, s := range cases {
		var out bytes.Buffer
		if err := run(nil, strings.NewReader(s), &out); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if err := run([]string{"/no/such/file"}, nil, &bytes.Buffer{}); err == nil {
		t.Error("missing file accepted")
	}
}
