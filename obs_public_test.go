package pipemap_test

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"pipemap"
)

// TestPublicObservability exercises the observability surface through the
// public API only: attach a tracer and registry to a request, solve, and
// export both.
func TestPublicObservability(t *testing.T) {
	chain := exampleChain()
	pl := pipemap.Platform{Procs: 16, MemPerProc: 1}
	tr := pipemap.NewTracer()
	reg := pipemap.NewMetricsRegistry()
	res, err := pipemap.Map(pipemap.Request{Chain: chain, Platform: pl, Trace: tr, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	if res.Throughput <= 0 {
		t.Fatal("no throughput predicted")
	}
	if tr.Len() == 0 {
		t.Error("tracer collected no spans")
	}
	var trace bytes.Buffer
	if err := tr.WriteJSON(&trace); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(trace.String(), `"traceEvents"`) {
		t.Errorf("trace output not Chrome trace JSON: %s", trace.String())
	}
	var txt bytes.Buffer
	if err := reg.Snapshot().WriteText(&txt); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(txt.String(), "core.map_seconds.count 1") {
		t.Errorf("metrics missing core.map_seconds:\n%s", txt.String())
	}
}

// TestPublicLiveObservability drives the live health surface through the
// public API only: solve a mapping, derive a monitor from it, feed
// observations, and scrape the embeddable HTTP handler.
func TestPublicLiveObservability(t *testing.T) {
	chain := exampleChain()
	pl := pipemap.Platform{Procs: 16, MemPerProc: 1}
	res, err := pipemap.Map(pipemap.Request{Chain: chain, Platform: pl})
	if err != nil {
		t.Fatal(err)
	}

	mon := pipemap.NewLiveMonitor(pipemap.LiveConfigFromMapping(res.Mapping))
	mon.Start()
	for i := 0; i < 5; i++ {
		for s := range res.Mapping.Modules {
			mon.StageDone(s, 0.01)
		}
		mon.Completed(0.05)
	}
	h := mon.Health()
	if !h.Started || h.Completed != 5 || h.Status != "nominal" || !h.Ready {
		t.Fatalf("health = %+v, want started/nominal/ready with 5 completions", h)
	}

	srv := pipemap.NewLiveServer(pipemap.LiveServerOptions{Monitor: mon})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	for path, want := range map[string]string{
		"/metrics":  "pipemap_datasets_completed_total 5",
		"/healthz":  "ok",
		"/readyz":   `"ready":true`,
		"/pipeline": `"status": "nominal"`,
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), want) {
			t.Errorf("GET %s = %d, missing %q:\n%s", path, resp.StatusCode, want, body)
		}
	}

	// A nil monitor is the disabled instrument.
	var off *pipemap.LiveMonitor
	off.StageDone(0, 1)
	off.Completed(1)
	if off.Enabled() || off.Health().Status != "disabled" {
		t.Errorf("nil monitor health = %+v, want disabled", off.Health())
	}
}

// TestPublicRequestTracing exercises the request-tracing and SLO surface
// through the public API: sample a trace, record spans, finish into a
// flight recorder and NDJSON exporter, and evaluate an SLO.
func TestPublicRequestTracing(t *testing.T) {
	fl := pipemap.NewFlightRecorder(8)
	var spans bytes.Buffer
	ex := pipemap.NewSpanExporter(&spans, 0)
	tr := pipemap.NewReqTracer(pipemap.ReqTracerConfig{SampleRate: 1, Flight: fl, Exporter: ex})

	id, rt := tr.Start(pipemap.TraceID{}, false, "tenant", time.Now())
	if rt == nil || id.IsZero() {
		t.Fatal("rate-1 tracer did not sample")
	}
	rt.StageSpan("fft", 0, 0, 0, "ok", time.Now(), time.Millisecond)
	tr.Finish(rt, "ok", time.Millisecond, 2*time.Millisecond)
	if err := ex.Close(); err != nil {
		t.Fatal(err)
	}
	if got := fl.Snapshot(); len(got) != 1 || got[0].TraceID != id.String() {
		t.Fatalf("flight snapshot = %+v", got)
	}
	if !strings.Contains(spans.String(), id.String()) {
		t.Error("exporter wrote no span line for the finished trace")
	}

	e := pipemap.NewSLOEngine(pipemap.SLOConfig{
		Objectives: []pipemap.SLOObjective{{Name: "availability", Target: 0.5}},
	})
	e.Record("tenant", true, 1)
	e.Record("tenant", false, 1)
	rep := e.Report()
	if len(rep.Objectives) != 1 || rep.Objectives[0].Total != 2 {
		t.Fatalf("slo report = %+v, want one objective over 2 requests", rep)
	}

	// Nil instruments are disabled and safe.
	var offTr *pipemap.ReqTracer
	var offFl *pipemap.FlightRecorder
	var offSLO *pipemap.SLOEngine
	if _, rt := offTr.Start(pipemap.TraceID{}, true, "t", time.Now()); rt != nil {
		t.Error("nil tracer sampled")
	}
	offFl.Record(nil)
	offSLO.Record("t", true, 1)
}
