package pipemap_test

import (
	"bytes"
	"strings"
	"testing"

	"pipemap"
)

// TestPublicObservability exercises the observability surface through the
// public API only: attach a tracer and registry to a request, solve, and
// export both.
func TestPublicObservability(t *testing.T) {
	chain := exampleChain()
	pl := pipemap.Platform{Procs: 16, MemPerProc: 1}
	tr := pipemap.NewTracer()
	reg := pipemap.NewMetricsRegistry()
	res, err := pipemap.Map(pipemap.Request{Chain: chain, Platform: pl, Trace: tr, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	if res.Throughput <= 0 {
		t.Fatal("no throughput predicted")
	}
	if tr.Len() == 0 {
		t.Error("tracer collected no spans")
	}
	var trace bytes.Buffer
	if err := tr.WriteJSON(&trace); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(trace.String(), `"traceEvents"`) {
		t.Errorf("trace output not Chrome trace JSON: %s", trace.String())
	}
	var txt bytes.Buffer
	if err := reg.Snapshot().WriteText(&txt); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(txt.String(), "core.map_seconds.count 1") {
		t.Errorf("metrics missing core.map_seconds:\n%s", txt.String())
	}
}
