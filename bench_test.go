// Benchmarks regenerating every table and figure of the paper plus the
// algorithmic scaling and ablation studies. Run with:
//
//	go test -bench=. -benchmem
//
// Reproduction benches (BenchmarkTable*, BenchmarkFigure*, ...) regenerate
// the corresponding artifact once per iteration and report the headline
// metric with b.ReportMetric, so `-bench` output doubles as a compact
// results table. Scaling benches measure the mapping algorithms
// themselves (DP O(P^4 k^2) versus greedy O(Pk)).
package pipemap_test

import (
	"fmt"
	"math/rand"
	"testing"

	"pipemap"
	"pipemap/internal/apps"
	"pipemap/internal/bench"
	"pipemap/internal/dp"
	"pipemap/internal/greedy"
	"pipemap/internal/kernels"
	"pipemap/internal/model"
	"pipemap/internal/sim"
	"pipemap/internal/testutil"
	"pipemap/internal/tradeoff"
)

// --- Table and figure reproduction benches ---

func BenchmarkTable1(b *testing.B) {
	var thr float64
	for i := 0; i < b.N; i++ {
		rows, err := bench.Table1()
		if err != nil {
			b.Fatal(err)
		}
		thr = rows[0].OptimalThr
	}
	b.ReportMetric(thr, "row1_thr/s")
}

func BenchmarkTable2(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		rows, err := bench.Table2(7)
		if err != nil {
			b.Fatal(err)
		}
		ratio = rows[0].Ratio
	}
	b.ReportMetric(ratio, "row1_ratio")
}

func BenchmarkFigure1(b *testing.B) {
	var opt float64
	for i := 0; i < b.N; i++ {
		rows, err := bench.Figure1()
		if err != nil {
			b.Fatal(err)
		}
		opt = rows[len(rows)-1].Throughput
	}
	b.ReportMetric(opt, "mixed_thr/s")
}

func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Figure2(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Figure3(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Figure4(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Figure6(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkModelAccuracy(b *testing.B) {
	cfgs, err := apps.Table2Configs()
	if err != nil {
		b.Fatal(err)
	}
	var errPct float64
	for i := 0; i < b.N; i++ {
		res, err := bench.Accuracy(cfgs[0], 0.03, 11)
		if err != nil {
			b.Fatal(err)
		}
		errPct = res.TaskErrPct
	}
	b.ReportMetric(errPct, "task_err_%")
}

func BenchmarkAgreement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Agreement()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if !r.Agree {
				b.Fatalf("%s disagrees", r.Name)
			}
		}
	}
}

func BenchmarkPathology(b *testing.B) {
	var gap float64
	for i := 0; i < b.N; i++ {
		r, err := bench.Pathology()
		if err != nil {
			b.Fatal(err)
		}
		gap = r.DPThr / r.GreedyThr
	}
	b.ReportMetric(gap, "dp/greedy")
}

// --- Algorithm scaling benches: DP O(P^4 k) / O(P^4 k^2) vs greedy O(Pk) ---

func scalingChain(k int) *model.Chain {
	rng := rand.New(rand.NewSource(int64(k)))
	c, _ := testutil.RandChain(rng, testutil.RandChainConfig{
		MinTasks: k, MaxTasks: k, MaxMinProcs: 2, AllowNonReplicable: false,
	}, 8)
	return c
}

func BenchmarkDPAssignScaling(b *testing.B) {
	for _, P := range []int{16, 32, 64} {
		b.Run(fmt.Sprintf("P=%d", P), func(b *testing.B) {
			c := scalingChain(4)
			pl := model.Platform{Procs: P, MemPerProc: 1000}
			for i := 0; i < b.N; i++ {
				if _, err := dp.AssignReplicated(c, pl); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkDPMapChainScaling(b *testing.B) {
	for _, k := range []int{2, 3, 4} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			c := scalingChain(k)
			pl := model.Platform{Procs: 32, MemPerProc: 1000}
			for i := 0; i < b.N; i++ {
				if _, err := dp.MapChain(c, pl, dp.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkGreedyScaling(b *testing.B) {
	for _, P := range []int{64, 256, 1024} {
		b.Run(fmt.Sprintf("P=%d", P), func(b *testing.B) {
			c := scalingChain(4)
			pl := model.Platform{Procs: P, MemPerProc: 1000}
			for i := 0; i < b.N; i++ {
				if _, err := greedy.Map(c, pl, greedy.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Ablation benches: what each mapping dimension is worth on FFT-Hist ---

func benchAblation(b *testing.B, opt dp.Options) {
	c, err := apps.FFTHist(256, apps.Message)
	if err != nil {
		b.Fatal(err)
	}
	pl := apps.Platform()
	var thr float64
	for i := 0; i < b.N; i++ {
		m, err := dp.MapChain(c, pl, opt)
		if err != nil {
			b.Fatal(err)
		}
		thr = m.Throughput()
	}
	b.ReportMetric(thr, "thr/s")
}

func BenchmarkAblationFull(b *testing.B) { benchAblation(b, dp.Options{}) }

func BenchmarkAblationNoReplication(b *testing.B) {
	benchAblation(b, dp.Options{DisableReplication: true})
}

func BenchmarkAblationNoClustering(b *testing.B) {
	benchAblation(b, dp.Options{DisableClustering: true})
}

func BenchmarkAblationAssignmentOnly(b *testing.B) {
	benchAblation(b, dp.Options{DisableReplication: true, DisableClustering: true})
}

// --- Substrate benches ---

func BenchmarkSimulator(b *testing.B) {
	c, err := apps.FFTHist(256, apps.Message)
	if err != nil {
		b.Fatal(err)
	}
	m, err := dp.MapChain(c, apps.Platform(), dp.Options{})
	if err != nil {
		b.Fatal(err)
	}
	s := sim.New(sim.Options{DataSets: 400})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Run(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFFT1D(b *testing.B) {
	for _, n := range []int{256, 1024} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			x := make([]complex128, n)
			for i := range x {
				x[i] = complex(float64(i%13), 0)
			}
			b.SetBytes(int64(16 * n))
			for i := 0; i < b.N; i++ {
				if err := kernels.FFT(x); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkRealFFTHistPipeline(b *testing.B) {
	r := apps.FFTHistRunner{N: 64, DataSets: 8}
	c := apps.FFTHistStructure(64)
	m := pipemap.Mapping{Chain: c, Modules: []pipemap.Module{
		{Lo: 0, Hi: 1, Procs: 1, Replicas: 2},
		{Lo: 1, Hi: 3, Procs: 2, Replicas: 1},
	}}
	var thr float64
	for i := 0; i < b.N; i++ {
		stats, err := r.Run(m)
		if err != nil {
			b.Fatal(err)
		}
		thr = stats.Throughput
	}
	b.ReportMetric(thr, "datasets/s")
}

func BenchmarkMinLatency(b *testing.B) {
	c, err := apps.FFTHist(256, apps.Message)
	if err != nil {
		b.Fatal(err)
	}
	pl := apps.Platform()
	var lat float64
	for i := 0; i < b.N; i++ {
		m, err := dp.MinLatency(c, pl)
		if err != nil {
			b.Fatal(err)
		}
		lat = m.Latency()
	}
	b.ReportMetric(1e3*lat, "min_latency_ms")
}

func BenchmarkTradeoffFrontier(b *testing.B) {
	c, err := apps.FFTHist(256, apps.Message)
	if err != nil {
		b.Fatal(err)
	}
	pl := apps.Platform()
	var points int
	for i := 0; i < b.N; i++ {
		front, err := tradeoff.Frontier(c, pl, tradeoff.Options{MinThroughputGain: 0.02})
		if err != nil {
			b.Fatal(err)
		}
		points = len(front)
	}
	b.ReportMetric(float64(points), "pareto_points")
}
