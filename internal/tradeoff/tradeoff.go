// Package tradeoff explores the latency-throughput trade-off of task
// chain mappings. The paper optimizes throughput and defers latency to
// Vondran's thesis [14]; this package is the corresponding extension:
// replication raises throughput but each data set's response time grows
// (smaller instances, more transfer hops), so the two objectives genuinely
// conflict and a Pareto frontier exists.
//
// Latency here is the pipeline traversal time of one data set: the sum of
// module response times of the mapping (model.Mapping.Latency).
//
// The implementation enumerates candidate mappings per clustering —
// exhaustively over processor vectors when a clustering has at most three
// modules, and around the throughput-optimal assignment otherwise — and
// filters the Pareto-dominated ones. It is exact for the paper's
// application sizes (k <= 4, P = 64) and a documented heuristic beyond.
package tradeoff

import (
	"fmt"
	"sort"

	"pipemap/internal/dp"
	"pipemap/internal/model"
)

// Point is one Pareto-optimal mapping: no other candidate has both higher
// throughput and lower latency.
type Point struct {
	Mapping    model.Mapping
	Throughput float64
	Latency    float64
}

// Options configures the exploration.
type Options struct {
	// DisableReplication forces single-instance modules.
	DisableReplication bool
	// MaxExhaustiveModules bounds the clustering sizes enumerated
	// exhaustively (default 3).
	MaxExhaustiveModules int
	// MinThroughputGain collapses near-ties: a candidate joins the
	// frontier only if its throughput exceeds the previous point's by this
	// relative margin (default 1e-9, i.e. keep everything non-dominated).
	MinThroughputGain float64
}

// Frontier returns the Pareto frontier of (throughput up, latency down)
// over the mapping space, sorted by increasing latency.
func Frontier(c *model.Chain, pl model.Platform, opt Options) ([]Point, error) {
	cands, err := candidates(c, pl, opt)
	if err != nil {
		return nil, err
	}
	// Sort by latency ascending, then throughput descending; sweep keeping
	// mappings that strictly improve throughput.
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].Latency != cands[j].Latency {
			return cands[i].Latency < cands[j].Latency
		}
		return cands[i].Throughput > cands[j].Throughput
	})
	gain := opt.MinThroughputGain
	if gain <= 0 {
		gain = 1e-9
	}
	var frontier []Point
	bestThr := -1.0
	for _, p := range cands {
		if p.Throughput > bestThr*(1+gain)+1e-12 {
			frontier = append(frontier, p)
			bestThr = p.Throughput
		}
	}
	// The sweep above yields latency-minimal representatives per
	// throughput level in increasing latency; it is the full frontier.
	return frontier, nil
}

// MinLatency returns the mapping minimizing single-data-set latency,
// computed exactly by the latency DP (dp.MinLatency): latency decomposes
// as a sum, so the optimum never replicates and admits an O(k^2 P^3)
// recurrence.
func MinLatency(c *model.Chain, pl model.Platform, opt Options) (model.Mapping, error) {
	return dp.MinLatency(c, pl)
}

// BestThroughputUnderLatency returns the maximum-throughput mapping whose
// latency does not exceed the bound.
func BestThroughputUnderLatency(c *model.Chain, pl model.Platform, bound float64, opt Options) (model.Mapping, error) {
	front, err := Frontier(c, pl, opt)
	if err != nil {
		return model.Mapping{}, err
	}
	var best *Point
	for i := range front {
		if front[i].Latency <= bound {
			best = &front[i]
		}
	}
	if best == nil {
		return model.Mapping{}, fmt.Errorf("tradeoff: no mapping has latency <= %g (minimum is %g)",
			bound, front[0].Latency)
	}
	return best.Mapping, nil
}

// candidates enumerates mappings across clusterings.
func candidates(c *model.Chain, pl model.Platform, opt Options) ([]Point, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if err := pl.Validate(); err != nil {
		return nil, err
	}
	maxEx := opt.MaxExhaustiveModules
	if maxEx <= 0 {
		maxEx = 3
	}
	var out []Point
	seen := map[string]bool{}
	add := func(m model.Mapping) {
		key := m.String()
		if seen[key] {
			return
		}
		seen[key] = true
		out = append(out, Point{Mapping: m, Throughput: m.Throughput(), Latency: m.Latency()})
	}
	for _, spans := range model.AllClusterings(c.Len()) {
		l := len(spans)
		mins := make([]int, l)
		repl := make([]bool, l)
		feasible := true
		for i, sp := range spans {
			min := c.ModuleMinProcs(sp.Lo, sp.Hi, pl.MemPerProc)
			if min < 0 || min > pl.Procs {
				feasible = false
				break
			}
			mins[i] = min
			repl[i] = c.ModuleReplicable(sp.Lo, sp.Hi) && !opt.DisableReplication
		}
		if !feasible {
			continue
		}
		build := func(raw []int) model.Mapping {
			mods := make([]model.Module, l)
			for i, sp := range spans {
				// Enumerate replication explicitly: for a given raw count
				// we consider both the maximal replication split and the
				// single-instance variant, since low replication can be
				// Pareto-better on latency.
				r := model.SplitReplicas(raw[i], mins[i], repl[i])
				mods[i] = model.Module{Lo: sp.Lo, Hi: sp.Hi,
					Procs: r.ProcsPerInstance, Replicas: r.Replicas}
			}
			return model.Mapping{Chain: c, Modules: mods}
		}
		buildSingle := func(raw []int) model.Mapping {
			mods := make([]model.Module, l)
			for i, sp := range spans {
				mods[i] = model.Module{Lo: sp.Lo, Hi: sp.Hi, Procs: raw[i], Replicas: 1}
			}
			return model.Mapping{Chain: c, Modules: mods}
		}
		if l <= maxEx {
			raw := make([]int, l)
			var rec func(i, used int)
			rec = func(i, used int) {
				if i == l {
					add(build(raw))
					add(buildSingle(raw))
					return
				}
				for p := mins[i]; used+p <= pl.Procs; p++ {
					raw[i] = p
					rec(i+1, used+p)
				}
			}
			rec(0, 0)
			continue
		}
		// Larger clusterings: seed from the throughput-optimal assignment
		// and perturb.
		dm, err := dp.AssignClustered(c, pl, spans, dp.Options{DisableReplication: opt.DisableReplication})
		if err != nil {
			continue
		}
		base := make([]int, l)
		for i, mod := range dm.Modules {
			base[i] = mod.Procs * mod.Replicas
		}
		var rec func(i int, raw []int, used int)
		rec = func(i int, raw []int, used int) {
			if used > pl.Procs {
				return
			}
			if i == l {
				add(build(raw))
				add(buildSingle(raw))
				return
			}
			for d := -2; d <= 2; d++ {
				p := base[i] + d
				if p < mins[i] {
					continue
				}
				raw[i] = p
				rec(i+1, raw, used+p)
			}
		}
		rec(0, make([]int, l), 0)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("tradeoff: no feasible mappings for %d tasks on %d processors",
			c.Len(), pl.Procs)
	}
	return out, nil
}
