package tradeoff

import (
	"math/rand"
	"testing"

	"pipemap/internal/apps"
	"pipemap/internal/dp"
	"pipemap/internal/model"
	"pipemap/internal/testutil"
)

func fftHist(t *testing.T) (*model.Chain, model.Platform) {
	t.Helper()
	c, err := apps.FFTHist(256, apps.Message)
	if err != nil {
		t.Fatal(err)
	}
	return c, apps.Platform()
}

func TestFrontierIsPareto(t *testing.T) {
	c, pl := fftHist(t)
	front, err := Frontier(c, pl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(front) < 2 {
		t.Fatalf("frontier has %d points; replication should create a real trade-off", len(front))
	}
	for i := 1; i < len(front); i++ {
		if front[i].Latency <= front[i-1].Latency {
			t.Errorf("frontier not sorted by latency: %g then %g",
				front[i-1].Latency, front[i].Latency)
		}
		if front[i].Throughput <= front[i-1].Throughput {
			t.Errorf("dominated point survived: thr %g after %g",
				front[i].Throughput, front[i-1].Throughput)
		}
	}
}

func TestFrontierContainsThroughputOptimum(t *testing.T) {
	c, pl := fftHist(t)
	front, err := Frontier(c, pl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	opt, err := dp.MapChain(c, pl, dp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	last := front[len(front)-1]
	if !testutil.AlmostEqual(last.Throughput, opt.Throughput(), 1e-9) {
		t.Errorf("frontier max throughput %g != DP optimum %g", last.Throughput, opt.Throughput())
	}
}

func TestMinLatencyBeatsThroughputOptimumOnLatency(t *testing.T) {
	c, pl := fftHist(t)
	minLat, err := MinLatency(c, pl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	opt, err := dp.MapChain(c, pl, dp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if minLat.Latency() > opt.Latency() {
		t.Errorf("min-latency mapping (%g) worse than throughput optimum (%g)",
			minLat.Latency(), opt.Latency())
	}
	if minLat.Latency() >= opt.Latency()*0.999 {
		t.Logf("note: latencies close: %g vs %g", minLat.Latency(), opt.Latency())
	}
}

func TestBestThroughputUnderLatency(t *testing.T) {
	c, pl := fftHist(t)
	front, err := Frontier(c, pl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := front[0], front[len(front)-1]
	// A bound between the extremes must return a mapping within it.
	bound := (lo.Latency + hi.Latency) / 2
	m, err := BestThroughputUnderLatency(c, pl, bound, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Latency() > bound {
		t.Errorf("latency %g exceeds bound %g", m.Latency(), bound)
	}
	if m.Throughput() < lo.Throughput {
		t.Errorf("bounded throughput %g below min-latency point %g", m.Throughput(), lo.Throughput)
	}
	// An impossible bound errors.
	if _, err := BestThroughputUnderLatency(c, pl, lo.Latency/2, Options{}); err == nil {
		t.Error("unsatisfiable latency bound accepted")
	}
}

func TestFrontierRandomChainsNoDominatedPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	cfg := testutil.RandChainConfig{MinTasks: 2, MaxTasks: 3, MaxMinProcs: 2, AllowNonReplicable: true}
	for trial := 0; trial < 10; trial++ {
		c, pl := testutil.RandChain(rng, cfg, 6)
		front, err := Frontier(c, pl, Options{})
		if err != nil {
			continue
		}
		// Spot-check against random mappings: none may dominate a frontier
		// point.
		for _, spans := range model.AllClusterings(c.Len()) {
			mods := make([]model.Module, len(spans))
			used, ok := 0, true
			for i, sp := range spans {
				min := c.ModuleMinProcs(sp.Lo, sp.Hi, pl.MemPerProc)
				if min < 0 || used+min > pl.Procs {
					ok = false
					break
				}
				mods[i] = model.Module{Lo: sp.Lo, Hi: sp.Hi, Procs: min, Replicas: 1}
				used += min
			}
			if !ok {
				continue
			}
			m := model.Mapping{Chain: c, Modules: mods}
			thr, lat := m.Throughput(), m.Latency()
			for _, p := range front {
				if thr > p.Throughput+1e-9 && lat < p.Latency-1e-9 {
					t.Errorf("trial %d: %v dominates frontier point (%g, %g)", trial, &m,
						p.Throughput, p.Latency)
				}
			}
		}
	}
}

func TestFrontierErrors(t *testing.T) {
	if _, err := Frontier(&model.Chain{}, model.Platform{Procs: 4}, Options{}); err == nil {
		t.Error("invalid chain accepted")
	}
	c := &model.Chain{
		Tasks: []model.Task{{Name: "x", Exec: model.PolyExec{C2: 1}, MinProcs: 99}},
	}
	if _, err := Frontier(c, model.Platform{Procs: 4}, Options{}); err == nil {
		t.Error("infeasible chain accepted")
	}
}

func TestFrontierDisableReplicationShrinks(t *testing.T) {
	c, pl := fftHist(t)
	with, err := Frontier(c, pl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	without, err := Frontier(c, pl, Options{DisableReplication: true})
	if err != nil {
		t.Fatal(err)
	}
	if without[len(without)-1].Throughput >= with[len(with)-1].Throughput {
		t.Errorf("disabling replication did not reduce max throughput: %g vs %g",
			without[len(without)-1].Throughput, with[len(with)-1].Throughput)
	}
}

func TestFrontierFirstPointMatchesExactMinLatency(t *testing.T) {
	// For chains whose clusterings are all enumerated exhaustively, the
	// frontier's lowest-latency point must coincide with the exact
	// latency DP.
	c, pl := fftHist(t)
	front, err := Frontier(c, pl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	exact, err := dp.MinLatency(c, pl)
	if err != nil {
		t.Fatal(err)
	}
	if !testutil.AlmostEqual(front[0].Latency, exact.Latency(), 1e-9) {
		t.Errorf("frontier min latency %g != exact DP %g", front[0].Latency, exact.Latency())
	}
}

func TestFrontierLargeClusteringPerturbationPath(t *testing.T) {
	// Force the non-exhaustive branch with a 4-task chain and
	// MaxExhaustiveModules = 2: the frontier must still be valid and
	// contain the throughput optimum within tolerance.
	rng := rand.New(rand.NewSource(211))
	c, pl := testutil.RandChain(rng, testutil.RandChainConfig{
		MinTasks: 4, MaxTasks: 4, MaxMinProcs: 1, AllowNonReplicable: false,
	}, 10)
	front, err := Frontier(c, pl, Options{MaxExhaustiveModules: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(front); i++ {
		if front[i].Throughput <= front[i-1].Throughput {
			t.Errorf("dominated point at %d", i)
		}
	}
	opt, err := dp.MapChain(c, pl, dp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	best := front[len(front)-1].Throughput
	if best < opt.Throughput()*0.9 {
		t.Errorf("perturbation frontier best %g far below optimum %g", best, opt.Throughput())
	}
}
