package estimate

import (
	"math"
	"sort"
)

// ChangeTracker decides which per-stage cost corrections are material and
// remembers which stages actually moved. The adaptive controller refits
// every stage on every cycle, but most refits reproduce the previous ratio
// to within noise; applying those no-op corrections would still perturb the
// cost model bit-wise and defeat both solver memoization (every tick would
// hash differently) and incremental re-solve (every stage would look
// changed). The tracker gates each proposed correction against an epsilon:
// sub-epsilon moves are dropped, so the applied cost model stays
// bit-identical, and supra-epsilon moves are committed and reported in
// Changed() as the exact change set the incremental solver needs.
//
// A ChangeTracker is not safe for concurrent use; the controller owns one
// and drives it from its single-threaded Step loop.
type ChangeTracker struct {
	eps     float64
	applied []float64
	moved   []bool
	changed []int
}

// NewChangeTracker tracks stages stages, all starting at the neutral
// correction 1. epsilon is the relative dead-band: a proposed value within
// epsilon * max(1, |current|) of the current one is not a move. epsilon <=
// 0 means every bit-level change counts.
func NewChangeTracker(stages int, epsilon float64) *ChangeTracker {
	t := &ChangeTracker{
		eps:     epsilon,
		applied: make([]float64, stages),
		moved:   make([]bool, stages),
		changed: make([]int, 0, stages),
	}
	for i := range t.applied {
		t.applied[i] = 1
	}
	return t
}

// Offer proposes next as stage's correction. If the move from the last
// accepted value exceeds the epsilon dead-band it is committed — Value
// returns it and Changed reports the stage — and Offer returns true;
// otherwise the proposal is dropped and the accepted value stands.
// Out-of-range stages are ignored.
func (t *ChangeTracker) Offer(stage int, next float64) bool {
	if t == nil || stage < 0 || stage >= len(t.applied) {
		return false
	}
	if math.IsNaN(next) || math.IsInf(next, 0) {
		return false
	}
	cur := t.applied[stage]
	diff := math.Abs(next - cur)
	band := math.Max(t.eps, 0) * math.Max(1, math.Abs(cur))
	if diff <= band {
		return false
	}
	t.applied[stage] = next
	if !t.moved[stage] {
		t.moved[stage] = true
		t.changed = append(t.changed, stage)
	}
	return true
}

// Value returns stage's last accepted correction (1 until a move commits).
func (t *ChangeTracker) Value(stage int) float64 {
	if t == nil || stage < 0 || stage >= len(t.applied) {
		return 1
	}
	return t.applied[stage]
}

// Changed returns the stages with committed moves since the last Reset, in
// ascending order. The returned slice is owned by the tracker.
func (t *ChangeTracker) Changed() []int {
	if t == nil {
		return nil
	}
	sort.Ints(t.changed)
	return t.changed
}

// Reset clears the change set; accepted values are kept, so the dead-band
// keeps gating against what was actually applied.
func (t *ChangeTracker) Reset() {
	if t == nil {
		return
	}
	for _, s := range t.changed {
		t.moved[s] = false
	}
	t.changed = t.changed[:0]
}
