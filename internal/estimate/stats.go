package estimate

import (
	"fmt"
	"math"

	"pipemap/internal/model"
)

// FitStats summarizes the goodness of fit of a cost model against its
// training samples.
type FitStats struct {
	// N is the number of samples.
	N int
	// RMSE is the root mean squared residual.
	RMSE float64
	// MaxAbsErr is the largest absolute residual.
	MaxAbsErr float64
	// R2 is the coefficient of determination (1 = perfect; can be
	// negative for fits worse than the mean).
	R2 float64
}

// ExecFitStats evaluates a fitted execution model against samples.
func ExecFitStats(f model.CostFunc, samples []ExecSample) (FitStats, error) {
	if len(samples) == 0 {
		return FitStats{}, fmt.Errorf("estimate: no samples to score")
	}
	pred := make([]float64, len(samples))
	obs := make([]float64, len(samples))
	for i, s := range samples {
		if s.Procs < 1 {
			return FitStats{}, fmt.Errorf("estimate: sample %d has %d processors", i, s.Procs)
		}
		pred[i] = f.Eval(s.Procs)
		obs[i] = s.Time
	}
	return residStats(pred, obs), nil
}

// CommFitStats evaluates a fitted communication model against samples.
func CommFitStats(f model.CommFunc, samples []CommSample) (FitStats, error) {
	if len(samples) == 0 {
		return FitStats{}, fmt.Errorf("estimate: no samples to score")
	}
	pred := make([]float64, len(samples))
	obs := make([]float64, len(samples))
	for i, s := range samples {
		if s.SendProcs < 1 || s.RecvProcs < 1 {
			return FitStats{}, fmt.Errorf("estimate: sample %d has counts (%d,%d)",
				i, s.SendProcs, s.RecvProcs)
		}
		pred[i] = f.Eval(s.SendProcs, s.RecvProcs)
		obs[i] = s.Time
	}
	return residStats(pred, obs), nil
}

func residStats(pred, obs []float64) FitStats {
	n := len(obs)
	var mean float64
	for _, v := range obs {
		mean += v
	}
	mean /= float64(n)
	var ssRes, ssTot, maxAbs float64
	for i := range obs {
		r := pred[i] - obs[i]
		ssRes += r * r
		d := obs[i] - mean
		ssTot += d * d
		if a := math.Abs(r); a > maxAbs {
			maxAbs = a
		}
	}
	st := FitStats{
		N:         n,
		RMSE:      math.Sqrt(ssRes / float64(n)),
		MaxAbsErr: maxAbs,
	}
	if ssTot > 0 {
		st.R2 = 1 - ssRes/ssTot
	} else if ssRes == 0 {
		st.R2 = 1
	}
	return st
}

func (s FitStats) String() string {
	return fmt.Sprintf("n=%d rmse=%.4g max=%.4g R2=%.4f", s.N, s.RMSE, s.MaxAbsErr, s.R2)
}
