// Package estimate derives the paper's polynomial cost models from
// profiled executions (section 5): execution time C1 + C2/p + C3*p,
// external communication C1 + C2/ps + C3/pr + C4*ps + C5*pr, and internal
// redistribution C1 + C2/p + C3*p, all fit with linear least squares. The
// paper derives every parameter from eight training executions;
// TrainingPlan reproduces that design.
package estimate

import (
	"fmt"
	"math"
)

// LeastSquares solves min_x ||A x - b||_2 for a dense matrix A given as
// rows, via the normal equations with partial-pivot Gaussian elimination.
// If the normal matrix is (near) singular — e.g. fewer distinct sample
// points than parameters — a small ridge term is added so a stable
// minimum-energy-ish solution is still produced.
func LeastSquares(rows [][]float64, b []float64) ([]float64, error) {
	m := len(rows)
	if m == 0 {
		return nil, fmt.Errorf("estimate: no sample rows")
	}
	if len(b) != m {
		return nil, fmt.Errorf("estimate: %d rows but %d observations", m, len(b))
	}
	n := len(rows[0])
	for i, r := range rows {
		if len(r) != n {
			return nil, fmt.Errorf("estimate: row %d has %d columns, want %d", i, len(r), n)
		}
	}
	// Normal equations: (A^T A) x = A^T b.
	ata := make([][]float64, n)
	atb := make([]float64, n)
	for i := 0; i < n; i++ {
		ata[i] = make([]float64, n)
	}
	for r := 0; r < m; r++ {
		row := rows[r]
		for i := 0; i < n; i++ {
			atb[i] += row[i] * b[r]
			for j := i; j < n; j++ {
				ata[i][j] += row[i] * row[j]
			}
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < i; j++ {
			ata[i][j] = ata[j][i]
		}
	}
	x, err := solve(ata, atb)
	if err == nil {
		return x, nil
	}
	// Ridge fallback: scale by the matrix magnitude for invariance.
	trace := 0.0
	for i := 0; i < n; i++ {
		trace += ata[i][i]
	}
	lambda := 1e-10 * (trace/float64(n) + 1)
	for i := 0; i < n; i++ {
		ata[i][i] += lambda
	}
	return solve(ata, atb)
}

// solve performs in-place Gaussian elimination with partial pivoting on a
// copy of the system.
func solve(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	// Work on copies: the caller may retry with a ridge term.
	m := make([][]float64, n)
	for i := range a {
		m[i] = append([]float64(nil), a[i]...)
	}
	x := append([]float64(nil), b...)
	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(m[pivot][col]) < 1e-12 {
			return nil, fmt.Errorf("estimate: singular system at column %d", col)
		}
		m[col], m[pivot] = m[pivot], m[col]
		x[col], x[pivot] = x[pivot], x[col]
		inv := 1 / m[col][col]
		for r := col + 1; r < n; r++ {
			f := m[r][col] * inv
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				m[r][c] -= f * m[col][c]
			}
			x[r] -= f * x[col]
		}
	}
	for col := n - 1; col >= 0; col-- {
		sum := x[col]
		for c := col + 1; c < n; c++ {
			sum -= m[col][c] * x[c]
		}
		x[col] = sum / m[col][col]
	}
	return x, nil
}
