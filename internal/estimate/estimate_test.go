package estimate

import (
	"math"
	"math/rand"
	"testing"

	"pipemap/internal/model"
	"pipemap/internal/testutil"
)

func TestLeastSquaresExact(t *testing.T) {
	// y = 2 + 3x fitted from exact points.
	rows := [][]float64{{1, 1}, {1, 2}, {1, 3}}
	b := []float64{5, 8, 11}
	x, err := LeastSquares(rows, b)
	if err != nil {
		t.Fatal(err)
	}
	if !testutil.AlmostEqual(x[0], 2, 1e-9) || !testutil.AlmostEqual(x[1], 3, 1e-9) {
		t.Errorf("x = %v, want [2 3]", x)
	}
}

func TestLeastSquaresOverdetermined(t *testing.T) {
	// Noisy line: the residual of the LS solution must not exceed that of
	// the true parameters.
	rng := rand.New(rand.NewSource(1))
	var rows [][]float64
	var b []float64
	for i := 0; i < 50; i++ {
		xi := float64(i)
		rows = append(rows, []float64{1, xi})
		b = append(b, 1.5+0.25*xi+rng.NormFloat64()*0.01)
	}
	x, err := LeastSquares(rows, b)
	if err != nil {
		t.Fatal(err)
	}
	res := func(c0, c1 float64) float64 {
		s := 0.0
		for i, r := range rows {
			d := c0 + c1*r[1] - b[i]
			s += d * d
		}
		return s
	}
	if res(x[0], x[1]) > res(1.5, 0.25)+1e-12 {
		t.Errorf("LS residual %g worse than truth %g", res(x[0], x[1]), res(1.5, 0.25))
	}
}

func TestLeastSquaresSingularFallsBackToRidge(t *testing.T) {
	// Two identical rows, two unknowns: singular normal matrix.
	rows := [][]float64{{1, 2}, {1, 2}}
	b := []float64{3, 3}
	x, err := LeastSquares(rows, b)
	if err != nil {
		t.Fatalf("ridge fallback failed: %v", err)
	}
	if got := x[0] + 2*x[1]; !testutil.AlmostEqual(got, 3, 1e-3) {
		t.Errorf("ridge solution does not reproduce the observation: %g", got)
	}
}

func TestLeastSquaresErrors(t *testing.T) {
	if _, err := LeastSquares(nil, nil); err == nil {
		t.Error("empty system accepted")
	}
	if _, err := LeastSquares([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if _, err := LeastSquares([][]float64{{1, 2}, {1}}, []float64{1, 2}); err == nil {
		t.Error("ragged rows accepted")
	}
}

func TestFitExecRecoversTruth(t *testing.T) {
	truth := model.PolyExec{C1: 0.5, C2: 12, C3: 0.03}
	var samples []ExecSample
	for _, p := range []int{1, 2, 4, 8, 16, 32} {
		samples = append(samples, ExecSample{Procs: p, Time: truth.Eval(p)})
	}
	got, err := FitExec(samples)
	if err != nil {
		t.Fatal(err)
	}
	for p := 1; p <= 64; p *= 2 {
		if !testutil.AlmostEqual(got.Eval(p), truth.Eval(p), 1e-6) {
			t.Errorf("fitted(%d) = %g, want %g", p, got.Eval(p), truth.Eval(p))
		}
	}
}

func TestFitCommRecoversTruth(t *testing.T) {
	truth := model.PolyComm{C1: 0.2, C2: 3, C3: 5, C4: 0.01, C5: 0.02}
	var samples []CommSample
	for _, pq := range [][2]int{{1, 1}, {2, 1}, {1, 2}, {4, 2}, {2, 4}, {8, 8}, {3, 5}} {
		samples = append(samples, CommSample{
			SendProcs: pq[0], RecvProcs: pq[1],
			Time: truth.Eval(pq[0], pq[1]),
		})
	}
	got, err := FitComm(samples)
	if err != nil {
		t.Fatal(err)
	}
	for _, pq := range [][2]int{{1, 4}, {16, 2}, {6, 6}} {
		if !testutil.AlmostEqual(got.Eval(pq[0], pq[1]), truth.Eval(pq[0], pq[1]), 1e-6) {
			t.Errorf("fitted(%v) = %g, want %g", pq, got.Eval(pq[0], pq[1]), truth.Eval(pq[0], pq[1]))
		}
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := FitExec(nil); err == nil {
		t.Error("empty exec samples accepted")
	}
	if _, err := FitExec([]ExecSample{{Procs: 0, Time: 1}}); err == nil {
		t.Error("zero-processor sample accepted")
	}
	if _, err := FitComm(nil); err == nil {
		t.Error("empty comm samples accepted")
	}
	if _, err := FitComm([]CommSample{{SendProcs: 1, RecvProcs: 0, Time: 1}}); err == nil {
		t.Error("zero-processor comm sample accepted")
	}
}

func TestTrainingPlanShape(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c, pl := testutil.RandChain(rng, testutil.DefaultRandChainConfig(), 16)
	plan, err := TrainingPlan(c, pl)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan) != 8 {
		t.Fatalf("plan has %d runs, want 8 (the paper's training size)", len(plan))
	}
	merged, split := 0, 0
	for _, m := range plan {
		if err := m.Validate(pl); err != nil {
			t.Errorf("training mapping invalid: %v (%v)", err, &m)
		}
		if len(m.Modules) == 1 {
			merged++
		} else if len(m.Modules) == c.Len() {
			split++
		}
	}
	if merged != 3 || split != 5 {
		t.Errorf("plan has %d merged and %d split runs, want 3 and 5", merged, split)
	}
}

func TestTrainingPlanInfeasible(t *testing.T) {
	c := &model.Chain{
		Tasks: []model.Task{
			{Name: "x", Exec: model.PolyExec{C2: 1}, Mem: model.Memory{Data: 1e6}},
		},
	}
	if _, err := TrainingPlan(c, model.Platform{Procs: 4, MemPerProc: 100}); err == nil {
		t.Error("infeasible plan accepted")
	}
	if _, err := TrainingPlan(&model.Chain{}, model.Platform{Procs: 4}); err == nil {
		t.Error("empty chain accepted")
	}
}

func TestEstimateChainRecoversPolynomialTruth(t *testing.T) {
	// When the application truly follows the polynomial model and profiling
	// is exact, the fitted chain must reproduce it (up to LS conditioning).
	rng := rand.New(rand.NewSource(9))
	truth, pl := testutil.RandChain(rng, testutil.DefaultRandChainConfig(), 24)
	fitted, err := EstimateChain(truth, &ModelProfiler{Truth: truth}, pl)
	if err != nil {
		t.Fatal(err)
	}
	for i := range truth.Tasks {
		for p := 1; p <= pl.Procs; p *= 2 {
			want := truth.Tasks[i].Exec.Eval(p)
			got := fitted.Tasks[i].Exec.Eval(p)
			if !testutil.AlmostEqual(got, want, 1e-3) {
				t.Errorf("task %d exec(%d): fitted %g, truth %g", i, p, got, want)
			}
		}
	}
	for e := range truth.ECom {
		for _, pq := range [][2]int{{2, 3}, {8, 8}, {4, 12}} {
			want := truth.ECom[e].Eval(pq[0], pq[1])
			got := fitted.ECom[e].Eval(pq[0], pq[1])
			if !testutil.AlmostEqual(got, want, 1e-2) {
				t.Errorf("edge %d ecom(%v): fitted %g, truth %g", e, pq, got, want)
			}
		}
	}
}

func TestEstimateChainWithNoiseStaysAccurate(t *testing.T) {
	// With 5% measurement noise the fitted model should predict within a
	// modest band — the paper reports average error under 10%.
	rng := rand.New(rand.NewSource(13))
	truth, pl := testutil.RandChain(rng, testutil.DefaultRandChainConfig(), 24)
	fitted, err := EstimateChain(truth, &ModelProfiler{Truth: truth, Noise: 0.05, Seed: 77}, pl)
	if err != nil {
		t.Fatal(err)
	}
	var pred, meas []float64
	for i := range truth.Tasks {
		for p := 2; p <= pl.Procs; p *= 2 {
			pred = append(pred, fitted.Tasks[i].Exec.Eval(p))
			meas = append(meas, truth.Tasks[i].Exec.Eval(p))
		}
	}
	if err := MeanAbsPctError(pred, meas); err > 25 {
		t.Errorf("mean abs error %g%% too large for 5%% noise", err)
	}
}

func TestMeanAbsPctError(t *testing.T) {
	if got := MeanAbsPctError([]float64{110, 90}, []float64{100, 100}); !testutil.AlmostEqual(got, 10, 1e-9) {
		t.Errorf("MeanAbsPctError = %g, want 10", got)
	}
	if got := MeanAbsPctError([]float64{1}, []float64{0}); got != 0 {
		t.Errorf("zero-measured handling = %g, want 0", got)
	}
	if got := MeanAbsPctError(nil, nil); got != 0 {
		t.Errorf("empty input = %g, want 0", got)
	}
	if got := MeanAbsPctError([]float64{1, 2}, []float64{1}); got != 0 {
		t.Errorf("mismatched input = %g, want 0", got)
	}
}

func TestModelProfilerMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	truth, pl := testutil.RandChain(rng, testutil.DefaultRandChainConfig(), 8)
	other, _ := testutil.RandChain(rng, testutil.RandChainConfig{MinTasks: 7, MaxTasks: 7}, 8)
	mp := &ModelProfiler{Truth: truth}
	m := model.DataParallel(other, pl)
	if _, err := mp.Profile(m); err == nil && other.Len() != truth.Len() {
		t.Error("chain-length mismatch accepted")
	}
}

func TestNoisyIsDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	truth, pl := testutil.RandChain(rng, testutil.DefaultRandChainConfig(), 8)
	m := model.DataParallel(truth, pl)
	a := &ModelProfiler{Truth: truth, Noise: 0.1, Seed: 5}
	b := &ModelProfiler{Truth: truth, Noise: 0.1, Seed: 5}
	ma, err := a.Profile(m)
	if err != nil {
		t.Fatal(err)
	}
	mb, err := b.Profile(m)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ma.TaskExec {
		if math.Abs(ma.TaskExec[i]-mb.TaskExec[i]) > 0 {
			t.Errorf("same seed produced different noise at task %d", i)
		}
	}
}

func TestExecFitStatsPerfectFit(t *testing.T) {
	truth := model.PolyExec{C1: 0.5, C2: 3, C3: 0.02}
	var samples []ExecSample
	for _, p := range []int{1, 2, 4, 8} {
		samples = append(samples, ExecSample{Procs: p, Time: truth.Eval(p)})
	}
	st, err := ExecFitStats(truth, samples)
	if err != nil {
		t.Fatal(err)
	}
	if st.N != 4 || st.RMSE > 1e-12 || !testutil.AlmostEqual(st.R2, 1, 1e-9) {
		t.Errorf("perfect fit stats %+v", st)
	}
	if st.String() == "" {
		t.Error("empty stats string")
	}
}

func TestExecFitStatsBadFit(t *testing.T) {
	flat := model.PolyExec{C1: 5}
	samples := []ExecSample{{1, 1}, {2, 2}, {4, 4}, {8, 8}}
	st, err := ExecFitStats(flat, samples)
	if err != nil {
		t.Fatal(err)
	}
	if st.R2 > 0.5 {
		t.Errorf("bad fit scored R2=%g", st.R2)
	}
	if st.MaxAbsErr < 3 {
		t.Errorf("max abs err %g too small", st.MaxAbsErr)
	}
}

func TestCommFitStats(t *testing.T) {
	truth := model.PolyComm{C1: 0.1, C2: 1, C3: 1}
	var samples []CommSample
	for _, pq := range [][2]int{{1, 1}, {2, 2}, {4, 8}} {
		samples = append(samples, CommSample{pq[0], pq[1], truth.Eval(pq[0], pq[1])})
	}
	st, err := CommFitStats(truth, samples)
	if err != nil {
		t.Fatal(err)
	}
	if !testutil.AlmostEqual(st.R2, 1, 1e-9) {
		t.Errorf("perfect comm fit R2=%g", st.R2)
	}
}

func TestFitStatsErrors(t *testing.T) {
	if _, err := ExecFitStats(model.ZeroExec(), nil); err == nil {
		t.Error("empty exec samples accepted")
	}
	if _, err := ExecFitStats(model.ZeroExec(), []ExecSample{{0, 1}}); err == nil {
		t.Error("invalid procs accepted")
	}
	if _, err := CommFitStats(model.ZeroComm(), nil); err == nil {
		t.Error("empty comm samples accepted")
	}
	if _, err := CommFitStats(model.ZeroComm(), []CommSample{{0, 1, 1}}); err == nil {
		t.Error("invalid comm procs accepted")
	}
}

func TestFitStatsConstantObservations(t *testing.T) {
	flat := model.PolyExec{C1: 2}
	samples := []ExecSample{{1, 2}, {2, 2}, {4, 2}}
	st, err := ExecFitStats(flat, samples)
	if err != nil {
		t.Fatal(err)
	}
	if st.R2 != 1 {
		t.Errorf("constant perfect fit R2=%g, want 1", st.R2)
	}
}

func TestEstimateChainWithStats(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	truth, pl := testutil.RandChain(rng, testutil.DefaultRandChainConfig(), 24)
	fitted, rep, err := EstimateChainWithStats(truth, &ModelProfiler{Truth: truth}, pl)
	if err != nil {
		t.Fatal(err)
	}
	if fitted == nil || rep == nil {
		t.Fatal("nil results")
	}
	if len(rep.TaskStats) != truth.Len() || len(rep.EComStats) != truth.Len()-1 {
		t.Fatalf("report shape %d/%d", len(rep.TaskStats), len(rep.EComStats))
	}
	// Exact profiling of a polynomial truth: R2 ~ 1 for every exec fit.
	for i, st := range rep.TaskStats {
		if st.R2 < 0.999 {
			t.Errorf("task %d fit R2=%g (%s)", i, st.R2, st)
		}
	}
	for e, st := range rep.EComStats {
		if st.R2 < 0.99 {
			t.Errorf("edge %d ecom fit R2=%g", e, st.R2)
		}
	}
}

func TestEstimateChainWithStatsNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	truth, pl := testutil.RandChain(rng, testutil.DefaultRandChainConfig(), 24)
	_, rep, err := EstimateChainWithStats(truth,
		&ModelProfiler{Truth: truth, Noise: 0.1, Seed: 5}, pl)
	if err != nil {
		t.Fatal(err)
	}
	// Noisy fits still report finite, sane statistics.
	for i, st := range rep.TaskStats {
		if st.N == 0 || st.RMSE < 0 {
			t.Errorf("task %d stats degenerate: %+v", i, st)
		}
	}
}
