package estimate

import (
	"math"
	"testing"

	"pipemap/internal/model"
)

func TestOnlineRefitGatedUntilMinSamples(t *testing.T) {
	f := NewOnlineFitter(model.PolyExec{C2: 4}, 4, OnlineOptions{})
	f.Observe(1.0)
	f.Observe(1.1)
	if _, err := f.Refit(8); err == nil {
		t.Fatal("refit with 2 of 3 default min samples should be gated")
	}
	f.Observe(0.9)
	if _, err := f.Refit(8); err != nil {
		t.Fatalf("refit with min samples met: %v", err)
	}
}

func TestOnlineRefitConstantObservations(t *testing.T) {
	// A window of identical observations has zero MAD; the degenerate
	// spread must not reject everything or blow up the fit.
	prior := model.PolyExec{C1: 0.1, C2: 4, C3: 0.01}
	f := NewOnlineFitter(prior, 4, OnlineOptions{})
	for i := 0; i < 8; i++ {
		f.Observe(2.0)
	}
	r, err := f.Refit(16)
	if err != nil {
		t.Fatalf("constant observations: %v", err)
	}
	if r.Samples != 8 || r.Rejected != 0 {
		t.Errorf("samples=%d rejected=%d, want 8/0", r.Samples, r.Rejected)
	}
	wantRatio := 2.0 / prior.Eval(4)
	if math.Abs(r.Ratio-wantRatio) > 1e-9 {
		t.Errorf("ratio %g, want %g", r.Ratio, wantRatio)
	}
	if got := r.Exec.Eval(4); math.Abs(got-2.0) > 0.2 {
		t.Errorf("refit predicts %g at the live count, want ~2.0", got)
	}
	if math.IsNaN(r.Stats.RMSE) || math.IsInf(r.Stats.RMSE, 0) {
		t.Errorf("non-finite RMSE %g", r.Stats.RMSE)
	}
}

func TestOnlineRefitSingleSampleWindow(t *testing.T) {
	prior := model.PolyExec{C2: 8}
	f := NewOnlineFitter(prior, 2, OnlineOptions{Window: 1, MinSamples: 1})
	f.Observe(6.0) // prior predicts 4.0 at p=2: the stage runs 1.5x slow
	r, err := f.Refit(8)
	if err != nil {
		t.Fatalf("single-sample window: %v", err)
	}
	if math.Abs(r.Ratio-1.5) > 1e-9 {
		t.Errorf("ratio %g, want 1.5", r.Ratio)
	}
	if got := r.Exec.Eval(2); math.Abs(got-6.0) > 0.5 {
		t.Errorf("refit predicts %g at the live count, want ~6.0", got)
	}
	// The window holds one slot: a new observation replaces the old one.
	f.Observe(2.0)
	if f.Len() != 1 {
		t.Fatalf("window length %d, want 1", f.Len())
	}
	r, err = f.Refit(8)
	if err != nil {
		t.Fatalf("after replacement: %v", err)
	}
	if math.Abs(r.Ratio-0.5) > 1e-9 {
		t.Errorf("ratio %g after replacement, want 0.5", r.Ratio)
	}
}

func TestOnlineRefitIllConditionedNoPanic(t *testing.T) {
	// procs=1 with maxProcs=1 collapses every anchor and observation onto
	// p=1, so 1/p and p are indistinguishable and the normal equations are
	// singular. The ridge fallback must produce a usable model, not a
	// panic or a non-finite residual.
	f := NewOnlineFitter(model.PolyExec{C2: 3}, 1, OnlineOptions{})
	for i := 0; i < 5; i++ {
		f.Observe(1.0)
	}
	r, err := f.Refit(1)
	if err != nil {
		t.Fatalf("ill-conditioned refit: %v", err)
	}
	if math.IsNaN(r.Stats.RMSE) || math.IsInf(r.Stats.RMSE, 0) {
		t.Fatalf("non-finite RMSE %g", r.Stats.RMSE)
	}
	if got := r.Exec.Eval(1); math.Abs(got-1.0) > 0.3 {
		t.Errorf("refit predicts %g at p=1, want ~1.0", got)
	}
}

func TestOnlineRefitNilPriorIsObservationOnly(t *testing.T) {
	f := NewOnlineFitter(nil, 4, OnlineOptions{})
	for i := 0; i < 4; i++ {
		f.Observe(0.5)
	}
	r, err := f.Refit(8)
	if err != nil {
		t.Fatalf("nil prior: %v", err)
	}
	if r.Ratio != 0 {
		t.Errorf("ratio %g with no prior, want 0", r.Ratio)
	}
	if got := r.Exec.Eval(4); math.Abs(got-0.5) > 0.2 {
		t.Errorf("observation-only refit predicts %g, want ~0.5", got)
	}
}

func TestOnlineRefitRejectsOutliers(t *testing.T) {
	prior := model.PolyExec{C2: 4}
	f := NewOnlineFitter(prior, 4, OnlineOptions{})
	for i := 0; i < 7; i++ {
		f.Observe(1.0 + float64(i%3)*0.01)
	}
	f.Observe(50.0) // a stall: 50x the window median
	r, err := f.Refit(8)
	if err != nil {
		t.Fatalf("refit with outlier: %v", err)
	}
	if r.Rejected < 1 {
		t.Fatalf("outlier not rejected (rejected=%d)", r.Rejected)
	}
	if r.Ratio > 1.2 {
		t.Errorf("ratio %g polluted by the outlier", r.Ratio)
	}
}

func TestOnlineObserveIgnoresGarbage(t *testing.T) {
	f := NewOnlineFitter(model.PolyExec{C2: 4}, 4, OnlineOptions{})
	f.Observe(math.NaN())
	f.Observe(math.Inf(1))
	f.Observe(-1)
	if f.Len() != 0 {
		t.Fatalf("garbage observations retained: window length %d", f.Len())
	}
	var nilF *OnlineFitter
	nilF.Observe(1) // nil fitter is a no-op, not a panic
	if nilF.Len() != 0 {
		t.Fatal("nil fitter reported observations")
	}
	if _, err := nilF.Refit(4); err == nil {
		t.Fatal("nil fitter refit should error")
	}
}
