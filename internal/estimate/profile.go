package estimate

import (
	"fmt"
	"math/rand"

	"pipemap/internal/model"
)

// Measurement is what one profiled execution yields: the per-task
// execution time at the processor counts of the profiled mapping, and the
// per-edge communication time (internal redistribution when the edge lies
// inside a module, external transfer when it crosses modules).
type Measurement struct {
	TaskExec []float64 // len k
	EdgeComm []float64 // len k-1
}

// Profiler measures a chain under one mapping. Implementations include the
// discrete-event simulator (package sim), the goroutine runtime (package
// fxrt), and ModelProfiler below.
type Profiler interface {
	Profile(m model.Mapping) (Measurement, error)
}

// TrainingPlan returns the paper's eight training executions for a chain
// of k tasks on P processors: three runs with all tasks merged into one
// module at decreasing processor counts (yielding execution and internal
// redistribution samples), and five runs with per-task modules under
// varied processor splits (yielding external transfer samples at five
// distinct sender/receiver combinations per edge).
func TrainingPlan(c *model.Chain, pl model.Platform) ([]model.Mapping, error) {
	if len(c.Tasks) == 0 {
		return nil, fmt.Errorf("estimate: chain has no tasks")
	}
	k, P := c.Len(), pl.Procs
	var plan []model.Mapping

	// Merged runs at P, ~P/2, ~P/4 (not below the merged minimum).
	mergedMin := c.ModuleMinProcs(0, k, pl.MemPerProc)
	if mergedMin < 0 || mergedMin > P {
		return nil, fmt.Errorf("estimate: merged module does not fit on %d processors", P)
	}
	seen := map[int]bool{}
	for _, p := range []int{P, P / 2, P / 4} {
		if p < mergedMin {
			p = mergedMin
		}
		if seen[p] {
			// Degenerate platform; shift to keep samples distinct.
			for seen[p] && p < P {
				p++
			}
		}
		seen[p] = true
		plan = append(plan, model.Mapping{Chain: c, Modules: []model.Module{
			{Lo: 0, Hi: k, Procs: p, Replicas: 1},
		}})
	}

	// Split runs: per-task modules with five weight patterns.
	mins := make([]int, k)
	summin := 0
	for i := 0; i < k; i++ {
		m := c.ModuleMinProcs(i, i+1, pl.MemPerProc)
		if m < 0 || m > P {
			return nil, fmt.Errorf("estimate: task %q does not fit on %d processors",
				c.Tasks[i].Name, P)
		}
		mins[i] = m
		summin += m
	}
	if summin > P {
		return nil, fmt.Errorf("estimate: per-task modules need %d processors, platform has %d",
			summin, P)
	}
	// Five split runs: three shapes at the full budget plus two at reduced
	// budgets, so every edge samples (ps, pr) pairs that identify all five
	// parameters of the communication model (same-budget patterns alone
	// are rank deficient).
	runs := []struct {
		budget int
		w      []float64
	}{
		{P, flatWeights(k, func(i int) float64 { return 1 })},
		{P, flatWeights(k, func(i int) float64 { return float64(1 + i) })},
		{P, flatWeights(k, func(i int) float64 { return float64(k - i) })},
		{maxInt(summin, P/2), flatWeights(k, func(i int) float64 { return 1 })},
		{maxInt(summin, P/4), flatWeights(k, func(i int) float64 { return float64(1 + i) })},
	}
	for _, run := range runs {
		procs := distribute(run.budget, mins, run.w)
		mods := make([]model.Module, k)
		for i := 0; i < k; i++ {
			mods[i] = model.Module{Lo: i, Hi: i + 1, Procs: procs[i], Replicas: 1}
		}
		plan = append(plan, model.Mapping{Chain: c, Modules: mods})
	}
	return plan, nil
}

func flatWeights(k int, f func(int) float64) []float64 {
	w := make([]float64, k)
	for i := range w {
		w[i] = f(i)
	}
	return w
}

// distribute assigns P processors to k modules: each gets its minimum,
// and the remainder is split in proportion to the weights (largest
// fractional remainders first).
func distribute(P int, mins []int, w []float64) []int {
	k := len(mins)
	procs := append([]int(nil), mins...)
	rem := P
	for _, m := range mins {
		rem -= m
	}
	var wsum float64
	for _, x := range w {
		wsum += x
	}
	type fracIdx struct {
		frac float64
		i    int
	}
	fracs := make([]fracIdx, k)
	given := 0
	for i := 0; i < k; i++ {
		share := float64(rem) * w[i] / wsum
		add := int(share)
		procs[i] += add
		given += add
		fracs[i] = fracIdx{share - float64(add), i}
	}
	// Hand out leftovers by largest fraction.
	for given < rem {
		best := 0
		for i := 1; i < k; i++ {
			if fracs[i].frac > fracs[best].frac {
				best = i
			}
		}
		procs[fracs[best].i]++
		fracs[best].frac = -1
		given++
	}
	return procs
}

// EstimateChain profiles the application under the training plan and
// returns a chain whose cost functions are fitted polynomial models
// (clamped at zero). The structure argument provides task names, memory
// requirements and replicability; its cost functions are used only to
// determine minimum processor counts for the plan.
func EstimateChain(structure *model.Chain, prof Profiler, pl model.Platform) (*model.Chain, error) {
	plan, err := TrainingPlan(structure, pl)
	if err != nil {
		return nil, err
	}
	return EstimateChainFromPlan(structure, prof, plan)
}

// ChainFitReport carries per-model goodness-of-fit statistics from
// EstimateChainWithStats.
type ChainFitReport struct {
	// TaskStats[i] scores task i's fitted execution model against its
	// training samples.
	TaskStats []FitStats
	// ICicomStats[e] and EcomStats[e] score edge e's fitted internal and
	// external models.
	IComStats []FitStats
	EComStats []FitStats
}

// EstimateChainWithStats is EstimateChain returning per-fit
// goodness-of-fit statistics alongside the fitted chain.
func EstimateChainWithStats(structure *model.Chain, prof Profiler, pl model.Platform) (*model.Chain, *ChainFitReport, error) {
	plan, err := TrainingPlan(structure, pl)
	if err != nil {
		return nil, nil, err
	}
	fitted, samples, err := estimateChainFromPlan(structure, prof, plan)
	if err != nil {
		return nil, nil, err
	}
	k := structure.Len()
	rep := &ChainFitReport{
		TaskStats: make([]FitStats, k),
		IComStats: make([]FitStats, k-1),
		EComStats: make([]FitStats, k-1),
	}
	for t := 0; t < k; t++ {
		if rep.TaskStats[t], err = ExecFitStats(fitted.Tasks[t].Exec, samples.exec[t]); err != nil {
			return nil, nil, err
		}
	}
	for e := 0; e < k-1; e++ {
		if rep.IComStats[e], err = ExecFitStats(fitted.ICom[e], samples.icom[e]); err != nil {
			return nil, nil, err
		}
		if rep.EComStats[e], err = CommFitStats(fitted.ECom[e], samples.ecom[e]); err != nil {
			return nil, nil, err
		}
	}
	return fitted, rep, nil
}

// chainSamples collects the raw training observations per model.
type chainSamples struct {
	exec [][]ExecSample
	icom [][]ExecSample
	ecom [][]CommSample
}

// EstimateChainFromPlan is EstimateChain with a caller-provided training
// set, e.g. for studying model accuracy versus training size.
func EstimateChainFromPlan(structure *model.Chain, prof Profiler, plan []model.Mapping) (*model.Chain, error) {
	fitted, _, err := estimateChainFromPlan(structure, prof, plan)
	return fitted, err
}

func estimateChainFromPlan(structure *model.Chain, prof Profiler, plan []model.Mapping) (*model.Chain, *chainSamples, error) {
	k := structure.Len()
	execSamples := make([][]ExecSample, k)
	icomSamples := make([][]ExecSample, k-1)
	ecomSamples := make([][]CommSample, k-1)

	for _, m := range plan {
		meas, err := prof.Profile(m)
		if err != nil {
			return nil, nil, fmt.Errorf("estimate: profiling %v: %w", &m, err)
		}
		if len(meas.TaskExec) != k || len(meas.EdgeComm) != k-1 {
			return nil, nil, fmt.Errorf("estimate: profiler returned %d task and %d edge times, want %d and %d",
				len(meas.TaskExec), len(meas.EdgeComm), k, k-1)
		}
		// Module lookup per task.
		modOf := make([]int, k)
		for mi, mod := range m.Modules {
			for t := mod.Lo; t < mod.Hi; t++ {
				modOf[t] = mi
			}
		}
		for t := 0; t < k; t++ {
			execSamples[t] = append(execSamples[t], ExecSample{
				Procs: m.Modules[modOf[t]].Procs,
				Time:  meas.TaskExec[t],
			})
		}
		for e := 0; e < k-1; e++ {
			if modOf[e] == modOf[e+1] {
				icomSamples[e] = append(icomSamples[e], ExecSample{
					Procs: m.Modules[modOf[e]].Procs,
					Time:  meas.EdgeComm[e],
				})
			} else {
				ecomSamples[e] = append(ecomSamples[e], CommSample{
					SendProcs: m.Modules[modOf[e]].Procs,
					RecvProcs: m.Modules[modOf[e+1]].Procs,
					Time:      meas.EdgeComm[e],
				})
			}
		}
	}

	fitted := &model.Chain{
		Tasks: make([]model.Task, k),
		ICom:  make([]model.CostFunc, k-1),
		ECom:  make([]model.CommFunc, k-1),
	}
	for t := 0; t < k; t++ {
		pe, err := FitExec(execSamples[t])
		if err != nil {
			return nil, nil, fmt.Errorf("estimate: fitting task %q: %w", structure.Tasks[t].Name, err)
		}
		fitted.Tasks[t] = structure.Tasks[t]
		fitted.Tasks[t].Exec = model.ClampCost{F: pe}
	}
	for e := 0; e < k-1; e++ {
		pi, err := FitExec(icomSamples[e])
		if err != nil {
			return nil, nil, fmt.Errorf("estimate: fitting internal edge %d: %w", e, err)
		}
		fitted.ICom[e] = model.ClampCost{F: pi}
		pc, err := FitComm(ecomSamples[e])
		if err != nil {
			return nil, nil, fmt.Errorf("estimate: fitting external edge %d: %w", e, err)
		}
		fitted.ECom[e] = model.ClampComm{F: pc}
	}
	return fitted, &chainSamples{exec: execSamples, icom: icomSamples, ecom: ecomSamples}, nil
}

// ModelProfiler emulates profiled executions of an application whose true
// behaviour follows a ground-truth chain: measurements are the chain's
// cost functions evaluated at the mapping's processor counts, optionally
// perturbed by multiplicative noise (to emulate measurement error).
type ModelProfiler struct {
	// Truth is the ground-truth chain.
	Truth *model.Chain
	// Noise is the relative standard deviation of multiplicative
	// measurement noise (0 = exact).
	Noise float64
	// Seed makes the noise deterministic.
	Seed int64

	rng *rand.Rand
}

// Profile evaluates the truth chain under the mapping.
func (mp *ModelProfiler) Profile(m model.Mapping) (Measurement, error) {
	k := mp.Truth.Len()
	if m.Chain == nil || m.Chain.Len() != k {
		return Measurement{}, fmt.Errorf("estimate: mapping chain mismatch")
	}
	if mp.rng == nil {
		mp.rng = rand.New(rand.NewSource(mp.Seed))
	}
	meas := Measurement{
		TaskExec: make([]float64, k),
		EdgeComm: make([]float64, k-1),
	}
	modOf := make([]int, k)
	for mi, mod := range m.Modules {
		for t := mod.Lo; t < mod.Hi; t++ {
			modOf[t] = mi
		}
	}
	for t := 0; t < k; t++ {
		meas.TaskExec[t] = mp.noisy(mp.Truth.Tasks[t].Exec.Eval(m.Modules[modOf[t]].Procs))
	}
	for e := 0; e < k-1; e++ {
		if modOf[e] == modOf[e+1] {
			meas.EdgeComm[e] = mp.noisy(mp.Truth.ICom[e].Eval(m.Modules[modOf[e]].Procs))
		} else {
			meas.EdgeComm[e] = mp.noisy(mp.Truth.ECom[e].Eval(
				m.Modules[modOf[e]].Procs, m.Modules[modOf[e+1]].Procs))
		}
	}
	return meas, nil
}

func (mp *ModelProfiler) noisy(v float64) float64 {
	if mp.Noise == 0 {
		return v
	}
	f := 1 + mp.rng.NormFloat64()*mp.Noise
	if f < 0.1 {
		f = 0.1
	}
	return v * f
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
