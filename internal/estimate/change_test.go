package estimate

import (
	"math"
	"reflect"
	"testing"
)

func TestChangeTrackerEpsilonGate(t *testing.T) {
	tr := NewChangeTracker(3, 0.01)
	if tr.Offer(0, 1.005) {
		t.Error("sub-epsilon move committed")
	}
	if tr.Value(0) != 1 {
		t.Errorf("dropped move altered value: %v", tr.Value(0))
	}
	if !tr.Offer(0, 1.05) {
		t.Error("supra-epsilon move dropped")
	}
	if tr.Value(0) != 1.05 {
		t.Errorf("committed move not applied: %v", tr.Value(0))
	}
	if got := tr.Changed(); !reflect.DeepEqual(got, []int{0}) {
		t.Errorf("Changed = %v, want [0]", got)
	}
}

// TestChangeTrackerDriftAccumulates pins the dead-band anchor: it gates
// against the last *accepted* value, so a slow drift eventually commits
// instead of being swallowed one sub-epsilon step at a time forever.
func TestChangeTrackerDriftAccumulates(t *testing.T) {
	tr := NewChangeTracker(1, 0.01)
	v, committed := 1.0, 0
	for i := 0; i < 100; i++ {
		v += 0.002
		if tr.Offer(0, v) {
			committed++
		}
	}
	if committed == 0 {
		t.Error("slow drift never committed: dead-band re-anchors on proposals, not accepted values")
	}
	if tr.Value(0) == 1 {
		t.Error("accepted value never moved under sustained drift")
	}
}

func TestChangeTrackerResetKeepsValues(t *testing.T) {
	tr := NewChangeTracker(4, 0.01)
	tr.Offer(2, 2)
	tr.Offer(1, 0.5)
	if got := tr.Changed(); !reflect.DeepEqual(got, []int{1, 2}) {
		t.Fatalf("Changed = %v, want [1 2]", got)
	}
	tr.Reset()
	if got := tr.Changed(); len(got) != 0 {
		t.Errorf("Changed after Reset = %v, want empty", got)
	}
	if tr.Value(2) != 2 || tr.Value(1) != 0.5 {
		t.Error("Reset discarded accepted values")
	}
	// Post-reset gating is relative to the accepted 2, not the initial 1.
	if tr.Offer(2, 2.01) {
		t.Error("move inside the dead-band around the accepted value committed")
	}
	if !tr.Offer(2, 2.2) {
		t.Error("move outside the dead-band dropped")
	}
	if got := tr.Changed(); !reflect.DeepEqual(got, []int{2}) {
		t.Errorf("Changed = %v, want [2]", got)
	}
}

func TestChangeTrackerZeroEpsilon(t *testing.T) {
	tr := NewChangeTracker(1, 0)
	if tr.Offer(0, 1) {
		t.Error("identical value committed under zero epsilon")
	}
	if !tr.Offer(0, 1.0000001) {
		t.Error("bit-level change dropped under zero epsilon")
	}
}

func TestChangeTrackerRejectsBadInput(t *testing.T) {
	tr := NewChangeTracker(2, 0.01)
	if tr.Offer(-1, 5) || tr.Offer(2, 5) {
		t.Error("out-of-range stage committed")
	}
	if tr.Offer(0, math.NaN()) {
		t.Error("NaN committed")
	}
	if tr.Offer(0, math.Inf(1)) {
		t.Error("+Inf committed")
	}
	var nilTr *ChangeTracker
	if nilTr.Offer(0, 2) || nilTr.Changed() != nil || nilTr.Value(0) != 1 {
		t.Error("nil tracker is not a safe no-op")
	}
	nilTr.Reset()
}

func TestChangeTrackerDedupesWithinCycle(t *testing.T) {
	tr := NewChangeTracker(2, 0.01)
	tr.Offer(1, 2)
	tr.Offer(1, 3)
	if got := tr.Changed(); !reflect.DeepEqual(got, []int{1}) {
		t.Errorf("Changed = %v, want [1] (deduped)", got)
	}
	if tr.Value(1) != 3 {
		t.Errorf("second commit lost: %v", tr.Value(1))
	}
}
