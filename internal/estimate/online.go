package estimate

import (
	"fmt"
	"math"
	"sort"

	"pipemap/internal/model"
)

// OnlineOptions configures an OnlineFitter.
type OnlineOptions struct {
	// Window is the maximum number of retained observations (default 16).
	// Older observations fall out of the ring, so the fit tracks drifting
	// costs instead of averaging over the whole history.
	Window int
	// MinSamples is the confidence gate: Refit reports not-ready until the
	// window holds at least this many observations (default 3).
	MinSamples int
	// OutlierK rejects observations further than OutlierK median absolute
	// deviations from the window median (default 5). When the MAD is zero
	// (a majority of identical observations) only exact-median samples are
	// kept, so a lone wild value among constants is still rejected.
	OutlierK float64
}

func (o OnlineOptions) withDefaults() OnlineOptions {
	if o.Window <= 0 {
		o.Window = 16
	}
	if o.MinSamples <= 0 {
		o.MinSamples = 3
	}
	if o.OutlierK <= 0 {
		o.OutlierK = 5
	}
	return o
}

// OnlineFitter incrementally refits one stage's execution-time model from
// live observations. The offline fit (section 5 of the paper) supplies the
// *shape* of the cost function; runtime observations arrive at a single
// processor count, which cannot re-identify all three polynomial
// coefficients on its own. The fitter therefore anchors the refit on the
// prior model evaluated across a spread of processor counts, scales the
// anchors by the robust observed-over-predicted ratio at the live count,
// and re-runs the ordinary least-squares fit (FitExec) over anchors plus
// raw observations. The result is a full PolyExec that agrees with the
// observations where the stage actually runs and degrades gracefully to
// the prior's shape elsewhere.
type OnlineFitter struct {
	prior model.CostFunc
	procs int
	opt   OnlineOptions

	ring  []float64
	next  int
	count int // total ever observed
}

// Refit is the outcome of one OnlineFitter.Refit call.
type Refit struct {
	// Exec is the refitted execution model.
	Exec model.PolyExec
	// Stats scores Exec against the accepted observations; RMSE is the
	// refit residual surfaced by the adaptive controller.
	Stats FitStats
	// Ratio is the robust observed/predicted correction at the live
	// processor count (1 = the prior was right; 0 = the prior predicted a
	// non-positive time and the fit is observation-only).
	Ratio float64
	// Samples and Rejected count the accepted window observations and the
	// outliers discarded by the MAD filter.
	Samples  int
	Rejected int
}

// NewOnlineFitter returns a fitter for a stage whose prior cost model is
// prior and which currently runs on procs processors per instance.
func NewOnlineFitter(prior model.CostFunc, procs int, opt OnlineOptions) *OnlineFitter {
	if procs < 1 {
		procs = 1
	}
	o := opt.withDefaults()
	return &OnlineFitter{prior: prior, procs: procs, opt: o, ring: make([]float64, 0, o.Window)}
}

// Observe adds one observed per-data-set service time in seconds.
// Non-finite and negative observations are ignored.
func (f *OnlineFitter) Observe(seconds float64) {
	if f == nil || math.IsNaN(seconds) || math.IsInf(seconds, 0) || seconds < 0 {
		return
	}
	if len(f.ring) < f.opt.Window {
		f.ring = append(f.ring, seconds)
	} else {
		f.ring[f.next] = seconds
	}
	f.next = (f.next + 1) % f.opt.Window
	f.count++
}

// Len returns the number of observations currently in the window.
func (f *OnlineFitter) Len() int {
	if f == nil {
		return 0
	}
	return len(f.ring)
}

// accept returns the window observations surviving the MAD outlier filter
// and the number rejected.
func (f *OnlineFitter) accept() ([]float64, int) {
	vals := append([]float64(nil), f.ring...)
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	med := sorted[len(sorted)/2]
	devs := make([]float64, len(sorted))
	for i, v := range sorted {
		devs[i] = math.Abs(v - med)
	}
	sort.Float64s(devs)
	mad := devs[len(devs)/2]
	bound := f.opt.OutlierK * mad
	if mad == 0 {
		// Degenerate spread: keep only the (majority) median value, with a
		// tiny relative tolerance for float noise.
		bound = 1e-9 * math.Max(1, math.Abs(med))
	}
	kept := vals[:0]
	rejected := 0
	for _, v := range vals {
		if math.Abs(v-med) <= bound {
			kept = append(kept, v)
		} else {
			rejected++
		}
	}
	return kept, rejected
}

// anchorProcs returns the processor counts at which the prior is sampled
// to anchor the refit, spread around the live count and bounded by
// maxProcs (0 = no bound).
func (f *OnlineFitter) anchorProcs(maxProcs int) []int {
	cand := []int{1, 2, f.procs / 2, f.procs, 2 * f.procs, maxProcs}
	seen := map[int]bool{}
	var out []int
	for _, p := range cand {
		if p < 1 || (maxProcs > 0 && p > maxProcs) || seen[p] {
			continue
		}
		seen[p] = true
		out = append(out, p)
	}
	sort.Ints(out)
	return out
}

// Refit fits a fresh execution model to the windowed observations.
// maxProcs bounds the anchor spread (pass the platform's processor count;
// 0 = unbounded). It returns an error — never a panic — when the window
// holds fewer than MinSamples observations or the fit degenerates.
func (f *OnlineFitter) Refit(maxProcs int) (Refit, error) {
	if f == nil {
		return Refit{}, fmt.Errorf("estimate: nil online fitter")
	}
	if len(f.ring) < f.opt.MinSamples {
		return Refit{}, fmt.Errorf("estimate: online refit gated: %d of %d samples",
			len(f.ring), f.opt.MinSamples)
	}
	kept, rejected := f.accept()
	if len(kept) == 0 {
		return Refit{}, fmt.Errorf("estimate: online refit rejected every sample as an outlier")
	}
	var obs float64
	for _, v := range kept {
		obs += v
	}
	obs /= float64(len(kept))

	pred := 0.0
	if f.prior != nil {
		pred = f.prior.Eval(f.procs)
	}
	ratio := 0.0
	if pred > 0 && !math.IsInf(pred, 0) && !math.IsNaN(pred) {
		ratio = obs / pred
	}

	samples := make([]ExecSample, 0, len(kept)+8)
	for _, p := range f.anchorProcs(maxProcs) {
		t := obs // observation-only fallback: a flat anchor at the observed mean
		if ratio > 0 {
			if v := f.prior.Eval(p) * ratio; v >= 0 && !math.IsNaN(v) && !math.IsInf(v, 0) {
				t = v
			}
		}
		samples = append(samples, ExecSample{Procs: p, Time: t})
	}
	for _, v := range kept {
		samples = append(samples, ExecSample{Procs: f.procs, Time: v})
	}

	exec, err := FitExec(samples)
	if err != nil {
		return Refit{}, fmt.Errorf("estimate: online refit: %w", err)
	}
	obsSamples := make([]ExecSample, len(kept))
	for i, v := range kept {
		obsSamples[i] = ExecSample{Procs: f.procs, Time: v}
	}
	stats, err := ExecFitStats(exec, obsSamples)
	if err != nil {
		return Refit{}, fmt.Errorf("estimate: online refit residuals: %w", err)
	}
	if math.IsNaN(stats.RMSE) || math.IsInf(stats.RMSE, 0) {
		return Refit{}, fmt.Errorf("estimate: online refit produced a non-finite residual")
	}
	return Refit{Exec: exec, Stats: stats, Ratio: ratio, Samples: len(kept), Rejected: rejected}, nil
}
