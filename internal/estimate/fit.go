package estimate

import (
	"fmt"

	"pipemap/internal/model"
)

// ExecSample is one measured execution (or internal redistribution) time
// at a processor count.
type ExecSample struct {
	Procs int
	Time  float64
}

// CommSample is one measured external transfer time at a pair of sender
// and receiver processor counts.
type CommSample struct {
	SendProcs, RecvProcs int
	Time                 float64
}

// FitExec fits the paper's execution model C1 + C2/p + C3*p to samples by
// least squares. At least three samples at distinct processor counts are
// needed for a fully determined fit; with fewer, a ridge-regularized
// solution is returned.
func FitExec(samples []ExecSample) (model.PolyExec, error) {
	if len(samples) == 0 {
		return model.PolyExec{}, fmt.Errorf("estimate: no execution samples")
	}
	rows := make([][]float64, len(samples))
	b := make([]float64, len(samples))
	for i, s := range samples {
		if s.Procs < 1 {
			return model.PolyExec{}, fmt.Errorf("estimate: sample %d has %d processors", i, s.Procs)
		}
		p := float64(s.Procs)
		rows[i] = []float64{1, 1 / p, p}
		b[i] = s.Time
	}
	x, err := LeastSquares(rows, b)
	if err != nil {
		return model.PolyExec{}, err
	}
	return model.PolyExec{C1: x[0], C2: x[1], C3: x[2]}, nil
}

// FitComm fits the paper's external communication model
// C1 + C2/ps + C3/pr + C4*ps + C5*pr to samples by least squares. At least
// five samples at sufficiently varied (ps, pr) pairs are needed for a
// fully determined fit.
func FitComm(samples []CommSample) (model.PolyComm, error) {
	if len(samples) == 0 {
		return model.PolyComm{}, fmt.Errorf("estimate: no communication samples")
	}
	rows := make([][]float64, len(samples))
	b := make([]float64, len(samples))
	for i, s := range samples {
		if s.SendProcs < 1 || s.RecvProcs < 1 {
			return model.PolyComm{}, fmt.Errorf("estimate: sample %d has processor counts (%d,%d)",
				i, s.SendProcs, s.RecvProcs)
		}
		ps, pr := float64(s.SendProcs), float64(s.RecvProcs)
		rows[i] = []float64{1, 1 / ps, 1 / pr, ps, pr}
		b[i] = s.Time
	}
	x, err := LeastSquares(rows, b)
	if err != nil {
		return model.PolyComm{}, err
	}
	return model.PolyComm{C1: x[0], C2: x[1], C3: x[2], C4: x[3], C5: x[4]}, nil
}

// MeanAbsPctError returns the mean absolute percentage error between
// predicted and measured values, the metric the paper uses to report
// model accuracy ("the difference averaged less than 10%"). Measured zeros
// are skipped.
func MeanAbsPctError(predicted, measured []float64) float64 {
	if len(predicted) != len(measured) || len(predicted) == 0 {
		return 0
	}
	sum, n := 0.0, 0
	for i := range predicted {
		if measured[i] == 0 {
			continue
		}
		d := (predicted[i] - measured[i]) / measured[i]
		if d < 0 {
			d = -d
		}
		sum += d
		n++
	}
	if n == 0 {
		return 0
	}
	return 100 * sum / float64(n)
}
