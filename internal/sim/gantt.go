package sim

import (
	"fmt"
	"sort"
	"strings"
)

// Gantt renders a trace as an ASCII timeline, one row per module instance,
// reproducing the execution-model figures of the paper (Figures 2 and 3):
// 'R' marks receive, 'X' compute, 'r' internal redistribution, 'S' send,
// 'F' a processor-failure event, '.' idle. width is the number of time
// buckets.
func Gantt(trace []Segment, width int) string {
	if len(trace) == 0 || width <= 0 {
		return ""
	}
	var tmax float64
	type key struct{ mod, inst int }
	rows := map[key][]Segment{}
	for _, s := range trace {
		if s.End > tmax {
			tmax = s.End
		}
		k := key{s.Module, s.Instance}
		rows[k] = append(rows[k], s)
	}
	if tmax <= 0 {
		return ""
	}
	keys := make([]key, 0, len(rows))
	for k := range rows {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].mod != keys[j].mod {
			return keys[i].mod < keys[j].mod
		}
		return keys[i].inst < keys[j].inst
	})
	scale := float64(width) / tmax
	var b strings.Builder
	fmt.Fprintf(&b, "time: 0 .. %.4g s, one column = %.4g s\n", tmax, tmax/float64(width))
	for _, k := range keys {
		line := make([]byte, width)
		for i := range line {
			line[i] = '.'
		}
		// Failure markers are drawn in a second pass so surrounding
		// operations cannot paint over them.
		for pass := 0; pass < 2; pass++ {
			for _, s := range rows[k] {
				if (s.Kind == OpFail) != (pass == 1) {
					continue
				}
				lo := int(s.Start * scale)
				hi := int(s.End * scale)
				if hi >= width {
					hi = width - 1
				}
				ch := byte('X')
				switch s.Kind {
				case OpRecv:
					ch = 'R'
				case OpSend:
					ch = 'S'
				case OpRedist:
					ch = 'r'
				case OpFail:
					ch = 'F'
				}
				for i := lo; i <= hi && i < width; i++ {
					line[i] = ch
				}
			}
		}
		fmt.Fprintf(&b, "m%d.%d |%s|\n", k.mod, k.inst, line)
	}
	return b.String()
}
