package sim

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"pipemap/internal/obs"
)

// chromeTrace runs the standard test pipeline with a fixed seed and
// returns its Chrome trace JSON.
func chromeTrace(t *testing.T) []byte {
	t.Helper()
	_, m := pipelineChain()
	res, err := New(Options{DataSets: 8, Noise: 0.05, Seed: 42, Trace: true}).Run(m)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTraceChrome(&buf, res.Trace); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestChromeTraceGolden pins the exporter's byte-exact output for a fixed
// seed: the simulated timeline is deterministic, so the trace must be
// stable across runs and refactors. Regenerate with
// UPDATE_GOLDEN=1 go test ./internal/sim -run TestChromeTraceGolden.
func TestChromeTraceGolden(t *testing.T) {
	got := chromeTrace(t)
	golden := filepath.Join("testdata", "golden_trace.json")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden file (regenerate with UPDATE_GOLDEN=1): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("trace output drifted from golden file (len %d vs %d); "+
			"if intentional, regenerate with UPDATE_GOLDEN=1", len(got), len(want))
	}
	// And it must be stable within one process, too.
	if again := chromeTrace(t); !bytes.Equal(got, again) {
		t.Error("two identical runs produced different traces")
	}
}

// TestChromeTraceSchema validates the exporter output against the Chrome
// trace_event contract: parseable, known phases, complete spans with
// non-negative durations, and one thread_name row per module instance.
func TestChromeTraceSchema(t *testing.T) {
	raw := chromeTrace(t)
	var tf struct {
		TraceEvents []obs.Event `json:"traceEvents"`
		Unit        string      `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(raw, &tf); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(tf.TraceEvents) == 0 {
		t.Fatal("empty trace")
	}
	names := map[int]bool{}
	for _, e := range tf.TraceEvents {
		switch e.Phase {
		case "X":
			if e.Dur < 0 {
				t.Errorf("span %q has negative duration %g", e.Name, e.Dur)
			}
			if e.TS < 0 {
				t.Errorf("span %q has negative timestamp %g", e.Name, e.TS)
			}
		case "i":
			if e.Scope != "t" {
				t.Errorf("instant %q has scope %q, want t", e.Name, e.Scope)
			}
		case "M":
			if e.Name != "thread_name" {
				t.Errorf("unexpected metadata event %q", e.Name)
			}
			names[e.TID] = true
		default:
			t.Errorf("unknown phase %q on event %q", e.Phase, e.Name)
		}
		if e.Name == "" {
			t.Error("event with empty name")
		}
	}
	// pipelineChain maps module 0 with 2 replicas and module 1 with 1:
	// three rows, tids 0..2.
	for tid := 0; tid < 3; tid++ {
		if !names[tid] {
			t.Errorf("no thread_name for tid %d", tid)
		}
	}
}

// TestChromeTraceFailureInstants checks that processor-failure segments
// become instant events rather than zero-length spans.
func TestChromeTraceFailureInstants(t *testing.T) {
	trace := []Segment{
		{Module: 0, Instance: 0, Task: 0, Kind: OpExec, DataSet: 0, Start: 0, End: 1},
		{Module: 0, Instance: 0, Kind: OpFail, Start: 1.5, End: 1.5},
	}
	var buf bytes.Buffer
	if err := WriteTraceChrome(&buf, trace); err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []obs.Event `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatal(err)
	}
	foundFail := false
	for _, e := range tf.TraceEvents {
		if e.Name == "fail" {
			foundFail = true
			if e.Phase != "i" {
				t.Errorf("fail event phase = %q, want i", e.Phase)
			}
			if e.TS != 1.5e6 {
				t.Errorf("fail event ts = %g, want 1.5e6", e.TS)
			}
		}
	}
	if !foundFail {
		t.Error("no fail instant in trace")
	}
}
