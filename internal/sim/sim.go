// Package sim is a discrete-event simulator for pipelined execution of a
// mapped task chain. It implements the execution model of section 2.1 of
// Subhlok & Vondran (PPoPP 1995): a stream of data sets flows through the
// modules of a mapping; the sending and the receiving module are both
// occupied for the entire duration of an inter-module transfer; replicated
// module instances process alternate data sets round-robin; and an
// instance serializes receive, compute (task executions and internal
// redistributions), and send for each data set it handles.
//
// The simulator plays the role of the paper's iWarp testbed: it produces
// "measured" throughput for any mapping, serves as a profiler for the
// model-fitting machinery in package estimate, and can inject measurement
// noise and straggler instances to exercise the robustness of the
// predictions.
package sim

import (
	"fmt"
	"math"
	"math/rand"

	"pipemap/internal/estimate"
	"pipemap/internal/model"
)

// OpKind labels a trace segment.
type OpKind int

const (
	// OpRecv is an inter-module transfer charged to the receiving instance.
	OpRecv OpKind = iota
	// OpExec is one task's computation.
	OpExec
	// OpRedist is an internal redistribution between tasks of one module.
	OpRedist
	// OpSend is an inter-module transfer charged to the sending instance.
	OpSend
	// OpFail marks a processor-failure event (zero-length timeline marker).
	OpFail
)

func (k OpKind) String() string {
	switch k {
	case OpRecv:
		return "recv"
	case OpExec:
		return "exec"
	case OpRedist:
		return "redist"
	case OpSend:
		return "send"
	case OpFail:
		return "fail"
	default:
		return "?"
	}
}

// Segment is one operation of one module instance in the simulated
// schedule.
type Segment struct {
	Module   int
	Instance int
	Task     int // task index for OpExec; edge index for comm segments
	Kind     OpKind
	DataSet  int
	Start    float64
	End      float64
}

// Options configures a simulation run.
type Options struct {
	// DataSets is the number of data sets streamed through the pipeline
	// (default 200).
	DataSets int
	// Warmup is the number of initial data sets excluded from the
	// throughput window (default DataSets/5).
	Warmup int
	// InputInterval is the minimum spacing of external inputs in seconds;
	// zero means input is always available (source never limits).
	InputInterval float64
	// Noise is the relative standard deviation of multiplicative per-op
	// time noise (0 = deterministic).
	Noise float64
	// Seed makes noise deterministic.
	Seed int64
	// Trace records per-op segments (costs memory proportional to
	// DataSets × tasks).
	Trace bool
	// StragglerModule/StragglerInstance select one instance whose ops are
	// slowed by StragglerFactor (>= 1); StragglerFactor 0 disables.
	StragglerModule   int
	StragglerInstance int
	StragglerFactor   float64
	// Failures schedules fail-stop processor failures on the timeline:
	// from Time onward the given module instance accepts no new data sets
	// and the surviving replicas absorb its share of the round-robin.
	// Failures act at data set granularity — an instance that has already
	// started a transfer or computation completes it. A module whose
	// instances have all failed aborts the simulation with an error.
	Failures []FailureEvent
}

// FailureEvent is one scheduled fail-stop processor failure.
type FailureEvent struct {
	// Time is the simulated time (seconds) at which the instance fails.
	Time float64
	// Module and Instance identify the failing replica.
	Module, Instance int
}

// Result summarizes a simulation.
type Result struct {
	// Throughput is data sets per second over the steady-state window.
	Throughput float64
	// Latency is the mean time a data set spends from entering module 0 to
	// leaving the last module.
	Latency float64
	// Makespan is the completion time of the last data set.
	Makespan float64
	// Trace holds per-op segments when Options.Trace is set.
	Trace []Segment
	// Utilization[i] is the busy fraction of module i's instances over the
	// makespan.
	Utilization []float64
	// BlockedSend[i] is the total time module i's instances spent waiting
	// for a downstream receiver before a transfer could start (convoy /
	// pipeline-coupling stalls — the "second order effects" of section
	// 6.4 that make measured throughput fall short of the analytic bound).
	BlockedSend []float64
	// BlockedRecv[i] is the total time module i's instances sat idle
	// waiting for an upstream sender.
	BlockedRecv []float64
}

// Simulator runs mappings of one chain. The zero value is not usable; use
// New.
type Simulator struct {
	opt Options
}

// New returns a simulator with the given options, applying defaults.
func New(opt Options) *Simulator {
	if opt.DataSets <= 0 {
		opt.DataSets = 200
	}
	if opt.Warmup <= 0 {
		opt.Warmup = opt.DataSets / 5
	}
	if opt.Warmup >= opt.DataSets {
		opt.Warmup = opt.DataSets - 1
	}
	return &Simulator{opt: opt}
}

// Run simulates the mapping and returns measured statistics.
func (s *Simulator) Run(m model.Mapping) (Result, error) {
	if m.Chain == nil {
		return Result{}, fmt.Errorf("sim: mapping has no chain")
	}
	if err := m.Chain.Validate(); err != nil {
		return Result{}, err
	}
	if len(m.Modules) == 0 {
		return Result{}, fmt.Errorf("sim: mapping has no modules")
	}
	c := m.Chain
	opt := s.opt
	rng := rand.New(rand.NewSource(opt.Seed))
	noisy := func(v float64, mod, inst int) float64 {
		if opt.StragglerFactor > 1 && mod == opt.StragglerModule && inst == opt.StragglerInstance {
			v *= opt.StragglerFactor
		}
		if opt.Noise > 0 {
			f := 1 + rng.NormFloat64()*opt.Noise
			if f < 0.05 {
				f = 0.05
			}
			v *= f
		}
		return v
	}

	l := len(m.Modules)
	avail := make([][]float64, l)
	busy := make([][]float64, l)
	blockedSend := make([]float64, l)
	blockedRecv := make([]float64, l)
	for i, mod := range m.Modules {
		if mod.Replicas < 1 || mod.Procs < 1 {
			return Result{}, fmt.Errorf("sim: module %d has procs=%d replicas=%d",
				i, mod.Procs, mod.Replicas)
		}
		avail[i] = make([]float64, mod.Replicas)
		busy[i] = make([]float64, mod.Replicas)
	}

	var trace []Segment
	record := func(mod, inst, task int, kind OpKind, d int, start, end float64) {
		busy[mod][inst] += end - start
		if opt.Trace {
			trace = append(trace, Segment{
				Module: mod, Instance: inst, Task: task, Kind: kind,
				DataSet: d, Start: start, End: end,
			})
		}
	}

	// Failure schedule: failAt[i][c] is the time instance c of module i
	// fail-stops (+Inf = survives the whole run).
	failAt := make([][]float64, l)
	for i, mod := range m.Modules {
		failAt[i] = make([]float64, mod.Replicas)
		for c := range failAt[i] {
			failAt[i][c] = math.Inf(1)
		}
	}
	for _, fe := range opt.Failures {
		if fe.Module < 0 || fe.Module >= l {
			return Result{}, fmt.Errorf("sim: failure event module %d outside the %d-module mapping",
				fe.Module, l)
		}
		if fe.Instance < 0 || fe.Instance >= m.Modules[fe.Module].Replicas {
			return Result{}, fmt.Errorf("sim: failure event instance %d outside module %d's %d replicas",
				fe.Instance, fe.Module, m.Modules[fe.Module].Replicas)
		}
		if fe.Time < 0 {
			return Result{}, fmt.Errorf("sim: failure event at negative time %g", fe.Time)
		}
		if fe.Time < failAt[fe.Module][fe.Instance] {
			failAt[fe.Module][fe.Instance] = fe.Time
		}
		if opt.Trace {
			trace = append(trace, Segment{Module: fe.Module, Instance: fe.Instance,
				Task: -1, Kind: OpFail, DataSet: -1, Start: fe.Time, End: fe.Time})
		}
	}
	// Round-robin cursors over live instances. With no failures this
	// reproduces the fixed d % Replicas assignment exactly; an instance
	// that would pick up work at or after its failure time is skipped.
	rr := make([]int, l)
	choose := func(i int, ready float64) (int, error) {
		mod := m.Modules[i]
		for k := 0; k < mod.Replicas; k++ {
			c := (rr[i] + k) % mod.Replicas
			s := avail[i][c]
			if ready > s {
				s = ready
			}
			if s < failAt[i][c] {
				rr[i] = (c + 1) % mod.Replicas
				return c, nil
			}
		}
		return 0, fmt.Errorf("sim: module %d has no surviving instance for work ready at t=%.4g",
			i, ready)
	}

	n := opt.DataSets
	outputs := make([]float64, n)
	starts := make([]float64, n)
	var windowStart, windowEnd float64
	for d := 0; d < n; d++ {
		inputReady := float64(d) * opt.InputInterval
		// Module 0 instance picks up the data set when free.
		c0, err := choose(0, inputReady)
		if err != nil {
			return Result{}, err
		}
		t := avail[0][c0]
		if inputReady > t {
			t = inputReady
		}
		starts[d] = t
		// execEnd is when the current module finished computing data set d.
		var execEnd float64
		// prevCi is the instance of module i-1 that handled this data set.
		prevCi := c0
		for i, mod := range m.Modules {
			ci := c0
			if i > 0 {
				ci, err = choose(i, execEnd)
				if err != nil {
					return Result{}, err
				}
				// Rendezvous transfer from module i-1: both instances are
				// occupied for the full duration.
				prev := m.Modules[i-1]
				cp := prevCi
				start := execEnd
				if avail[i][ci] > start {
					start = avail[i][ci]
				}
				// The sender finished computing at execEnd and the receiver
				// was free at avail[i][ci]; whichever is earlier waited.
				blockedSend[i-1] += start - execEnd
				blockedRecv[i] += start - avail[i][ci]
				dur := noisy(c.ECom[mod.Lo-1].Eval(prev.Procs, mod.Procs), i, ci)
				end := start + dur
				record(i-1, cp, mod.Lo-1, OpSend, d, start, end)
				record(i, ci, mod.Lo-1, OpRecv, d, start, end)
				avail[i-1][cp] = end
				t = end
			}
			// Compute: task executions and internal redistributions.
			for task := mod.Lo; task < mod.Hi; task++ {
				dur := noisy(c.Tasks[task].Exec.Eval(mod.Procs), i, ci)
				record(i, ci, task, OpExec, d, t, t+dur)
				t += dur
				if task+1 < mod.Hi {
					rd := noisy(c.ICom[task].Eval(mod.Procs), i, ci)
					record(i, ci, task, OpRedist, d, t, t+rd)
					t += rd
				}
			}
			execEnd = t
			if i == l-1 {
				avail[i][ci] = t
			}
			prevCi = ci
		}
		outputs[d] = execEnd
		// Output times are not monotone across data sets when instances
		// run at different speeds (e.g. a straggler), so the throughput
		// window is delimited by running maxima, not by outputs[warmup]
		// and outputs[n-1] directly.
		if execEnd > windowEnd {
			windowEnd = execEnd
		}
		if d <= opt.Warmup && execEnd > windowStart {
			windowStart = execEnd
		}
	}

	res := Result{Makespan: windowEnd}
	if n-1 > opt.Warmup && windowEnd > windowStart {
		res.Throughput = float64(n-1-opt.Warmup) / (windowEnd - windowStart)
	}
	var latSum float64
	for d := 0; d < n; d++ {
		latSum += outputs[d] - starts[d]
	}
	res.Latency = latSum / float64(n)
	res.Trace = trace
	res.BlockedSend = blockedSend
	res.BlockedRecv = blockedRecv
	res.Utilization = make([]float64, l)
	for i := range busy {
		var b float64
		for _, x := range busy[i] {
			b += x
		}
		if res.Makespan > 0 {
			res.Utilization[i] = b / (res.Makespan * float64(len(busy[i])))
		}
	}
	return res, nil
}

// Profiler adapts the simulator to the estimate.Profiler interface: it
// simulates a short run of the mapping and returns the mean measured time
// of each task and edge operation.
type Profiler struct {
	Sim *Simulator
}

var _ estimate.Profiler = Profiler{}

// Profile measures per-task and per-edge times from a traced simulation.
func (p Profiler) Profile(m model.Mapping) (estimate.Measurement, error) {
	s := p.Sim
	if s == nil {
		s = New(Options{DataSets: 24, Trace: true})
	} else {
		opt := s.opt
		opt.Trace = true
		if opt.DataSets > 64 {
			opt.DataSets = 64
		}
		s = New(opt)
	}
	res, err := s.Run(m)
	if err != nil {
		return estimate.Measurement{}, err
	}
	k := m.Chain.Len()
	meas := estimate.Measurement{
		TaskExec: make([]float64, k),
		EdgeComm: make([]float64, k-1),
	}
	taskN := make([]int, k)
	edgeN := make([]int, k-1)
	for _, seg := range res.Trace {
		dur := seg.End - seg.Start
		switch seg.Kind {
		case OpExec:
			meas.TaskExec[seg.Task] += dur
			taskN[seg.Task]++
		case OpRedist, OpRecv:
			// Count each transfer once (recv side); redistributions occur
			// once per data set anyway.
			meas.EdgeComm[seg.Task] += dur
			edgeN[seg.Task]++
		}
	}
	for i := range meas.TaskExec {
		if taskN[i] > 0 {
			meas.TaskExec[i] /= float64(taskN[i])
		}
	}
	for i := range meas.EdgeComm {
		if edgeN[i] > 0 {
			meas.EdgeComm[i] /= float64(edgeN[i])
		}
	}
	return meas, nil
}
