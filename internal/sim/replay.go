package sim

import (
	"sort"

	"pipemap/internal/obs/live"
)

// Replay feeds a traced simulation through a live monitor in virtual time:
// each simulated stage completion becomes a StageDone observation at its
// virtual end time, fail-stop failure events become instance deaths, and
// data sets leaving the last module become end-to-end completions. The
// virtual clock is stepped to each event's timestamp before the event is
// applied, so the monitor's rolling windows, rates and health model read
// exactly as they would have partway through a real run of the same
// timeline — which is what lets one HTTP surface serve both real pipelines
// and simulated ones.
//
// The per-data-set stage latency reported is the instance's busy time on
// that data set (receive + compute + redistributions + send), i.e. the
// simulated response time f_i, so the observed period converges to the
// model's f_i/r_i.
//
// pace, when non-nil, is called with the virtual seconds elapsing before
// each step; a caller can sleep some fraction of it to play the timeline
// back at a chosen speed for a live dashboard. nil replays instantly.
// Requires a trace: run the simulation with Options.Trace set.
// TraceDataSets returns the number of distinct data sets in the trace.
func (r Result) TraceDataSets() int {
	seen := map[int]bool{}
	for _, s := range r.Trace {
		if s.Kind != OpFail {
			seen[s.DataSet] = true
		}
	}
	return len(seen)
}

func Replay(res Result, mon *live.Monitor, vc *live.VirtualClock, pace func(virtualDelta float64)) {
	type key struct{ mod, ds int }
	type agg struct{ busy, end float64 }
	per := map[key]*agg{}
	dsStart := map[int]float64{}
	lastMod := 0
	for _, seg := range res.Trace {
		if seg.Kind == OpFail {
			continue
		}
		if seg.Module > lastMod {
			lastMod = seg.Module
		}
		k := key{seg.Module, seg.DataSet}
		a := per[k]
		if a == nil {
			a = &agg{}
			per[k] = a
		}
		a.busy += seg.End - seg.Start
		if seg.End > a.end {
			a.end = seg.End
		}
		if s, ok := dsStart[seg.DataSet]; !ok || seg.Start < s {
			dsStart[seg.DataSet] = seg.Start
		}
	}

	const (
		evDeath = iota // deaths first among same-time events
		evDone
		evCompleted
	)
	type event struct {
		t       float64
		kind    int
		module  int
		dataset int
		v       float64 // busy seconds (done) or end-to-end latency (completed)
	}
	events := make([]event, 0, len(per)+len(dsStart))
	for k, a := range per {
		events = append(events, event{t: a.end, kind: evDone, module: k.mod, dataset: k.ds, v: a.busy})
		if k.mod == lastMod {
			events = append(events, event{t: a.end, kind: evCompleted, module: k.mod,
				dataset: k.ds, v: a.end - dsStart[k.ds]})
		}
	}
	for _, seg := range res.Trace {
		if seg.Kind == OpFail {
			events = append(events, event{t: seg.Start, kind: evDeath, module: seg.Module, dataset: seg.DataSet})
		}
	}
	// Full tiebreak so the replay order is deterministic despite the map
	// iteration above.
	sort.Slice(events, func(i, j int) bool {
		a, b := events[i], events[j]
		if a.t != b.t {
			return a.t < b.t
		}
		if a.kind != b.kind {
			return a.kind < b.kind
		}
		if a.module != b.module {
			return a.module < b.module
		}
		return a.dataset < b.dataset
	})

	set := func(s float64) {
		if vc != nil {
			vc.SetSeconds(s)
		}
	}
	set(0)
	mon.Start()
	now := 0.0
	for _, ev := range events {
		if ev.t > now {
			if pace != nil {
				pace(ev.t - now)
			}
			now = ev.t
		}
		set(now)
		switch ev.kind {
		case evDone:
			mon.StageDone(ev.module, ev.v)
		case evCompleted:
			mon.Completed(ev.v)
		case evDeath:
			mon.InstanceDeath(ev.module, ev.dataset)
		}
	}
	if res.Makespan > now {
		set(res.Makespan)
	}
	mon.Finish()
}
