package sim

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"

	"pipemap/internal/obs"
)

// WriteTraceCSV writes a simulation trace as CSV with the header
// module,instance,task,kind,dataset,start,end — convenient for external
// plotting of timelines.
func WriteTraceCSV(w io.Writer, trace []Segment) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"module", "instance", "task", "kind", "dataset", "start", "end"}); err != nil {
		return fmt.Errorf("sim: writing trace header: %w", err)
	}
	for _, s := range trace {
		rec := []string{
			strconv.Itoa(s.Module),
			strconv.Itoa(s.Instance),
			strconv.Itoa(s.Task),
			s.Kind.String(),
			strconv.Itoa(s.DataSet),
			strconv.FormatFloat(s.Start, 'g', -1, 64),
			strconv.FormatFloat(s.End, 'g', -1, 64),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("sim: writing trace row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteTraceChrome writes a simulation trace as Chrome trace_event JSON on
// a virtual timeline, so simulated Gantt charts and real runtime traces
// (fxrt via obs.Tracer) render in the same viewer — chrome://tracing or
// https://ui.perfetto.dev. Each module instance becomes one named thread
// row; processor-failure events render as instants.
func WriteTraceChrome(w io.Writer, trace []Segment) error {
	tr := obs.NewTracer()
	// Assign one compact, deterministic thread id per (module, instance)
	// row, in row order.
	type row struct{ mod, inst int }
	seen := map[row]bool{}
	for _, s := range trace {
		seen[row{s.Module, s.Instance}] = true
	}
	rows := make([]row, 0, len(seen))
	for r := range seen {
		rows = append(rows, r)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].mod != rows[j].mod {
			return rows[i].mod < rows[j].mod
		}
		return rows[i].inst < rows[j].inst
	})
	tids := make(map[row]int, len(rows))
	for i, r := range rows {
		tids[r] = i
		tr.NameThread(i, fmt.Sprintf("m%d.%d", r.mod, r.inst))
	}
	for _, s := range trace {
		tid := tids[row{s.Module, s.Instance}]
		if s.Kind == OpFail {
			tr.VirtualInstant("fault", "fail", tid, s.Start,
				map[string]any{"module": s.Module, "instance": s.Instance})
			continue
		}
		tr.VirtualSpan("sim", s.Kind.String(), tid, s.Start, s.End,
			map[string]any{"dataset": s.DataSet, "task": s.Task})
	}
	return tr.WriteJSON(w)
}
