package sim

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteTraceCSV writes a simulation trace as CSV with the header
// module,instance,task,kind,dataset,start,end — convenient for external
// plotting of timelines.
func WriteTraceCSV(w io.Writer, trace []Segment) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"module", "instance", "task", "kind", "dataset", "start", "end"}); err != nil {
		return fmt.Errorf("sim: writing trace header: %w", err)
	}
	for _, s := range trace {
		rec := []string{
			strconv.Itoa(s.Module),
			strconv.Itoa(s.Instance),
			strconv.Itoa(s.Task),
			s.Kind.String(),
			strconv.Itoa(s.DataSet),
			strconv.FormatFloat(s.Start, 'g', -1, 64),
			strconv.FormatFloat(s.End, 'g', -1, 64),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("sim: writing trace row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}
