package sim

import (
	"math/rand"
	"strings"
	"testing"

	"pipemap/internal/estimate"
	"pipemap/internal/model"
	"pipemap/internal/testutil"
)

// pipelineChain returns a simple 3-task chain and a mapping with one
// replicated module, for exercising the simulator.
func pipelineChain() (*model.Chain, model.Mapping) {
	c := &model.Chain{
		Tasks: []model.Task{
			{Name: "a", Exec: model.PolyExec{C2: 4}, Replicable: true},
			{Name: "b", Exec: model.PolyExec{C2: 4}, Replicable: true},
			{Name: "c", Exec: model.PolyExec{C1: 0.1, C2: 2}, Replicable: true},
		},
		ICom: []model.CostFunc{model.PolyExec{C1: 0.05, C2: 0.5}, model.ZeroExec()},
		ECom: []model.CommFunc{
			model.PolyComm{C1: 0.05, C2: 0.5, C3: 0.5},
			model.PolyComm{C1: 0.05, C2: 0.5, C3: 0.5},
		},
	}
	m := model.Mapping{Chain: c, Modules: []model.Module{
		{Lo: 0, Hi: 1, Procs: 2, Replicas: 2},
		{Lo: 1, Hi: 3, Procs: 4, Replicas: 1},
	}}
	return c, m
}

func TestSimulatedThroughputMatchesAnalytic(t *testing.T) {
	_, m := pipelineChain()
	res, err := New(Options{DataSets: 400}).Run(m)
	if err != nil {
		t.Fatal(err)
	}
	want := m.Throughput()
	// The blocking rendezvous schedule can only lose a little to convoy
	// effects; it must be within a few percent of the analytic bound and
	// never above it (beyond numerical slack).
	if res.Throughput > want*1.02 {
		t.Errorf("simulated %g exceeds analytic bound %g", res.Throughput, want)
	}
	if res.Throughput < want*0.90 {
		t.Errorf("simulated %g more than 10%% below analytic %g", res.Throughput, want)
	}
}

func TestSimulatedThroughputManyMappings(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	cfg := testutil.DefaultRandChainConfig()
	for trial := 0; trial < 20; trial++ {
		c, pl := testutil.RandChain(rng, cfg, 6+rng.Intn(8))
		// Random valid mapping: random clustering, then minimal procs plus
		// leftovers on module 0.
		all := model.AllClusterings(c.Len())
		spans := all[rng.Intn(len(all))]
		mods := make([]model.Module, len(spans))
		used := 0
		ok := true
		for i, sp := range spans {
			min := c.ModuleMinProcs(sp.Lo, sp.Hi, pl.MemPerProc)
			if min < 0 || used+min > pl.Procs {
				ok = false
				break
			}
			mods[i] = model.Module{Lo: sp.Lo, Hi: sp.Hi, Procs: min, Replicas: 1}
			used += min
		}
		if !ok {
			continue
		}
		m := model.Mapping{Chain: c, Modules: mods}
		res, err := New(Options{DataSets: 300}).Run(m)
		if err != nil {
			t.Fatal(err)
		}
		want := m.Throughput()
		if res.Throughput > want*1.02 || res.Throughput < want*0.85 {
			t.Errorf("trial %d: simulated %g vs analytic %g (mapping %v)",
				trial, res.Throughput, want, &m)
		}
	}
}

func TestReplicationScalesThroughput(t *testing.T) {
	c := &model.Chain{
		Tasks: []model.Task{{Name: "only", Exec: model.PolyExec{C1: 1}, Replicable: true}},
	}
	one := model.Mapping{Chain: c, Modules: []model.Module{{Lo: 0, Hi: 1, Procs: 1, Replicas: 1}}}
	four := model.Mapping{Chain: c, Modules: []model.Module{{Lo: 0, Hi: 1, Procs: 1, Replicas: 4}}}
	s := New(Options{DataSets: 400})
	r1, err := s.Run(one)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := s.Run(four)
	if err != nil {
		t.Fatal(err)
	}
	ratio := r4.Throughput / r1.Throughput
	if ratio < 3.8 || ratio > 4.2 {
		t.Errorf("replication x4 scaled throughput by %g, want ~4", ratio)
	}
}

func TestInputIntervalLimitsThroughput(t *testing.T) {
	_, m := pipelineChain()
	res, err := New(Options{DataSets: 300, InputInterval: 10}).Run(m)
	if err != nil {
		t.Fatal(err)
	}
	if res.Throughput > 0.101 {
		t.Errorf("throughput %g exceeds the input rate 0.1", res.Throughput)
	}
}

func TestStragglerReducesThroughput(t *testing.T) {
	_, m := pipelineChain()
	base, err := New(Options{DataSets: 300}).Run(m)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := New(Options{DataSets: 300, StragglerModule: 1, StragglerFactor: 3}).Run(m)
	if err != nil {
		t.Fatal(err)
	}
	if slow.Throughput > base.Throughput*0.75 {
		t.Errorf("straggler x3 on the bottleneck barely hurt: %g vs %g",
			slow.Throughput, base.Throughput)
	}
}

func TestNoiseIsDeterministicPerSeed(t *testing.T) {
	_, m := pipelineChain()
	a, err := New(Options{DataSets: 100, Noise: 0.1, Seed: 9}).Run(m)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(Options{DataSets: 100, Noise: 0.1, Seed: 9}).Run(m)
	if err != nil {
		t.Fatal(err)
	}
	if a.Throughput != b.Throughput {
		t.Errorf("same seed, different throughput: %g vs %g", a.Throughput, b.Throughput)
	}
	c, err := New(Options{DataSets: 100, Noise: 0.1, Seed: 10}).Run(m)
	if err != nil {
		t.Fatal(err)
	}
	if a.Throughput == c.Throughput {
		t.Error("different seeds produced identical noisy runs")
	}
}

func TestLatencyAtLeastResponseSum(t *testing.T) {
	_, m := pipelineChain()
	res, err := New(Options{DataSets: 200}).Run(m)
	if err != nil {
		t.Fatal(err)
	}
	if res.Latency < m.Latency()*0.99 {
		t.Errorf("simulated latency %g below analytic minimum %g", res.Latency, m.Latency())
	}
}

func TestUtilizationBounds(t *testing.T) {
	_, m := pipelineChain()
	res, err := New(Options{DataSets: 200}).Run(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Utilization) != 2 {
		t.Fatalf("got %d utilizations", len(res.Utilization))
	}
	for i, u := range res.Utilization {
		if u <= 0 || u > 1.0001 {
			t.Errorf("module %d utilization %g out of (0,1]", i, u)
		}
	}
	// The bottleneck module should be busier.
	bi, _ := m.Bottleneck()
	for i, u := range res.Utilization {
		if i != bi && u > res.Utilization[bi]+0.05 {
			t.Errorf("non-bottleneck module %d utilization %g exceeds bottleneck %g",
				i, u, res.Utilization[bi])
		}
	}
}

func TestTraceAndGantt(t *testing.T) {
	_, m := pipelineChain()
	res, err := New(Options{DataSets: 6, Trace: true}).Run(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) == 0 {
		t.Fatal("no trace recorded")
	}
	// Segments per instance must not overlap.
	type key struct{ mod, inst int }
	last := map[key]float64{}
	byInst := map[key][]Segment{}
	for _, s := range res.Trace {
		byInst[key{s.Module, s.Instance}] = append(byInst[key{s.Module, s.Instance}], s)
	}
	for k, segs := range byInst {
		for _, s := range segs {
			if s.Start < last[k]-1e-9 {
				t.Errorf("instance %v has overlapping segments at %g", k, s.Start)
			}
			if s.End > last[k] {
				last[k] = s.End
			}
		}
	}
	g := Gantt(res.Trace, 80)
	if !strings.Contains(g, "m0.0") || !strings.Contains(g, "m1.0") {
		t.Errorf("Gantt missing rows:\n%s", g)
	}
	for _, ch := range []string{"X", "R", "S"} {
		if !strings.Contains(g, ch) {
			t.Errorf("Gantt missing %q marks:\n%s", ch, g)
		}
	}
	if Gantt(nil, 80) != "" {
		t.Error("empty trace should render empty")
	}
	if Gantt(res.Trace, 0) != "" {
		t.Error("zero width should render empty")
	}
}

func TestSimulatorAsProfiler(t *testing.T) {
	// Fitting a chain from simulator measurements must reproduce the truth
	// closely when the simulator is noise-free.
	rng := rand.New(rand.NewSource(41))
	truth, pl := testutil.RandChain(rng, testutil.DefaultRandChainConfig(), 16)
	prof := Profiler{Sim: New(Options{DataSets: 30})}
	fitted, err := estimate.EstimateChain(truth, prof, pl)
	if err != nil {
		t.Fatal(err)
	}
	var pred, meas []float64
	for i := range truth.Tasks {
		for p := 1; p <= pl.Procs; p *= 2 {
			pred = append(pred, fitted.Tasks[i].Exec.Eval(p))
			meas = append(meas, truth.Tasks[i].Exec.Eval(p))
		}
	}
	if e := estimate.MeanAbsPctError(pred, meas); e > 2 {
		t.Errorf("noise-free profiling gave %g%% exec model error", e)
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := New(Options{}).Run(model.Mapping{}); err == nil {
		t.Error("empty mapping accepted")
	}
	c, _ := pipelineChain()
	if _, err := New(Options{}).Run(model.Mapping{Chain: c}); err == nil {
		t.Error("mapping without modules accepted")
	}
	bad := model.Mapping{Chain: c, Modules: []model.Module{{Lo: 0, Hi: 3, Procs: 0, Replicas: 1}}}
	if _, err := New(Options{}).Run(bad); err == nil {
		t.Error("zero-processor module accepted")
	}
}

func TestBlockedTimeAccounting(t *testing.T) {
	_, m := pipelineChain()
	res, err := New(Options{DataSets: 200}).Run(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.BlockedSend) != 2 || len(res.BlockedRecv) != 2 {
		t.Fatalf("blocked stats shape %d/%d", len(res.BlockedSend), len(res.BlockedRecv))
	}
	for i := range res.BlockedSend {
		if res.BlockedSend[i] < 0 || res.BlockedRecv[i] < 0 {
			t.Errorf("negative blocked time at module %d", i)
		}
	}
	// The last module never blocks on send; the first never on recv.
	if res.BlockedSend[1] != 0 {
		t.Errorf("last module blocked on send: %g", res.BlockedSend[1])
	}
	if res.BlockedRecv[0] != 0 {
		t.Errorf("first module blocked on recv: %g", res.BlockedRecv[0])
	}
}

func TestStragglerIncreasesBlockedTime(t *testing.T) {
	_, m := pipelineChain()
	base, err := New(Options{DataSets: 200}).Run(m)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := New(Options{DataSets: 200, StragglerModule: 0, StragglerFactor: 3}).Run(m)
	if err != nil {
		t.Fatal(err)
	}
	if slow.BlockedRecv[1] <= base.BlockedRecv[1] {
		t.Errorf("downstream blocking did not grow: %g vs %g",
			slow.BlockedRecv[1], base.BlockedRecv[1])
	}
}

func TestWriteTraceCSV(t *testing.T) {
	_, m := pipelineChain()
	res, err := New(Options{DataSets: 3, Trace: true}).Run(m)
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := WriteTraceCSV(&buf, res.Trace); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(res.Trace)+1 {
		t.Fatalf("CSV has %d lines for %d segments", len(lines), len(res.Trace))
	}
	if lines[0] != "module,instance,task,kind,dataset,start,end" {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(buf.String(), "exec") || !strings.Contains(buf.String(), "send") {
		t.Error("CSV missing op kinds")
	}
}

func TestFailureDegradesThroughput(t *testing.T) {
	_, m := pipelineChain()
	base, err := New(Options{DataSets: 200}).Run(m)
	if err != nil {
		t.Fatal(err)
	}
	// Kill one of the first module's two replicas a quarter into the run:
	// the survivor serves the rest of the stream alone and throughput of
	// the whole pipeline drops, but the run completes.
	failed, err := New(Options{DataSets: 200,
		Failures: []FailureEvent{{Time: base.Makespan / 4, Module: 0, Instance: 1}},
	}).Run(m)
	if err != nil {
		t.Fatal(err)
	}
	if failed.Throughput >= base.Throughput {
		t.Errorf("throughput did not degrade: %g with failure vs %g without",
			failed.Throughput, base.Throughput)
	}
	if failed.Makespan <= base.Makespan {
		t.Errorf("makespan did not grow: %g vs %g", failed.Makespan, base.Makespan)
	}
}

func TestFailureAtTimeZeroMatchesSmallerReplication(t *testing.T) {
	// Killing a replica before the run starts must behave exactly like a
	// mapping that never had it.
	c, _ := pipelineChain()
	two := model.Mapping{Chain: c, Modules: []model.Module{
		{Lo: 0, Hi: 3, Procs: 2, Replicas: 2},
	}}
	one := model.Mapping{Chain: c, Modules: []model.Module{
		{Lo: 0, Hi: 3, Procs: 2, Replicas: 1},
	}}
	failed, err := New(Options{DataSets: 100,
		Failures: []FailureEvent{{Time: 0, Module: 0, Instance: 1}},
	}).Run(two)
	if err != nil {
		t.Fatal(err)
	}
	want, err := New(Options{DataSets: 100}).Run(one)
	if err != nil {
		t.Fatal(err)
	}
	if failed.Throughput != want.Throughput {
		t.Errorf("failed-at-zero throughput %g != single-replica %g",
			failed.Throughput, want.Throughput)
	}
}

func TestFailureOfAllInstancesErrors(t *testing.T) {
	_, m := pipelineChain()
	_, err := New(Options{DataSets: 50, Failures: []FailureEvent{
		{Time: 0, Module: 0, Instance: 0},
		{Time: 0, Module: 0, Instance: 1},
	}}).Run(m)
	if err == nil {
		t.Fatal("simulation with no surviving instances succeeded")
	}
	if !strings.Contains(err.Error(), "no surviving instance") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestFailureEventValidation(t *testing.T) {
	_, m := pipelineChain()
	for _, fe := range []FailureEvent{
		{Time: 1, Module: 9, Instance: 0},
		{Time: 1, Module: 0, Instance: 9},
		{Time: -1, Module: 0, Instance: 0},
		{Time: 1, Module: -1, Instance: 0},
	} {
		if _, err := New(Options{DataSets: 10, Failures: []FailureEvent{fe}}).Run(m); err == nil {
			t.Errorf("failure event %+v accepted", fe)
		}
	}
}

func TestFailureMarkedOnGanttTimeline(t *testing.T) {
	_, m := pipelineChain()
	res, err := New(Options{DataSets: 60, Trace: true,
		Failures: []FailureEvent{{Time: 5, Module: 0, Instance: 1}},
	}).Run(m)
	if err != nil {
		t.Fatal(err)
	}
	var found bool
	for _, seg := range res.Trace {
		if seg.Kind == OpFail {
			if seg.Module != 0 || seg.Instance != 1 || seg.Start != 5 {
				t.Errorf("failure segment %+v", seg)
			}
			found = true
		}
	}
	if !found {
		t.Fatal("no OpFail segment in trace")
	}
	if g := Gantt(res.Trace, 80); !strings.Contains(g, "F") {
		t.Errorf("Gantt missing failure marker:\n%s", g)
	}
}
