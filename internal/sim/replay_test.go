package sim

import (
	"math"
	"testing"

	"pipemap/internal/obs/live"
)

func TestReplayFeedsHealthModel(t *testing.T) {
	_, m := pipelineChain()
	res, err := New(Options{DataSets: 60, Trace: true}).Run(m)
	if err != nil {
		t.Fatal(err)
	}
	vc := live.NewVirtualClock()
	cfg := live.ConfigFromMapping(m)
	cfg.Options.Clock = vc.Clock()
	mon := live.NewMonitor(cfg)
	Replay(res, mon, vc, nil)

	h := mon.Health()
	if !h.Started || !h.Finished {
		t.Fatalf("started/finished = %v/%v, want true/true", h.Started, h.Finished)
	}
	if h.Completed != 60 {
		t.Errorf("completed = %d, want 60", h.Completed)
	}
	if math.Abs(h.UptimeSeconds-res.Makespan) > 1e-9 {
		t.Errorf("uptime = %g, want makespan %g", h.UptimeSeconds, res.Makespan)
	}
	if h.Status != "nominal" || !h.Ready {
		t.Errorf("status = %q ready=%v, want nominal/ready", h.Status, h.Ready)
	}
	// The observed bottleneck of the replayed timeline matches the model's
	// argmax f_i/r_i: the simulated busy time per data set is the response
	// time, and the monitor divides by live replicas.
	predicted, _ := m.Bottleneck()
	if h.BottleneckStage != predicted {
		t.Errorf("observed bottleneck = %d, model bottleneck = %d\nstages: %+v",
			h.BottleneckStage, predicted, h.Stages)
	}
	// Observed per-stage periods track the predictions within the window.
	for i, sh := range h.Stages {
		if sh.Latency.Count == 0 {
			t.Errorf("stage %d saw no samples", i)
			continue
		}
		if sh.ObservedPeriod < sh.PredictedPeriod*0.5 || sh.ObservedPeriod > sh.PredictedPeriod*2 {
			t.Errorf("stage %d observed period %g far from predicted %g",
				i, sh.ObservedPeriod, sh.PredictedPeriod)
		}
	}
}

func TestReplayFailuresDegrade(t *testing.T) {
	_, m := pipelineChain()
	res, err := New(Options{
		DataSets: 40, Trace: true,
		Failures: []FailureEvent{{Time: 5, Module: 0, Instance: 1}},
	}).Run(m)
	if err != nil {
		t.Fatal(err)
	}
	vc := live.NewVirtualClock()
	cfg := live.ConfigFromMapping(m)
	cfg.Options.Clock = vc.Clock()
	mon := live.NewMonitor(cfg)
	Replay(res, mon, vc, nil)

	h := mon.Health()
	if h.Deaths != 1 || h.Stages[0].Live != 1 {
		t.Errorf("deaths=%d live=%d, want 1/1", h.Deaths, h.Stages[0].Live)
	}
	if h.Status != "degraded" || h.Ready {
		t.Errorf("status = %q ready=%v, want degraded/not-ready", h.Status, h.Ready)
	}
	var sawDeath bool
	for _, ev := range mon.Events().History() {
		if ev.Kind == "death" {
			sawDeath = true
			if ev.TS < 4.99 || ev.TS > 5.01 {
				t.Errorf("death event at virtual t=%g, want 5", ev.TS)
			}
		}
	}
	if !sawDeath {
		t.Error("no death event replayed")
	}
	if h.Completed != 40 {
		t.Errorf("completed = %d, want 40 (failures reassign, not drop)", h.Completed)
	}
}

func TestReplayPacing(t *testing.T) {
	_, m := pipelineChain()
	res, err := New(Options{DataSets: 10, Trace: true}).Run(m)
	if err != nil {
		t.Fatal(err)
	}
	mon := live.NewMonitor(live.ConfigFromMapping(m))
	var virtual float64
	Replay(res, mon, live.NewVirtualClock(), func(dv float64) {
		if dv <= 0 {
			t.Fatalf("non-positive pace delta %g", dv)
		}
		virtual += dv
	})
	// The pace callbacks cover the whole timeline up to the last event.
	if virtual <= 0 || virtual > res.Makespan+1e-9 {
		t.Errorf("paced virtual time %g outside (0, makespan=%g]", virtual, res.Makespan)
	}
}

func TestTraceDataSets(t *testing.T) {
	_, m := pipelineChain()
	res, err := New(Options{DataSets: 12, Trace: true}).Run(m)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.TraceDataSets(); got != 12 {
		t.Errorf("TraceDataSets = %d, want 12", got)
	}
	if got := (Result{}).TraceDataSets(); got != 0 {
		t.Errorf("empty TraceDataSets = %d, want 0", got)
	}
}
