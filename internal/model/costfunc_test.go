package model

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*(1+math.Abs(a)+math.Abs(b))
}

func TestPolyExecEval(t *testing.T) {
	f := PolyExec{C1: 1, C2: 8, C3: 0.5}
	cases := []struct {
		p    int
		want float64
	}{
		{1, 1 + 8 + 0.5},
		{2, 1 + 4 + 1},
		{4, 1 + 2 + 2},
		{8, 1 + 1 + 4},
	}
	for _, c := range cases {
		if got := f.Eval(c.p); !almostEqual(got, c.want) {
			t.Errorf("Eval(%d) = %g, want %g", c.p, got, c.want)
		}
	}
}

func TestPolyCommEval(t *testing.T) {
	f := PolyComm{C1: 0.5, C2: 4, C3: 6, C4: 0.1, C5: 0.2}
	got := f.Eval(2, 3)
	want := 0.5 + 4.0/2 + 6.0/3 + 0.1*2 + 0.2*3
	if !almostEqual(got, want) {
		t.Errorf("Eval(2,3) = %g, want %g", got, want)
	}
}

func TestZeroFuncs(t *testing.T) {
	if got := ZeroExec().Eval(7); got != 0 {
		t.Errorf("ZeroExec().Eval(7) = %g, want 0", got)
	}
	if got := ZeroComm().Eval(3, 9); got != 0 {
		t.Errorf("ZeroComm().Eval(3,9) = %g, want 0", got)
	}
}

func TestCostFuncOf(t *testing.T) {
	f := CostFuncOf(func(p int) float64 { return float64(p * p) })
	if got := f.Eval(3); got != 9 {
		t.Errorf("Eval(3) = %g, want 9", got)
	}
	g := CommFuncOf(func(ps, pr int) float64 { return float64(ps + pr) })
	if got := g.Eval(3, 4); got != 7 {
		t.Errorf("Eval(3,4) = %g, want 7", got)
	}
}

func TestTableCostInterpolation(t *testing.T) {
	tc, err := NewTableCost(map[int]float64{1: 10, 4: 4, 8: 2})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		p    int
		want float64
	}{
		{1, 10}, // exact
		{4, 4},  // exact
		{8, 2},  // exact
		{2, 8},  // between 1 and 4: 10 + (4-10)*1/3
		{6, 3},  // between 4 and 8: 4 + (2-4)*2/4
		{16, 2}, // beyond the range: constant extrapolation
		{1, 10}, // below handled by exact here
	}
	for _, c := range cases {
		if got := tc.Eval(c.p); !almostEqual(got, c.want) {
			t.Errorf("Eval(%d) = %g, want %g", c.p, got, c.want)
		}
	}
}

func TestTableCostErrors(t *testing.T) {
	if _, err := NewTableCost(nil); err == nil {
		t.Error("NewTableCost(nil) should fail")
	}
	if _, err := NewTableCost(map[int]float64{0: 1}); err == nil {
		t.Error("NewTableCost with p=0 should fail")
	}
}

func TestTableCostMonotoneProperty(t *testing.T) {
	// Interpolated values never leave the [min, max] band of the table.
	tc, err := NewTableCost(map[int]float64{1: 100, 2: 60, 4: 35, 8: 25, 16: 22})
	if err != nil {
		t.Fatal(err)
	}
	prop := func(p uint8) bool {
		v := tc.Eval(int(p)%32 + 1)
		return v >= 22 && v <= 100
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestSumCost(t *testing.T) {
	s := SumCost{PolyExec{C2: 4}, PolyExec{C1: 1}, ZeroExec()}
	if got := s.Eval(2); !almostEqual(got, 3) {
		t.Errorf("Eval(2) = %g, want 3", got)
	}
}

func TestScaleCost(t *testing.T) {
	s := ScaleCost{F: PolyExec{C1: 3}, K: 2}
	if got := s.Eval(5); !almostEqual(got, 6) {
		t.Errorf("Eval(5) = %g, want 6", got)
	}
}

func TestInternalAsComm(t *testing.T) {
	c := InternalAsComm{F: PolyExec{C3: 1}}
	if got := c.Eval(3, 7); !almostEqual(got, 7) {
		t.Errorf("Eval(3,7) = %g, want 7", got)
	}
	if got := c.Eval(9, 2); !almostEqual(got, 9) {
		t.Errorf("Eval(9,2) = %g, want 9", got)
	}
}

func TestPolyStringers(t *testing.T) {
	if (PolyExec{C1: 1, C2: 2, C3: 3}).String() == "" {
		t.Error("PolyExec.String() empty")
	}
	if (PolyComm{}).String() == "" {
		t.Error("PolyComm.String() empty")
	}
}
