// Package model defines the execution model from Subhlok & Vondran,
// "Optimal Mapping of Sequences of Data Parallel Tasks" (PPoPP 1995):
// chains of data parallel tasks, their computation and communication cost
// functions, memory requirements, and mappings of chains onto processors
// (clustering into modules, replication, and processor assignment).
//
// The central quantity is the throughput of a mapping,
//
//	1 / max_i ( f_i / r_i )
//
// where f_i is the response time of module i (input communication +
// computation + output communication, evaluated at the module's effective
// per-instance processor count) and r_i its replication degree.
//
// Cost functions are interfaces, so they may be the paper's polynomial
// models (fit from profiles, see package estimate), tabulated measurements,
// or arbitrary user code; the mapping algorithms in packages dp and greedy
// are independent of the representation.
package model
