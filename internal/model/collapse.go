package model

// CollapseClustering builds the module chain induced by a clustering: one
// synthetic task per module with the composed execution cost, summed
// memory, conjunction of replicability, and the original external/internal
// edge costs between modules. Mapping algorithms that operate on a fixed
// clustering run on the collapsed chain.
func CollapseClustering(c *Chain, spans []Span) *Chain {
	l := len(spans)
	mc := &Chain{
		Tasks: make([]Task, l),
		ICom:  make([]CostFunc, max(l-1, 0)),
		ECom:  make([]CommFunc, max(l-1, 0)),
	}
	for i, s := range spans {
		minExtra := 0
		for t := s.Lo; t < s.Hi; t++ {
			if c.Tasks[t].MinProcs > minExtra {
				minExtra = c.Tasks[t].MinProcs
			}
		}
		mc.Tasks[i] = Task{
			Name:       c.TaskNames(s.Lo, s.Hi),
			Exec:       c.ModuleExec(s.Lo, s.Hi),
			Mem:        c.ModuleMem(s.Lo, s.Hi),
			Replicable: c.ModuleReplicable(s.Lo, s.Hi),
			MinProcs:   minExtra,
		}
		if i < l-1 {
			mc.ICom[i] = c.ICom[s.Hi-1]
			mc.ECom[i] = c.ECom[s.Hi-1]
		}
	}
	return mc
}
