package model

import (
	"fmt"
	"math"
	"sort"
)

// CostFunc is the time, in seconds, of a computation or an internal data
// redistribution as a function of the number of processors executing it.
// Implementations must return non-negative values for p >= 1; behaviour for
// p < 1 is unspecified and callers never ask.
type CostFunc interface {
	Eval(p int) float64
}

// CommFunc is the time, in seconds, to transfer one data set between two
// tasks mapped to disjoint processor sets, as a function of the number of
// processors assigned to the sending and the receiving task.
type CommFunc interface {
	Eval(psend, precv int) float64
}

// PolyExec is the paper's polynomial execution time model (section 5):
//
//	f(p) = C1 + C2/p + C3*p
//
// C1 is fixed sequential/replicated work, C2 perfectly parallel work, and
// C3 per-processor overhead.
type PolyExec struct {
	C1, C2, C3 float64
}

// Eval returns C1 + C2/p + C3*p.
func (f PolyExec) Eval(p int) float64 {
	return f.C1 + f.C2/float64(p) + f.C3*float64(p)
}

func (f PolyExec) String() string {
	return fmt.Sprintf("%.4g + %.4g/p + %.4g*p", f.C1, f.C2, f.C3)
}

// PolyComm is the paper's external communication model (section 5):
//
//	f(ps, pr) = C1 + C2/ps + C3/pr + C4*ps + C5*pr
//
// C1 is fixed overhead, C2 and C3 the portion that parallelizes over the
// sending and receiving group, C4 and C5 per-processor overheads.
type PolyComm struct {
	C1, C2, C3, C4, C5 float64
}

// Eval returns C1 + C2/ps + C3/pr + C4*ps + C5*pr.
func (f PolyComm) Eval(ps, pr int) float64 {
	return f.C1 + f.C2/float64(ps) + f.C3/float64(pr) + f.C4*float64(ps) + f.C5*float64(pr)
}

func (f PolyComm) String() string {
	return fmt.Sprintf("%.4g + %.4g/ps + %.4g/pr + %.4g*ps + %.4g*pr",
		f.C1, f.C2, f.C3, f.C4, f.C5)
}

// ZeroExec returns a CostFunc that is identically zero. It models free
// computation or free redistribution, e.g. between tasks that share a data
// distribution.
func ZeroExec() CostFunc { return zeroExec{} }

// ZeroComm returns a CommFunc that is identically zero.
func ZeroComm() CommFunc { return zeroComm{} }

type zeroExec struct{}

func (zeroExec) Eval(int) float64 { return 0 }

func (zeroExec) String() string { return "0" }

type zeroComm struct{}

func (zeroComm) Eval(int, int) float64 { return 0 }

func (zeroComm) String() string { return "0" }

// CostFuncOf adapts an arbitrary function of p to a CostFunc.
type CostFuncOf func(p int) float64

// Eval calls the wrapped function.
func (f CostFuncOf) Eval(p int) float64 { return f(p) }

// CommFuncOf adapts an arbitrary function of (ps, pr) to a CommFunc.
type CommFuncOf func(ps, pr int) float64

// Eval calls the wrapped function.
func (f CommFuncOf) Eval(ps, pr int) float64 { return f(ps, pr) }

// TableCost is a tabulated cost function defined pointwise at measured
// processor counts, with linear interpolation between points and constant
// extrapolation outside the measured range. It demonstrates the paper's
// observation (section 5) that the mapping algorithms are not tied to a
// particular analytic model.
type TableCost struct {
	ps []int     // sorted, distinct processor counts
	ts []float64 // times at ps
}

// NewTableCost builds a tabulated cost function from (processors, time)
// points. Points need not be sorted; duplicate processor counts keep the
// last value. At least one point is required.
func NewTableCost(points map[int]float64) (*TableCost, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("model: TableCost needs at least one point")
	}
	t := &TableCost{}
	for p := range points {
		if p < 1 {
			return nil, fmt.Errorf("model: TableCost point at p=%d < 1", p)
		}
		t.ps = append(t.ps, p)
	}
	sort.Ints(t.ps)
	t.ts = make([]float64, len(t.ps))
	for i, p := range t.ps {
		t.ts[i] = points[p]
	}
	return t, nil
}

// Eval interpolates linearly between tabulated points.
func (t *TableCost) Eval(p int) float64 {
	i := sort.SearchInts(t.ps, p)
	if i < len(t.ps) && t.ps[i] == p {
		return t.ts[i]
	}
	if i == 0 {
		return t.ts[0]
	}
	if i == len(t.ps) {
		return t.ts[len(t.ts)-1]
	}
	lo, hi := t.ps[i-1], t.ps[i]
	frac := float64(p-lo) / float64(hi-lo)
	return t.ts[i-1]*(1-frac) + t.ts[i]*frac
}

// SumCost is the pointwise sum of several cost functions; it composes the
// execution time of a module from its constituent tasks and internal
// redistributions.
type SumCost []CostFunc

// Eval returns the sum of the component costs at p.
func (s SumCost) Eval(p int) float64 {
	var total float64
	for _, f := range s {
		total += f.Eval(p)
	}
	return total
}

// ScaleCost multiplies a cost function by a constant factor.
type ScaleCost struct {
	F CostFunc
	K float64
}

// Eval returns K * F(p).
func (s ScaleCost) Eval(p int) float64 { return s.K * s.F.Eval(p) }

// InternalAsComm adapts an internal redistribution cost to the CommFunc
// shape by evaluating it at the larger of the two groups. It is used when a
// caller needs a uniform edge-cost view.
type InternalAsComm struct{ F CostFunc }

// Eval returns F(max(ps, pr)).
func (c InternalAsComm) Eval(ps, pr int) float64 {
	return c.F.Eval(int(math.Max(float64(ps), float64(pr))))
}

// ClampCost wraps a cost function so it never returns a negative time;
// fitted polynomial models can dip below zero outside the training range.
type ClampCost struct{ F CostFunc }

// Eval returns max(0, F(p)).
func (c ClampCost) Eval(p int) float64 {
	if v := c.F.Eval(p); v > 0 {
		return v
	}
	return 0
}

// ClampComm wraps a communication function so it never returns a negative
// time.
type ClampComm struct{ F CommFunc }

// Eval returns max(0, F(ps, pr)).
func (c ClampComm) Eval(ps, pr int) float64 {
	if v := c.F.Eval(ps, pr); v > 0 {
		return v
	}
	return 0
}
