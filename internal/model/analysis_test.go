package model

import "testing"

func TestAnalyzeMonotoneComm(t *testing.T) {
	// Fixed + per-processor comm terms: monotone increasing (Theorem 1).
	c := &Chain{
		Tasks: []Task{
			{Name: "a", Exec: PolyExec{C2: 4}},
			{Name: "b", Exec: PolyExec{C2: 4}},
		},
		ICom: []CostFunc{ZeroExec()},
		ECom: []CommFunc{PolyComm{C1: 0.1, C4: 0.01, C5: 0.01}},
	}
	a := Analyze(c, 16)
	if !a.MonotoneComm || !a.Theorem1Applies() {
		t.Errorf("monotone comm not detected: %+v", a)
	}

	// A 1/ps term breaks monotonicity.
	c.ECom[0] = PolyComm{C1: 0.1, C2: 1}
	a = Analyze(c, 16)
	if a.MonotoneComm {
		t.Errorf("non-monotone comm reported monotone: %+v", a)
	}
}

func TestAnalyzeConvexity(t *testing.T) {
	// C1 + C2/p + C3*p is convex in p.
	c := &Chain{
		Tasks: []Task{
			{Name: "a", Exec: PolyExec{C1: 1, C2: 8, C3: 0.001}},
			{Name: "b", Exec: PolyExec{C1: 1, C2: 8, C3: 0.001}},
		},
		ICom: []CostFunc{PolyExec{C2: 1}},
		ECom: []CommFunc{PolyComm{C1: 0.001, C2: 0.01, C3: 0.01}},
	}
	a := Analyze(c, 16)
	if !a.ExecConvex {
		t.Errorf("polynomial exec not reported convex: %+v", a)
	}
	if !a.CommConvex {
		t.Errorf("polynomial comm not reported convex: %+v", a)
	}
	// With tiny comm coefficients, computation dominates (Theorem 2).
	if !a.CompDominatesComm || !a.Theorem2Applies() {
		t.Errorf("dominance not detected: %+v", a)
	}

	// A cliff cost function is not convex.
	cliff, err := NewTableCost(map[int]float64{1: 10, 9: 10, 10: 1, 16: 1})
	if err != nil {
		t.Fatal(err)
	}
	c.Tasks[1].Exec = cliff
	a = Analyze(c, 16)
	if a.ExecConvex {
		t.Errorf("cliff exec reported convex: %+v", a)
	}
	if a.Theorem2Applies() {
		t.Error("Theorem 2 claimed despite non-convex exec")
	}
}

func TestAnalyzeDominanceFailsWithHeavyComm(t *testing.T) {
	c := &Chain{
		Tasks: []Task{
			{Name: "a", Exec: PolyExec{C2: 0.1}},
			{Name: "b", Exec: PolyExec{C2: 0.1}},
		},
		ICom: []CostFunc{ZeroExec()},
		ECom: []CommFunc{PolyComm{C2: 50, C3: 50}},
	}
	a := Analyze(c, 16)
	if a.CompDominatesComm {
		t.Errorf("comm-heavy chain reported computation-dominant: %+v", a)
	}
}

func TestAnalyzeSmallP(t *testing.T) {
	c := &Chain{
		Tasks: []Task{{Name: "a", Exec: PolyExec{C2: 1}}},
	}
	// Must not panic with tiny P; clamps internally.
	_ = Analyze(c, 1)
}
