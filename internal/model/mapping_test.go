package model

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func testPlatform() Platform { return Platform{Procs: 16, MemPerProc: 150} }

func TestMappingValidate(t *testing.T) {
	c := testChain()
	pl := testPlatform()

	good := Mapping{Chain: c, Modules: []Module{
		{Lo: 0, Hi: 2, Procs: 4, Replicas: 2},
		{Lo: 2, Hi: 3, Procs: 2, Replicas: 1},
	}}
	if err := good.Validate(pl); err != nil {
		t.Fatalf("valid mapping rejected: %v", err)
	}

	cases := []struct {
		name string
		m    Mapping
	}{
		{"nil chain", Mapping{Modules: []Module{{Lo: 0, Hi: 3, Procs: 1, Replicas: 1}}}},
		{"no modules", Mapping{Chain: c}},
		{"gap", Mapping{Chain: c, Modules: []Module{
			{Lo: 0, Hi: 1, Procs: 2, Replicas: 1}, {Lo: 2, Hi: 3, Procs: 2, Replicas: 1}}}},
		{"incomplete", Mapping{Chain: c, Modules: []Module{{Lo: 0, Hi: 2, Procs: 4, Replicas: 1}}}},
		{"empty module", Mapping{Chain: c, Modules: []Module{
			{Lo: 0, Hi: 0, Procs: 2, Replicas: 1}, {Lo: 0, Hi: 3, Procs: 2, Replicas: 1}}}},
		{"zero procs", Mapping{Chain: c, Modules: []Module{{Lo: 0, Hi: 3, Procs: 0, Replicas: 1}}}},
		{"zero replicas", Mapping{Chain: c, Modules: []Module{{Lo: 0, Hi: 3, Procs: 5, Replicas: 0}}}},
		{"below memory minimum", Mapping{Chain: c, Modules: []Module{
			{Lo: 0, Hi: 2, Procs: 2, Replicas: 1}, {Lo: 2, Hi: 3, Procs: 2, Replicas: 1}}}},
		{"over budget", Mapping{Chain: c, Modules: []Module{
			{Lo: 0, Hi: 2, Procs: 8, Replicas: 2}, {Lo: 2, Hi: 3, Procs: 2, Replicas: 1}}}},
	}
	for _, tc := range cases {
		if err := tc.m.Validate(pl); err == nil {
			t.Errorf("%s: invalid mapping accepted", tc.name)
		}
	}

	// Replicating a non-replicable module must be rejected.
	c2 := testChain()
	c2.Tasks[0].Replicable = false
	bad := Mapping{Chain: c2, Modules: []Module{
		{Lo: 0, Hi: 2, Procs: 4, Replicas: 2},
		{Lo: 2, Hi: 3, Procs: 2, Replicas: 1},
	}}
	if err := bad.Validate(pl); err == nil {
		t.Error("replicated non-replicable module accepted")
	}
}

func TestResponseTimes(t *testing.T) {
	c := testChain()
	m := Mapping{Chain: c, Modules: []Module{
		{Lo: 0, Hi: 1, Procs: 3, Replicas: 1},
		{Lo: 1, Hi: 3, Procs: 4, Replicas: 2},
	}}
	resp := m.ResponseTimes()
	if len(resp) != 2 {
		t.Fatalf("got %d response times, want 2", len(resp))
	}
	// Module 0: exec(3) + outgoing external transfer to a 4-processor module.
	want0 := c.Tasks[0].Exec.Eval(3) + c.ECom[0].Eval(3, 4)
	if !almostEqual(resp[0], want0) {
		t.Errorf("resp[0] = %g, want %g", resp[0], want0)
	}
	// Module 1: incoming transfer + composed exec (b, icom b->c, c).
	want1 := c.ECom[0].Eval(3, 4) + c.ModuleExec(1, 3).Eval(4)
	if !almostEqual(resp[1], want1) {
		t.Errorf("resp[1] = %g, want %g", resp[1], want1)
	}

	eff := m.EffectiveResponseTimes()
	if !almostEqual(eff[0], resp[0]) || !almostEqual(eff[1], resp[1]/2) {
		t.Errorf("effective response times %v inconsistent with %v", eff, resp)
	}
}

func TestThroughputAndBottleneck(t *testing.T) {
	c := testChain()
	m := Mapping{Chain: c, Modules: []Module{
		{Lo: 0, Hi: 1, Procs: 3, Replicas: 1},
		{Lo: 1, Hi: 3, Procs: 4, Replicas: 2},
	}}
	idx, period := m.Bottleneck()
	eff := m.EffectiveResponseTimes()
	wantIdx := 0
	if eff[1] > eff[0] {
		wantIdx = 1
	}
	if idx != wantIdx {
		t.Errorf("Bottleneck index = %d, want %d", idx, wantIdx)
	}
	if !almostEqual(period, math.Max(eff[0], eff[1])) {
		t.Errorf("Bottleneck period = %g, want %g", period, math.Max(eff[0], eff[1]))
	}
	if !almostEqual(m.Throughput(), 1/period) {
		t.Errorf("Throughput = %g, want %g", m.Throughput(), 1/period)
	}
}

func TestLatency(t *testing.T) {
	c := testChain()
	m := Mapping{Chain: c, Modules: []Module{
		{Lo: 0, Hi: 3, Procs: 8, Replicas: 1},
	}}
	if !almostEqual(m.Latency(), c.ModuleExec(0, 3).Eval(8)) {
		t.Errorf("single-module latency = %g, want exec time %g",
			m.Latency(), c.ModuleExec(0, 3).Eval(8))
	}
}

func TestMappingString(t *testing.T) {
	c := testChain()
	m := Mapping{Chain: c, Modules: []Module{
		{Lo: 0, Hi: 2, Procs: 4, Replicas: 2},
		{Lo: 2, Hi: 3, Procs: 2, Replicas: 1},
	}}
	s := m.String()
	for _, want := range []string{"a+b", "p=4", "r=2", "c", "|"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func TestDataParallel(t *testing.T) {
	c := testChain()
	pl := testPlatform()
	m := DataParallel(c, pl)
	if err := m.Validate(pl); err != nil {
		t.Fatalf("data parallel mapping invalid: %v", err)
	}
	if len(m.Modules) != 1 || m.Modules[0].Procs != pl.Procs {
		t.Errorf("DataParallel = %v", m.Modules)
	}
	// Its response time includes all internal redistributions.
	want := c.ModuleExec(0, 3).Eval(pl.Procs)
	if !almostEqual(m.ResponseTimes()[0], want) {
		t.Errorf("data parallel response = %g, want %g", m.ResponseTimes()[0], want)
	}
}

func TestSplitReplicas(t *testing.T) {
	cases := []struct {
		p, min     int
		replicable bool
		wantR      int
		wantP      int
	}{
		{24, 3, true, 8, 3},
		{40, 4, true, 10, 4},
		{20, 12, true, 1, 20},
		{24, 12, true, 2, 12},
		{39, 12, true, 3, 13},
		{42, 12, true, 3, 14},
		{10, 3, false, 1, 10},
		{2, 3, true, 0, 0},
		{7, 0, true, 7, 1},
	}
	for _, c := range cases {
		got := SplitReplicas(c.p, c.min, c.replicable)
		if got.Replicas != c.wantR || got.ProcsPerInstance != c.wantP {
			t.Errorf("SplitReplicas(%d,%d,%v) = %+v, want r=%d p=%d",
				c.p, c.min, c.replicable, got, c.wantR, c.wantP)
		}
	}
}

func TestSplitReplicasProperties(t *testing.T) {
	// For all p >= min: r*peff <= p, peff >= min, and r is maximal.
	prop := func(p, min uint8) bool {
		pp, mm := int(p)%100+1, int(min)%10+1
		if pp < mm {
			return true
		}
		rep := SplitReplicas(pp, mm, true)
		if rep.Replicas < 1 {
			return false
		}
		if rep.Replicas*rep.ProcsPerInstance > pp {
			return false
		}
		if rep.ProcsPerInstance < mm {
			return false
		}
		// Maximality: one more instance would not fit.
		return (rep.Replicas+1)*mm > pp
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestClusterings(t *testing.T) {
	all := AllClusterings(3)
	if len(all) != 4 {
		t.Fatalf("AllClusterings(3) has %d entries, want 4", len(all))
	}
	for _, spans := range all {
		if !ValidClustering(spans, 3) {
			t.Errorf("invalid clustering produced: %v", spans)
		}
	}
	if !ValidClustering(Singletons(5), 5) {
		t.Error("Singletons(5) not a valid clustering")
	}
	if ValidClustering([]Span{{0, 2}, {3, 4}}, 4) {
		t.Error("clustering with gap accepted")
	}
	if ValidClustering([]Span{{0, 2}, {2, 3}}, 4) {
		t.Error("incomplete clustering accepted")
	}
	if ValidClustering([]Span{{0, 0}, {0, 4}}, 4) {
		t.Error("empty span accepted")
	}
}

func TestAllClusteringsCount(t *testing.T) {
	for k := 1; k <= 8; k++ {
		if got := len(AllClusterings(k)); got != 1<<(k-1) {
			t.Errorf("AllClusterings(%d) has %d entries, want %d", k, got, 1<<(k-1))
		}
	}
	if AllClusterings(0) != nil {
		t.Error("AllClusterings(0) should be nil")
	}
}

func TestTotalProcs(t *testing.T) {
	c := testChain()
	m := Mapping{Chain: c, Modules: []Module{
		{Lo: 0, Hi: 2, Procs: 4, Replicas: 2},
		{Lo: 2, Hi: 3, Procs: 2, Replicas: 3},
	}}
	if got := m.TotalProcs(); got != 14 {
		t.Errorf("TotalProcs = %d, want 14", got)
	}
}

func TestMappingValidateOutOfRangeModules(t *testing.T) {
	// Found by FuzzDecodeMapping: a module range past the chain end must be
	// rejected, not panic inside the memory model.
	c := testChain()
	pl := testPlatform()
	cases := []Mapping{
		{Chain: c, Modules: []Module{
			{Lo: 0, Hi: 2, Procs: 4, Replicas: 1}, {Lo: 2, Hi: 5, Procs: 2, Replicas: 1}}},
		{Chain: c, Modules: []Module{{Lo: 0, Hi: 99, Procs: 4, Replicas: 1}}},
	}
	for i, m := range cases {
		if err := m.Validate(pl); err == nil {
			t.Errorf("case %d: out-of-range module accepted", i)
		}
	}
}
