package model

import (
	"strings"
	"testing"
)

// testChain returns a 3-task chain with simple polynomial costs, loosely
// shaped like FFT-Hist: two cheap parallel tasks and one with overhead.
func testChain() *Chain {
	return &Chain{
		Tasks: []Task{
			{Name: "a", Exec: PolyExec{C2: 12}, Mem: Memory{Data: 300}, Replicable: true},
			{Name: "b", Exec: PolyExec{C2: 12}, Mem: Memory{Data: 300}, Replicable: true},
			{Name: "c", Exec: PolyExec{C1: 0.5, C2: 6, C3: 0.05}, Mem: Memory{Data: 100}, Replicable: true},
		},
		ICom: []CostFunc{PolyExec{C1: 0.2, C2: 2}, ZeroExec()},
		ECom: []CommFunc{PolyComm{C1: 0.2, C2: 1, C3: 1}, PolyComm{C1: 0.5, C2: 2, C3: 2}},
	}
}

func TestChainValidate(t *testing.T) {
	c := testChain()
	if err := c.Validate(); err != nil {
		t.Fatalf("valid chain rejected: %v", err)
	}

	bad := &Chain{}
	if err := bad.Validate(); err == nil {
		t.Error("empty chain accepted")
	}

	c2 := testChain()
	c2.ICom = c2.ICom[:1]
	if err := c2.Validate(); err == nil {
		t.Error("chain with missing ICom accepted")
	}

	c3 := testChain()
	c3.Tasks[1].Exec = nil
	if err := c3.Validate(); err == nil {
		t.Error("chain with nil Exec accepted")
	}

	c4 := testChain()
	c4.ECom[0] = nil
	if err := c4.Validate(); err == nil {
		t.Error("chain with nil ECom accepted")
	}

	c5 := testChain()
	c5.Tasks[0].Name = ""
	if err := c5.Validate(); err == nil {
		t.Error("chain with unnamed task accepted")
	}

	c6 := testChain()
	c6.Tasks[0].MinProcs = -1
	if err := c6.Validate(); err == nil {
		t.Error("chain with negative MinProcs accepted")
	}

	c7 := testChain()
	c7.Tasks[0].Mem.Data = -5
	if err := c7.Validate(); err == nil {
		t.Error("chain with negative memory accepted")
	}
}

func TestModuleExecComposition(t *testing.T) {
	c := testChain()
	// Module of all three tasks at p=4: sum of execs plus both internal
	// redistributions.
	f := c.ModuleExec(0, 3)
	want := c.Tasks[0].Exec.Eval(4) + c.ICom[0].Eval(4) +
		c.Tasks[1].Exec.Eval(4) + c.ICom[1].Eval(4) + c.Tasks[2].Exec.Eval(4)
	if got := f.Eval(4); !almostEqual(got, want) {
		t.Errorf("ModuleExec(0,3).Eval(4) = %g, want %g", got, want)
	}
	// Single-task module has no internal communication.
	f1 := c.ModuleExec(1, 2)
	if got := f1.Eval(4); !almostEqual(got, c.Tasks[1].Exec.Eval(4)) {
		t.Errorf("ModuleExec(1,2).Eval(4) = %g, want exec only", got)
	}
}

func TestModuleMem(t *testing.T) {
	c := testChain()
	m := c.ModuleMem(0, 2)
	if m.Data != 600 {
		t.Errorf("ModuleMem(0,2).Data = %g, want 600", m.Data)
	}
	if got := c.ModuleMem(0, 3).Data; got != 700 {
		t.Errorf("ModuleMem(0,3).Data = %g, want 700", got)
	}
}

func TestModuleReplicable(t *testing.T) {
	c := testChain()
	if !c.ModuleReplicable(0, 3) {
		t.Error("all-replicable module reported non-replicable")
	}
	c.Tasks[1].Replicable = false
	if c.ModuleReplicable(0, 3) {
		t.Error("module containing non-replicable task reported replicable")
	}
	if !c.ModuleReplicable(2, 3) {
		t.Error("replicable singleton reported non-replicable")
	}
}

func TestModuleMinProcs(t *testing.T) {
	c := testChain()
	// Capacity 150 bytes/proc: task a needs ceil(300/150) = 2.
	if got := c.ModuleMinProcs(0, 1, 150); got != 2 {
		t.Errorf("ModuleMinProcs(0,1) = %d, want 2", got)
	}
	// Module a+b: 600 bytes -> 4 processors.
	if got := c.ModuleMinProcs(0, 2, 150); got != 4 {
		t.Errorf("ModuleMinProcs(0,2) = %d, want 4", got)
	}
	// No memory constraint.
	if got := c.ModuleMinProcs(0, 3, 0); got != 1 {
		t.Errorf("ModuleMinProcs with no capacity = %d, want 1", got)
	}
	// Explicit task minimum dominates.
	c.Tasks[2].MinProcs = 5
	if got := c.ModuleMinProcs(0, 3, 1e9); got != 5 {
		t.Errorf("ModuleMinProcs with explicit min = %d, want 5", got)
	}
}

func TestMemoryModel(t *testing.T) {
	m := Memory{Fixed: 10, Data: 100, Buffer: 20}
	if got := m.Total(4); got != 160 {
		t.Errorf("Total(4) = %g, want 160", got)
	}
	if got := m.PerProc(4); !almostEqual(got, 40) {
		t.Errorf("PerProc(4) = %g, want 40", got)
	}
	if got := m.MinProcs(70); got != 2 {
		t.Errorf("MinProcs(70) = %d, want 2", got)
	}
	if got := m.MinProcs(130); got != 1 {
		t.Errorf("MinProcs(130) = %d, want 1", got)
	}
	if got := (Memory{Fixed: 50}).MinProcs(40); got != -1 {
		t.Errorf("oversize fixed memory MinProcs = %d, want -1", got)
	}
	if got := (Memory{Fixed: 40}).MinProcs(40); got != 1 {
		t.Errorf("exact fixed fit MinProcs = %d, want 1", got)
	}
	if got := (Memory{Data: 100}).MinProcs(0); got != -1 {
		t.Errorf("zero capacity MinProcs = %d, want -1", got)
	}
}

func TestTaskNames(t *testing.T) {
	c := testChain()
	if got := c.TaskNames(0, 3); got != "a+b+c" {
		t.Errorf("TaskNames(0,3) = %q", got)
	}
	if got := c.TaskNames(1, 2); got != "b" {
		t.Errorf("TaskNames(1,2) = %q", got)
	}
	if !strings.Contains(c.TaskNames(0, 2), "+") {
		t.Error("multi-task names should be joined with +")
	}
}
