package model

import "fmt"

// Chain is a linear sequence of data parallel tasks t_0 .. t_{k-1} acting
// on a stream of data sets. Edge i connects task i to task i+1 and carries
// two cost functions: ICom, the internal redistribution cost when both
// tasks share a processor set, and ECom, the external transfer cost when
// they are on disjoint sets.
type Chain struct {
	Tasks []Task
	// ICom[i] is the internal redistribution cost of edge i (task i to task
	// i+1) when the tasks are clustered in one module; len(ICom) == k-1.
	ICom []CostFunc
	// ECom[i] is the external transfer cost of edge i when the tasks are in
	// different modules; len(ECom) == k-1.
	ECom []CommFunc
}

// Len returns the number of tasks in the chain.
func (c *Chain) Len() int { return len(c.Tasks) }

// Validate checks the chain for structural errors.
func (c *Chain) Validate() error {
	if len(c.Tasks) == 0 {
		return fmt.Errorf("model: chain has no tasks")
	}
	k := len(c.Tasks)
	if len(c.ICom) != k-1 {
		return fmt.Errorf("model: chain has %d tasks but %d internal comm functions (want %d)",
			k, len(c.ICom), k-1)
	}
	if len(c.ECom) != k-1 {
		return fmt.Errorf("model: chain has %d tasks but %d external comm functions (want %d)",
			k, len(c.ECom), k-1)
	}
	for i := range c.Tasks {
		if err := c.Tasks[i].Validate(); err != nil {
			return fmt.Errorf("task %d: %w", i, err)
		}
	}
	for i := range c.ICom {
		if c.ICom[i] == nil {
			return fmt.Errorf("model: chain edge %d has nil ICom", i)
		}
		if c.ECom[i] == nil {
			return fmt.Errorf("model: chain edge %d has nil ECom", i)
		}
	}
	return nil
}

// ModuleExec returns the composed execution cost of the module holding
// tasks [lo, hi): the sum of the member tasks' execution costs plus the
// internal redistribution costs of the edges inside the module.
func (c *Chain) ModuleExec(lo, hi int) CostFunc {
	fs := make(SumCost, 0, 2*(hi-lo)-1)
	for i := lo; i < hi; i++ {
		fs = append(fs, c.Tasks[i].Exec)
		if i+1 < hi {
			fs = append(fs, c.ICom[i])
		}
	}
	return fs
}

// ModuleMem returns the composed memory requirement of tasks [lo, hi).
func (c *Chain) ModuleMem(lo, hi int) Memory {
	var m Memory
	for i := lo; i < hi; i++ {
		m = m.Add(c.Tasks[i].Mem)
	}
	return m
}

// ModuleReplicable reports whether the module holding tasks [lo, hi) may be
// replicated: all member tasks must be replicable.
func (c *Chain) ModuleReplicable(lo, hi int) bool {
	for i := lo; i < hi; i++ {
		if !c.Tasks[i].Replicable {
			return false
		}
	}
	return true
}

// ModuleMinProcs returns the minimum number of processors an instance of
// the module holding tasks [lo, hi) needs, given memCapacity bytes per
// processor: the larger of the memory-model minimum and the tasks' explicit
// MinProcs constraints. It returns -1 if no processor count satisfies the
// memory model (fixed footprint exceeds capacity).
func (c *Chain) ModuleMinProcs(lo, hi int, memCapacity float64) int {
	min := 1
	if memCapacity > 0 {
		min = c.ModuleMem(lo, hi).MinProcs(memCapacity)
		if min < 0 {
			return -1
		}
	}
	for i := lo; i < hi; i++ {
		if c.Tasks[i].MinProcs > min {
			min = c.Tasks[i].MinProcs
		}
	}
	return min
}

// TaskNames returns the names of tasks [lo, hi) joined with "+", used in
// mapping reports.
func (c *Chain) TaskNames(lo, hi int) string {
	s := ""
	for i := lo; i < hi; i++ {
		if i > lo {
			s += "+"
		}
		s += c.Tasks[i].Name
	}
	return s
}
