package model

import "fmt"

// Platform describes the target machine as the mapping algorithms see it:
// a processor budget and a per-processor memory capacity. Geometric
// constraints (rectangular subarrays, pathway limits) live in package
// machine and are applied as a feasibility filter on top of this model.
type Platform struct {
	// Procs is the total number of processors available, P.
	Procs int
	// MemPerProc is the memory capacity of one processor in bytes; zero
	// disables memory constraints (every module's minimum is 1 processor
	// unless a task says otherwise).
	MemPerProc float64
}

// Validate checks the platform for structural errors.
func (pl Platform) Validate() error {
	if pl.Procs < 1 {
		return fmt.Errorf("model: platform has %d processors, want >= 1", pl.Procs)
	}
	if pl.MemPerProc < 0 {
		return fmt.Errorf("model: platform has negative memory capacity")
	}
	return nil
}

// Replication describes how a module with a given total processor count is
// split into replicated instances. Following section 3.2 of the paper,
// under the no-superlinear-speedup assumption it is always profitable to
// replicate maximally subject to the memory constraint: p processors and a
// per-instance minimum of m yield r = floor(p/m) instances with
// floor(p/r) processors each (the remainder is left idle).
type Replication struct {
	// Replicas is the number of instances, r >= 1.
	Replicas int
	// ProcsPerInstance is the effective processor count of each instance.
	ProcsPerInstance int
}

// SplitReplicas computes the maximal replication of p total processors for
// a module whose instances need at least minProcs processors each. If the
// module is not replicable, pass replicable=false and the result is a
// single instance on p processors. SplitReplicas returns Replicas == 0 when
// p < minProcs (the module does not fit).
func SplitReplicas(p, minProcs int, replicable bool) Replication {
	if minProcs < 1 {
		minProcs = 1
	}
	if p < minProcs {
		return Replication{}
	}
	if !replicable {
		return Replication{Replicas: 1, ProcsPerInstance: p}
	}
	r := p / minProcs
	return Replication{Replicas: r, ProcsPerInstance: p / r}
}
