package model

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randMapping builds a random valid mapping over a random chain for
// property tests.
func randMapping(rng *rand.Rand) (Mapping, Platform) {
	k := 1 + rng.Intn(4)
	c := &Chain{
		Tasks: make([]Task, k),
		ICom:  make([]CostFunc, k-1),
		ECom:  make([]CommFunc, k-1),
	}
	for i := 0; i < k; i++ {
		c.Tasks[i] = Task{
			Name:       string(rune('a' + i)),
			Exec:       PolyExec{C1: rng.Float64(), C2: rng.Float64() * 5, C3: rng.Float64() * 0.1},
			Replicable: rng.Intn(2) == 0,
		}
	}
	for i := 0; i < k-1; i++ {
		c.ICom[i] = PolyExec{C1: rng.Float64() * 0.1, C2: rng.Float64()}
		c.ECom[i] = PolyComm{C1: rng.Float64() * 0.1, C2: rng.Float64(), C3: rng.Float64()}
	}
	// Random clustering.
	all := AllClusterings(k)
	spans := all[rng.Intn(len(all))]
	mods := make([]Module, len(spans))
	total := 0
	for i, sp := range spans {
		procs := 1 + rng.Intn(4)
		reps := 1
		if c.ModuleReplicable(sp.Lo, sp.Hi) {
			reps = 1 + rng.Intn(3)
		}
		mods[i] = Module{Lo: sp.Lo, Hi: sp.Hi, Procs: procs, Replicas: reps}
		total += procs * reps
	}
	return Mapping{Chain: c, Modules: mods}, Platform{Procs: total}
}

func TestPropertyThroughputIsInverseBottleneck(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	prop := func(seed int64) bool {
		m, _ := randMapping(rand.New(rand.NewSource(seed)))
		_, period := m.Bottleneck()
		thr := m.Throughput()
		return math.Abs(thr*period-1) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestPropertyLatencyIsResponseSum(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	prop := func(seed int64) bool {
		m, _ := randMapping(rand.New(rand.NewSource(seed)))
		sum := 0.0
		for _, f := range m.ResponseTimes() {
			sum += f
		}
		return math.Abs(m.Latency()-sum) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestPropertyEffectiveResponseDividesByReplicas(t *testing.T) {
	rng := rand.New(rand.NewSource(107))
	prop := func(seed int64) bool {
		m, _ := randMapping(rand.New(rand.NewSource(seed)))
		resp := m.ResponseTimes()
		eff := m.EffectiveResponseTimes()
		for i := range resp {
			want := resp[i] / float64(m.Modules[i].Replicas)
			if math.Abs(eff[i]-want) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestPropertyRandomMappingsValidate(t *testing.T) {
	rng := rand.New(rand.NewSource(109))
	prop := func(seed int64) bool {
		m, pl := randMapping(rand.New(rand.NewSource(seed)))
		return m.Validate(pl) == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestPropertyCollapsePreservesEvaluation(t *testing.T) {
	// Evaluating a mapping on the original chain equals evaluating the
	// corresponding singleton mapping on the collapsed chain.
	rng := rand.New(rand.NewSource(113))
	prop := func(seed int64) bool {
		m, _ := randMapping(rand.New(rand.NewSource(seed)))
		spans := m.Clustering()
		mc := CollapseClustering(m.Chain, spans)
		mods := make([]Module, len(m.Modules))
		for i, mod := range m.Modules {
			mods[i] = Module{Lo: i, Hi: i + 1, Procs: mod.Procs, Replicas: mod.Replicas}
		}
		mm := Mapping{Chain: mc, Modules: mods}
		return math.Abs(m.Throughput()-mm.Throughput()) < 1e-9*(1+m.Throughput()) &&
			math.Abs(m.Latency()-mm.Latency()) < 1e-9*(1+m.Latency())
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50, Rand: rng}); err != nil {
		t.Error(err)
	}
}
