package model

import (
	"fmt"
	"strings"
)

// Module is one element of a mapping: a contiguous subsequence of tasks
// clustered together, the number of processors assigned to each instance,
// and the replication degree.
type Module struct {
	// Lo and Hi delimit the tasks of the module as the half-open range
	// [Lo, Hi) of task indices.
	Lo, Hi int
	// Procs is the number of processors assigned to each instance.
	Procs int
	// Replicas is the number of instances, >= 1. Replicated instances
	// process alternate data sets round-robin.
	Replicas int
}

// TotalProcs returns Procs * Replicas, the processors consumed by the
// module.
func (m Module) TotalProcs() int { return m.Procs * m.Replicas }

// Mapping assigns a chain of tasks to processors: a list of modules that
// partition the chain, each with processors and a replication degree.
type Mapping struct {
	Chain   *Chain
	Modules []Module
}

// Validate checks that the mapping is well formed for P available
// processors with memCapacity bytes of memory per processor: modules
// partition the chain in order, every module meets its minimum processor
// count, replication respects replicability, and the total processor use
// fits in P.
func (m *Mapping) Validate(pl Platform) error {
	if m.Chain == nil {
		return fmt.Errorf("model: mapping has nil chain")
	}
	if err := m.Chain.Validate(); err != nil {
		return err
	}
	if len(m.Modules) == 0 {
		return fmt.Errorf("model: mapping has no modules")
	}
	next := 0
	total := 0
	for i, mod := range m.Modules {
		if mod.Lo != next {
			return fmt.Errorf("model: module %d covers tasks [%d,%d), want start %d",
				i, mod.Lo, mod.Hi, next)
		}
		if mod.Hi <= mod.Lo {
			return fmt.Errorf("model: module %d has empty task range [%d,%d)", i, mod.Lo, mod.Hi)
		}
		if mod.Lo < 0 || mod.Hi > m.Chain.Len() {
			return fmt.Errorf("model: module %d task range [%d,%d) outside the %d-task chain",
				i, mod.Lo, mod.Hi, m.Chain.Len())
		}
		next = mod.Hi
		if mod.Procs < 1 {
			return fmt.Errorf("model: module %d has %d processors, want >= 1", i, mod.Procs)
		}
		if mod.Replicas < 1 {
			return fmt.Errorf("model: module %d has %d replicas, want >= 1", i, mod.Replicas)
		}
		if mod.Replicas > 1 && !m.Chain.ModuleReplicable(mod.Lo, mod.Hi) {
			return fmt.Errorf("model: module %d (%s) is replicated %d times but not replicable",
				i, m.Chain.TaskNames(mod.Lo, mod.Hi), mod.Replicas)
		}
		min := m.Chain.ModuleMinProcs(mod.Lo, mod.Hi, pl.MemPerProc)
		if min < 0 {
			return fmt.Errorf("model: module %d (%s) cannot fit in memory at any processor count",
				i, m.Chain.TaskNames(mod.Lo, mod.Hi))
		}
		if mod.Procs < min {
			return fmt.Errorf("model: module %d (%s) has %d processors per instance, minimum is %d",
				i, m.Chain.TaskNames(mod.Lo, mod.Hi), mod.Procs, min)
		}
		total += mod.TotalProcs()
	}
	if next != m.Chain.Len() {
		return fmt.Errorf("model: mapping covers %d of %d tasks", next, m.Chain.Len())
	}
	if total > pl.Procs {
		return fmt.Errorf("model: mapping uses %d processors, platform has %d", total, pl.Procs)
	}
	return nil
}

// TotalProcs returns the number of processors consumed by the mapping.
func (m *Mapping) TotalProcs() int {
	total := 0
	for _, mod := range m.Modules {
		total += mod.TotalProcs()
	}
	return total
}

// ResponseTimes returns the response time f_i of each module: the input
// transfer, the module's composed execution, and the output transfer, all
// evaluated at the per-instance processor counts of the module and its
// neighbours (section 2.1). The first module has no input transfer and the
// last no output transfer.
func (m *Mapping) ResponseTimes() []float64 {
	resp := make([]float64, len(m.Modules))
	for i, mod := range m.Modules {
		f := m.Chain.ModuleExec(mod.Lo, mod.Hi).Eval(mod.Procs)
		if i > 0 {
			prev := m.Modules[i-1]
			f += m.Chain.ECom[mod.Lo-1].Eval(prev.Procs, mod.Procs)
		}
		if i < len(m.Modules)-1 {
			next := m.Modules[i+1]
			f += m.Chain.ECom[mod.Hi-1].Eval(mod.Procs, next.Procs)
		}
		resp[i] = f
	}
	return resp
}

// EffectiveResponseTimes returns f_i / r_i for each module: the response
// time divided by the replication degree, which is the module's effective
// contribution to the pipeline period.
func (m *Mapping) EffectiveResponseTimes() []float64 {
	resp := m.ResponseTimes()
	for i, mod := range m.Modules {
		resp[i] /= float64(mod.Replicas)
	}
	return resp
}

// Bottleneck returns the index of the module with the largest effective
// response time and that time (the pipeline period).
func (m *Mapping) Bottleneck() (int, float64) {
	resp := m.EffectiveResponseTimes()
	best, bestT := 0, resp[0]
	for i, t := range resp {
		if t > bestT {
			best, bestT = i, t
		}
	}
	return best, bestT
}

// Throughput returns the steady-state throughput of the mapping in data
// sets per second: 1 / max_i(f_i / r_i).
func (m *Mapping) Throughput() float64 {
	_, period := m.Bottleneck()
	if period <= 0 {
		return 0
	}
	return 1 / period
}

// Latency returns the time one data set spends traversing the pipeline:
// the sum of module response times. (Latency optimization is deferred to
// Vondran's thesis in the paper; we expose the metric as an extension.)
func (m *Mapping) Latency() float64 {
	var sum float64
	for _, f := range m.ResponseTimes() {
		sum += f
	}
	return sum
}

// String renders the mapping in the style of the paper's tables: one line
// per module with its tasks, per-instance processors, and replicas.
func (m *Mapping) String() string {
	var b strings.Builder
	for i, mod := range m.Modules {
		if i > 0 {
			b.WriteString(" | ")
		}
		fmt.Fprintf(&b, "[%s p=%d r=%d]", m.Chain.TaskNames(mod.Lo, mod.Hi), mod.Procs, mod.Replicas)
	}
	return b.String()
}

// Clustering returns the module boundaries of the mapping as a list of
// [lo, hi) spans.
func (m *Mapping) Clustering() []Span {
	spans := make([]Span, len(m.Modules))
	for i, mod := range m.Modules {
		spans[i] = Span{Lo: mod.Lo, Hi: mod.Hi}
	}
	return spans
}

// Span is a half-open range [Lo, Hi) of task indices forming one module of
// a clustering.
type Span struct{ Lo, Hi int }

// ValidClustering reports whether spans partition a chain of k tasks into
// contiguous, in-order, non-empty modules.
func ValidClustering(spans []Span, k int) bool {
	next := 0
	for _, s := range spans {
		if s.Lo != next || s.Hi <= s.Lo {
			return false
		}
		next = s.Hi
	}
	return next == k
}

// Singletons returns the clustering in which every task forms its own
// module.
func Singletons(k int) []Span {
	spans := make([]Span, k)
	for i := range spans {
		spans[i] = Span{Lo: i, Hi: i + 1}
	}
	return spans
}

// AllClusterings enumerates every clustering of k tasks into contiguous
// modules (there are 2^(k-1)); used for exhaustive cross-checks.
func AllClusterings(k int) [][]Span {
	if k == 0 {
		return nil
	}
	var out [][]Span
	// Each of the k-1 edges is either a module boundary or not.
	for mask := 0; mask < 1<<(k-1); mask++ {
		var spans []Span
		lo := 0
		for i := 0; i < k-1; i++ {
			if mask&(1<<i) != 0 {
				spans = append(spans, Span{Lo: lo, Hi: i + 1})
				lo = i + 1
			}
		}
		spans = append(spans, Span{Lo: lo, Hi: k})
		out = append(out, spans)
	}
	return out
}

// DataParallel returns the pure data parallel mapping of the chain: every
// task in one module on all P processors (Figure 1a in the paper).
func DataParallel(c *Chain, pl Platform) Mapping {
	return Mapping{
		Chain:   c,
		Modules: []Module{{Lo: 0, Hi: c.Len(), Procs: pl.Procs, Replicas: 1}},
	}
}
