package model

import "fmt"

// Memory describes the memory requirement of a task on one data set,
// following the paper's memory model (section 5), which separately accounts
// for global/system variables, local variables, and compiler buffers.
// Fixed memory is replicated on every processor of the task; Data and
// Buffer memory are distributed across the processors.
type Memory struct {
	// Fixed is memory replicated per processor (globals, code, system), in
	// bytes.
	Fixed float64
	// Data is the distributed application data, in bytes, divided across
	// the processors of the task.
	Data float64
	// Buffer is distributed compiler/communication buffer space, in bytes.
	Buffer float64
}

// Add returns the component-wise sum of two memory requirements; the memory
// requirement of a module is the sum of its tasks' requirements.
func (m Memory) Add(o Memory) Memory {
	return Memory{
		Fixed:  m.Fixed + o.Fixed,
		Data:   m.Data + o.Data,
		Buffer: m.Buffer + o.Buffer,
	}
}

// Total returns the total footprint when the task runs on p processors:
// p*Fixed + Data + Buffer.
func (m Memory) Total(p int) float64 {
	return float64(p)*m.Fixed + m.Data + m.Buffer
}

// PerProc returns the per-processor footprint on p processors.
func (m Memory) PerProc(p int) float64 {
	return m.Fixed + (m.Data+m.Buffer)/float64(p)
}

// MinProcs returns the minimum number of processors on which the
// requirement fits, given capacity bytes of memory per processor. It
// returns at least 1. If the Fixed portion alone exceeds the capacity no
// processor count suffices and MinProcs returns -1.
func (m Memory) MinProcs(capacity float64) int {
	if capacity <= 0 {
		return -1
	}
	if m.Fixed >= capacity {
		if m.Data+m.Buffer == 0 && m.Fixed == capacity {
			return 1
		}
		return -1
	}
	distributed := m.Data + m.Buffer
	if distributed <= 0 {
		return 1
	}
	p := int(ceilDiv(distributed, capacity-m.Fixed))
	if p < 1 {
		p = 1
	}
	return p
}

func ceilDiv(a, b float64) float64 {
	q := a / b
	i := float64(int64(q))
	if q > i {
		return i + 1
	}
	return i
}

// Task is one data parallel task in a chain. Its execution time is a
// function of the number of processors assigned to it.
type Task struct {
	// Name identifies the task in diagnostics and reports.
	Name string
	// Exec is the computation time per data set as a function of
	// processors, excluding communication with neighbours.
	Exec CostFunc
	// Mem is the task's memory requirement; together with the platform's
	// per-processor capacity it determines the minimum processors the task
	// (or any module containing it) needs.
	Mem Memory
	// Replicable reports whether data dependences permit processing
	// alternate data sets on distinct processor groups. A module is
	// replicable only if all its tasks are.
	Replicable bool
	// MinProcs optionally raises the minimum processor count above what the
	// memory model requires (e.g. a task hard-coded for at least 2
	// processors). Zero means no extra constraint.
	MinProcs int
}

// Validate checks the task for structural errors.
func (t *Task) Validate() error {
	if t.Name == "" {
		return fmt.Errorf("model: task has empty name")
	}
	if t.Exec == nil {
		return fmt.Errorf("model: task %q has nil Exec", t.Name)
	}
	if t.MinProcs < 0 {
		return fmt.Errorf("model: task %q has negative MinProcs %d", t.Name, t.MinProcs)
	}
	if t.Mem.Fixed < 0 || t.Mem.Data < 0 || t.Mem.Buffer < 0 {
		return fmt.Errorf("model: task %q has negative memory component", t.Name)
	}
	return nil
}
