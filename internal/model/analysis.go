package model

// Analysis reports which of the paper's sufficient optimality conditions
// for the greedy heuristic hold for a chain on up to P processors:
//
//   - Theorem 1: if external communication time increases monotonically
//     with the processor counts involved, the slowest-only greedy variant
//     is optimal.
//   - Theorem 2: if all computation and communication functions are convex
//     (diminishing returns) and the computation decrease from an extra
//     processor always exceeds four times the communication decrease, the
//     neighbour greedy over-allocates at most two processors per task and
//     bounded backtracking recovers the optimum.
//
// The checks are numeric sweeps over 1..P, so they certify the conditions
// on the relevant domain rather than proving them symbolically.
type Analysis struct {
	// MonotoneComm is Theorem 1's hypothesis.
	MonotoneComm bool
	// ExecConvex and CommConvex are the first condition of Theorem 2.
	ExecConvex, CommConvex bool
	// CompDominatesComm is the second condition of Theorem 2
	// (delta_exec > 4 * delta_comm at every point).
	CompDominatesComm bool
}

// Theorem1Applies reports whether the slowest-only greedy is provably
// optimal for this chain.
func (a Analysis) Theorem1Applies() bool { return a.MonotoneComm }

// Theorem2Applies reports whether greedy plus bounded backtracking is
// provably optimal for this chain.
func (a Analysis) Theorem2Applies() bool {
	return a.ExecConvex && a.CommConvex && a.CompDominatesComm
}

// Analyze sweeps the chain's cost functions over 1..P and reports which
// of the greedy optimality conditions hold.
func Analyze(c *Chain, P int) Analysis {
	if P < 3 {
		P = 3
	}
	a := Analysis{
		MonotoneComm:      true,
		ExecConvex:        true,
		CommConvex:        true,
		CompDominatesComm: true,
	}
	const eps = 1e-12

	// Execution convexity: differences f(p+1)-f(p) non-decreasing.
	for _, t := range c.Tasks {
		for p := 1; p+2 <= P; p++ {
			d1 := t.Exec.Eval(p+1) - t.Exec.Eval(p)
			d2 := t.Exec.Eval(p+2) - t.Exec.Eval(p+1)
			if d2 < d1-eps {
				a.ExecConvex = false
			}
		}
	}
	for e := range c.ECom {
		for ps := 1; ps <= P; ps++ {
			for pr := 1; pr <= P; pr++ {
				v := c.ECom[e].Eval(ps, pr)
				// Theorem 1 monotonicity: f(ps+x, pr+y) >= f(ps, pr).
				if ps+1 <= P && c.ECom[e].Eval(ps+1, pr) < v-eps {
					a.MonotoneComm = false
				}
				if pr+1 <= P && c.ECom[e].Eval(ps, pr+1) < v-eps {
					a.MonotoneComm = false
				}
				// Theorem 2 convexity along each axis.
				if ps+2 <= P {
					d1 := c.ECom[e].Eval(ps+1, pr) - v
					d2 := c.ECom[e].Eval(ps+2, pr) - c.ECom[e].Eval(ps+1, pr)
					if d2 < d1-eps {
						a.CommConvex = false
					}
				}
				if pr+2 <= P {
					d1 := c.ECom[e].Eval(ps, pr+1) - v
					d2 := c.ECom[e].Eval(ps, pr+2) - c.ECom[e].Eval(ps, pr+1)
					if d2 < d1-eps {
						a.CommConvex = false
					}
				}
			}
		}
		// Internal redistribution convexity.
		for p := 1; p+2 <= P; p++ {
			d1 := c.ICom[e].Eval(p+1) - c.ICom[e].Eval(p)
			d2 := c.ICom[e].Eval(p+2) - c.ICom[e].Eval(p+1)
			if d2 < d1-eps {
				a.CommConvex = false
			}
		}
	}

	// Theorem 2's dominance condition: the computation decrease from one
	// more processor exceeds 4x the communication decrease, for every
	// task, at every point, against the worst adjacent-edge decrease.
	for i, t := range c.Tasks {
		for p := 1; p+1 <= P; p++ {
			dExec := t.Exec.Eval(p) - t.Exec.Eval(p+1)
			dComm := 0.0
			probe := func(f func(int) float64) {
				if d := f(p) - f(p+1); d > dComm {
					dComm = d
				}
			}
			if i > 0 {
				for q := 1; q <= P; q += maxIntStep(P) {
					q := q
					probe(func(x int) float64 { return c.ECom[i-1].Eval(q, x) })
				}
			}
			if i < len(c.Tasks)-1 {
				for q := 1; q <= P; q += maxIntStep(P) {
					q := q
					probe(func(x int) float64 { return c.ECom[i].Eval(x, q) })
				}
			}
			if dExec <= 4*dComm {
				a.CompDominatesComm = false
			}
		}
	}
	return a
}

// maxIntStep subsamples the opposite-side processor count in the
// dominance sweep to keep Analyze at O(P^2) per edge.
func maxIntStep(P int) int {
	if P <= 16 {
		return 1
	}
	return P / 16
}
