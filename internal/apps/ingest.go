package apps

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"

	"pipemap/internal/fxrt"
	"pipemap/internal/ingest"
	"pipemap/internal/kernels"
)

// This file adapts the real applications to the ingestion data plane:
// each codec decodes a submit request's input into the pipeline's source
// data set and encodes the sink's output as a JSON-friendly result.

// finite replaces NaN and infinities with 0 so results always marshal.
func finite(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}

// FFTHistCodec adapts FFT-Hist submissions: the input selects a synthetic
// seed or supplies a full real-valued matrix; the result summarizes the
// magnitude histogram.
type FFTHistCodec struct {
	Runner FFTHistRunner
}

var _ ingest.Codec = FFTHistCodec{}

// App implements ingest.Codec.
func (c FFTHistCodec) App() string { return "ffthist" }

// Decode implements ingest.Codec. An empty input synthesizes the seed-0
// data set; {"seed": k} varies it; {"data": [...]} supplies the matrix's
// real parts row-major (length N*N).
func (c FFTHistCodec) Decode(input json.RawMessage) (fxrt.DataSet, error) {
	var req struct {
		Seed int       `json:"seed"`
		Data []float64 `json:"data"`
	}
	if len(input) > 0 {
		if err := json.Unmarshal(input, &req); err != nil {
			return nil, fmt.Errorf("ffthist input: %w", err)
		}
	}
	n := c.Runner.N
	if req.Data != nil {
		if len(req.Data) != n*n {
			return nil, fmt.Errorf("ffthist input: data length %d, want %d (N=%d)", len(req.Data), n*n, n)
		}
		mat := kernels.NewMatrix(n, n)
		for i, v := range req.Data {
			mat.Data[i] = complex(v, 0)
		}
		return mat, nil
	}
	return c.Runner.Input(req.Seed), nil
}

// Encode implements ingest.Codec: the final histogram's summary moments.
func (c FFTHistCodec) Encode(out fxrt.DataSet) (any, error) {
	h, ok := out.(*kernels.Histogram)
	if !ok {
		return nil, fmt.Errorf("ffthist output: got %T, want *kernels.Histogram", out)
	}
	return map[string]any{
		"count":    h.Count,
		"bins":     len(h.Bins),
		"mean":     finite(h.Mean()),
		"variance": finite(h.Variance()),
		"min":      finite(h.Min),
		"max":      finite(h.Max),
	}, nil
}

// RadarCodec adapts radar submissions: the input places the synthetic
// target; the result reports the CFAR detections.
type RadarCodec struct {
	Runner RadarRunner
}

var _ ingest.Codec = RadarCodec{}

// App implements ingest.Codec.
func (c RadarCodec) App() string { return "radar" }

// Decode implements ingest.Codec. Input fields (all optional): "seed"
// varies the clutter, "target_gate"/"target_doppler" place the echo.
func (c RadarCodec) Decode(input json.RawMessage) (fxrt.DataSet, error) {
	var req struct {
		Seed          int `json:"seed"`
		TargetGate    int `json:"target_gate"`
		TargetDoppler int `json:"target_doppler"`
	}
	if len(input) > 0 {
		if err := json.Unmarshal(input, &req); err != nil {
			return nil, fmt.Errorf("radar input: %w", err)
		}
	}
	pulses, gates := c.Runner.dims()
	tg, td := c.Runner.target()
	if req.TargetGate != 0 {
		tg = req.TargetGate
	}
	if req.TargetDoppler != 0 {
		td = req.TargetDoppler
	}
	if tg < 0 || tg >= gates {
		return nil, fmt.Errorf("radar input: target_gate %d outside [0, %d)", tg, gates)
	}
	if td < 0 || td >= pulses {
		return nil, fmt.Errorf("radar input: target_doppler %d outside [0, %d)", td, pulses)
	}
	return c.Runner.inputAt(req.Seed, tg, td), nil
}

// Encode implements ingest.Codec: the detection count and the strongest
// detections (up to 5, by power).
func (c RadarCodec) Encode(out fxrt.DataSet) (any, error) {
	rd, ok := out.(*RadarData)
	if !ok {
		return nil, fmt.Errorf("radar output: got %T, want radar data", out)
	}
	dets := append([]kernels.Detection(nil), rd.Dets...)
	sort.Slice(dets, func(i, j int) bool { return dets[i].Power > dets[j].Power })
	if len(dets) > 5 {
		dets = dets[:5]
	}
	top := make([]map[string]any, 0, len(dets))
	for _, d := range dets {
		top = append(top, map[string]any{
			"doppler": d.Doppler,
			"range":   d.Range,
			"power":   finite(d.Power),
		})
	}
	return map[string]any{
		"detections": len(rd.Dets),
		"top":        top,
	}, nil
}

// StereoCodec adapts stereo submissions: the input selects a synthetic
// scene; the result reports the recovered depth map's accuracy against the
// scene's true disparity.
type StereoCodec struct {
	Runner StereoRunner
}

var _ ingest.Codec = StereoCodec{}

// App implements ingest.Codec.
func (c StereoCodec) App() string { return "stereo" }

// Decode implements ingest.Codec. Input: optional {"seed": k}.
func (c StereoCodec) Decode(input json.RawMessage) (fxrt.DataSet, error) {
	var req struct {
		Seed int `json:"seed"`
	}
	if len(input) > 0 {
		if err := json.Unmarshal(input, &req); err != nil {
			return nil, fmt.Errorf("stereo input: %w", err)
		}
	}
	return c.Runner.input(req.Seed), nil
}

// Encode implements ingest.Codec: depth map dimensions, mean recovered
// disparity, and accuracy against the synthetic scene.
func (c StereoCodec) Encode(out fxrt.DataSet) (any, error) {
	sd, ok := out.(*StereoData)
	if !ok {
		return nil, fmt.Errorf("stereo output: got %T, want stereo data", out)
	}
	var mean float64
	if len(sd.Depth.Pix) > 0 {
		for _, v := range sd.Depth.Pix {
			mean += v
		}
		mean /= float64(len(sd.Depth.Pix))
	}
	return map[string]any{
		"width":      sd.Depth.W,
		"height":     sd.Depth.H,
		"mean_depth": finite(mean),
		"accuracy":   finite(c.Runner.VerifyDepth(sd)),
	}, nil
}
