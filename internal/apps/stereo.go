package apps

import "pipemap/internal/model"

// Stereo builds the multibaseline stereo chain (256 x 100 images, 16
// disparity levels, per Table 2 and the multi-baseline stereo description
// in the introduction): image capture/preprocessing, difference images for
// the disparity levels, error images, and a minimum reduction producing
// the depth map. The capture stage is a single serial camera source and
// cannot be replicated, which caps the achievable speedup — Table 2
// reports a 2.75x advantage of the optimal mapping over data parallel,
// the smallest of the three applications.
func Stereo() *model.Chain {
	return &model.Chain{
		Tasks: []model.Task{
			{
				Name:       "capture",
				Exec:       model.PolyExec{C1: 0.002, C2: 0.14, C3: 0.0005},
				Mem:        model.Memory{Data: 0.25},
				Replicable: false, // the cameras are a single serial source
			},
			{
				Name:       "diff",
				Exec:       model.PolyExec{C1: 0.0008, C2: 0.060, C3: 0.00005},
				Mem:        model.Memory{Data: 2.2}, // 16 disparity planes
				Replicable: true,
			},
			{
				Name:       "err",
				Exec:       model.PolyExec{C1: 0.0008, C2: 0.045, C3: 0.00005},
				Mem:        model.Memory{Data: 2.2},
				Replicable: true,
			},
			{
				Name:       "depth",
				Exec:       model.PolyExec{C1: 0.0018, C2: 0.010, C3: 0.0001},
				Mem:        model.Memory{Data: 0.2},
				Replicable: true,
			},
		},
		ICom: []model.CostFunc{
			// Capture -> diff: broadcast of the camera images.
			model.PolyExec{C1: 0.0006, C2: 0.002, C3: 0.00002},
			// Diff -> err shares the disparity-plane distribution.
			model.ZeroExec(),
			// Err -> depth: reduction across disparity planes.
			model.PolyExec{C1: 0.0012, C2: 0.004, C3: 0.00008},
		},
		ECom: []model.CommFunc{
			model.PolyComm{C1: 0.0012, C2: 0.003, C3: 0.003, C4: 0.00003, C5: 0.00003},
			model.PolyComm{C1: 0.0030, C2: 0.010, C3: 0.010, C4: 0.00004, C5: 0.00004},
			model.PolyComm{C1: 0.0015, C2: 0.005, C3: 0.005, C4: 0.00003, C5: 0.00003},
		},
	}
}
