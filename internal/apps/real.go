package apps

import (
	"fmt"
	"math"

	"pipemap/internal/estimate"
	"pipemap/internal/fxrt"
	"pipemap/internal/kernels"
	"pipemap/internal/model"
)

// FFTHistRunner executes the FFT-Hist program for real on the fxrt
// runtime: actual FFTs, transposes and histogram reductions on n x n
// complex matrices, with the pipeline structure (clustering, workers,
// replication) taken from a mapping. It implements estimate.Profiler, so
// the whole feedback loop of the paper — profile, fit a model, predict the
// optimal mapping, run it — can be exercised end to end on a real workload.
type FFTHistRunner struct {
	// N is the matrix dimension (power of two).
	N int
	// DataSets is the stream length per run (default 12).
	DataSets int
}

// opNames for recorded measurements.
const (
	opColFFTs     = "exec:colffts"
	opRowFFTs     = "exec:rowffts"
	opHist        = "exec:hist"
	opTranspose   = "edge:transpose"
	opHistMerge   = "edge:histmerge"
	opHistHandoff = "edge:handoff"
)

// Pipeline builds the fxrt pipeline realizing the mapping, along with the
// inter-module edge transfers. The mapping must cover the 3-task FFT-Hist
// chain (colffts, rowffts, hist). When the colffts/rowffts boundary
// crosses modules, the transpose runs as a true edge transfer — the
// sending instance blocks while the receiving instance redistributes, the
// paper's rendezvous communication model.
func (r FFTHistRunner) Pipeline(m model.Mapping) (*fxrt.Pipeline, []fxrt.Edge, error) {
	if r.N < 2 || r.N&(r.N-1) != 0 {
		return nil, nil, fmt.Errorf("apps: FFT-Hist size %d must be a power of two", r.N)
	}
	if m.Chain == nil || m.Chain.Len() != 3 {
		return nil, nil, fmt.Errorf("apps: mapping does not cover the 3-task FFT-Hist chain")
	}
	var stages []fxrt.Stage
	var edges []fxrt.Edge
	for mi, mod := range m.Modules {
		mod := mod
		stages = append(stages, fxrt.Stage{
			Name:     m.Chain.TaskNames(mod.Lo, mod.Hi),
			Workers:  mod.Procs,
			Replicas: mod.Replicas,
			Run: func(ctx *fxrt.StageCtx, in fxrt.DataSet) (fxrt.DataSet, error) {
				return r.runTasks(ctx, mod.Lo, mod.Hi, in)
			},
		})
		if mi == 0 {
			continue
		}
		// The edge into this module: the transpose when the module starts
		// with rowffts, a free handoff otherwise (rowffts+hist share a
		// distribution).
		if mod.Lo == 1 {
			edges = append(edges, fxrt.Edge{
				Name: opTranspose,
				Transfer: func(recv *fxrt.StageCtx, in fxrt.DataSet) (fxrt.DataSet, error) {
					mat, ok := in.(kernels.Matrix)
					if !ok {
						return nil, fmt.Errorf("apps: transpose edge expects a matrix")
					}
					out := kernels.NewMatrix(mat.Cols, mat.Rows)
					err := recv.Group.ParallelFor(out.Rows, func(r0, r1 int) error {
						return kernels.Transpose(mat, out, r0, r1)
					})
					return out, err
				},
			})
		} else {
			edges = append(edges, fxrt.Edge{Name: opHistHandoff})
		}
	}
	return &fxrt.Pipeline{Stages: stages}, edges, nil
}

// runTasks executes tasks [lo, hi) of the FFT-Hist chain on the instance's
// group. Edge 0 (the transpose) is performed at the boundary between
// colffts and rowffts regardless of which stage hosts it; edge 1 is the
// histogram partial merge, folded into the hist task.
func (r FFTHistRunner) runTasks(ctx *fxrt.StageCtx, lo, hi int, in fxrt.DataSet) (fxrt.DataSet, error) {
	ds := in
	for t := lo; t < hi; t++ {
		switch t {
		case 0:
			mat, ok := ds.(kernels.Matrix)
			if !ok {
				return nil, fmt.Errorf("apps: colffts expects a matrix input")
			}
			err := ctx.Rec.Time(opColFFTs, func() error {
				return ctx.Group.ParallelFor(mat.Cols, func(c0, c1 int) error {
					return kernels.FFTCols(mat, c0, c1)
				})
			})
			if err != nil {
				return nil, err
			}
			ds = mat
		case 1:
			mat, ok := ds.(kernels.Matrix)
			if !ok {
				return nil, fmt.Errorf("apps: rowffts expects a matrix input")
			}
			out := mat
			if lo == 0 {
				// Edge 0 is internal to this module: redistribute from
				// column-major to row-major blocks here.
				out = kernels.NewMatrix(mat.Cols, mat.Rows)
				err := ctx.Rec.Time(opTranspose, func() error {
					return ctx.Group.ParallelFor(out.Rows, func(r0, r1 int) error {
						return kernels.Transpose(mat, out, r0, r1)
					})
				})
				if err != nil {
					return nil, err
				}
			}
			err := ctx.Rec.Time(opRowFFTs, func() error {
				return ctx.Group.ParallelFor(out.Rows, func(r0, r1 int) error {
					return kernels.FFTRows(out, r0, r1)
				})
			})
			if err != nil {
				return nil, err
			}
			ds = out
		case 2:
			mat, ok := ds.(kernels.Matrix)
			if !ok {
				return nil, fmt.Errorf("apps: hist expects a matrix input")
			}
			w := ctx.Group.Workers()
			partials := make([]*kernels.Histogram, w)
			err := ctx.Rec.Time(opHist, func() error {
				return ctx.Group.ParallelFor(w, func(i0, i1 int) error {
					for i := i0; i < i1; i++ {
						h := kernels.NewHistogram(64, -6, 6)
						r0, r1 := fxrt.BlockRange(mat.Rows, w, i)
						if r0 < r1 {
							h.AccumulateMatrix(mat, r0, r1)
						}
						partials[i] = h
					}
					return nil
				})
			})
			if err != nil {
				return nil, err
			}
			total := kernels.NewHistogram(64, -6, 6)
			err = ctx.Rec.Time(opHistMerge, func() error {
				for _, h := range partials {
					if h != nil {
						total.Merge(h)
					}
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
			ds = total
		}
	}
	return ds, nil
}

// Run executes the mapping on the runtime and returns measured statistics.
func (r FFTHistRunner) Run(m model.Mapping) (fxrt.Stats, error) {
	p, edges, err := r.Pipeline(m)
	if err != nil {
		return fxrt.Stats{}, err
	}
	n := r.DataSets
	if n <= 0 {
		n = 12
	}
	template := r.template()
	return p.RunWithEdges(func(i int) fxrt.DataSet {
		mat := kernels.NewMatrix(r.N, r.N)
		copy(mat.Data, template.Data)
		perturb(mat, i)
		return mat
	}, n, 0, edges)
}

// perturb varies the stream slightly so runs are not trivially cacheable.
func perturb(mat kernels.Matrix, i int) {
	mat.Data[i%len(mat.Data)] += complex(float64(i%7), 0)
}

// Input synthesizes the i-th stream data set: the tone template with a
// per-index perturbation. Run amortizes the template across the stream;
// this builds one standalone data set, for ingestion.
func (r FFTHistRunner) Input(i int) kernels.Matrix {
	mat := r.template()
	perturb(mat, i)
	return mat
}

// template synthesizes the input data set: a sum of tones plus structure.
func (r FFTHistRunner) template() kernels.Matrix {
	mat := kernels.NewMatrix(r.N, r.N)
	for row := 0; row < r.N; row++ {
		for col := 0; col < r.N; col++ {
			v := math.Sin(2*math.Pi*3*float64(row)/float64(r.N)) +
				0.5*math.Cos(2*math.Pi*7*float64(col)/float64(r.N))
			mat.Set(row, col, complex(v, 0))
		}
	}
	return mat
}

var _ estimate.Profiler = FFTHistRunner{}

// Profile implements estimate.Profiler: it runs the mapping on the real
// runtime and reports mean measured per-task and per-edge times.
func (r FFTHistRunner) Profile(m model.Mapping) (estimate.Measurement, error) {
	stats, err := r.Run(m)
	if err != nil {
		return estimate.Measurement{}, err
	}
	ops := stats.Ops
	return estimate.Measurement{
		TaskExec: []float64{ops[opColFFTs], ops[opRowFFTs], ops[opHist]},
		EdgeComm: []float64{ops[opTranspose], ops[opHistMerge]},
	}, nil
}

// FFTHistStructure returns the 3-task chain structure (names, memory,
// replicability) used when fitting a model from real profiles: cost
// functions are placeholders, replaced by the fit.
func FFTHistStructure(n int) *model.Chain {
	s := float64(n) * float64(n) / (256.0 * 256.0)
	return &model.Chain{
		Tasks: []model.Task{
			{Name: "colffts", Exec: model.ZeroExec(), Mem: model.Memory{Data: 1.4 * s}, Replicable: true},
			{Name: "rowffts", Exec: model.ZeroExec(), Mem: model.Memory{Data: 1.4 * s}, Replicable: true},
			{Name: "hist", Exec: model.ZeroExec(), Mem: model.Memory{Data: 0.35}, Replicable: true},
		},
		ICom: []model.CostFunc{model.ZeroExec(), model.ZeroExec()},
		ECom: []model.CommFunc{model.ZeroComm(), model.ZeroComm()},
	}
}
