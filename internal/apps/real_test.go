package apps

import (
	"testing"

	"pipemap/internal/dp"
	"pipemap/internal/estimate"
	"pipemap/internal/model"
)

func radarMapping(c *model.Chain) model.Mapping {
	return model.Mapping{Chain: c, Modules: []model.Module{
		{Lo: 0, Hi: 2, Procs: 2, Replicas: 2},
		{Lo: 2, Hi: 3, Procs: 2, Replicas: 1},
		{Lo: 3, Hi: 4, Procs: 1, Replicas: 1},
	}}
}

func TestRadarRunnerEndToEnd(t *testing.T) {
	r := RadarRunner{Pulses: 8, Gates: 64, DataSets: 6}
	stats, _, err := r.Run(radarMapping(RadarStructure()))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Throughput <= 0 {
		t.Errorf("throughput %g", stats.Throughput)
	}
	for _, op := range []string{opPulseComp, opDoppler, opCFAR, opTrack, opCornerTurn, opDetGather} {
		if _, ok := stats.Ops[op]; !ok {
			t.Errorf("missing op %s: %v", op, stats.Ops)
		}
	}
}

func TestRadarRunnerDetectsTarget(t *testing.T) {
	// The track stage accumulates hits; the injected target cell must
	// dominate the track map.
	r := RadarRunner{Pulses: 16, Gates: 128, DataSets: 4, TargetGate: 40, TargetDoppler: 5}
	c := RadarStructure()
	m := model.DataParallel(c, model.Platform{Procs: 2})
	stats, tracks, err := r.Run(m)
	if err != nil {
		t.Fatal(err)
	}
	if stats.DataSets != 4 {
		t.Errorf("processed %d data sets", stats.DataSets)
	}
	if len(tracks) == 0 {
		t.Fatal("no tracks accumulated")
	}
	var bestCell [2]int
	bestHits := -1
	for cell, hits := range tracks {
		if hits > bestHits {
			bestCell, bestHits = cell, hits
		}
	}
	// The matched filter response spreads over adjacent gates; accept the
	// true gate +/- 2.
	if bestCell[0] != 5 || bestCell[1] < 38 || bestCell[1] > 42 {
		t.Errorf("dominant track at doppler=%d gate=%d, want 5/40±2 (hits %d, map %v)",
			bestCell[0], bestCell[1], bestHits, tracks)
	}
}

func TestRadarRunnerErrors(t *testing.T) {
	r := RadarRunner{Pulses: 7, Gates: 64}
	if _, _, err := r.Run(radarMapping(RadarStructure())); err == nil {
		t.Error("non-power-of-two pulses accepted")
	}
	short := &model.Chain{Tasks: []model.Task{{Name: "x", Exec: model.ZeroExec()}}}
	r2 := RadarRunner{}
	if _, _, err := r2.Run(model.DataParallel(short, model.Platform{Procs: 2})); err == nil {
		t.Error("wrong chain shape accepted")
	}
}

func TestRadarRunnerProfileShape(t *testing.T) {
	r := RadarRunner{Pulses: 8, Gates: 64, DataSets: 4}
	meas, err := r.Profile(radarMapping(RadarStructure()))
	if err != nil {
		t.Fatal(err)
	}
	if len(meas.TaskExec) != 4 || len(meas.EdgeComm) != 3 {
		t.Fatalf("measurement shape %d/%d", len(meas.TaskExec), len(meas.EdgeComm))
	}
	for i, v := range meas.TaskExec {
		if v <= 0 {
			t.Errorf("task %d measured %g", i, v)
		}
	}
}

func TestStereoRunnerEndToEndAndDepth(t *testing.T) {
	r := StereoRunner{W: 64, H: 32, Disparities: 6, DataSets: 5, TrueDisparity: 2}
	c := StereoStructure()
	m := model.Mapping{Chain: c, Modules: []model.Module{
		{Lo: 0, Hi: 1, Procs: 1, Replicas: 1},
		{Lo: 1, Hi: 3, Procs: 2, Replicas: 2},
		{Lo: 3, Hi: 4, Procs: 2, Replicas: 1},
	}}
	stats, last, err := r.Run(m)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Throughput <= 0 {
		t.Errorf("throughput %g", stats.Throughput)
	}
	if acc := r.VerifyDepth(last); acc < 0.95 {
		t.Errorf("depth accuracy %.2f below 0.95", acc)
	}
	for _, op := range []string{opCapture, opDiff, opErr, opDepth, opBroadcast} {
		if _, ok := stats.Ops[op]; !ok {
			t.Errorf("missing op %s", op)
		}
	}
}

func TestStereoRunnerProfileShape(t *testing.T) {
	r := StereoRunner{W: 32, H: 16, Disparities: 4, DataSets: 3}
	c := StereoStructure()
	meas, err := r.Profile(model.DataParallel(c, model.Platform{Procs: 2}))
	if err != nil {
		t.Fatal(err)
	}
	if len(meas.TaskExec) != 4 || len(meas.EdgeComm) != 3 {
		t.Fatalf("measurement shape %d/%d", len(meas.TaskExec), len(meas.EdgeComm))
	}
}

func TestStereoRunnerErrors(t *testing.T) {
	short := &model.Chain{Tasks: []model.Task{{Name: "x", Exec: model.ZeroExec()}}}
	r := StereoRunner{}
	if _, _, err := r.Run(model.DataParallel(short, model.Platform{Procs: 2})); err == nil {
		t.Error("wrong chain shape accepted")
	}
}

func TestStereoVerifyDepthNil(t *testing.T) {
	r := StereoRunner{}
	if r.VerifyDepth(nil) != 0 {
		t.Error("nil depth should verify as 0")
	}
}

func TestRadarRunnerFullFeedbackLoop(t *testing.T) {
	// The paper's complete loop on the real radar runtime: profile the 8
	// training runs, fit models, predict a mapping.
	if testing.Short() {
		t.Skip("real-runtime profiling")
	}
	r := RadarRunner{Pulses: 8, Gates: 64, DataSets: 4}
	structure := RadarStructure()
	pl := model.Platform{Procs: 6}
	fitted, err := estimate.EstimateChain(structure, r, pl)
	if err != nil {
		t.Fatal(err)
	}
	m, err := dp.MapChain(fitted, pl, dp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(pl); err != nil {
		t.Errorf("predicted mapping invalid: %v", err)
	}
}

func TestStereoRunnerFullFeedbackLoop(t *testing.T) {
	if testing.Short() {
		t.Skip("real-runtime profiling")
	}
	r := StereoRunner{W: 64, H: 32, Disparities: 4, DataSets: 4}
	structure := StereoStructure()
	pl := model.Platform{Procs: 6}
	fitted, err := estimate.EstimateChain(structure, r, pl)
	if err != nil {
		t.Fatal(err)
	}
	m, err := dp.MapChain(fitted, pl, dp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Throughput() <= 0 {
		t.Error("no predicted throughput")
	}
}
