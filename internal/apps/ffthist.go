// Package apps defines the paper's evaluation applications as task chains
// with calibrated cost models: FFT-Hist (section 6.2) at two data set
// sizes and two communication modes, the narrowband tracking radar, and
// multibaseline stereo (Table 2). Constants are calibrated so the chains
// reproduce the paper's qualitative results — which clustering wins, the
// replication structure, and the optimal-to-data-parallel throughput
// ratios — on a 64-processor machine with 0.5 MB of memory per processor
// (iWarp-like). Absolute times are in seconds but are not meant to match
// iWarp microsecond-for-microsecond.
//
// The package also builds runnable fxrt pipelines for the applications,
// with real kernels from package kernels, for end-to-end demonstrations.
package apps

import (
	"fmt"

	"pipemap/internal/model"
)

// Comm selects the communication substrate, mirroring the paper's message
// passing versus systolic (pathway) modes on iWarp.
type Comm int

const (
	// Message is buffered message passing: higher fixed overhead, cost
	// parallelizes well over group members.
	Message Comm = iota
	// Systolic is iWarp pathway communication: very low fixed overhead but
	// per-cell pathway setup that grows with group sizes.
	Systolic
)

func (c Comm) String() string {
	if c == Systolic {
		return "Systolic"
	}
	return "Message"
}

// Platform returns the paper's evaluation machine: a 64-processor array
// with 0.5 MB of usable memory per processor. Memory units throughout the
// package are megabytes.
func Platform() model.Platform {
	return model.Platform{Procs: 64, MemPerProc: 0.5}
}

// FFTHist builds the FFT-Hist chain for n x n complex data sets
// (n = 256 or 512 in the paper): colffts performs column FFTs, rowffts row
// FFTs, and hist statistical analysis. The edge between colffts and
// rowffts is a transpose whose cost is comparable whether internal or
// external; the edge between rowffts and hist is free internally (shared
// distribution) but expensive externally — which is exactly why the
// optimal clustering merges rowffts and hist (section 6.3).
func FFTHist(n int, comm Comm) (*model.Chain, error) {
	if n < 2 || n&(n-1) != 0 {
		return nil, fmt.Errorf("apps: FFT-Hist size %d must be a power of two >= 2", n)
	}
	// s scales data volume relative to the 256x256 baseline; ws adds the
	// FFT's log factor to computation.
	s := float64(n) * float64(n) / (256.0 * 256.0)
	ws := s * log2(float64(n)) / 8.0

	fftExec := model.PolyExec{C1: 0.005, C2: 1.2 * ws, C3: 0.0008}
	histExec := model.PolyExec{C1: 0.07, C2: 0.6 * s, C3: 0.004}

	transposeICom := model.PolyExec{C1: 0.01, C2: 0.6 * s, C3: 0.00053}
	var transposeECom, rowHistECom model.CommFunc
	switch comm {
	case Systolic:
		transposeECom = model.PolyComm{C1: 0.008, C2: 0.15 * s, C3: 0.15 * s, C4: 0.002, C5: 0.002}
		rowHistECom = model.PolyComm{C1: 0.02, C2: 0.28 * s, C3: 0.28 * s, C4: 0.002, C5: 0.002}
	default:
		transposeECom = model.PolyComm{C1: 0.0325, C2: 0.18 * s, C3: 0.18 * s, C4: 0.0005, C5: 0.0005}
		rowHistECom = model.PolyComm{C1: 0.08, C2: 0.3 * s, C3: 0.3 * s, C4: 0.0005, C5: 0.0005}
	}

	fftMem := model.Memory{Data: 1.4 * s} // MB: input + output + workspace
	histMem := model.Memory{Data: 0.35}   // MB: bins and moments, size-independent

	return &model.Chain{
		Tasks: []model.Task{
			{Name: "colffts", Exec: fftExec, Mem: fftMem, Replicable: true},
			{Name: "rowffts", Exec: fftExec, Mem: fftMem, Replicable: true},
			{Name: "hist", Exec: histExec, Mem: histMem, Replicable: true},
		},
		ICom: []model.CostFunc{
			transposeICom,
			model.ZeroExec(), // rowffts and hist share a distribution
		},
		ECom: []model.CommFunc{transposeECom, rowHistECom},
	}, nil
}

func log2(x float64) float64 {
	n := 0.0
	for x > 1 {
		x /= 2
		n++
	}
	return n
}
