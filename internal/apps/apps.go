package apps

import (
	"fmt"

	"pipemap/internal/model"
)

// Config is one evaluation configuration from the paper's tables.
type Config struct {
	// Name of the program (FFT-Hist, Radar, Stereo).
	Name string
	// Size is the data set description from the tables.
	Size string
	// Comm is the communication mode.
	Comm Comm
	// Chain is the calibrated task chain.
	Chain *model.Chain
	// Platform is the machine model the paper evaluated on.
	Platform model.Platform
	// PaperOptimal and PaperDataParallel are the throughputs (data sets
	// per second) the paper predicted/measured, kept for the
	// paper-vs-reproduction comparison in EXPERIMENTS.md.
	PaperOptimal      float64
	PaperDataParallel float64
}

// Table1Configs returns the four FFT-Hist configurations of Table 1.
func Table1Configs() ([]Config, error) {
	var out []Config
	for _, c := range []struct {
		n    int
		comm Comm
		opt  float64
	}{
		{256, Message, 14.60},
		{256, Systolic, 14.74},
		{512, Message, 3.14},
		{512, Systolic, 2.99},
	} {
		chain, err := FFTHist(c.n, c.comm)
		if err != nil {
			return nil, err
		}
		out = append(out, Config{
			Name:         "FFT-Hist",
			Size:         fmt.Sprintf("%dx%d", c.n, c.n),
			Comm:         c.comm,
			Chain:        chain,
			Platform:     Platform(),
			PaperOptimal: c.opt,
		})
	}
	return out, nil
}

// Table2Configs returns the six configurations of Table 2: the four
// FFT-Hist variants plus Radar and Stereo.
func Table2Configs() ([]Config, error) {
	out, err := Table1Configs()
	if err != nil {
		return nil, err
	}
	dp := []float64{1.86, 1.86, 1.35, 1.35}
	for i := range out {
		out[i].PaperDataParallel = dp[i]
	}
	out = append(out,
		Config{
			Name: "Radar", Size: "512x10x4", Comm: Systolic,
			Chain: Radar(), Platform: Platform(),
			PaperOptimal: 81.21, PaperDataParallel: 18.95,
		},
		Config{
			Name: "Stereo", Size: "256x100", Comm: Systolic,
			Chain: Stereo(), Platform: Platform(),
			PaperOptimal: 43.12, PaperDataParallel: 15.67,
		},
	)
	return out, nil
}
