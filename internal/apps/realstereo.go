package apps

import (
	"fmt"
	"math"

	"pipemap/internal/estimate"
	"pipemap/internal/fxrt"
	"pipemap/internal/kernels"
	"pipemap/internal/model"
)

// StereoRunner executes the multibaseline stereo pipeline for real on the
// fxrt runtime: difference images over disparity levels, windowed error
// images, and the minimum-reduction depth map, with the structure taken
// from a mapping of the 4-task stereo chain (capture, diff, err, depth).
type StereoRunner struct {
	// W and H are the image dimensions (defaults 128 x 64).
	W, H int
	// Disparities is the number of disparity levels (default 8).
	Disparities int
	// DataSets is the stream length per run (default 12).
	DataSets int
	// TrueDisparity is the uniform disparity of the synthetic scene
	// (default 3).
	TrueDisparity int
}

// StereoData flows between stereo stages.
type StereoData struct {
	// Ref and Target are the rectified image pair.
	Ref, Target kernels.Image
	// Errs are the per-disparity error planes.
	Errs []kernels.Image
	// Depth is the recovered depth map.
	Depth kernels.Image
}

// Stereo op names.
const (
	opCapture   = "exec:capture"
	opDiff      = "exec:diff"
	opErr       = "exec:err"
	opDepth     = "exec:depth"
	opBroadcast = "edge:broadcast"
	opReduce    = "edge:reduce"
)

func (r StereoRunner) dims() (w, h, nd, td int) {
	w, h, nd, td = r.W, r.H, r.Disparities, r.TrueDisparity
	if w == 0 {
		w = 128
	}
	if h == 0 {
		h = 64
	}
	if nd == 0 {
		nd = 8
	}
	if td == 0 {
		td = 3
	}
	return w, h, nd, td
}

// Pipeline builds the fxrt pipeline realizing a mapping of the stereo
// chain.
func (r StereoRunner) Pipeline(m model.Mapping) (*fxrt.Pipeline, error) {
	if m.Chain == nil || m.Chain.Len() != 4 {
		return nil, fmt.Errorf("apps: mapping does not cover the 4-task stereo chain")
	}
	var stages []fxrt.Stage
	for _, mod := range m.Modules {
		mod := mod
		stages = append(stages, fxrt.Stage{
			Name:     m.Chain.TaskNames(mod.Lo, mod.Hi),
			Workers:  mod.Procs,
			Replicas: mod.Replicas,
			Run: func(ctx *fxrt.StageCtx, in fxrt.DataSet) (fxrt.DataSet, error) {
				sd, ok := in.(*StereoData)
				if !ok {
					return nil, fmt.Errorf("apps: stereo stage expects StereoData")
				}
				for t := mod.Lo; t < mod.Hi; t++ {
					if err := r.runTask(ctx, t, sd); err != nil {
						return nil, err
					}
				}
				return sd, nil
			},
		})
	}
	return &fxrt.Pipeline{Stages: stages}, nil
}

func (r StereoRunner) runTask(ctx *fxrt.StageCtx, task int, sd *StereoData) error {
	w, h, nd, _ := r.dims()
	switch task {
	case 0: // capture: normalize / preprocess the image pair in place
		return ctx.Rec.Time(opCapture, func() error {
			return ctx.Group.ParallelFor(h, func(y0, y1 int) error {
				for y := y0; y < y1; y++ {
					for x := 0; x < w; x++ {
						sd.Ref.Set(x, y, Clamp01(sd.Ref.At(x, y)))
						sd.Target.Set(x, y, Clamp01(sd.Target.At(x, y)))
					}
				}
				return nil
			})
		})
	case 1: // broadcast + difference images per disparity level
		err := ctx.Rec.Time(opBroadcast, func() error {
			// Redistribution: every disparity worker needs both images.
			refCopy := kernels.NewImage(w, h)
			tgtCopy := kernels.NewImage(w, h)
			copy(refCopy.Pix, sd.Ref.Pix)
			copy(tgtCopy.Pix, sd.Target.Pix)
			sd.Ref, sd.Target = refCopy, tgtCopy
			return nil
		})
		if err != nil {
			return err
		}
		sd.Errs = make([]kernels.Image, nd)
		return ctx.Rec.Time(opDiff, func() error {
			return ctx.Group.ParallelFor(nd, func(d0, d1 int) error {
				for d := d0; d < d1; d++ {
					diff := kernels.NewImage(w, h)
					if err := kernels.DiffImage(sd.Ref, sd.Target, diff, d, 0, h); err != nil {
						return err
					}
					sd.Errs[d] = diff
				}
				return nil
			})
		})
	case 2: // windowed error images
		return ctx.Rec.Time(opErr, func() error {
			return ctx.Group.ParallelFor(nd, func(d0, d1 int) error {
				for d := d0; d < d1; d++ {
					out := kernels.NewImage(w, h)
					if err := kernels.ErrorImage(sd.Errs[d], out, 2, 0, h); err != nil {
						return err
					}
					sd.Errs[d] = out
				}
				return nil
			})
		})
	case 3: // reduction across disparities to the depth map
		err := ctx.Rec.Time(opReduce, func() error {
			// Redistribution: gather the disparity planes row-major.
			return nil // planes are already shared in-process
		})
		if err != nil {
			return err
		}
		sd.Depth = kernels.NewImage(w, h)
		return ctx.Rec.Time(opDepth, func() error {
			return ctx.Group.ParallelFor(h, func(y0, y1 int) error {
				return kernels.DepthMin(sd.Errs, sd.Depth, y0, y1)
			})
		})
	default:
		return fmt.Errorf("apps: stereo task index %d out of range", task)
	}
}

func Clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Run executes the mapping on the runtime and returns measured
// statistics. The last data set's depth map accuracy can be verified with
// VerifyDepth.
func (r StereoRunner) Run(m model.Mapping) (fxrt.Stats, *StereoData, error) {
	p, err := r.Pipeline(m)
	if err != nil {
		return fxrt.Stats{}, nil, err
	}
	n := r.DataSets
	if n <= 0 {
		n = 12
	}
	var last *StereoData
	// Wrap the final stage to capture the last output.
	lastStage := &p.Stages[len(p.Stages)-1]
	innerRun := lastStage.Run
	lastStage.Run = func(ctx *fxrt.StageCtx, in fxrt.DataSet) (fxrt.DataSet, error) {
		out, err := innerRun(ctx, in)
		if sd, ok := out.(*StereoData); ok {
			last = sd
		}
		return out, err
	}
	stats, err := p.Run(func(i int) fxrt.DataSet {
		return r.input(i)
	}, n, 0)
	return stats, last, err
}

// input synthesizes the i-th image pair: a deterministic textured
// reference and a target shifted by the scene's true disparity.
func (r StereoRunner) input(i int) *StereoData {
	w, h, _, td := r.dims()
	ref := kernels.NewImage(w, h)
	for idx := range ref.Pix {
		// Deterministic texture with enough variation for matching.
		ref.Pix[idx] = 0.5 + 0.5*math.Sin(float64(idx*31+i*7)*0.7)
	}
	target := kernels.NewImage(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x-td >= 0 {
				target.Set(x, y, ref.At(x-td, y))
			}
		}
	}
	return &StereoData{Ref: ref, Target: target}
}

// VerifyDepth reports the fraction of interior pixels whose recovered
// disparity matches the synthetic scene's true disparity.
func (r StereoRunner) VerifyDepth(sd *StereoData) float64 {
	if sd == nil || len(sd.Depth.Pix) == 0 {
		return 0
	}
	w, h, _, td := r.dims()
	good, total := 0, 0
	for y := 4; y < h-4; y++ {
		for x := 4; x < w-td-4; x++ {
			total++
			if int(sd.Depth.At(x, y)) == td {
				good++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(good) / float64(total)
}

var _ estimate.Profiler = StereoRunner{}

// Profile implements estimate.Profiler with real measured op times.
func (r StereoRunner) Profile(m model.Mapping) (estimate.Measurement, error) {
	stats, _, err := r.Run(m)
	if err != nil {
		return estimate.Measurement{}, err
	}
	ops := stats.Ops
	return estimate.Measurement{
		TaskExec: []float64{ops[opCapture], ops[opDiff], ops[opErr], ops[opDepth]},
		EdgeComm: []float64{ops[opBroadcast], 0, ops[opReduce]},
	}, nil
}

// StereoStructure returns the 4-task chain structure for fitting real
// stereo profiles.
func StereoStructure() *model.Chain {
	base := Stereo()
	c := &model.Chain{
		Tasks: make([]model.Task, 4),
		ICom:  []model.CostFunc{model.ZeroExec(), model.ZeroExec(), model.ZeroExec()},
		ECom:  []model.CommFunc{model.ZeroComm(), model.ZeroComm(), model.ZeroComm()},
	}
	for i := range c.Tasks {
		c.Tasks[i] = base.Tasks[i]
		c.Tasks[i].Exec = model.ZeroExec()
		c.Tasks[i].Mem = model.Memory{}
	}
	return c
}
