package apps

import (
	"context"
	"encoding/json"
	"testing"
	"time"

	"pipemap/internal/fxrt"
	"pipemap/internal/ingest"
	"pipemap/internal/model"
)

// submitOne runs one decoded input through a fresh plane over the
// pipeline and returns the encoded result.
func submitOne(t *testing.T, codec ingest.Codec, pl *fxrt.Pipeline, opts fxrt.StreamOptions, input string) map[string]any {
	t.Helper()
	p, err := ingest.New(ingest.Config{DefaultBudget: time.Minute}, pl, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Drain()
	ds, err := codec.Decode(json.RawMessage(input))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	out, err := p.Submit(context.Background(), "", ds, 0)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if out.Err != nil {
		t.Fatalf("outcome: %v", out.Err)
	}
	enc, err := codec.Encode(out.Output)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	// Round-trip through JSON exactly as the HTTP handler would.
	raw, err := json.Marshal(enc)
	if err != nil {
		t.Fatalf("marshal result: %v", err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestFFTHistCodecEndToEnd(t *testing.T) {
	r := FFTHistRunner{N: 64}
	c := FFTHistStructure(r.N)
	m := model.Mapping{Chain: c, Modules: []model.Module{
		{Lo: 0, Hi: 2, Procs: 2, Replicas: 1},
		{Lo: 2, Hi: 3, Procs: 1, Replicas: 1},
	}}
	pl, edges, err := r.Pipeline(m)
	if err != nil {
		t.Fatal(err)
	}
	res := submitOne(t, FFTHistCodec{Runner: r}, pl, fxrt.StreamOptions{Edges: edges}, `{"seed": 3}`)
	if res["count"].(float64) != float64(r.N*r.N) {
		t.Fatalf("histogram count = %v, want %d", res["count"], r.N*r.N)
	}
}

func TestFFTHistCodecRejectsBadData(t *testing.T) {
	c := FFTHistCodec{Runner: FFTHistRunner{N: 8}}
	if _, err := c.Decode(json.RawMessage(`{"data": [1, 2, 3]}`)); err == nil {
		t.Fatal("short data accepted")
	}
	if _, err := c.Decode(json.RawMessage(`not json`)); err == nil {
		t.Fatal("malformed input accepted")
	}
	if _, err := c.Decode(nil); err != nil {
		t.Fatalf("empty input rejected: %v", err)
	}
}

func TestRadarCodecEndToEnd(t *testing.T) {
	r := RadarRunner{Pulses: 8, Gates: 64}
	pl, _, err := r.Pipeline(radarMapping(RadarStructure()))
	if err != nil {
		t.Fatal(err)
	}
	res := submitOne(t, RadarCodec{Runner: r}, pl, fxrt.StreamOptions{},
		`{"target_gate": 20, "target_doppler": 3}`)
	if res["detections"].(float64) <= 0 {
		t.Fatalf("no detections for an injected target: %v", res)
	}
	top := res["top"].([]any)
	if len(top) == 0 {
		t.Fatal("no top detections reported")
	}
	best := top[0].(map[string]any)
	if int(best["range"].(float64)) != 20 {
		t.Fatalf("strongest detection at range %v, want the injected gate 20", best["range"])
	}
}

func TestRadarCodecValidatesTarget(t *testing.T) {
	c := RadarCodec{Runner: RadarRunner{Pulses: 8, Gates: 64}}
	if _, err := c.Decode(json.RawMessage(`{"target_gate": 1000}`)); err == nil {
		t.Fatal("out-of-range target gate accepted")
	}
}

func TestStereoCodecEndToEnd(t *testing.T) {
	r := StereoRunner{W: 64, H: 32}
	c := StereoStructure()
	m := model.Mapping{Chain: c, Modules: []model.Module{
		{Lo: 0, Hi: 2, Procs: 2, Replicas: 1},
		{Lo: 2, Hi: 4, Procs: 2, Replicas: 1},
	}}
	pl, err := r.Pipeline(m)
	if err != nil {
		t.Fatal(err)
	}
	res := submitOne(t, StereoCodec{Runner: r}, pl, fxrt.StreamOptions{}, "")
	if acc := res["accuracy"].(float64); acc < 0.8 {
		t.Fatalf("depth accuracy %v, want >= 0.8 on the synthetic scene", acc)
	}
}
