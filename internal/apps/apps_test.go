package apps

import (
	"testing"

	"pipemap/internal/dp"
	"pipemap/internal/estimate"
	"pipemap/internal/greedy"
	"pipemap/internal/model"
	"pipemap/internal/testutil"
)

func TestFFTHistValidation(t *testing.T) {
	for _, n := range []int{256, 512} {
		for _, comm := range []Comm{Message, Systolic} {
			c, err := FFTHist(n, comm)
			if err != nil {
				t.Fatalf("FFTHist(%d,%v): %v", n, comm, err)
			}
			if err := c.Validate(); err != nil {
				t.Errorf("FFTHist(%d,%v) invalid: %v", n, comm, err)
			}
		}
	}
	if _, err := FFTHist(100, Message); err == nil {
		t.Error("non-power-of-two size accepted")
	}
}

func TestFFTHistMemoryMinimums(t *testing.T) {
	pl := Platform()
	c, err := FFTHist(256, Message)
	if err != nil {
		t.Fatal(err)
	}
	// The paper: each instance of module 1 (colffts) needs >= 3 processors
	// and module 2 (rowffts+hist) >= 4.
	if got := c.ModuleMinProcs(0, 1, pl.MemPerProc); got != 3 {
		t.Errorf("colffts min procs = %d, want 3", got)
	}
	if got := c.ModuleMinProcs(1, 3, pl.MemPerProc); got != 4 {
		t.Errorf("rowffts+hist min procs = %d, want 4", got)
	}
	c512, err := FFTHist(512, Message)
	if err != nil {
		t.Fatal(err)
	}
	if got := c512.ModuleMinProcs(0, 1, pl.MemPerProc); got != 12 {
		t.Errorf("512 colffts min procs = %d, want 12", got)
	}
	if got := c512.ModuleMinProcs(1, 3, pl.MemPerProc); got != 12 {
		t.Errorf("512 rowffts+hist min procs = %d, want 12", got)
	}
}

func TestFFTHist256MessageReproducesPaperMapping(t *testing.T) {
	// Table 1, row 1: module 1 = {colffts} with 3 procs x 8 instances;
	// module 2 = {rowffts, hist} with 4 procs x 10 instances; predicted
	// throughput 14.60 data sets/s.
	c, err := FFTHist(256, Message)
	if err != nil {
		t.Fatal(err)
	}
	m, err := dp.MapChain(c, Platform(), dp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Modules) != 2 {
		t.Fatalf("got %d modules, want 2: %v", len(m.Modules), &m)
	}
	m1, m2 := m.Modules[0], m.Modules[1]
	if m1.Hi != 1 || m2.Lo != 1 {
		t.Fatalf("clustering %v, want {colffts} {rowffts,hist}", &m)
	}
	if m1.Procs != 3 || m1.Replicas != 8 || m2.Procs != 4 || m2.Replicas != 10 {
		t.Errorf("mapping %v, want p1=3 r1=8 p2=4 r2=10", &m)
	}
	if thr := m.Throughput(); thr < 13.0 || thr > 16.5 {
		t.Errorf("throughput %g outside the paper's band (14.60)", thr)
	}
}

func TestTable2RatiosInBand(t *testing.T) {
	// The optimal/data-parallel ratio shape of Table 2 must hold: each
	// config's reproduction ratio within ~35%% of the paper's, and the
	// ordering FFT-Hist-256 >> Radar > Stereo > FFT-Hist-512 preserved
	// loosely (the paper's band is 2-9x).
	cfgs, err := Table2Configs()
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range cfgs {
		m, err := dp.MapChain(cfg.Chain, cfg.Platform, dp.Options{})
		if err != nil {
			t.Fatalf("%s %s: %v", cfg.Name, cfg.Size, err)
		}
		dpl := model.DataParallel(cfg.Chain, cfg.Platform)
		ratio := m.Throughput() / dpl.Throughput()
		paper := cfg.PaperOptimal / cfg.PaperDataParallel
		if ratio < paper*0.65 || ratio > paper*1.35 {
			t.Errorf("%s %s %s: ratio %.2f vs paper %.2f out of band",
				cfg.Name, cfg.Size, cfg.Comm, ratio, paper)
		}
		if ratio < 1.5 {
			t.Errorf("%s: optimal must clearly beat data parallel, ratio %.2f", cfg.Name, ratio)
		}
	}
}

func TestGreedyMatchesDPOnAllConfigs(t *testing.T) {
	// Section 6.3's key result: for all application configurations the
	// greedy heuristic reaches the same (optimal) throughput as DP.
	cfgs, err := Table2Configs()
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range cfgs {
		d, err := dp.MapChain(cfg.Chain, cfg.Platform, dp.Options{})
		if err != nil {
			t.Fatal(err)
		}
		g, err := greedy.Map(cfg.Chain, cfg.Platform, greedy.Options{Backtrack: 2})
		if err != nil {
			t.Fatal(err)
		}
		if !testutil.AlmostEqual(d.Throughput(), g.Throughput(), 0.01) {
			t.Errorf("%s %s %s: greedy %.3f vs DP %.3f",
				cfg.Name, cfg.Size, cfg.Comm, g.Throughput(), d.Throughput())
		}
	}
}

func TestFFTHistRunnerEndToEnd(t *testing.T) {
	r := FFTHistRunner{N: 64, DataSets: 8}
	c := FFTHistStructure(64)
	m := model.Mapping{Chain: c, Modules: []model.Module{
		{Lo: 0, Hi: 1, Procs: 2, Replicas: 2},
		{Lo: 1, Hi: 3, Procs: 2, Replicas: 1},
	}}
	stats, err := r.Run(m)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Throughput <= 0 {
		t.Errorf("throughput %g", stats.Throughput)
	}
	for _, op := range []string{opColFFTs, opRowFFTs, opHist, opTranspose, opHistMerge} {
		if _, ok := stats.Ops[op]; !ok {
			t.Errorf("missing measured op %s: %v", op, stats.Ops)
		}
	}
}

func TestFFTHistRunnerMergedMapping(t *testing.T) {
	r := FFTHistRunner{N: 32, DataSets: 4}
	c := FFTHistStructure(32)
	m := model.DataParallel(c, model.Platform{Procs: 4})
	stats, err := r.Run(m)
	if err != nil {
		t.Fatal(err)
	}
	if stats.DataSets != 4 {
		t.Errorf("processed %d data sets", stats.DataSets)
	}
}

func TestFFTHistRunnerProfileFitsModel(t *testing.T) {
	// The full feedback loop on the real runtime: profile the 8 training
	// runs, fit the polynomial model, and predict a mapping.
	if testing.Short() {
		t.Skip("real-runtime profiling")
	}
	r := FFTHistRunner{N: 64, DataSets: 6}
	structure := FFTHistStructure(64)
	pl := model.Platform{Procs: 8} // workers, not physical processors
	fitted, err := estimate.EstimateChain(structure, r, pl)
	if err != nil {
		t.Fatal(err)
	}
	m, err := dp.MapChain(fitted, pl, dp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(pl); err != nil {
		t.Errorf("predicted mapping invalid: %v", err)
	}
	if m.Throughput() <= 0 {
		t.Error("predicted throughput not positive")
	}
}

func TestFFTHistRunnerErrors(t *testing.T) {
	r := FFTHistRunner{N: 100}
	c := FFTHistStructure(64)
	m := model.DataParallel(c, model.Platform{Procs: 2})
	if _, err := r.Run(m); err == nil {
		t.Error("non-power-of-two size accepted")
	}
	r2 := FFTHistRunner{N: 32}
	short := &model.Chain{Tasks: []model.Task{{Name: "x", Exec: model.ZeroExec()}}}
	bad := model.DataParallel(short, model.Platform{Procs: 2})
	if _, err := r2.Run(bad); err == nil {
		t.Error("wrong chain shape accepted")
	}
}

func TestTableConfigsComplete(t *testing.T) {
	t1, err := Table1Configs()
	if err != nil {
		t.Fatal(err)
	}
	if len(t1) != 4 {
		t.Errorf("Table 1 has %d configs, want 4", len(t1))
	}
	t2, err := Table2Configs()
	if err != nil {
		t.Fatal(err)
	}
	if len(t2) != 6 {
		t.Errorf("Table 2 has %d configs, want 6", len(t2))
	}
	for _, cfg := range t2 {
		if cfg.PaperOptimal <= 0 || cfg.PaperDataParallel <= 0 {
			t.Errorf("%s missing paper reference numbers", cfg.Name)
		}
	}
}

func TestCommString(t *testing.T) {
	if Message.String() != "Message" || Systolic.String() != "Systolic" {
		t.Error("Comm.String misbehaves")
	}
}
