package apps

import (
	"testing"

	"pipemap/internal/dp"
	"pipemap/internal/greedy"
	"pipemap/internal/model"
)

// TestCalibrationReport logs the predicted mappings for every
// configuration; run with -v to inspect during calibration.
func TestCalibrationReport(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration report")
	}
	cfgs, err := Table2Configs()
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range cfgs {
		m, err := dp.MapChain(cfg.Chain, cfg.Platform, dp.Options{})
		if err != nil {
			t.Errorf("%s %s %s: DP failed: %v", cfg.Name, cfg.Size, cfg.Comm, err)
			continue
		}
		g, err := greedy.Map(cfg.Chain, cfg.Platform, greedy.Options{Backtrack: 2})
		if err != nil {
			t.Errorf("%s: greedy failed: %v", cfg.Name, err)
			continue
		}
		dpl := model.DataParallel(cfg.Chain, cfg.Platform)
		t.Logf("%s %s %s:\n  dp     %v thr=%.3f\n  greedy %v thr=%.3f\n  datapar thr=%.3f ratio=%.2f (paper %.2f / %.2f ratio %.2f)",
			cfg.Name, cfg.Size, cfg.Comm,
			&m, m.Throughput(), &g, g.Throughput(),
			dpl.Throughput(), m.Throughput()/dpl.Throughput(),
			cfg.PaperOptimal, cfg.PaperDataParallel,
			ratioOrZero(cfg.PaperOptimal, cfg.PaperDataParallel))
	}
}

func ratioOrZero(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
