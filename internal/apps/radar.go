package apps

import "pipemap/internal/model"

// Radar builds the narrowband tracking radar chain (512 range gates x 10
// pulses x 4 channels per coherent interval, per Table 2). The pipeline is
// pulse compression -> corner turn -> Doppler processing -> CFAR -> track
// update. Data sets are small, so fixed communication overheads dominate
// at large processor counts and the data parallel mapping wastes most of
// the machine; the optimal mapping replicates the compute stages heavily
// (Table 2 reports a 4.3x advantage). The track-update stage carries state
// across data sets and is therefore not replicable, which is what bounds
// the optimal throughput.
func Radar() *model.Chain {
	return &model.Chain{
		Tasks: []model.Task{
			{
				Name:       "pulsecomp",
				Exec:       model.PolyExec{C1: 0.002, C2: 0.030, C3: 0.00006},
				Mem:        model.Memory{Data: 0.45},
				Replicable: true,
			},
			{
				Name:       "doppler",
				Exec:       model.PolyExec{C1: 0.0015, C2: 0.018, C3: 0.00006},
				Mem:        model.Memory{Data: 0.45},
				Replicable: true,
			},
			{
				Name:       "cfar",
				Exec:       model.PolyExec{C1: 0.0018, C2: 0.012, C3: 0.00008},
				Mem:        model.Memory{Data: 0.3},
				Replicable: true,
			},
			{
				Name:       "track",
				Exec:       model.PolyExec{C1: 0.008, C2: 0.004, C3: 0.0003},
				Mem:        model.Memory{Data: 0.1},
				Replicable: false, // tracker state carries across data sets
			},
		},
		ICom: []model.CostFunc{
			// Corner turn between pulse compression and Doppler.
			model.PolyExec{C1: 0.0008, C2: 0.006, C3: 0.00005},
			// Doppler -> CFAR shares the Doppler-major distribution.
			model.ZeroExec(),
			// CFAR -> track: detection list gather.
			model.PolyExec{C1: 0.0004, C2: 0.001, C3: 0.00003},
		},
		ECom: []model.CommFunc{
			model.PolyComm{C1: 0.0015, C2: 0.006, C3: 0.006, C4: 0.00005, C5: 0.00005},
			model.PolyComm{C1: 0.0025, C2: 0.008, C3: 0.008, C4: 0.00005, C5: 0.00005},
			model.PolyComm{C1: 0.0010, C2: 0.002, C3: 0.002, C4: 0.00003, C5: 0.00003},
		},
	}
}
