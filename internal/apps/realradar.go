package apps

import (
	"fmt"
	"math"
	"sync"

	"pipemap/internal/estimate"
	"pipemap/internal/fxrt"
	"pipemap/internal/kernels"
	"pipemap/internal/model"
)

// RadarRunner executes the narrowband tracking radar pipeline for real on
// the fxrt runtime: matched filtering, Doppler processing and CFAR
// detection with the kernels package, plus a stateful track-update stage.
// The pipeline structure comes from a mapping of the 4-task radar chain.
type RadarRunner struct {
	// Pulses and Gates give the coherent-interval cube shape (powers of
	// two; defaults 16 x 256).
	Pulses, Gates int
	// DataSets is the stream length per run (default 12).
	DataSets int
	// TargetGate and TargetDoppler locate the synthetic target injected
	// into every data set (defaults gates/4 and 3).
	TargetGate, TargetDoppler int
}

// RadarData flows between the radar stages.
type RadarData struct {
	// Cube is the pulses x gates coherent-interval sample cube, mutated in
	// place as it flows through the stages.
	Cube kernels.Matrix
	// Dets are the CFAR detections gathered after the cfar task.
	Dets []kernels.Detection
}

// Radar op names for recorded measurements.
const (
	opPulseComp  = "exec:pulsecomp"
	opDoppler    = "exec:doppler"
	opCFAR       = "exec:cfar"
	opTrack      = "exec:track"
	opCornerTurn = "edge:cornerturn"
	opDetGather  = "edge:detgather"
)

func (r RadarRunner) dims() (pulses, gates int) {
	pulses, gates = r.Pulses, r.Gates
	if pulses == 0 {
		pulses = 16
	}
	if gates == 0 {
		gates = 256
	}
	return pulses, gates
}

// Pipeline builds the fxrt pipeline realizing a mapping of the radar
// chain (pulsecomp, doppler, cfar, track). The returned map accumulates
// per-cell track hit counts as data sets flow.
func (r RadarRunner) Pipeline(m model.Mapping) (*fxrt.Pipeline, map[[2]int]int, error) {
	pulses, gates := r.dims()
	if pulses&(pulses-1) != 0 || gates&(gates-1) != 0 {
		return nil, nil, fmt.Errorf("apps: radar cube %dx%d must have power-of-two dimensions", pulses, gates)
	}
	if m.Chain == nil || m.Chain.Len() != 4 {
		return nil, nil, fmt.Errorf("apps: mapping does not cover the 4-task radar chain")
	}
	chirpFreq, err := r.chirpFreq()
	if err != nil {
		return nil, nil, err
	}
	// Track state is shared by the (single, non-replicable) track stage.
	var trackMu sync.Mutex
	tracks := map[[2]int]int{} // (doppler, gate) -> hit count

	var stages []fxrt.Stage
	for _, mod := range m.Modules {
		mod := mod
		stages = append(stages, fxrt.Stage{
			Name:     m.Chain.TaskNames(mod.Lo, mod.Hi),
			Workers:  mod.Procs,
			Replicas: mod.Replicas,
			Run: func(ctx *fxrt.StageCtx, in fxrt.DataSet) (fxrt.DataSet, error) {
				rd, ok := in.(*RadarData)
				if !ok {
					return nil, fmt.Errorf("apps: radar stage expects RadarData")
				}
				for t := mod.Lo; t < mod.Hi; t++ {
					if err := r.runTask(ctx, t, rd, chirpFreq, &trackMu, tracks); err != nil {
						return nil, err
					}
				}
				return rd, nil
			},
		})
	}
	return &fxrt.Pipeline{Stages: stages}, tracks, nil
}

func (r RadarRunner) runTask(ctx *fxrt.StageCtx, task int, rd *RadarData,
	chirpFreq []complex128, trackMu *sync.Mutex, tracks map[[2]int]int) error {
	pulses, gates := r.dims()
	switch task {
	case 0: // pulse compression over rows (pulses)
		return ctx.Rec.Time(opPulseComp, func() error {
			return ctx.Group.ParallelFor(pulses, func(r0, r1 int) error {
				return kernels.MatchedFilter(rd.Cube, chirpFreq, r0, r1)
			})
		})
	case 1: // corner turn (redistribution) then Doppler FFT over columns
		err := ctx.Rec.Time(opCornerTurn, func() error {
			fresh := kernels.NewMatrix(pulses, gates)
			err := ctx.Group.ParallelFor(pulses, func(r0, r1 int) error {
				copy(fresh.Data[r0*gates:r1*gates], rd.Cube.Data[r0*gates:r1*gates])
				return nil
			})
			rd.Cube = fresh
			return err
		})
		if err != nil {
			return err
		}
		return ctx.Rec.Time(opDoppler, func() error {
			return ctx.Group.ParallelFor(gates, func(c0, c1 int) error {
				return kernels.DopplerFFT(rd.Cube, c0, c1)
			})
		})
	case 2: // magnitude + CFAR over Doppler rows
		w := ctx.Group.Workers()
		parts := make([][]kernels.Detection, w)
		err := ctx.Rec.Time(opCFAR, func() error {
			return ctx.Group.ParallelFor(w, func(i0, i1 int) error {
				for i := i0; i < i1; i++ {
					r0, r1 := fxrt.BlockRange(pulses, w, i)
					if r0 >= r1 {
						continue
					}
					kernels.PowerRows(rd.Cube, r0, r1)
					parts[i] = kernels.CFAR(rd.Cube, 2, 8, 12, r0, r1)
				}
				return nil
			})
		})
		if err != nil {
			return err
		}
		return ctx.Rec.Time(opDetGather, func() error {
			rd.Dets = rd.Dets[:0]
			for _, p := range parts {
				rd.Dets = append(rd.Dets, p...)
			}
			return nil
		})
	case 3: // track update (stateful, serialized)
		return ctx.Rec.Time(opTrack, func() error {
			trackMu.Lock()
			defer trackMu.Unlock()
			for _, d := range rd.Dets {
				tracks[[2]int{d.Doppler, d.Range}]++
			}
			return nil
		})
	default:
		return fmt.Errorf("apps: radar task index %d out of range", task)
	}
}

func (r RadarRunner) chirpFreq() ([]complex128, error) {
	_, gates := r.dims()
	return RadarChirp(gates)
}

// RadarChirp synthesizes the frequency-domain matched-filter reference: a
// 16-tap quadratic-phase chirp zero-padded to gates samples, FFT'd in
// place. It is shared by the runner and by pipegen-generated radar
// executors, which must filter against bit-identical coefficients.
func RadarChirp(gates int) ([]complex128, error) {
	chirp := make([]complex128, gates)
	for j := 0; j < 16 && j < gates; j++ {
		chirp[j] = radarChirpTap(j)
	}
	if err := kernels.FFT(chirp); err != nil {
		return nil, err
	}
	return chirp, nil
}

// radarChirpTap is the j-th time-domain tap of the synthetic chirp.
func radarChirpTap(j int) complex128 {
	phase := 0.08 * float64(j*j)
	return complex(math.Cos(phase), math.Sin(phase))
}

// Run executes the mapping on the runtime, returning the measured
// statistics and the accumulated track hit counts keyed by
// (doppler, range gate).
func (r RadarRunner) Run(m model.Mapping) (fxrt.Stats, map[[2]int]int, error) {
	p, tracks, err := r.Pipeline(m)
	if err != nil {
		return fxrt.Stats{}, nil, err
	}
	n := r.DataSets
	if n <= 0 {
		n = 12
	}
	stats, err := p.Run(func(i int) fxrt.DataSet {
		return r.input(i)
	}, n, 0)
	return stats, tracks, err
}

// target resolves the synthetic target cell, applying defaults.
func (r RadarRunner) target() (gate, doppler int) {
	_, gates := r.dims()
	gate, doppler = r.TargetGate, r.TargetDoppler
	if gate == 0 {
		gate = gates / 4
	}
	if doppler == 0 {
		doppler = 3
	}
	return gate, doppler
}

// input synthesizes the i-th coherent-interval cube: deterministic
// low-level clutter plus the target echo at the runner's target cell.
func (r RadarRunner) input(i int) *RadarData {
	tg, td := r.target()
	return r.inputAt(i, tg, td)
}

// inputAt synthesizes a cube with the target at (gate tg, doppler td).
func (r RadarRunner) inputAt(i, tg, td int) *RadarData {
	pulses, gates := r.dims()
	chirp := make([]complex128, 16)
	for j := range chirp {
		chirp[j] = radarChirpTap(j)
	}
	cube := kernels.NewMatrix(pulses, gates)
	for idx := range cube.Data {
		cube.Data[idx] = complex(0.02*math.Sin(float64(idx+i)), 0)
	}
	for pu := 0; pu < pulses; pu++ {
		ph := 2 * math.Pi * float64(td) * float64(pu) / float64(pulses)
		rot := complex(math.Cos(ph), math.Sin(ph))
		for j := 0; j < len(chirp) && tg+j < gates; j++ {
			cube.Set(pu, tg+j, cube.At(pu, tg+j)+chirp[j]*rot*complex(2, 0))
		}
	}
	return &RadarData{Cube: cube}
}

var _ estimate.Profiler = RadarRunner{}

// Profile implements estimate.Profiler with real measured op times.
func (r RadarRunner) Profile(m model.Mapping) (estimate.Measurement, error) {
	stats, _, err := r.Run(m)
	if err != nil {
		return estimate.Measurement{}, err
	}
	ops := stats.Ops
	return estimate.Measurement{
		TaskExec: []float64{ops[opPulseComp], ops[opDoppler], ops[opCFAR], ops[opTrack]},
		EdgeComm: []float64{ops[opCornerTurn], 0, ops[opDetGather]},
	}, nil
}

// RadarStructure returns the 4-task chain structure for fitting real
// radar profiles.
func RadarStructure() *model.Chain {
	base := Radar()
	c := &model.Chain{
		Tasks: make([]model.Task, 4),
		ICom:  []model.CostFunc{model.ZeroExec(), model.ZeroExec(), model.ZeroExec()},
		ECom:  []model.CommFunc{model.ZeroComm(), model.ZeroComm(), model.ZeroComm()},
	}
	for i := range c.Tasks {
		c.Tasks[i] = base.Tasks[i]
		c.Tasks[i].Exec = model.ZeroExec()
		c.Tasks[i].Mem = model.Memory{} // real runs are not memory bound
	}
	return c
}
