// Package testutil provides shared helpers for testing the mapping
// algorithms: deterministic random chain generators and comparison
// utilities.
package testutil

import (
	"math"
	"math/rand"

	"pipemap/internal/model"
)

// RandChainConfig bounds the random chains produced by RandChain.
type RandChainConfig struct {
	// MinTasks and MaxTasks bound the chain length (inclusive).
	MinTasks, MaxTasks int
	// MaxMinProcs bounds the per-task memory-implied minimum processors
	// (at least 1).
	MaxMinProcs int
	// AllowNonReplicable lets some tasks be marked non-replicable.
	AllowNonReplicable bool
}

// DefaultRandChainConfig is a reasonable default for small-instance
// cross-checking against brute force.
func DefaultRandChainConfig() RandChainConfig {
	return RandChainConfig{MinTasks: 2, MaxTasks: 4, MaxMinProcs: 3, AllowNonReplicable: true}
}

// RandChain generates a random well-behaved chain (positive polynomial
// coefficients) from rng, plus a platform whose memory capacity induces the
// generated per-task minimum processor counts.
func RandChain(rng *rand.Rand, cfg RandChainConfig, procs int) (*model.Chain, model.Platform) {
	if cfg.MinTasks < 1 {
		cfg.MinTasks = 1
	}
	if cfg.MaxTasks < cfg.MinTasks {
		cfg.MaxTasks = cfg.MinTasks
	}
	if cfg.MaxMinProcs < 1 {
		cfg.MaxMinProcs = 1
	}
	k := cfg.MinTasks + rng.Intn(cfg.MaxTasks-cfg.MinTasks+1)
	const capacity = 1000.0 // bytes per processor
	c := &model.Chain{
		Tasks: make([]model.Task, k),
		ICom:  make([]model.CostFunc, k-1),
		ECom:  make([]model.CommFunc, k-1),
	}
	for i := 0; i < k; i++ {
		min := 1 + rng.Intn(cfg.MaxMinProcs)
		c.Tasks[i] = model.Task{
			Name: string(rune('a' + i)),
			Exec: model.PolyExec{
				C1: rng.Float64() * 0.2,
				C2: 0.5 + rng.Float64()*8,
				C3: rng.Float64() * 0.05,
			},
			// Data sized so the memory model yields exactly `min`
			// processors at the platform capacity.
			Mem:        model.Memory{Data: capacity*float64(min) - capacity/2},
			Replicable: !cfg.AllowNonReplicable || rng.Float64() < 0.7,
		}
	}
	for i := 0; i < k-1; i++ {
		c.ICom[i] = model.PolyExec{
			C1: rng.Float64() * 0.1,
			C2: rng.Float64() * 2,
			C3: rng.Float64() * 0.02,
		}
		c.ECom[i] = model.PolyComm{
			C1: rng.Float64() * 0.1,
			C2: rng.Float64() * 2,
			C3: rng.Float64() * 2,
			C4: rng.Float64() * 0.02,
			C5: rng.Float64() * 0.02,
		}
	}
	return c, model.Platform{Procs: procs, MemPerProc: capacity}
}

// AlmostEqual reports whether two floats agree to a relative tolerance.
func AlmostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}
