package bench

import (
	"strings"
	"testing"
)

func TestHeuristicQualityStudy(t *testing.T) {
	q, err := HeuristicQuality(30, 3)
	if err != nil {
		t.Fatal(err)
	}
	if q.Trials != 30 {
		t.Fatalf("ran %d trials, want 30", q.Trials)
	}
	// The paper's claim: typically optimal. Expect a clear majority of
	// exact matches and a high mean ratio on random well-behaved chains.
	if q.ExactMatches*2 < q.Trials {
		t.Errorf("only %d/%d exact matches", q.ExactMatches, q.Trials)
	}
	if q.MeanRatio < 0.85 {
		t.Errorf("mean greedy/optimal ratio %.3f below 0.85", q.MeanRatio)
	}
	if q.WorstRatio > q.P50 || q.P50 > 1 {
		t.Errorf("percentiles inconsistent: worst %.3f p50 %.3f", q.WorstRatio, q.P50)
	}
	out := RenderQuality(q)
	if !strings.Contains(out, "exact optimum") {
		t.Errorf("render incomplete:\n%s", out)
	}
}

func TestTrainingSizeStudyEightRunsSuffice(t *testing.T) {
	rows, err := TrainingSizeStudy(0.05, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 3 {
		t.Fatalf("%d rows", len(rows))
	}
	var at4, at8 *TrainingSizeRow
	for i := range rows {
		switch rows[i].Runs {
		case 4:
			at4 = &rows[i]
		case 8:
			at8 = &rows[i]
		}
	}
	if at4 == nil || at8 == nil {
		t.Fatal("missing 4- or 8-run rows")
	}
	// The paper's design size: with 8 runs the model is determined and
	// throughput prediction error is small; with 4 it is underdetermined.
	if at8.ThroughputErrPct > 5 {
		t.Errorf("8-run throughput error %.1f%% too large", at8.ThroughputErrPct)
	}
	if at4.ThroughputErrPct < at8.ThroughputErrPct {
		t.Errorf("4-run fit (%.1f%%) unexpectedly better than 8-run (%.1f%%)",
			at4.ThroughputErrPct, at8.ThroughputErrPct)
	}
	if RenderTrainingSize(rows) == "" {
		t.Error("empty render")
	}
}

func TestSweepCrossoverStructure(t *testing.T) {
	rows, err := Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 5 {
		t.Fatalf("%d sweep rows", len(rows))
	}
	// At the smallest machine the optimum degenerates to data parallel; at
	// the largest the ratio is large; the ratio is non-decreasing overall.
	if rows[0].Ratio > 1.15 {
		t.Errorf("P=%d ratio %.2f; expected near-parity on tiny machines",
			rows[0].Procs, rows[0].Ratio)
	}
	last := rows[len(rows)-1]
	if last.Ratio < 10 {
		t.Errorf("P=%d ratio %.2f; expected a wide gap on large machines",
			last.Procs, last.Ratio)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Ratio < rows[i-1].Ratio*0.9 {
			t.Errorf("ratio regressed at P=%d: %.2f after %.2f",
				rows[i].Procs, rows[i].Ratio, rows[i-1].Ratio)
		}
	}
	// Optimal throughput must grow monotonically with machine size.
	for i := 1; i < len(rows); i++ {
		if rows[i].OptimalThr < rows[i-1].OptimalThr-1e-9 {
			t.Errorf("optimal throughput fell at P=%d", rows[i].Procs)
		}
	}
	if RenderSweep(rows) == "" {
		t.Error("empty render")
	}
}

func TestCommMattersShowsLoss(t *testing.T) {
	rows, err := CommMatters()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("%d rows, want 6", len(rows))
	}
	for _, r := range rows {
		// The oblivious mapping can never beat the aware optimum.
		if r.Oblivious > r.Aware*1.0001 {
			t.Errorf("%s: oblivious %g beats aware %g", r.Name, r.Oblivious, r.Aware)
		}
		if r.LossPct < 0 {
			t.Errorf("%s: negative loss %.2f", r.Name, r.LossPct)
		}
	}
	// The paper's claim needs teeth: at least the FFT-Hist configs must
	// lose substantially when communication is ignored.
	if rows[0].LossPct < 20 {
		t.Errorf("FFT-Hist 256 message loses only %.1f%%; claim not demonstrated", rows[0].LossPct)
	}
	if RenderCommMatters(rows) == "" {
		t.Error("empty render")
	}
}
