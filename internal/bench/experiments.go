package bench

import (
	"fmt"
	"strings"

	"pipemap/internal/apps"
	"pipemap/internal/dp"
	"pipemap/internal/estimate"
	"pipemap/internal/greedy"
	"pipemap/internal/model"
	"pipemap/internal/sim"
)

// AccuracyResult reports the model-accuracy experiment (section 6.3): the
// chain is profiled through the paper's eight training runs on the noisy
// simulator, a polynomial model is fitted, and predictions are compared
// against simulator measurements on a validation set of mappings.
type AccuracyResult struct {
	Name string
	// TaskErrPct and CommErrPct are mean absolute percentage errors of the
	// fitted model's per-task and per-edge predictions.
	TaskErrPct, CommErrPct float64
	// ThroughputErrPct is the mean absolute percentage error of end-to-end
	// throughput predictions across the validation mappings.
	ThroughputErrPct float64
	// Validations is the number of validation mappings.
	Validations int
}

// Accuracy runs the model-accuracy experiment for one configuration. The
// simulator injects `noise` relative measurement noise (the paper observed
// under 10% average modeling error).
func Accuracy(cfg apps.Config, noise float64, seed int64) (AccuracyResult, error) {
	prof := sim.Profiler{Sim: sim.New(sim.Options{DataSets: 24, Noise: noise, Seed: seed})}
	fitted, err := estimate.EstimateChain(cfg.Chain, prof, cfg.Platform)
	if err != nil {
		return AccuracyResult{}, err
	}
	// Validation set: a spread of singleton-module mappings plus merged
	// ones, different from the training plan's exact splits.
	var mappings []model.Mapping
	k := cfg.Chain.Len()
	for _, frac := range []float64{0.35, 0.6, 0.85} {
		mods := make([]model.Module, k)
		used := 0
		feasible := true
		for i := 0; i < k; i++ {
			min := cfg.Chain.ModuleMinProcs(i, i+1, cfg.Platform.MemPerProc)
			if min < 0 {
				feasible = false
				break
			}
			p := min + int(frac*float64(i+2))
			if used+p > cfg.Platform.Procs {
				p = min
			}
			mods[i] = model.Module{Lo: i, Hi: i + 1, Procs: p, Replicas: 1}
			used += p
		}
		if feasible && used <= cfg.Platform.Procs {
			mappings = append(mappings, model.Mapping{Chain: cfg.Chain, Modules: mods})
		}
	}
	if min := cfg.Chain.ModuleMinProcs(0, k, cfg.Platform.MemPerProc); min > 0 && min <= cfg.Platform.Procs {
		p := (min + cfg.Platform.Procs) / 2
		mappings = append(mappings, model.Mapping{Chain: cfg.Chain, Modules: []model.Module{
			{Lo: 0, Hi: k, Procs: p, Replicas: 1},
		}})
	}
	if len(mappings) == 0 {
		return AccuracyResult{}, fmt.Errorf("bench: no validation mappings for %s", cfg.Name)
	}

	meter := sim.Profiler{Sim: sim.New(sim.Options{DataSets: 24, Noise: noise, Seed: seed + 1000})}
	var predTask, measTask, predComm, measComm, predThr, measThr []float64
	for _, m := range mappings {
		meas, err := meter.Profile(m)
		if err != nil {
			return AccuracyResult{}, err
		}
		fm := model.Mapping{Chain: fitted, Modules: m.Modules}
		pred, err := (&estimate.ModelProfiler{Truth: fitted}).Profile(fm)
		if err != nil {
			return AccuracyResult{}, err
		}
		predTask = append(predTask, pred.TaskExec...)
		measTask = append(measTask, meas.TaskExec...)
		predComm = append(predComm, pred.EdgeComm...)
		measComm = append(measComm, meas.EdgeComm...)

		res, err := sim.New(sim.Options{DataSets: 300, Noise: noise, Seed: seed + 2000}).Run(m)
		if err != nil {
			return AccuracyResult{}, err
		}
		predThr = append(predThr, fm.Throughput())
		measThr = append(measThr, res.Throughput)
	}
	return AccuracyResult{
		Name:             fmt.Sprintf("%s %s %s", cfg.Name, cfg.Size, cfg.Comm),
		TaskErrPct:       estimate.MeanAbsPctError(predTask, measTask),
		CommErrPct:       estimate.MeanAbsPctError(predComm, measComm),
		ThroughputErrPct: estimate.MeanAbsPctError(predThr, measThr),
		Validations:      len(mappings),
	}, nil
}

// RenderAccuracy renders accuracy results.
func RenderAccuracy(rows []AccuracyResult) string {
	header := []string{"Config", "task err%", "comm err%", "throughput err%", "validations"}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Name, f2(r.TaskErrPct), f2(r.CommErrPct), f2(r.ThroughputErrPct),
			fmt.Sprintf("%d", r.Validations),
		})
	}
	return renderTable(header, cells)
}

// AgreementRow is one configuration of the DP-versus-greedy comparison
// (the key result of section 6.3: both reach the same optimal mapping).
type AgreementRow struct {
	Name       string
	DPThr      float64
	GreedyThr  float64
	Agree      bool
	DPMaps     string
	GreedyMaps string
}

// Agreement compares the DP and greedy mappings on every configuration.
func Agreement() ([]AgreementRow, error) {
	cfgs, err := apps.Table2Configs()
	if err != nil {
		return nil, err
	}
	var rows []AgreementRow
	for _, cfg := range cfgs {
		d, err := dp.MapChain(cfg.Chain, cfg.Platform, dp.Options{})
		if err != nil {
			return nil, err
		}
		g, err := greedy.Map(cfg.Chain, cfg.Platform, greedy.Options{Backtrack: 2})
		if err != nil {
			return nil, err
		}
		dt, gt := d.Throughput(), g.Throughput()
		rows = append(rows, AgreementRow{
			Name:      fmt.Sprintf("%s %s %s", cfg.Name, cfg.Size, cfg.Comm),
			DPThr:     dt,
			GreedyThr: gt,
			Agree:     gt >= dt*0.995,
			DPMaps:    d.String(), GreedyMaps: g.String(),
		})
	}
	return rows, nil
}

// RenderAgreement renders the agreement table.
func RenderAgreement(rows []AgreementRow) string {
	header := []string{"Config", "DP thr/s", "Greedy thr/s", "agree"}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{r.Name, f2(r.DPThr), f2(r.GreedyThr),
			fmt.Sprintf("%v", r.Agree)})
	}
	return renderTable(header, cells)
}

// PathologyResult reports the section 4 pathology: a cost function with a
// cliff that one-at-a-time greedy cannot cross, where DP stays optimal.
type PathologyResult struct {
	DPThr, GreedyThr, BacktrackThr float64
}

// Pathology builds the paper's 1-versus-10-processors example and compares
// DP, plain greedy, and greedy with bounded backtracking. Crossing the
// cliff requires accepting a long sequence of non-improving steps while a
// neighbour's communication cost inflates; the neighbour-greedy rule
// diverts processors away and never reaches the optimum, while the DP
// does. (Interestingly, the Theorem 1 slowest-only variant does cross the
// cliff here, because it cannot be distracted by the temporarily better
// neighbour moves.)
func Pathology() (PathologyResult, error) {
	c, pl, err := PathologyChain()
	if err != nil {
		return PathologyResult{}, err
	}
	spans := model.Singletons(2)
	d, err := dp.AssignClustered(c, pl, spans, dp.Options{DisableReplication: true})
	if err != nil {
		return PathologyResult{}, err
	}
	g, err := greedy.Assign(c, pl, spans, greedy.Options{DisableReplication: true})
	if err != nil {
		return PathologyResult{}, err
	}
	b, err := greedy.Assign(c, pl, spans, greedy.Options{DisableReplication: true, Backtrack: 2})
	if err != nil {
		return PathologyResult{}, err
	}
	return PathologyResult{
		DPThr: d.Throughput(), GreedyThr: g.Throughput(), BacktrackThr: b.Throughput(),
	}, nil
}

// PathologyChain builds the adversarial two-task chain used by Pathology:
// a smooth task feeding a task whose execution time is flat from 1 to 9
// processors and drops sharply at 10, over an edge whose cost grows with
// the receiver's processor count.
func PathologyChain() (*model.Chain, model.Platform, error) {
	points := map[int]float64{}
	for p := 1; p <= 9; p++ {
		points[p] = 10
	}
	for p := 10; p <= 16; p++ {
		points[p] = 1
	}
	cliff, err := model.NewTableCost(points)
	if err != nil {
		return nil, model.Platform{}, err
	}
	c := &model.Chain{
		Tasks: []model.Task{
			{Name: "smooth", Exec: model.PolyExec{C2: 8}},
			{Name: "cliff", Exec: cliff},
		},
		ICom: []model.CostFunc{model.ZeroExec()},
		ECom: []model.CommFunc{model.PolyComm{C5: 0.3}},
	}
	return c, model.Platform{Procs: 12}, nil
}

// RenderPathology renders the pathology comparison.
func RenderPathology(r PathologyResult) string {
	var b strings.Builder
	b.WriteString("Section 4 pathology: cliff cost function (no benefit from 2..9 procs,\n")
	b.WriteString("large drop at 10) that one-at-a-time greedy cannot cross\n\n")
	fmt.Fprintf(&b, "  DP (optimal):        %.4f data sets/s\n", r.DPThr)
	fmt.Fprintf(&b, "  greedy:              %.4f data sets/s\n", r.GreedyThr)
	fmt.Fprintf(&b, "  greedy + backtrack:  %.4f data sets/s\n", r.BacktrackThr)
	return b.String()
}
