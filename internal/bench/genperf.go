package bench

import (
	"fmt"
	"math"
	"path/filepath"
	"runtime"
	"time"

	"pipemap/internal/apps"
	"pipemap/internal/fxrt"
	"pipemap/internal/gen/ffthist256"
	"pipemap/internal/gen/radar64"
	"pipemap/internal/gen/stereo128"
	"pipemap/internal/kernels"
	"pipemap/internal/model"
)

// This file measures the pipegen payoff: the same mapping structure
// executed by the generic fxrt stream (interface-boxed data sets, one
// channel hop per stage, runtime dispatch) and by the committed generated
// executor (fused modules, typed rings). Both sides run real kernels on
// identical fresh inputs, so the delta is pure executor overhead plus
// whatever fusion saves. Workload sizes are reduced from the spec
// defaults (the comparison targets per-data-set executor overhead, not
// kernel time) and the stream length is capped at genCompareMaxDS; the
// JSON report records per-data-set wall time for each side, honestly.

// genCompareMaxDS caps the comparison stream length so a full perf run
// stays manageable; the per-data-set minima stabilize well below it.
const genCompareMaxDS = 160

// genComparisons keys the spec files that have a committed generated
// executor to their comparison, by spec base name.
var genComparisons = map[string]func(m model.Mapping, dataSets, runs int) (genericNs, generatedNs float64, err error){
	"ffthist256.json": compareFFTHist,
	"radar64.json":    compareRadar,
	"stereo128.json":  compareStereo,
}

// perfGenerated fills the generated-vs-generic columns of sp when the
// spec has a committed generated executor. The freshly solved mapping
// must match the baked one — drift means the committed code is stale.
func perfGenerated(sp *SpecPerf, path string, m model.Mapping, opt PerfOptions) error {
	cmp := genComparisons[filepath.Base(path)]
	if cmp == nil {
		return nil
	}
	n := opt.DataSets
	if n > genCompareMaxDS {
		n = genCompareMaxDS
	}
	// The per-side delta is a few percent, so the comparison needs more
	// repetitions than the solver timings to be stable; it is cheap (tens
	// of milliseconds per side), so floor the reps even in -quick runs.
	runs := opt.Runs
	if runs < 9 {
		runs = 9
	}
	genericNs, generatedNs, err := cmp(m, n, runs)
	if err != nil {
		return err
	}
	sp.GenericNanosPerDS = genericNs
	sp.GeneratedNanosPerDS = generatedNs
	if generatedNs > 0 {
		sp.GeneratedSpeedup = genericNs / generatedNs
	}
	return nil
}

func checkBakedMapping(m model.Mapping, baked string) error {
	if got := m.String(); got != baked {
		return fmt.Errorf("bench: spec solves to %q but the committed executor bakes %q; run make pipegen and commit", got, baked)
	}
	return nil
}

// comparePair times the generic and generated executors over the same
// n data sets, interleaved A/B/A/B for runs rounds, and returns each
// side's best per-data-set nanoseconds. Interleaved min, not
// sequential median: on a single shared CPU the noise sources
// (scheduler preemption, GC pacing, whatever regime the runtime
// settles into) are strictly additive and drift over a process's
// lifetime, so the fastest run is the closest estimate of true
// executor cost, and alternating sides exposes both to the same drift.
func comparePair(n, runs int, generic, generated func() (time.Duration, error)) (float64, float64, error) {
	genericBest, generatedBest := math.Inf(1), math.Inf(1)
	for i := 0; i < runs; i++ {
		// Start each timed run from a collected heap so GC pacing debt
		// from earlier bench phases (or the other side's garbage) cannot
		// land in one side's window.
		runtime.GC()
		d, err := generic()
		if err != nil {
			return 0, 0, err
		}
		if ns := float64(d.Nanoseconds()) / float64(n); ns < genericBest {
			genericBest = ns
		}
		runtime.GC()
		d, err = generated()
		if err != nil {
			return 0, 0, err
		}
		if ns := float64(d.Nanoseconds()) / float64(n); ns < generatedBest {
			generatedBest = ns
		}
	}
	return genericBest, generatedBest, nil
}

// timeGenericStream pushes inputs through a generic stream and returns
// the wall time from first push to last result.
func timeGenericStream(pl *fxrt.Pipeline, edges []fxrt.Edge, inputs []fxrt.DataSet) (time.Duration, error) {
	st, err := pl.Stream(fxrt.StreamOptions{Edges: edges})
	if err != nil {
		return 0, err
	}
	defer st.Close()
	start := time.Now()
	chans := make([]<-chan fxrt.StreamResult, len(inputs))
	for i, in := range inputs {
		ch, err := st.Push(nil, in)
		if err != nil {
			return 0, err
		}
		chans[i] = ch
	}
	for i, ch := range chans {
		if r := <-ch; r.Err != nil {
			return 0, fmt.Errorf("generic data set %d: %w", i, r.Err)
		}
	}
	return time.Since(start), nil
}

func compareFFTHist(m model.Mapping, dataSets, runs int) (float64, float64, error) {
	if err := checkBakedMapping(m, ffthist256.MappingString); err != nil {
		return 0, 0, err
	}
	const n = 16
	runner := apps.FFTHistRunner{N: n}
	mm := model.Mapping{Chain: apps.FFTHistStructure(n), Modules: ffthist256.Modules()}
	pl, edges, err := runner.Pipeline(mm)
	if err != nil {
		return 0, 0, err
	}
	inputs := func() []fxrt.DataSet {
		out := make([]fxrt.DataSet, dataSets)
		for i := range out {
			out[i] = runner.Input(i)
		}
		return out
	}
	return comparePair(dataSets, runs, func() (time.Duration, error) {
		return timeGenericStream(pl, edges, inputs())
	}, func() (time.Duration, error) {
		ex, err := ffthist256.New(ffthist256.Config{N: n})
		if err != nil {
			return 0, err
		}
		defer ex.Close()
		in := inputs()
		start := time.Now()
		if _, err := ex.Run(func(i int) kernels.Matrix { return in[i].(kernels.Matrix) }, dataSets); err != nil {
			return 0, err
		}
		return time.Since(start), nil
	})
}

func compareRadar(m model.Mapping, dataSets, runs int) (float64, float64, error) {
	if err := checkBakedMapping(m, radar64.MappingString); err != nil {
		return 0, 0, err
	}
	const pulses, gates = 8, 32
	runner := apps.RadarRunner{Pulses: pulses, Gates: gates}
	mm := model.Mapping{Chain: apps.RadarStructure(), Modules: radar64.Modules()}
	pl, _, err := runner.Pipeline(mm)
	if err != nil {
		return 0, 0, err
	}
	codec := apps.RadarCodec{Runner: runner}
	inputs := func() ([]fxrt.DataSet, error) {
		out := make([]fxrt.DataSet, dataSets)
		for i := range out {
			ds, err := codec.Decode([]byte(fmt.Sprintf(`{"seed":%d}`, i)))
			if err != nil {
				return nil, err
			}
			out[i] = ds
		}
		return out, nil
	}
	return comparePair(dataSets, runs, func() (time.Duration, error) {
		in, err := inputs()
		if err != nil {
			return 0, err
		}
		return timeGenericStream(pl, nil, in)
	}, func() (time.Duration, error) {
		ex, err := radar64.New(radar64.Config{Pulses: pulses, Gates: gates})
		if err != nil {
			return 0, err
		}
		defer ex.Close()
		in, err := inputs()
		if err != nil {
			return 0, err
		}
		start := time.Now()
		if _, err := ex.Run(func(i int) *apps.RadarData { return in[i].(*apps.RadarData) }, dataSets); err != nil {
			return 0, err
		}
		return time.Since(start), nil
	})
}

func compareStereo(m model.Mapping, dataSets, runs int) (float64, float64, error) {
	if err := checkBakedMapping(m, stereo128.MappingString); err != nil {
		return 0, 0, err
	}
	const w, h, nd = 16, 8, 2
	runner := apps.StereoRunner{W: w, H: h, Disparities: nd}
	mm := model.Mapping{Chain: apps.StereoStructure(), Modules: stereo128.Modules()}
	pl, err := runner.Pipeline(mm)
	if err != nil {
		return 0, 0, err
	}
	codec := apps.StereoCodec{Runner: runner}
	inputs := func() ([]fxrt.DataSet, error) {
		out := make([]fxrt.DataSet, dataSets)
		for i := range out {
			ds, err := codec.Decode([]byte(fmt.Sprintf(`{"seed":%d}`, i)))
			if err != nil {
				return nil, err
			}
			out[i] = ds
		}
		return out, nil
	}
	return comparePair(dataSets, runs, func() (time.Duration, error) {
		in, err := inputs()
		if err != nil {
			return 0, err
		}
		return timeGenericStream(pl, nil, in)
	}, func() (time.Duration, error) {
		ex, err := stereo128.New(stereo128.Config{W: w, H: h, Disparities: nd})
		if err != nil {
			return 0, err
		}
		defer ex.Close()
		in, err := inputs()
		if err != nil {
			return 0, err
		}
		start := time.Now()
		if _, err := ex.Run(func(i int) *apps.StereoData { return in[i].(*apps.StereoData) }, dataSets); err != nil {
			return 0, err
		}
		return time.Since(start), nil
	})
}
