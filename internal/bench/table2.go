package bench

import (
	"fmt"

	"pipemap/internal/apps"
	"pipemap/internal/dp"
	"pipemap/internal/model"
	"pipemap/internal/sim"
)

// Table2Row is one configuration of Table 2: predicted optimal throughput,
// measured (simulated) optimal throughput, their difference, the measured
// data parallel throughput, and the optimal/data-parallel ratio.
type Table2Row struct {
	Name, Size string
	Comm       apps.Comm
	Predicted  float64
	Measured   float64
	PctDiff    float64
	DataPar    float64
	Ratio      float64
	// Paper's reference numbers.
	PaperPredicted, PaperDataPar float64
}

// Table2 reproduces Table 2. The "measured" columns run the mappings on
// the discrete-event simulator with mild measurement noise (seeded), the
// reproduction's stand-in for the paper's iWarp runs.
func Table2(seed int64) ([]Table2Row, error) {
	cfgs, err := apps.Table2Configs()
	if err != nil {
		return nil, err
	}
	var rows []Table2Row
	for i, cfg := range cfgs {
		opt, err := dp.MapChain(cfg.Chain, cfg.Platform, dp.Options{})
		if err != nil {
			return nil, fmt.Errorf("bench: %s: %w", cfg.Name, err)
		}
		s := sim.New(sim.Options{DataSets: 400, Noise: 0.03, Seed: seed + int64(i)})
		meas, err := s.Run(opt)
		if err != nil {
			return nil, fmt.Errorf("bench: simulating %s: %w", cfg.Name, err)
		}
		dmap := model.DataParallel(cfg.Chain, cfg.Platform)
		dmeas, err := s.Run(dmap)
		if err != nil {
			return nil, fmt.Errorf("bench: simulating %s data parallel: %w", cfg.Name, err)
		}
		pred := opt.Throughput()
		row := Table2Row{
			Name: cfg.Name, Size: cfg.Size, Comm: cfg.Comm,
			Predicted:      pred,
			Measured:       meas.Throughput,
			PctDiff:        100 * (meas.Throughput - pred) / pred,
			DataPar:        dmeas.Throughput,
			PaperPredicted: cfg.PaperOptimal, PaperDataPar: cfg.PaperDataParallel,
		}
		if row.DataPar > 0 {
			row.Ratio = row.Measured / row.DataPar
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderTable2 renders Table 2 in the paper's format.
func RenderTable2(rows []Table2Row) string {
	header := []string{"Program", "Size", "Comm", "Pred/s", "Meas/s", "Diff%",
		"DataPar/s", "Ratio", "paperPred", "paperDP"}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Name, r.Size, r.Comm.String(),
			f2(r.Predicted), f2(r.Measured), f2(r.PctDiff),
			f2(r.DataPar), f2(r.Ratio),
			f2(r.PaperPredicted), f2(r.PaperDataPar),
		})
	}
	return renderTable(header, cells)
}
