package bench

import (
	"fmt"

	"pipemap/internal/apps"
	"pipemap/internal/dp"
	"pipemap/internal/machine"
	"pipemap/internal/model"
)

// Table1Row is one configuration of Table 1: the unconstrained optimal
// mapping and the optimal mapping feasible on the 8x8 rectangular array.
type Table1Row struct {
	Size string
	Comm apps.Comm
	// Optimal is the unconstrained optimal mapping; Feasible respects the
	// grid (and pathway limits in systolic mode).
	Optimal, Feasible model.Mapping
	// OptimalThr and FeasibleThr are predicted throughputs.
	OptimalThr, FeasibleThr float64
	// PaperThr is the paper's predicted optimal throughput for reference.
	PaperThr float64
}

// Table1 reproduces Table 1: optimal and feasible-optimal mappings for the
// four FFT-Hist configurations on the 64-processor machine.
func Table1() ([]Table1Row, error) {
	cfgs, err := apps.Table1Configs()
	if err != nil {
		return nil, err
	}
	grid := machine.Grid{Rows: 8, Cols: 8}
	var rows []Table1Row
	for _, cfg := range cfgs {
		opt, err := dp.MapChain(cfg.Chain, cfg.Platform, dp.Options{})
		if err != nil {
			return nil, fmt.Errorf("bench: %s %s: %w", cfg.Size, cfg.Comm, err)
		}
		cons := machine.Constraints{Grid: grid, Systolic: cfg.Comm == apps.Systolic}
		feas, _, err := machine.FeasibleOptimal(cfg.Chain, cfg.Platform, cons, dp.Options{})
		if err != nil {
			return nil, fmt.Errorf("bench: feasible %s %s: %w", cfg.Size, cfg.Comm, err)
		}
		rows = append(rows, Table1Row{
			Size: cfg.Size, Comm: cfg.Comm,
			Optimal: opt, Feasible: feas,
			OptimalThr: opt.Throughput(), FeasibleThr: feas.Throughput(),
			PaperThr: cfg.PaperOptimal,
		})
	}
	return rows, nil
}

// RenderTable1 renders Table 1 in the paper's format.
func RenderTable1(rows []Table1Row) string {
	header := []string{"Data set", "Comm", "Optimal mapping", "thr/s", "Feasible mapping", "thr/s", "paper"}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Size, r.Comm.String(),
			r.Optimal.String(), f2(r.OptimalThr),
			r.Feasible.String(), f2(r.FeasibleThr),
			f2(r.PaperThr),
		})
	}
	return renderTable(header, cells)
}
