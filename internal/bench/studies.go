package bench

import (
	"fmt"
	"math/rand"
	"sort"

	"pipemap/internal/apps"
	"pipemap/internal/dp"
	"pipemap/internal/estimate"
	"pipemap/internal/greedy"
	"pipemap/internal/model"
	"pipemap/internal/sim"
	"pipemap/internal/testutil"
)

// QualityStudy quantifies the paper's claim that the greedy heuristic is
// "optimal in practical situations" beyond the six evaluation configs: it
// maps many random well-behaved chains with both algorithms and reports
// the distribution of the greedy/optimal throughput ratio.
type QualityStudy struct {
	Trials int
	// ExactMatches is the number of trials where greedy reached the DP
	// optimum (within 1e-9 relative).
	ExactMatches int
	// MeanRatio and WorstRatio summarize greedy/DP throughput.
	MeanRatio, WorstRatio float64
	// P50, P95 are percentiles of the ratio (sorted ascending).
	P50, P95 float64
}

// HeuristicQuality runs the study on n random chains (seeded).
func HeuristicQuality(n int, seed int64) (QualityStudy, error) {
	rng := rand.New(rand.NewSource(seed))
	cfg := testutil.DefaultRandChainConfig()
	var ratios []float64
	study := QualityStudy{}
	for len(ratios) < n {
		c, pl := testutil.RandChain(rng, cfg, 6+rng.Intn(10))
		d, err := dp.MapChain(c, pl, dp.Options{})
		if err != nil {
			continue
		}
		g, err := greedy.Map(c, pl, greedy.Options{Backtrack: 2})
		if err != nil {
			continue
		}
		ratio := g.Throughput() / d.Throughput()
		if ratio > 1+1e-9 {
			return study, fmt.Errorf("bench: greedy %g beat the optimal DP %g — DP bug",
				g.Throughput(), d.Throughput())
		}
		if ratio > 1 {
			ratio = 1
		}
		ratios = append(ratios, ratio)
		if ratio >= 1-1e-9 {
			study.ExactMatches++
		}
	}
	sort.Float64s(ratios)
	study.Trials = n
	study.WorstRatio = ratios[0]
	study.P50 = ratios[n/2]
	study.P95 = ratios[n/20] // 5th percentile from the bottom = 95% achieve at least this
	sum := 0.0
	for _, r := range ratios {
		sum += r
	}
	study.MeanRatio = sum / float64(n)
	return study, nil
}

// RenderQuality renders the heuristic quality study.
func RenderQuality(q QualityStudy) string {
	return fmt.Sprintf(
		"Greedy heuristic quality over %d random well-behaved chains:\n"+
			"  exact optimum reached:  %d/%d (%.0f%%)\n"+
			"  mean greedy/optimal:    %.4f\n"+
			"  95%% of chains achieve:  >= %.4f of optimal\n"+
			"  worst case:             %.4f of optimal\n",
		q.Trials, q.ExactMatches, q.Trials,
		100*float64(q.ExactMatches)/float64(q.Trials),
		q.MeanRatio, q.P95, q.WorstRatio)
}

// TrainingSizeRow reports model accuracy as a function of the number of
// training executions, extending the paper's remark that a more accurate
// model could use more than eight runs.
type TrainingSizeRow struct {
	Runs             int
	TaskErrPct       float64
	ThroughputErrPct float64
}

// TrainingSizeStudy fits the FFT-Hist model from growing training subsets
// under measurement noise and reports prediction error against the noisy
// simulator.
func TrainingSizeStudy(noise float64, seed int64) ([]TrainingSizeRow, error) {
	c, err := apps.FFTHist(256, apps.Message)
	if err != nil {
		return nil, err
	}
	pl := apps.Platform()
	fullPlan, err := estimate.TrainingPlan(c, pl)
	if err != nil {
		return nil, err
	}
	// Extended plan: replicate the paper's 8 runs plus extra split shapes
	// by varying noise seeds (more observations of the same design).
	var rows []TrainingSizeRow
	for _, runs := range []int{4, 6, 8, 12, 16} {
		plan := make([]model.Mapping, 0, runs)
		for i := 0; i < runs; i++ {
			plan = append(plan, fullPlan[i%len(fullPlan)])
		}
		prof := sim.Profiler{Sim: sim.New(sim.Options{DataSets: 24, Noise: noise, Seed: seed + int64(runs)})}
		fitted, err := estimate.EstimateChainFromPlan(c, prof, plan)
		if err != nil {
			return nil, err
		}
		// Validation against the true chain at unseen points.
		var predT, measT []float64
		for i := range c.Tasks {
			for p := 3; p <= pl.Procs; p += 7 {
				predT = append(predT, fitted.Tasks[i].Exec.Eval(p))
				measT = append(measT, c.Tasks[i].Exec.Eval(p))
			}
		}
		opt, err := dp.MapChain(fitted, pl, dp.Options{})
		if err != nil {
			return nil, err
		}
		truthMapping := model.Mapping{Chain: c, Modules: opt.Modules}
		thrErr := 100 * abs(opt.Throughput()-truthMapping.Throughput()) / truthMapping.Throughput()
		rows = append(rows, TrainingSizeRow{
			Runs:             runs,
			TaskErrPct:       estimate.MeanAbsPctError(predT, measT),
			ThroughputErrPct: thrErr,
		})
	}
	return rows, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// RenderTrainingSize renders the training-size study.
func RenderTrainingSize(rows []TrainingSizeRow) string {
	header := []string{"training runs", "task model err%", "predicted-thr err%"}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			fmt.Sprintf("%d", r.Runs), f2(r.TaskErrPct), f2(r.ThroughputErrPct),
		})
	}
	return renderTable(header, cells)
}
