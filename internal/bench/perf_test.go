package bench

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestRunPerf runs a tiny trajectory pass against the committed specs and
// checks the report is structurally sound: positive solve times, runtime
// throughput in the neighborhood of the model bound, and stable JSON keys.
func TestRunPerf(t *testing.T) {
	rep, err := RunPerf(
		[]string{"../../specs/threestage.json", "../../specs/ffthist256.json"},
		PerfOptions{Runs: 2, DataSets: 40, Speedup: 400},
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Specs) != 2 || rep.Runs != 2 || rep.DataSets != 40 {
		t.Fatalf("report shape = %+v", rep)
	}
	for _, sp := range rep.Specs {
		if sp.DPSolveSeconds <= 0 || sp.GreedySolveSeconds <= 0 {
			t.Errorf("%s: non-positive solve times %g/%g",
				sp.Spec, sp.DPSolveSeconds, sp.GreedySolveSeconds)
		}
		if sp.DPThroughput <= 0 || sp.GreedyThroughput > sp.DPThroughput+1e-9 {
			t.Errorf("%s: dp=%g greedy=%g, want 0 < greedy <= dp",
				sp.Spec, sp.DPThroughput, sp.GreedyThroughput)
		}
		// The sleep-emulated runtime should land near the model bound; allow
		// wide slack for loaded CI machines but reject nonsense.
		if sp.FxrtEfficiency < 0.2 || sp.FxrtEfficiency > 1.5 {
			t.Errorf("%s: fxrt efficiency %g outside [0.2, 1.5]", sp.Spec, sp.FxrtEfficiency)
		}
		if sp.Mapping == "" || sp.Tasks == 0 || sp.Procs == 0 {
			t.Errorf("%s: incomplete record %+v", sp.Spec, sp)
		}
	}

	buf, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		`"goVersion"`, `"specs"`, `"dpSolveSeconds"`, `"greedySolveSeconds"`,
		`"fxrtThroughput"`, `"fxrtEfficiency"`, `"mapping"`,
	} {
		if !strings.Contains(string(buf), key) {
			t.Errorf("report JSON missing %s", key)
		}
	}

	table := RenderPerf(rep)
	if !strings.Contains(table, "threestage") || !strings.Contains(table, "ffthist256") {
		t.Errorf("rendered table missing spec rows:\n%s", table)
	}
}

func TestRunPerfBadSpec(t *testing.T) {
	if _, err := RunPerf([]string{"no-such-spec.json"}, PerfOptions{Runs: 1, DataSets: 4}); err == nil {
		t.Error("missing spec accepted")
	}
}
