package bench

import (
	"fmt"

	"pipemap/internal/apps"
	"pipemap/internal/dp"
	"pipemap/internal/model"
)

// CommMattersRow compares the paper's communication-aware mapping against
// the communication-oblivious baseline of Choudhary et al. (reference [4]
// in the paper), which assigns processors assuming transfer costs are
// negligible or folded into computation. The paper's first claimed
// contribution is exactly that a realistic communication model matters;
// this experiment quantifies it on the evaluation applications.
type CommMattersRow struct {
	Name string
	// Aware is the throughput of the communication-aware optimum.
	Aware float64
	// Oblivious is the *actual* throughput (with real communication costs)
	// of the mapping chosen while ignoring communication.
	Oblivious float64
	// LossPct is the throughput sacrificed by ignoring communication.
	LossPct float64
	// ObliviousMapping shows what the baseline chose.
	ObliviousMapping string
	AwareMapping     string
}

// CommMatters runs the comparison on every Table 2 configuration.
func CommMatters() ([]CommMattersRow, error) {
	cfgs, err := apps.Table2Configs()
	if err != nil {
		return nil, err
	}
	var rows []CommMattersRow
	for _, cfg := range cfgs {
		aware, err := dp.MapChain(cfg.Chain, cfg.Platform, dp.Options{})
		if err != nil {
			return nil, fmt.Errorf("bench: %s aware: %w", cfg.Name, err)
		}
		// The oblivious baseline sees the same tasks but zero-cost edges.
		blind := &model.Chain{
			Tasks: cfg.Chain.Tasks,
			ICom:  make([]model.CostFunc, cfg.Chain.Len()-1),
			ECom:  make([]model.CommFunc, cfg.Chain.Len()-1),
		}
		for i := range blind.ICom {
			blind.ICom[i] = model.ZeroExec()
			blind.ECom[i] = model.ZeroComm()
		}
		bm, err := dp.MapChain(blind, cfg.Platform, dp.Options{})
		if err != nil {
			return nil, fmt.Errorf("bench: %s oblivious: %w", cfg.Name, err)
		}
		// Evaluate the oblivious choice under the true cost model.
		actual := model.Mapping{Chain: cfg.Chain, Modules: bm.Modules}
		rows = append(rows, CommMattersRow{
			Name:             fmt.Sprintf("%s %s %s", cfg.Name, cfg.Size, cfg.Comm),
			Aware:            aware.Throughput(),
			Oblivious:        actual.Throughput(),
			LossPct:          100 * (1 - actual.Throughput()/aware.Throughput()),
			ObliviousMapping: actual.String(),
			AwareMapping:     aware.String(),
		})
	}
	return rows, nil
}

// RenderCommMatters renders the comparison.
func RenderCommMatters(rows []CommMattersRow) string {
	header := []string{"Config", "comm-aware/s", "comm-oblivious/s", "loss%"}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{r.Name, f2(r.Aware), f2(r.Oblivious), f2(r.LossPct)})
	}
	return renderTable(header, cells)
}
