package bench

import (
	"fmt"

	"pipemap/internal/apps"
	"pipemap/internal/tradeoff"
)

// TradeoffRow is one Pareto point of the latency-throughput study
// (extension X5; the paper defers latency to Vondran's thesis).
type TradeoffRow struct {
	Mapping    string
	Throughput float64
	LatencyMS  float64
}

// Tradeoff computes the latency-throughput Pareto frontier for FFT-Hist
// 256 message.
func Tradeoff() ([]TradeoffRow, error) {
	c, err := apps.FFTHist(256, apps.Message)
	if err != nil {
		return nil, err
	}
	front, err := tradeoff.Frontier(c, apps.Platform(), tradeoff.Options{MinThroughputGain: 0.02})
	if err != nil {
		return nil, err
	}
	rows := make([]TradeoffRow, len(front))
	for i, p := range front {
		rows[i] = TradeoffRow{
			Mapping:    p.Mapping.String(),
			Throughput: p.Throughput,
			LatencyMS:  1e3 * p.Latency,
		}
	}
	return rows, nil
}

// RenderTradeoff renders the frontier.
func RenderTradeoff(rows []TradeoffRow) string {
	header := []string{"Pareto mapping", "thr/s", "latency (ms)"}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{r.Mapping, f2(r.Throughput), fmt.Sprintf("%.1f", r.LatencyMS)})
	}
	return renderTable(header, cells)
}
