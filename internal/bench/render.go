// Package bench regenerates every table and figure of the paper's
// evaluation (section 6) from the reproduction: Table 1 (optimal and
// feasible-optimal FFT-Hist mappings), Table 2 (predicted versus measured
// optimal throughput versus data parallel), Figure 1 (mapping styles),
// Figures 2-3 (execution model timelines), Figure 4 (the DP subchain
// decomposition), Figure 5 (the FFT-Hist task graph), and Figure 6 (the
// mapping layout on the processor array) — plus the quantitative claims of
// section 6.3: model accuracy under 10%, and DP/greedy agreement.
package bench

import (
	"fmt"
	"strings"
)

// renderTable renders rows of cells as a fixed-width text table with a
// header row and a separator.
func renderTable(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range rows {
		line(r)
	}
	return b.String()
}

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
