package bench

import (
	"fmt"
	"strings"

	"pipemap/internal/apps"
	"pipemap/internal/dp"
	"pipemap/internal/machine"
	"pipemap/internal/model"
	"pipemap/internal/sim"
)

// Figure1Row is one mapping style from Figure 1 evaluated on FFT-Hist:
// pure data parallel, pure task parallel, replicated data parallel, and
// the mixed optimal.
type Figure1Row struct {
	Style      string
	Mapping    model.Mapping
	Throughput float64
}

// Figure1 evaluates the four mapping styles of Figure 1 on the FFT-Hist
// 256 message configuration, quantifying the figure's qualitative point:
// mixed task and data parallelism with replication dominates.
func Figure1() ([]Figure1Row, error) {
	c, err := apps.FFTHist(256, apps.Message)
	if err != nil {
		return nil, err
	}
	pl := apps.Platform()
	var rows []Figure1Row

	// (a) Pure data parallelism: all tasks on all processors.
	dpl := model.DataParallel(c, pl)
	rows = append(rows, Figure1Row{"data parallel (a)", dpl, dpl.Throughput()})

	// (b) Pure task parallelism: one module per task, no replication.
	tp, err := dp.MapChain(c, pl, dp.Options{DisableClustering: true, DisableReplication: true})
	if err != nil {
		return nil, err
	}
	rows = append(rows, Figure1Row{"task parallel (b)", tp, tp.Throughput()})

	// (c) Replicated data parallelism: all tasks in one module, maximal
	// replication.
	merged := []model.Span{{Lo: 0, Hi: c.Len()}}
	rp, err := dp.AssignClustered(c, pl, merged, dp.Options{})
	if err != nil {
		return nil, err
	}
	rows = append(rows, Figure1Row{"replicated data parallel (c)", rp, rp.Throughput()})

	// (d) Mixed task and data parallel with replication: the optimum.
	opt, err := dp.MapChain(c, pl, dp.Options{})
	if err != nil {
		return nil, err
	}
	rows = append(rows, Figure1Row{"mixed optimal (d)", opt, opt.Throughput()})
	return rows, nil
}

// RenderFigure1 renders the Figure 1 comparison.
func RenderFigure1(rows []Figure1Row) string {
	header := []string{"Mapping style", "Mapping", "Throughput/s"}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{r.Style, r.Mapping.String(), f2(r.Throughput)})
	}
	return renderTable(header, cells)
}

// Figure2 renders the execution model timeline of a three-task chain
// (Figure 2): tasks on disjoint processor sets, transfers occupying both
// sides, pipelined across data sets.
func Figure2() (string, error) {
	c := &model.Chain{
		Tasks: []model.Task{
			{Name: "t1", Exec: model.PolyExec{C1: 1}},
			{Name: "t2", Exec: model.PolyExec{C1: 1.5}},
			{Name: "t3", Exec: model.PolyExec{C1: 1}},
		},
		ICom: []model.CostFunc{model.ZeroExec(), model.ZeroExec()},
		ECom: []model.CommFunc{
			model.PolyComm{C1: 0.5},
			model.PolyComm{C1: 0.5},
		},
	}
	m := model.Mapping{Chain: c, Modules: []model.Module{
		{Lo: 0, Hi: 1, Procs: 2, Replicas: 1},
		{Lo: 1, Hi: 2, Procs: 2, Replicas: 1},
		{Lo: 2, Hi: 3, Procs: 2, Replicas: 1},
	}}
	res, err := sim.New(sim.Options{DataSets: 5, Trace: true}).Run(m)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("Figure 2: execution model of a chain of tasks\n")
	b.WriteString("(R=receive, X=compute, S=send; transfers occupy sender and receiver)\n\n")
	b.WriteString(sim.Gantt(res.Trace, 96))
	return b.String(), nil
}

// Figure3 renders the replication timeline (Figure 3): a replicated
// module processes alternate data sets on distinct processor groups,
// trading response time for throughput.
func Figure3() (string, error) {
	c := &model.Chain{
		Tasks: []model.Task{
			{Name: "src", Exec: model.PolyExec{C1: 0.5}, Replicable: true},
			{Name: "work", Exec: model.PolyExec{C1: 2}, Replicable: true},
		},
		ICom: []model.CostFunc{model.ZeroExec()},
		ECom: []model.CommFunc{model.PolyComm{C1: 0.25}},
	}
	m := model.Mapping{Chain: c, Modules: []model.Module{
		{Lo: 0, Hi: 1, Procs: 1, Replicas: 1},
		{Lo: 1, Hi: 2, Procs: 1, Replicas: 3},
	}}
	res, err := sim.New(sim.Options{DataSets: 7, Trace: true}).Run(m)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("Figure 3: replication — module 1 replicated 3x processes\n")
	b.WriteString("alternate data sets on distinct processor groups\n\n")
	b.WriteString(sim.Gantt(res.Trace, 96))
	return b.String(), nil
}

// Figure4 illustrates the dynamic programming decomposition (Figure 4 and
// Lemma 1): the optimal assignment of each prefix subchain of FFT-Hist for
// the full processor budget, showing how prefix optima build the chain
// optimum.
func Figure4() (string, error) {
	c, err := apps.FFTHist(256, apps.Message)
	if err != nil {
		return "", err
	}
	pl := apps.Platform()
	var b strings.Builder
	b.WriteString("Figure 4: DP builds the optimum from optimal subchain assignments\n")
	b.WriteString("(optimal mapping of each task prefix of FFT-Hist on 64 processors)\n\n")
	for j := 1; j <= c.Len(); j++ {
		sub := &model.Chain{
			Tasks: c.Tasks[:j],
			ICom:  c.ICom[:j-1],
			ECom:  c.ECom[:j-1],
		}
		m, err := dp.MapChain(sub, pl, dp.Options{})
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "T_%d (%s): %v  thr=%.2f/s\n",
			j, sub.TaskNames(0, j), &m, m.Throughput())
	}
	return b.String(), nil
}

// Figure5 renders the FFT-Hist program structure and task graph of
// Figure 5.
func Figure5() string {
	return `Figure 5: FFT-Hist example program and task graph

    do i = 1, m
        call colffts(A)     ! 1D FFTs on the columns of A
        call rowffts(A)     ! 1D FFTs on the rows of A
        call hist(A)        ! statistical analysis and output
    end do

    input --> [colffts] --transpose--> [rowffts] --(same dist)--> [hist] --> output

colffts and rowffts are communication-free inside; hist has significant
internal communication. The transpose between colffts and rowffts costs
about the same whether the tasks share processors or not, while the
rowffts-hist edge is free when they share a distribution.
`
}

// Figure6 renders the optimal FFT-Hist 256 message mapping placed on the
// 8x8 iWarp array (Figure 6): 8 instances of module 1 (3 processors each)
// and 10 instances of module 2 (4 processors each).
func Figure6() (string, error) {
	c, err := apps.FFTHist(256, apps.Message)
	if err != nil {
		return "", err
	}
	pl := apps.Platform()
	cons := machine.Constraints{Grid: machine.Grid{Rows: 8, Cols: 8}}
	m, layout, err := machine.FeasibleOptimal(c, pl, cons, dp.Options{})
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("Figure 6: FFT-Hist mapping (256, Message) on the 8x8 array\n")
	fmt.Fprintf(&b, "%v  thr=%.2f/s\n", &m, m.Throughput())
	b.WriteString("(A/a = module 1 instances, B/b = module 2 instances)\n\n")
	b.WriteString(layout.String())
	return b.String(), nil
}
