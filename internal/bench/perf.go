package bench

import (
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"pipemap/internal/adapt"
	"pipemap/internal/core"
	"pipemap/internal/dp"
	"pipemap/internal/fxrt"
	"pipemap/internal/model"
	"pipemap/internal/obs"
	"pipemap/internal/obs/live"
)

// PerfOptions configures a performance-trajectory run.
type PerfOptions struct {
	// Runs is the number of timing repetitions per solver; the median is
	// reported (default 3).
	Runs int
	// DataSets is the number of data sets streamed through the
	// fault-tolerant runtime (default 400).
	DataSets int
	// Speedup compresses the emulated stage times so a run finishes in
	// manageable wall time (default 50). Reported runtime throughput is
	// rescaled back to model units, so results are comparable across
	// speedups up to scheduler jitter.
	Speedup float64
}

func (o PerfOptions) withDefaults() PerfOptions {
	if o.Runs <= 0 {
		o.Runs = 3
	}
	if o.DataSets <= 0 {
		o.DataSets = 400
	}
	if o.Speedup <= 0 {
		o.Speedup = 50
	}
	return o
}

// SpecPerf is the performance record of one chain spec: solver latencies
// and the fault-tolerant runtime's achieved throughput against the model
// bound.
type SpecPerf struct {
	Spec  string `json:"spec"`
	Tasks int    `json:"tasks"`
	Procs int    `json:"procs"`
	// DPSolveSeconds and GreedySolveSeconds are median wall times of one
	// full solve.
	DPSolveSeconds     float64 `json:"dpSolveSeconds"`
	GreedySolveSeconds float64 `json:"greedySolveSeconds"`
	// AdaptDecisionSeconds is the median wall time of one *warm* adaptive
	// controller decision cycle (ingest observations, refit the cost
	// models, re-solve, decide) on a tick where one stage's cost belief
	// moved — the steady-state latency the closed loop adds between stream
	// segments, riding the incremental solver rather than a cold full DP.
	AdaptDecisionSeconds float64 `json:"adaptDecisionSeconds"`
	// IncrementalSolveSeconds is the median wall time of one incremental
	// DP re-solve (warm solver, last task's execution cost drifted) — the
	// solver-only share of an adapt tick.
	IncrementalSolveSeconds float64 `json:"incrementalSolveSeconds"`
	// MemoHitRate is the controller solve cache's hit rate over the
	// measured adapt loop (alternating changed and unchanged ticks;
	// unchanged ticks should hit).
	MemoHitRate float64 `json:"memoHitRate"`
	// DPThroughput and GreedyThroughput are the predicted throughputs of
	// the two solvers' mappings (data sets/s, model units).
	DPThroughput     float64 `json:"dpThroughput"`
	GreedyThroughput float64 `json:"greedyThroughput"`
	// FxrtThroughput is the throughput the fault-tolerant executor achieved
	// emulating the DP mapping, rescaled to model units; FxrtEfficiency is
	// its fraction of the model bound.
	FxrtThroughput float64 `json:"fxrtThroughput"`
	FxrtEfficiency float64 `json:"fxrtEfficiency"`
	// TraceSpanNanos is the median cost of recording one stage span on a
	// sampled request trace — the per-attempt overhead tracing adds to the
	// runtime hot path when a request is sampled. TraceOffNanos is the
	// same call on an unsampled (nil) trace, which the zero-alloc contract
	// keeps at effectively zero.
	TraceSpanNanos float64 `json:"traceSpanNanos"`
	TraceOffNanos  float64 `json:"traceOffNanos"`
	// GenericNanosPerDS and GeneratedNanosPerDS compare the generic fxrt
	// stream against the pipegen-generated executor on the same mapping
	// structure, real kernels, identical inputs (internal/bench/genperf.go
	// documents the reduced workload sizes); GeneratedSpeedup is their
	// ratio (>1 means the generated path is faster per data set). Zero for
	// specs without a committed generated executor.
	GenericNanosPerDS   float64 `json:"genericNanosPerDS,omitempty"`
	GeneratedNanosPerDS float64 `json:"generatedNanosPerDS,omitempty"`
	GeneratedSpeedup    float64 `json:"generatedSpeedup,omitempty"`
	Mapping             string  `json:"mapping"`
}

// PerfReport is the full performance trajectory written to
// BENCH_solver.json. Committed snapshots of this report over time are the
// repo's perf history.
type PerfReport struct {
	GoVersion string `json:"goVersion"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	// CPUs is runtime.NumCPU() — the hardware parallelism of the machine
	// that produced the numbers; GoMaxProcs is runtime.GOMAXPROCS(0) — the
	// parallelism the solvers actually ran with. Both are provenance:
	// solve times are not comparable across different values.
	CPUs        int        `json:"cpus"`
	GoMaxProcs  int        `json:"gomaxprocs"`
	Runs        int        `json:"runs"`
	DataSets    int        `json:"dataSets"`
	Speedup     float64    `json:"speedup"`
	GeneratedAt string     `json:"generatedAt"`
	Specs       []SpecPerf `json:"specs"`
}

// RunPerf measures solver latency (DP and greedy) and fault-tolerant
// runtime throughput for each chain spec file.
func RunPerf(specPaths []string, opt PerfOptions) (PerfReport, error) {
	opt = opt.withDefaults()
	rep := PerfReport{
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		CPUs:        runtime.NumCPU(),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Runs:        opt.Runs,
		DataSets:    opt.DataSets,
		Speedup:     opt.Speedup,
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
	}
	for _, path := range specPaths {
		sp, err := perfSpec(path, opt)
		if err != nil {
			return PerfReport{}, fmt.Errorf("bench: %s: %w", path, err)
		}
		rep.Specs = append(rep.Specs, sp)
	}
	return rep, nil
}

func perfSpec(path string, opt PerfOptions) (SpecPerf, error) {
	f, err := os.Open(path)
	if err != nil {
		return SpecPerf{}, err
	}
	chain, pl, err := core.ParseChainSpec(f)
	f.Close()
	if err != nil {
		return SpecPerf{}, err
	}
	sp := SpecPerf{Spec: path, Tasks: chain.Len(), Procs: pl.Procs}

	dpRes, dpTime, err := timeSolve(core.Request{Chain: chain, Platform: pl, Algorithm: core.DP}, opt.Runs)
	if err != nil {
		return SpecPerf{}, err
	}
	sp.DPSolveSeconds = dpTime
	sp.DPThroughput = dpRes.Throughput
	sp.Mapping = dpRes.Mapping.String()

	grRes, grTime, err := timeSolve(core.Request{Chain: chain, Platform: pl, Algorithm: core.Greedy}, opt.Runs)
	if err != nil {
		return SpecPerf{}, err
	}
	sp.GreedySolveSeconds = grTime
	sp.GreedyThroughput = grRes.Throughput

	adTime, hitRate, err := timeAdaptStep(chain, pl, dpRes.Mapping, opt.Runs)
	if err != nil {
		return SpecPerf{}, err
	}
	sp.AdaptDecisionSeconds = adTime
	sp.MemoHitRate = hitRate

	incTime, err := timeIncrementalSolve(chain, pl, opt.Runs)
	if err != nil {
		return SpecPerf{}, err
	}
	sp.IncrementalSolveSeconds = incTime

	// Runtime throughput: emulate the DP mapping on the fault-tolerant
	// executor (the same path `pipemap -serve` exercises) and rescale the
	// observed rate back to model units.
	p, err := fxrt.ModelPipeline(dpRes.Mapping, opt.Speedup)
	if err != nil {
		return SpecPerf{}, err
	}
	p.Retry = fxrt.RetryPolicy{MaxRetries: 1}
	stats, err := p.Run(func(i int) fxrt.DataSet { return i }, opt.DataSets, 0)
	if err != nil {
		return SpecPerf{}, err
	}
	sp.FxrtThroughput = stats.Throughput / opt.Speedup
	if sp.DPThroughput > 0 {
		sp.FxrtEfficiency = sp.FxrtThroughput / sp.DPThroughput
	}
	sp.TraceSpanNanos, sp.TraceOffNanos = timeTraceSpan(opt.Runs)

	if err := perfGenerated(&sp, path, dpRes.Mapping, opt); err != nil {
		return SpecPerf{}, err
	}
	return sp, nil
}

// timeTraceSpan measures the per-stage-span cost of request tracing: the
// median nanoseconds to record one attempt span on a sampled trace, and
// the same call on an unsampled (nil) trace. The sampled loop uses a
// fresh trace per repetition at a realistic span count, so slice growth
// is amortized the way a real request's trace amortizes it.
func timeTraceSpan(runs int) (on, off float64) {
	const spans = 1024
	tr := obs.NewReqTracer(obs.ReqTracerConfig{SampleRate: 1})
	iters := 4 * runs
	if iters < 8 {
		iters = 8
	}
	onTimes := make([]float64, 0, iters)
	t0 := time.Now()
	for i := 0; i < iters; i++ {
		_, rt := tr.Start(obs.TraceID{}, false, "bench", t0)
		start := time.Now()
		for j := 0; j < spans; j++ {
			rt.StageSpan("stage", 1, 0, 0, "ok", t0, time.Microsecond)
		}
		onTimes = append(onTimes, float64(time.Since(start).Nanoseconds())/spans)
		tr.Finish(rt, "ok", 0, 0)
	}
	sort.Float64s(onTimes)

	var nilTrace *obs.ReqTrace
	start := time.Now()
	const offCalls = 1 << 18
	for j := 0; j < offCalls; j++ {
		nilTrace.StageSpan("stage", 1, 0, 0, "ok", t0, time.Microsecond)
	}
	off = float64(time.Since(start).Nanoseconds()) / offCalls
	return onTimes[len(onTimes)/2], off
}

// timeAdaptStep measures the adaptive controller's steady-state decision
// latency: a single warm controller is driven through an adapt loop where
// every measured tick drifts the *last* stage's observed latency (so at
// most that module's task costs move — the common small-update case the
// incremental solver targets), interleaved with repeat ticks whose beliefs
// do not move (memo hits). The first, cold tick (full DP solve) warms the
// solver and cache and is excluded. Returns the median changed-tick
// latency and the solve cache's hit rate over the loop.
func timeAdaptStep(chain *model.Chain, pl model.Platform, m model.Mapping, runs int) (float64, float64, error) {
	resp := m.ResponseTimes()
	c, err := adapt.NewController(adapt.Config{
		Chain: chain, Platform: pl, Initial: m,
		// One-observation fit window so each tick's refit reflects exactly
		// the fabricated observation, and a threshold no candidate can
		// clear so the loop never migrates off the measured mapping.
		FitCycles: 1, FitWindow: 1, Threshold: 10,
	})
	if err != nil {
		return 0, 0, err
	}
	observe := func(scale float64) adapt.Observation {
		h := live.Health{Stages: make([]live.StageHealth, len(m.Modules))}
		for j, mod := range m.Modules {
			s := 1.25
			if j == len(m.Modules)-1 {
				s = scale
			}
			h.Stages[j] = live.StageHealth{
				Stage: j, Replicas: mod.Replicas, Live: mod.Replicas,
				Latency: live.WindowStat{Count: 8, Mean: resp[j] * s},
			}
		}
		return adapt.Observation{Health: h, Throughput: m.Throughput()}
	}

	scale := 1.25
	c.Step(observe(scale)) // cold: full solve, warms solver + memo

	iters := 4 * runs
	if iters < 12 {
		iters = 12
	}
	times := make([]float64, 0, iters)
	for i := 0; i < iters; i++ {
		scale += 0.01 // ~0.8% belief move on the last stage: above epsilon
		o := observe(scale)
		start := time.Now()
		c.Step(o)
		times = append(times, time.Since(start).Seconds())
		c.Step(observe(scale)) // repeat: beliefs identical, memo hit
	}
	sort.Float64s(times)
	hitRate := 0.0
	if memo := c.Status().Memo; memo != nil {
		hitRate = memo.HitRate
	}
	return times[len(times)/2], hitRate, nil
}

// timeIncrementalSolve measures the solver-only share of a warm adapt
// tick: a retained dp.Solver re-solving after the last task's execution
// cost drifted. The median over the iterations is reported.
func timeIncrementalSolve(chain *model.Chain, pl model.Platform, runs int) (float64, error) {
	s, err := dp.NewSolver(chain, pl, dp.Options{})
	if err != nil {
		return 0, err
	}
	if _, err := s.Solve(); err != nil {
		return 0, err
	}
	k := chain.Len()
	tasks := make([]model.Task, k)
	copy(tasks, chain.Tasks)
	pc := &model.Chain{Tasks: tasks, ICom: chain.ICom, ECom: chain.ECom}
	changed := []int{k - 1}
	factor := 1.0
	iters := 10 * runs
	if iters < 30 {
		iters = 30
	}
	times := make([]float64, 0, iters)
	for i := 0; i < iters; i++ {
		factor *= 1.01
		tasks[k-1].Exec = model.ScaleCost{F: chain.Tasks[k-1].Exec, K: factor}
		start := time.Now()
		if _, err := s.Resolve(pc, changed); err != nil {
			return 0, err
		}
		times = append(times, time.Since(start).Seconds())
	}
	sort.Float64s(times)
	return times[len(times)/2], nil
}

// timeSolve solves the request runs times and returns the last result and
// the median wall time.
func timeSolve(req core.Request, runs int) (core.Result, float64, error) {
	var res core.Result
	times := make([]float64, 0, runs)
	for i := 0; i < runs; i++ {
		start := time.Now()
		r, err := core.Map(req)
		if err != nil {
			return core.Result{}, 0, err
		}
		times = append(times, time.Since(start).Seconds())
		res = r
	}
	sort.Float64s(times)
	return res, times[len(times)/2], nil
}

// RenderPerf formats the report as a readable table.
func RenderPerf(rep PerfReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "perf trajectory (%s %s/%s, %d CPUs, GOMAXPROCS=%d, %d data sets, %gx speedup, median of %d):\n",
		rep.GoVersion, rep.GOOS, rep.GOARCH, rep.CPUs, rep.GoMaxProcs, rep.DataSets, rep.Speedup, rep.Runs)
	fmt.Fprintf(&b, "%-28s %12s %12s %12s %12s %6s %10s %10s %8s %10s %11s %11s %7s\n",
		"spec", "dp solve", "greedy solve", "incr solve", "adapt step", "memo", "model t/s", "fxrt t/s", "eff", "trace/span",
		"generic/ds", "pipegen/ds", "gain")
	for _, sp := range rep.Specs {
		fmt.Fprintf(&b, "%-28s %10.3fms %10.3fms %10.3fms %10.3fms %5.0f%% %10.4f %10.4f %7.1f%% %8.0fns %11s %11s %7s\n",
			sp.Spec, sp.DPSolveSeconds*1e3, sp.GreedySolveSeconds*1e3, sp.IncrementalSolveSeconds*1e3,
			sp.AdaptDecisionSeconds*1e3, 100*sp.MemoHitRate,
			sp.DPThroughput, sp.FxrtThroughput, 100*sp.FxrtEfficiency, sp.TraceSpanNanos,
			perDS(sp.GenericNanosPerDS), perDS(sp.GeneratedNanosPerDS), gain(sp.GeneratedSpeedup))
	}
	return b.String()
}

// perDS renders a per-data-set nanosecond figure, "-" when unmeasured.
func perDS(ns float64) string {
	if ns <= 0 {
		return "-"
	}
	return time.Duration(ns).Round(time.Microsecond).String()
}

// gain renders a generated-vs-generic speedup ratio, "-" when unmeasured.
func gain(x float64) string {
	if x <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.2fx", x)
}
