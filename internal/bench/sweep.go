package bench

import (
	"fmt"

	"pipemap/internal/apps"
	"pipemap/internal/core"
	"pipemap/internal/model"
)

// SweepRow records how the optimal FFT-Hist mapping evolves with machine
// size: the crossover structure behind Figure 1 and Table 2 — at small P
// the single-module (data parallel) mapping is optimal, replication
// appears as soon as memory permits a second instance, and the
// task+data+replication mix pulls ever further ahead as per-processor
// overheads erode the monolithic mapping.
type SweepRow struct {
	Procs      int
	Algorithm  string
	Mapping    string
	Modules    int
	OptimalThr float64
	DataParThr float64
	Ratio      float64
}

// Sweep maps FFT-Hist 256 message onto machines from 8 to 256 processors.
func Sweep() ([]SweepRow, error) {
	chain, err := apps.FFTHist(256, apps.Message)
	if err != nil {
		return nil, err
	}
	var rows []SweepRow
	for _, procs := range []int{8, 12, 16, 24, 32, 48, 64, 96, 128, 192, 256} {
		pl := model.Platform{Procs: procs, MemPerProc: 0.5}
		res, err := core.Map(core.Request{Chain: chain, Platform: pl})
		if err != nil {
			return nil, fmt.Errorf("bench: sweep P=%d: %w", procs, err)
		}
		dpar := model.DataParallel(chain, pl)
		rows = append(rows, SweepRow{
			Procs:      procs,
			Algorithm:  res.Algorithm.String(),
			Mapping:    res.Mapping.String(),
			Modules:    len(res.Mapping.Modules),
			OptimalThr: res.Throughput,
			DataParThr: dpar.Throughput(),
			Ratio:      res.Throughput / dpar.Throughput(),
		})
	}
	return rows, nil
}

// RenderSweep renders the sweep.
func RenderSweep(rows []SweepRow) string {
	header := []string{"P", "algo", "mapping", "optimal/s", "datapar/s", "ratio"}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			fmt.Sprintf("%d", r.Procs), r.Algorithm, r.Mapping,
			f2(r.OptimalThr), f2(r.DataParThr), f2(r.Ratio),
		})
	}
	return renderTable(header, cells)
}
