package bench

import (
	"strings"
	"testing"
)

func TestSecondOrderStudy(t *testing.T) {
	rows, err := SecondOrder()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d scenarios, want 4", len(rows))
	}
	det := rows[0]
	// Deterministic execution achieves the analytic bound (within
	// measurement-window slack).
	if det.ShortfallPc > 1.5 || det.ShortfallPc < -1.5 {
		t.Errorf("deterministic shortfall %.2f%% should be ~0", det.ShortfallPc)
	}
	// Noise monotonically widens the gap.
	if rows[1].ShortfallPc <= det.ShortfallPc {
		t.Errorf("5%% noise shortfall %.2f%% not above deterministic %.2f%%",
			rows[1].ShortfallPc, det.ShortfallPc)
	}
	if rows[2].ShortfallPc <= rows[1].ShortfallPc {
		t.Errorf("15%% noise shortfall %.2f%% not above 5%% noise %.2f%%",
			rows[2].ShortfallPc, rows[1].ShortfallPc)
	}
	// The paper's residual band: noise scenarios stay within ~12%.
	if rows[2].ShortfallPc > 12 {
		t.Errorf("15%% noise shortfall %.2f%% outside the paper's residual band", rows[2].ShortfallPc)
	}
	// A straggler hurts much more than its capacity share because the
	// rigid round-robin schedule cannot route around it.
	if rows[3].ShortfallPc < 10 {
		t.Errorf("straggler shortfall %.2f%% too small — convoy effect missing", rows[3].ShortfallPc)
	}
	if rows[3].BlockedShare <= det.BlockedShare {
		t.Error("straggler did not increase bottleneck blocking")
	}
	out := RenderSecondOrder(rows)
	if !strings.Contains(out, "straggler") {
		t.Errorf("render incomplete:\n%s", out)
	}
}
