package bench

import (
	"strings"
	"testing"

	"pipemap/internal/apps"
)

func TestTable1Reproduction(t *testing.T) {
	rows, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("Table 1 has %d rows, want 4", len(rows))
	}
	for _, r := range rows {
		// Every optimal mapping must cluster rowffts+hist (2 modules).
		if len(r.Optimal.Modules) != 2 {
			t.Errorf("%s %s: %d modules, want 2 (%v)", r.Size, r.Comm,
				len(r.Optimal.Modules), &r.Optimal)
		}
		// Feasible throughput can never exceed unconstrained.
		if r.FeasibleThr > r.OptimalThr*1.0001 {
			t.Errorf("%s %s: feasible %g exceeds optimal %g", r.Size, r.Comm,
				r.FeasibleThr, r.OptimalThr)
		}
		// Reproduced throughput within 25%% of the paper's prediction.
		if r.OptimalThr < r.PaperThr*0.75 || r.OptimalThr > r.PaperThr*1.25 {
			t.Errorf("%s %s: throughput %g vs paper %g out of band",
				r.Size, r.Comm, r.OptimalThr, r.PaperThr)
		}
	}
	// Row 1 must be exactly the paper's mapping.
	m := rows[0].Optimal
	if m.Modules[0].Procs != 3 || m.Modules[0].Replicas != 8 ||
		m.Modules[1].Procs != 4 || m.Modules[1].Replicas != 10 {
		t.Errorf("256 message mapping %v, want [3x8 | 4x10]", &m)
	}
	out := RenderTable1(rows)
	if !strings.Contains(out, "256x256") || !strings.Contains(out, "Systolic") {
		t.Errorf("render incomplete:\n%s", out)
	}
}

func TestTable2Reproduction(t *testing.T) {
	rows, err := Table2(7)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("Table 2 has %d rows, want 6", len(rows))
	}
	for _, r := range rows {
		// Predicted and measured within ~15% of each other (the paper saw
		// up to 12%).
		if r.PctDiff > 15 || r.PctDiff < -15 {
			t.Errorf("%s %s: predicted/measured diff %.1f%% too large", r.Name, r.Size, r.PctDiff)
		}
		// Optimal beats data parallel by the paper's 2-9x band (loosened).
		if r.Ratio < 1.5 || r.Ratio > 12 {
			t.Errorf("%s %s: ratio %.2f outside the paper's band", r.Name, r.Size, r.Ratio)
		}
	}
	out := RenderTable2(rows)
	for _, want := range []string{"FFT-Hist", "Radar", "Stereo"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %s:\n%s", want, out)
		}
	}
}

func TestFigure1StylesOrdering(t *testing.T) {
	rows, err := Figure1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("Figure 1 has %d styles, want 4", len(rows))
	}
	byStyle := map[string]float64{}
	for _, r := range rows {
		byStyle[r.Style] = r.Throughput
	}
	opt := byStyle["mixed optimal (d)"]
	for style, thr := range byStyle {
		if thr > opt*1.0001 {
			t.Errorf("%s (%g) beats the mixed optimal (%g)", style, thr, opt)
		}
	}
	if byStyle["data parallel (a)"] >= opt/2 {
		t.Errorf("data parallel (%g) too close to optimal (%g); the figure's point is lost",
			byStyle["data parallel (a)"], opt)
	}
	if RenderFigure1(rows) == "" {
		t.Error("empty render")
	}
}

func TestFigureRenderings(t *testing.T) {
	f2g, err := Figure2()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"m0.0", "m1.0", "m2.0", "X"} {
		if !strings.Contains(f2g, want) {
			t.Errorf("Figure 2 missing %q", want)
		}
	}
	f3g, err := Figure3()
	if err != nil {
		t.Fatal(err)
	}
	// Three instances of the replicated module.
	for _, want := range []string{"m1.0", "m1.1", "m1.2"} {
		if !strings.Contains(f3g, want) {
			t.Errorf("Figure 3 missing %q", want)
		}
	}
	f4g, err := Figure4()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"T_1", "T_2", "T_3", "colffts"} {
		if !strings.Contains(f4g, want) {
			t.Errorf("Figure 4 missing %q", want)
		}
	}
	if !strings.Contains(Figure5(), "colffts") {
		t.Error("Figure 5 missing task graph")
	}
	f6g, err := Figure6()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(f6g, "A") || !strings.Contains(f6g, "B") {
		t.Errorf("Figure 6 missing layout:\n%s", f6g)
	}
}

func TestAccuracyUnderTenPercent(t *testing.T) {
	cfgs, err := apps.Table2Configs()
	if err != nil {
		t.Fatal(err)
	}
	// FFT-Hist 256 message with 3% measurement noise, as in section 6.3.
	res, err := Accuracy(cfgs[0], 0.03, 11)
	if err != nil {
		t.Fatal(err)
	}
	if res.TaskErrPct > 10 {
		t.Errorf("task model error %.1f%% exceeds the paper's ~10%% bound", res.TaskErrPct)
	}
	if res.ThroughputErrPct > 15 {
		t.Errorf("throughput prediction error %.1f%% too large", res.ThroughputErrPct)
	}
	if RenderAccuracy([]AccuracyResult{res}) == "" {
		t.Error("empty render")
	}
}

func TestAgreementAllConfigs(t *testing.T) {
	rows, err := Agreement()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("%d agreement rows, want 6", len(rows))
	}
	for _, r := range rows {
		if !r.Agree {
			t.Errorf("%s: greedy %.3f missed DP %.3f\n dp: %s\n gr: %s",
				r.Name, r.GreedyThr, r.DPThr, r.DPMaps, r.GreedyMaps)
		}
	}
	if RenderAgreement(rows) == "" {
		t.Error("empty render")
	}
}

func TestPathologyShowsGreedyGap(t *testing.T) {
	r, err := Pathology()
	if err != nil {
		t.Fatal(err)
	}
	if r.DPThr <= r.GreedyThr {
		t.Errorf("pathology did not separate DP (%g) from greedy (%g)", r.DPThr, r.GreedyThr)
	}
	if r.BacktrackThr < r.GreedyThr {
		t.Errorf("backtracking hurt: %g < %g", r.BacktrackThr, r.GreedyThr)
	}
	if !strings.Contains(RenderPathology(r), "DP (optimal)") {
		t.Error("render incomplete")
	}
}
