package bench

import (
	"fmt"

	"pipemap/internal/apps"
	"pipemap/internal/model"
	"pipemap/internal/sim"
)

// SecondOrderRow quantifies one pipeline-coupling scenario: the analytic
// throughput 1/max(f_i/r_i) assumes modules never stall each other, while
// the simulated schedule exposes rendezvous coupling — the "second order
// effects like interference" the paper cites (section 6.4) to explain its
// up-to-12% prediction residuals.
type SecondOrderRow struct {
	Scenario    string
	Mapping     string
	Analytic    float64
	Simulated   float64
	ShortfallPc float64
	// BlockedShare is the fraction of the bottleneck module's instance
	// time lost to waiting on neighbours.
	BlockedShare float64
}

// SecondOrder runs the coupling study on the optimal FFT-Hist 256
// message mapping. The deterministic schedule achieves the analytic bound
// — the model is exact when operation times are exact. Variability is
// what opens the gap: with random per-operation noise the rendezvous
// coupling turns fluctuations into stalls that do not average out
// (max-plus dynamics), and a straggler instance drags the whole pipeline.
// This is the reproduction's account of the paper's 0-12% prediction
// residuals.
func SecondOrder() ([]SecondOrderRow, error) {
	c, err := apps.FFTHist(256, apps.Message)
	if err != nil {
		return nil, err
	}
	m := model.Mapping{Chain: c, Modules: []model.Module{
		{Lo: 0, Hi: 1, Procs: 3, Replicas: 8},
		{Lo: 1, Hi: 3, Procs: 4, Replicas: 10},
	}}
	scenarios := []struct {
		name string
		opt  sim.Options
	}{
		{"deterministic (model is exact)", sim.Options{DataSets: 600}},
		{"5% op-time noise", sim.Options{DataSets: 600, Noise: 0.05, Seed: 4}},
		{"15% op-time noise", sim.Options{DataSets: 600, Noise: 0.15, Seed: 4}},
		{"one straggler instance (x1.5)", sim.Options{DataSets: 600,
			StragglerModule: 1, StragglerInstance: 0, StragglerFactor: 1.5}},
	}
	var rows []SecondOrderRow
	for _, sc := range scenarios {
		res, err := sim.New(sc.opt).Run(m)
		if err != nil {
			return nil, fmt.Errorf("bench: second order %s: %w", sc.name, err)
		}
		sc := sc
		_ = sc
		analytic := m.Throughput()
		bi, _ := m.Bottleneck()
		instTime := res.Makespan * float64(m.Modules[bi].Replicas)
		blocked := res.BlockedSend[bi] + res.BlockedRecv[bi]
		rows = append(rows, SecondOrderRow{
			Scenario:     sc.name,
			Mapping:      m.String(),
			Analytic:     analytic,
			Simulated:    res.Throughput,
			ShortfallPc:  100 * (analytic - res.Throughput) / analytic,
			BlockedShare: blocked / instTime,
		})
	}
	return rows, nil
}

// RenderSecondOrder renders the coupling study.
func RenderSecondOrder(rows []SecondOrderRow) string {
	header := []string{"Scenario", "analytic/s", "simulated/s", "shortfall%", "bottleneck blocked"}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Scenario, f2(r.Analytic), f2(r.Simulated), f2(r.ShortfallPc),
			fmt.Sprintf("%.1f%%", 100*r.BlockedShare),
		})
	}
	return renderTable(header, cells)
}
