package core

import (
	"encoding/json"
	"fmt"
	"io"

	"pipemap/internal/model"
)

// ChainSpec is the JSON representation of a task chain with polynomial
// cost models, the input format of the cmd/pipemap and cmd/fxsim tools.
//
// Example:
//
//	{
//	  "platform": {"procs": 64, "memPerProc": 0.5},
//	  "tasks": [
//	    {"name": "colffts", "exec": [0.005, 1.2, 0.0008],
//	     "mem": {"data": 1.4}, "replicable": true},
//	    {"name": "hist", "exec": [0.07, 0.6, 0.004],
//	     "mem": {"data": 0.35}, "replicable": true}
//	  ],
//	  "edges": [
//	    {"icom": [0.01, 0.6, 0.0005], "ecom": [0.03, 0.18, 0.18, 0.0005, 0.0005]}
//	  ]
//	}
//
// exec and icom are [C1, C2, C3] for C1 + C2/p + C3*p; ecom is
// [C1, C2, C3, C4, C5] for C1 + C2/ps + C3/pr + C4*ps + C5*pr.
type ChainSpec struct {
	Platform PlatformSpec `json:"platform"`
	Tasks    []TaskSpec   `json:"tasks"`
	Edges    []EdgeSpec   `json:"edges"`
}

// PlatformSpec is the platform part of a chain spec.
type PlatformSpec struct {
	Procs      int     `json:"procs"`
	MemPerProc float64 `json:"memPerProc"`
}

// TaskSpec is one task of a chain spec.
type TaskSpec struct {
	Name       string     `json:"name"`
	Exec       []float64  `json:"exec"`
	Mem        MemorySpec `json:"mem"`
	Replicable bool       `json:"replicable"`
	MinProcs   int        `json:"minProcs,omitempty"`
}

// MemorySpec is the memory model of one task.
type MemorySpec struct {
	Fixed  float64 `json:"fixed,omitempty"`
	Data   float64 `json:"data,omitempty"`
	Buffer float64 `json:"buffer,omitempty"`
}

// EdgeSpec is one edge of a chain spec.
type EdgeSpec struct {
	ICom []float64 `json:"icom"`
	Ecom []float64 `json:"ecom"`
}

// ParseChainSpec reads a JSON chain spec and builds the chain and platform.
func ParseChainSpec(r io.Reader) (*model.Chain, model.Platform, error) {
	var spec ChainSpec
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return nil, model.Platform{}, fmt.Errorf("core: parsing chain spec: %w", err)
	}
	return BuildChainSpec(spec)
}

// BuildChainSpec converts a parsed spec into a chain and platform.
func BuildChainSpec(spec ChainSpec) (*model.Chain, model.Platform, error) {
	if len(spec.Tasks) == 0 {
		return nil, model.Platform{}, fmt.Errorf("core: chain spec has no tasks")
	}
	if len(spec.Edges) != len(spec.Tasks)-1 {
		return nil, model.Platform{}, fmt.Errorf("core: chain spec has %d tasks but %d edges (want %d)",
			len(spec.Tasks), len(spec.Edges), len(spec.Tasks)-1)
	}
	c := &model.Chain{
		Tasks: make([]model.Task, len(spec.Tasks)),
		ICom:  make([]model.CostFunc, len(spec.Edges)),
		ECom:  make([]model.CommFunc, len(spec.Edges)),
	}
	for i, ts := range spec.Tasks {
		exec, err := execPoly(ts.Exec)
		if err != nil {
			return nil, model.Platform{}, fmt.Errorf("core: task %q exec: %w", ts.Name, err)
		}
		c.Tasks[i] = model.Task{
			Name:       ts.Name,
			Exec:       exec,
			Mem:        model.Memory{Fixed: ts.Mem.Fixed, Data: ts.Mem.Data, Buffer: ts.Mem.Buffer},
			Replicable: ts.Replicable,
			MinProcs:   ts.MinProcs,
		}
	}
	for i, es := range spec.Edges {
		icom, err := execPoly(es.ICom)
		if err != nil {
			return nil, model.Platform{}, fmt.Errorf("core: edge %d icom: %w", i, err)
		}
		c.ICom[i] = icom
		if len(es.Ecom) != 5 {
			return nil, model.Platform{}, fmt.Errorf("core: edge %d ecom has %d coefficients, want 5",
				i, len(es.Ecom))
		}
		c.ECom[i] = model.PolyComm{
			C1: es.Ecom[0], C2: es.Ecom[1], C3: es.Ecom[2], C4: es.Ecom[3], C5: es.Ecom[4],
		}
	}
	pl := model.Platform{Procs: spec.Platform.Procs, MemPerProc: spec.Platform.MemPerProc}
	if err := c.Validate(); err != nil {
		return nil, model.Platform{}, err
	}
	if err := pl.Validate(); err != nil {
		return nil, model.Platform{}, err
	}
	return c, pl, nil
}

func execPoly(cs []float64) (model.CostFunc, error) {
	switch len(cs) {
	case 0:
		return model.ZeroExec(), nil
	case 3:
		return model.PolyExec{C1: cs[0], C2: cs[1], C3: cs[2]}, nil
	default:
		return nil, fmt.Errorf("want 3 coefficients [C1 C2 C3], got %d", len(cs))
	}
}

// MappingSpec is the JSON representation of a mapping, the output of
// cmd/pipemap and the input of cmd/fxsim.
type MappingSpec struct {
	Modules []ModuleSpec `json:"modules"`
}

// ModuleSpec is one module of a mapping spec.
type ModuleSpec struct {
	Tasks    string `json:"tasks"` // informational
	Lo       int    `json:"lo"`
	Hi       int    `json:"hi"`
	Procs    int    `json:"procs"`
	Replicas int    `json:"replicas"`
}

// EncodeMapping converts a mapping to its JSON spec.
func EncodeMapping(m model.Mapping) MappingSpec {
	spec := MappingSpec{Modules: make([]ModuleSpec, len(m.Modules))}
	for i, mod := range m.Modules {
		spec.Modules[i] = ModuleSpec{
			Tasks: m.Chain.TaskNames(mod.Lo, mod.Hi),
			Lo:    mod.Lo, Hi: mod.Hi,
			Procs: mod.Procs, Replicas: mod.Replicas,
		}
	}
	return spec
}

// DecodeMapping binds a mapping spec to a chain.
func DecodeMapping(spec MappingSpec, c *model.Chain) (model.Mapping, error) {
	m := model.Mapping{Chain: c, Modules: make([]model.Module, len(spec.Modules))}
	for i, ms := range spec.Modules {
		m.Modules[i] = model.Module{Lo: ms.Lo, Hi: ms.Hi, Procs: ms.Procs, Replicas: ms.Replicas}
	}
	if len(m.Modules) == 0 {
		return model.Mapping{}, fmt.Errorf("core: mapping spec has no modules")
	}
	return m, nil
}
