package core

import (
	"strings"
	"testing"

	"pipemap/internal/apps"
	"pipemap/internal/machine"
	"pipemap/internal/model"
	"pipemap/internal/testutil"
)

func TestMapAutoSelectsDPForSmallInstances(t *testing.T) {
	c, err := apps.FFTHist(256, apps.Message)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Map(Request{Chain: c, Platform: apps.Platform()})
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != DP {
		t.Errorf("auto picked %v for a small instance, want dp", res.Algorithm)
	}
	if res.Throughput < 13 || res.Throughput > 16.5 {
		t.Errorf("throughput %g outside expected band", res.Throughput)
	}
	if res.Latency <= 0 {
		t.Error("latency not positive")
	}
}

func TestMapAutoFallsBackToGreedy(t *testing.T) {
	c, err := apps.FFTHist(256, apps.Message)
	if err != nil {
		t.Fatal(err)
	}
	big := model.Platform{Procs: 512, MemPerProc: 0.5}
	res, err := Map(Request{Chain: c, Platform: big})
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != Greedy {
		t.Errorf("auto picked %v for a large instance, want greedy", res.Algorithm)
	}
}

func TestMapDPAndGreedyAgreeOnFFTHist(t *testing.T) {
	c, err := apps.FFTHist(256, apps.Message)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Map(Request{Chain: c, Platform: apps.Platform(), Algorithm: DP})
	if err != nil {
		t.Fatal(err)
	}
	g, err := Map(Request{Chain: c, Platform: apps.Platform(), Algorithm: Greedy})
	if err != nil {
		t.Fatal(err)
	}
	if !testutil.AlmostEqual(d.Throughput, g.Throughput, 0.01) {
		t.Errorf("dp %g vs greedy %g", d.Throughput, g.Throughput)
	}
}

func TestMapWithMachineConstraints(t *testing.T) {
	c, err := apps.FFTHist(256, apps.Message)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Map(Request{
		Chain:    c,
		Platform: apps.Platform(),
		Machine:  &machine.Constraints{Grid: machine.Grid{Rows: 8, Cols: 8}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Layout == nil || len(res.Layout.Instances) == 0 {
		t.Fatal("no layout returned")
	}
	// Table 1: the 256 message mapping is feasible as-is.
	if !testutil.AlmostEqual(res.Throughput, res.Unconstrained.Throughput(), 1e-6) {
		t.Errorf("feasible %g differs from unconstrained %g",
			res.Throughput, res.Unconstrained.Throughput())
	}
}

func TestMapErrors(t *testing.T) {
	if _, err := Map(Request{}); err == nil {
		t.Error("empty request accepted")
	}
	c, err := apps.FFTHist(256, apps.Message)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Map(Request{Chain: c, Platform: model.Platform{Procs: 0}}); err == nil {
		t.Error("invalid platform accepted")
	}
	if _, err := Map(Request{Chain: &model.Chain{}, Platform: apps.Platform()}); err == nil {
		t.Error("invalid chain accepted")
	}
}

const sampleSpec = `{
  "platform": {"procs": 16, "memPerProc": 1000},
  "tasks": [
    {"name": "a", "exec": [0.1, 5, 0.01], "mem": {"data": 1500}, "replicable": true},
    {"name": "b", "exec": [0.2, 8, 0.02], "mem": {"data": 500}, "replicable": false}
  ],
  "edges": [
    {"icom": [0.01, 0.5, 0.001], "ecom": [0.02, 0.4, 0.4, 0.001, 0.001]}
  ]
}`

func TestParseChainSpec(t *testing.T) {
	c, pl, err := ParseChainSpec(strings.NewReader(sampleSpec))
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 2 || pl.Procs != 16 {
		t.Fatalf("parsed %d tasks, %d procs", c.Len(), pl.Procs)
	}
	if got := c.Tasks[0].Exec.Eval(5); !testutil.AlmostEqual(got, 0.1+1+0.05, 1e-9) {
		t.Errorf("task a exec(5) = %g", got)
	}
	if got := c.ECom[0].Eval(2, 4); !testutil.AlmostEqual(got, 0.02+0.2+0.1+0.002+0.004, 1e-9) {
		t.Errorf("edge ecom(2,4) = %g", got)
	}
	if c.Tasks[1].Replicable {
		t.Error("task b should not be replicable")
	}
	if got := c.ModuleMinProcs(0, 1, pl.MemPerProc); got != 2 {
		t.Errorf("task a min procs = %d, want 2", got)
	}
}

func TestParseChainSpecErrors(t *testing.T) {
	cases := []string{
		``,
		`{}`,
		`{"platform":{"procs":4},"tasks":[{"name":"a","exec":[1,2,3]}],"edges":[{"icom":[],"ecom":[1,2,3,4,5]},{"icom":[],"ecom":[1,2,3,4,5]}]}`,
		`{"platform":{"procs":4},"tasks":[{"name":"a","exec":[1,2]}],"edges":[]}`,
		`{"platform":{"procs":4},"tasks":[{"name":"a","exec":[1,2,3]},{"name":"b","exec":[1,2,3]}],"edges":[{"icom":[1,2,3],"ecom":[1,2]}]}`,
		`{"platform":{"procs":0},"tasks":[{"name":"a","exec":[1,2,3]}],"edges":[]}`,
		`{"unknown": true}`,
	}
	for i, s := range cases {
		if _, _, err := ParseChainSpec(strings.NewReader(s)); err == nil {
			t.Errorf("case %d: invalid spec accepted", i)
		}
	}
}

func TestMappingSpecRoundTrip(t *testing.T) {
	c, pl, err := ParseChainSpec(strings.NewReader(sampleSpec))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Map(Request{Chain: c, Platform: pl})
	if err != nil {
		t.Fatal(err)
	}
	spec := EncodeMapping(res.Mapping)
	back, err := DecodeMapping(spec, c)
	if err != nil {
		t.Fatal(err)
	}
	if !testutil.AlmostEqual(back.Throughput(), res.Throughput, 1e-9) {
		t.Errorf("round trip changed throughput: %g vs %g", back.Throughput(), res.Throughput)
	}
	if _, err := DecodeMapping(MappingSpec{}, c); err == nil {
		t.Error("empty mapping spec accepted")
	}
}

func TestAlgorithmString(t *testing.T) {
	if Auto.String() != "auto" || DP.String() != "dp" || Greedy.String() != "greedy" {
		t.Error("Algorithm.String misbehaves")
	}
}

func TestMapObjectives(t *testing.T) {
	c, err := apps.FFTHist(256, apps.Message)
	if err != nil {
		t.Fatal(err)
	}
	pl := apps.Platform()
	thr, err := Map(Request{Chain: c, Platform: pl})
	if err != nil {
		t.Fatal(err)
	}
	lat, err := Map(Request{Chain: c, Platform: pl, Objective: MinLatency})
	if err != nil {
		t.Fatal(err)
	}
	if lat.Latency > thr.Latency {
		t.Errorf("MinLatency %g worse than throughput optimum %g", lat.Latency, thr.Latency)
	}
	if lat.Throughput > thr.Throughput+1e-9 {
		t.Errorf("MinLatency throughput %g exceeds the optimum %g", lat.Throughput, thr.Throughput)
	}
	bound := (lat.Latency + thr.Latency) / 2
	mid, err := Map(Request{Chain: c, Platform: pl,
		Objective: ThroughputUnderLatency, LatencyBound: bound})
	if err != nil {
		t.Fatal(err)
	}
	if mid.Latency > bound {
		t.Errorf("bounded mapping latency %g exceeds bound %g", mid.Latency, bound)
	}
	if mid.Throughput < lat.Throughput-1e-9 {
		t.Errorf("bounded throughput %g below min-latency point %g", mid.Throughput, lat.Throughput)
	}
	if _, err := Map(Request{Chain: c, Platform: pl,
		Objective: ThroughputUnderLatency}); err == nil {
		t.Error("missing latency bound accepted")
	}
}

func TestRemapDegradedPlatform(t *testing.T) {
	c, err := apps.FFTHist(256, apps.Message)
	if err != nil {
		t.Fatal(err)
	}
	pl := apps.Platform()
	full, err := Map(Request{Chain: c, Platform: pl})
	if err != nil {
		t.Fatal(err)
	}
	lost := pl.Procs / 4
	deg, err := Remap(Request{Chain: c, Platform: pl}, lost)
	if err != nil {
		t.Fatal(err)
	}
	if got := deg.Mapping.TotalProcs(); got > pl.Procs-lost {
		t.Errorf("degraded mapping uses %d processors, only %d survive", got, pl.Procs-lost)
	}
	if deg.Throughput > full.Throughput+1e-9 {
		t.Errorf("degraded throughput %g exceeds full-machine %g", deg.Throughput, full.Throughput)
	}
	if err := deg.Mapping.Validate(model.Platform{Procs: pl.Procs - lost, MemPerProc: pl.MemPerProc}); err != nil {
		t.Errorf("degraded mapping invalid on surviving machine: %v", err)
	}
	// Losing nothing is exactly Map.
	same, err := Remap(Request{Chain: c, Platform: pl}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if same.Throughput != full.Throughput {
		t.Errorf("Remap(0) throughput %g != Map %g", same.Throughput, full.Throughput)
	}
}

func TestRemapErrors(t *testing.T) {
	c, err := apps.FFTHist(256, apps.Message)
	if err != nil {
		t.Fatal(err)
	}
	pl := apps.Platform()
	if _, err := Remap(Request{Chain: c, Platform: pl}, -1); err == nil {
		t.Error("negative loss accepted")
	}
	if _, err := Remap(Request{Chain: c, Platform: pl}, pl.Procs); err == nil {
		t.Error("losing every processor accepted")
	}
}
