// Package core is the automatic mapping tool of the paper: given a chain
// of data parallel tasks with cost models and a target platform, it
// produces the throughput-optimal mapping — clustering, replication and
// processor assignment — using the dynamic programming algorithm
// (section 3) or the fast greedy heuristic (section 4), optionally subject
// to machine constraints (rectangular subarrays and systolic pathways,
// section 6.1). It corresponds to the tool integrated with the Fx
// compiler in the paper.
package core

import (
	"fmt"
	"time"

	"pipemap/internal/dp"
	"pipemap/internal/greedy"
	"pipemap/internal/machine"
	"pipemap/internal/model"
	"pipemap/internal/obs"
	"pipemap/internal/tradeoff"
)

// Algorithm selects the mapping algorithm.
type Algorithm int

const (
	// Auto uses dynamic programming when the instance is small enough for
	// the O(P^4 k^2) cost to be negligible and the greedy heuristic
	// otherwise.
	Auto Algorithm = iota
	// DP is the provably optimal dynamic programming algorithm.
	DP
	// Greedy is the O(Pk) heuristic with clustering refinement and bounded
	// backtracking.
	Greedy
)

func (a Algorithm) String() string {
	switch a {
	case DP:
		return "dp"
	case Greedy:
		return "greedy"
	default:
		return "auto"
	}
}

// autoDPBudget bounds P^4*k^3 for which Auto still picks the exact DP
// (about a second of compute).
const autoDPBudget = 5e9

// Objective selects what the mapping tool optimizes.
type Objective int

const (
	// MaxThroughput maximizes data sets per second (the paper's objective).
	MaxThroughput Objective = iota
	// MinLatency minimizes one data set's traversal time (extension; the
	// latency DP never replicates).
	MinLatency
	// ThroughputUnderLatency maximizes throughput subject to
	// Request.LatencyBound.
	ThroughputUnderLatency
)

// Request describes one mapping problem.
type Request struct {
	// Chain is the task chain with cost models.
	Chain *model.Chain
	// Platform is the processor budget and memory capacity.
	Platform model.Platform
	// Algorithm selects DP, Greedy, or Auto.
	Algorithm Algorithm
	// DisableReplication forces single-instance modules.
	DisableReplication bool
	// DisableClustering keeps every task in its own module.
	DisableClustering bool
	// Machine optionally adds geometric feasibility constraints; when set,
	// the result carries a layout and the mapping is the best feasible one.
	Machine *machine.Constraints
	// Objective selects throughput (default), latency, or
	// latency-bounded throughput optimization.
	Objective Objective
	// LatencyBound is the latency budget in seconds for
	// ThroughputUnderLatency.
	LatencyBound float64
	// Trace receives solver spans (per-DP-layer timing, states evaluated,
	// prune counts; greedy phase spans); nil disables tracing.
	Trace *obs.Tracer
	// Metrics receives solver counters and timing histograms; nil disables.
	Metrics *obs.Registry
}

// Result is the outcome of a mapping request.
type Result struct {
	// Mapping is the chosen mapping (feasible if Machine was set).
	Mapping model.Mapping
	// Algorithm is the algorithm actually used.
	Algorithm Algorithm
	// Throughput and Latency are the model-predicted metrics of Mapping.
	Throughput float64
	Latency    float64
	// Unconstrained is the optimal mapping ignoring machine constraints
	// (equal to Mapping when no constraints were given).
	Unconstrained model.Mapping
	// Layout is the placement on the grid when Machine was set.
	Layout *machine.Layout
}

// Remap re-solves a mapping request after lost processors have been
// removed from the platform: the degraded-mode companion to Map. When a
// runtime detects dead instances it calls Remap with the number of
// processors lost and rebuilds the pipeline from the returned mapping,
// which is optimal for the surviving machine (same DP/greedy machinery,
// smaller P). Memory and machine constraints are re-checked against the
// reduced budget, so a chain that no longer fits reports an error instead
// of a bogus mapping.
func Remap(req Request, lostProcs int) (Result, error) {
	if lostProcs < 0 {
		return Result{}, fmt.Errorf("core: negative processor loss %d", lostProcs)
	}
	if lostProcs >= req.Platform.Procs {
		return Result{}, fmt.Errorf("core: losing %d of %d processors leaves none to map onto",
			lostProcs, req.Platform.Procs)
	}
	req.Platform.Procs -= lostProcs
	return Map(req)
}

// Map solves a mapping request.
func Map(req Request) (Result, error) {
	if req.Chain == nil {
		return Result{}, fmt.Errorf("core: request has no chain")
	}
	if err := req.Chain.Validate(); err != nil {
		return Result{}, err
	}
	if err := req.Platform.Validate(); err != nil {
		return Result{}, err
	}
	if req.Trace.Enabled() || req.Metrics.Enabled() {
		start := time.Now()
		defer func() {
			req.Trace.SpanArgs("core", "map", 0, start, time.Since(start),
				map[string]any{"k": req.Chain.Len(), "P": req.Platform.Procs})
			req.Metrics.Observe("core.map_seconds", time.Since(start).Seconds())
		}()
	}
	switch req.Objective {
	case MinLatency:
		m, err := dp.MinLatency(req.Chain, req.Platform)
		if err != nil {
			return Result{}, err
		}
		return Result{Mapping: m, Algorithm: DP, Throughput: m.Throughput(),
			Latency: m.Latency(), Unconstrained: m}, nil
	case ThroughputUnderLatency:
		if req.LatencyBound <= 0 {
			return Result{}, fmt.Errorf("core: ThroughputUnderLatency needs a positive LatencyBound")
		}
		m, err := tradeoff.BestThroughputUnderLatency(req.Chain, req.Platform,
			req.LatencyBound, tradeoff.Options{DisableReplication: req.DisableReplication})
		if err != nil {
			return Result{}, err
		}
		return Result{Mapping: m, Algorithm: DP, Throughput: m.Throughput(),
			Latency: m.Latency(), Unconstrained: m}, nil
	}

	algo := req.Algorithm
	if algo == Auto {
		p, k := float64(req.Platform.Procs), float64(req.Chain.Len())
		if p*p*p*p*k*k*k <= autoDPBudget {
			algo = DP
		} else {
			algo = Greedy
		}
	}

	var m model.Mapping
	var err error
	switch algo {
	case DP:
		m, err = dp.MapChain(req.Chain, req.Platform, dp.Options{
			DisableReplication: req.DisableReplication,
			DisableClustering:  req.DisableClustering,
			Trace:              req.Trace,
			Metrics:            req.Metrics,
		})
	default:
		m, err = greedy.Map(req.Chain, req.Platform, greedy.Options{
			DisableReplication: req.DisableReplication,
			DisableClustering:  req.DisableClustering,
			Backtrack:          2,
			Trace:              req.Trace,
			Metrics:            req.Metrics,
		})
	}
	if err != nil {
		return Result{}, err
	}

	res := Result{
		Mapping:       m,
		Algorithm:     algo,
		Throughput:    m.Throughput(),
		Latency:       m.Latency(),
		Unconstrained: m,
	}
	if req.Machine != nil {
		fm, layout, err := machine.FeasibleOptimal(req.Chain, req.Platform, *req.Machine, dp.Options{
			DisableReplication: req.DisableReplication,
			DisableClustering:  req.DisableClustering,
			Trace:              req.Trace,
			Metrics:            req.Metrics,
		})
		if err != nil {
			return Result{}, err
		}
		res.Mapping = fm
		res.Throughput = fm.Throughput()
		res.Latency = fm.Latency()
		res.Layout = &layout
	}
	return res, nil
}
