package core

import (
	"strings"
	"testing"
)

// FuzzParseChainSpec checks that arbitrary input never panics the spec
// parser and that accepted specs produce chains the mapper can validate.
func FuzzParseChainSpec(f *testing.F) {
	f.Add(sampleSpec)
	f.Add(`{}`)
	f.Add(`{"platform":{"procs":4},"tasks":[],"edges":[]}`)
	f.Add(`{"platform":{"procs":2},"tasks":[{"name":"x","exec":[1,1,0]}],"edges":[]}`)
	f.Add(`[1,2,3]`)
	f.Add(`{"platform":{"procs":-1},"tasks":[{"name":"x","exec":[1e308,1e308,1e308]}],"edges":[]}`)
	f.Fuzz(func(t *testing.T, data string) {
		c, pl, err := ParseChainSpec(strings.NewReader(data))
		if err != nil {
			return
		}
		// Whatever parses must be internally consistent.
		if err := c.Validate(); err != nil {
			t.Errorf("accepted spec fails validation: %v", err)
		}
		if err := pl.Validate(); err != nil {
			t.Errorf("accepted platform fails validation: %v", err)
		}
	})
}

// FuzzDecodeMapping checks the mapping decoder against arbitrary module
// lists: decode must never panic, and Validate must catch inconsistent
// results.
func FuzzDecodeMapping(f *testing.F) {
	f.Add(0, 2, 4, 1, 2, 3, 2, 1)
	f.Add(0, 1, 1, 1, 1, 2, 1, 1)
	f.Add(-1, 9, 0, 0, 3, 1, -5, 2)
	f.Fuzz(func(t *testing.T, lo1, hi1, p1, r1, lo2, hi2, p2, r2 int) {
		c, pl, err := ParseChainSpec(strings.NewReader(sampleSpec))
		if err != nil {
			t.Fatal(err)
		}
		spec := MappingSpec{Modules: []ModuleSpec{
			{Lo: lo1, Hi: hi1, Procs: p1, Replicas: r1},
			{Lo: lo2, Hi: hi2, Procs: p2, Replicas: r2},
		}}
		m, err := DecodeMapping(spec, c)
		if err != nil {
			return
		}
		// Validate must reject structurally broken mappings rather than
		// letting them panic later; a nil error means the mapping is safe
		// to evaluate.
		if err := m.Validate(pl); err == nil {
			_ = m.Throughput()
			_ = m.Latency()
		}
	})
}
