package core

import (
	"math/rand"
	"reflect"
	"testing"

	"pipemap/internal/obs"
	"pipemap/internal/testutil"
)

// TestRemapEqualsFreshSolve asserts the degraded-remapping identity:
// solving after losing f processors is exactly a fresh solve on a platform
// with P-f processors — same mapping, same predicted throughput.
func TestRemapEqualsFreshSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	cfg := testutil.DefaultRandChainConfig()
	trials := 0
	for trial := 0; trial < 40; trial++ {
		c, pl := testutil.RandChain(rng, cfg, 5+rng.Intn(8))
		req := Request{Chain: c, Platform: pl}
		for f := 1; f <= 2; f++ {
			deg, degErr := Remap(req, f)
			fresh := req
			fresh.Platform.Procs = pl.Procs - f
			want, wantErr := Map(fresh)
			if (degErr == nil) != (wantErr == nil) {
				t.Fatalf("trial %d f=%d: feasibility disagreement: remap err=%v, fresh err=%v",
					trial, f, degErr, wantErr)
			}
			if degErr != nil {
				continue
			}
			trials++
			if !reflect.DeepEqual(deg.Mapping.Modules, want.Mapping.Modules) {
				t.Errorf("trial %d f=%d: remap differs from fresh solve:\nremap: %v\nfresh: %v",
					trial, f, &deg.Mapping, &want.Mapping)
			}
			if !testutil.AlmostEqual(deg.Throughput, want.Throughput, 1e-12) {
				t.Errorf("trial %d f=%d: throughput %g != %g", trial, f, deg.Throughput, want.Throughput)
			}
			if deg.Mapping.TotalProcs() > pl.Procs-f {
				t.Errorf("trial %d f=%d: degraded mapping uses %d procs, only %d survive",
					trial, f, deg.Mapping.TotalProcs(), pl.Procs-f)
			}
		}
	}
	if trials == 0 {
		t.Fatal("no feasible trials")
	}
}

// TestRemapRejectsTotalLoss checks the error paths around the processor
// budget.
func TestRemapRejectsTotalLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c, pl := testutil.RandChain(rng, testutil.DefaultRandChainConfig(), 4)
	req := Request{Chain: c, Platform: pl}
	if _, err := Remap(req, 4); err == nil {
		t.Error("losing every processor must fail")
	}
	if _, err := Remap(req, 9); err == nil {
		t.Error("losing more processors than exist must fail")
	}
	if _, err := Remap(req, -1); err == nil {
		t.Error("negative loss must fail")
	}
}

// TestMapInstrumentedIdentical asserts that attaching a tracer and
// registry to a core request does not change the result, and that the
// request-level span plus the underlying solver activity are recorded.
func TestMapInstrumentedIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	cfg := testutil.DefaultRandChainConfig()
	for trial := 0; trial < 10; trial++ {
		c, pl := testutil.RandChain(rng, cfg, 4+rng.Intn(6))
		plain, errPlain := Map(Request{Chain: c, Platform: pl})
		tr := obs.NewTracer()
		reg := obs.NewRegistry()
		inst, errInst := Map(Request{Chain: c, Platform: pl, Trace: tr, Metrics: reg})
		if (errPlain == nil) != (errInst == nil) {
			t.Fatalf("trial %d: error disagreement: plain=%v instrumented=%v", trial, errPlain, errInst)
		}
		if errPlain != nil {
			continue
		}
		if !reflect.DeepEqual(plain.Mapping.Modules, inst.Mapping.Modules) {
			t.Errorf("trial %d: instrumentation changed the mapping", trial)
		}
		foundMapSpan := false
		for _, e := range tr.Events() {
			if e.Cat == "core" && e.Name == "map" {
				foundMapSpan = true
			}
		}
		if !foundMapSpan {
			t.Errorf("trial %d: no core/map span recorded", trial)
		}
		if reg.Snapshot().Histograms["core.map_seconds"].Count == 0 {
			t.Errorf("trial %d: core.map_seconds histogram empty", trial)
		}
	}
}
