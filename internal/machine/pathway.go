package machine

import (
	"math"

	"pipemap/internal/model"
)

// DefaultPathwayCapacity is the number of logical pathways that may share
// one physical link in systolic mode (iWarp supported a small fixed
// number; the paper reports mappings becoming infeasible when the limit is
// exceeded).
const DefaultPathwayCapacity = 4

// PathwayReport summarizes the systolic pathway usage of a layout.
type PathwayReport struct {
	// MaxLoad is the largest number of pathways crossing one physical link.
	MaxLoad int
	// Pathways is the total number of logical pathways routed.
	Pathways int
	// Feasible is MaxLoad <= capacity.
	Feasible bool
}

// RoutingOptions configures pathway routing.
type RoutingOptions struct {
	// Capacity is the pathways-per-physical-link limit
	// (DefaultPathwayCapacity if zero).
	Capacity int
	// Torus routes each dimension in whichever direction is shorter with
	// wraparound, as on the iWarp torus; false uses plain mesh routing.
	Torus bool
}

// CheckPathways routes a logical pathway between every communicating pair
// of instances of adjacent modules and verifies that no physical link
// carries more than capacity pathways, using mesh dimension-order routes.
// Instance a of module i and instance b of module i+1 communicate iff they
// ever handle the same data set, i.e. a ≡ b (mod gcd(r_i, r_{i+1})).
func CheckPathways(m model.Mapping, l Layout, capacity int) PathwayReport {
	return RoutePathways(m, l, RoutingOptions{Capacity: capacity})
}

// RoutePathways is CheckPathways with explicit routing options, including
// torus wraparound.
func RoutePathways(m model.Mapping, l Layout, opt RoutingOptions) PathwayReport {
	capacity := opt.Capacity
	if capacity <= 0 {
		capacity = DefaultPathwayCapacity
	}
	// Index rectangles by (module, instance).
	rects := map[[2]int]Rect{}
	for _, pi := range l.Instances {
		rects[[2]int{pi.Module, pi.Instance}] = pi.Rect
	}
	// Load per directed link: key (row, col, dir) with dir 0=right, 1=down.
	load := map[[3]int]int{}
	total := 0
	for i := 0; i+1 < len(m.Modules); i++ {
		ra, rb := m.Modules[i].Replicas, m.Modules[i+1].Replicas
		g := gcd(ra, rb)
		for a := 0; a < ra; a++ {
			for b := 0; b < rb; b++ {
				if a%g != b%g {
					continue
				}
				from, okA := rects[[2]int{i, a}]
				to, okB := rects[[2]int{i + 1, b}]
				if !okA || !okB {
					continue
				}
				total++
				if opt.Torus {
					routeTorus(from, to, l.Grid, load)
				} else {
					routeDimensionOrder(from, to, load)
				}
			}
		}
	}
	maxLoad := 0
	for _, v := range load {
		if v > maxLoad {
			maxLoad = v
		}
	}
	return PathwayReport{MaxLoad: maxLoad, Pathways: total, Feasible: maxLoad <= capacity}
}

// routeDimensionOrder walks row-first then column-first from the center of
// one rectangle to another, incrementing the load of each traversed link.
func routeDimensionOrder(from, to Rect, load map[[3]int]int) {
	fr, fc := from.Center()
	tr, tc := to.Center()
	r0, c0 := int(math.Round(fr)), int(math.Round(fc))
	r1, c1 := int(math.Round(tr)), int(math.Round(tc))
	// Traverse rows at column c0.
	for r := min(r0, r1); r < max(r0, r1); r++ {
		load[[3]int{r, c0, 1}]++
	}
	// Traverse columns at row r1.
	for c := min(c0, c1); c < max(c0, c1); c++ {
		load[[3]int{r1, c, 0}]++
	}
}

// routeTorus walks row-first then column-first with wraparound, taking
// the shorter direction in each dimension (ties go the increasing way).
func routeTorus(from, to Rect, g Grid, load map[[3]int]int) {
	fr, fc := from.Center()
	tr, tc := to.Center()
	r0, c0 := int(math.Round(fr)), int(math.Round(fc))
	r1, c1 := int(math.Round(tr)), int(math.Round(tc))
	stepTorus(r0, r1, g.Rows, func(r int) { load[[3]int{r, c0, 1}]++ })
	stepTorus(c0, c1, g.Cols, func(c int) { load[[3]int{r1, c, 0}]++ })
}

// stepTorus visits the links of the shorter circular walk from a to b on
// a ring of n nodes. visit is called with the link index (the node the
// link leaves in the increasing direction).
func stepTorus(a, b, n int, visit func(int)) {
	if a == b || n <= 1 {
		return
	}
	fwd := ((b-a)%n + n) % n
	if fwd <= n-fwd {
		for i := 0; i < fwd; i++ {
			visit((a + i) % n)
		}
		return
	}
	for i := 0; i < n-fwd; i++ {
		visit(((b+i)%n + n) % n)
	}
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}
