// Package machine models the geometric constraints of the paper's target
// machines (section 6.1): the Fx compiler maps each module instance to a
// rectangular subarray of the processor grid, and on iWarp the systolic
// communication mode limits how many logical pathways may share a physical
// link. These constraints make some otherwise optimal mappings infeasible;
// the package provides a packer to test feasibility and a search for the
// best feasible mapping (the paper's Table 1 "Optimal Feasible Mapping").
package machine

import (
	"fmt"
	"sort"
)

// Grid is a rectangular processor array, e.g. the 8x8 iWarp torus used in
// the paper's experiments.
type Grid struct {
	Rows, Cols int
}

// Procs returns the total number of processors in the grid.
func (g Grid) Procs() int { return g.Rows * g.Cols }

// Validate checks the grid dimensions.
func (g Grid) Validate() error {
	if g.Rows < 1 || g.Cols < 1 {
		return fmt.Errorf("machine: invalid grid %dx%d", g.Rows, g.Cols)
	}
	return nil
}

// RectDims returns all (height, width) factorizations of area p that fit
// in the grid, most-square first. An empty result means p processors
// cannot form a rectangular subarray (e.g. a prime larger than both
// dimensions), which alone makes any mapping using p infeasible.
func (g Grid) RectDims(p int) [][2]int {
	var dims [][2]int
	for h := 1; h <= g.Rows && h <= p; h++ {
		if p%h != 0 {
			continue
		}
		w := p / h
		if w <= g.Cols {
			dims = append(dims, [2]int{h, w})
		}
	}
	sort.Slice(dims, func(i, j int) bool {
		di := abs(dims[i][0] - dims[i][1])
		dj := abs(dims[j][0] - dims[j][1])
		if di != dj {
			return di < dj
		}
		return dims[i][0] > dims[j][0]
	})
	return dims
}

// CanFormRect reports whether p processors can form any rectangle in the
// grid.
func (g Grid) CanFormRect(p int) bool {
	return len(g.RectDims(p)) > 0
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Rect is a placed rectangle: top-left corner (Row, Col), H rows by W
// columns.
type Rect struct {
	Row, Col, H, W int
}

// Center returns the rectangle's center coordinates (row, col), used for
// pathway routing.
func (r Rect) Center() (float64, float64) {
	return float64(r.Row) + float64(r.H-1)/2, float64(r.Col) + float64(r.W-1)/2
}

// PlacedInstance locates one module instance on the grid.
type PlacedInstance struct {
	Module   int
	Instance int
	Rect
}

// Layout is a complete placement of a mapping on a grid.
type Layout struct {
	Grid      Grid
	Instances []PlacedInstance
}

// String renders the layout as a character map: instance j of module i is
// drawn with the letter for module i (A, B, ...), lowercase alternating by
// instance parity so adjacent instances are distinguishable.
func (l Layout) String() string {
	rows := make([][]byte, l.Grid.Rows)
	for r := range rows {
		rows[r] = make([]byte, l.Grid.Cols)
		for c := range rows[r] {
			rows[r][c] = '.'
		}
	}
	for _, pi := range l.Instances {
		ch := byte('A' + pi.Module%26)
		if pi.Instance%2 == 1 {
			ch = byte('a' + pi.Module%26)
		}
		for r := pi.Row; r < pi.Row+pi.H; r++ {
			for c := pi.Col; c < pi.Col+pi.W; c++ {
				if r >= 0 && r < l.Grid.Rows && c >= 0 && c < l.Grid.Cols {
					rows[r][c] = ch
				}
			}
		}
	}
	out := ""
	for _, r := range rows {
		out += string(r) + "\n"
	}
	return out
}

// LayoutStats summarizes the geometric quality of a layout: how far
// communicating instances sit from each other. The paper reports processor
// locations to be a second-order effect (section 2.1); these statistics
// let users of the package check that assumption for their own layouts.
type LayoutStats struct {
	// Instances is the number of placed instances.
	Instances int
	// CellsUsed is the total area occupied.
	CellsUsed int
	// MeanNeighborDist and MaxNeighborDist are Manhattan distances between
	// the centers of instances of adjacent modules (all communicating
	// pairs).
	MeanNeighborDist float64
	MaxNeighborDist  float64
}

// Stats computes layout statistics for a mapping placed by Pack.
func (l Layout) Stats() LayoutStats {
	st := LayoutStats{Instances: len(l.Instances)}
	byModule := map[int][]Rect{}
	maxModule := -1
	for _, pi := range l.Instances {
		st.CellsUsed += pi.H * pi.W
		byModule[pi.Module] = append(byModule[pi.Module], pi.Rect)
		if pi.Module > maxModule {
			maxModule = pi.Module
		}
	}
	var sum float64
	var n int
	for mod := 0; mod < maxModule; mod++ {
		for _, a := range byModule[mod] {
			for _, b := range byModule[mod+1] {
				ar, ac := a.Center()
				br, bc := b.Center()
				d := mabs(ar-br) + mabs(ac-bc)
				sum += d
				n++
				if d > st.MaxNeighborDist {
					st.MaxNeighborDist = d
				}
			}
		}
	}
	if n > 0 {
		st.MeanNeighborDist = sum / float64(n)
	}
	return st
}

func mabs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
