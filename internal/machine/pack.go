package machine

import (
	"sort"

	"pipemap/internal/model"
)

// packNodeCap bounds the backtracking search; if exceeded, Pack reports
// the mapping as not packable (conservative: a feasible packing may exist).
const packNodeCap = 500_000

// Pack attempts to place every instance of the mapping onto the grid as
// pairwise disjoint rectangles. It returns the layout and true on success.
// The search is exact up to a node budget: it fills the grid cell by cell
// (first free cell must be covered by some rectangle or declared waste),
// deduplicating identical instances so replicas do not multiply the search
// space.
func Pack(m model.Mapping, g Grid) (Layout, bool) {
	if g.Validate() != nil {
		return Layout{}, false
	}
	// Expand instances grouped by module (identical rectangles).
	type group struct {
		module    int
		area      int
		remaining int
		dims      [][2]int
	}
	var groups []*group
	total := 0
	for i, mod := range m.Modules {
		dims := g.RectDims(mod.Procs)
		if len(dims) == 0 {
			return Layout{}, false
		}
		groups = append(groups, &group{
			module: i, area: mod.Procs, remaining: mod.Replicas, dims: dims,
		})
		total += mod.Procs * mod.Replicas
	}
	if total > g.Procs() {
		return Layout{}, false
	}
	waste := g.Procs() - total
	// Place large areas first: sort groups by area descending for the
	// candidate order at each cell.
	sort.Slice(groups, func(i, j int) bool { return groups[i].area > groups[j].area })

	occ := make([]bool, g.Procs())
	var placed []PlacedInstance
	nodes := 0
	var rec func(wasteLeft int) bool
	rec = func(wasteLeft int) bool {
		nodes++
		if nodes > packNodeCap {
			return false
		}
		// Find first free cell.
		cell := -1
		for i, o := range occ {
			if !o {
				cell = i
				break
			}
		}
		if cell < 0 {
			for _, gr := range groups {
				if gr.remaining > 0 {
					return false
				}
			}
			return true
		}
		row, col := cell/g.Cols, cell%g.Cols
		allPlaced := true
		for _, gr := range groups {
			if gr.remaining == 0 {
				continue
			}
			allPlaced = false
			for _, d := range gr.dims {
				h, w := d[0], d[1]
				if row+h > g.Rows || col+w > g.Cols {
					continue
				}
				if !fits(occ, g, row, col, h, w) {
					continue
				}
				setOcc(occ, g, row, col, h, w, true)
				gr.remaining--
				placed = append(placed, PlacedInstance{
					Module:   gr.module,
					Instance: m.Modules[gr.module].Replicas - gr.remaining - 1,
					Rect:     Rect{Row: row, Col: col, H: h, W: w},
				})
				if rec(wasteLeft) {
					return true
				}
				placed = placed[:len(placed)-1]
				gr.remaining++
				setOcc(occ, g, row, col, h, w, false)
			}
		}
		if allPlaced {
			return true // only waste cells remain
		}
		// Declare this cell wasted.
		if wasteLeft > 0 {
			occ[cell] = true
			if rec(wasteLeft - 1) {
				return true
			}
			occ[cell] = false
		}
		return false
	}
	if !rec(waste) {
		return Layout{}, false
	}
	return Layout{Grid: g, Instances: placed}, true
}

func fits(occ []bool, g Grid, row, col, h, w int) bool {
	for r := row; r < row+h; r++ {
		base := r * g.Cols
		for c := col; c < col+w; c++ {
			if occ[base+c] {
				return false
			}
		}
	}
	return true
}

func setOcc(occ []bool, g Grid, row, col, h, w int, v bool) {
	for r := row; r < row+h; r++ {
		base := r * g.Cols
		for c := col; c < col+w; c++ {
			occ[base+c] = v
		}
	}
}
