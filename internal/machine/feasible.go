package machine

import (
	"fmt"
	"sort"

	"pipemap/internal/dp"
	"pipemap/internal/model"
)

// Constraints bundles the machine-level feasibility rules applied on top
// of the abstract platform model.
type Constraints struct {
	// Grid is the processor array every module instance must occupy a
	// rectangle of.
	Grid Grid
	// Systolic additionally routes logical pathways between communicating
	// instances and enforces the per-link capacity.
	Systolic bool
	// PathwayCapacity is the per-link pathway limit in systolic mode
	// (DefaultPathwayCapacity if zero).
	PathwayCapacity int
	// Torus enables wraparound pathway routing (the iWarp array is a
	// torus); mesh routing otherwise.
	Torus bool
}

// Feasible reports whether a mapping satisfies the constraints, returning
// the packed layout when it does.
func Feasible(m model.Mapping, cons Constraints) (Layout, bool) {
	layout, ok := Pack(m, cons.Grid)
	if !ok {
		return Layout{}, false
	}
	if cons.Systolic {
		rep := RoutePathways(m, layout, RoutingOptions{
			Capacity: cons.PathwayCapacity, Torus: cons.Torus,
		})
		if !rep.Feasible {
			return Layout{}, false
		}
	}
	return layout, true
}

// FeasibleOptimal finds the best mapping that satisfies the machine
// constraints: candidate mappings are enumerated per clustering
// (exhaustively over processor vectors when the module count is small,
// otherwise around the DP optimum), ranked by predicted throughput, and
// the best feasible one is returned with its layout.
func FeasibleOptimal(c *model.Chain, pl model.Platform, cons Constraints, opt dp.Options) (model.Mapping, Layout, error) {
	if err := c.Validate(); err != nil {
		return model.Mapping{}, Layout{}, err
	}
	if err := cons.Grid.Validate(); err != nil {
		return model.Mapping{}, Layout{}, err
	}
	if cons.Grid.Procs() < pl.Procs {
		pl.Procs = cons.Grid.Procs()
	}

	type cand struct {
		m   model.Mapping
		thr float64
	}
	var cands []cand
	seen := map[string]bool{}
	add := func(m model.Mapping) {
		key := m.String()
		if seen[key] {
			return
		}
		seen[key] = true
		cands = append(cands, cand{m, m.Throughput()})
	}

	clusterings := model.AllClusterings(c.Len())
	if opt.DisableClustering {
		clusterings = [][]model.Span{model.Singletons(c.Len())}
	}
	for _, spans := range clusterings {
		l := len(spans)
		mins := make([]int, l)
		repl := make([]bool, l)
		ok := true
		for i, sp := range spans {
			min := c.ModuleMinProcs(sp.Lo, sp.Hi, pl.MemPerProc)
			if min < 0 || min > pl.Procs {
				ok = false
				break
			}
			mins[i] = min
			repl[i] = c.ModuleReplicable(sp.Lo, sp.Hi) && !opt.DisableReplication
		}
		if !ok {
			continue
		}
		build := func(raw []int) model.Mapping {
			mods := make([]model.Module, l)
			for i, sp := range spans {
				r := model.SplitReplicas(raw[i], mins[i], repl[i])
				mods[i] = model.Module{Lo: sp.Lo, Hi: sp.Hi,
					Procs: r.ProcsPerInstance, Replicas: r.Replicas}
			}
			return model.Mapping{Chain: c, Modules: mods}
		}
		if l <= 3 {
			// Exhaustive over raw processor vectors.
			raw := make([]int, l)
			var rec func(i, used int)
			rec = func(i, used int) {
				if i == l {
					add(build(raw))
					return
				}
				for p := mins[i]; used+p <= pl.Procs; p++ {
					raw[i] = p
					rec(i+1, used+p)
				}
			}
			rec(0, 0)
			continue
		}
		// Larger module counts: DP optimum for this clustering plus a
		// neighbourhood of raw-count perturbations.
		dm, err := dp.AssignClustered(c, pl, spans, opt)
		if err != nil {
			continue
		}
		base := make([]int, l)
		for i, mod := range dm.Modules {
			base[i] = mod.Procs * mod.Replicas
		}
		var rec func(i int, raw []int, used int)
		rec = func(i int, raw []int, used int) {
			if used > pl.Procs {
				return
			}
			if i == l {
				add(build(raw))
				return
			}
			for d := -3; d <= 3; d++ {
				p := base[i] + d
				if p < mins[i] {
					continue
				}
				raw[i] = p
				rec(i+1, raw, used+p)
			}
		}
		rec(0, make([]int, l), 0)
	}
	if len(cands) == 0 {
		return model.Mapping{}, Layout{}, fmt.Errorf("machine: no candidate mappings for %d tasks on %d processors",
			c.Len(), pl.Procs)
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].thr > cands[j].thr })
	for _, cd := range cands {
		if layout, ok := Feasible(cd.m, cons); ok {
			return cd.m, layout, nil
		}
	}
	return model.Mapping{}, Layout{}, fmt.Errorf("machine: no feasible mapping on %dx%d grid",
		cons.Grid.Rows, cons.Grid.Cols)
}
