package machine

import (
	"strings"
	"testing"

	"pipemap/internal/dp"
	"pipemap/internal/model"
)

func TestRectDims(t *testing.T) {
	g := Grid{Rows: 8, Cols: 8}
	cases := []struct {
		p    int
		want int // number of factorizations
	}{
		{1, 1},  // 1x1
		{4, 3},  // 1x4, 2x2, 4x1
		{13, 0}, // prime > 8: no rectangle fits
		{64, 1}, // 8x8
		{12, 4}, // 2x6, 3x4, 4x3, 6x2 (1x12 and 12x1 do not fit)
		{16, 3}, // 2x8, 4x4, 8x2
	}
	for _, c := range cases {
		if got := len(g.RectDims(c.p)); got != c.want {
			t.Errorf("RectDims(%d) has %d options, want %d: %v", c.p, got, c.want, g.RectDims(c.p))
		}
	}
	if !g.CanFormRect(6) || g.CanFormRect(13) {
		t.Error("CanFormRect misbehaves for 6 or 13")
	}
	// Most-square ordering.
	if d := g.RectDims(16)[0]; d != [2]int{4, 4} {
		t.Errorf("RectDims(16)[0] = %v, want [4 4]", d)
	}
}

func TestGridValidate(t *testing.T) {
	if (Grid{Rows: 0, Cols: 8}).Validate() == nil {
		t.Error("degenerate grid accepted")
	}
	if (Grid{Rows: 8, Cols: 8}).Validate() != nil {
		t.Error("valid grid rejected")
	}
}

// tableOneChain is a 2-module chain shaped like the paper's FFT-Hist
// mapping: module procs and replicas are set per test.
func twoModuleMapping(p1, r1, p2, r2 int) model.Mapping {
	c := &model.Chain{
		Tasks: []model.Task{
			{Name: "m1", Exec: model.PolyExec{C2: 1}, Replicable: true},
			{Name: "m2", Exec: model.PolyExec{C2: 1}, Replicable: true},
		},
		ICom: []model.CostFunc{model.ZeroExec()},
		ECom: []model.CommFunc{model.PolyComm{C1: 0.1}},
	}
	return model.Mapping{Chain: c, Modules: []model.Module{
		{Lo: 0, Hi: 1, Procs: p1, Replicas: r1},
		{Lo: 1, Hi: 2, Procs: p2, Replicas: r2},
	}}
}

func TestPackPaperMapping(t *testing.T) {
	// Table 1, row 1: 8 instances of 3 processors + 10 instances of 4
	// processors exactly fill the 8x8 iWarp array.
	m := twoModuleMapping(3, 8, 4, 10)
	layout, ok := Pack(m, Grid{Rows: 8, Cols: 8})
	if !ok {
		t.Fatal("paper's 256x256 message mapping did not pack")
	}
	if len(layout.Instances) != 18 {
		t.Fatalf("packed %d instances, want 18", len(layout.Instances))
	}
	// Disjointness and bounds.
	occ := map[[2]int]bool{}
	for _, pi := range layout.Instances {
		for r := pi.Row; r < pi.Row+pi.H; r++ {
			for c := pi.Col; c < pi.Col+pi.W; c++ {
				if r < 0 || r >= 8 || c < 0 || c >= 8 {
					t.Fatalf("instance out of bounds: %+v", pi)
				}
				if occ[[2]int{r, c}] {
					t.Fatalf("overlap at (%d,%d)", r, c)
				}
				occ[[2]int{r, c}] = true
			}
		}
	}
	if len(occ) != 64 {
		t.Errorf("covered %d cells, want 64", len(occ))
	}
}

func TestPackRejectsNonRectangleArea(t *testing.T) {
	// 13 is prime and exceeds both grid dimensions.
	m := twoModuleMapping(13, 1, 4, 1)
	if _, ok := Pack(m, Grid{Rows: 8, Cols: 8}); ok {
		t.Error("13-processor rectangle packed on an 8x8 grid")
	}
}

func TestPackRejectsOverCapacity(t *testing.T) {
	m := twoModuleMapping(8, 5, 8, 4) // 72 > 64
	if _, ok := Pack(m, Grid{Rows: 8, Cols: 8}); ok {
		t.Error("over-capacity mapping packed")
	}
}

func TestPackAllowsWaste(t *testing.T) {
	// 62 of 64 cells used (paper's 256 systolic case: 3x6 + 4x11 = 62).
	m := twoModuleMapping(3, 6, 4, 11)
	if _, ok := Pack(m, Grid{Rows: 8, Cols: 8}); !ok {
		t.Error("62-cell mapping failed to pack on 64 cells")
	}
}

func TestLayoutString(t *testing.T) {
	m := twoModuleMapping(4, 1, 4, 1)
	layout, ok := Pack(m, Grid{Rows: 4, Cols: 4})
	if !ok {
		t.Fatal("simple mapping failed to pack")
	}
	s := layout.String()
	if !strings.Contains(s, "A") || !strings.Contains(s, "B") {
		t.Errorf("layout rendering missing modules:\n%s", s)
	}
}

func TestCheckPathways(t *testing.T) {
	m := twoModuleMapping(4, 2, 4, 2)
	layout, ok := Pack(m, Grid{Rows: 4, Cols: 4})
	if !ok {
		t.Fatal("failed to pack")
	}
	rep := CheckPathways(m, layout, 4)
	// gcd(2,2)=2: pairs (0,0) and (1,1) -> 2 pathways.
	if rep.Pathways != 2 {
		t.Errorf("routed %d pathways, want 2", rep.Pathways)
	}
	if !rep.Feasible {
		t.Errorf("2 pathways reported infeasible: %+v", rep)
	}
	// Capacity 0 uses the default.
	rep0 := CheckPathways(m, layout, 0)
	if rep0.MaxLoad != rep.MaxLoad {
		t.Errorf("default capacity changed load: %+v vs %+v", rep0, rep)
	}
}

func TestPathwayPairsFollowGCD(t *testing.T) {
	m := twoModuleMapping(1, 3, 1, 2)
	layout, ok := Pack(m, Grid{Rows: 3, Cols: 3})
	if !ok {
		t.Fatal("failed to pack")
	}
	rep := CheckPathways(m, layout, 8)
	// gcd(3,2)=1: all 6 pairs communicate.
	if rep.Pathways != 6 {
		t.Errorf("routed %d pathways, want 6", rep.Pathways)
	}
}

func TestFeasibleOptimalAdjustsInfeasibleOptimum(t *testing.T) {
	// A chain whose unconstrained optimum gives a module 13 processors;
	// the feasible search must settle on a rectangle-formable count
	// (mirrors Table 1's 512 systolic row where 13 -> 12).
	c := &model.Chain{
		Tasks: []model.Task{
			{Name: "a", Exec: model.PolyExec{C2: 3}},
			{Name: "b", Exec: model.PolyExec{C2: 13}},
		},
		ICom: []model.CostFunc{model.ZeroExec()},
		ECom: []model.CommFunc{model.ZeroComm()},
	}
	pl := model.Platform{Procs: 16}
	um, err := dp.Assign(c, pl)
	if err != nil {
		t.Fatal(err)
	}
	if um.Modules[1].Procs != 13 {
		t.Fatalf("unconstrained optimum gave %d procs, test wants 13", um.Modules[1].Procs)
	}
	fm, layout, err := FeasibleOptimal(c, pl, Constraints{Grid: Grid{Rows: 4, Cols: 4}},
		dp.Options{DisableClustering: true, DisableReplication: true})
	if err != nil {
		t.Fatal(err)
	}
	if fm.Modules[1].Procs == 13 {
		t.Errorf("feasible search kept a non-rectangular 13: %v", &fm)
	}
	if fm.Throughput() > um.Throughput() {
		t.Errorf("feasible %g beats unconstrained optimum %g", fm.Throughput(), um.Throughput())
	}
	if len(layout.Instances) == 0 {
		t.Error("no layout returned")
	}
}

func TestFeasibleOptimalMatchesUnconstrainedWhenPackable(t *testing.T) {
	c := &model.Chain{
		Tasks: []model.Task{
			{Name: "a", Exec: model.PolyExec{C2: 8}, Replicable: true},
			{Name: "b", Exec: model.PolyExec{C2: 8}, Replicable: true},
		},
		ICom: []model.CostFunc{model.ZeroExec()},
		ECom: []model.CommFunc{model.ZeroComm()},
	}
	pl := model.Platform{Procs: 16}
	um, err := dp.MapChain(c, pl, dp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fm, _, err := FeasibleOptimal(c, pl, Constraints{Grid: Grid{Rows: 4, Cols: 4}}, dp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if fm.Throughput() < um.Throughput()*0.999 {
		t.Errorf("feasible optimum %g below unconstrained %g", fm.Throughput(), um.Throughput())
	}
}

func TestFeasibleOptimalErrors(t *testing.T) {
	bad := &model.Chain{}
	if _, _, err := FeasibleOptimal(bad, model.Platform{Procs: 4},
		Constraints{Grid: Grid{Rows: 2, Cols: 2}}, dp.Options{}); err == nil {
		t.Error("invalid chain accepted")
	}
	c := &model.Chain{
		Tasks: []model.Task{{Name: "x", Exec: model.PolyExec{C2: 1}, MinProcs: 9}},
	}
	if _, _, err := FeasibleOptimal(c, model.Platform{Procs: 4},
		Constraints{Grid: Grid{Rows: 2, Cols: 2}}, dp.Options{}); err == nil {
		t.Error("unmappable chain accepted")
	}
}

func TestRectCenter(t *testing.T) {
	r := Rect{Row: 2, Col: 4, H: 3, W: 1}
	cr, cc := r.Center()
	if cr != 3 || cc != 4 {
		t.Errorf("Center = (%g,%g), want (3,4)", cr, cc)
	}
}

func TestTorusRoutingShorterThanMesh(t *testing.T) {
	// Two instances at opposite edges of the grid: a torus route wraps
	// around and uses fewer links than the mesh route.
	g := Grid{Rows: 8, Cols: 8}
	m := twoModuleMapping(8, 1, 8, 1)
	layout := Layout{Grid: g, Instances: []PlacedInstance{
		{Module: 0, Instance: 0, Rect: Rect{Row: 0, Col: 0, H: 1, W: 8}},
		{Module: 1, Instance: 0, Rect: Rect{Row: 7, Col: 0, H: 1, W: 8}},
	}}
	mesh := RoutePathways(m, layout, RoutingOptions{Capacity: 100})
	torus := RoutePathways(m, layout, RoutingOptions{Capacity: 100, Torus: true})
	if mesh.Pathways != 1 || torus.Pathways != 1 {
		t.Fatalf("pathway counts %d/%d, want 1/1", mesh.Pathways, torus.Pathways)
	}
	// Mesh walks 7 row links; torus walks 1 (wraparound). Compare total
	// link loads via MaxLoad on a single path: both 1, so instead count by
	// routing two opposite-corner paths... simply assert feasibility and
	// rely on stepTorus unit behaviour below.
	if !mesh.Feasible || !torus.Feasible {
		t.Error("single pathway infeasible")
	}
}

func TestStepTorusChoosesShortSide(t *testing.T) {
	count := func(a, b, n int) int {
		c := 0
		stepTorus(a, b, n, func(int) { c++ })
		return c
	}
	if got := count(0, 7, 8); got != 1 {
		t.Errorf("0->7 on ring of 8 took %d links, want 1 (wraparound)", got)
	}
	if got := count(0, 3, 8); got != 3 {
		t.Errorf("0->3 took %d links, want 3", got)
	}
	if got := count(6, 1, 8); got != 3 {
		t.Errorf("6->1 took %d links, want 3 (wraparound)", got)
	}
	if got := count(4, 4, 8); got != 0 {
		t.Errorf("self route took %d links", got)
	}
	if got := count(0, 4, 8); got != 4 {
		t.Errorf("antipodal route took %d links, want 4", got)
	}
	if got := count(0, 1, 1); got != 0 {
		t.Errorf("degenerate ring took %d links", got)
	}
}

func TestFeasibleWithTorusAtLeastAsPermissive(t *testing.T) {
	// Wraparound can only shorten routes, so torus feasibility is implied
	// by mesh feasibility for any capacity.
	m := twoModuleMapping(4, 2, 4, 2)
	g := Grid{Rows: 4, Cols: 4}
	layout, ok := Pack(m, g)
	if !ok {
		t.Fatal("failed to pack")
	}
	for cap := 1; cap <= 4; cap++ {
		mesh := RoutePathways(m, layout, RoutingOptions{Capacity: cap})
		torus := RoutePathways(m, layout, RoutingOptions{Capacity: cap, Torus: true})
		if mesh.Feasible && !torus.Feasible {
			t.Errorf("cap %d: mesh feasible but torus not (loads %d vs %d)",
				cap, mesh.MaxLoad, torus.MaxLoad)
		}
	}
}

func TestLayoutStats(t *testing.T) {
	m := twoModuleMapping(3, 8, 4, 10)
	layout, ok := Pack(m, Grid{Rows: 8, Cols: 8})
	if !ok {
		t.Fatal("failed to pack")
	}
	st := layout.Stats()
	if st.Instances != 18 || st.CellsUsed != 64 {
		t.Errorf("stats %+v, want 18 instances / 64 cells", st)
	}
	if st.MeanNeighborDist <= 0 || st.MaxNeighborDist < st.MeanNeighborDist {
		t.Errorf("distance stats inconsistent: %+v", st)
	}
	// On an 8x8 grid no Manhattan distance exceeds 14.
	if st.MaxNeighborDist > 14 {
		t.Errorf("max distance %g impossible on 8x8", st.MaxNeighborDist)
	}
	if (Layout{}).Stats().Instances != 0 {
		t.Error("empty layout stats")
	}
}
