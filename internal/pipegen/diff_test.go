package pipegen_test

// The differential battery: a generated executor must be bit-identical to
// the generic fxrt pipeline running the same mapping structure on the
// same inputs — not approximately equal, byte-for-byte on histogram bins,
// detection lists, track tables, and depth pixels. The kernels are
// floating point, so this only holds because both sides partition work
// with fxrt.BlockRange and merge partials in worker order; any drift in
// the fused task bodies shows up here immediately.

import (
	"fmt"
	"reflect"
	"testing"

	"pipemap/internal/apps"
	"pipemap/internal/fxrt"
	"pipemap/internal/gen/ffthist256"
	"pipemap/internal/gen/radar64"
	"pipemap/internal/gen/stereo128"
	"pipemap/internal/ingest"
	"pipemap/internal/kernels"
	"pipemap/internal/model"
)

// Every generated executor must plug into the ingestion data plane.
var (
	_ ingest.Backend = (*ffthist256.Executor)(nil)
	_ ingest.Backend = (*radar64.Executor)(nil)
	_ ingest.Backend = (*stereo128.Executor)(nil)
)

// runGeneric streams inputs through a generic fxrt pipeline and returns
// the per-data-set results in push order.
func runGeneric(t *testing.T, pl *fxrt.Pipeline, edges []fxrt.Edge, inputs []fxrt.DataSet) []fxrt.StreamResult {
	t.Helper()
	st, err := pl.Stream(fxrt.StreamOptions{Edges: edges})
	if err != nil {
		t.Fatalf("generic stream: %v", err)
	}
	chans := make([]<-chan fxrt.StreamResult, len(inputs))
	for i, in := range inputs {
		ch, err := st.Push(nil, in)
		if err != nil {
			t.Fatalf("generic push %d: %v", i, err)
		}
		chans[i] = ch
	}
	out := make([]fxrt.StreamResult, len(inputs))
	for i, ch := range chans {
		out[i] = <-ch
	}
	st.Close()
	return out
}

// decodeAll synthesizes one fresh input per seed through the app's codec.
// The kernels mutate data sets in place, so each side of a differential
// run must decode its own copies.
func decodeAll(t *testing.T, dec func(seed int) (fxrt.DataSet, error), seeds []int) []fxrt.DataSet {
	t.Helper()
	out := make([]fxrt.DataSet, len(seeds))
	for i, s := range seeds {
		ds, err := dec(s)
		if err != nil {
			t.Fatalf("decode seed %d: %v", s, err)
		}
		out[i] = ds
	}
	return out
}

func seedInput(seed int) []byte { return []byte(fmt.Sprintf(`{"seed":%d}`, seed)) }

func diffFFTHist(t *testing.T, n int, seeds []int) {
	t.Helper()
	runner := apps.FFTHistRunner{N: n}
	m := model.Mapping{Chain: apps.FFTHistStructure(n), Modules: ffthist256.Modules()}
	pl, edges, err := runner.Pipeline(m)
	if err != nil {
		t.Fatalf("generic pipeline: %v", err)
	}
	codec := apps.FFTHistCodec{Runner: runner}
	dec := func(s int) (fxrt.DataSet, error) { return codec.Decode(seedInput(s)) }
	want := runGeneric(t, pl, edges, decodeAll(t, dec, seeds))

	ex, err := ffthist256.New(ffthist256.Config{N: n})
	if err != nil {
		t.Fatalf("generated new: %v", err)
	}
	defer ex.Close()
	genIn := decodeAll(t, dec, seeds)
	got, err := ex.Run(func(i int) kernels.Matrix { return genIn[i].(kernels.Matrix) }, len(seeds))
	if err != nil {
		t.Fatalf("generated run: %v", err)
	}
	for i := range seeds {
		w := want[i].DS.(*kernels.Histogram)
		g := got[i].DS.(*kernels.Histogram)
		if !reflect.DeepEqual(w, g) {
			t.Errorf("seed %d: histogram differs\ngeneric:   %+v\ngenerated: %+v", seeds[i], w, g)
		}
	}
}

func diffRadar(t *testing.T, pulses, gates int, seeds []int) {
	t.Helper()
	runner := apps.RadarRunner{Pulses: pulses, Gates: gates}
	m := model.Mapping{Chain: apps.RadarStructure(), Modules: radar64.Modules()}
	pl, tracks, err := runner.Pipeline(m)
	if err != nil {
		t.Fatalf("generic pipeline: %v", err)
	}
	codec := apps.RadarCodec{Runner: runner}
	dec := func(s int) (fxrt.DataSet, error) { return codec.Decode(seedInput(s)) }
	want := runGeneric(t, pl, nil, decodeAll(t, dec, seeds))

	ex, err := radar64.New(radar64.Config{Pulses: pulses, Gates: gates})
	if err != nil {
		t.Fatalf("generated new: %v", err)
	}
	defer ex.Close()
	genIn := decodeAll(t, dec, seeds)
	got, err := ex.Run(func(i int) *apps.RadarData { return genIn[i].(*apps.RadarData) }, len(seeds))
	if err != nil {
		t.Fatalf("generated run: %v", err)
	}
	for i := range seeds {
		w := want[i].DS.(*apps.RadarData)
		g := got[i].DS.(*apps.RadarData)
		if !reflect.DeepEqual(w.Dets, g.Dets) {
			t.Errorf("seed %d: detections differ\ngeneric:   %+v\ngenerated: %+v", seeds[i], w.Dets, g.Dets)
		}
	}
	if gotTracks := ex.Tracks(); !reflect.DeepEqual(tracks, gotTracks) {
		t.Errorf("track tables differ\ngeneric:   %v\ngenerated: %v", tracks, gotTracks)
	}
}

func diffStereo(t *testing.T, w, h, nd int, seeds []int) {
	t.Helper()
	runner := apps.StereoRunner{W: w, H: h, Disparities: nd}
	m := model.Mapping{Chain: apps.StereoStructure(), Modules: stereo128.Modules()}
	pl, err := runner.Pipeline(m)
	if err != nil {
		t.Fatalf("generic pipeline: %v", err)
	}
	codec := apps.StereoCodec{Runner: runner}
	dec := func(s int) (fxrt.DataSet, error) { return codec.Decode(seedInput(s)) }
	want := runGeneric(t, pl, nil, decodeAll(t, dec, seeds))

	ex, err := stereo128.New(stereo128.Config{W: w, H: h, Disparities: nd})
	if err != nil {
		t.Fatalf("generated new: %v", err)
	}
	defer ex.Close()
	genIn := decodeAll(t, dec, seeds)
	got, err := ex.Run(func(i int) *apps.StereoData { return genIn[i].(*apps.StereoData) }, len(seeds))
	if err != nil {
		t.Fatalf("generated run: %v", err)
	}
	for i := range seeds {
		wd := want[i].DS.(*apps.StereoData)
		gd := got[i].DS.(*apps.StereoData)
		if !reflect.DeepEqual(wd.Depth, gd.Depth) {
			t.Errorf("seed %d: depth maps differ", seeds[i])
		}
		if !reflect.DeepEqual(wd.Errs, gd.Errs) {
			t.Errorf("seed %d: error planes differ", seeds[i])
		}
	}
}

func TestGeneratedMatchesGenericFFTHist(t *testing.T) {
	diffFFTHist(t, 32, []int{0, 1, 2, 3, 4, 5, 6, 7})
}

func TestGeneratedMatchesGenericRadar(t *testing.T) {
	diffRadar(t, 8, 32, []int{0, 1, 2, 3, 4, 5})
}

func TestGeneratedMatchesGenericStereo(t *testing.T) {
	diffStereo(t, 32, 16, 4, []int{0, 1, 2, 3})
}

// FuzzGeneratedMatchesGeneric drives single-seed differential runs with
// fuzzer-chosen apps and seeds; the committed corpus under testdata/fuzz
// keeps one case per app in every `go test` run.
func FuzzGeneratedMatchesGeneric(f *testing.F) {
	f.Add(byte('f'), 3)
	f.Add(byte('r'), 11)
	f.Add(byte('s'), 7)
	f.Fuzz(func(t *testing.T, app byte, seed int) {
		if seed < 0 {
			seed = -(seed + 1)
		}
		seed %= 1 << 16
		switch app {
		case 'r':
			diffRadar(t, 8, 16, []int{seed})
		case 's':
			diffStereo(t, 16, 8, 2, []int{seed})
		default:
			diffFFTHist(t, 16, []int{seed})
		}
	})
}
