package pipegen

import (
	"fmt"
	"sort"
	"strings"
)

// appDef binds one application to the generator: the concrete boundary
// types of its task chain, the Config surface of the emitted package, any
// extra executor state, and the per-task kernel code the fused attempt
// bodies are assembled from. The task bodies must stay semantically
// identical to the generic runners in internal/apps — the differential
// test battery holds the two bit-identical.
type appDef struct {
	name        string
	tasks       int
	inType      string
	taskOut     []string
	defaultSize int
	importApps  bool

	emitConfigFields func(e *emitter, size int)
	emitDefaults     func(e *emitter, size int)
	emitValidate     func(e *emitter)
	emitState        func(e *emitter)
	emitInit         func(e *emitter)
	emitBody         func(e *emitter, m genModule)
	emitExtraMethods func(e *emitter)
}

// Apps lists the application names the generator binds.
func Apps() []string {
	names := make([]string, 0, len(appDefs))
	for name := range appDefs {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func appByName(name string) (*appDef, error) {
	app, ok := appDefs[name]
	if !ok {
		return nil, fmt.Errorf("pipegen: unknown app %q (want one of %s)", name, strings.Join(Apps(), ", "))
	}
	return app, nil
}

var appDefs = map[string]*appDef{
	"ffthist": ffthistDef,
	"radar":   radarDef,
	"stereo":  stereoDef,
}

func emitConfig(e *emitter, app *appDef, size int) {
	e.p("// Config configures one executor instance. The mapping structure is")
	e.p("// baked; sizes and the fault-tolerance policy remain per-executor so")
	e.p("// tests and benchmarks can scale the workload without regenerating.")
	e.p("type Config struct {")
	app.emitConfigFields(e, size)
	e.p("\t// Retry controls per-data-set retries within a module (the same")
	e.p("\t// policy fxrt applies per stage).")
	e.p("\tRetry fxrt.RetryPolicy")
	e.p("\t// StageDeadline bounds one attempt of any module; zero disables.")
	e.p("\tStageDeadline time.Duration")
	e.p("\t// Monitor observes attempts, retries, timeouts, drops, and")
	e.p("\t// completions; nil disables observation (all methods are nil-safe).")
	e.p("\tMonitor *live.Monitor")
	e.p("}")
	e.p("")
}

// ---------------------------------------------------------------- ffthist

var ffthistDef = &appDef{
	name:        "ffthist",
	tasks:       3,
	inType:      "kernels.Matrix",
	taskOut:     []string{"kernels.Matrix", "kernels.Matrix", "*kernels.Histogram"},
	defaultSize: 256,
	importApps:  false,
	emitConfigFields: func(e *emitter, size int) {
		e.p("\t// N is the matrix dimension (a power of two; default %d).", size)
		e.p("\tN int")
	},
	emitDefaults: func(e *emitter, size int) {
		e.p("\tif cfg.N == 0 {")
		e.p("\t\tcfg.N = %d", size)
		e.p("\t}")
	},
	emitValidate: func(e *emitter) {
		e.p("\tif cfg.N < 2 || cfg.N&(cfg.N-1) != 0 {")
		e.p("\t\treturn nil, fmt.Errorf(\"ffthist: size %%d must be a power of two\", cfg.N)")
		e.p("\t}")
	},
	emitState:        func(e *emitter) {},
	emitInit:         func(e *emitter) {},
	emitExtraMethods: func(e *emitter) {},
	emitBody: func(e *emitter, m genModule) {
		e.p("\t\tmat := in")
		for t := m.Lo; t < m.Hi; t++ {
			switch t {
			case 0:
				e.p("\t\t// colffts: FFT every column in place.")
				e.p("\t\tif err := g.ParallelFor(mat.Cols, func(c0, c1 int) error {")
				e.p("\t\t\treturn kernels.FFTCols(mat, c0, c1)")
				e.p("\t\t}); err != nil {")
				e.p("\t\t\treturn %s, err", m.OutZero)
				e.p("\t\t}")
			case 1:
				e.p("\t\t// Redistribution into rowffts: column-major to row-major blocks")
				e.p("\t\t// (the transpose edge, executed receiver-side).")
				e.p("\t\t{")
				e.p("\t\t\tout := kernels.NewMatrix(mat.Cols, mat.Rows)")
				e.p("\t\t\tif err := g.ParallelFor(out.Rows, func(r0, r1 int) error {")
				e.p("\t\t\t\treturn kernels.Transpose(mat, out, r0, r1)")
				e.p("\t\t\t}); err != nil {")
				e.p("\t\t\t\treturn %s, err", m.OutZero)
				e.p("\t\t\t}")
				e.p("\t\t\tmat = out")
				e.p("\t\t}")
				e.p("\t\t// rowffts: FFT every row in place.")
				e.p("\t\tif err := g.ParallelFor(mat.Rows, func(r0, r1 int) error {")
				e.p("\t\t\treturn kernels.FFTRows(mat, r0, r1)")
				e.p("\t\t}); err != nil {")
				e.p("\t\t\treturn %s, err", m.OutZero)
				e.p("\t\t}")
			case 2:
				e.p("\t\t// hist: per-worker partial histograms over block row ranges,")
				e.p("\t\t// merged in worker order (deterministic float summation order).")
				e.p("\t\tpartials := make([]*kernels.Histogram, stage%dProcs)", m.Index)
				e.p("\t\tif err := g.ParallelFor(stage%dProcs, func(i0, i1 int) error {", m.Index)
				e.p("\t\t\tfor i := i0; i < i1; i++ {")
				e.p("\t\t\t\th := kernels.NewHistogram(64, -6, 6)")
				e.p("\t\t\t\tr0, r1 := fxrt.BlockRange(mat.Rows, stage%dProcs, i)", m.Index)
				e.p("\t\t\t\tif r0 < r1 {")
				e.p("\t\t\t\t\th.AccumulateMatrix(mat, r0, r1)")
				e.p("\t\t\t\t}")
				e.p("\t\t\t\tpartials[i] = h")
				e.p("\t\t\t}")
				e.p("\t\t\treturn nil")
				e.p("\t\t}); err != nil {")
				e.p("\t\t\treturn nil, err")
				e.p("\t\t}")
				e.p("\t\ttotal := kernels.NewHistogram(64, -6, 6)")
				e.p("\t\tfor _, h := range partials {")
				e.p("\t\t\ttotal.Merge(h)")
				e.p("\t\t}")
				e.p("\t\treturn total, nil")
			}
		}
		if m.Hi-1 != 2 {
			e.p("\t\treturn mat, nil")
		}
	},
}

// ------------------------------------------------------------------ radar

var radarDef = &appDef{
	name:        "radar",
	tasks:       4,
	inType:      "*apps.RadarData",
	taskOut:     []string{"*apps.RadarData", "*apps.RadarData", "*apps.RadarData", "*apps.RadarData"},
	defaultSize: 256,
	importApps:  true,
	emitConfigFields: func(e *emitter, size int) {
		e.p("\t// Pulses and Gates give the coherent-interval cube shape (powers")
		e.p("\t// of two; defaults 16 x %d).", size)
		e.p("\tPulses, Gates int")
	},
	emitDefaults: func(e *emitter, size int) {
		e.p("\tif cfg.Pulses == 0 {")
		e.p("\t\tcfg.Pulses = 16")
		e.p("\t}")
		e.p("\tif cfg.Gates == 0 {")
		e.p("\t\tcfg.Gates = %d", size)
		e.p("\t}")
	},
	emitValidate: func(e *emitter) {
		e.p("\tif cfg.Pulses < 2 || cfg.Pulses&(cfg.Pulses-1) != 0 || cfg.Gates < 2 || cfg.Gates&(cfg.Gates-1) != 0 {")
		e.p("\t\treturn nil, fmt.Errorf(\"radar: cube %%dx%%d must have power-of-two dimensions\", cfg.Pulses, cfg.Gates)")
		e.p("\t}")
	},
	emitState: func(e *emitter) {
		e.p("\t// chirp is the frequency-domain matched-filter reference, computed")
		e.p("\t// once at startup (apps.RadarChirp, shared with the generic runner")
		e.p("\t// so coefficients are bit-identical).")
		e.p("\tchirp []complex128")
		e.p("\t// trackMu serializes the stateful track update; tracks accumulates")
		e.p("\t// per-cell hit counts across the executor's lifetime.")
		e.p("\ttrackMu sync.Mutex")
		e.p("\ttracks  map[[2]int]int")
		e.p("")
	},
	emitInit: func(e *emitter) {
		e.p("\tchirp, err := apps.RadarChirp(cfg.Gates)")
		e.p("\tif err != nil {")
		e.p("\t\treturn nil, err")
		e.p("\t}")
		e.p("\te.chirp = chirp")
		e.p("\te.tracks = map[[2]int]int{}")
	},
	emitExtraMethods: func(e *emitter) {
		e.p("// Tracks snapshots the accumulated per-cell track hit counts, keyed by")
		e.p("// (doppler bin, range gate).")
		e.p("func (e *Executor) Tracks() map[[2]int]int {")
		e.p("\te.trackMu.Lock()")
		e.p("\tdefer e.trackMu.Unlock()")
		e.p("\tout := make(map[[2]int]int, len(e.tracks))")
		e.p("\tfor k, v := range e.tracks {")
		e.p("\t\tout[k] = v")
		e.p("\t}")
		e.p("\treturn out")
		e.p("}")
		e.p("")
	},
	emitBody: func(e *emitter, m genModule) {
		needPulses, needGates := false, false
		for t := m.Lo; t < m.Hi; t++ {
			switch t {
			case 0, 2:
				needPulses = true
			case 1:
				needPulses, needGates = true, true
			}
		}
		e.p("\t\trd := in")
		if needPulses {
			e.p("\t\tpulses := e.cfg.Pulses")
		}
		if needGates {
			e.p("\t\tgates := e.cfg.Gates")
		}
		for t := m.Lo; t < m.Hi; t++ {
			switch t {
			case 0:
				e.p("\t\t// pulsecomp: matched filtering over pulse rows.")
				e.p("\t\tif err := g.ParallelFor(pulses, func(r0, r1 int) error {")
				e.p("\t\t\treturn kernels.MatchedFilter(rd.Cube, e.chirp, r0, r1)")
				e.p("\t\t}); err != nil {")
				e.p("\t\t\treturn nil, err")
				e.p("\t\t}")
			case 1:
				e.p("\t\t// Corner turn (redistribution into doppler), then Doppler FFT")
				e.p("\t\t// over range-gate columns.")
				e.p("\t\t{")
				e.p("\t\t\tfresh := kernels.NewMatrix(pulses, gates)")
				e.p("\t\t\tif err := g.ParallelFor(pulses, func(r0, r1 int) error {")
				e.p("\t\t\t\tcopy(fresh.Data[r0*gates:r1*gates], rd.Cube.Data[r0*gates:r1*gates])")
				e.p("\t\t\t\treturn nil")
				e.p("\t\t\t}); err != nil {")
				e.p("\t\t\t\treturn nil, err")
				e.p("\t\t\t}")
				e.p("\t\t\trd.Cube = fresh")
				e.p("\t\t}")
				e.p("\t\tif err := g.ParallelFor(gates, func(c0, c1 int) error {")
				e.p("\t\t\treturn kernels.DopplerFFT(rd.Cube, c0, c1)")
				e.p("\t\t}); err != nil {")
				e.p("\t\t\treturn nil, err")
				e.p("\t\t}")
			case 2:
				e.p("\t\t// cfar: magnitude + CFAR over block ranges of Doppler rows,")
				e.p("\t\t// detections gathered in worker order (deterministic).")
				e.p("\t\tparts := make([][]kernels.Detection, stage%dProcs)", m.Index)
				e.p("\t\tif err := g.ParallelFor(stage%dProcs, func(i0, i1 int) error {", m.Index)
				e.p("\t\t\tfor i := i0; i < i1; i++ {")
				e.p("\t\t\t\tr0, r1 := fxrt.BlockRange(pulses, stage%dProcs, i)", m.Index)
				e.p("\t\t\t\tif r0 >= r1 {")
				e.p("\t\t\t\t\tcontinue")
				e.p("\t\t\t\t}")
				e.p("\t\t\t\tkernels.PowerRows(rd.Cube, r0, r1)")
				e.p("\t\t\t\tparts[i] = kernels.CFAR(rd.Cube, 2, 8, 12, r0, r1)")
				e.p("\t\t\t}")
				e.p("\t\t\treturn nil")
				e.p("\t\t}); err != nil {")
				e.p("\t\t\treturn nil, err")
				e.p("\t\t}")
				e.p("\t\trd.Dets = rd.Dets[:0]")
				e.p("\t\tfor _, p := range parts {")
				e.p("\t\t\trd.Dets = append(rd.Dets, p...)")
				e.p("\t\t}")
			case 3:
				e.p("\t\t// track: stateful update, serialized on the executor's mutex.")
				e.p("\t\te.trackMu.Lock()")
				e.p("\t\tfor _, d := range rd.Dets {")
				e.p("\t\t\te.tracks[[2]int{d.Doppler, d.Range}]++")
				e.p("\t\t}")
				e.p("\t\te.trackMu.Unlock()")
			}
		}
		e.p("\t\treturn rd, nil")
	},
}

// ----------------------------------------------------------------- stereo

var stereoDef = &appDef{
	name:        "stereo",
	tasks:       4,
	inType:      "*apps.StereoData",
	taskOut:     []string{"*apps.StereoData", "*apps.StereoData", "*apps.StereoData", "*apps.StereoData"},
	defaultSize: 128,
	importApps:  true,
	emitConfigFields: func(e *emitter, size int) {
		e.p("\t// W and H are the image dimensions (defaults %d x 64).", size)
		e.p("\tW, H int")
		e.p("\t// Disparities is the number of disparity levels (default 8).")
		e.p("\tDisparities int")
	},
	emitDefaults: func(e *emitter, size int) {
		e.p("\tif cfg.W == 0 {")
		e.p("\t\tcfg.W = %d", size)
		e.p("\t}")
		e.p("\tif cfg.H == 0 {")
		e.p("\t\tcfg.H = 64")
		e.p("\t}")
		e.p("\tif cfg.Disparities == 0 {")
		e.p("\t\tcfg.Disparities = 8")
		e.p("\t}")
	},
	emitValidate: func(e *emitter) {
		e.p("\tif cfg.W < 1 || cfg.H < 1 || cfg.Disparities < 1 {")
		e.p("\t\treturn nil, fmt.Errorf(\"stereo: invalid dimensions %%dx%%d with %%d disparities\", cfg.W, cfg.H, cfg.Disparities)")
		e.p("\t}")
	},
	emitState:        func(e *emitter) {},
	emitInit:         func(e *emitter) {},
	emitExtraMethods: func(e *emitter) {},
	emitBody: func(e *emitter, m genModule) {
		needW, needH, needND := false, false, false
		for t := m.Lo; t < m.Hi; t++ {
			switch t {
			case 0, 3:
				needW, needH = true, true
			case 1, 2:
				needW, needH, needND = true, true, true
			}
		}
		e.p("\t\tsd := in")
		if needW {
			e.p("\t\tw := e.cfg.W")
		}
		if needH {
			e.p("\t\th := e.cfg.H")
		}
		if needND {
			e.p("\t\tnd := e.cfg.Disparities")
		}
		for t := m.Lo; t < m.Hi; t++ {
			switch t {
			case 0:
				e.p("\t\t// capture: normalize the image pair in place.")
				e.p("\t\tif err := g.ParallelFor(h, func(y0, y1 int) error {")
				e.p("\t\t\tfor y := y0; y < y1; y++ {")
				e.p("\t\t\t\tfor x := 0; x < w; x++ {")
				e.p("\t\t\t\t\tsd.Ref.Set(x, y, apps.Clamp01(sd.Ref.At(x, y)))")
				e.p("\t\t\t\t\tsd.Target.Set(x, y, apps.Clamp01(sd.Target.At(x, y)))")
				e.p("\t\t\t\t}")
				e.p("\t\t\t}")
				e.p("\t\t\treturn nil")
				e.p("\t\t}); err != nil {")
				e.p("\t\t\treturn nil, err")
				e.p("\t\t}")
			case 1:
				e.p("\t\t// Broadcast (redistribution: every disparity worker needs both")
				e.p("\t\t// images), then difference images per disparity level.")
				e.p("\t\t{")
				e.p("\t\t\trefCopy := kernels.NewImage(w, h)")
				e.p("\t\t\ttgtCopy := kernels.NewImage(w, h)")
				e.p("\t\t\tcopy(refCopy.Pix, sd.Ref.Pix)")
				e.p("\t\t\tcopy(tgtCopy.Pix, sd.Target.Pix)")
				e.p("\t\t\tsd.Ref, sd.Target = refCopy, tgtCopy")
				e.p("\t\t}")
				e.p("\t\tsd.Errs = make([]kernels.Image, nd)")
				e.p("\t\tif err := g.ParallelFor(nd, func(d0, d1 int) error {")
				e.p("\t\t\tfor d := d0; d < d1; d++ {")
				e.p("\t\t\t\tdiff := kernels.NewImage(w, h)")
				e.p("\t\t\t\tif err := kernels.DiffImage(sd.Ref, sd.Target, diff, d, 0, h); err != nil {")
				e.p("\t\t\t\t\treturn err")
				e.p("\t\t\t\t}")
				e.p("\t\t\t\tsd.Errs[d] = diff")
				e.p("\t\t\t}")
				e.p("\t\t\treturn nil")
				e.p("\t\t}); err != nil {")
				e.p("\t\t\treturn nil, err")
				e.p("\t\t}")
			case 2:
				e.p("\t\t// err: windowed error images per disparity level.")
				e.p("\t\tif err := g.ParallelFor(nd, func(d0, d1 int) error {")
				e.p("\t\t\tfor d := d0; d < d1; d++ {")
				e.p("\t\t\t\tout := kernels.NewImage(w, h)")
				e.p("\t\t\t\tif err := kernels.ErrorImage(sd.Errs[d], out, 2, 0, h); err != nil {")
				e.p("\t\t\t\t\treturn err")
				e.p("\t\t\t\t}")
				e.p("\t\t\t\tsd.Errs[d] = out")
				e.p("\t\t\t}")
				e.p("\t\t\treturn nil")
				e.p("\t\t}); err != nil {")
				e.p("\t\t\treturn nil, err")
				e.p("\t\t}")
			case 3:
				e.p("\t\t// depth: minimum reduction across disparity planes.")
				e.p("\t\tsd.Depth = kernels.NewImage(w, h)")
				e.p("\t\tif err := g.ParallelFor(h, func(y0, y1 int) error {")
				e.p("\t\t\treturn kernels.DepthMin(sd.Errs, sd.Depth, y0, y1)")
				e.p("\t\t}); err != nil {")
				e.p("\t\t\treturn nil, err")
				e.p("\t\t}")
			}
		}
		e.p("\t\treturn sd, nil")
	},
}
