package pipegen

import (
	"fmt"
	"os"
	"path/filepath"

	"pipemap/internal/core"
	"pipemap/internal/model"
)

// Example is one committed generated executor: a chain spec, the app
// binding to compile it with, and where the emitted package lives in the
// tree. The mapping is re-solved from the spec on every generation — the
// DP solver is deterministic, so the output is reproducible and `make
// pipegen-diff` can detect drift between specs and committed code.
type Example struct {
	// Name is the example (and emitted package) name.
	Name string
	// App is the application binding.
	App string
	// SpecPath is the chain spec, relative to the repo root.
	SpecPath string
	// OutDir is the emitted package directory, relative to the repo root.
	OutDir string
	// Size is the baked default workload size.
	Size int
}

// File returns the path of the example's generated file under root.
func (x Example) File(root string) string {
	return filepath.Join(root, x.OutDir, "pipeline.go")
}

// Examples lists the generated executors committed under internal/gen,
// one per real application spec.
var Examples = []Example{
	{Name: "ffthist256", App: "ffthist", SpecPath: "specs/ffthist256.json", OutDir: "internal/gen/ffthist256", Size: 256},
	{Name: "radar64", App: "radar", SpecPath: "specs/radar64.json", OutDir: "internal/gen/radar64", Size: 64},
	{Name: "stereo128", App: "stereo", SpecPath: "specs/stereo128.json", OutDir: "internal/gen/stereo128", Size: 128},
}

// ExampleByName resolves a committed example.
func ExampleByName(name string) (Example, error) {
	for _, x := range Examples {
		if x.Name == name {
			return x, nil
		}
	}
	return Example{}, fmt.Errorf("pipegen: unknown example %q", name)
}

// SolveSpec parses the chain spec at path and solves it with the exact DP
// — the deterministic mapping every generation of that spec bakes in.
func SolveSpec(path string) (model.Mapping, error) {
	f, err := os.Open(path)
	if err != nil {
		return model.Mapping{}, err
	}
	defer f.Close()
	chain, pl, err := core.ParseChainSpec(f)
	if err != nil {
		return model.Mapping{}, err
	}
	res, err := core.Map(core.Request{Chain: chain, Platform: pl, Algorithm: core.DP})
	if err != nil {
		return model.Mapping{}, err
	}
	return res.Mapping, nil
}

// GenerateExample solves the example's spec from the repo root and emits
// its executor source.
func GenerateExample(root string, x Example) ([]byte, error) {
	m, err := SolveSpec(filepath.Join(root, x.SpecPath))
	if err != nil {
		return nil, fmt.Errorf("pipegen: solving %s: %w", x.SpecPath, err)
	}
	return Generate(Options{
		App:      x.App,
		Package:  x.Name,
		SpecPath: x.SpecPath,
		Mapping:  m,
		Size:     x.Size,
	})
}
