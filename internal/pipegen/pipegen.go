// Package pipegen compiles a chain spec plus a solved mapping into a
// specialized, reflection-free pipeline executor: a standalone Go package
// whose module structure, worker counts, replication factors, and ring
// capacities are baked in at generation time.
//
// Where the generic fxrt executor pays interface boxing, per-task channel
// hops, and runtime dispatch on every data set, a generated executor fuses
// all tasks of a module into one concrete attempt function, moves data
// between modules over fixed-size typed rings sized max(4, 2*replicas)
// from the mapping's replication factors, and keeps the exact retry /
// deadline / drop semantics of fxrt.Stream so statistics stay comparable
// (DESIGN.md §15 pins the invariants). The emitted package satisfies
// ingest.Backend, so a generated plane serves real traffic behind the
// same admission queue as the generic one.
//
// The spec-in / typed-Go-out idiom follows the related codegen repos
// (SNIPPETS.md): the generator is deterministic — identical inputs emit
// identical bytes — and the output is gofmt-stable and vet-clean, which
// the golden tests pin.
package pipegen

import (
	"bytes"
	"fmt"
	"go/format"
	"go/token"

	"pipemap/internal/model"
)

// Options configures one generation.
type Options struct {
	// App selects the application binding: "ffthist", "radar", or
	// "stereo". The binding supplies the concrete data types and the
	// per-task kernel code the fused attempt bodies are built from.
	App string
	// Package is the emitted package name (a valid Go identifier).
	Package string
	// SpecPath is the chain spec the mapping was solved from; it is
	// recorded in the generated header for provenance.
	SpecPath string
	// Mapping is the solved mapping to bake in. Its Chain must be set
	// (task names feed the generated stage names) and must cover the
	// app's task chain exactly.
	Mapping model.Mapping
	// Size is the baked default size (matrix dimension N for ffthist,
	// range gates for radar, image width for stereo); 0 keeps the app's
	// own default. The generated Config can still override it per
	// executor — only the default is baked.
	Size int
}

// genModule is one module of the mapping, resolved against the app
// binding: the slice of fused tasks, the concrete boundary types, and the
// generation-time ring capacity.
type genModule struct {
	Index    int
	Lo, Hi   int
	Name     string
	Procs    int
	Replicas int
	InType   string
	OutType  string
	InZero   string
	OutZero  string
	RingCap  int
}

// ringCap is the generated inbox capacity for a module with the given
// replication factor: max(4, 2*replicas), the same derivation
// fxrt.Stream applies at runtime — here it becomes a compile-time
// constant.
func ringCap(replicas int) int {
	c := 2 * replicas
	if c < 4 {
		c = 4
	}
	return c
}

// sinkCap is the generated sink ring capacity (the sink has one
// consumer, so the stream derivation yields the floor).
const sinkCap = 4

// Generate emits the specialized executor package for opt and returns the
// gofmt-formatted source of its single file.
func Generate(opt Options) ([]byte, error) {
	app, err := appByName(opt.App)
	if err != nil {
		return nil, err
	}
	if !token.IsIdentifier(opt.Package) {
		return nil, fmt.Errorf("pipegen: package name %q is not a Go identifier", opt.Package)
	}
	mods, err := resolveModules(app, opt.Mapping)
	if err != nil {
		return nil, err
	}
	size := opt.Size
	if size == 0 {
		size = app.defaultSize
	}
	e := &emitter{}
	emitHeader(e, app, opt, size, mods)
	emitConstants(e, app, opt, mods)
	emitConfig(e, app, size)
	emitEnvelopes(e, mods)
	emitExecutor(e, app, mods)
	emitNew(e, app, size, mods)
	emitPushAPI(e, app, mods)
	emitLifecycle(e, app, mods)
	for _, m := range mods {
		emitModule(e, app, m, mods)
	}
	emitSink(e)
	app.emitExtraMethods(e)
	src, err := format.Source(e.buf.Bytes())
	if err != nil {
		return nil, fmt.Errorf("pipegen: emitted source does not format (generator bug): %w\n%s", err, e.buf.Bytes())
	}
	return src, nil
}

// resolveModules validates the mapping against the app binding and
// resolves each module's fused span, boundary types, and ring capacity.
func resolveModules(app *appDef, m model.Mapping) ([]genModule, error) {
	if m.Chain == nil {
		return nil, fmt.Errorf("pipegen: mapping has no chain")
	}
	if got := m.Chain.Len(); got != app.tasks {
		return nil, fmt.Errorf("pipegen: %s chain has %d tasks, mapping covers %d", app.name, app.tasks, got)
	}
	if len(m.Modules) == 0 {
		return nil, fmt.Errorf("pipegen: mapping has no modules")
	}
	mods := make([]genModule, len(m.Modules))
	next := 0
	for i, mod := range m.Modules {
		if mod.Lo != next || mod.Hi <= mod.Lo || mod.Hi > app.tasks {
			return nil, fmt.Errorf("pipegen: module %d spans [%d,%d), want contiguous cover of [0,%d)", i, mod.Lo, mod.Hi, app.tasks)
		}
		if mod.Procs < 1 || mod.Replicas < 1 {
			return nil, fmt.Errorf("pipegen: module %d has procs=%d replicas=%d", i, mod.Procs, mod.Replicas)
		}
		inType := app.inType
		if mod.Lo > 0 {
			inType = app.taskOut[mod.Lo-1]
		}
		outType := app.taskOut[mod.Hi-1]
		mods[i] = genModule{
			Index:    i,
			Lo:       mod.Lo,
			Hi:       mod.Hi,
			Name:     m.Chain.TaskNames(mod.Lo, mod.Hi),
			Procs:    mod.Procs,
			Replicas: mod.Replicas,
			InType:   inType,
			OutType:  outType,
			InZero:   zeroOf(inType),
			OutZero:  zeroOf(outType),
			RingCap:  ringCap(mod.Replicas),
		}
		next = mod.Hi
	}
	if next != app.tasks {
		return nil, fmt.Errorf("pipegen: mapping covers tasks [0,%d), want [0,%d)", next, app.tasks)
	}
	return mods, nil
}

// zeroOf is the zero-value literal of a boundary type.
func zeroOf(typ string) string {
	if typ[0] == '*' || typ[0] == '[' {
		return "nil"
	}
	return typ + "{}"
}

// emitter accumulates the generated source; format.Source normalizes the
// final whitespace, so emission favors readability of the generator.
type emitter struct {
	buf bytes.Buffer
}

// p writes one formatted line.
func (e *emitter) p(format string, args ...any) {
	fmt.Fprintf(&e.buf, format, args...)
	e.buf.WriteByte('\n')
}

func emitHeader(e *emitter, app *appDef, opt Options, size int, mods []genModule) {
	e.p("// Code generated by pipegen; DO NOT EDIT.")
	e.p("//")
	e.p("// Source spec: %s", opt.SpecPath)
	e.p("// Application: %s (default size %d)", app.name, size)
	e.p("// Mapping:     %s", opt.Mapping.String())
	e.p("//")
	e.p("// This package is a specialized, reflection-free executor for the mapping")
	e.p("// above: all tasks of a module are fused into one concrete attempt")
	e.p("// function (no per-task channel hop), inter-module rings are fixed-size")
	e.p("// typed channels sized max(4, 2*replicas) at generation time, and data")
	e.p("// sets flow as concrete types instead of fxrt.DataSet interface boxes.")
	e.p("// Retry, deadline, and drop semantics mirror fxrt.Stream exactly")
	e.p("// (DESIGN.md section 15); fault injection and instance death are not")
	e.p("// supported — regenerate against the generic executor to exercise those.")
	e.p("package %s", opt.Package)
	e.p("")
	e.p("import (")
	e.p("\t\"context\"")
	e.p("\t\"fmt\"")
	e.p("\t\"sync\"")
	e.p("\t\"sync/atomic\"")
	e.p("\t\"time\"")
	e.p("")
	if app.importApps {
		e.p("\t\"pipemap/internal/apps\"")
	}
	e.p("\t\"pipemap/internal/fxrt\"")
	e.p("\t\"pipemap/internal/kernels\"")
	e.p("\t\"pipemap/internal/model\"")
	e.p("\t\"pipemap/internal/obs\"")
	e.p("\t\"pipemap/internal/obs/live\"")
	e.p(")")
	e.p("")
}

func emitConstants(e *emitter, app *appDef, opt Options, mods []genModule) {
	e.p("// App names the application this executor was generated for.")
	e.p("const App = %q", app.name)
	e.p("")
	e.p("// MappingString is the solved mapping baked into this executor. Callers")
	e.p("// wiring the executor to a freshly solved mapping must check the two")
	e.p("// match and regenerate (make pipegen) when they drift.")
	e.p("const MappingString = %q", opt.Mapping.String())
	e.p("")
	e.p("// Generation-time constants of the baked mapping: per-module worker")
	e.p("// counts, replication factors, and the fixed ring capacities derived")
	e.p("// from them (max(4, 2*replicas), as fxrt.Stream sizes its inboxes).")
	e.p("const (")
	for _, m := range mods {
		e.p("\tstage%dName = %q", m.Index, m.Name)
		e.p("\tstage%dProcs = %d", m.Index, m.Procs)
		e.p("\tstage%dReplicas = %d", m.Index, m.Replicas)
		e.p("\tring%dCap = %d", m.Index, m.RingCap)
	}
	e.p("\tsinkCap = %d", sinkCap)
	e.p(")")
	e.p("")
	e.p("// Modules returns the baked mapping's module table, for rebuilding an")
	e.p("// equivalent model.Mapping (e.g. to drive the generic executor on the")
	e.p("// same structure in differential tests).")
	e.p("func Modules() []model.Module {")
	e.p("\treturn []model.Module{")
	for _, m := range mods {
		e.p("\t\t{Lo: %d, Hi: %d, Procs: %d, Replicas: %d},", m.Lo, m.Hi, m.Procs, m.Replicas)
	}
	e.p("\t}")
	e.p("}")
	e.p("")
}

func emitEnvelopes(e *emitter, mods []genModule) {
	e.p("// meta is the per-data-set bookkeeping shared by every envelope: the")
	e.p("// stream index, submit time, per-stage attempt count, tombstone state,")
	e.p("// the submitter's result channel, and the optional request trace.")
	e.p("type meta struct {")
	e.p("\tidx      int")
	e.p("\tt0       time.Time")
	e.p("\tattempts int")
	e.p("\tdropped  bool")
	e.p("\terr      error")
	e.p("\tres      chan fxrt.StreamResult")
	e.p("\trt       *obs.ReqTrace")
	e.p("}")
	e.p("")
	for _, m := range mods {
		e.p("// env%d is the typed envelope entering module %d (%s).", m.Index, m.Index, m.Name)
		e.p("type env%d struct {", m.Index)
		e.p("\tmeta")
		e.p("\tds %s", m.InType)
		e.p("}")
		e.p("")
	}
	last := mods[len(mods)-1]
	e.p("// envSink is the typed envelope entering the sink.")
	e.p("type envSink struct {")
	e.p("\tmeta")
	e.p("\tds %s", last.OutType)
	e.p("}")
	e.p("")
}

func emitExecutor(e *emitter, app *appDef, mods []genModule) {
	e.p("// Executor is the generated pipeline: one goroutine per module instance")
	e.p("// pulling from the module's fixed-size ring, a sink resolving results to")
	e.p("// submitters, and drain-to-zero shutdown — the same lifecycle contract")
	e.p("// as fxrt.Stream, so it plugs into ingest.Plane as a Backend.")
	e.p("type Executor struct {")
	e.p("\tcfg Config")
	e.p("")
	app.emitState(e)
	for _, m := range mods {
		e.p("\tin%d chan env%d", m.Index, m.Index)
	}
	e.p("\tsinkIn chan envSink")
	e.p("")
	e.p("\tquit chan struct{}")
	e.p("\tstop sync.Once")
	e.p("\twg   sync.WaitGroup")
	e.p("")
	e.p("\tmu       sync.Mutex")
	e.p("\tclosed   bool")
	e.p("\tinflight int")
	e.p("\tdrained  chan struct{}")
	e.p("")
	e.p("\tstart time.Time")
	e.p("\tseq   atomic.Int64")
	e.p("")
	e.p("\tcompleted atomic.Int64")
	e.p("\tretried   atomic.Int64")
	e.p("\tdroppedN  atomic.Int64")
	e.p("\ttimeouts  atomic.Int64")
	e.p("}")
	e.p("")
}

func emitNew(e *emitter, app *appDef, size int, mods []genModule) {
	e.p("// New starts the executor: the rings are allocated at their baked")
	e.p("// capacities and every module instance goroutine begins pulling. The")
	e.p("// configured Monitor (if any) is started and observes every attempt")
	e.p("// exactly as the generic stream's monitor does.")
	e.p("func New(cfg Config) (*Executor, error) {")
	app.emitDefaults(e, size)
	app.emitValidate(e)
	e.p("\te := &Executor{")
	e.p("\t\tcfg:     cfg,")
	for _, m := range mods {
		e.p("\t\tin%d: make(chan env%d, ring%dCap),", m.Index, m.Index, m.Index)
	}
	e.p("\t\tsinkIn:  make(chan envSink, sinkCap),")
	e.p("\t\tquit:    make(chan struct{}),")
	e.p("\t\tdrained: make(chan struct{}),")
	e.p("\t\tstart:   time.Now(),")
	e.p("\t}")
	app.emitInit(e)
	for _, m := range mods {
		e.p("\tfor b := 0; b < stage%dReplicas; b++ {", m.Index)
		e.p("\t\te.wg.Add(1)")
		e.p("\t\tgo e.run%d(b)", m.Index)
		e.p("\t}")
	}
	e.p("\te.wg.Add(1)")
	e.p("\tgo e.runSink()")
	e.p("\tcfg.Monitor.Start()")
	e.p("\treturn e, nil")
	e.p("}")
	e.p("")
}

func emitPushAPI(e *emitter, app *appDef, mods []genModule) {
	in := mods[0].InType
	e.p("// Push submits one data set and returns the buffered channel its result")
	e.p("// will be delivered on. Push blocks while the first module's ring is")
	e.p("// full — backpressure an admission queue converts into shedding — until")
	e.p("// ctx is done. A nil ctx never expires.")
	e.p("func (e *Executor) Push(ctx context.Context, ds %s) (<-chan fxrt.StreamResult, error) {", in)
	e.p("\treturn e.push(ctx, ds, nil)")
	e.p("}")
	e.p("")
	e.p("// PushTraced is the ingest.Backend entry point: it accepts the untyped")
	e.p("// data set the data plane carries, asserts the concrete input type, and")
	e.p("// records every stage attempt on rt (nil rt is exactly Push).")
	e.p("func (e *Executor) PushTraced(ctx context.Context, ds fxrt.DataSet, rt *obs.ReqTrace) (<-chan fxrt.StreamResult, error) {")
	e.p("\tin, ok := ds.(%s)", in)
	e.p("\tif !ok {")
	e.p("\t\treturn nil, fmt.Errorf(\"%s: data set is %%T, want %s\", ds)", app.name, in)
	e.p("\t}")
	e.p("\treturn e.push(ctx, in, rt)")
	e.p("}")
	e.p("")
	e.p("func (e *Executor) push(ctx context.Context, ds %s, rt *obs.ReqTrace) (<-chan fxrt.StreamResult, error) {", in)
	e.p("\te.mu.Lock()")
	e.p("\tif e.closed {")
	e.p("\t\te.mu.Unlock()")
	e.p("\t\treturn nil, fxrt.ErrStreamClosed")
	e.p("\t}")
	e.p("\te.inflight++")
	e.p("\te.mu.Unlock()")
	e.p("\tenv := env0{")
	e.p("\t\tmeta: meta{")
	e.p("\t\t\tidx: int(e.seq.Add(1) - 1),")
	e.p("\t\t\tt0:  time.Now(),")
	e.p("\t\t\tres: make(chan fxrt.StreamResult, 1),")
	e.p("\t\t\trt:  rt,")
	e.p("\t\t},")
	e.p("\t\tds: ds,")
	e.p("\t}")
	e.p("\tvar done <-chan struct{}")
	e.p("\tif ctx != nil {")
	e.p("\t\tdone = ctx.Done()")
	e.p("\t}")
	e.p("\tselect {")
	e.p("\tcase e.in0 <- env:")
	e.p("\t\treturn env.res, nil")
	e.p("\tcase <-done:")
	e.p("\t\te.doneOne()")
	e.p("\t\treturn nil, ctx.Err()")
	e.p("\t}")
	e.p("}")
	e.p("")
	e.p("// Run pushes n data sets from source and collects their results in push")
	e.p("// order — a batch convenience for benchmarks and differential tests.")
	e.p("// The executor stays open afterwards.")
	e.p("func (e *Executor) Run(source func(i int) %s, n int) ([]fxrt.StreamResult, error) {", in)
	e.p("\tchans := make(chan (<-chan fxrt.StreamResult), ring0Cap)")
	e.p("\tpushErr := make(chan error, 1)")
	e.p("\tgo func() {")
	e.p("\t\tdefer close(chans)")
	e.p("\t\tfor i := 0; i < n; i++ {")
	e.p("\t\t\tch, err := e.Push(nil, source(i))")
	e.p("\t\t\tif err != nil {")
	e.p("\t\t\t\tpushErr <- err")
	e.p("\t\t\t\treturn")
	e.p("\t\t\t}")
	e.p("\t\t\tchans <- ch")
	e.p("\t\t}")
	e.p("\t}()")
	e.p("\tout := make([]fxrt.StreamResult, 0, n)")
	e.p("\tfor ch := range chans {")
	e.p("\t\tout = append(out, <-ch)")
	e.p("\t}")
	e.p("\tselect {")
	e.p("\tcase err := <-pushErr:")
	e.p("\t\treturn out, err")
	e.p("\tdefault:")
	e.p("\t}")
	e.p("\treturn out, nil")
	e.p("}")
	e.p("")
}

func emitLifecycle(e *emitter, app *appDef, mods []genModule) {
	e.p("// InFlight reports pushed data sets not yet resolved.")
	e.p("func (e *Executor) InFlight() int {")
	e.p("\te.mu.Lock()")
	e.p("\tdefer e.mu.Unlock()")
	e.p("\treturn e.inflight")
	e.p("}")
	e.p("")
	e.p("// doneOne retires one in-flight data set and completes the drain when")
	e.p("// the executor is closed and empty.")
	e.p("func (e *Executor) doneOne() {")
	e.p("\te.mu.Lock()")
	e.p("\te.inflight--")
	e.p("\tif e.closed && e.inflight == 0 {")
	e.p("\t\tclose(e.drained)")
	e.p("\t}")
	e.p("\te.mu.Unlock()")
	e.p("}")
	e.p("")
	e.p("// Close stops admitting, waits for every in-flight data set to resolve")
	e.p("// (graceful drain loses nothing), then stops the module instances and")
	e.p("// returns cumulative statistics. Close is idempotent and safe to call")
	e.p("// concurrently.")
	e.p("func (e *Executor) Close() fxrt.Stats {")
	e.p("\te.mu.Lock()")
	e.p("\tif !e.closed {")
	e.p("\t\te.closed = true")
	e.p("\t\tif e.inflight == 0 {")
	e.p("\t\t\tclose(e.drained)")
	e.p("\t\t}")
	e.p("\t}")
	e.p("\te.mu.Unlock()")
	e.p("\t<-e.drained")
	e.p("\te.stop.Do(func() {")
	e.p("\t\tclose(e.quit)")
	e.p("\t})")
	e.p("\te.wg.Wait()")
	e.p("\te.cfg.Monitor.Finish()")
	e.p("\treturn e.Stats()")
	e.p("}")
	e.p("")
	e.p("// Stats snapshots cumulative statistics. DataSets counts resolved data")
	e.p("// sets (completed plus dropped); per-op timings are not recorded — the")
	e.p("// generated hot path trades the Recorder for lower overhead.")
	e.p("func (e *Executor) Stats() fxrt.Stats {")
	e.p("\tcompleted := e.completed.Load()")
	e.p("\tdropped := e.droppedN.Load()")
	e.p("\tst := fxrt.Stats{")
	e.p("\t\tDataSets: int(completed + dropped),")
	e.p("\t\tElapsed:  time.Since(e.start),")
	e.p("\t\tRetried:  int(e.retried.Load()),")
	e.p("\t\tDropped:  int(dropped),")
	e.p("\t\tTimeouts: int(e.timeouts.Load()),")
	e.p("\t}")
	e.p("\tif st.Elapsed > 0 {")
	e.p("\t\tst.Throughput = float64(completed) / st.Elapsed.Seconds()")
	e.p("\t}")
	e.p("\treturn st")
	e.p("}")
	e.p("")
}

// emitModule emits the instance loop, retry/drop processing, and the fused
// attempt function of one module.
func emitModule(e *emitter, app *appDef, m genModule, mods []genModule) {
	nextCh, nextEnv := "e.sinkIn", "envSink"
	if m.Index < len(mods)-1 {
		nextCh = fmt.Sprintf("e.in%d", m.Index+1)
		nextEnv = fmt.Sprintf("env%d", m.Index+1)
	}
	e.p("// run%d is the body of one instance of module %d (%s): it owns a", m.Index, m.Index, m.Name)
	e.p("// worker group of stage%dProcs workers and pulls envelopes from the", m.Index)
	e.p("// module's shared ring until shutdown.")
	e.p("func (e *Executor) run%d(b int) {", m.Index)
	e.p("\tdefer e.wg.Done()")
	e.p("\tg, _ := fxrt.NewGroup(stage%dProcs)", m.Index)
	e.p("\tvar attempts sync.WaitGroup")
	e.p("\tdefer func() {")
	e.p("\t\t// Abandoned (timed-out) attempts may still be running on the group;")
	e.p("\t\t// close it only after they finish, without blocking shutdown.")
	e.p("\t\tgo func() {")
	e.p("\t\t\tattempts.Wait()")
	e.p("\t\t\tg.Close()")
	e.p("\t\t}()")
	e.p("\t}()")
	e.p("\tmaxAttempts := e.cfg.Retry.MaxRetries + 1")
	e.p("\tfor {")
	e.p("\t\tselect {")
	e.p("\t\tcase env := <-e.in%d:", m.Index)
	e.p("\t\t\te.process%d(g, b, &attempts, maxAttempts, env)", m.Index)
	e.p("\t\tcase <-e.quit:")
	e.p("\t\t\treturn")
	e.p("\t\t}")
	e.p("\t}")
	e.p("}")
	e.p("")
	e.p("// process%d runs one envelope through module %d, retrying per the", m.Index, m.Index)
	e.p("// configured policy — the generated mirror of fxrt.Stream.process.")
	e.p("func (e *Executor) process%d(g *fxrt.Group, b int, attempts *sync.WaitGroup, maxAttempts int, env env%d) {", m.Index, m.Index)
	e.p("\tif env.dropped {")
	e.p("\t\t%s <- %s{meta: env.meta}", nextCh, nextEnv)
	e.p("\t\treturn")
	e.p("\t}")
	e.p("\tmon := e.cfg.Monitor")
	e.p("\tfor {")
	e.p("\t\tt0 := time.Now()")
	e.p("\t\tout, err, timedOut := e.attempt%d(g, b, attempts, env.ds)", m.Index)
	e.p("\t\tif err == nil {")
	e.p("\t\t\tenv.rt.StageSpan(stage%dName, %d, b, env.attempts, \"ok\", t0, time.Since(t0))", m.Index, m.Index)
	e.p("\t\t\tmon.StageDone(%d, time.Since(t0).Seconds())", m.Index)
	e.p("\t\t\tfwd := env.meta")
	e.p("\t\t\tfwd.attempts = 0")
	e.p("\t\t\t%s <- %s{meta: fwd, ds: out}", nextCh, nextEnv)
	e.p("\t\t\treturn")
	e.p("\t\t}")
	e.p("\t\toutcome := \"error\"")
	e.p("\t\tif timedOut {")
	e.p("\t\t\toutcome = \"timeout\"")
	e.p("\t\t}")
	e.p("\t\tenv.rt.StageSpan(stage%dName, %d, b, env.attempts, outcome, t0, time.Since(t0))", m.Index, m.Index)
	e.p("\t\tenv.attempts++")
	e.p("\t\tenv.err = err")
	e.p("\t\tif timedOut {")
	e.p("\t\t\te.timeouts.Add(1)")
	e.p("\t\t\tmon.StageTimeout(%d, env.idx)", m.Index)
	e.p("\t\t}")
	e.p("\t\tif env.attempts >= maxAttempts {")
	e.p("\t\t\tfwd := env.meta")
	e.p("\t\t\tfwd.dropped = true")
	e.p("\t\t\tif fwd.err == nil {")
	e.p("\t\t\t\tfwd.err = fmt.Errorf(\"%s: data set %%d dropped at stage %%s\", env.idx, stage%dName)", app.name, m.Index)
	e.p("\t\t\t}")
	e.p("\t\t\tfwd.attempts = 0")
	e.p("\t\t\te.droppedN.Add(1)")
	e.p("\t\t\tmon.StageDrop(%d, env.idx)", m.Index)
	e.p("\t\t\tenv.rt.Instant(\"stage\", stage%dName, \"dropped: attempts exhausted\")", m.Index)
	e.p("\t\t\t%s <- %s{meta: fwd}", nextCh, nextEnv)
	e.p("\t\t\treturn")
	e.p("\t\t}")
	e.p("\t\te.retried.Add(1)")
	e.p("\t\tmon.StageRetry(%d, env.idx)", m.Index)
	e.p("\t\tif d := e.cfg.Retry.BackoffFor(env.attempts); d > 0 {")
	e.p("\t\t\ttime.Sleep(d)")
	e.p("\t\t}")
	e.p("\t}")
	e.p("}")
	e.p("")
	e.p("// attempt%d executes one fused try of module %d — tasks %s —", m.Index, m.Index, m.Name)
	e.p("// bounded by the configured stage deadline. The fusion rule: every task")
	e.p("// in [%d,%d) runs inline on this instance's group, and the module's", m.Lo, m.Hi)
	e.p("// incoming redistribution (if any) executes receiver-side as part of the")
	e.p("// attempt, exactly as fxrt edge transfers do.")
	e.p("func (e *Executor) attempt%d(g *fxrt.Group, b int, attempts *sync.WaitGroup, in %s) (%s, error, bool) {", m.Index, m.InType, m.OutType)
	e.p("\trun := func() (%s, error) {", m.OutType)
	app.emitBody(e, m)
	e.p("\t}")
	e.p("\tdeadline := e.cfg.StageDeadline")
	e.p("\tif deadline <= 0 {")
	e.p("\t\tout, err := run()")
	e.p("\t\treturn out, err, false")
	e.p("\t}")
	e.p("\ttype result struct {")
	e.p("\t\tds  %s", m.OutType)
	e.p("\t\terr error")
	e.p("\t}")
	e.p("\tch := make(chan result, 1)")
	e.p("\tattempts.Add(1)")
	e.p("\tgo func() {")
	e.p("\t\tdefer attempts.Done()")
	e.p("\t\tout, err := run()")
	e.p("\t\tch <- result{out, err}")
	e.p("\t}()")
	e.p("\ttimer := time.NewTimer(deadline)")
	e.p("\tdefer timer.Stop()")
	e.p("\tselect {")
	e.p("\tcase res := <-ch:")
	e.p("\t\treturn res.ds, res.err, false")
	e.p("\tcase <-timer.C:")
	e.p("\t\treturn %s, fmt.Errorf(\"%s: stage %%s instance %%d: deadline %%v exceeded\", stage%dName, b, deadline), true", m.OutZero, app.name, m.Index)
	e.p("\t}")
	e.p("}")
	e.p("")
}

func emitSink(e *emitter) {
	e.p("// runSink resolves envelopes to their submitters.")
	e.p("func (e *Executor) runSink() {")
	e.p("\tdefer e.wg.Done()")
	e.p("\tmon := e.cfg.Monitor")
	e.p("\tfor {")
	e.p("\t\tselect {")
	e.p("\t\tcase env := <-e.sinkIn:")
	e.p("\t\t\tlat := time.Since(env.t0)")
	e.p("\t\t\tif env.dropped {")
	e.p("\t\t\t\tenv.res <- fxrt.StreamResult{Err: env.err, Latency: lat}")
	e.p("\t\t\t} else {")
	e.p("\t\t\t\te.completed.Add(1)")
	e.p("\t\t\t\tmon.Completed(lat.Seconds())")
	e.p("\t\t\t\tenv.res <- fxrt.StreamResult{DS: env.ds, Latency: lat}")
	e.p("\t\t\t}")
	e.p("\t\t\te.doneOne()")
	e.p("\t\tcase <-e.quit:")
	e.p("\t\t\treturn")
	e.p("\t\t}")
	e.p("\t}")
	e.p("}")
	e.p("")
}
