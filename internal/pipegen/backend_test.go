package pipegen_test

// A generated executor must serve real traffic behind the ingestion data
// plane's admission queue, and the plane must be able to migrate from a
// generated backend to a generic one (and back) without dropping work —
// the seam `-ingest-gen` uses in cmd/pipemap.

import (
	"context"
	"testing"

	"pipemap/internal/apps"
	"pipemap/internal/fxrt"
	"pipemap/internal/gen/ffthist256"
	"pipemap/internal/ingest"
	"pipemap/internal/kernels"
	"pipemap/internal/model"
)

func TestPlaneServesOnGeneratedBackend(t *testing.T) {
	ex, err := ffthist256.New(ffthist256.Config{N: 16})
	if err != nil {
		t.Fatal(err)
	}
	p, err := ingest.NewBackend(ingest.Config{}, ex, nil)
	if err != nil {
		t.Fatal(err)
	}
	runner := apps.FFTHistRunner{N: 16}
	submit := func(i int) {
		t.Helper()
		out, err := p.Submit(context.Background(), "", runner.Input(i), 0)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		if out.Err != nil {
			t.Fatalf("submit %d outcome: %v", i, out.Err)
		}
		h, ok := out.Output.(*kernels.Histogram)
		if !ok || h.Count == 0 {
			t.Fatalf("submit %d: output %T, want non-empty histogram", i, out.Output)
		}
	}
	for i := 0; i < 4; i++ {
		submit(i)
	}

	// Migrate onto the generic executor mid-service; the old generated
	// backend drains its in-flight work during the swap.
	m := model.Mapping{Chain: apps.FFTHistStructure(16), Modules: ffthist256.Modules()}
	pl, edges, err := runner.Pipeline(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Swap(pl, fxrt.StreamOptions{Edges: edges}); err != nil {
		t.Fatal(err)
	}
	for i := 4; i < 8; i++ {
		submit(i)
	}

	st := p.Drain()
	if st.Flushed != 0 {
		t.Fatalf("drain flushed %d queued requests, want 0", st.Flushed)
	}
	if got := p.Stats(); got.Completed != 8 {
		t.Fatalf("completed = %d, want 8", got.Completed)
	}
}

func TestNewBackendRejectsNil(t *testing.T) {
	if _, err := ingest.NewBackend(ingest.Config{}, nil, nil); err == nil {
		t.Fatal("NewBackend(nil) succeeded, want error")
	}
}
