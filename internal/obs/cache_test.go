package obs

import (
	"sync"
	"testing"
)

func TestCacheStatsCountsAndRate(t *testing.T) {
	var c CacheStats
	if c.HitRate() != 0 {
		t.Errorf("HitRate before any lookup = %v, want 0", c.HitRate())
	}
	c.Hit()
	c.Hit()
	c.Hit()
	c.Miss()
	c.Invalidate()
	if c.Hits() != 3 || c.Misses() != 1 || c.Invalidations() != 1 {
		t.Errorf("counts = %d/%d/%d, want 3/1/1", c.Hits(), c.Misses(), c.Invalidations())
	}
	if c.HitRate() != 0.75 {
		t.Errorf("HitRate = %v, want 0.75", c.HitRate())
	}
}

func TestCacheStatsNilSafe(t *testing.T) {
	var c *CacheStats
	c.Hit()
	c.Miss()
	c.Invalidate()
	if c.Hits() != 0 || c.Misses() != 0 || c.Invalidations() != 0 || c.HitRate() != 0 {
		t.Error("nil CacheStats is not a zero no-op")
	}
	c.Publish(NewRegistry(), "x") // must not panic
}

func TestCacheStatsPublish(t *testing.T) {
	var c CacheStats
	c.Hit()
	c.Miss()
	reg := NewRegistry()
	c.Publish(reg, "adapt.memo")
	c.Publish(reg, "adapt.memo") // gauges: absolute, not additive
	s := reg.Snapshot()
	if s.Gauges["adapt.memo.hits"] != 1 || s.Gauges["adapt.memo.misses"] != 1 {
		t.Errorf("published gauges = %+v", s.Gauges)
	}
	if s.Gauges["adapt.memo.hit_rate"] != 0.5 {
		t.Errorf("hit_rate gauge = %v, want 0.5", s.Gauges["adapt.memo.hit_rate"])
	}
	c.Publish(nil, "adapt.memo") // nil registry must not panic
}

func TestCacheStatsConcurrent(t *testing.T) {
	var c CacheStats
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Hit()
				c.Miss()
				c.Invalidate()
			}
		}()
	}
	wg.Wait()
	if c.Hits() != 8000 || c.Misses() != 8000 || c.Invalidations() != 8000 {
		t.Errorf("concurrent counts = %d/%d/%d, want 8000 each", c.Hits(), c.Misses(), c.Invalidations())
	}
}
