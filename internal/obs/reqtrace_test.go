package obs

import (
	"strings"
	"testing"
	"time"
)

func TestTraceIDRoundTrip(t *testing.T) {
	id := newTraceID()
	if id.IsZero() {
		t.Fatal("newTraceID returned the zero ID")
	}
	s := id.String()
	if len(s) != 32 || strings.ToLower(s) != s {
		t.Fatalf("String() = %q, want 32 lowercase hex chars", s)
	}
	back, ok := ParseTraceID(s)
	if !ok || back != id {
		t.Fatalf("ParseTraceID(%q) = %v, %v; want original id", s, back, ok)
	}
	if _, ok := ParseTraceID(strings.Repeat("0", 32)); ok {
		t.Error("all-zero trace ID accepted; the W3C spec reserves it")
	}
	if _, ok := ParseTraceID("abc"); ok {
		t.Error("short trace ID accepted")
	}
	if _, ok := ParseTraceID(strings.Repeat("zz", 16)); ok {
		t.Error("non-hex trace ID accepted")
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	id := newTraceID()
	for _, sampled := range []bool{true, false} {
		h := id.Traceparent(sampled)
		if len(h) != 55 {
			t.Fatalf("Traceparent length = %d, want 55 (%q)", len(h), h)
		}
		gotID, gotSampled, ok := ParseTraceparent(h)
		if !ok || gotID != id || gotSampled != sampled {
			t.Fatalf("ParseTraceparent(%q) = %v %v %v, want %v %v true", h, gotID, gotSampled, ok, id, sampled)
		}
	}
}

func TestParseTraceparentRejectsMalformed(t *testing.T) {
	valid := newTraceID().Traceparent(true)
	bad := []string{
		"",
		"00",
		strings.Replace(valid, "-", "_", 1),
		"00-" + strings.Repeat("0", 32) + valid[35:], // zero trace ID
		valid[:53] + "zz", // non-hex flags
	}
	for _, h := range bad {
		if _, _, ok := ParseTraceparent(h); ok {
			t.Errorf("ParseTraceparent(%q) accepted malformed header", h)
		}
	}
	// Unknown version with the standard layout parses (forward compat).
	if _, _, ok := ParseTraceparent("01" + valid[2:]); !ok {
		t.Error("unknown traceparent version with standard layout rejected")
	}
}

func TestSamplingDeterministicAndProportional(t *testing.T) {
	tr := NewReqTracer(ReqTracerConfig{SampleRate: 0.5})
	id := newTraceID()
	_, first := tr.Start(id, false, "a", time.Now())
	for i := 0; i < 10; i++ {
		if _, rt := tr.Start(id, false, "a", time.Now()); (rt != nil) != (first != nil) {
			t.Fatal("sampling decision not deterministic in the trace ID")
		}
	}
	sampled := 0
	const n = 2000
	for i := 0; i < n; i++ {
		if _, rt := tr.Start(TraceID{}, false, "a", time.Now()); rt != nil {
			sampled++
		}
	}
	if frac := float64(sampled) / n; frac < 0.4 || frac > 0.6 {
		t.Errorf("rate-0.5 tracer sampled %.2f of requests", frac)
	}

	off := NewReqTracer(ReqTracerConfig{SampleRate: 0})
	if _, rt := off.Start(TraceID{}, false, "a", time.Now()); rt != nil {
		t.Error("rate-0 tracer sampled an unforced request")
	}
	if _, rt := off.Start(TraceID{}, true, "a", time.Now()); rt == nil {
		t.Error("force did not override a rate-0 tracer")
	}
	all := NewReqTracer(ReqTracerConfig{SampleRate: 1})
	if _, rt := all.Start(TraceID{}, false, "a", time.Now()); rt == nil {
		t.Error("rate-1 tracer skipped a request")
	}
}

func TestTracerStartFinishAccounting(t *testing.T) {
	fl := NewFlightRecorder(8)
	tr := NewReqTracer(ReqTracerConfig{SampleRate: 1, Flight: fl})
	at := time.Now()
	id, rt := tr.Start(TraceID{}, false, "tenant-a", at)
	if rt == nil || id.IsZero() {
		t.Fatal("rate-1 Start returned unsampled")
	}
	if rt.ID() != id || rt.Tenant() != "tenant-a" {
		t.Fatalf("trace identity mismatch: %v %q", rt.ID(), rt.Tenant())
	}
	rt.Span(SpanAdmission, "admit", at, time.Millisecond, "ok", "")
	rt.StageSpan("fft", 1, 0, 2, "ok", at.Add(time.Millisecond), 3*time.Millisecond)
	rt.Instant(SpanShed, "deadline", "late")
	spans := rt.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	if spans[1].Stage != 1 || spans[1].Attempt != 2 || spans[1].Kind != SpanStage {
		t.Errorf("stage span fields wrong: %+v", spans[1])
	}
	tr.Finish(rt, "ok", 2*time.Millisecond, 5*time.Millisecond)
	st := tr.Stats()
	if st.Started != 1 || st.Sampled != 1 || st.Finished != 1 {
		t.Errorf("stats = %+v, want started/sampled/finished 1", st)
	}
	entries := fl.Snapshot()
	if len(entries) != 1 || entries[0].Kind != FlightTrace || entries[0].TraceID != id.String() {
		t.Fatalf("flight entries = %+v", entries)
	}
	if len(entries[0].Spans) != 3 || entries[0].SojournMS != 2 || entries[0].ServiceMS != 5 {
		t.Errorf("flight entry content wrong: %+v", entries[0])
	}
}

func TestRecordShedWithoutSampling(t *testing.T) {
	fl := NewFlightRecorder(8)
	tr := NewReqTracer(ReqTracerConfig{SampleRate: 0, Flight: fl})
	id, rt := tr.Start(TraceID{}, false, "t", time.Now())
	if rt != nil {
		t.Fatal("rate-0 sampled")
	}
	tr.RecordShed(id, "t", "queue_full", "depth 64")
	entries := fl.Snapshot()
	if len(entries) != 1 || entries[0].Kind != FlightShed || entries[0].Outcome != "queue_full" {
		t.Fatalf("shed not flight-recorded: %+v", entries)
	}
	if entries[0].TraceID != id.String() {
		t.Errorf("shed entry trace ID = %q, want %q", entries[0].TraceID, id.String())
	}
}
