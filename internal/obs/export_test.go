package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanExporterWritesNDJSON(t *testing.T) {
	var buf strings.Builder
	mu := &sync.Mutex{}
	e := NewSpanExporter(lockedWriter{mu: mu, w: &buf}, 8)
	for i := 0; i < 3; i++ {
		if !e.TryExport(&FlightEntry{Kind: FlightTrace, TraceID: "id", Tenant: "t"}) {
			t.Fatalf("TryExport %d refused with room to spare", i)
		}
	}
	if err := e.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if e.Written() != 3 {
		t.Errorf("Written() = %d, want 3", e.Written())
	}
	mu.Lock()
	body := buf.String()
	mu.Unlock()
	sc := bufio.NewScanner(strings.NewReader(body))
	lines := 0
	for sc.Scan() {
		var fe FlightEntry
		if err := json.Unmarshal(sc.Bytes(), &fe); err != nil {
			t.Fatalf("line %d is not JSON: %v (%q)", lines, err, sc.Text())
		}
		if fe.Kind != FlightTrace || fe.TraceID != "id" {
			t.Errorf("line %d decoded wrong: %+v", lines, fe)
		}
		lines++
	}
	if lines != 3 {
		t.Errorf("got %d NDJSON lines, want 3", lines)
	}
}

// lockedWriter serializes writes so the test can read the buffer without
// racing the exporter goroutine.
type lockedWriter struct {
	mu *sync.Mutex
	w  io.Writer
}

func (l lockedWriter) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Write(p)
}

// blockingWriter blocks every Write until released, simulating a stalled
// export destination.
type blockingWriter struct{ release chan struct{} }

func (b *blockingWriter) Write(p []byte) (int, error) {
	<-b.release
	return len(p), nil
}

func TestSpanExporterBackpressureDrops(t *testing.T) {
	w := &blockingWriter{release: make(chan struct{})}
	e := NewSpanExporter(w, 1)
	// First export is consumed by the (now stalled) writer goroutine;
	// second fills the buffer. Anything beyond must drop, not block.
	ok1 := e.TryExport(&FlightEntry{Kind: FlightTrace})
	deadline := time.After(time.Second)
	for e.TryExport(&FlightEntry{Kind: FlightTrace}) {
		select {
		case <-deadline:
			t.Fatal("TryExport never hit backpressure")
		default:
		}
	}
	if !ok1 {
		t.Error("first TryExport refused an empty buffer")
	}
	if e.Dropped() == 0 {
		t.Error("no drops counted under backpressure")
	}
	close(w.release)
	if err := e.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if e.Written() == 0 {
		t.Error("buffered entries not flushed on Close")
	}
	// After Close, exports degrade to counted drops.
	before := e.Dropped()
	if e.TryExport(&FlightEntry{Kind: FlightTrace}) {
		t.Error("TryExport succeeded after Close")
	}
	if e.Dropped() != before+1 {
		t.Error("post-Close export not counted as a drop")
	}
}

func TestSpanExporterNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 20; i++ {
		e := NewSpanExporter(io.Discard, 4)
		e.TryExport(&FlightEntry{Kind: FlightTrace})
		if err := e.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		if err := e.Close(); err != nil { // idempotent
			t.Fatalf("second Close: %v", err)
		}
	}
	// Give any stragglers a moment, then compare. A small delta tolerates
	// unrelated runtime goroutines.
	var after int
	for i := 0; i < 50; i++ {
		after = runtime.NumGoroutine()
		if after <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines grew from %d to %d: exporter leaked", before, after)
}

// TestSpanExporterHammer races exporters against Close under -race: late
// exports must degrade to counted drops, never panic the data plane.
func TestSpanExporterHammer(t *testing.T) {
	for round := 0; round < 20; round++ {
		e := NewSpanExporter(io.Discard, 2)
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 50; i++ {
					e.TryExport(&FlightEntry{Kind: FlightTrace})
				}
			}()
		}
		e.Close()
		wg.Wait()
	}
}

func TestSpanExporterNilSafe(t *testing.T) {
	var e *SpanExporter
	if e.TryExport(&FlightEntry{}) {
		t.Error("nil exporter accepted an export")
	}
	if e.Written() != 0 || e.Dropped() != 0 {
		t.Error("nil exporter reports nonzero accounting")
	}
	if err := e.Close(); err != nil {
		t.Errorf("nil Close: %v", err)
	}
}
