package obs

import (
	"encoding/hex"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"
)

// Request-scoped tracing (DESIGN.md §13). A ReqTracer makes one head-based
// sampling decision per submitted request and hands the ingest data plane a
// *ReqTrace to thread through admission, queue wait, dispatch, every stage
// attempt, and the response write. A nil *ReqTracer is the disabled
// subsystem, and a nil *ReqTrace is an unsampled request: every recording
// method on both is a no-op that allocates nothing, so the ingest hot path
// pays zero when tracing is off (pinned by AllocsPerRun tests).

// TraceID is a W3C-style 16-byte trace identifier, rendered as 32 lowercase
// hex characters.
type TraceID [16]byte

// IsZero reports whether the ID is the invalid all-zero ID (the W3C spec
// reserves it; the disabled tracer returns it).
func (id TraceID) IsZero() bool { return id == TraceID{} }

// String renders the ID as 32 lowercase hex characters.
func (id TraceID) String() string {
	var b [32]byte
	hex.Encode(b[:], id[:])
	return string(b[:])
}

// Traceparent renders the ID as a W3C traceparent header value
// ("00-<trace-id>-<parent-id>-<flags>"). The parent span ID is derived from
// the trace ID (this runtime does not track span parentage); sampled sets
// the trace-flags sampled bit, telling downstream services whether this
// request's trace was recorded here.
func (id TraceID) Traceparent(sampled bool) string {
	var b [55]byte
	b[0], b[1], b[2] = '0', '0', '-'
	hex.Encode(b[3:35], id[:])
	b[35] = '-'
	// Parent span ID: the trace ID's first half, with the last byte flipped
	// so it is non-zero even for adversarial inputs.
	var span [8]byte
	copy(span[:], id[:8])
	span[7] ^= 0xff
	hex.Encode(b[36:52], span[:])
	b[52] = '-'
	b[53] = '0'
	if sampled {
		b[54] = '1'
	} else {
		b[54] = '0'
	}
	return string(b[:])
}

// ParseTraceID parses a 32-hex-character trace ID (the X-Trace-Id wire
// form). The all-zero ID is invalid per the W3C spec and rejected.
func ParseTraceID(s string) (TraceID, bool) {
	var id TraceID
	if len(s) != 32 {
		return TraceID{}, false
	}
	if _, err := hex.Decode(id[:], []byte(s)); err != nil || id.IsZero() {
		return TraceID{}, false
	}
	return id, true
}

// ParseTraceparent parses a W3C traceparent header
// ("00-<32 hex trace-id>-<16 hex parent-id>-<2 hex flags>") and returns the
// trace ID plus whether the sampled flag is set. Unknown versions are
// accepted as long as the field layout matches (per the spec's
// forward-compatibility rule); malformed headers return ok=false.
func ParseTraceparent(h string) (id TraceID, sampled, ok bool) {
	if len(h) < 55 || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return TraceID{}, false, false
	}
	id, ok = ParseTraceID(h[3:35])
	if !ok {
		return TraceID{}, false, false
	}
	var flags [1]byte
	if _, err := hex.Decode(flags[:], []byte(h[53:55])); err != nil {
		return TraceID{}, false, false
	}
	return id, flags[0]&0x01 != 0, true
}

// newTraceID returns a random non-zero trace ID. The generator is seeded
// PRNG state, not cryptographic randomness: trace IDs need uniqueness, not
// unpredictability, and rand/v2's Uint64 is allocation-free.
func newTraceID() TraceID {
	var id TraceID
	for id.IsZero() {
		hi, lo := rand.Uint64(), rand.Uint64()
		for i := 0; i < 8; i++ {
			id[i] = byte(hi >> (8 * i))
			id[8+i] = byte(lo >> (8 * i))
		}
	}
	return id
}

// sampleHash folds a trace ID to the uint64 the sampling threshold is
// compared against (FNV-1a, so client-supplied IDs sample deterministically
// and uniformly too).
func sampleHash(id TraceID) uint64 {
	h := uint64(14695981039346656037)
	for _, b := range id {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return h
}

// Span kinds recorded on a request trace.
const (
	SpanAdmission = "admission" // Submit entry to queue offer
	SpanQueue     = "queue"     // queue sojourn: offer to dispatch
	SpanService   = "service"   // dispatch to pipeline result
	SpanStage     = "stage"     // one attempt of one pipeline stage
	SpanResponse  = "response"  // response encode + write
	SpanShed      = "shed"      // the shed decision (instant)
)

// ReqSpan is one recorded span of a request trace. Timestamps are
// microseconds relative to the trace's start, matching the Chrome
// trace_event convention so conversion is a field copy.
type ReqSpan struct {
	Kind    string  `json:"kind"`
	Name    string  `json:"name"`
	TSUS    float64 `json:"ts_us"`
	DurUS   float64 `json:"dur_us"`
	Stage   int     `json:"stage,omitempty"`   // stage index for stage spans
	Replica int     `json:"replica,omitempty"` // executing instance
	Attempt int     `json:"attempt,omitempty"` // 0-based attempt number
	Outcome string  `json:"outcome,omitempty"` // ok, error, timeout, retry, drop, shed
	Detail  string  `json:"detail,omitempty"`
}

// ReqTrace accumulates the spans of one sampled request. It is created by
// ReqTracer.Start and sealed by ReqTracer.Finish; all recording methods are
// safe for concurrent use (stages of a pipeline hand the trace across
// goroutines). A nil *ReqTrace (unsampled request) ignores every call.
type ReqTrace struct {
	id     TraceID
	tenant string
	start  time.Time

	mu    sync.Mutex
	spans []ReqSpan
}

// ID returns the trace ID (zero for a nil trace).
func (rt *ReqTrace) ID() TraceID {
	if rt == nil {
		return TraceID{}
	}
	return rt.id
}

// Tenant returns the tenant the trace was started for.
func (rt *ReqTrace) Tenant() string {
	if rt == nil {
		return ""
	}
	return rt.tenant
}

// Sampled reports whether the trace records spans (false for nil).
func (rt *ReqTrace) Sampled() bool { return rt != nil }

func (rt *ReqTrace) us(at time.Time) float64 {
	return float64(at.Sub(rt.start)) / float64(time.Microsecond)
}

// Span records one completed span.
func (rt *ReqTrace) Span(kind, name string, start time.Time, dur time.Duration, outcome, detail string) {
	if rt == nil {
		return
	}
	rt.mu.Lock()
	rt.spans = append(rt.spans, ReqSpan{
		Kind: kind, Name: name, TSUS: rt.us(start),
		DurUS:   float64(dur) / float64(time.Microsecond),
		Outcome: outcome, Detail: detail,
	})
	rt.mu.Unlock()
}

// StageSpan records one attempt of one pipeline stage — the runtime's hot
// path, all-scalar so a nil (unsampled) trace costs nothing at the call
// site.
func (rt *ReqTrace) StageSpan(stage string, idx, replica, attempt int, outcome string, start time.Time, dur time.Duration) {
	if rt == nil {
		return
	}
	rt.mu.Lock()
	rt.spans = append(rt.spans, ReqSpan{
		Kind: SpanStage, Name: stage, TSUS: rt.us(start),
		DurUS: float64(dur) / float64(time.Microsecond),
		Stage: idx, Replica: replica, Attempt: attempt, Outcome: outcome,
	})
	rt.mu.Unlock()
}

// Instant records a zero-duration event (a shed decision, a drop).
func (rt *ReqTrace) Instant(kind, name, detail string) {
	if rt == nil {
		return
	}
	now := time.Now()
	rt.mu.Lock()
	rt.spans = append(rt.spans, ReqSpan{
		Kind: kind, Name: name, TSUS: rt.us(now), Detail: detail,
	})
	rt.mu.Unlock()
}

// Spans returns a copy of the recorded spans in recording order.
func (rt *ReqTrace) Spans() []ReqSpan {
	if rt == nil {
		return nil
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	out := make([]ReqSpan, len(rt.spans))
	copy(out, rt.spans)
	return out
}

// ReqTracerConfig configures a ReqTracer.
type ReqTracerConfig struct {
	// SampleRate is the head-based sampling probability in [0, 1]. The
	// decision is deterministic in the trace ID, so retries of the same
	// traceparent sample identically. A request arriving with the W3C
	// sampled flag set (or an explicit X-Trace-Id) is always sampled.
	SampleRate float64
	// Exporter receives every finished sampled trace; nil disables export.
	// Export is non-blocking: traces the exporter cannot buffer are
	// dropped and counted, never stalling the data plane.
	Exporter *SpanExporter
	// Flight receives finished traces and shed decisions for the
	// /debug/flightrecorder dump; nil disables.
	Flight *FlightRecorder
}

// ReqTracerStats is the tracer's own accounting.
type ReqTracerStats struct {
	SampleRate    float64 `json:"sampleRate"`
	Started       int64   `json:"started"`
	Sampled       int64   `json:"sampled"`
	Finished      int64   `json:"finished"`
	ExportDropped int64   `json:"exportDropped"`
}

// ReqTracer is the request-tracing subsystem handle: sampling decisions at
// the door, span collection per sampled request, and fan-out of finished
// traces to the exporter and flight recorder. A nil *ReqTracer disables
// everything at zero cost.
type ReqTracer struct {
	cfg       ReqTracerConfig
	threshold uint64

	started       atomic.Int64
	sampled       atomic.Int64
	finished      atomic.Int64
	exportDropped atomic.Int64
}

// NewReqTracer builds the tracer. Rates outside [0, 1] are clamped.
func NewReqTracer(cfg ReqTracerConfig) *ReqTracer {
	if cfg.SampleRate < 0 {
		cfg.SampleRate = 0
	}
	if cfg.SampleRate > 1 {
		cfg.SampleRate = 1
	}
	t := &ReqTracer{cfg: cfg}
	// threshold/2^64 ≈ SampleRate; rate 1 must sample every hash.
	if cfg.SampleRate >= 1 {
		t.threshold = ^uint64(0)
	} else {
		t.threshold = uint64(cfg.SampleRate * float64(1<<63) * 2)
	}
	return t
}

// Enabled reports whether the tracer is live.
func (t *ReqTracer) Enabled() bool { return t != nil }

// Flight returns the attached flight recorder (nil when absent).
func (t *ReqTracer) Flight() *FlightRecorder {
	if t == nil {
		return nil
	}
	return t.cfg.Flight
}

// Start makes the head-based sampling decision for one request. parent is
// the trace ID accepted from the wire (zero generates a fresh one); force
// bypasses the sampling rate (the W3C sampled flag or an explicit
// X-Trace-Id header). The returned ID is non-zero whenever the tracer is
// enabled — it is echoed in responses even for unsampled requests — and rt
// is non-nil only for sampled ones.
func (t *ReqTracer) Start(parent TraceID, force bool, tenant string, at time.Time) (TraceID, *ReqTrace) {
	if t == nil {
		return TraceID{}, nil
	}
	id := parent
	if id.IsZero() {
		id = newTraceID()
	}
	t.started.Add(1)
	if !force && (t.threshold == 0 || sampleHash(id) >= t.threshold) {
		return id, nil
	}
	t.sampled.Add(1)
	return id, &ReqTrace{id: id, tenant: tenant, start: at, spans: make([]ReqSpan, 0, 8)}
}

// Finish seals a sampled trace and fans it out to the flight recorder and
// exporter. outcome classifies the request ("ok", "shed:<reason>",
// "error", "canceled"). Safe on a nil tracer or nil trace.
func (t *ReqTracer) Finish(rt *ReqTrace, outcome string, sojourn, service time.Duration) {
	if t == nil || rt == nil {
		return
	}
	t.finished.Add(1)
	e := &FlightEntry{
		Kind:      FlightTrace,
		Time:      rt.start,
		TraceID:   rt.id.String(),
		Tenant:    rt.tenant,
		Outcome:   outcome,
		SojournMS: float64(sojourn) / float64(time.Millisecond),
		ServiceMS: float64(service) / float64(time.Millisecond),
		Spans:     rt.Spans(),
	}
	t.cfg.Flight.Record(e)
	if t.cfg.Exporter != nil && !t.cfg.Exporter.TryExport(e) {
		t.exportDropped.Add(1)
	}
}

// RecordShed flight-records one shed decision. Sheds are recorded whether
// or not the request was sampled: they are the events postmortems need
// most, and the ring bounds their cost.
func (t *ReqTracer) RecordShed(id TraceID, tenant, reason, detail string) {
	if t == nil || t.cfg.Flight == nil {
		return
	}
	idStr := ""
	if !id.IsZero() {
		idStr = id.String()
	}
	t.cfg.Flight.Record(&FlightEntry{
		Kind: FlightShed, Time: time.Now(), TraceID: idStr,
		Tenant: tenant, Outcome: reason, Detail: detail,
	})
}

// Stats snapshots the tracer's accounting (zero for nil).
func (t *ReqTracer) Stats() ReqTracerStats {
	if t == nil {
		return ReqTracerStats{}
	}
	return ReqTracerStats{
		SampleRate:    t.cfg.SampleRate,
		Started:       t.started.Load(),
		Sampled:       t.sampled.Load(),
		Finished:      t.finished.Load(),
		ExportDropped: t.exportDropped.Load(),
	}
}
