package obs

import (
	"testing"
	"time"
)

// The tentpole contract: a disabled (nil) tracer or registry must cost
// nothing on hot paths — no allocations at the call site. StageSpan's
// all-scalar signature exists precisely so instrumented runtime loops pay
// zero when tracing is off.

func TestDisabledTracerAllocatesNothing(t *testing.T) {
	var tr *Tracer
	start := time.Now()
	allocs := testing.AllocsPerRun(1000, func() {
		tr.StageSpan("stage", 1, 2, 3, "ok", start, time.Millisecond)
		tr.Span("cat", "name", 0, start, time.Millisecond)
		tr.Instant("cat", "name", 0, start)
	})
	if allocs != 0 {
		t.Errorf("disabled tracer allocated %.1f times per op, want 0", allocs)
	}
}

func TestDisabledRegistryAllocatesNothing(t *testing.T) {
	var r *Registry
	allocs := testing.AllocsPerRun(1000, func() {
		r.Add("dp.states", 17)
		r.Inc("dp.layers")
		r.Set("fxrt.throughput", 1.5)
		r.Observe("solve_seconds", 0.01)
	})
	if allocs != 0 {
		t.Errorf("disabled registry allocated %.1f times per op, want 0", allocs)
	}
}

func BenchmarkStageSpanDisabled(b *testing.B) {
	var tr *Tracer
	start := time.Now()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.StageSpan("stage", 1, i, 0, "ok", start, time.Millisecond)
	}
}

func BenchmarkStageSpanEnabled(b *testing.B) {
	tr := NewTracer()
	start := time.Now()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.StageSpan("stage", 1, i, 0, "ok", start, time.Millisecond)
	}
}

func BenchmarkObserveDisabled(b *testing.B) {
	var r *Registry
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Observe("solve_seconds", 0.01)
	}
}

func BenchmarkObserveEnabled(b *testing.B) {
	r := NewRegistry()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Observe("solve_seconds", 0.01)
	}
}
