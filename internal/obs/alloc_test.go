package obs

import (
	"testing"
	"time"
)

// The tentpole contract: a disabled (nil) tracer or registry must cost
// nothing on hot paths — no allocations at the call site. StageSpan's
// all-scalar signature exists precisely so instrumented runtime loops pay
// zero when tracing is off.

func TestDisabledTracerAllocatesNothing(t *testing.T) {
	var tr *Tracer
	start := time.Now()
	allocs := testing.AllocsPerRun(1000, func() {
		tr.StageSpan("stage", 1, 2, 3, "ok", start, time.Millisecond)
		tr.Span("cat", "name", 0, start, time.Millisecond)
		tr.Instant("cat", "name", 0, start)
	})
	if allocs != 0 {
		t.Errorf("disabled tracer allocated %.1f times per op, want 0", allocs)
	}
}

func TestDisabledRegistryAllocatesNothing(t *testing.T) {
	var r *Registry
	allocs := testing.AllocsPerRun(1000, func() {
		r.Add("dp.states", 17)
		r.Inc("dp.layers")
		r.Set("fxrt.throughput", 1.5)
		r.Observe("solve_seconds", 0.01)
	})
	if allocs != 0 {
		t.Errorf("disabled registry allocated %.1f times per op, want 0", allocs)
	}
}

func TestDisabledReqTracerAllocatesNothing(t *testing.T) {
	var tr *ReqTracer
	var rt *ReqTrace
	start := time.Now()
	allocs := testing.AllocsPerRun(1000, func() {
		id, got := tr.Start(TraceID{}, false, "tenant", start)
		if got != nil || !id.IsZero() {
			t.Fatal("nil tracer sampled")
		}
		rt.Span(SpanAdmission, "admit", start, time.Millisecond, "ok", "")
		rt.StageSpan("stage", 1, 2, 3, "ok", start, time.Millisecond)
		rt.Instant(SpanShed, "deadline", "late")
		tr.Finish(rt, "ok", time.Millisecond, time.Millisecond)
		tr.RecordShed(id, "tenant", "queue_full", "detail")
	})
	if allocs != 0 {
		t.Errorf("disabled request tracer allocated %.1f times per op, want 0", allocs)
	}
}

func TestEnabledUnsampledStartAllocatesNothing(t *testing.T) {
	// A live tracer whose rate rejects the request must also be free: the
	// sampling decision itself (ID generation + hash) stays on the stack.
	tr := NewReqTracer(ReqTracerConfig{SampleRate: 0})
	start := time.Now()
	allocs := testing.AllocsPerRun(1000, func() {
		_, rt := tr.Start(TraceID{}, false, "tenant", start)
		if rt != nil {
			t.Fatal("rate-0 tracer sampled")
		}
	})
	if allocs != 0 {
		t.Errorf("unsampled Start allocated %.1f times per op, want 0", allocs)
	}
}

func TestDisabledFlightRecorderAllocatesNothing(t *testing.T) {
	var f *FlightRecorder
	e := &FlightEntry{Kind: FlightTrace}
	allocs := testing.AllocsPerRun(1000, func() {
		f.Record(e)
		_ = f.Recorded()
	})
	if allocs != 0 {
		t.Errorf("disabled flight recorder allocated %.1f times per op, want 0", allocs)
	}
}

func BenchmarkStageSpanDisabled(b *testing.B) {
	var tr *Tracer
	start := time.Now()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.StageSpan("stage", 1, i, 0, "ok", start, time.Millisecond)
	}
}

func BenchmarkStageSpanEnabled(b *testing.B) {
	tr := NewTracer()
	start := time.Now()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.StageSpan("stage", 1, i, 0, "ok", start, time.Millisecond)
	}
}

func BenchmarkObserveDisabled(b *testing.B) {
	var r *Registry
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Observe("solve_seconds", 0.01)
	}
}

func BenchmarkObserveEnabled(b *testing.B) {
	r := NewRegistry()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Observe("solve_seconds", 0.01)
	}
}
