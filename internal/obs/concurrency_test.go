package obs

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestConcurrentTracer hammers one tracer from many goroutines — the shape
// of a fault-tolerant run where every stage instance emits spans — while a
// reader snapshots concurrently. Run under -race this is the data-race
// check the ISSUE requires.
func TestConcurrentTracer(t *testing.T) {
	const goroutines = 16
	const perG = 200
	tr := NewTracer()
	start := time.Now()
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				switch i % 4 {
				case 0:
					tr.StageSpan("stage", g, i, 0, "ok", start, time.Microsecond)
				case 1:
					tr.Span("cat", "op", g, start, time.Microsecond)
				case 2:
					tr.Instant("fault", "death", g, start)
				default:
					tr.NameThread(g, fmt.Sprintf("w%d", g))
				}
			}
		}(g)
	}
	// Concurrent readers: Events/Len/WriteJSON must be safe mid-write.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			_ = tr.Len()
			_ = tr.Events()
			var buf bytes.Buffer
			if err := tr.WriteJSON(&buf); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	if got := tr.Len(); got != goroutines*perG {
		t.Errorf("lost events: got %d, want %d", got, goroutines*perG)
	}
}

// TestConcurrentRegistry hammers counters, gauges and histograms from many
// goroutines with concurrent snapshots.
func TestConcurrentRegistry(t *testing.T) {
	const goroutines = 16
	const perG = 500
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				r.Inc("ops")
				r.Add("states", 3)
				r.Set("gauge", float64(i))
				r.Observe("lat", float64(i%100)*1e-3)
				if i%10 == 0 {
					r.ObserveAgg("agg", 2, 0.2, 0.05, 0.15)
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			s := r.Snapshot()
			var buf bytes.Buffer
			if err := s.WriteText(&buf); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	s := r.Snapshot()
	if s.Counters["ops"] != goroutines*perG {
		t.Errorf("ops = %d, want %d", s.Counters["ops"], goroutines*perG)
	}
	if s.Counters["states"] != 3*goroutines*perG {
		t.Errorf("states = %d, want %d", s.Counters["states"], 3*goroutines*perG)
	}
	if s.Histograms["lat"].Count != goroutines*perG {
		t.Errorf("lat count = %d, want %d", s.Histograms["lat"].Count, goroutines*perG)
	}
	wantAgg := int64(goroutines * perG / 10 * 2)
	if s.Histograms["agg"].Count != wantAgg {
		t.Errorf("agg count = %d, want %d", s.Histograms["agg"].Count, wantAgg)
	}
}
