package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestTracerSpans(t *testing.T) {
	tr := NewTracer()
	start := time.Now()
	tr.NameThread(3, "worker/3")
	tr.Span("cat", "op", 3, start, 5*time.Millisecond)
	tr.SpanArgs("cat", "op2", 4, start, time.Millisecond, map[string]any{"k": 1})
	tr.StageSpan("sort", 3, 7, 1, "ok", start, 2*time.Millisecond)
	tr.Instant("fault", "boom", 3, start)
	tr.InstantArgs("fault", "boom2", 3, start, map[string]any{"dataset": 9})
	tr.VirtualSpan("sim", "exec", 0, 1.5, 2.5, nil)
	tr.VirtualInstant("fault", "fail", 0, 3.0, nil)

	events := tr.Events()
	if len(events) != 8 {
		t.Fatalf("got %d events, want 8", len(events))
	}
	if tr.Len() != 8 {
		t.Errorf("Len = %d, want 8", tr.Len())
	}
	byName := map[string]Event{}
	for _, e := range events {
		byName[e.Name] = e
	}
	if e := byName["op"]; e.Phase != "X" || e.TID != 3 || e.Dur < 4999 || e.Dur > 5001 {
		t.Errorf("span event wrong: %+v", e)
	}
	if e := byName["sort"]; e.Args["dataset"] != 7 || e.Args["attempt"] != 1 || e.Args["outcome"] != "ok" {
		t.Errorf("stage span args wrong: %+v", e)
	}
	if e := byName["boom"]; e.Phase != "i" || e.Scope != "t" {
		t.Errorf("instant event wrong: %+v", e)
	}
	if e := byName["exec"]; e.TS != 1.5e6 || e.Dur != 1e6 {
		t.Errorf("virtual span wrong: %+v", e)
	}
	if e := byName["thread_name"]; e.Phase != "M" || e.Args["name"] != "worker/3" {
		t.Errorf("thread_name metadata wrong: %+v", e)
	}
}

func TestTracerWriteJSON(t *testing.T) {
	tr := NewTracer()
	tr.VirtualSpan("sim", "exec", 1, 0, 1, map[string]any{"dataset": 0})
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var got struct {
		TraceEvents []Event `json:"traceEvents"`
		Unit        string  `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(got.TraceEvents) != 1 || got.Unit != "ms" {
		t.Errorf("unexpected trace file: %+v", got)
	}
}

func TestNilTracerIsNoop(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Error("nil tracer reports enabled")
	}
	tr.Span("c", "n", 0, time.Now(), time.Second)
	tr.StageSpan("s", 0, 0, 0, "ok", time.Now(), 0)
	tr.Instant("c", "n", 0, time.Now())
	tr.NameThread(0, "x")
	if tr.Len() != 0 || tr.Events() != nil {
		t.Error("nil tracer recorded events")
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "traceEvents") {
		t.Errorf("nil tracer JSON invalid: %s", buf.String())
	}
}

func TestRegistryCountersGauges(t *testing.T) {
	r := NewRegistry()
	r.Inc("a")
	r.Add("a", 4)
	r.Set("g", 2.5)
	r.Set("g", 3.5)
	s := r.Snapshot()
	if s.Counters["a"] != 5 {
		t.Errorf("counter a = %d, want 5", s.Counters["a"])
	}
	if s.Gauges["g"] != 3.5 {
		t.Errorf("gauge g = %g, want 3.5", s.Gauges["g"])
	}
}

func TestRegistryHistogram(t *testing.T) {
	r := NewRegistry()
	for i := 1; i <= 100; i++ {
		r.Observe("h", float64(i)*0.001) // 1ms .. 100ms
	}
	h := r.Snapshot().Histograms["h"]
	if h.Count != 100 {
		t.Fatalf("count = %d, want 100", h.Count)
	}
	if h.Min != 0.001 || h.Max != 0.1 {
		t.Errorf("min/max = %g/%g, want 0.001/0.1", h.Min, h.Max)
	}
	wantMean := 0.0505
	if h.Mean < wantMean*0.999 || h.Mean > wantMean*1.001 {
		t.Errorf("mean = %g, want ~%g", h.Mean, wantMean)
	}
	// Log-bucket quantiles are coarse: accept a factor-of-2 window.
	if h.P50 < 0.025 || h.P50 > 0.1 {
		t.Errorf("p50 = %g, want ~0.05", h.P50)
	}
	if h.P99 < 0.05 || h.P99 > 0.1 {
		t.Errorf("p99 = %g, want ~0.099", h.P99)
	}
	if h.P50 > h.P90 || h.P90 > h.P99 {
		t.Errorf("quantiles not monotone: p50=%g p90=%g p99=%g", h.P50, h.P90, h.P99)
	}
}

func TestRegistryObserveAgg(t *testing.T) {
	r := NewRegistry()
	// 10 samples summing to 2.0 with envelope [0.05, 0.5].
	r.ObserveAgg("op", 10, 2.0, 0.05, 0.5)
	// Merge a second batch.
	r.ObserveAgg("op", 5, 1.0, 0.01, 0.3)
	h := r.Snapshot().Histograms["op"]
	if h.Count != 15 {
		t.Errorf("count = %d, want 15", h.Count)
	}
	if h.Sum < 2.999 || h.Sum > 3.001 {
		t.Errorf("sum = %g, want 3", h.Sum)
	}
	if h.Min != 0.01 || h.Max != 0.5 {
		t.Errorf("min/max = %g/%g, want 0.01/0.5", h.Min, h.Max)
	}
	// Zero or negative counts are ignored.
	r.ObserveAgg("op", 0, 99, 0, 99)
	if got := r.Snapshot().Histograms["op"].Count; got != 15 {
		t.Errorf("count after empty merge = %d, want 15", got)
	}
}

func TestNilRegistryIsNoop(t *testing.T) {
	var r *Registry
	if r.Enabled() {
		t.Error("nil registry reports enabled")
	}
	r.Inc("a")
	r.Set("g", 1)
	r.Observe("h", 1)
	r.ObserveAgg("h", 3, 3, 1, 1)
	s := r.Snapshot()
	if len(s.Counters)+len(s.Gauges)+len(s.Histograms) != 0 {
		t.Errorf("nil registry recorded metrics: %+v", s)
	}
}

func TestSnapshotWriters(t *testing.T) {
	r := NewRegistry()
	r.Add("dp.states", 42)
	r.Set("fxrt.throughput", 12.5)
	r.Observe("solve_seconds", 0.25)

	var jsonBuf bytes.Buffer
	if err := r.Snapshot().WriteJSON(&jsonBuf); err != nil {
		t.Fatal(err)
	}
	var round Snapshot
	if err := json.Unmarshal(jsonBuf.Bytes(), &round); err != nil {
		t.Fatalf("snapshot JSON invalid: %v", err)
	}
	if round.Counters["dp.states"] != 42 || round.Histograms["solve_seconds"].Count != 1 {
		t.Errorf("JSON round-trip lost data: %+v", round)
	}

	var txt bytes.Buffer
	if err := r.Snapshot().WriteText(&txt); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(txt.String()), "\n")
	if !sortedLines(lines) {
		t.Errorf("text output not sorted:\n%s", txt.String())
	}
	for _, want := range []string{"dp.states 42", "fxrt.throughput 12.5", "solve_seconds.count 1"} {
		if !strings.Contains(txt.String(), want) {
			t.Errorf("text output missing %q:\n%s", want, txt.String())
		}
	}
}

func sortedLines(lines []string) bool {
	for i := 1; i < len(lines); i++ {
		if lines[i] < lines[i-1] {
			return false
		}
	}
	return true
}

func TestBucketBounds(t *testing.T) {
	for _, v := range []float64{1e-10, 1e-9, 1e-6, 0.001, 1, 100, 1e6} {
		i := bucketOf(v)
		if i < 0 || i >= histBuckets {
			t.Fatalf("bucketOf(%g) = %d out of range", v, i)
		}
		if i > histUnderflowIdx && i < histBuckets-1 && bucketUpper(i) < v*0.999 {
			t.Errorf("bucketUpper(%d)=%g below sample %g", i, bucketUpper(i), v)
		}
	}
	if bucketOf(0) != histUnderflowIdx || bucketOf(-1) != histUnderflowIdx {
		t.Error("non-positive samples must land in the underflow bucket")
	}
}
