package obs

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
)

// SpanExporter writes finished request traces as NDJSON — one JSON object
// per line, each a FlightEntry with its spans — on a dedicated writer
// goroutine behind a bounded buffer. TryExport never blocks: when the
// buffer is full (exporter backpressure, e.g. a slow disk), the trace is
// dropped and counted rather than stalling the data plane. Close drains
// the buffer, flushes, and reports the first write error.
type SpanExporter struct {
	ch   chan *FlightEntry
	done chan struct{}
	once sync.Once

	// sendMu fences TryExport sends against Close's close(ch): exporters
	// take the read side, so concurrent exports never contend with each
	// other, only with the one-time close.
	sendMu sync.RWMutex
	closed bool

	mu  sync.Mutex
	err error

	written atomic.Int64
	dropped atomic.Int64
}

// NewSpanExporter starts an exporter writing to w with the given buffer
// depth (default 256 when buf <= 0). The caller owns w's lifecycle; Close
// the exporter before closing w.
func NewSpanExporter(w io.Writer, buf int) *SpanExporter {
	if buf <= 0 {
		buf = 256
	}
	e := &SpanExporter{
		ch:   make(chan *FlightEntry, buf),
		done: make(chan struct{}),
	}
	go e.run(w)
	return e
}

func (e *SpanExporter) run(w io.Writer) {
	defer close(e.done)
	enc := json.NewEncoder(w)
	for fe := range e.ch {
		if err := enc.Encode(fe); err != nil {
			e.mu.Lock()
			if e.err == nil {
				e.err = err
			}
			e.mu.Unlock()
			continue
		}
		e.written.Add(1)
	}
}

// TryExport enqueues one finished trace without blocking. It reports false
// when the buffer is full or the exporter is closed — the caller's signal
// to count a drop. Safe on a nil exporter (reports false).
func (e *SpanExporter) TryExport(fe *FlightEntry) bool {
	if e == nil || fe == nil {
		return false
	}
	// Close is expected only after the data plane stops exporting, but a
	// late racing export must degrade to a counted drop, not a crash: the
	// closed flag under sendMu keeps the send ordered before close(ch).
	e.sendMu.RLock()
	if e.closed {
		e.sendMu.RUnlock()
		e.dropped.Add(1)
		return false
	}
	select {
	case e.ch <- fe:
		e.sendMu.RUnlock()
		return true
	default:
		e.sendMu.RUnlock()
		e.dropped.Add(1)
		return false
	}
}

// Written and Dropped report the exporter's accounting.
func (e *SpanExporter) Written() int64 {
	if e == nil {
		return 0
	}
	return e.written.Load()
}

// Dropped counts traces refused for backpressure or after close.
func (e *SpanExporter) Dropped() int64 {
	if e == nil {
		return 0
	}
	return e.dropped.Load()
}

// Close drains buffered traces to the writer, stops the goroutine, and
// returns the first write error. Idempotent; nil-safe.
func (e *SpanExporter) Close() error {
	if e == nil {
		return nil
	}
	e.once.Do(func() {
		e.sendMu.Lock()
		e.closed = true
		close(e.ch)
		e.sendMu.Unlock()
	})
	<-e.done
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.err
}
