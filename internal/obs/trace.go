package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Event is one Chrome trace_event. Timestamps and durations are in
// microseconds, per the format. Complete spans use Phase "X", instants
// "i", and metadata (thread names) "M".
type Event struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// Tracer collects trace events. A nil *Tracer is a valid disabled tracer:
// every recording method is a no-op. All methods are safe for concurrent
// use.
//
// Wall-clock spans are timestamped relative to the tracer's creation time;
// virtual spans carry their own timeline (seconds from zero). Mixing both
// in one tracer is legal but rarely useful — the timelines are unrelated.
type Tracer struct {
	mu     sync.Mutex
	origin time.Time
	events []Event
}

// NewTracer returns an enabled tracer whose wall-clock origin is now.
func NewTracer() *Tracer {
	return &Tracer{origin: time.Now()}
}

// Enabled reports whether the tracer records events.
func (t *Tracer) Enabled() bool { return t != nil }

// Len returns the number of events collected so far.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

func (t *Tracer) add(e Event) {
	t.mu.Lock()
	t.events = append(t.events, e)
	t.mu.Unlock()
}

// us converts a wall-clock instant to trace microseconds.
func (t *Tracer) us(at time.Time) float64 {
	return float64(at.Sub(t.origin)) / float64(time.Microsecond)
}

// Span records a completed wall-clock span on thread tid.
func (t *Tracer) Span(cat, name string, tid int, start time.Time, dur time.Duration) {
	if t == nil {
		return
	}
	t.add(Event{Name: name, Cat: cat, Phase: "X", TS: t.us(start),
		Dur: float64(dur) / float64(time.Microsecond), TID: tid})
}

// SpanArgs is Span with attached args. The tracer takes ownership of the
// map; callers must not mutate it afterwards.
func (t *Tracer) SpanArgs(cat, name string, tid int, start time.Time, dur time.Duration, args map[string]any) {
	if t == nil {
		return
	}
	t.add(Event{Name: name, Cat: cat, Phase: "X", TS: t.us(start),
		Dur: float64(dur) / float64(time.Microsecond), TID: tid, Args: args})
}

// StageSpan records one attempt of a pipeline stage on one data set — the
// runtime's hot path. The all-scalar signature keeps a disabled (nil)
// tracer allocation-free at the call site. outcome is "ok", "error" or
// "timeout".
func (t *Tracer) StageSpan(stage string, tid, dataset, attempt int, outcome string, start time.Time, dur time.Duration) {
	if t == nil {
		return
	}
	t.add(Event{Name: stage, Cat: "stage", Phase: "X", TS: t.us(start),
		Dur: float64(dur) / float64(time.Microsecond), TID: tid,
		Args: map[string]any{"dataset": dataset, "attempt": attempt, "outcome": outcome}})
}

// Instant records an instantaneous wall-clock event.
func (t *Tracer) Instant(cat, name string, tid int, at time.Time) {
	if t == nil {
		return
	}
	t.add(Event{Name: name, Cat: cat, Phase: "i", TS: t.us(at), TID: tid, Scope: "t"})
}

// InstantArgs is Instant with attached args (same ownership rule as
// SpanArgs).
func (t *Tracer) InstantArgs(cat, name string, tid int, at time.Time, args map[string]any) {
	if t == nil {
		return
	}
	t.add(Event{Name: name, Cat: cat, Phase: "i", TS: t.us(at), TID: tid, Scope: "t", Args: args})
}

// VirtualSpan records a span on a virtual (simulated) timeline, with start
// and end in seconds from time zero. Same ownership rule for args.
func (t *Tracer) VirtualSpan(cat, name string, tid int, start, end float64, args map[string]any) {
	if t == nil {
		return
	}
	t.add(Event{Name: name, Cat: cat, Phase: "X", TS: start * 1e6,
		Dur: (end - start) * 1e6, TID: tid, Args: args})
}

// VirtualInstant records an instantaneous event on a virtual timeline (at
// in seconds).
func (t *Tracer) VirtualInstant(cat, name string, tid int, at float64, args map[string]any) {
	if t == nil {
		return
	}
	t.add(Event{Name: name, Cat: cat, Phase: "i", TS: at * 1e6, TID: tid, Scope: "t", Args: args})
}

// NameThread labels thread tid in the trace viewer via a thread_name
// metadata event.
func (t *Tracer) NameThread(tid int, name string) {
	if t == nil {
		return
	}
	t.add(Event{Name: "thread_name", Phase: "M", TID: tid,
		Args: map[string]any{"name": name}})
}

// Events returns a copy of the collected events in recording order.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, len(t.events))
	copy(out, t.events)
	return out
}

// traceFile is the Chrome trace_event JSON object format envelope.
type traceFile struct {
	TraceEvents     []Event `json:"traceEvents"`
	DisplayTimeUnit string  `json:"displayTimeUnit"`
}

// WriteJSON writes the trace in the Chrome trace_event JSON object format,
// loadable in chrome://tracing or https://ui.perfetto.dev. A nil tracer
// writes an empty (still valid) trace.
func (t *Tracer) WriteJSON(w io.Writer) error {
	events := t.Events()
	if events == nil {
		events = []Event{}
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(traceFile{TraceEvents: events, DisplayTimeUnit: "ms"}); err != nil {
		return fmt.Errorf("obs: writing trace: %w", err)
	}
	return nil
}
