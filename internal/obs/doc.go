// Package obs is the zero-dependency observability layer: span tracing in
// Chrome trace_event format and a snapshot metrics registry, shared by the
// mapping solvers (per-layer DP timing, states evaluated, prune counts),
// the fault-tolerant runtime (one span per data set × stage × attempt) and
// the simulator (virtual-time Gantt export).
//
// Both core types are nil-safe: a nil *Tracer or nil *Registry is a valid
// "disabled" instrument whose recording methods are no-ops, so
// instrumented code paths need no conditional plumbing. Hot-path recording
// methods take only scalar arguments, which keeps the disabled case free
// of allocation (verified by alloc tests in this package).
//
// Traces are written in the Chrome trace_event JSON object format and load
// directly into chrome://tracing or https://ui.perfetto.dev. Wall-clock
// spans (runtime) and virtual-time spans (simulator) share the format, so
// simulated and measured timelines render in the same viewer.
package obs
