package live

import (
	"math"
	"sync"
	"sync/atomic"
	"time"

	"pipemap/internal/obs"
)

// DefaultWindow is the rolling window length used when an Options.Window
// is zero.
const DefaultWindow = 30 * time.Second

const (
	// counterSlots is the ring size of a windowed counter; the window is
	// divided into this many slots, which bounds the expiry granularity at
	// window/counterSlots.
	counterSlots = 16
	// histSlots is the ring size of a windowed histogram. Each slot carries
	// a full bucket array, so the ring is kept shorter than the counter's.
	histSlots = 8
)

// Counter is a monotonically increasing counter that additionally tracks a
// rolling window, so it reports both a cumulative total (for Prometheus
// counter semantics) and a windowed rate. A nil *Counter is a valid
// disabled instrument: all methods are no-ops or return zero.
type Counter struct {
	mu      sync.Mutex
	clock   Clock
	slot    int64 // nanoseconds per ring slot
	created int64
	epochs  [counterSlots]int64
	vals    [counterSlots]int64
	total   int64
}

func newCounter(clock Clock, window time.Duration) *Counter {
	c := &Counter{clock: clock, slot: int64(window) / counterSlots}
	if c.slot <= 0 {
		c.slot = 1
	}
	for i := range c.epochs {
		c.epochs[i] = -1
	}
	c.created = clock()
	return c
}

// Add increments the counter by delta.
func (c *Counter) Add(delta int64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	e := c.clock() / c.slot
	i := int(e % counterSlots)
	if i < 0 {
		i += counterSlots
	}
	if c.epochs[i] != e {
		c.epochs[i] = e
		c.vals[i] = 0
	}
	c.vals[i] += delta
	c.total += delta
	c.mu.Unlock()
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Total returns the cumulative count since creation.
func (c *Counter) Total() int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.total
}

// windowSumLocked sums the slots that fall inside the window ending now.
func (c *Counter) windowSumLocked(now int64) int64 {
	e := now / c.slot
	var sum int64
	for i := range c.epochs {
		if d := e - c.epochs[i]; d >= 0 && d < counterSlots {
			sum += c.vals[i]
		}
	}
	return sum
}

// WindowSum returns the count accumulated inside the rolling window.
func (c *Counter) WindowSum() int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.windowSumLocked(c.clock())
}

// Rate returns the windowed rate in events per second. Before a full
// window has elapsed the divisor is the time since creation, so early
// rates are not diluted by the empty remainder of the window.
func (c *Counter) Rate() float64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.clock()
	sum := c.windowSumLocked(now)
	elapsed := now - c.created
	if window := c.slot * counterSlots; elapsed > window {
		elapsed = window
	}
	if elapsed <= 0 {
		return 0
	}
	return float64(sum) / (float64(elapsed) / 1e9)
}

// Gauge is a last-value instrument. A nil *Gauge is a valid disabled
// instrument. Gauges are lock-free (atomic bit stores).
type Gauge struct {
	bits atomic.Uint64
}

func newGauge() *Gauge { return &Gauge{} }

// Set records the current value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the last recorded value (zero if never set).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// histSlot is one time bucket of a windowed histogram. Alongside the
// sample counts it keeps one exemplar trace ID per value bucket, so a
// windowed quantile can be traced back to a concrete request
// (DESIGN.md §13).
type histSlot struct {
	epoch     int64
	count     int64
	sum       float64
	min, max  float64
	buckets   [obs.HistogramBuckets]int64
	exemplars [obs.HistogramBuckets]string
}

// Histogram is a rolling-window histogram: a ring of time slots, each
// holding a full log-spaced bucket array (the same layout as package obs),
// merged at read time into windowed quantiles. Cumulative count and sum
// are tracked separately so exposition can emit monotone _count/_sum
// series alongside windowed quantiles. A nil *Histogram is a valid
// disabled instrument.
type Histogram struct {
	mu         sync.Mutex
	clock      Clock
	slot       int64
	created    int64
	slots      [histSlots]histSlot
	total      int64
	totalSum   float64
	allMin     float64
	allMax     float64
	everSawOne bool
}

func newHistogram(clock Clock, window time.Duration) *Histogram {
	h := &Histogram{clock: clock, slot: int64(window) / histSlots}
	if h.slot <= 0 {
		h.slot = 1
	}
	for i := range h.slots {
		h.slots[i].epoch = -1
	}
	h.created = clock()
	return h
}

// Observe adds one sample. The hot path touches only ring arrays: no
// allocation, one mutex.
func (h *Histogram) Observe(v float64) { h.ObserveExemplar(v, "") }

// ObserveExemplar adds one sample and, when exemplar is non-empty,
// attaches it as the exemplar trace ID of the value bucket the sample
// falls into (last writer wins). Exemplar storage reuses the slot ring:
// no allocation beyond the caller's string.
func (h *Histogram) ObserveExemplar(v float64, exemplar string) {
	if h == nil {
		return
	}
	h.mu.Lock()
	e := h.clock() / h.slot
	i := int(e % histSlots)
	if i < 0 {
		i += histSlots
	}
	s := &h.slots[i]
	if s.epoch != e {
		*s = histSlot{epoch: e}
	}
	if s.count == 0 || v < s.min {
		s.min = v
	}
	if s.count == 0 || v > s.max {
		s.max = v
	}
	s.count++
	s.sum += v
	b := obs.HistogramBucketOf(v)
	s.buckets[b]++
	if exemplar != "" {
		s.exemplars[b] = exemplar
	}
	h.total++
	h.totalSum += v
	if !h.everSawOne || v < h.allMin {
		h.allMin = v
	}
	if !h.everSawOne || v > h.allMax {
		h.allMax = v
	}
	h.everSawOne = true
	h.mu.Unlock()
}

// WindowStat summarizes the samples inside the rolling window.
type WindowStat struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
	Rate  float64 `json:"rate"` // samples per second over the window
	// P99Exemplar is the trace ID of a request that landed in the value
	// bucket containing the windowed p99, when one was attached via
	// ObserveExemplar.
	P99Exemplar string `json:"p99_exemplar,omitempty"`
}

// Window merges the live slots and returns the windowed summary.
func (h *Histogram) Window() WindowStat {
	if h == nil {
		return WindowStat{}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	now := h.clock()
	e := now / h.slot
	var merged [obs.HistogramBuckets]int64
	var mergedEx [obs.HistogramBuckets]string
	var mergedExEpoch [obs.HistogramBuckets]int64
	var st WindowStat
	first := true
	for i := range h.slots {
		s := &h.slots[i]
		if d := e - s.epoch; d < 0 || d >= histSlots || s.count == 0 {
			continue
		}
		st.Count += s.count
		st.Sum += s.sum
		if first || s.min < st.Min {
			st.Min = s.min
		}
		if first || s.max > st.Max {
			st.Max = s.max
		}
		first = false
		for b, n := range s.buckets {
			merged[b] += n
			if x := s.exemplars[b]; x != "" && (mergedEx[b] == "" || s.epoch > mergedExEpoch[b]) {
				mergedEx[b] = x
				mergedExEpoch[b] = s.epoch
			}
		}
	}
	if st.Count > 0 {
		st.Mean = st.Sum / float64(st.Count)
		st.P50 = obs.QuantileFromBuckets(merged[:], st.Count, 0.50, st.Min, st.Max)
		st.P90 = obs.QuantileFromBuckets(merged[:], st.Count, 0.90, st.Min, st.Max)
		st.P99 = obs.QuantileFromBuckets(merged[:], st.Count, 0.99, st.Min, st.Max)
		// Trace the p99 back to a concrete request: the freshest exemplar in
		// the p99's own value bucket, falling back to the nearest populated
		// bucket above it (quantile interpolation can land just below the
		// bucket that actually holds the tail samples).
		for b := obs.HistogramBucketOf(st.P99); b < obs.HistogramBuckets; b++ {
			if mergedEx[b] != "" {
				st.P99Exemplar = mergedEx[b]
				break
			}
		}
	}
	elapsed := now - h.created
	if window := h.slot * histSlots; elapsed > window {
		elapsed = window
	}
	if elapsed > 0 {
		st.Rate = float64(st.Count) / (float64(elapsed) / 1e9)
	}
	return st
}

// Total returns the cumulative sample count and value sum since creation.
func (h *Histogram) Total() (count int64, sum float64) {
	if h == nil {
		return 0, 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.total, h.totalSum
}
