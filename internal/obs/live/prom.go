package live

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"pipemap/internal/obs"
)

// Prometheus text exposition (format version 0.0.4). Metric names follow
// the repo's dotted scheme mechanically sanitized: "fxrt.op.exec:colffts"
// becomes "fxrt_op_exec_colffts". Windowed histograms are exposed as
// summaries (quantiles over the rolling window, cumulative _sum/_count),
// windowed counters as a monotone _total plus a _per_second gauge.

// promName sanitizes a dotted metric name into a valid Prometheus metric
// name ([a-zA-Z_:][a-zA-Z0-9_:]*).
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 1)
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if !ok {
			if i == 0 && r >= '0' && r <= '9' {
				b.WriteByte('_')
			}
			b.WriteByte('_')
			continue
		}
		b.WriteRune(r)
	}
	return b.String()
}

// promLabelValue escapes a label value per the exposition format.
func promLabelValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

// promFloat renders a sample value. Prometheus accepts NaN/Inf spellings,
// but all repo metrics are finite; guard anyway.
func promFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// promWriter accumulates exposition lines, emitting each # TYPE header
// once.
type promWriter struct {
	w     io.Writer
	err   error
	typed map[string]bool
}

func newPromWriter(w io.Writer) *promWriter {
	return &promWriter{w: w, typed: map[string]bool{}}
}

func (p *promWriter) head(name, typ, help string) {
	if p.err != nil || p.typed[name] {
		return
	}
	p.typed[name] = true
	if help != "" {
		_, p.err = fmt.Fprintf(p.w, "# HELP %s %s\n", name, help)
		if p.err != nil {
			return
		}
	}
	_, p.err = fmt.Fprintf(p.w, "# TYPE %s %s\n", name, typ)
}

// sample writes one series; labels alternate key, value.
func (p *promWriter) sample(name string, v float64, labels ...string) {
	if p.err != nil {
		return
	}
	var b strings.Builder
	b.WriteString(name)
	if len(labels) > 0 {
		b.WriteByte('{')
		for i := 0; i+1 < len(labels); i += 2 {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, `%s="%s"`, labels[i], promLabelValue(labels[i+1]))
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(promFloat(v))
	b.WriteByte('\n')
	_, p.err = io.WriteString(p.w, b.String())
}

func (p *promWriter) gauge(name, help string, v float64, labels ...string) {
	p.head(name, "gauge", help)
	p.sample(name, v, labels...)
}

func (p *promWriter) counter(name, help string, v float64, labels ...string) {
	p.head(name, "counter", help)
	p.sample(name, v, labels...)
}

// summary writes a windowed-quantile summary with cumulative sum/count.
func (p *promWriter) summary(name, help string, st WindowStat, count int64, sum float64, labels ...string) {
	p.head(name, "summary", help)
	p.sample(name, st.P50, append(labels, "quantile", "0.5")...)
	p.sample(name, st.P90, append(labels, "quantile", "0.9")...)
	p.sample(name, st.P99, append(labels, "quantile", "0.99")...)
	p.sample(name+"_sum", sum, labels...)
	p.sample(name+"_count", float64(count), labels...)
}

// writeMonitor emits the pipeline health model as Prometheus series.
func writeMonitor(p *promWriter, m *Monitor) {
	if m == nil {
		return
	}
	h := m.Health()
	b2f := func(b bool) float64 {
		if b {
			return 1
		}
		return 0
	}
	p.gauge("pipemap_up", "1 while the live observability server is attached to a pipeline.", 1)
	p.gauge("pipemap_ready", "1 when the pipeline is started and nominal.", b2f(h.Ready))
	p.gauge("pipemap_degraded", "1 when the pipeline is serving below nominal capacity.", b2f(h.Status == "degraded"))
	p.gauge("pipemap_uptime_seconds", "Seconds since the pipeline started (virtual in replays).", h.UptimeSeconds)
	p.counter("pipemap_datasets_completed_total", "Data sets that reached the sink.", float64(h.Completed))
	p.gauge("pipemap_throughput_datasets_per_second", "Windowed observed throughput at the sink.", h.ObservedThroughput)
	p.gauge("pipemap_predicted_throughput_datasets_per_second", "Model-predicted steady-state throughput 1/max_i(f_i/r_i).", h.PredictedThroughput)
	p.gauge("pipemap_bottleneck_stage", "Index of the stage with the largest observed period f_i/r_i.", float64(h.BottleneckStage))
	lc, ls := m.latency.Total()
	p.summary("pipemap_latency_seconds", "End-to-end data set latency (windowed quantiles).", h.Latency, lc, ls)

	// All series of one metric family must be consecutive in the
	// exposition, so iterate metric-major, stage-minor.
	eachStage := func(f func(sh *StageHealth, labels []string)) {
		for i := range h.Stages {
			f(&h.Stages[i], []string{"stage", h.Stages[i].Name})
		}
	}
	eachStage(func(sh *StageHealth, l []string) {
		p.counter("pipemap_stage_completed_total", "Successful stage attempts.", float64(sh.Completed), l...)
	})
	eachStage(func(sh *StageHealth, l []string) {
		p.gauge("pipemap_stage_rate_datasets_per_second", "Windowed stage completion rate.", sh.Rate, l...)
	})
	eachStage(func(sh *StageHealth, l []string) {
		p.gauge("pipemap_stage_period_seconds", "Observed stage period: windowed mean attempt latency / live replicas (the observed f_i/r_i).", sh.ObservedPeriod, l...)
	})
	eachStage(func(sh *StageHealth, l []string) {
		p.gauge("pipemap_stage_predicted_period_seconds", "Model-predicted stage period f_i/r_i.", sh.PredictedPeriod, l...)
	})
	eachStage(func(sh *StageHealth, l []string) {
		p.gauge("pipemap_stage_replicas", "Configured replicas of the stage.", float64(sh.Replicas), l...)
	})
	eachStage(func(sh *StageHealth, l []string) {
		p.gauge("pipemap_stage_live_replicas", "Replicas still in rotation.", float64(sh.Live), l...)
	})
	eachStage(func(sh *StageHealth, l []string) {
		p.counter("pipemap_stage_retries_total", "Retried attempts.", float64(sh.Retries), l...)
	})
	eachStage(func(sh *StageHealth, l []string) {
		p.counter("pipemap_stage_drops_total", "Data sets dropped at this stage.", float64(sh.Drops), l...)
	})
	eachStage(func(sh *StageHealth, l []string) {
		p.counter("pipemap_stage_timeouts_total", "Attempts cut off by the stage deadline.", float64(sh.Timeouts), l...)
	})
	eachStage(func(sh *StageHealth, l []string) {
		p.counter("pipemap_stage_deaths_total", "Instances declared dead.", float64(sh.Deaths), l...)
	})
	eachStage(func(sh *StageHealth, l []string) {
		sc, ss := m.stages[sh.Stage].lat.Total()
		p.summary("pipemap_stage_latency_seconds", "Per-attempt stage latency (windowed quantiles).", sh.Latency, sc, ss, l...)
	})
}

// writeRegistry emits a live registry's instruments.
func writeRegistry(p *promWriter, r *Registry) {
	if r == nil {
		return
	}
	s := r.Snapshot()
	for _, k := range sortedKeys(s.Counters) {
		c := s.Counters[k]
		n := promName(k)
		p.counter(n+"_total", "", float64(c.Total))
		p.gauge(n+"_per_second", "", c.Rate)
	}
	for _, k := range sortedKeys(s.Gauges) {
		p.gauge(promName(k), "", s.Gauges[k])
	}
	for _, k := range sortedKeys(s.Histograms) {
		st := s.Histograms[k]
		p.summary(promName(k), "", st, st.Count, st.Sum)
	}
	// Labeled families. Label values were sanitized at With() time, so they
	// can never break the exposition; family-major order keeps all series
	// of one family consecutive as the format requires.
	for _, k := range sortedKeys(s.CounterVecs) {
		vs := s.CounterVecs[k]
		n, lk := promName(k), promName(vs.LabelKey)
		for _, ls := range vs.Series {
			p.counter(n+"_total", "", float64(ls.Value.Total), lk, ls.Label)
		}
		for _, ls := range vs.Series {
			p.gauge(n+"_per_second", "", ls.Value.Rate, lk, ls.Label)
		}
	}
	for _, k := range sortedKeys(s.GaugeVecs) {
		vs := s.GaugeVecs[k]
		n, lk := promName(k), promName(vs.LabelKey)
		for _, ls := range vs.Series {
			p.gauge(n, "", ls.Value, lk, ls.Label)
		}
	}
	for _, k := range sortedKeys(s.HistogramVecs) {
		vs := s.HistogramVecs[k]
		n, lk := promName(k), promName(vs.LabelKey)
		for _, ls := range vs.Series {
			p.summary(n, "", ls.Value, ls.Value.Count, ls.Value.Sum, lk, ls.Label)
		}
	}
}

// writeStatic emits a cumulative obs snapshot (the PR 2 registry), so the
// solver metrics collected before the pipeline started are scrapable from
// the same endpoint.
func writeStatic(p *promWriter, s obs.Snapshot) {
	for _, k := range sortedKeys(s.Counters) {
		p.counter(promName(k)+"_total", "", float64(s.Counters[k]))
	}
	for _, k := range sortedKeys(s.Gauges) {
		p.gauge(promName(k), "", s.Gauges[k])
	}
	for _, k := range sortedKeys(s.Histograms) {
		h := s.Histograms[k]
		n := promName(k)
		p.summary(n, "", WindowStat{P50: h.P50, P90: h.P90, P99: h.P99}, h.Count, h.Sum)
		p.gauge(n+"_min", "", h.Min)
		p.gauge(n+"_max", "", h.Max)
	}
}

// WriteProm writes the full exposition: monitor-derived pipeline metrics,
// live registry instruments, and an optional cumulative snapshot. Any of
// the sources may be nil/empty.
func WriteProm(w io.Writer, m *Monitor, r *Registry, static *obs.Snapshot) error {
	p := newPromWriter(w)
	writeMonitor(p, m)
	writeRegistry(p, r)
	if static != nil {
		writeStatic(p, *static)
	}
	return p.err
}
