// Package live is the live observability layer: rolling-window
// instruments, a pipeline health model, and an embeddable HTTP server
// exposing them while a pipeline runs.
//
// Package obs (the parent) is snapshot-at-exit observability: cumulative
// counters and a trace file read after the run. This package answers the
// questions a scraper or dashboard asks about a *running* pipeline: what
// is the throughput right now, which stage is the bottleneck, how does the
// observed per-stage period compare to the model-predicted f_i/r_i, and is
// the pipeline nominal or degraded.
//
// # Instruments
//
// Counter, Gauge and Histogram are windowed: a ring of time-bucketed slots
// over a configurable window (default 30s) yields rates and quantiles that
// track the recent past instead of the whole run. Histograms reuse the
// log-spaced bucket layout of package obs, so windowed and cumulative
// quantiles are directly comparable. All instruments follow the obs
// contract: a nil instrument (or nil Registry/Monitor) is valid, disabled,
// and allocation-free on the hot path.
//
// Time is read through a Clock so the same instruments serve wall-clock
// pipelines (fxrt) and virtual-time replays (the simulator): a
// VirtualClock is advanced by the replayer instead of the scheduler.
//
// # Health model
//
// Monitor tracks one running pipeline. Stages report completions with
// their attempt latency, plus retries, timeouts, drops and instance
// deaths. Health() derives the paper's steady-state decomposition from the
// live window: each stage's observed period (mean attempt latency divided
// by live replicas — the observed f_i/r_i), the bottleneck stage (argmax
// observed period, the stage that bounds 1/max_i(f_i/r_i)), end-to-end
// windowed throughput and latency quantiles, and a nominal/degraded status
// with ready/not-ready semantics for orchestrators.
//
// # Server
//
// Server exposes a Monitor (and optionally a live Registry and a
// cumulative obs.Snapshot source) over HTTP:
//
//	/metrics      Prometheus text exposition
//	/healthz      liveness (200 while serving)
//	/readyz       readiness (503 before start or while degraded)
//	/pipeline     health model as JSON
//	/events       NDJSON stream of fault events (deaths, drops, retries)
//	/debug/pprof  standard pprof handlers
package live
