package live

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"

	"pipemap/internal/obs"
)

// testServer builds a started monitor with traffic on it, a live registry,
// and a static obs snapshot, all behind an httptest server.
func testServer(t *testing.T) (*httptest.Server, *Monitor, *VirtualClock) {
	t.Helper()
	vc := NewVirtualClock()
	cfg := ConfigFromMapping(testMapping())
	cfg.Options = Options{Window: 30 * time.Second, Clock: vc.Clock()}
	mon := NewMonitor(cfg)
	vc.SetSeconds(1)
	mon.Start()
	for i := 0; i < 20; i++ {
		mon.StageDone(0, 0.2)
		mon.StageDone(1, 0.3)
		mon.Completed(0.5)
	}

	reg := NewRegistry(Options{Window: 30 * time.Second, Clock: vc.Clock()})
	reg.Counter("serve.requests").Add(3)
	reg.Gauge("serve.depth").Set(2)
	reg.Histogram("serve.latency").Observe(0.01)

	static := obs.NewRegistry()
	static.Add("dp.states", 100)
	static.Observe("dp.layer_seconds", 0.002)

	srv := NewServer(ServerOptions{
		Monitor:  mon,
		Registry: reg,
		Static:   static.Snapshot,
	})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, mon, vc
}

func get(t *testing.T, url string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("GET %s: reading body: %v", url, err)
	}
	return resp, string(body)
}

var (
	promNameRe   = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	promLabelRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
	promSampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{([^}]*)\})? (NaN|[+-]Inf|[-+0-9.eE]+)$`)
	promTypeRe   = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|summary|histogram|untyped)$`)
)

// lintProm validates Prometheus text exposition 0.0.4: every sample line
// parses, metric and label names are legal, every sample's family has a
// TYPE declared first, and the series of one family are consecutive.
func lintProm(t *testing.T, body string) map[string]string {
	t.Helper()
	typed := map[string]string{}
	lastFamily := ""
	closedFamilies := map[string]bool{}
	sc := bufio.NewScanner(strings.NewReader(body))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if strings.HasPrefix(line, "#") {
			m := promTypeRe.FindStringSubmatch(line)
			if m == nil {
				t.Errorf("malformed comment line: %q", line)
				continue
			}
			if _, dup := typed[m[1]]; dup {
				t.Errorf("duplicate TYPE for %s", m[1])
			}
			typed[m[1]] = m[2]
			continue
		}
		m := promSampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Errorf("malformed sample line: %q", line)
			continue
		}
		name := m[1]
		if !promNameRe.MatchString(name) {
			t.Errorf("bad metric name %q", name)
		}
		family := name
		if _, ok := typed[family]; !ok {
			// Summary children share the parent's TYPE.
			for _, suffix := range []string{"_sum", "_count"} {
				if base, found := strings.CutSuffix(name, suffix); found {
					if _, ok := typed[base]; ok {
						family = base
						break
					}
				}
			}
		}
		if _, ok := typed[family]; !ok {
			t.Errorf("sample %q has no TYPE declaration", name)
		}
		if family != lastFamily {
			if closedFamilies[family] {
				t.Errorf("family %s interleaved with other families", family)
			}
			if lastFamily != "" {
				closedFamilies[lastFamily] = true
			}
			lastFamily = family
		}
		if m[3] != "" {
			for _, pair := range splitLabels(m[3]) {
				k, _, ok := strings.Cut(pair, "=")
				if !ok || !promLabelRe.MatchString(k) {
					t.Errorf("bad label %q in %q", pair, line)
				}
			}
		}
	}
	return typed
}

// splitLabels splits a label body on commas outside quotes.
func splitLabels(s string) []string {
	var out []string
	depth := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			if i == 0 || s[i-1] != '\\' {
				depth = !depth
			}
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

func TestMetricsEndpoint(t *testing.T) {
	ts, _, _ := testServer(t)
	resp, body := get(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("content type = %q, want Prometheus 0.0.4", ct)
	}
	typed := lintProm(t, body)
	for _, want := range []string{
		"pipemap_up", "pipemap_ready", "pipemap_degraded",
		"pipemap_datasets_completed_total", "pipemap_throughput_datasets_per_second",
		"pipemap_bottleneck_stage", "pipemap_latency_seconds",
		"pipemap_stage_period_seconds", "pipemap_stage_live_replicas",
		"serve_requests_total", "serve_depth", "serve_latency",
		"dp_states_total", "dp_layer_seconds",
	} {
		if _, ok := typed[want]; !ok {
			t.Errorf("metric family %s missing from exposition", want)
		}
	}
	if !strings.Contains(body, `pipemap_stage_period_seconds{stage="a"}`) {
		t.Errorf("per-stage series with stage label missing:\n%s", body)
	}
	if !strings.Contains(body, `quantile="0.99"`) {
		t.Error("summary quantile series missing")
	}
}

func TestHealthzReadyzPipeline(t *testing.T) {
	ts, mon, _ := testServer(t)
	resp, body := get(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz = %d %q", resp.StatusCode, body)
	}
	resp, _ = get(t, ts.URL+"/readyz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/readyz nominal = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("/readyz content type = %q", ct)
	}

	resp, body = get(t, ts.URL+"/pipeline")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/pipeline = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("/pipeline content type = %q", ct)
	}
	var h Health
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatalf("/pipeline JSON: %v\n%s", err, body)
	}
	if len(h.Stages) != 2 || h.Status != "nominal" || !h.Ready {
		t.Fatalf("/pipeline health = %+v", h)
	}
	// The reported bottleneck is the argmax of the observed periods.
	arg := 0
	for i, sh := range h.Stages {
		if sh.ObservedPeriod > h.Stages[arg].ObservedPeriod {
			arg = i
		}
	}
	if h.BottleneckStage != arg {
		t.Errorf("bottleneckStage = %d, argmax observed period = %d", h.BottleneckStage, arg)
	}

	// Kill a replica: /readyz flips to 503 degraded.
	mon.InstanceDeath(0, 11)
	resp, body = get(t, ts.URL+"/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz after death = %d, want 503", resp.StatusCode)
	}
	var rz struct {
		Ready  bool   `json:"ready"`
		Status string `json:"status"`
	}
	if err := json.Unmarshal([]byte(body), &rz); err != nil {
		t.Fatalf("/readyz JSON: %v", err)
	}
	if rz.Ready || rz.Status != "degraded" {
		t.Errorf("/readyz after death = %+v", rz)
	}
}

func TestReadyzNoMonitor(t *testing.T) {
	srv := NewServer(ServerOptions{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, _ := get(t, ts.URL+"/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz without monitor = %d, want 503", resp.StatusCode)
	}
	// /metrics still answers with an empty (but valid) exposition.
	resp, body := get(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics without sources = %d, want 200", resp.StatusCode)
	}
	lintProm(t, body)
}

func TestEventsEndpoint(t *testing.T) {
	ts, mon, _ := testServer(t)
	mon.StageRetry(1, 4)
	mon.InstanceDeath(0, 9)
	resp, body := get(t, ts.URL+"/events?follow=0")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/events = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("/events content type = %q", ct)
	}
	var kinds []string
	for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
		if line == "" {
			continue
		}
		var ev Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		kinds = append(kinds, ev.Kind)
	}
	if len(kinds) != 2 || kinds[0] != "retry" || kinds[1] != "death" {
		t.Fatalf("event kinds = %v, want [retry death]", kinds)
	}
}

func TestIndexAndPprofRoutes(t *testing.T) {
	ts, _, _ := testServer(t)
	resp, body := get(t, ts.URL+"/")
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, "/metrics") {
		t.Fatalf("index = %d %q", resp.StatusCode, body)
	}
	resp, _ = get(t, ts.URL+"/no-such-page")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown path = %d, want 404", resp.StatusCode)
	}
	resp, _ = get(t, ts.URL+"/debug/pprof/cmdline")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline = %d, want 200", resp.StatusCode)
	}
}

func TestServerStartClose(t *testing.T) {
	srv := NewServer(ServerOptions{DisablePprof: true})
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	if addr == "" {
		t.Fatal("no bound address")
	}
	resp, _ := get(t, "http://"+addr+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz over TCP = %d", resp.StatusCode)
	}
	resp, _ = get(t, "http://"+addr+"/debug/pprof/cmdline")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof with DisablePprof = %d, want 404", resp.StatusCode)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + addr + "/healthz"); err == nil {
		t.Fatal("server still serving after Close")
	}
}

func TestReadyzDuringDrain(t *testing.T) {
	ts, mon, _ := testServer(t)

	resp, _ := get(t, ts.URL+"/readyz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz %d before drain, want 200", resp.StatusCode)
	}

	mon.SetDraining(true)
	resp, body := get(t, ts.URL+"/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz %d during drain, want 503", resp.StatusCode)
	}
	if !strings.Contains(body, "migration drain in progress") {
		t.Errorf("readyz drain body %q missing the drain reason", body)
	}
	_, body = get(t, ts.URL+"/pipeline")
	var h Health
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatalf("pipeline JSON: %v", err)
	}
	if !h.Draining || h.Ready {
		t.Errorf("pipeline during drain: draining=%v ready=%v, want true/false", h.Draining, h.Ready)
	}

	mon.SetDraining(false)
	resp, _ = get(t, ts.URL+"/readyz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz %d after drain, want 200", resp.StatusCode)
	}

	var starts, ends int
	for _, ev := range mon.Events().History() {
		switch ev.Kind {
		case "drain-start":
			starts++
		case "drain-end":
			ends++
		}
	}
	if starts != 1 || ends != 1 {
		t.Errorf("drain events start=%d end=%d, want 1/1", starts, ends)
	}
	// Setting the same state twice must not duplicate events.
	mon.SetDraining(false)
	if got := len(mon.Events().History()); got != 2 {
		t.Errorf("%d events after idempotent SetDraining, want 2", got)
	}
}

func TestPipelineControllerKeyAndSourceSwap(t *testing.T) {
	monA := NewMonitor(Config{Mapping: "gen-0", Stages: []StageInfo{{Name: "a", Replicas: 1}}})
	monA.Start()
	monB := NewMonitor(Config{Mapping: "gen-1", Stages: []StageInfo{{Name: "a", Replicas: 1}}})
	monB.Start()

	current := monA
	srv := NewServer(ServerOptions{
		Source:     func() *Monitor { return current },
		Controller: func() any { return map[string]any{"generation": 7} },
	})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	_, body := get(t, ts.URL+"/pipeline")
	var payload struct {
		Health
		Controller map[string]any `json:"controller"`
	}
	if err := json.Unmarshal([]byte(body), &payload); err != nil {
		t.Fatalf("pipeline JSON: %v", err)
	}
	if payload.Mapping != "gen-0" {
		t.Errorf("pipeline mapping %q, want gen-0", payload.Mapping)
	}
	if payload.Controller["generation"] != float64(7) {
		t.Errorf("controller payload %v missing generation", payload.Controller)
	}

	// A generation swap behind the Source follows on the next request.
	current = monB
	_, body = get(t, ts.URL+"/pipeline")
	if err := json.Unmarshal([]byte(body), &payload); err != nil {
		t.Fatalf("pipeline JSON after swap: %v", err)
	}
	if payload.Mapping != "gen-1" {
		t.Errorf("pipeline mapping %q after source swap, want gen-1", payload.Mapping)
	}
	resp, _ := get(t, ts.URL+"/readyz")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("readyz %d via Source, want 200", resp.StatusCode)
	}
}

func TestEventsClientDisconnectUnblocksFollow(t *testing.T) {
	mon := NewMonitor(Config{Stages: []StageInfo{{Name: "s0", Workers: 1, Replicas: 1}}})
	mon.Start()
	srv := NewServer(ServerOptions{Monitor: mon, DisablePprof: true})
	req := httptest.NewRequest("GET", "/events", nil)
	ctx, cancel := context.WithCancel(req.Context())
	req = req.WithContext(ctx)
	done := make(chan struct{})
	go func() {
		srv.Handler().ServeHTTP(httptest.NewRecorder(), req)
		close(done)
	}()
	time.Sleep(20 * time.Millisecond) // let the handler enter its follow loop
	mon.StageRetry(0, 1)
	select {
	case <-done:
		t.Fatal("follow stream ended while the client was still connected")
	default:
	}
	cancel()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("events handler did not return after the client disconnected")
	}
}

func TestEventsCanceledContextAbortsHistoryReplay(t *testing.T) {
	mon := NewMonitor(Config{Stages: []StageInfo{{Name: "s0", Workers: 1, Replicas: 1}}})
	mon.Start()
	for i := 0; i < 200; i++ {
		mon.StageRetry(0, i)
	}
	srv := NewServer(ServerOptions{Monitor: mon, DisablePprof: true})
	req := httptest.NewRequest("GET", "/events", nil)
	ctx, cancel := context.WithCancel(req.Context())
	cancel() // the client is already gone
	req = req.WithContext(ctx)
	rec := httptest.NewRecorder()
	done := make(chan struct{})
	go func() {
		srv.Handler().ServeHTTP(rec, req)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("events handler pinned on history replay for a gone client")
	}
	if body := rec.Body.String(); strings.Count(body, "\n") >= 200 {
		t.Fatalf("full history replayed to a disconnected client (%d lines)", strings.Count(body, "\n"))
	}
}

func TestPipelineIngestKeyAndExtraRoutes(t *testing.T) {
	mon := NewMonitor(Config{Stages: []StageInfo{{Name: "s0", Workers: 1, Replicas: 1}}})
	mon.Start()
	srv := NewServer(ServerOptions{
		Monitor: mon,
		Ingest:  func() any { return map[string]any{"queueDepth": 3} },
		Extra: map[string]http.Handler{
			"/v1/echo": http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
				io.WriteString(w, "echo")
			}),
		},
		DisablePprof: true,
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	_, body := get(t, ts.URL+"/pipeline")
	var payload struct {
		Health
		Ingest map[string]any `json:"ingest"`
	}
	if err := json.Unmarshal([]byte(body), &payload); err != nil {
		t.Fatalf("pipeline JSON: %v", err)
	}
	if payload.Ingest["queueDepth"] != float64(3) {
		t.Fatalf("pipeline ingest payload = %v, want queueDepth 3", payload.Ingest)
	}
	resp, body := get(t, ts.URL+"/v1/echo")
	if resp.StatusCode != http.StatusOK || body != "echo" {
		t.Fatalf("/v1/echo = %d %q, want mounted extra handler", resp.StatusCode, body)
	}
	_, body = get(t, ts.URL+"/")
	if !strings.Contains(body, "/v1/echo") {
		t.Fatalf("index does not list the extra route: %q", body)
	}
}
