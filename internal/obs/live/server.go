package live

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"time"

	"pipemap/internal/obs"
)

// ServerOptions configures a live observability server. All sources are
// optional; endpoints backed by an absent source degrade gracefully
// (empty exposition, 503 readiness).
type ServerOptions struct {
	// Monitor is the pipeline health model behind /pipeline, /readyz and
	// the pipemap_* exposition series.
	Monitor *Monitor
	// Source, when set, supplies the monitor per request instead of
	// Monitor. An adaptive runtime wires its current-generation monitor
	// here so the served health model follows live migrations.
	Source func() *Monitor
	// Controller, when set, is called per /pipeline request and its result
	// serialized under the "controller" key of the payload (the adaptive
	// controller's status).
	Controller func() any
	// Registry adds generic live instruments to /metrics.
	Registry *Registry
	// Static, when set, is called per scrape to merge a cumulative
	// obs.Registry snapshot (e.g. solver metrics) into /metrics.
	Static func() obs.Snapshot
	// Ingest, when set, is called per /pipeline request and its result
	// serialized under the "ingest" key of the payload (the ingestion
	// plane's stats).
	Ingest func() any
	// SLO, when set, is called per /slo request and its result serialized
	// as the response (the slo.Engine's Report). It is also invoked once
	// per /metrics scrape before the exposition is written, so the burn
	// gauges an engine publishes into Registry are fresh at scrape time.
	SLO func() any
	// Flight, when set, backs /debug/flightrecorder with the flight
	// recorder's snapshot. ?format=chrome converts the dump to Chrome
	// trace_event JSON.
	Flight func() []obs.FlightEntry
	// Extra mounts additional handlers on the server's mux by pattern
	// (e.g. "/v1/submit" for an ingestion plane). Patterns collide with
	// built-in routes at the mux's discretion; pick distinct ones.
	Extra map[string]http.Handler
	// DisablePprof removes the /debug/pprof handlers.
	DisablePprof bool
}

// Server is the embeddable live observability HTTP server. Construct with
// NewServer, then either mount Handler on an existing mux or call Start to
// listen on an address.
type Server struct {
	opt   ServerOptions
	mux   *http.ServeMux
	extra []string

	ln   net.Listener
	http *http.Server
}

// NewServer builds the server and its routes.
func NewServer(opt ServerOptions) *Server {
	s := &Server{opt: opt, mux: http.NewServeMux()}
	s.mux.HandleFunc("/", s.index)
	s.mux.HandleFunc("/metrics", s.metrics)
	s.mux.HandleFunc("/healthz", s.healthz)
	s.mux.HandleFunc("/readyz", s.readyz)
	s.mux.HandleFunc("/pipeline", s.pipeline)
	s.mux.HandleFunc("/events", s.events)
	if opt.SLO != nil {
		s.mux.HandleFunc("/slo", s.slo)
	}
	if opt.Flight != nil {
		s.mux.HandleFunc("/debug/flightrecorder", s.flight)
	}
	if !opt.DisablePprof {
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	for pat, h := range opt.Extra {
		s.mux.Handle(pat, h)
		s.extra = append(s.extra, pat)
	}
	sort.Strings(s.extra)
	return s
}

// Handler returns the server's routes for embedding in another mux or for
// httptest.
func (s *Server) Handler() http.Handler { return s.mux }

// monitor resolves the monitor serving this request.
func (s *Server) monitor() *Monitor {
	if s.opt.Source != nil {
		return s.opt.Source()
	}
	return s.opt.Monitor
}

// Start listens on addr (e.g. ":9090" or "127.0.0.1:0") and serves in a
// background goroutine until Close.
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("live: listening on %s: %w", addr, err)
	}
	s.ln = ln
	s.http = &http.Server{Handler: s.mux, ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = s.http.Serve(ln) }()
	return nil
}

// Addr returns the bound address after Start (empty before).
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the listener. In-flight /events streams end with their
// connections.
func (s *Server) Close() error {
	if s.http == nil {
		return nil
	}
	return s.http.Close()
}

func (s *Server) index(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, `pipemap live observability
  /metrics      Prometheus text exposition
  /healthz      liveness
  /readyz       readiness (503 while starting or degraded)
  /pipeline     pipeline health model (JSON)
  /events       fault event stream (NDJSON; ?follow=0 for history only)
  /debug/pprof  profiling
`)
	if s.opt.SLO != nil {
		fmt.Fprintln(w, "  /slo          SLO objectives and burn rates (JSON)")
	}
	if s.opt.Flight != nil {
		fmt.Fprintln(w, "  /debug/flightrecorder  last-N request traces, sheds, adapt decisions (?format=chrome)")
	}
	for _, pat := range s.extra {
		fmt.Fprintf(w, "  %s\n", pat)
	}
}

func (s *Server) metrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if s.opt.SLO != nil {
		// Evaluating the SLO engine publishes its burn gauges into the
		// registry; do it before writing the exposition so the scrape sees
		// current values.
		_ = s.opt.SLO()
	}
	var static *obs.Snapshot
	if s.opt.Static != nil {
		snap := s.opt.Static()
		static = &snap
	}
	_ = WriteProm(w, s.monitor(), s.opt.Registry, static)
}

func (s *Server) slo(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(s.opt.SLO())
}

// flight dumps the flight recorder. ?format=chrome emits Chrome
// trace_event JSON loadable in chrome://tracing or Perfetto.
func (s *Server) flight(w http.ResponseWriter, r *http.Request) {
	entries := s.opt.Flight()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if r.URL.Query().Get("format") == "chrome" {
		w.Header().Set("Content-Type", "application/json")
		events := obs.ChromeEvents(entries)
		_ = enc.Encode(map[string]any{"traceEvents": events})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = enc.Encode(map[string]any{"count": len(entries), "entries": entries})
}

func (s *Server) healthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) readyz(w http.ResponseWriter, _ *http.Request) {
	h := s.monitor().Health()
	w.Header().Set("Content-Type", "application/json")
	if !h.Ready {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	_ = json.NewEncoder(w).Encode(map[string]any{
		"ready":  h.Ready,
		"status": h.Status,
		"reason": h.Reason,
	})
}

func (s *Server) pipeline(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	h := s.monitor().Health()
	switch {
	case s.opt.Controller != nil && s.opt.Ingest != nil:
		_ = enc.Encode(struct {
			Health
			Controller any `json:"controller"`
			Ingest     any `json:"ingest"`
		}{h, s.opt.Controller(), s.opt.Ingest()})
	case s.opt.Controller != nil:
		_ = enc.Encode(struct {
			Health
			Controller any `json:"controller"`
		}{h, s.opt.Controller()})
	case s.opt.Ingest != nil:
		_ = enc.Encode(struct {
			Health
			Ingest any `json:"ingest"`
		}{h, s.opt.Ingest()})
	default:
		_ = enc.Encode(h)
	}
}

// events streams the fault-event history followed by live events as NDJSON
// until the client disconnects. ?follow=0 returns the history and closes,
// which is what curl and smoke tests want.
func (s *Server) events(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	hub := s.monitor().Events()
	enc := json.NewEncoder(w)
	follow := true
	if v := r.URL.Query().Get("follow"); v != "" {
		if b, err := strconv.ParseBool(v); err == nil {
			follow = b
		}
	}
	flusher, canFlush := w.(http.Flusher)
	if hub == nil {
		return
	}
	// Subscribe before reading history so no event can fall between the
	// two; events published between the subscribe and the history read are
	// both in the replayed history and on the channel, so exactly
	// histSeq-subSeq leading channel events are duplicates to skip.
	ch, subSeq, cancel := hub.Subscribe(64)
	defer cancel()
	hist, histSeq := hub.HistoryN()
	done := r.Context().Done()
	for _, ev := range hist {
		// A gone client's writes may buffer without erroring for a while;
		// the context is the authoritative disconnect signal, so check it
		// every iteration rather than spinning through a long replay.
		select {
		case <-done:
			return
		default:
		}
		if err := enc.Encode(ev); err != nil {
			return
		}
	}
	if canFlush {
		flusher.Flush()
	}
	if !follow {
		return
	}
	skip := histSeq - subSeq
	if skip < 0 {
		skip = 0
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case ev, ok := <-ch:
			if !ok {
				return
			}
			if skip > 0 {
				skip--
				continue
			}
			if err := enc.Encode(ev); err != nil {
				return
			}
			if canFlush {
				flusher.Flush()
			}
		}
	}
}
