package live

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestSanitizeLabelValue(t *testing.T) {
	cases := []struct{ in, want string }{
		{"", "_"},
		{"tenant-a", "tenant-a"},
		{"a.b:c/d_e-9", "a.b:c/d_e-9"},
		{`evil"quote`, "evil_quote"},
		{"brace{injection}", "brace_injection_"},
		{"new\nline", "new_line"},
		{`back\slash`, "back_slash"},
		{"spaced out", "spaced_out"},
		{"ünïcode", "__n__code"},
		{strings.Repeat("x", 100), strings.Repeat("x", vecMaxValueLen)},
	}
	for _, c := range cases {
		if got := sanitizeLabelValue(c.in); got != c.want {
			t.Errorf("sanitizeLabelValue(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

// TestHostileLabelValuesSurvivePromLint drives adversarial tenant names
// through every vec kind and asserts the rendered exposition still passes
// the same lint the serve smoke test applies: sanitization at With() time
// is what guarantees a client cannot corrupt /metrics.
func TestHostileLabelValuesSurvivePromLint(t *testing.T) {
	r, vc := regClock()
	vc.SetSeconds(1)
	hostile := []string{
		`quote"breaker`,
		"brace{hi=\"1\"}",
		"multi\nline\r",
		`trailing\`,
		strings.Repeat("long", 50),
		"",
		"ok-tenant",
	}
	cv := r.CounterVec("ingest.tenant.admit", "tenant")
	gv := r.GaugeVec("ingest.tenant.queue_depth", "tenant")
	hv := r.HistogramVec("ingest.tenant.sojourn_ms", "tenant")
	for _, name := range hostile {
		cv.With(name).Inc()
		gv.With(name).Set(2)
		hv.With(name).ObserveExemplar(3.5, "0123456789abcdef0123456789abcdef")
	}
	var buf strings.Builder
	if err := WriteProm(&buf, nil, r, nil); err != nil {
		t.Fatalf("WriteProm: %v", err)
	}
	typed := lintProm(t, buf.String())
	for _, fam := range []string{
		"ingest_tenant_admit_total",
		"ingest_tenant_queue_depth",
		"ingest_tenant_sojourn_ms",
	} {
		if _, ok := typed[fam]; !ok {
			t.Errorf("family %s missing from exposition (typed: %v)", fam, typed)
		}
	}
	if body := buf.String(); strings.Contains(body, `quote"breaker`) {
		t.Error("raw hostile label value leaked into exposition")
	}
}

func TestVecOverflowFoldsPastCap(t *testing.T) {
	r, _ := regClock()
	cv := r.CounterVec("overflow.test", "tenant")
	for i := 0; i < vecMaxValues+40; i++ {
		cv.With(fmt.Sprintf("tenant-%d", i)).Inc()
	}
	snap := r.Snapshot().CounterVecs["overflow.test"]
	if snap.LabelKey != "tenant" {
		t.Errorf("label key = %q, want tenant", snap.LabelKey)
	}
	if len(snap.Series) != vecMaxValues+1 {
		t.Errorf("series count = %d, want %d (cap plus overflow)", len(snap.Series), vecMaxValues+1)
	}
	var overflow int64 = -1
	for _, s := range snap.Series {
		if s.Label == vecOverflowValue {
			overflow = s.Value.Total
		}
	}
	if overflow != 40 {
		t.Errorf("overflow series total = %d, want the 40 folded tenants", overflow)
	}
	// Existing values keep resolving to their own series after the fold.
	cv.With("tenant-0").Inc()
	if got := cv.With("tenant-0").Total(); got != 2 {
		t.Errorf("tenant-0 total = %d, want 2", got)
	}
}

func TestHistogramExemplarTracksP99Bucket(t *testing.T) {
	r, vc := regClock()
	vc.SetSeconds(1)
	h := r.Histogram("exemplar.lat")
	for i := 0; i < 50; i++ {
		h.ObserveExemplar(0.5, "trace-fast")
	}
	for i := 0; i < 5; i++ {
		h.ObserveExemplar(400, "trace-slow")
	}
	st := h.Window()
	if st.Count != 55 {
		t.Fatalf("window count = %d, want 55", st.Count)
	}
	if st.P99Exemplar != "trace-slow" {
		t.Errorf("P99Exemplar = %q, want the slow request's trace ID", st.P99Exemplar)
	}
	// Plain Observe must not erase a recorded exemplar with an empty one.
	h.Observe(400)
	if st := h.Window(); st.P99Exemplar != "trace-slow" {
		t.Errorf("P99Exemplar after plain Observe = %q, want trace-slow", st.P99Exemplar)
	}
}

func TestNilVecsAllocateNothing(t *testing.T) {
	var cv *CounterVec
	var gv *GaugeVec
	var hv *HistogramVec
	var r *Registry
	allocs := testing.AllocsPerRun(1000, func() {
		cv.With("tenant").Inc()
		gv.With("tenant").Set(1)
		hv.With("tenant").ObserveExemplar(1, "id")
		_ = cv.Label()
		_ = r.CounterVec("x", "l")
		_ = r.GaugeVec("x", "l")
		_ = r.HistogramVec("x", "l")
	})
	if allocs != 0 {
		t.Errorf("disabled vecs allocated %.1f times per op, want 0", allocs)
	}
}

func TestVecWithOnCleanExistingValueAllocatesNothing(t *testing.T) {
	r := NewRegistry(Options{Window: time.Second})
	cv := r.CounterVec("hot.vec", "tenant")
	cv.With("tenant-a").Inc()
	allocs := testing.AllocsPerRun(1000, func() {
		cv.With("tenant-a").Inc()
	})
	if allocs != 0 {
		t.Errorf("hot-path With on existing clean label allocated %.1f times per op, want 0", allocs)
	}
}
