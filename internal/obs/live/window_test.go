package live

import (
	"sync"
	"testing"
	"time"
)

// regClock returns a registry on a virtual clock with a 16-second window
// (one second per counter slot, two per histogram slot).
func regClock() (*Registry, *VirtualClock) {
	vc := NewVirtualClock()
	return NewRegistry(Options{Window: 16 * time.Second, Clock: vc.Clock()}), vc
}

func TestCounterWindowAndRate(t *testing.T) {
	r, vc := regClock()
	c := r.Counter("test.events")
	vc.SetSeconds(1)
	c.Add(5)
	vc.SetSeconds(2)
	c.Inc()
	if got := c.Total(); got != 6 {
		t.Fatalf("Total = %d, want 6", got)
	}
	if got := c.WindowSum(); got != 6 {
		t.Fatalf("WindowSum = %d, want 6", got)
	}
	// Rate before a full window divides by elapsed-since-creation (2s), not
	// the window length, so early rates are not diluted.
	if got := c.Rate(); got != 3 {
		t.Fatalf("early Rate = %g, want 6/2s = 3", got)
	}
	// Far past the window: the total persists, the window drains.
	vc.SetSeconds(100)
	if got := c.Total(); got != 6 {
		t.Fatalf("Total after expiry = %d, want 6", got)
	}
	if got := c.WindowSum(); got != 0 {
		t.Fatalf("WindowSum after expiry = %d, want 0", got)
	}
	if got := c.Rate(); got != 0 {
		t.Fatalf("Rate after expiry = %g, want 0", got)
	}
	// New activity reuses expired slots.
	c.Add(2)
	if got := c.WindowSum(); got != 2 {
		t.Fatalf("WindowSum after reuse = %d, want 2", got)
	}
}

func TestCounterPartialExpiry(t *testing.T) {
	r, vc := regClock()
	c := r.Counter("test.partial")
	vc.SetSeconds(1)
	c.Add(10)
	vc.SetSeconds(12)
	c.Add(3)
	if got := c.WindowSum(); got != 13 {
		t.Fatalf("WindowSum mid-window = %d, want 13", got)
	}
	// At t=20 the slot written at t=1 (epoch 1) is outside [5, 20] (16
	// slots of 1s ending at epoch 20), the t=12 slot is inside.
	vc.SetSeconds(20)
	if got := c.WindowSum(); got != 3 {
		t.Fatalf("WindowSum after partial expiry = %d, want 3", got)
	}
}

func TestGauge(t *testing.T) {
	r, _ := regClock()
	g := r.Gauge("test.depth")
	if got := g.Value(); got != 0 {
		t.Fatalf("unset gauge = %g, want 0", got)
	}
	g.Set(3.5)
	if got := g.Value(); got != 3.5 {
		t.Fatalf("gauge = %g, want 3.5", got)
	}
	g.Set(-1)
	if got := g.Value(); got != -1 {
		t.Fatalf("gauge = %g, want -1", got)
	}
}

func TestHistogramWindow(t *testing.T) {
	r, vc := regClock()
	h := r.Histogram("test.latency")
	vc.SetSeconds(1)
	h.Observe(0.010)
	h.Observe(0.020)
	vc.SetSeconds(2)
	h.Observe(0.030)
	st := h.Window()
	if st.Count != 3 {
		t.Fatalf("Count = %d, want 3", st.Count)
	}
	if st.Min != 0.010 || st.Max != 0.030 {
		t.Fatalf("Min/Max = %g/%g, want 0.01/0.03", st.Min, st.Max)
	}
	if got, want := st.Mean, 0.020; got < want*0.999 || got > want*1.001 {
		t.Fatalf("Mean = %g, want %g", got, want)
	}
	for _, q := range []float64{st.P50, st.P90, st.P99} {
		if q < st.Min || q > st.Max {
			t.Fatalf("quantile %g outside [min=%g, max=%g]", q, st.Min, st.Max)
		}
	}
	count, sum := h.Total()
	if count != 3 || sum < 0.0599 || sum > 0.0601 {
		t.Fatalf("Total = (%d, %g), want (3, 0.06)", count, sum)
	}

	// Expiry: the window drains, cumulative totals persist.
	vc.SetSeconds(200)
	if st := h.Window(); st.Count != 0 {
		t.Fatalf("Count after expiry = %d, want 0", st.Count)
	}
	if count, _ := h.Total(); count != 3 {
		t.Fatalf("Total after expiry = %d, want 3", count)
	}
	// A stale slot is fully reset on reuse, not merged with old buckets.
	h.Observe(1.0)
	st = h.Window()
	if st.Count != 1 || st.Min != 1.0 || st.Max != 1.0 {
		t.Fatalf("after reuse: %+v, want single sample 1.0", st)
	}
}

func TestNilInstrumentsSafe(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var r *Registry
	c.Add(1)
	c.Inc()
	if c.Total() != 0 || c.WindowSum() != 0 || c.Rate() != 0 {
		t.Fatal("nil counter not zero")
	}
	g.Set(1)
	if g.Value() != 0 {
		t.Fatal("nil gauge not zero")
	}
	h.Observe(1)
	if st := h.Window(); st.Count != 0 {
		t.Fatal("nil histogram not empty")
	}
	if n, s := h.Total(); n != 0 || s != 0 {
		t.Fatal("nil histogram total not zero")
	}
	if r.Enabled() {
		t.Fatal("nil registry enabled")
	}
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.Histogram("x") != nil {
		t.Fatal("nil registry handed out non-nil instruments")
	}
	snap := r.Snapshot()
	if snap.Counters == nil || len(snap.Counters) != 0 {
		t.Fatal("nil registry snapshot not empty")
	}
}

func TestRegistryCreateOrGet(t *testing.T) {
	r, _ := regClock()
	if r.Counter("a") != r.Counter("a") {
		t.Fatal("counter handle not stable")
	}
	if r.Gauge("b") != r.Gauge("b") {
		t.Fatal("gauge handle not stable")
	}
	if r.Histogram("c") != r.Histogram("c") {
		t.Fatal("histogram handle not stable")
	}
	r.Counter("a").Add(2)
	r.Gauge("b").Set(7)
	r.Histogram("c").Observe(0.5)
	s := r.Snapshot()
	if s.Counters["a"].Total != 2 {
		t.Fatalf("snapshot counter = %+v, want total 2", s.Counters["a"])
	}
	if s.Gauges["b"] != 7 {
		t.Fatalf("snapshot gauge = %g, want 7", s.Gauges["b"])
	}
	if s.Histograms["c"].Count != 1 {
		t.Fatalf("snapshot histogram = %+v, want count 1", s.Histograms["c"])
	}
}

// TestInstrumentsConcurrent hammers the instruments from writer goroutines
// while readers scrape, for the race detector.
func TestInstrumentsConcurrent(t *testing.T) {
	r := NewRegistry(Options{Window: 50 * time.Millisecond})
	mon := NewMonitor(Config{Stages: []StageInfo{
		{Name: "a", Replicas: 2}, {Name: "b", Replicas: 1},
	}})
	mon.Start()
	const writers = 4
	const perWriter = 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Readers scrape continuously until the writers finish.
	for k := 0; k < 2; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = r.Snapshot()
				_ = mon.Health()
			}
		}()
	}
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("hammer.count")
			h := r.Histogram("hammer.lat")
			g := r.Gauge("hammer.gauge")
			for i := 0; i < perWriter; i++ {
				c.Inc()
				h.Observe(float64(i%10) * 0.001)
				g.Set(float64(i))
				mon.StageDone(i%2, 0.001)
				if i%500 == 0 {
					mon.StageRetry(i%2, i)
				}
			}
		}(w)
	}
	// Wait for the writers only, then stop the readers.
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	// Writers all call wg.Done; readers exit on stop. Close stop once the
	// counter shows all writes landed.
	deadline := time.After(10 * time.Second)
	for r.Counter("hammer.count").Total() < writers*perWriter {
		select {
		case <-deadline:
			t.Fatal("writers did not finish in time")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	close(stop)
	<-done
	if got := r.Counter("hammer.count").Total(); got != writers*perWriter {
		t.Fatalf("lost updates: %d, want %d", got, writers*perWriter)
	}
	h := mon.Health()
	var stageDone int64
	for _, sh := range h.Stages {
		stageDone += sh.Completed
	}
	if stageDone != writers*perWriter {
		t.Fatalf("monitor lost updates: %d, want %d", stageDone, writers*perWriter)
	}
}
