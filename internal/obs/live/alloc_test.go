package live

import (
	"testing"
	"time"
)

// Same contract as package obs: disabled (nil) instruments must cost
// nothing on hot paths — and the enabled ingestion hot path (stage
// completions streaming through a pipeline) must itself be allocation-free,
// since it runs once per data set × stage × attempt.

func TestDisabledInstrumentsAllocateNothing(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var r *Registry
	var m *Monitor
	allocs := testing.AllocsPerRun(1000, func() {
		c.Add(1)
		c.Inc()
		g.Set(1.5)
		h.Observe(0.01)
		m.StageDone(0, 0.01)
		m.StageRetry(0, 1)
		m.StageTimeout(0, 1)
		m.StageDrop(0, 1)
		m.InstanceDeath(0, 1)
		m.Completed(0.5)
		_ = r.Counter("x")
		_ = r.Gauge("x")
		_ = r.Histogram("x")
	})
	if allocs != 0 {
		t.Errorf("disabled instruments allocated %.1f times per op, want 0", allocs)
	}
}

func TestEnabledHotPathAllocatesNothing(t *testing.T) {
	r := NewRegistry(Options{})
	c := r.Counter("hot.count")
	g := r.Gauge("hot.gauge")
	h := r.Histogram("hot.lat")
	m := NewMonitor(Config{Stages: []StageInfo{{Name: "s", Replicas: 2}}})
	m.Start()
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		g.Set(2.5)
		h.Observe(0.01)
		m.StageDone(0, 0.01)
		m.Completed(0.5)
	})
	if allocs != 0 {
		t.Errorf("enabled ingestion allocated %.1f times per op, want 0", allocs)
	}
}

func BenchmarkStageDoneEnabled(b *testing.B) {
	m := NewMonitor(Config{Stages: []StageInfo{{Name: "s", Replicas: 2}}})
	m.Start()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.StageDone(0, 0.01)
	}
}

func BenchmarkStageDoneDisabled(b *testing.B) {
	var m *Monitor
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.StageDone(0, 0.01)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry(Options{Window: time.Second}).Histogram("bench.lat")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%100) * 0.001)
	}
}
