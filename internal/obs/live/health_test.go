package live

import (
	"math"
	"testing"
	"time"

	"pipemap/internal/model"
)

// testMapping returns a 3-task chain mapped to two modules, the first
// replicated twice. Module 1 is the predicted bottleneck.
func testMapping() model.Mapping {
	c := &model.Chain{
		Tasks: []model.Task{
			{Name: "a", Exec: model.PolyExec{C2: 4}, Replicable: true},
			{Name: "b", Exec: model.PolyExec{C2: 4}, Replicable: true},
			{Name: "c", Exec: model.PolyExec{C1: 0.1, C2: 2}, Replicable: true},
		},
		ICom: []model.CostFunc{model.PolyExec{C1: 0.05, C2: 0.5}, model.ZeroExec()},
		ECom: []model.CommFunc{
			model.PolyComm{C1: 0.05, C2: 0.5, C3: 0.5},
			model.PolyComm{C1: 0.05, C2: 0.5, C3: 0.5},
		},
	}
	return model.Mapping{Chain: c, Modules: []model.Module{
		{Lo: 0, Hi: 1, Procs: 2, Replicas: 2},
		{Lo: 1, Hi: 3, Procs: 4, Replicas: 1},
	}}
}

func approx(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*(1+math.Abs(a)+math.Abs(b))
}

func TestConfigFromMapping(t *testing.T) {
	m := testMapping()
	cfg := ConfigFromMapping(m)
	if len(cfg.Stages) != 2 {
		t.Fatalf("stages = %d, want 2", len(cfg.Stages))
	}
	resp := m.ResponseTimes()
	eff := m.EffectiveResponseTimes()
	for i, st := range cfg.Stages {
		if !approx(st.PredictedResponse, resp[i]) || !approx(st.PredictedPeriod, eff[i]) {
			t.Errorf("stage %d: predicted (%g, %g), want (%g, %g)",
				i, st.PredictedResponse, st.PredictedPeriod, resp[i], eff[i])
		}
	}
	if cfg.Stages[0].Name != "a" || cfg.Stages[0].Replicas != 2 || cfg.Stages[0].Workers != 2 {
		t.Errorf("stage 0 = %+v, want name a, r=2, p=2", cfg.Stages[0])
	}
	if !approx(cfg.PredictedThroughput, m.Throughput()) {
		t.Errorf("throughput = %g, want %g", cfg.PredictedThroughput, m.Throughput())
	}
	if !approx(cfg.PredictedLatency, m.Latency()) {
		t.Errorf("latency = %g, want %g", cfg.PredictedLatency, m.Latency())
	}
	if cfg.Mapping != m.String() {
		t.Errorf("mapping string = %q, want %q", cfg.Mapping, m.String())
	}
}

func TestConfigScale(t *testing.T) {
	cfg := ConfigFromMapping(testMapping())
	s := cfg.Scale(10)
	if !approx(s.PredictedThroughput, cfg.PredictedThroughput*10) {
		t.Errorf("scaled throughput = %g, want %g", s.PredictedThroughput, cfg.PredictedThroughput*10)
	}
	if !approx(s.Stages[0].PredictedPeriod, cfg.Stages[0].PredictedPeriod/10) {
		t.Errorf("scaled period = %g, want %g", s.Stages[0].PredictedPeriod, cfg.Stages[0].PredictedPeriod/10)
	}
	// The original is untouched (Scale copies).
	if !approx(cfg.Stages[0].PredictedPeriod, ConfigFromMapping(testMapping()).Stages[0].PredictedPeriod) {
		t.Error("Scale mutated the original config")
	}
}

func TestHealthModelLifecycle(t *testing.T) {
	vc := NewVirtualClock()
	cfg := ConfigFromMapping(testMapping())
	cfg.Options = Options{Window: 30 * time.Second, Clock: vc.Clock()}
	mon := NewMonitor(cfg)

	// Before Start: not ready.
	h := mon.Health()
	if h.Ready || h.Started {
		t.Fatalf("unstarted monitor ready: %+v", h)
	}
	if h.Reason == "" {
		t.Fatal("unstarted monitor gives no reason")
	}

	vc.SetSeconds(1)
	mon.Start()
	h = mon.Health()
	if !h.Ready || h.Status != "nominal" {
		t.Fatalf("started monitor not ready/nominal: status=%q ready=%v", h.Status, h.Ready)
	}

	// Observed periods: stage 0 latency 0.2 over 2 live replicas = 0.1;
	// stage 1 latency 0.3 over 1 replica = 0.3 -> bottleneck is stage 1.
	vc.SetSeconds(2)
	for i := 0; i < 10; i++ {
		mon.StageDone(0, 0.2)
		mon.StageDone(1, 0.3)
		mon.Completed(0.5)
	}
	h = mon.Health()
	if !approx(h.Stages[0].ObservedPeriod, 0.1) {
		t.Errorf("stage 0 observed period = %g, want 0.1", h.Stages[0].ObservedPeriod)
	}
	if !approx(h.Stages[1].ObservedPeriod, 0.3) {
		t.Errorf("stage 1 observed period = %g, want 0.3", h.Stages[1].ObservedPeriod)
	}
	if h.BottleneckStage != 1 || !h.Stages[1].Bottleneck {
		t.Errorf("bottleneck = %d, want 1", h.BottleneckStage)
	}
	if h.Completed != 10 {
		t.Errorf("completed = %d, want 10", h.Completed)
	}
	if h.ObservedThroughput <= 0 {
		t.Errorf("observed throughput = %g, want > 0", h.ObservedThroughput)
	}

	// A death degrades the pipeline permanently and halves stage 0's
	// serving capacity: its observed period doubles.
	mon.InstanceDeath(0, 7)
	h = mon.Health()
	if h.Status != "degraded" || h.Ready {
		t.Fatalf("after death: status=%q ready=%v, want degraded/not-ready", h.Status, h.Ready)
	}
	if h.Deaths != 1 || h.Stages[0].Live != 1 {
		t.Errorf("deaths=%d live=%d, want 1/1", h.Deaths, h.Stages[0].Live)
	}
	if !approx(h.Stages[0].ObservedPeriod, 0.2) {
		t.Errorf("stage 0 observed period after death = %g, want 0.2", h.Stages[0].ObservedPeriod)
	}
	// Death events land in the hub with stage attribution.
	evs := mon.Events().History()
	var deaths int
	for _, ev := range evs {
		if ev.Kind == "death" && ev.Stage == "a" && ev.Dataset == 7 {
			deaths++
		}
	}
	if deaths != 1 {
		t.Errorf("death events = %d, want 1 (history %+v)", deaths, evs)
	}
}

func TestDropDegradationHeals(t *testing.T) {
	vc := NewVirtualClock()
	cfg := ConfigFromMapping(testMapping())
	cfg.Options = Options{Window: 10 * time.Second, Clock: vc.Clock()}
	mon := NewMonitor(cfg)
	vc.SetSeconds(1)
	mon.Start()
	mon.StageDrop(1, 3)
	h := mon.Health()
	if h.Status != "degraded" || h.Drops != 1 {
		t.Fatalf("after drop: status=%q drops=%d, want degraded/1", h.Status, h.Drops)
	}
	// Once the drop ages out of the window (and no replica died), the
	// pipeline heals back to nominal; the cumulative counter remains.
	vc.SetSeconds(100)
	h = mon.Health()
	if h.Status != "nominal" || !h.Ready {
		t.Fatalf("after window: status=%q ready=%v, want nominal/ready", h.Status, h.Ready)
	}
	if h.Drops != 1 {
		t.Errorf("cumulative drops = %d, want 1", h.Drops)
	}
}

func TestNilMonitor(t *testing.T) {
	var mon *Monitor
	if mon.Enabled() {
		t.Fatal("nil monitor enabled")
	}
	// All ingestion is a no-op, never a panic.
	mon.Start()
	mon.StageDone(0, 1)
	mon.StageRetry(0, 1)
	mon.StageTimeout(0, 1)
	mon.StageDrop(0, 1)
	mon.InstanceDeath(0, 1)
	mon.Remapped("x")
	mon.Completed(1)
	mon.Finish()
	if mon.Events() != nil {
		t.Fatal("nil monitor has events hub")
	}
	h := mon.Health()
	if h.Status != "disabled" || h.Ready {
		t.Fatalf("nil monitor health = %+v, want disabled", h)
	}
}

func TestMonitorOutOfRangeStage(t *testing.T) {
	mon := NewMonitor(Config{Stages: []StageInfo{{Name: "only", Replicas: 1}}})
	mon.StageDone(-1, 1)
	mon.StageDone(5, 1)
	mon.InstanceDeath(2, 0)
	h := mon.Health()
	if h.Deaths != 0 || h.Stages[0].Completed != 0 {
		t.Fatalf("out-of-range observations recorded: %+v", h)
	}
}
