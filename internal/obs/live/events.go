package live

import "sync"

// Event is one fault-relevant runtime event: an instance death, a dropped
// or retried data set, a timeout, or a remapping. Events are what a
// dashboard tails to explain *why* throughput moved; the regular flow of
// completed data sets is deliberately not an event stream (it is carried
// by the windowed instruments at far lower cost).
type Event struct {
	// TS is seconds since the monitor started (virtual seconds in replays).
	TS float64 `json:"ts"`
	// Kind is "death", "drop", "retry", "timeout", "remap", "drain-start"
	// or "drain-end".
	Kind string `json:"kind"`
	// Stage names the stage involved, when any.
	Stage string `json:"stage,omitempty"`
	// Dataset is the stream index involved, or -1.
	Dataset int `json:"dataset"`
	// Detail carries free-form context (e.g. the new mapping on "remap").
	Detail string `json:"detail,omitempty"`
}

// eventRing bounds the replayable history kept for late subscribers.
const eventRing = 256

// Events is a broadcast hub for Event values: a bounded history ring plus
// live fan-out to subscribers. Publishing never blocks — a subscriber that
// cannot keep up misses events (its stream is best-effort; the ring and
// the instruments remain authoritative). A nil *Events is valid and
// disabled.
type Events struct {
	mu     sync.Mutex
	ring   [eventRing]Event
	n      int // total published
	subs   map[int]chan Event
	nextID int
}

// NewEvents returns an enabled event hub.
func NewEvents() *Events {
	return &Events{subs: map[int]chan Event{}}
}

// Publish records ev in the history ring and fans it out.
func (e *Events) Publish(ev Event) {
	if e == nil {
		return
	}
	e.mu.Lock()
	e.ring[e.n%eventRing] = ev
	e.n++
	for _, ch := range e.subs {
		select {
		case ch <- ev:
		default:
		}
	}
	e.mu.Unlock()
}

// History returns the retained events, oldest first.
func (e *Events) History() []Event {
	ev, _ := e.HistoryN()
	return ev
}

// HistoryN returns the retained events plus the total number ever
// published (the sequence number of the last returned event). The pair
// lets a streaming reader replay history and then skip exactly the
// duplicated prefix of a live subscription.
func (e *Events) HistoryN() ([]Event, int) {
	if e == nil {
		return nil, 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	n := e.n
	if n > eventRing {
		out := make([]Event, eventRing)
		for i := 0; i < eventRing; i++ {
			out[i] = e.ring[(n+i)%eventRing]
		}
		return out, n
	}
	out := make([]Event, n)
	copy(out, e.ring[:n])
	return out, n
}

// Len returns the total number of events published.
func (e *Events) Len() int {
	if e == nil {
		return 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.n
}

// Subscribe registers a listener with the given channel buffer and
// returns the event channel, the publication count at subscription time
// (events with a higher sequence arrive on the channel), and a cancel
// function. Events published while the buffer is full are skipped for
// this subscriber.
func (e *Events) Subscribe(buf int) (<-chan Event, int, func()) {
	if e == nil {
		ch := make(chan Event)
		close(ch)
		return ch, 0, func() {}
	}
	if buf < 1 {
		buf = 1
	}
	ch := make(chan Event, buf)
	e.mu.Lock()
	id := e.nextID
	e.nextID++
	e.subs[id] = ch
	seq := e.n
	e.mu.Unlock()
	return ch, seq, func() {
		e.mu.Lock()
		delete(e.subs, id)
		e.mu.Unlock()
	}
}
