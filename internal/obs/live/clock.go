package live

import (
	"sync/atomic"
	"time"
)

// Clock returns the current time in nanoseconds. Wall-clock pipelines use
// the default clock; virtual-time replays drive a VirtualClock so windowed
// rates and quantiles are computed on the simulated timeline.
type Clock func() int64

func wallClock() int64 { return time.Now().UnixNano() }

// VirtualClock is a manually-advanced clock for replaying recorded or
// simulated timelines through live instruments. The zero value reads 0;
// it is safe for concurrent use.
type VirtualClock struct {
	now atomic.Int64
}

// NewVirtualClock returns a virtual clock at time zero.
func NewVirtualClock() *VirtualClock { return &VirtualClock{} }

// Set moves the clock to the given nanosecond timestamp. Moving backwards
// is allowed (instruments treat it as a new slot epoch) but rarely useful.
func (c *VirtualClock) Set(nanos int64) { c.now.Store(nanos) }

// SetSeconds moves the clock to the given timestamp in seconds, the unit
// of simulator timelines.
func (c *VirtualClock) SetSeconds(s float64) { c.now.Store(int64(s * 1e9)) }

// Advance moves the clock forward by d.
func (c *VirtualClock) Advance(d time.Duration) { c.now.Add(int64(d)) }

// Now returns the current virtual time in nanoseconds.
func (c *VirtualClock) Now() int64 { return c.now.Load() }

// Clock adapts the virtual clock to the Clock interface.
func (c *VirtualClock) Clock() Clock { return c.now.Load }
