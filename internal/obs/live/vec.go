package live

import "sync"

// Labeled instrument families (DESIGN.md §13). A vec is one metric family
// with a single label key (e.g. "tenant") and a bounded set of label
// values: values beyond the cap fold into vecOverflowValue so a hostile or
// buggy client cannot grow /metrics without bound. Label values are
// sanitized to a charset that can never break the Prometheus text
// exposition (or the smoke lint that parses it), whatever bytes the client
// sent.

const (
	// vecMaxValues bounds the distinct label values of one vec.
	vecMaxValues = 256
	// vecMaxValueLen bounds one label value's length.
	vecMaxValueLen = 64
	// vecOverflowValue absorbs values beyond the cap.
	vecOverflowValue = "overflow"
)

// sanitizeLabelValue maps v onto [a-zA-Z0-9_.:/-], replacing every other
// byte with '_' and truncating to vecMaxValueLen. The common clean case
// returns v unchanged without allocating.
func sanitizeLabelValue(v string) string {
	if v == "" {
		return "_"
	}
	clean := len(v) <= vecMaxValueLen
	if clean {
		for i := 0; i < len(v); i++ {
			if !safeLabelByte(v[i]) {
				clean = false
				break
			}
		}
	}
	if clean {
		return v
	}
	if len(v) > vecMaxValueLen {
		v = v[:vecMaxValueLen]
	}
	b := []byte(v)
	for i := range b {
		if !safeLabelByte(b[i]) {
			b[i] = '_'
		}
	}
	return string(b)
}

func safeLabelByte(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' ||
		c == '_' || c == '.' || c == ':' || c == '/' || c == '-'
}

// vec is the generic family core shared by the typed vecs.
type vec[T any] struct {
	mu   sync.Mutex
	m    map[string]T
	mk   func() T
	zero T
}

func (v *vec[T]) with(value string) T {
	value = sanitizeLabelValue(value)
	v.mu.Lock()
	defer v.mu.Unlock()
	in, ok := v.m[value]
	if ok {
		return in
	}
	if len(v.m) >= vecMaxValues {
		value = vecOverflowValue
		if in, ok := v.m[value]; ok {
			return in
		}
	}
	in = v.mk()
	v.m[value] = in
	return in
}

func (v *vec[T]) snapshot() map[string]T {
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make(map[string]T, len(v.m))
	for k, in := range v.m {
		out[k] = in
	}
	return out
}

// CounterVec is a label-partitioned counter family. A nil *CounterVec is a
// valid disabled family handing out nil (disabled) counters.
type CounterVec struct {
	label string
	vec   vec[*Counter]
}

// Label returns the family's label key.
func (v *CounterVec) Label() string {
	if v == nil {
		return ""
	}
	return v.label
}

// With returns the counter for the given label value, creating it if
// needed (folding into "overflow" past the cap).
func (v *CounterVec) With(value string) *Counter {
	if v == nil {
		return nil
	}
	return v.vec.with(value)
}

// GaugeVec is a label-partitioned gauge family; nil is valid and disabled.
type GaugeVec struct {
	label string
	vec   vec[*Gauge]
}

// Label returns the family's label key.
func (v *GaugeVec) Label() string {
	if v == nil {
		return ""
	}
	return v.label
}

// With returns the gauge for the given label value.
func (v *GaugeVec) With(value string) *Gauge {
	if v == nil {
		return nil
	}
	return v.vec.with(value)
}

// HistogramVec is a label-partitioned histogram family; nil is valid and
// disabled.
type HistogramVec struct {
	label string
	vec   vec[*Histogram]
}

// Label returns the family's label key.
func (v *HistogramVec) Label() string {
	if v == nil {
		return ""
	}
	return v.label
}

// With returns the histogram for the given label value.
func (v *HistogramVec) With(value string) *Histogram {
	if v == nil {
		return nil
	}
	return v.vec.with(value)
}

// CounterVec returns the named counter family with the given label key,
// creating it if needed. The label key is fixed at first use.
func (r *Registry) CounterVec(name, label string) *CounterVec {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	v := r.counterVecs[name]
	if v == nil {
		clock, window := r.opt.Clock, r.opt.Window
		v = &CounterVec{label: label}
		v.vec.m = map[string]*Counter{}
		v.vec.mk = func() *Counter { return newCounter(clock, window) }
		r.counterVecs[name] = v
	}
	return v
}

// GaugeVec returns the named gauge family, creating it if needed.
func (r *Registry) GaugeVec(name, label string) *GaugeVec {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	v := r.gaugeVecs[name]
	if v == nil {
		v = &GaugeVec{label: label}
		v.vec.m = map[string]*Gauge{}
		v.vec.mk = newGauge
		r.gaugeVecs[name] = v
	}
	return v
}

// HistogramVec returns the named histogram family, creating it if needed.
func (r *Registry) HistogramVec(name, label string) *HistogramVec {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	v := r.histVecs[name]
	if v == nil {
		clock, window := r.opt.Clock, r.opt.Window
		v = &HistogramVec{label: label}
		v.vec.m = map[string]*Histogram{}
		v.vec.mk = func() *Histogram { return newHistogram(clock, window) }
		r.histVecs[name] = v
	}
	return v
}

// LabeledStat pairs a label value with one instrument's stat.
type LabeledStat[S any] struct {
	Label string `json:"label"`
	Value S      `json:"value"`
}

// VecStat is the exported state of one labeled family.
type VecStat[S any] struct {
	LabelKey string           `json:"labelKey"`
	Series   []LabeledStat[S] `json:"series"`
}
