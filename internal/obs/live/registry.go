package live

import (
	"sort"
	"sync"
	"time"
)

// Options configures a Registry or Monitor.
type Options struct {
	// Window is the rolling window length (default DefaultWindow).
	Window time.Duration
	// Clock supplies timestamps; nil uses the wall clock. Replays install
	// a VirtualClock's Clock here.
	Clock Clock
}

func (o Options) withDefaults() Options {
	if o.Window <= 0 {
		o.Window = DefaultWindow
	}
	if o.Clock == nil {
		o.Clock = wallClock
	}
	return o
}

// Registry is a named collection of live instruments following the same
// flat dotted naming scheme as obs.Registry ("fxrt.completed",
// "serve.http_requests"). Instrument handles are create-on-first-use and
// stable, so hot paths fetch them once and record lock-locally afterwards.
// A nil *Registry is a valid disabled registry: it hands out nil
// instruments, which are themselves disabled and free.
type Registry struct {
	mu          sync.Mutex
	opt         Options
	counters    map[string]*Counter
	gauges      map[string]*Gauge
	hists       map[string]*Histogram
	counterVecs map[string]*CounterVec
	gaugeVecs   map[string]*GaugeVec
	histVecs    map[string]*HistogramVec
}

// NewRegistry returns an enabled registry.
func NewRegistry(opt Options) *Registry {
	return &Registry{
		opt:         opt.withDefaults(),
		counters:    map[string]*Counter{},
		gauges:      map[string]*Gauge{},
		hists:       map[string]*Histogram{},
		counterVecs: map[string]*CounterVec{},
		gaugeVecs:   map[string]*GaugeVec{},
		histVecs:    map[string]*HistogramVec{},
	}
}

// Enabled reports whether the registry records samples.
func (r *Registry) Enabled() bool { return r != nil }

// Counter returns the named windowed counter, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = newCounter(r.opt.Clock, r.opt.Window)
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = newGauge()
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named windowed histogram, creating it if needed.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = newHistogram(r.opt.Clock, r.opt.Window)
		r.hists[name] = h
	}
	return h
}

// CounterStat is the exported state of one windowed counter.
type CounterStat struct {
	Total  int64   `json:"total"`
	Window int64   `json:"window"`
	Rate   float64 `json:"rate"`
}

// Snapshot is a point-in-time copy of every live instrument.
type Snapshot struct {
	Counters      map[string]CounterStat          `json:"counters"`
	Gauges        map[string]float64              `json:"gauges"`
	Histograms    map[string]WindowStat           `json:"histograms"`
	CounterVecs   map[string]VecStat[CounterStat] `json:"counterVecs,omitempty"`
	GaugeVecs     map[string]VecStat[float64]     `json:"gaugeVecs,omitempty"`
	HistogramVecs map[string]VecStat[WindowStat]  `json:"histogramVecs,omitempty"`
}

// Snapshot copies the registry's current state; a nil registry yields an
// empty (non-nil-map) snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]CounterStat{},
		Gauges:     map[string]float64{},
		Histograms: map[string]WindowStat{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	counterVecs := make(map[string]*CounterVec, len(r.counterVecs))
	for k, v := range r.counterVecs {
		counterVecs[k] = v
	}
	gaugeVecs := make(map[string]*GaugeVec, len(r.gaugeVecs))
	for k, v := range r.gaugeVecs {
		gaugeVecs[k] = v
	}
	histVecs := make(map[string]*HistogramVec, len(r.histVecs))
	for k, v := range r.histVecs {
		histVecs[k] = v
	}
	r.mu.Unlock()
	// Instrument reads take per-instrument locks; don't hold the registry
	// lock across them.
	for k, c := range counters {
		s.Counters[k] = CounterStat{Total: c.Total(), Window: c.WindowSum(), Rate: c.Rate()}
	}
	for k, g := range gauges {
		s.Gauges[k] = g.Value()
	}
	for k, h := range hists {
		s.Histograms[k] = h.Window()
	}
	if len(counterVecs) > 0 {
		s.CounterVecs = map[string]VecStat[CounterStat]{}
		for k, v := range counterVecs {
			series := v.vec.snapshot()
			vs := VecStat[CounterStat]{LabelKey: v.label}
			for _, lv := range sortedKeys(series) {
				c := series[lv]
				vs.Series = append(vs.Series, LabeledStat[CounterStat]{
					Label: lv,
					Value: CounterStat{Total: c.Total(), Window: c.WindowSum(), Rate: c.Rate()},
				})
			}
			s.CounterVecs[k] = vs
		}
	}
	if len(gaugeVecs) > 0 {
		s.GaugeVecs = map[string]VecStat[float64]{}
		for k, v := range gaugeVecs {
			series := v.vec.snapshot()
			vs := VecStat[float64]{LabelKey: v.label}
			for _, lv := range sortedKeys(series) {
				vs.Series = append(vs.Series, LabeledStat[float64]{Label: lv, Value: series[lv].Value()})
			}
			s.GaugeVecs[k] = vs
		}
	}
	if len(histVecs) > 0 {
		s.HistogramVecs = map[string]VecStat[WindowStat]{}
		for k, v := range histVecs {
			series := v.vec.snapshot()
			vs := VecStat[WindowStat]{LabelKey: v.label}
			for _, lv := range sortedKeys(series) {
				vs.Series = append(vs.Series, LabeledStat[WindowStat]{Label: lv, Value: series[lv].Window()})
			}
			s.HistogramVecs[k] = vs
		}
	}
	return s
}

// sortedKeys returns the keys of a map in sorted order, for deterministic
// exposition output.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
