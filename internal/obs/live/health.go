package live

import (
	"fmt"
	"sync/atomic"

	"pipemap/internal/model"
)

// StageInfo describes one pipeline stage to the health model: its identity
// and the model's prediction for it, against which live observations are
// compared.
type StageInfo struct {
	// Name is the stage label (typically the module's task names).
	Name string `json:"name"`
	// Workers and Replicas mirror the mapping's per-module p and r.
	Workers  int `json:"workers"`
	Replicas int `json:"replicas"`
	// PredictedResponse is the model response time f_i in seconds: the time
	// one instance spends per data set (compute plus its share of
	// transfers).
	PredictedResponse float64 `json:"predictedResponse"`
	// PredictedPeriod is f_i / r_i, the stage's effective contribution to
	// the pipeline period.
	PredictedPeriod float64 `json:"predictedPeriod"`
}

// Config describes the pipeline a Monitor observes.
type Config struct {
	Stages []StageInfo
	// Mapping is the human-readable mapping summary shown in /pipeline.
	Mapping string
	// PredictedThroughput and PredictedLatency are the model's 1/max_i
	// (f_i/r_i) and sum_i f_i.
	PredictedThroughput float64
	PredictedLatency    float64
	// Options are the instrument options (window, clock).
	Options Options
}

// ConfigFromMapping derives the monitor configuration from a model
// mapping: one stage per module, with f_i and f_i/r_i evaluated from the
// chain's cost functions.
func ConfigFromMapping(m model.Mapping) Config {
	resp := m.ResponseTimes()
	eff := m.EffectiveResponseTimes()
	stages := make([]StageInfo, len(m.Modules))
	for i, mod := range m.Modules {
		stages[i] = StageInfo{
			Name:              m.Chain.TaskNames(mod.Lo, mod.Hi),
			Workers:           mod.Procs,
			Replicas:          mod.Replicas,
			PredictedResponse: resp[i],
			PredictedPeriod:   eff[i],
		}
	}
	return Config{
		Stages:              stages,
		Mapping:             m.String(),
		PredictedThroughput: m.Throughput(),
		PredictedLatency:    m.Latency(),
	}
}

// Scale returns a copy of the config with all predicted times divided by
// speedup (and throughput multiplied), matching a runtime that executes
// the model timeline compressed by that factor.
func (c Config) Scale(speedup float64) Config {
	if speedup <= 0 || speedup == 1 {
		return c
	}
	out := c
	out.Stages = make([]StageInfo, len(c.Stages))
	copy(out.Stages, c.Stages)
	for i := range out.Stages {
		out.Stages[i].PredictedResponse /= speedup
		out.Stages[i].PredictedPeriod /= speedup
	}
	out.PredictedThroughput *= speedup
	out.PredictedLatency /= speedup
	return out
}

// stageState is the live instrument set of one stage.
type stageState struct {
	info     StageInfo
	done     *Counter
	lat      *Histogram
	retries  *Counter
	drops    *Counter
	timeouts *Counter
	deaths   atomic.Int64
	live     atomic.Int32
}

// Monitor is the pipeline health model: it ingests per-attempt
// observations from a running pipeline and derives live per-stage
// throughput, bottleneck attribution, and a nominal/degraded status. All
// ingestion methods are safe for concurrent use, allocation-free, and
// valid on a nil receiver (disabled monitoring).
type Monitor struct {
	clock     Clock
	window    int64
	cfg       Config
	stages    []stageState
	completed *Counter
	latency   *Histogram
	events    *Events
	startNs   atomic.Int64
	started   atomic.Bool
	finished  atomic.Bool
	draining  atomic.Bool
}

// NewMonitor returns a monitor for the configured pipeline.
func NewMonitor(cfg Config) *Monitor {
	opt := cfg.Options.withDefaults()
	m := &Monitor{
		clock:  opt.Clock,
		window: int64(opt.Window),
		cfg:    cfg,
		stages: make([]stageState, len(cfg.Stages)),
		events: NewEvents(),
	}
	m.completed = newCounter(opt.Clock, opt.Window)
	m.latency = newHistogram(opt.Clock, opt.Window)
	for i := range m.stages {
		s := &m.stages[i]
		s.info = cfg.Stages[i]
		s.done = newCounter(opt.Clock, opt.Window)
		s.lat = newHistogram(opt.Clock, opt.Window)
		s.retries = newCounter(opt.Clock, opt.Window)
		s.drops = newCounter(opt.Clock, opt.Window)
		s.timeouts = newCounter(opt.Clock, opt.Window)
		reps := s.info.Replicas
		if reps < 1 {
			reps = 1
		}
		s.live.Store(int32(reps))
	}
	m.startNs.Store(opt.Clock())
	return m
}

// Enabled reports whether the monitor records observations.
func (m *Monitor) Enabled() bool { return m != nil }

// Events returns the monitor's fault-event hub (nil on a nil monitor).
func (m *Monitor) Events() *Events {
	if m == nil {
		return nil
	}
	return m.events
}

// Start marks the pipeline as serving: /readyz turns ready and the uptime
// clock starts.
func (m *Monitor) Start() {
	if m == nil {
		return
	}
	m.startNs.Store(m.clock())
	m.started.Store(true)
}

// Finish marks the stream as complete. The monitor stays ready (the
// pipeline ended, it did not fail); windowed rates decay naturally.
func (m *Monitor) Finish() {
	if m == nil {
		return
	}
	m.finished.Store(true)
}

// SetDraining marks (or clears) a migration drain: the pipeline is
// switching mappings and in-flight data sets are completing on the old
// generation. While draining, /readyz reports 503 even if the pipeline is
// otherwise nominal — a load balancer must not route new work at a
// pipeline mid-switch.
func (m *Monitor) SetDraining(v bool) {
	if m == nil {
		return
	}
	if m.draining.Swap(v) != v {
		kind := "drain-start"
		if !v {
			kind = "drain-end"
		}
		m.events.Publish(Event{TS: m.now(), Kind: kind, Dataset: -1, Detail: "migration drain"})
	}
}

func (m *Monitor) stage(i int) *stageState {
	if m == nil || i < 0 || i >= len(m.stages) {
		return nil
	}
	return &m.stages[i]
}

// now returns seconds since Start, for event timestamps.
func (m *Monitor) now() float64 {
	return float64(m.clock()-m.startNs.Load()) / 1e9
}

// StageDone records one successful attempt of stage i taking the given
// seconds. This is the hot path: two windowed-instrument updates, no
// allocation.
func (m *Monitor) StageDone(i int, seconds float64) {
	s := m.stage(i)
	if s == nil {
		return
	}
	s.done.Inc()
	s.lat.Observe(seconds)
}

// StageRetry records a failed attempt of stage i on dataset that will be
// retried.
func (m *Monitor) StageRetry(i, dataset int) {
	s := m.stage(i)
	if s == nil {
		return
	}
	s.retries.Inc()
	m.events.Publish(Event{TS: m.now(), Kind: "retry", Stage: s.info.Name, Dataset: dataset})
}

// StageTimeout records an attempt of stage i cut off by its deadline.
func (m *Monitor) StageTimeout(i, dataset int) {
	s := m.stage(i)
	if s == nil {
		return
	}
	s.timeouts.Inc()
	m.events.Publish(Event{TS: m.now(), Kind: "timeout", Stage: s.info.Name, Dataset: dataset})
}

// StageDrop records a data set abandoned at stage i after exhausting its
// attempts.
func (m *Monitor) StageDrop(i, dataset int) {
	s := m.stage(i)
	if s == nil {
		return
	}
	s.drops.Inc()
	m.events.Publish(Event{TS: m.now(), Kind: "drop", Stage: s.info.Name, Dataset: dataset})
}

// InstanceDeath records a replica of stage i leaving the rotation.
func (m *Monitor) InstanceDeath(i, dataset int) {
	s := m.stage(i)
	if s == nil {
		return
	}
	s.deaths.Add(1)
	if s.live.Add(-1) < 1 {
		s.live.Store(1) // the runtime never removes the last live instance
	}
	m.events.Publish(Event{TS: m.now(), Kind: "death", Stage: s.info.Name, Dataset: dataset,
		Detail: fmt.Sprintf("%d/%d replicas live", s.live.Load(), s.info.Replicas)})
}

// Remapped records a degraded remapping: the pipeline was rebuilt on a new
// mapping (detail carries its summary).
func (m *Monitor) Remapped(detail string) {
	if m == nil {
		return
	}
	m.events.Publish(Event{TS: m.now(), Kind: "remap", Dataset: -1, Detail: detail})
}

// Completed records one data set leaving the pipeline with its end-to-end
// latency.
func (m *Monitor) Completed(latencySeconds float64) {
	if m == nil {
		return
	}
	m.completed.Inc()
	m.latency.Observe(latencySeconds)
}

// StageHealth is the live state of one stage in the health model.
type StageHealth struct {
	Stage    int    `json:"stage"`
	Name     string `json:"name"`
	Workers  int    `json:"workers"`
	Replicas int    `json:"replicas"`
	// Live is the number of replicas still in rotation.
	Live int `json:"live"`
	// PredictedPeriod is the model's f_i/r_i; ObservedPeriod is the
	// windowed mean attempt latency divided by live replicas — the observed
	// f_i/r_i. When the window holds no samples yet, ObservedPeriod falls
	// back to the prediction.
	PredictedPeriod float64 `json:"predictedPeriod"`
	ObservedPeriod  float64 `json:"observedPeriod"`
	// Rate is the stage's windowed completion rate in data sets per second.
	Rate float64 `json:"rate"`
	// Completed is the cumulative number of successful attempts.
	Completed int64 `json:"completed"`
	// Latency is the windowed per-attempt latency summary.
	Latency WindowStat `json:"latency"`
	// Cumulative fault counters, with windowed rates alongside.
	Retries     int64   `json:"retries"`
	Drops       int64   `json:"drops"`
	Timeouts    int64   `json:"timeouts"`
	Deaths      int64   `json:"deaths"`
	RetryRate   float64 `json:"retryRate"`
	DropRate    float64 `json:"dropRate"`
	TimeoutRate float64 `json:"timeoutRate"`
	// Bottleneck marks the stage with the largest observed period — the
	// stage bounding the pipeline's 1/max_i(f_i/r_i).
	Bottleneck bool `json:"bottleneck"`
}

// Health is the live pipeline health model served at /pipeline.
type Health struct {
	// Status is "nominal" or "degraded". Degraded means the pipeline is
	// still serving but below its nominal capacity: one or more instances
	// died, or data sets are being dropped.
	Status string `json:"status"`
	// Ready reports /readyz semantics: the pipeline has started and is not
	// degraded.
	Ready bool `json:"ready"`
	// Reason explains a not-ready or degraded state.
	Reason string `json:"reason,omitempty"`
	// Draining reports a migration drain in progress: /readyz is 503 while
	// the pipeline switches mapping generations.
	Draining bool `json:"draining,omitempty"`
	Started  bool `json:"started"`
	Finished bool `json:"finished"`
	// UptimeSeconds is time since Start (virtual in replays).
	UptimeSeconds float64 `json:"uptimeSeconds"`
	Mapping       string  `json:"mapping,omitempty"`
	// PredictedThroughput is the model's 1/max_i(f_i/r_i);
	// ObservedThroughput is the windowed completion rate at the sink.
	PredictedThroughput float64 `json:"predictedThroughput"`
	ObservedThroughput  float64 `json:"observedThroughput"`
	PredictedLatency    float64 `json:"predictedLatency"`
	// Latency is the windowed end-to-end latency summary.
	Latency   WindowStat `json:"latency"`
	Completed int64      `json:"completed"`
	Retries   int64      `json:"retries"`
	Drops     int64      `json:"drops"`
	Timeouts  int64      `json:"timeouts"`
	Deaths    int64      `json:"deaths"`
	// PredictedBottleneck and BottleneckStage are the model's and the
	// observed argmax_i(f_i/r_i).
	PredictedBottleneck int           `json:"predictedBottleneck"`
	BottleneckStage     int           `json:"bottleneckStage"`
	Stages              []StageHealth `json:"stages"`
}

// Health computes the current health model. A nil monitor reports a
// disabled, never-ready pipeline.
func (m *Monitor) Health() Health {
	if m == nil {
		return Health{Status: "disabled", Reason: "no monitor attached"}
	}
	h := Health{
		Status:              "nominal",
		Started:             m.started.Load(),
		Finished:            m.finished.Load(),
		UptimeSeconds:       m.now(),
		Mapping:             m.cfg.Mapping,
		PredictedThroughput: m.cfg.PredictedThroughput,
		PredictedLatency:    m.cfg.PredictedLatency,
		ObservedThroughput:  m.completed.Rate(),
		Latency:             m.latency.Window(),
		Completed:           m.completed.Total(),
		Stages:              make([]StageHealth, len(m.stages)),
	}
	predBest := 0.0
	obsBest := 0.0
	var windowDrops int64
	for i := range m.stages {
		s := &m.stages[i]
		lat := s.lat.Window()
		live := int(s.live.Load())
		if live < 1 {
			live = 1
		}
		sh := StageHealth{
			Stage:           i,
			Name:            s.info.Name,
			Workers:         s.info.Workers,
			Replicas:        s.info.Replicas,
			Live:            live,
			PredictedPeriod: s.info.PredictedPeriod,
			Rate:            s.done.Rate(),
			Completed:       s.done.Total(),
			Latency:         lat,
			Retries:         s.retries.Total(),
			Drops:           s.drops.Total(),
			Timeouts:        s.timeouts.Total(),
			Deaths:          s.deaths.Load(),
			RetryRate:       s.retries.Rate(),
			DropRate:        s.drops.Rate(),
			TimeoutRate:     s.timeouts.Rate(),
		}
		if lat.Count > 0 {
			sh.ObservedPeriod = lat.Mean / float64(live)
		} else {
			sh.ObservedPeriod = s.info.PredictedPeriod
		}
		windowDrops += s.drops.WindowSum()
		h.Retries += sh.Retries
		h.Drops += sh.Drops
		h.Timeouts += sh.Timeouts
		h.Deaths += sh.Deaths
		if s.info.PredictedPeriod > predBest {
			predBest = s.info.PredictedPeriod
			h.PredictedBottleneck = i
		}
		if sh.ObservedPeriod > obsBest {
			obsBest = sh.ObservedPeriod
			h.BottleneckStage = i
		}
		h.Stages[i] = sh
	}
	if len(h.Stages) > 0 {
		h.Stages[h.BottleneckStage].Bottleneck = true
	}
	// Deaths degrade permanently (a dead replica never returns); drops
	// degrade only while they keep happening inside the window, so a
	// transient fault heals once the stream recovers.
	switch {
	case h.Deaths > 0:
		h.Status = "degraded"
		h.Reason = fmt.Sprintf("%d instance death(s)", h.Deaths)
	case windowDrops > 0:
		h.Status = "degraded"
		h.Reason = fmt.Sprintf("%d dropped data set(s) in window", windowDrops)
	}
	h.Draining = m.draining.Load()
	h.Ready = h.Started && h.Status == "nominal" && !h.Draining
	if !h.Started {
		h.Reason = "pipeline not started"
	} else if h.Draining && h.Reason == "" {
		h.Reason = "migration drain in progress"
	}
	return h
}
