package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
)

// Histogram bucket layout: log-spaced buckets covering 1ns .. ~1000s of
// seconds (or any positive unit), 8 buckets per decade across 14 decades,
// plus an underflow and an overflow bucket. Quantiles are estimated as the
// upper bound of the bucket where the cumulative count crosses the rank,
// which bounds the relative error at one bucket width (~33%).
const (
	histDecades      = 14
	histPerDecade    = 8
	histFirstDecade  = -9 // buckets start at 1e-9
	histBuckets      = histDecades*histPerDecade + 2
	histUnderflowIdx = 0
)

func bucketOf(v float64) int {
	if v <= 0 || math.IsNaN(v) {
		return histUnderflowIdx
	}
	d := math.Log10(v) - histFirstDecade
	i := int(math.Floor(d*histPerDecade)) + 1
	if i < 1 {
		return histUnderflowIdx
	}
	if i >= histBuckets {
		return histBuckets - 1
	}
	return i
}

// bucketUpper is the upper bound of bucket i (the quantile estimate).
func bucketUpper(i int) float64 {
	if i <= histUnderflowIdx {
		return 0
	}
	return math.Pow(10, float64(i)/histPerDecade+histFirstDecade)
}

type hist struct {
	count    int64
	sum      float64
	min, max float64
	buckets  [histBuckets]int64
}

func (h *hist) observe(v float64, n int64) {
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count += n
	h.sum += v * float64(n)
	h.buckets[bucketOf(v)] += n
}

func (h *hist) quantile(q float64) float64 {
	return QuantileFromBuckets(h.buckets[:], h.count, q, h.min, h.max)
}

// HistogramBuckets is the number of buckets in the shared log-spaced
// layout, including the underflow and overflow buckets. The rolling-window
// instruments in obs/live reuse the same layout so windowed and cumulative
// quantiles are directly comparable.
const HistogramBuckets = histBuckets

// HistogramBucketOf returns the index of the bucket v falls in.
func HistogramBucketOf(v float64) int { return bucketOf(v) }

// QuantileFromBuckets estimates quantile q from a bucket array laid out
// per HistogramBucketOf with count total samples, clamped to the observed
// [min, max] envelope. The last bucket is the overflow bucket: its upper
// bound is +Inf, so a rank that lands there reports the observed max
// rather than a (meaningless, finite) bucket boundary.
func QuantileFromBuckets(buckets []int64, count int64, q, min, max float64) float64 {
	if count == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(count)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, b := range buckets {
		cum += b
		if cum >= rank {
			if i == len(buckets)-1 {
				return max
			}
			u := bucketUpper(i)
			if u > max {
				u = max
			}
			if u < min {
				u = min
			}
			return u
		}
	}
	return max
}

// Registry is a thread-safe snapshot registry of counters, gauges and
// histograms. A nil *Registry is a valid disabled registry: all recording
// methods are no-ops. Metric names are flat dotted strings, e.g.
// "dp.map_chain.states" or "fxrt.retried".
type Registry struct {
	mu       sync.Mutex
	counters map[string]int64
	gauges   map[string]float64
	hists    map[string]*hist
}

// NewRegistry returns an empty enabled registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]int64{},
		gauges:   map[string]float64{},
		hists:    map[string]*hist{},
	}
}

// Enabled reports whether the registry records samples.
func (r *Registry) Enabled() bool { return r != nil }

// Add increments counter name by delta.
func (r *Registry) Add(name string, delta int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.counters[name] += delta
	r.mu.Unlock()
}

// Inc increments counter name by one.
func (r *Registry) Inc(name string) { r.Add(name, 1) }

// Set records the current value of gauge name.
func (r *Registry) Set(name string, v float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.gauges[name] = v
	r.mu.Unlock()
}

// Observe adds one sample to histogram name.
func (r *Registry) Observe(name string, v float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	h := r.hists[name]
	if h == nil {
		h = &hist{}
		r.hists[name] = h
	}
	h.observe(v, 1)
	r.mu.Unlock()
}

// ObserveAgg merges a pre-aggregated sample set — count samples with the
// given sum, min and max — into histogram name. It is used to import
// aggregate-only sources such as fxrt.Recorder summaries; for quantile
// purposes the mass is placed at the mean.
func (r *Registry) ObserveAgg(name string, count int64, sum, min, max float64) {
	if r == nil || count <= 0 {
		return
	}
	r.mu.Lock()
	h := r.hists[name]
	if h == nil {
		h = &hist{}
		r.hists[name] = h
	}
	mean := sum / float64(count)
	h.observe(mean, count)
	// observe placed min/max at the mean; restore the true envelope.
	h.sum += sum - mean*float64(count)
	if min < h.min {
		h.min = min
	}
	if max > h.max {
		h.max = max
	}
	r.mu.Unlock()
}

// HistStat is the exported summary of one histogram.
type HistStat struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
}

// Snapshot is a point-in-time copy of every metric in a registry.
type Snapshot struct {
	Counters   map[string]int64    `json:"counters"`
	Gauges     map[string]float64  `json:"gauges"`
	Histograms map[string]HistStat `json:"histograms"`
}

// Snapshot copies the registry's current state. A nil registry yields an
// empty (non-nil-map) snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistStat{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for k, v := range r.counters {
		s.Counters[k] = v
	}
	for k, v := range r.gauges {
		s.Gauges[k] = v
	}
	for k, h := range r.hists {
		s.Histograms[k] = HistStat{
			Count: h.count, Sum: h.sum, Min: h.min, Max: h.max,
			Mean: h.sum / float64(h.count),
			P50:  h.quantile(0.50), P90: h.quantile(0.90), P99: h.quantile(0.99),
		}
	}
	return s
}

// WriteJSON writes the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s); err != nil {
		return fmt.Errorf("obs: writing metrics: %w", err)
	}
	return nil
}

// WriteText writes the snapshot as expvar-style "name value" lines sorted
// by name; histograms expand to name.count/mean/min/max/p50/p90/p99.
func (s Snapshot) WriteText(w io.Writer) error {
	lines := make([]string, 0, len(s.Counters)+len(s.Gauges)+7*len(s.Histograms))
	for k, v := range s.Counters {
		lines = append(lines, fmt.Sprintf("%s %d", k, v))
	}
	for k, v := range s.Gauges {
		lines = append(lines, fmt.Sprintf("%s %g", k, v))
	}
	for k, h := range s.Histograms {
		lines = append(lines,
			fmt.Sprintf("%s.count %d", k, h.Count),
			fmt.Sprintf("%s.mean %g", k, h.Mean),
			fmt.Sprintf("%s.min %g", k, h.Min),
			fmt.Sprintf("%s.max %g", k, h.Max),
			fmt.Sprintf("%s.p50 %g", k, h.P50),
			fmt.Sprintf("%s.p90 %g", k, h.P90),
			fmt.Sprintf("%s.p99 %g", k, h.P99),
		)
	}
	sort.Strings(lines)
	for _, l := range lines {
		if _, err := fmt.Fprintln(w, l); err != nil {
			return fmt.Errorf("obs: writing metrics: %w", err)
		}
	}
	return nil
}
