// Package slo evaluates service-level objectives over the ingest data
// plane's request outcomes: availability (fraction of requests served
// without shedding or failure) and latency (fraction served within a
// target), per fleet and per tenant, with Google-SRE-style multi-window
// burn-rate alerting (DESIGN.md §13).
//
// Error budget: an objective with Target t tolerates a bad fraction of
// 1-t. The burn rate over a window is (observed bad fraction)/(1-t): burn 1
// spends the budget exactly at the sustainable rate, burn B spends it B
// times too fast. An alert pair (Short, Long, Threshold) fires when BOTH
// windows burn at or above the threshold — the long window proves the
// spend is material, the short window proves it is still happening — which
// is what keeps burn alerts both fast and self-resolving.
package slo

import (
	"encoding/json"
	"net/http"
	"sort"
	"sync"
	"time"

	"pipemap/internal/obs/live"
)

// Objective declares one SLO.
type Objective struct {
	// Name labels the objective ("availability", "latency_p99").
	Name string `json:"name"`
	// Target is the required good fraction (e.g. 0.999).
	Target float64 `json:"target"`
	// LatencyMS, when positive, makes this a latency objective: a request
	// counts good only when it succeeded AND its end-to-end time (sojourn
	// plus service) is at or below this bound. Zero means availability
	// only.
	LatencyMS float64 `json:"latencyMs,omitempty"`
}

// Window is one burn-rate alert pair.
type Window struct {
	Short     time.Duration `json:"short"`
	Long      time.Duration `json:"long"`
	Threshold float64       `json:"threshold"`
}

// Config configures an Engine.
type Config struct {
	// Objectives to evaluate; empty defaults to 99.9% availability.
	Objectives []Objective
	// Windows are the burn-rate alert pairs; empty uses
	// {5m/30s @ burn 10} and {30m/2m @ burn 2}, scaled for a
	// long-running server. Tests inject millisecond pairs with a virtual
	// clock.
	Windows []Window
	// PerTenant additionally evaluates every objective per tenant.
	PerTenant bool
	// MaxTenants bounds the per-tenant table (default 64); overflow
	// tenants are folded into "overflow".
	MaxTenants int
	// Clock supplies timestamps; nil uses the wall clock.
	Clock live.Clock
	// Registry, when set, receives the fleet-level burn-rate and
	// compliance gauges (slo.* names) on every Report, so /metrics carries
	// them. Per-tenant burn lives only in the /slo JSON to bound metric
	// cardinality.
	Registry *live.Registry
}

func (c Config) withDefaults() Config {
	if len(c.Objectives) == 0 {
		c.Objectives = []Objective{{Name: "availability", Target: 0.999}}
	}
	if len(c.Windows) == 0 {
		c.Windows = []Window{
			{Short: 30 * time.Second, Long: 5 * time.Minute, Threshold: 10},
			{Short: 2 * time.Minute, Long: 30 * time.Minute, Threshold: 2},
		}
	}
	if c.MaxTenants <= 0 {
		c.MaxTenants = 64
	}
	if c.Clock == nil {
		c.Clock = func() int64 { return time.Now().UnixNano() }
	}
	return c
}

// ring accumulates good/total counts in fixed time slots sized so the
// longest window is covered; sums over any shorter window are slot-aligned
// prefix sums. One ring per (objective, scope).
type ring struct {
	slot   int64 // nanoseconds per slot
	epochs []int64
	good   []int64
	total  []int64
}

func newRing(slot int64, slots int) *ring {
	r := &ring{slot: slot, epochs: make([]int64, slots), good: make([]int64, slots), total: make([]int64, slots)}
	for i := range r.epochs {
		r.epochs[i] = -1
	}
	return r
}

func (r *ring) add(now int64, good bool) {
	e := now / r.slot
	i := int(e % int64(len(r.epochs)))
	if i < 0 {
		i += len(r.epochs)
	}
	if r.epochs[i] != e {
		r.epochs[i] = e
		r.good[i], r.total[i] = 0, 0
	}
	r.total[i]++
	if good {
		r.good[i]++
	}
}

// sum returns (good, total) over the trailing window of the given slot
// count ending now.
func (r *ring) sum(now int64, slots int64) (int64, int64) {
	e := now / r.slot
	var g, t int64
	for i := range r.epochs {
		if d := e - r.epochs[i]; d >= 0 && d < slots {
			g += r.good[i]
			t += r.total[i]
		}
	}
	return g, t
}

// instance is one objective evaluated for one scope (fleet or tenant).
type instance struct {
	obj    Objective
	tenant string // "" = fleet
	ring   *ring
}

// Engine ingests request outcomes and evaluates the objectives. A nil
// *Engine is a valid disabled engine. All methods are safe for concurrent
// use.
type Engine struct {
	cfg      Config
	slot     int64
	slots    int
	maxSlots int64 // longest window in slots

	mu      sync.Mutex
	fleet   []*instance
	tenants map[string][]*instance
}

// New builds the engine.
func New(cfg Config) *Engine {
	cfg = cfg.withDefaults()
	// Slot width: the shortest short window split 8 ways bounds staleness
	// at 1/8 of the fastest alert's reaction window.
	shortest := cfg.Windows[0].Short
	longest := cfg.Windows[0].Long
	for _, w := range cfg.Windows {
		if w.Short < shortest {
			shortest = w.Short
		}
		if w.Long > longest {
			longest = w.Long
		}
	}
	slot := int64(shortest) / 8
	if slot <= 0 {
		slot = 1
	}
	slots := int(int64(longest)/slot) + 1
	e := &Engine{cfg: cfg, slot: slot, slots: slots, maxSlots: int64(slots), tenants: map[string][]*instance{}}
	for _, o := range cfg.Objectives {
		e.fleet = append(e.fleet, &instance{obj: o, ring: newRing(slot, slots)})
	}
	return e
}

// Enabled reports whether the engine evaluates objectives.
func (e *Engine) Enabled() bool { return e != nil }

// tenantInstancesLocked returns (creating if needed) the tenant's
// objective instances, folding overflow tenants together.
func (e *Engine) tenantInstancesLocked(tenant string) []*instance {
	ins := e.tenants[tenant]
	if ins != nil {
		return ins
	}
	if len(e.tenants) >= e.cfg.MaxTenants {
		tenant = "overflow"
		if ins := e.tenants[tenant]; ins != nil {
			return ins
		}
	}
	for _, o := range e.cfg.Objectives {
		ins = append(ins, &instance{obj: o, tenant: tenant, ring: newRing(e.slot, e.slots)})
	}
	e.tenants[tenant] = ins
	return ins
}

// Record ingests one request outcome: ok is whether it was served
// successfully (sheds and pipeline failures are not ok), latencyMS its
// end-to-end time. Nil-safe.
func (e *Engine) Record(tenant string, ok bool, latencyMS float64) {
	if e == nil {
		return
	}
	now := e.cfg.Clock()
	e.mu.Lock()
	for _, in := range e.fleet {
		in.ring.add(now, goodFor(in.obj, ok, latencyMS))
	}
	if e.cfg.PerTenant && tenant != "" {
		for _, in := range e.tenantInstancesLocked(tenant) {
			in.ring.add(now, goodFor(in.obj, ok, latencyMS))
		}
	}
	e.mu.Unlock()
}

func goodFor(o Objective, ok bool, latencyMS float64) bool {
	return ok && (o.LatencyMS <= 0 || latencyMS <= o.LatencyMS)
}

// WindowBurn is one alert pair's evaluation.
type WindowBurn struct {
	Short     string  `json:"short"`
	Long      string  `json:"long"`
	Threshold float64 `json:"threshold"`
	ShortBurn float64 `json:"shortBurn"`
	LongBurn  float64 `json:"longBurn"`
	Alerting  bool    `json:"alerting"`
}

// ObjectiveReport is one objective's evaluation for one scope.
type ObjectiveReport struct {
	Name      string  `json:"name"`
	Tenant    string  `json:"tenant,omitempty"`
	Target    float64 `json:"target"`
	LatencyMS float64 `json:"latencyMs,omitempty"`
	// Good/Total and Compliance are over the longest configured window.
	Good       int64        `json:"good"`
	Total      int64        `json:"total"`
	Compliance float64      `json:"compliance"`
	Burn       []WindowBurn `json:"burn"`
	Alerting   bool         `json:"alerting"`
}

// Report is the /slo payload.
type Report struct {
	Objectives []ObjectiveReport `json:"objectives"`
	Tenants    []ObjectiveReport `json:"tenants,omitempty"`
	Alerting   bool              `json:"alerting"`
}

func (e *Engine) evaluate(in *instance, now int64) ObjectiveReport {
	budget := 1 - in.obj.Target
	rep := ObjectiveReport{
		Name: in.obj.Name, Tenant: in.tenant,
		Target: in.obj.Target, LatencyMS: in.obj.LatencyMS,
	}
	rep.Good, rep.Total = in.ring.sum(now, e.maxSlots)
	if rep.Total > 0 {
		rep.Compliance = float64(rep.Good) / float64(rep.Total)
	} else {
		rep.Compliance = 1
	}
	burnOver := func(d time.Duration) float64 {
		slots := int64(d) / e.slot
		if slots < 1 {
			slots = 1
		}
		g, t := in.ring.sum(now, slots)
		if t == 0 {
			return 0
		}
		bad := float64(t-g) / float64(t)
		if budget <= 0 {
			// A 100% target has no budget: any badness is infinite burn,
			// represented as bad/epsilon-free large value.
			if bad > 0 {
				return 1e9
			}
			return 0
		}
		return bad / budget
	}
	for _, w := range e.cfg.Windows {
		wb := WindowBurn{
			Short: w.Short.String(), Long: w.Long.String(), Threshold: w.Threshold,
			ShortBurn: burnOver(w.Short), LongBurn: burnOver(w.Long),
		}
		wb.Alerting = wb.ShortBurn >= w.Threshold && wb.LongBurn >= w.Threshold
		rep.Burn = append(rep.Burn, wb)
		rep.Alerting = rep.Alerting || wb.Alerting
	}
	return rep
}

// Report evaluates every objective and, as a side effect, publishes the
// fleet-level burn-rate/compliance/alert gauges into the configured
// registry so a /metrics scrape taken after a Report is current. Nil-safe
// (empty report).
func (e *Engine) Report() Report {
	if e == nil {
		return Report{}
	}
	now := e.cfg.Clock()
	e.mu.Lock()
	fleet := make([]*instance, len(e.fleet))
	copy(fleet, e.fleet)
	names := make([]string, 0, len(e.tenants))
	for t := range e.tenants {
		names = append(names, t)
	}
	sort.Strings(names)
	var tins []*instance
	for _, t := range names {
		tins = append(tins, e.tenants[t]...)
	}
	e.mu.Unlock()

	var rep Report
	for _, in := range fleet {
		or := e.evaluate(in, now)
		rep.Objectives = append(rep.Objectives, or)
		rep.Alerting = rep.Alerting || or.Alerting
		e.publish(or)
	}
	for _, in := range tins {
		or := e.evaluate(in, now)
		rep.Tenants = append(rep.Tenants, or)
		rep.Alerting = rep.Alerting || or.Alerting
	}
	return rep
}

// publish mirrors one fleet objective into the live registry.
func (e *Engine) publish(or ObjectiveReport) {
	reg := e.cfg.Registry
	if reg == nil {
		return
	}
	prefix := "slo." + or.Name
	reg.Gauge(prefix + ".compliance").Set(or.Compliance)
	b2f := 0.0
	if or.Alerting {
		b2f = 1
	}
	reg.Gauge(prefix + ".alerting").Set(b2f)
	for i, wb := range or.Burn {
		// Window pairs are positional and stable, so index-suffixed names
		// keep the exposition's family set fixed.
		if i == 0 {
			reg.Gauge(prefix + ".burn_fast_short").Set(wb.ShortBurn)
			reg.Gauge(prefix + ".burn_fast_long").Set(wb.LongBurn)
		} else if i == 1 {
			reg.Gauge(prefix + ".burn_slow_short").Set(wb.ShortBurn)
			reg.Gauge(prefix + ".burn_slow_long").Set(wb.LongBurn)
		}
	}
}

// Handler serves the engine's Report as JSON — the /slo endpoint.
func Handler(e *Engine) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(e.Report())
	})
}
