package slo

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"pipemap/internal/obs/live"
)

// testEngine builds an engine on a virtual clock with millisecond alert
// windows so burn-rate transitions can be driven deterministically.
func testEngine(cfg Config) (*Engine, *live.VirtualClock) {
	vc := live.NewVirtualClock()
	vc.Set(int64(time.Hour)) // away from zero so trailing windows are clean
	cfg.Clock = vc.Clock()
	if len(cfg.Windows) == 0 {
		cfg.Windows = []Window{
			{Short: 80 * time.Millisecond, Long: 800 * time.Millisecond, Threshold: 10},
			{Short: 320 * time.Millisecond, Long: 4800 * time.Millisecond, Threshold: 2},
		}
	}
	return New(cfg), vc
}

func TestNilEngineIsInert(t *testing.T) {
	var e *Engine
	if e.Enabled() {
		t.Error("nil engine reports enabled")
	}
	e.Record("t", false, 5)
	rep := e.Report()
	if rep.Alerting || len(rep.Objectives) != 0 {
		t.Errorf("nil engine report = %+v, want empty", rep)
	}
}

func TestAvailabilityBurnAlertFlipsAndResolves(t *testing.T) {
	e, vc := testEngine(Config{
		Objectives: []Objective{{Name: "availability", Target: 0.9}},
	})

	// Healthy traffic: alert must stay quiet.
	for i := 0; i < 200; i++ {
		e.Record("", true, 1)
		vc.Advance(time.Millisecond)
	}
	if rep := e.Report(); rep.Alerting {
		t.Fatalf("healthy traffic alerting: %+v", rep.Objectives)
	}

	// Total outage: bad fraction 1, budget 0.1 -> burn 10 in every window
	// that sees it. Drive long enough to fill both the fast pair's windows.
	for i := 0; i < 900; i++ {
		e.Record("", false, 1)
		vc.Advance(time.Millisecond)
	}
	rep := e.Report()
	if !rep.Alerting {
		t.Fatalf("outage did not alert: %+v", rep.Objectives)
	}
	fast := rep.Objectives[0].Burn[0]
	if !fast.Alerting || fast.ShortBurn < 9 || fast.LongBurn < 5 {
		t.Errorf("fast pair under outage = %+v, want alerting with burn ~10", fast)
	}

	// Recovery: once the short window is clean the fast alert self-resolves
	// even though the long window still remembers the outage.
	for i := 0; i < 200; i++ {
		e.Record("", true, 1)
		vc.Advance(time.Millisecond)
	}
	rep = e.Report()
	fast = rep.Objectives[0].Burn[0]
	if fast.Alerting {
		t.Errorf("fast alert did not self-resolve after recovery: %+v", fast)
	}
	if fast.LongBurn == 0 {
		t.Error("long window forgot the outage immediately")
	}
}

func TestLatencyObjectiveCountsSlowAsBad(t *testing.T) {
	e, vc := testEngine(Config{
		Objectives: []Objective{{Name: "latency_p99", Target: 0.5, LatencyMS: 100}},
	})
	for i := 0; i < 40; i++ {
		e.Record("", true, 50)  // fast: good
		e.Record("", true, 500) // slow but ok: bad for a latency objective
		vc.Advance(time.Millisecond)
	}
	rep := e.Report()
	o := rep.Objectives[0]
	if o.Good != 40 || o.Total != 80 {
		t.Errorf("good/total = %d/%d, want 40/80", o.Good, o.Total)
	}
	if o.Compliance < 0.49 || o.Compliance > 0.51 {
		t.Errorf("compliance = %v, want 0.5", o.Compliance)
	}
}

func TestPerTenantScopesAndOverflowFold(t *testing.T) {
	e, vc := testEngine(Config{
		Objectives: []Objective{{Name: "availability", Target: 0.9}},
		PerTenant:  true,
		MaxTenants: 2,
	})
	e.Record("a", true, 1)
	e.Record("b", false, 1)
	e.Record("c", false, 1) // over MaxTenants: folds into "overflow"
	e.Record("d", false, 1)
	vc.Advance(time.Millisecond)

	rep := e.Report()
	byTenant := map[string]ObjectiveReport{}
	for _, o := range rep.Tenants {
		byTenant[o.Tenant] = o
	}
	if len(byTenant) != 3 {
		t.Fatalf("tenant scopes = %v, want a, b, overflow", byTenant)
	}
	if o := byTenant["a"]; o.Good != 1 || o.Total != 1 {
		t.Errorf("tenant a = %+v", o)
	}
	if o := byTenant["b"]; o.Good != 0 || o.Total != 1 {
		t.Errorf("tenant b = %+v", o)
	}
	if o := byTenant["overflow"]; o.Total != 2 {
		t.Errorf("overflow fold = %+v, want the c and d records", o)
	}
	// Fleet scope saw everything.
	if o := rep.Objectives[0]; o.Good != 1 || o.Total != 4 {
		t.Errorf("fleet = %+v, want 1/4", o)
	}
}

func TestHundredPercentTargetBurnsOnAnyBadness(t *testing.T) {
	e, vc := testEngine(Config{
		Objectives: []Objective{{Name: "strict", Target: 1}},
	})
	e.Record("", true, 1)
	vc.Advance(time.Millisecond)
	if rep := e.Report(); rep.Objectives[0].Burn[0].ShortBurn != 0 {
		t.Error("all-good traffic burned a zero budget")
	}
	e.Record("", false, 1)
	vc.Advance(time.Millisecond)
	rep := e.Report()
	if b := rep.Objectives[0].Burn[0].ShortBurn; b < 1e8 {
		t.Errorf("zero-budget badness burn = %v, want very large", b)
	}
	if !rep.Alerting {
		t.Error("zero-budget badness did not alert")
	}
}

func TestReportPublishesGauges(t *testing.T) {
	vc := live.NewVirtualClock()
	vc.Set(int64(time.Hour))
	reg := live.NewRegistry(live.Options{Window: 30 * time.Second, Clock: vc.Clock()})
	e := New(Config{
		Objectives: []Objective{{Name: "availability", Target: 0.9}},
		Windows: []Window{
			{Short: 80 * time.Millisecond, Long: 800 * time.Millisecond, Threshold: 10},
			{Short: 320 * time.Millisecond, Long: 4800 * time.Millisecond, Threshold: 2},
		},
		Clock:    vc.Clock(),
		Registry: reg,
	})
	for i := 0; i < 400; i++ {
		e.Record("", false, 1)
		vc.Advance(time.Millisecond)
	}
	e.Report()
	g := reg.Snapshot().Gauges
	for _, name := range []string{
		"slo.availability.compliance", "slo.availability.alerting",
		"slo.availability.burn_fast_short", "slo.availability.burn_fast_long",
		"slo.availability.burn_slow_short", "slo.availability.burn_slow_long",
	} {
		if _, ok := g[name]; !ok {
			t.Errorf("gauge %q not published (have %v)", name, g)
		}
	}
	if g["slo.availability.alerting"] != 1 {
		t.Error("alerting gauge not raised under outage")
	}
	if g["slo.availability.compliance"] != 0 {
		t.Errorf("compliance gauge = %v, want 0 under total outage", g["slo.availability.compliance"])
	}
}

func TestHandlerServesJSON(t *testing.T) {
	e, vc := testEngine(Config{PerTenant: true})
	e.Record("tenant-a", true, 1)
	vc.Advance(time.Millisecond)
	rr := httptest.NewRecorder()
	Handler(e).ServeHTTP(rr, httptest.NewRequest("GET", "/slo", nil))
	if ct := rr.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	var rep Report
	if err := json.Unmarshal(rr.Body.Bytes(), &rep); err != nil {
		t.Fatalf("/slo body is not JSON: %v", err)
	}
	if len(rep.Objectives) != 1 || rep.Objectives[0].Name != "availability" {
		t.Errorf("default objectives = %+v, want availability", rep.Objectives)
	}
	if len(rep.Tenants) != 1 || rep.Tenants[0].Tenant != "tenant-a" {
		t.Errorf("tenants = %+v", rep.Tenants)
	}
}
