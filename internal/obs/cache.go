package obs

import "sync/atomic"

// CacheStats counts hit/miss/invalidation events for a cache. All methods
// are safe for concurrent use and nil-safe: a nil *CacheStats is a valid
// disabled instance whose recording methods are no-ops, matching the
// Registry convention so hot paths never branch on observability being
// wired up.
type CacheStats struct {
	hits          atomic.Int64
	misses        atomic.Int64
	invalidations atomic.Int64
}

// Hit records one cache hit.
func (c *CacheStats) Hit() {
	if c != nil {
		c.hits.Add(1)
	}
}

// Miss records one cache miss.
func (c *CacheStats) Miss() {
	if c != nil {
		c.misses.Add(1)
	}
}

// Invalidate records one cache invalidation (an entry discarded because
// its inputs changed, as opposed to never having been present).
func (c *CacheStats) Invalidate() {
	if c != nil {
		c.invalidations.Add(1)
	}
}

// Hits returns the number of hits recorded.
func (c *CacheStats) Hits() int64 {
	if c == nil {
		return 0
	}
	return c.hits.Load()
}

// Misses returns the number of misses recorded.
func (c *CacheStats) Misses() int64 {
	if c == nil {
		return 0
	}
	return c.misses.Load()
}

// Invalidations returns the number of invalidations recorded.
func (c *CacheStats) Invalidations() int64 {
	if c == nil {
		return 0
	}
	return c.invalidations.Load()
}

// HitRate returns hits/(hits+misses), or 0 before any lookup.
func (c *CacheStats) HitRate() float64 {
	if c == nil {
		return 0
	}
	h, m := c.hits.Load(), c.misses.Load()
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}

// Publish copies the current counts into reg as gauges named
// prefix.hits/.misses/.invalidations/.hit_rate. Gauges (not counters) so
// repeated publishes report absolute totals rather than re-adding them.
func (c *CacheStats) Publish(reg *Registry, prefix string) {
	if c == nil || reg == nil {
		return
	}
	reg.Set(prefix+".hits", float64(c.hits.Load()))
	reg.Set(prefix+".misses", float64(c.misses.Load()))
	reg.Set(prefix+".invalidations", float64(c.invalidations.Load()))
	reg.Set(prefix+".hit_rate", c.HitRate())
}
