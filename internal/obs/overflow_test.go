package obs

import (
	"math"
	"testing"
)

// Regression: values above the top finite bucket land in the overflow
// bucket, whose upper bound is +Inf. Quantiles that resolve there must
// report the observed max, not the last finite bucket boundary (which
// could understate the value by orders of magnitude).
func TestQuantileOverflowBucketReportsObservedMax(t *testing.T) {
	topFinite := bucketUpper(histBuckets - 2)
	huge := topFinite * 100

	r := NewRegistry()
	r.Observe("h", huge)
	s := r.Snapshot().Histograms["h"]
	for q, got := range map[string]float64{"p50": s.P50, "p90": s.P90, "p99": s.P99} {
		if got != huge {
			t.Errorf("%s = %g, want observed max %g (overflow bucket must clamp to +Inf semantics)", q, got, huge)
		}
	}
}

func TestQuantileMixedOverflow(t *testing.T) {
	r := NewRegistry()
	// 99 small samples, one huge outlier: p50/p90 stay small, p100-ish
	// ranks report the outlier.
	for i := 0; i < 99; i++ {
		r.Observe("h", 1.0)
	}
	huge := bucketUpper(histBuckets-2) * 1e3
	r.Observe("h", huge)
	s := r.Snapshot().Histograms["h"]
	if s.P50 > 2 {
		t.Errorf("p50 = %g, want ~1 (outlier must not drag the median)", s.P50)
	}
	if got := quantileOf(t, r, "h", 1.0); got != huge {
		t.Errorf("q=1.0 = %g, want observed max %g", got, huge)
	}
	if s.Max != huge {
		t.Errorf("max = %g, want %g", s.Max, huge)
	}
}

func quantileOf(t *testing.T, r *Registry, name string, q float64) float64 {
	t.Helper()
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		t.Fatalf("histogram %q not found", name)
	}
	return h.quantile(q)
}

func TestQuantileFromBucketsEmpty(t *testing.T) {
	var b [HistogramBuckets]int64
	if got := QuantileFromBuckets(b[:], 0, 0.5, 0, 0); got != 0 {
		t.Errorf("empty quantile = %g, want 0", got)
	}
}

func TestHistogramBucketOfMatchesInternal(t *testing.T) {
	for _, v := range []float64{-1, 0, 1e-12, 1e-9, 0.5, 1, 3.7, 1e4, 1e30, math.Inf(1)} {
		if got, want := HistogramBucketOf(v), bucketOf(v); got != want {
			t.Errorf("HistogramBucketOf(%g) = %d, want %d", v, got, want)
		}
	}
}
