package obs

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestFlightRecorderRingSemantics(t *testing.T) {
	f := NewFlightRecorder(4)
	if f.Cap() != 4 {
		t.Fatalf("Cap() = %d, want 4", f.Cap())
	}
	for i := 0; i < 6; i++ {
		f.Record(&FlightEntry{Kind: FlightTrace, Detail: fmt.Sprintf("e%d", i)})
	}
	if f.Recorded() != 6 {
		t.Errorf("Recorded() = %d, want 6", f.Recorded())
	}
	snap := f.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("Snapshot() kept %d entries, want 4", len(snap))
	}
	// Oldest first: e2..e5 survive after e0/e1 were evicted.
	for i, e := range snap {
		if want := fmt.Sprintf("e%d", i+2); e.Detail != want {
			t.Errorf("snap[%d].Detail = %q, want %q", i, e.Detail, want)
		}
	}
}

func TestFlightRecorderNilSafe(t *testing.T) {
	var f *FlightRecorder
	f.Record(&FlightEntry{Kind: FlightShed})
	if f.Snapshot() != nil || f.Cap() != 0 || f.Recorded() != 0 {
		t.Error("nil recorder is not inert")
	}
}

// TestFlightRecorderHammer drives concurrent writers and readers through
// the ring under -race: every snapshotted entry must be a real published
// entry, never a torn or partially written one.
func TestFlightRecorderHammer(t *testing.T) {
	f := NewFlightRecorder(32)
	const writers = 8
	const perWriter = 500
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				f.Record(&FlightEntry{
					Kind:   FlightTrace,
					Tenant: fmt.Sprintf("w%d", w),
					Detail: "hammer",
				})
			}
		}(w)
	}
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, e := range f.Snapshot() {
					if e.Detail != "hammer" || e.Kind != FlightTrace {
						t.Error("snapshot observed a torn entry")
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	readers.Wait()
	if got := f.Recorded(); got != writers*perWriter {
		t.Errorf("Recorded() = %d, want %d", got, writers*perWriter)
	}
	if len(f.Snapshot()) != 32 {
		t.Errorf("full ring snapshot has %d entries, want 32", len(f.Snapshot()))
	}
}

func TestChromeEventsConversion(t *testing.T) {
	entries := []FlightEntry{
		{
			Kind: FlightTrace, TraceID: "abc", Tenant: "t",
			Spans: []ReqSpan{
				{Kind: SpanQueue, Name: "queue", TSUS: 10, DurUS: 100, Outcome: "ok"},
				{Kind: SpanStage, Name: "fft", TSUS: 120, DurUS: 50, Stage: 1, Attempt: 1, Outcome: "ok"},
				{Kind: SpanShed, Name: "deadline", TSUS: 200}, // zero-duration -> instant
			},
		},
		{Kind: FlightShed, Outcome: "queue_full", Time: time.Now()},
	}
	evs := ChromeEvents(entries)
	var meta, durations, instants int
	for _, e := range evs {
		switch e.Phase {
		case "M":
			meta++
		case "X":
			durations++
		case "i":
			instants++
		}
	}
	if meta != 2 || durations != 2 || instants != 2 {
		t.Fatalf("meta/X/i = %d/%d/%d, want 2/2/2 (events: %+v)", meta, durations, instants, evs)
	}
}
