package obs

import (
	"sync/atomic"
	"time"
)

// Flight recorder (DESIGN.md §13): a lock-free ring of the last N notable
// events — finished request traces, shed decisions, and adaptive-controller
// decisions — dumped whole at /debug/flightrecorder for postmortems.
// Writers publish whole entries with one atomic pointer store and one
// atomic counter increment, so the recorder never contends with the data
// plane; readers snapshot whatever mix of old and new entries the ring
// holds at that instant (each individual entry is immutable once
// published).

// FlightEntry kinds.
const (
	// FlightTrace is a finished sampled request trace.
	FlightTrace = "trace"
	// FlightShed is one admission or head-of-line shed decision.
	FlightShed = "shed"
	// FlightAdapt is one adaptive-controller decision (migrate/rollback).
	FlightAdapt = "adapt"
)

// FlightEntry is one recorded event. Entries are immutable after Record;
// writers must not retain or mutate them.
type FlightEntry struct {
	Kind    string    `json:"kind"`
	Time    time.Time `json:"time"`
	TraceID string    `json:"traceId,omitempty"`
	Tenant  string    `json:"tenant,omitempty"`
	// Outcome classifies the event: the request outcome for traces, the
	// shed reason for sheds, the controller action for adapt decisions.
	Outcome   string    `json:"outcome,omitempty"`
	Detail    string    `json:"detail,omitempty"`
	SojournMS float64   `json:"sojourn_ms,omitempty"`
	ServiceMS float64   `json:"service_ms,omitempty"`
	Spans     []ReqSpan `json:"spans,omitempty"`
}

// FlightRecorder is the bounded lock-free ring. A nil *FlightRecorder is a
// valid disabled recorder.
type FlightRecorder struct {
	slots []atomic.Pointer[FlightEntry]
	seq   atomic.Uint64
}

// NewFlightRecorder returns a recorder retaining the last n entries
// (default 256 when n <= 0).
func NewFlightRecorder(n int) *FlightRecorder {
	if n <= 0 {
		n = 256
	}
	return &FlightRecorder{slots: make([]atomic.Pointer[FlightEntry], n)}
}

// Cap returns the ring capacity (zero for nil).
func (f *FlightRecorder) Cap() int {
	if f == nil {
		return 0
	}
	return len(f.slots)
}

// Recorded returns the total number of entries ever recorded.
func (f *FlightRecorder) Recorded() uint64 {
	if f == nil {
		return 0
	}
	return f.seq.Load()
}

// Record publishes one entry, evicting the oldest when the ring is full.
// Lock-free and safe for concurrent use; nil recorder or nil entry is a
// no-op.
func (f *FlightRecorder) Record(e *FlightEntry) {
	if f == nil || e == nil {
		return
	}
	i := f.seq.Add(1) - 1
	f.slots[i%uint64(len(f.slots))].Store(e)
}

// Snapshot copies the ring's current entries, oldest first. Concurrent
// writers may overwrite slots mid-read; each entry is immutable, so the
// result is always a set of real entries, merely not guaranteed to be a
// gap-free suffix under heavy write pressure.
func (f *FlightRecorder) Snapshot() []FlightEntry {
	if f == nil {
		return nil
	}
	n := uint64(len(f.slots))
	seq := f.seq.Load()
	start := uint64(0)
	if seq > n {
		start = seq - n
	}
	out := make([]FlightEntry, 0, seq-start)
	for i := start; i < seq; i++ {
		if e := f.slots[i%n].Load(); e != nil {
			out = append(out, *e)
		}
	}
	return out
}

// ChromeEvents converts flight entries to Chrome trace_event records (one
// thread per entry, spans at their request-relative timestamps), so a
// flight-recorder dump opens directly in chrome://tracing or Perfetto.
func ChromeEvents(entries []FlightEntry) []Event {
	var out []Event
	for tid, fe := range entries {
		name := fe.Kind
		if fe.TraceID != "" {
			name = fe.Kind + " " + fe.TraceID
		}
		out = append(out, Event{Name: "thread_name", Phase: "M", TID: tid,
			Args: map[string]any{"name": name}})
		if len(fe.Spans) == 0 {
			out = append(out, Event{Name: fe.Outcome, Cat: fe.Kind, Phase: "i",
				TS: 0, TID: tid, Scope: "t",
				Args: map[string]any{"tenant": fe.Tenant, "detail": fe.Detail}})
			continue
		}
		for _, sp := range fe.Spans {
			args := map[string]any{"outcome": sp.Outcome}
			if sp.Kind == SpanStage {
				args["stage"] = sp.Stage
				args["replica"] = sp.Replica
				args["attempt"] = sp.Attempt
			}
			if sp.DurUS <= 0 {
				out = append(out, Event{Name: sp.Name, Cat: sp.Kind, Phase: "i",
					TS: sp.TSUS, TID: tid, Scope: "t", Args: args})
				continue
			}
			out = append(out, Event{Name: sp.Name, Cat: sp.Kind, Phase: "X",
				TS: sp.TSUS, Dur: sp.DurUS, TID: tid, Args: args})
		}
	}
	return out
}
