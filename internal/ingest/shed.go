package ingest

import (
	"fmt"
	"net/http"
	"time"
)

// ShedReason classifies why the plane refused to serve a request.
type ShedReason string

const (
	// ReasonQueueFull: the bounded admission queue is at capacity.
	ReasonQueueFull ShedReason = "queue_full"
	// ReasonRateLimited: the tenant exceeded its token-bucket rate.
	ReasonRateLimited ShedReason = "rate_limited"
	// ReasonDeadline: the request's sojourn (actual or predicted) exceeds
	// its deadline budget, so serving it would only deliver a late answer.
	ReasonDeadline ShedReason = "deadline"
	// ReasonDraining: the plane is draining for shutdown or migration and
	// admits no new work.
	ReasonDraining ShedReason = "draining"
	// ReasonCircuitOpen: the pipeline's replica liveness fell below the
	// floor and the breaker is shedding to protect the survivors.
	ReasonCircuitOpen ShedReason = "circuit_open"
)

// shedReasons enumerates every reason, for metrics registration and stats.
var shedReasons = []ShedReason{
	ReasonQueueFull, ReasonRateLimited, ReasonDeadline, ReasonDraining, ReasonCircuitOpen,
}

// ShedError is the structured refusal returned for requests the plane
// sheds. It is an error and carries everything an HTTP surface needs: the
// machine-readable reason, human detail, and an optional retry hint.
type ShedError struct {
	Reason ShedReason
	Detail string
	// RetryAfter, when positive, hints when the client may retry
	// (Retry-After header).
	RetryAfter time.Duration
}

func (e *ShedError) Error() string {
	if e.Detail == "" {
		return fmt.Sprintf("ingest: shed (%s)", e.Reason)
	}
	return fmt.Sprintf("ingest: shed (%s): %s", e.Reason, e.Detail)
}

// HTTPStatus maps the shed reason to a response status: 429 for rate
// limits, 503 for everything the client should back off and retry.
func (e *ShedError) HTTPStatus() int {
	if e.Reason == ReasonRateLimited {
		return http.StatusTooManyRequests
	}
	return http.StatusServiceUnavailable
}
