package ingest

import (
	"errors"
	"testing"
	"time"
)

func mkItem(tenant string) *Item {
	return &Item{
		Tenant:   tenant,
		Enqueued: time.Now(),
		out:      make(chan Outcome, 1),
		canceled: make(chan struct{}),
	}
}

func popNow(t *testing.T, q *Queue) *Item {
	t.Helper()
	stop := make(chan struct{})
	close(stop)
	it, err := q.Pop(stop)
	if err != nil {
		t.Fatalf("pop: %v", err)
	}
	return it
}

func TestQueueFIFOWithinTenant(t *testing.T) {
	q := NewQueue(QueueConfig{Depth: 8})
	for i := 0; i < 4; i++ {
		it := mkItem("a")
		it.Payload = i
		if err := q.Offer(it); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		if got := popNow(t, q).Payload.(int); got != i {
			t.Fatalf("pop %d: got %d, want FIFO order", i, got)
		}
	}
}

func TestQueueBoundedDepth(t *testing.T) {
	q := NewQueue(QueueConfig{Depth: 2})
	if err := q.Offer(mkItem("a")); err != nil {
		t.Fatal(err)
	}
	if err := q.Offer(mkItem("b")); err != nil {
		t.Fatal(err)
	}
	err := q.Offer(mkItem("c"))
	var se *ShedError
	if !errors.As(err, &se) || se.Reason != ReasonQueueFull {
		t.Fatalf("offer past depth = %v, want queue_full shed", err)
	}
	if q.HighWater() != 2 {
		t.Fatalf("high water = %d, want 2", q.HighWater())
	}
}

func TestQueueWeightedRoundRobin(t *testing.T) {
	q := NewQueue(QueueConfig{Depth: 16, Weights: map[string]int{"heavy": 2}})
	for i := 0; i < 6; i++ {
		it := mkItem("heavy")
		it.Payload = "h"
		if err := q.Offer(it); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		it := mkItem("light")
		it.Payload = "l"
		if err := q.Offer(it); err != nil {
			t.Fatal(err)
		}
	}
	var got string
	for i := 0; i < 9; i++ {
		got += popNow(t, q).Payload.(string)
	}
	// Weight 2 vs 1 under saturation: two heavy per light, each cycle.
	if got != "hhlhhlhhl" {
		t.Fatalf("pop order = %q, want hhlhhlhhl (2:1 weighted round-robin)", got)
	}
}

func TestQueueRateLimit(t *testing.T) {
	q := NewQueue(QueueConfig{Depth: 8, Rate: 0.5, Burst: 1})
	if err := q.Offer(mkItem("a")); err != nil {
		t.Fatal(err)
	}
	err := q.Offer(mkItem("a"))
	var se *ShedError
	if !errors.As(err, &se) || se.Reason != ReasonRateLimited {
		t.Fatalf("second offer = %v, want rate_limited shed", err)
	}
	if se.RetryAfter <= 0 {
		t.Fatalf("rate_limited shed carries no retry hint: %+v", se)
	}
	// A different tenant has its own bucket.
	if err := q.Offer(mkItem("b")); err != nil {
		t.Fatalf("tenant b rate-limited by tenant a's bucket: %v", err)
	}
}

func TestQueueMaxTenants(t *testing.T) {
	q := NewQueue(QueueConfig{Depth: 8, MaxTenants: 2})
	if err := q.Offer(mkItem("a")); err != nil {
		t.Fatal(err)
	}
	if err := q.Offer(mkItem("b")); err != nil {
		t.Fatal(err)
	}
	err := q.Offer(mkItem("c"))
	var se *ShedError
	if !errors.As(err, &se) || se.Reason != ReasonQueueFull {
		t.Fatalf("offer from tenant past cap = %v, want queue_full shed", err)
	}
}

func TestQueuePopBlocksUntilOffer(t *testing.T) {
	q := NewQueue(QueueConfig{Depth: 8})
	done := make(chan *Item, 1)
	go func() {
		it, err := q.Pop(nil)
		if err != nil {
			t.Errorf("pop: %v", err)
		}
		done <- it
	}()
	select {
	case <-done:
		t.Fatal("pop returned from an empty queue")
	case <-time.After(10 * time.Millisecond):
	}
	want := mkItem("a")
	if err := q.Offer(want); err != nil {
		t.Fatal(err)
	}
	select {
	case it := <-done:
		if it != want {
			t.Fatal("pop returned a different item")
		}
	case <-time.After(time.Second):
		t.Fatal("pop did not wake on offer")
	}
}

func TestQueueCloseFlushesThenDrains(t *testing.T) {
	q := NewQueue(QueueConfig{Depth: 8})
	if err := q.Offer(mkItem("a")); err != nil {
		t.Fatal(err)
	}
	q.Close()
	var se *ShedError
	if err := q.Offer(mkItem("a")); !errors.As(err, &se) || se.Reason != ReasonDraining {
		t.Fatalf("offer after close = %v, want draining shed", err)
	}
	if _, err := q.Pop(nil); err != nil {
		t.Fatalf("queued item not poppable after close: %v", err)
	}
	if _, err := q.Pop(nil); err != ErrQueueDrained {
		t.Fatalf("pop on closed empty queue = %v, want ErrQueueDrained", err)
	}
}

func TestQueuePopStop(t *testing.T) {
	q := NewQueue(QueueConfig{Depth: 8})
	stop := make(chan struct{})
	errs := make(chan error, 1)
	go func() {
		_, err := q.Pop(stop)
		errs <- err
	}()
	close(stop)
	select {
	case err := <-errs:
		if err != ErrPopStopped {
			t.Fatalf("pop = %v, want ErrPopStopped", err)
		}
	case <-time.After(time.Second):
		t.Fatal("pop ignored its stop channel")
	}
}
