// Package ingest is the overload-safe ingestion data plane: it accepts
// data sets (typically over HTTP), admits them through a bounded
// multi-tenant queue with weighted fairness and per-tenant token-bucket
// rate limits, feeds admitted requests into a real fxrt pipeline stream,
// and returns each request's result — or a structured shed error.
//
// Robustness is the design center. The plane degrades predictably under
// overload instead of falling over:
//
//   - Admission control: the queue is bounded (queue_full shed) and
//     requests whose predicted queue wait already exceeds their deadline
//     budget are rejected at the door (deadline shed) — reject early
//     rather than time out late.
//   - Head-of-line shedding: dispatch re-checks the actual sojourn
//     (CoDel-style head drop), so a burst never converts into a convoy of
//     requests that are all served too late.
//   - Per-tenant fairness: a weighted round-robin over per-tenant FIFOs
//     keeps one hot tenant from starving the rest; token buckets bound
//     each tenant's admission rate (rate_limited shed, with Retry-After).
//   - Circuit breaking: when a stage's live replica fraction falls below
//     the liveness floor, the breaker opens and requests shed immediately
//     (circuit_open) instead of queueing against a pipeline that cannot
//     serve them.
//   - Graceful drain: Drain stops admission (draining shed), flushes the
//     queue and every in-flight request to completion, and only then tears
//     the pipeline stream down — zero in-flight loss on SIGTERM.
//
// The plane exports live metrics (admit/shed counters by reason, queue
// depth, sojourn and service histograms) through an obs/live Registry and
// surfaces its state on the live server's /pipeline payload. See DESIGN.md
// §11.
package ingest
