package ingest

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"pipemap/internal/fxrt"
	"pipemap/internal/obs"
)

// ErrQueueDrained is returned by Pop once the queue is closed and empty:
// the dispatcher's signal to exit.
var ErrQueueDrained = errors.New("ingest: queue closed and drained")

// ErrPopStopped is returned by Pop when its stop channel fires first.
var ErrPopStopped = errors.New("ingest: pop stopped")

// Item is one admitted request waiting for dispatch.
type Item struct {
	// Tenant is the fairness/rate-limit key ("" maps to "default").
	Tenant string
	// Payload is the decoded pipeline data set.
	Payload fxrt.DataSet
	// Budget is the request's deadline budget: the maximum acceptable
	// queue sojourn, enforced at admission (predicted) and dispatch
	// (actual).
	Budget time.Duration
	// Enqueued is the admission timestamp.
	Enqueued time.Time

	// out receives the request's outcome exactly once.
	out chan Outcome

	// rt is the request trace riding this item (nil when unsampled) and
	// idStr its pre-rendered trace ID for exemplar attachment, so the hot
	// path never re-formats it.
	rt    *obs.ReqTrace
	idStr string

	canceled chan struct{} // closed when the submitter gave up
	cancel   sync.Once
}

// Cancel marks the item abandoned by its submitter; the dispatcher skips
// it without occupying the pipeline.
func (it *Item) Cancel() {
	it.cancel.Do(func() { close(it.canceled) })
}

// Canceled reports whether the submitter gave up.
func (it *Item) Canceled() bool {
	select {
	case <-it.canceled:
		return true
	default:
		return false
	}
}

// Outcome resolves one admitted request.
type Outcome struct {
	// Output is the pipeline's result data set on success.
	Output fxrt.DataSet
	// Err is a *ShedError (shed after admission, e.g. head drop), or the
	// pipeline's processing error.
	Err error
	// Sojourn is queue wait; Service is pipeline time.
	Sojourn, Service time.Duration
}

// tenantQ is one tenant's FIFO plus its fairness and rate-limit state.
type tenantQ struct {
	name    string
	items   []*Item
	high    int // this tenant's depth high-water mark
	weight  int
	quantum int
	bucket  *bucket
}

// QueueConfig configures the admission queue.
type QueueConfig struct {
	// Depth bounds the total queued items across all tenants (default 64).
	Depth int
	// Rate and Burst parameterize each tenant's token bucket; Rate <= 0
	// disables rate limiting. Burst defaults to max(1, Rate).
	Rate, Burst float64
	// Weights gives per-tenant round-robin weights (default 1): a tenant
	// with weight 2 is served twice per cycle under saturation.
	Weights map[string]int
	// MaxTenants bounds the tenant table so an attacker cycling tenant
	// names cannot grow memory without bound (default 1024).
	MaxTenants int
}

// Queue is the bounded, multi-tenant admission queue: per-tenant FIFOs
// drained by weighted round-robin, per-tenant token buckets at the door,
// and a hard bound on total depth. All methods are safe for concurrent
// use.
type Queue struct {
	cfg QueueConfig

	mu      sync.Mutex
	size    int
	high    int // high-water mark
	tenants map[string]*tenantQ
	order   []*tenantQ
	rr      int
	closed  bool
	wake    chan struct{} // broadcast: closed and replaced on every signal
}

// NewQueue builds the queue.
func NewQueue(cfg QueueConfig) *Queue {
	if cfg.Depth <= 0 {
		cfg.Depth = 64
	}
	if cfg.MaxTenants <= 0 {
		cfg.MaxTenants = 1024
	}
	if cfg.Burst <= 0 {
		cfg.Burst = cfg.Rate
	}
	return &Queue{
		cfg:     cfg,
		tenants: map[string]*tenantQ{},
		wake:    make(chan struct{}),
	}
}

// broadcastLocked wakes every waiting Pop.
func (q *Queue) broadcastLocked() {
	close(q.wake)
	q.wake = make(chan struct{})
}

// tenant returns (creating if needed) the tenant's queue state.
func (q *Queue) tenantLocked(name string) (*tenantQ, error) {
	t := q.tenants[name]
	if t != nil {
		return t, nil
	}
	if len(q.tenants) >= q.cfg.MaxTenants {
		return nil, &ShedError{
			Reason: ReasonQueueFull,
			Detail: fmt.Sprintf("tenant table full (%d tenants)", len(q.tenants)),
		}
	}
	w := q.cfg.Weights[name]
	if w < 1 {
		w = 1
	}
	t = &tenantQ{
		name:    name,
		weight:  w,
		quantum: w,
		bucket:  newBucket(q.cfg.Rate, q.cfg.Burst),
	}
	q.tenants[name] = t
	q.order = append(q.order, t)
	return t, nil
}

// Offer admits it into the queue or returns a *ShedError (rate_limited,
// queue_full) / ErrQueueDrained (closed).
func (q *Queue) Offer(it *Item) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return &ShedError{Reason: ReasonDraining, Detail: "queue closed"}
	}
	t, err := q.tenantLocked(it.Tenant)
	if err != nil {
		return err
	}
	if ok, retry := t.bucket.take(time.Now()); !ok {
		return &ShedError{
			Reason:     ReasonRateLimited,
			Detail:     fmt.Sprintf("tenant %q over its admission rate", it.Tenant),
			RetryAfter: retry,
		}
	}
	if q.size >= q.cfg.Depth {
		return &ShedError{
			Reason: ReasonQueueFull,
			Detail: fmt.Sprintf("admission queue at depth %d", q.cfg.Depth),
		}
	}
	t.items = append(t.items, it)
	if len(t.items) > t.high {
		t.high = len(t.items)
	}
	q.size++
	if q.size > q.high {
		q.high = q.size
	}
	q.broadcastLocked()
	return nil
}

// TenantQueueStat is one tenant's queue occupancy snapshot.
type TenantQueueStat struct {
	Tenant    string `json:"tenant"`
	Depth     int    `json:"depth"`
	HighWater int    `json:"highWater"`
}

// Tenants snapshots per-tenant depth and high-water marks, in tenant
// arrival order.
func (q *Queue) Tenants() []TenantQueueStat {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]TenantQueueStat, 0, len(q.order))
	for _, t := range q.order {
		out = append(out, TenantQueueStat{Tenant: t.name, Depth: len(t.items), HighWater: t.high})
	}
	return out
}

// Len returns the current queued count; HighWater the maximum ever
// reached.
func (q *Queue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.size
}

// HighWater returns the deepest the queue has ever been.
func (q *Queue) HighWater() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.high
}

// popLocked picks the next item by weighted round-robin: scan tenants from
// the rotor, serving a non-empty tenant while it has quantum; when every
// non-empty tenant's quantum is spent, refill all quanta and rescan.
func (q *Queue) popLocked() *Item {
	if q.size == 0 {
		return nil
	}
	n := len(q.order)
	for pass := 0; pass < 2; pass++ {
		for k := 0; k < n; k++ {
			j := (q.rr + k) % n
			t := q.order[j]
			if len(t.items) == 0 || t.quantum <= 0 {
				continue
			}
			it := t.items[0]
			copy(t.items, t.items[1:])
			t.items[len(t.items)-1] = nil
			t.items = t.items[:len(t.items)-1]
			t.quantum--
			q.size--
			// Stay on this tenant while it has quantum; else move past it.
			if t.quantum <= 0 {
				q.rr = (j + 1) % n
			} else {
				q.rr = j
			}
			return it
		}
		// All non-empty tenants exhausted their quanta: start a new cycle.
		for _, t := range q.order {
			t.quantum = t.weight
		}
	}
	return nil // unreachable while size > 0
}

// Pop blocks until an item is available (returning it), the queue is
// closed and empty (ErrQueueDrained), or stop fires (ErrPopStopped).
func (q *Queue) Pop(stop <-chan struct{}) (*Item, error) {
	for {
		q.mu.Lock()
		if it := q.popLocked(); it != nil {
			q.mu.Unlock()
			return it, nil
		}
		if q.closed {
			q.mu.Unlock()
			return nil, ErrQueueDrained
		}
		wake := q.wake
		q.mu.Unlock()
		select {
		case <-wake:
		case <-stop:
			return nil, ErrPopStopped
		}
	}
}

// Close stops admission. Queued items remain poppable; Pop returns
// ErrQueueDrained once the backlog is flushed.
func (q *Queue) Close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return
	}
	q.closed = true
	q.broadcastLocked()
}
