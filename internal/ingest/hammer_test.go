package ingest

import (
	"context"
	"errors"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pipemap/internal/fxrt"
)

// TestPlaneOverloadHammer drives the plane at roughly five times its
// sustainable rate and checks graceful-overload invariants:
//
//   - memory stays bounded: the queue never grows past its configured
//     depth, so backlog cannot accumulate without limit;
//   - the plane sheds rather than stalls: a healthy fraction of the
//     offered load is rejected with structured sheds, and requests that do
//     complete observe a p99 queue sojourn within the deadline budget
//     (CoDel-style head drop keeps stale work from being served late);
//   - graceful drain loses nothing: every admitted request resolves to
//     exactly one outcome, and admitted == completed + failed at the end.
//
// Run with -race to double as the data plane's concurrency stress test.
func TestPlaneOverloadHammer(t *testing.T) {
	const (
		service     = 2 * time.Millisecond // per-request pipeline service time
		dispatchers = 2
		depth       = 16
		budget      = 80 * time.Millisecond
		tenants     = 4
		duration    = 1500 * time.Millisecond
	)
	pl := &fxrt.Pipeline{Stages: []fxrt.Stage{{
		Name: "work", Workers: 1, Replicas: 1,
		Run: func(_ *fxrt.StageCtx, in fxrt.DataSet) (fxrt.DataSet, error) {
			time.Sleep(service)
			return in, nil
		},
	}}}
	p, err := New(Config{
		Queue:         QueueConfig{Depth: depth},
		Dispatchers:   dispatchers,
		DefaultBudget: budget,
	}, pl, fxrt.StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}

	// Sustainable rate is dispatchers/service; offer 5x that, spread over
	// a few tenants so the fairness path is exercised too.
	offered := 5 * float64(dispatchers) / service.Seconds()
	interval := time.Duration(float64(time.Second) / offered)

	var (
		wg           sync.WaitGroup
		submitted    atomic.Int64
		completed    atomic.Int64
		failed       atomic.Int64
		admitShed    atomic.Int64 // rejected at the door (Submit error)
		dispatchShed atomic.Int64 // admitted, then head-dropped at dispatch
		sojMu        sync.Mutex
		sojourns     []time.Duration
	)
	stop := time.After(duration)
	tick := time.NewTicker(interval)
	defer tick.Stop()
loop:
	for i := 0; ; i++ {
		select {
		case <-stop:
			break loop
		case <-tick.C:
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			submitted.Add(1)
			tenant := string(rune('a' + i%tenants))
			out, err := p.Submit(context.Background(), tenant, i, 0)
			if err != nil {
				var se *ShedError
				if !errors.As(err, &se) {
					t.Errorf("submit error is not a shed: %v", err)
					return
				}
				admitShed.Add(1)
				return
			}
			if out.Err != nil {
				var se *ShedError
				if errors.As(out.Err, &se) {
					dispatchShed.Add(1)
				} else {
					failed.Add(1)
				}
				return
			}
			completed.Add(1)
			sojMu.Lock()
			sojourns = append(sojourns, out.Sojourn)
			sojMu.Unlock()
		}(i)
	}
	wg.Wait()

	ds := p.Drain()
	st := p.Stats()

	// Bounded memory: the queue's high-water mark respects the configured
	// depth even at 5x load.
	if st.QueueHighWater > depth {
		t.Errorf("queue high water %d exceeds configured depth %d", st.QueueHighWater, depth)
	}
	// Overload is shed, not absorbed: at 5x offered load roughly 4/5 of
	// requests must be rejected; require at least half to be robust.
	shed := admitShed.Load() + dispatchShed.Load()
	if shed < submitted.Load()/2 {
		t.Errorf("shed %d of %d submitted; overload was absorbed, not shed",
			shed, submitted.Load())
	}
	// But the plane kept serving: a meaningful number completed.
	if completed.Load() < 50 {
		t.Errorf("only %d requests completed under overload", completed.Load())
	}
	// Served requests were served fresh: p99 sojourn within the budget.
	sort.Slice(sojourns, func(i, j int) bool { return sojourns[i] < sojourns[j] })
	if len(sojourns) > 0 {
		p99 := sojourns[len(sojourns)*99/100]
		if p99 > budget {
			t.Errorf("p99 sojourn %v exceeds the %v deadline budget", p99, budget)
		}
	}
	// Zero loss on drain: wg.Wait() returning proves every Submit call got
	// an answer, and the plane's admission count must be fully accounted
	// for by the three client-visible resolutions of an admitted request
	// (completion, head-drop shed, failure — no cancels in this test).
	if st.Admitted != completed.Load()+dispatchShed.Load()+failed.Load() {
		t.Errorf("admitted %d != completed %d + head-dropped %d + failed %d: requests lost",
			st.Admitted, completed.Load(), dispatchShed.Load(), failed.Load())
	}
	// Client-side and plane-side accounting agree.
	if completed.Load() != st.Completed {
		t.Errorf("client saw %d completions, plane recorded %d", completed.Load(), st.Completed)
	}
	// The stream really processed every completion.
	if int64(ds.Stream.DataSets) < st.Completed {
		t.Errorf("stream processed %d data sets, fewer than %d completions",
			ds.Stream.DataSets, st.Completed)
	}
	// After drain, new submissions shed as draining.
	if _, err := p.Submit(context.Background(), "", 1, 0); err == nil {
		t.Error("submit after drain accepted")
	}
}
