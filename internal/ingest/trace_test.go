package ingest

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"pipemap/internal/fxrt"
	"pipemap/internal/obs"
	"pipemap/internal/obs/slo"
)

// intCodec round-trips int data sets for handler tests.
type intCodec struct{}

func (intCodec) App() string { return "test" }
func (intCodec) Decode(in json.RawMessage) (fxrt.DataSet, error) {
	if len(in) == 0 {
		return 0, nil
	}
	var v int
	if err := json.Unmarshal(in, &v); err != nil {
		return nil, err
	}
	return v, nil
}
func (intCodec) Encode(out fxrt.DataSet) (any, error) { return out, nil }

// tracedConfig returns a Config with full-rate tracing, a flight recorder,
// and a discarding span exporter.
func tracedConfig(t *testing.T) (Config, *obs.FlightRecorder) {
	t.Helper()
	fl := obs.NewFlightRecorder(64)
	ex := obs.NewSpanExporter(io.Discard, 16)
	t.Cleanup(func() { ex.Close() })
	tr := obs.NewReqTracer(obs.ReqTracerConfig{SampleRate: 1, Exporter: ex, Flight: fl})
	return Config{Tracer: tr}, fl
}

// faultyPipeline increments ints through two stages; stream index `fail`
// fails permanently at stage 1.
func faultyPipeline(fail int) *fxrt.Pipeline {
	p := incPipeline(2, 1)
	p.Retry = fxrt.RetryPolicy{MaxRetries: 1}
	p.Faults = []fxrt.Fault{{Stage: 1, Instance: -1, DataSet: fail, Kind: fxrt.FaultFail}}
	return p
}

// TestTracingDifferential runs the identical workload through a traced and
// an untraced plane and asserts tracing changed nothing observable:
// admission decisions, outputs, failures, and the plane's accounting.
func TestTracingDifferential(t *testing.T) {
	type result struct {
		out  int
		fail bool
	}
	run := func(cfg Config) ([]result, Stats) {
		t.Helper()
		p, err := New(cfg, faultyPipeline(3), fxrt.StreamOptions{})
		if err != nil {
			t.Fatal(err)
		}
		var results []result
		for i := 0; i < 8; i++ {
			out, err := p.Submit(context.Background(), "tenant-a", i, 0)
			if err != nil {
				t.Fatalf("submit %d: %v", i, err)
			}
			r := result{fail: out.Err != nil}
			if out.Err == nil {
				r.out = out.Output.(int)
			}
			results = append(results, r)
		}
		st := p.Stats()
		p.Drain()
		return results, st
	}

	traced, fl := tracedConfig(t)
	traced.SLO = slo.New(slo.Config{PerTenant: true})
	plainResults, plainStats := run(Config{})
	tracedResults, tracedStats := run(traced)

	for i := range plainResults {
		if plainResults[i] != tracedResults[i] {
			t.Errorf("request %d diverged: untraced %+v, traced %+v", i, plainResults[i], tracedResults[i])
		}
	}
	if plainStats.Admitted != tracedStats.Admitted ||
		plainStats.Completed != tracedStats.Completed ||
		plainStats.Failed != tracedStats.Failed {
		t.Errorf("accounting diverged: untraced %+v, traced %+v", plainStats, tracedStats)
	}
	// The traced plane additionally reports tracer accounting and flight
	// entries — observability on top, not behaviour change.
	if tracedStats.Trace == nil || tracedStats.Trace.Sampled != 8 {
		t.Errorf("traced stats = %+v, want 8 sampled", tracedStats.Trace)
	}
	if plainStats.Trace != nil {
		t.Error("untraced plane reported tracer stats")
	}
	if len(fl.Snapshot()) != 8 {
		t.Errorf("flight entries = %d, want 8", len(fl.Snapshot()))
	}
}

// waitFlightEntries polls the recorder until it holds want entries (the
// handler finishes the trace after writing the response, so the client can
// observe the response first).
func waitFlightEntries(t *testing.T, fl *obs.FlightRecorder, want int) []obs.FlightEntry {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if es := fl.Snapshot(); len(es) >= want {
			return es
		}
		if time.Now().After(deadline) {
			t.Fatalf("flight recorder never reached %d entries (have %d)", want, len(fl.Snapshot()))
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestSubmitEndToEndSingleConnectedTrace forces sampling via a client
// traceparent and asserts one submit produces a single trace that covers
// admission, queue wait, the pipeline stages, and the response write —
// all under the client's trace ID.
func TestSubmitEndToEndSingleConnectedTrace(t *testing.T) {
	fl := obs.NewFlightRecorder(64)
	// Rate 0: only the client's sampled flag pulls this request in.
	tr := obs.NewReqTracer(obs.ReqTracerConfig{SampleRate: 0, Flight: fl})
	p, err := New(Config{Tracer: tr}, incPipeline(2, 1), fxrt.StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Drain()
	srv := httptest.NewServer(SubmitHandler(p, intCodec{}))
	defer srv.Close()

	const parent = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	const wantID = "4bf92f3577b34da6a3ce929d0e0e4736"
	req, _ := http.NewRequest("POST", srv.URL, bytes.NewBufferString(`{"tenant":"t1","input":5}`))
	req.Header.Set("traceparent", parent)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Trace-Id"); got != wantID {
		t.Errorf("X-Trace-Id = %q, want %q", got, wantID)
	}
	if got := resp.Header.Get("traceparent"); len(got) != 55 || got[3:35] != wantID {
		t.Errorf("traceparent echo = %q, want the client's trace ID sampled", got)
	}
	var sr SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if sr.TraceID != wantID {
		t.Errorf("body trace_id = %q, want %q", sr.TraceID, wantID)
	}
	if sr.Result == nil || int(sr.Result.(float64)) != 7 {
		t.Errorf("result = %v, want 7", sr.Result)
	}

	entries := waitFlightEntries(t, fl, 1)
	if len(entries) != 1 {
		t.Fatalf("flight entries = %d, want exactly 1 (a single connected trace)", len(entries))
	}
	e := entries[0]
	if e.Kind != obs.FlightTrace || e.TraceID != wantID || e.Tenant != "t1" || e.Outcome != "ok" {
		t.Fatalf("flight entry = %+v", e)
	}
	kinds := map[string]int{}
	for _, sp := range e.Spans {
		kinds[sp.Kind]++
	}
	if kinds[obs.SpanAdmission] != 1 || kinds[obs.SpanQueue] != 1 ||
		kinds[obs.SpanService] != 1 || kinds[obs.SpanResponse] != 1 {
		t.Errorf("span kinds = %v, want one each of admission/queue/service/response", kinds)
	}
	if kinds[obs.SpanStage] != 2 {
		t.Errorf("stage spans = %d, want 2 (one per pipeline stage)", kinds[obs.SpanStage])
	}
}

// TestShedResponseCarriesTraceID asserts a refused request still echoes
// its trace ID in the error body and lands in the flight recorder as a
// shed decision.
func TestShedResponseCarriesTraceID(t *testing.T) {
	fl := obs.NewFlightRecorder(64)
	tr := obs.NewReqTracer(obs.ReqTracerConfig{SampleRate: 0, Flight: fl})
	p, err := New(Config{Tracer: tr}, incPipeline(1, 1), fxrt.StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	p.Drain() // every subsequent submit sheds as draining
	srv := httptest.NewServer(SubmitHandler(p, intCodec{}))
	defer srv.Close()

	const wantID = "af7651916cd43dd8448eb211c80319c7"
	req, _ := http.NewRequest("POST", srv.URL, bytes.NewBufferString(`{"tenant":"t1"}`))
	req.Header.Set("X-Trace-Id", wantID)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode < 400 {
		t.Fatalf("draining plane served a request: %d", resp.StatusCode)
	}
	var eb ErrorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatal(err)
	}
	if eb.Error.Reason != string(ReasonDraining) {
		t.Errorf("reason = %q, want draining", eb.Error.Reason)
	}
	if eb.Error.TraceID != wantID {
		t.Errorf("error trace_id = %q, want %q", eb.Error.TraceID, wantID)
	}
	entries := waitFlightEntries(t, fl, 1)
	var shed *obs.FlightEntry
	for i := range entries {
		if entries[i].Kind == obs.FlightShed {
			shed = &entries[i]
		}
	}
	if shed == nil || shed.TraceID != wantID || shed.Outcome != string(ReasonDraining) {
		t.Errorf("shed flight entry = %+v, want draining under %s", shed, wantID)
	}
}

// TestSLOAlertFlipsUnderOverload drives a plane wired to an SLO engine
// into shedding and asserts the availability burn-rate alert fires.
func TestSLOAlertFlipsUnderOverload(t *testing.T) {
	engine := slo.New(slo.Config{
		Objectives: []slo.Objective{{Name: "availability", Target: 0.99}},
		Windows: []slo.Window{
			{Short: 100 * time.Millisecond, Long: time.Second, Threshold: 2},
		},
		PerTenant: true,
	})
	cfg, _ := tracedConfig(t)
	cfg.SLO = engine
	p, err := New(cfg, incPipeline(1, 1), fxrt.StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}

	// Warm the engine with a few good requests, then drain so every
	// further submit sheds: availability collapses inside the window.
	for i := 0; i < 3; i++ {
		if _, err := p.Submit(context.Background(), "t", i, 0); err != nil {
			t.Fatal(err)
		}
	}
	p.Drain()
	for i := 0; i < 50; i++ {
		if _, err := p.Submit(context.Background(), "t", i, 0); err == nil {
			t.Fatal("draining plane served a request")
		}
	}
	rep := engine.Report()
	if !rep.Alerting {
		t.Fatalf("overload did not flip the SLO alert: %+v", rep.Objectives)
	}
	found := false
	for _, o := range rep.Tenants {
		if o.Tenant == "t" && o.Alerting {
			found = true
		}
	}
	if !found {
		t.Errorf("per-tenant objective for t not alerting: %+v", rep.Tenants)
	}
}
