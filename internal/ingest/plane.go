package ingest

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"pipemap/internal/fxrt"
	"pipemap/internal/obs"
	"pipemap/internal/obs/live"
	"pipemap/internal/obs/slo"
)

// Config configures a Plane.
type Config struct {
	// Queue configures the bounded multi-tenant admission queue.
	Queue QueueConfig
	// Dispatchers is the number of concurrent dispatch loops feeding the
	// pipeline stream (default 4). It bounds pipeline concurrency from the
	// ingest side.
	Dispatchers int
	// DefaultBudget is the deadline budget applied when a request names
	// none (default 2s). A request whose queue sojourn — predicted at
	// admission or actual at dispatch — exceeds its budget is shed.
	DefaultBudget time.Duration
	// LivenessFloor opens the circuit breaker when any stage's live/replica
	// fraction falls below it (e.g. 0.5). <= 0 disables the breaker.
	LivenessFloor float64
	// BreakerProbe is how often the breaker re-reads pipeline health
	// (default 100ms); between probes the cached verdict is used.
	BreakerProbe time.Duration
	// Registry receives the plane's metrics; nil disables them.
	Registry *live.Registry
	// Tracer, when set, samples request-scoped traces through admission,
	// queue wait, the pipeline stages, and completion (DESIGN.md §13). Nil
	// disables tracing with zero hot-path cost.
	Tracer *obs.ReqTracer
	// SLO, when set, receives one outcome record per terminal request
	// (served, shed, or failed) for objective evaluation. Nil disables.
	SLO *slo.Engine
}

func (c Config) withDefaults() Config {
	if c.Dispatchers <= 0 {
		c.Dispatchers = 4
	}
	if c.DefaultBudget <= 0 {
		c.DefaultBudget = 2 * time.Second
	}
	if c.BreakerProbe <= 0 {
		c.BreakerProbe = 100 * time.Millisecond
	}
	return c
}

// Backend is the pipeline engine behind the plane: anything that accepts
// data sets one at a time, resolves each to a StreamResult, and drains on
// Close. The generic engine is *fxrt.Stream; pipegen-generated executors
// (internal/gen/...) satisfy the same contract, so a specialized plane
// plugs in behind the identical admission/shedding/drain machinery.
type Backend interface {
	// PushTraced submits one data set, recording stage spans on rt (nil
	// for untraced). It blocks on backpressure until ctx is done and
	// returns ErrStreamClosed once draining has begun.
	PushTraced(ctx context.Context, ds fxrt.DataSet, rt *obs.ReqTrace) (<-chan fxrt.StreamResult, error)
	// InFlight reports pushed-but-unresolved data sets.
	InFlight() int
	// Close drains in-flight work to zero, tears the engine down, and
	// returns its cumulative statistics.
	Close() fxrt.Stats
}

// backend pairs a pipeline engine with the monitor observing it, so a live
// swap replaces both atomically.
type backend struct {
	s   Backend
	mon *live.Monitor
}

// Plane is the ingestion data plane: a bounded admission queue in front of
// a real pipeline stream, with load shedding, fairness, circuit breaking,
// and graceful drain. See the package documentation for the design.
type Plane struct {
	cfg   Config
	queue *Queue
	be    atomic.Pointer[backend]

	dispWg    sync.WaitGroup
	draining  atomic.Bool
	drainOnce sync.Once
	drainRes  DrainStats

	admitted  atomic.Int64
	completed atomic.Int64
	failed    atomic.Int64
	canceled  atomic.Int64
	dispatch  atomic.Int64 // currently dispatching
	shedBy    map[ShedReason]*atomic.Int64

	ewmaMu sync.Mutex
	ewma   float64 // seconds per request through the pipeline

	brMu   sync.Mutex
	brOpen bool
	brLast time.Time

	// metric instruments (nil-safe when Registry is nil)
	cAdmit, cShed, cDone, cFail *live.Counter
	cShedReason                 map[ShedReason]*live.Counter
	hSojourn, hService          *live.Histogram
	gDepth, gInflight           *live.Gauge

	// per-tenant families (nil-safe when Registry is nil)
	cvAdmit, cvShed *live.CounterVec
	hvSojourn       *live.HistogramVec
	gvQueueDepth    *live.GaugeVec
	gvQueueHigh     *live.GaugeVec
}

// New builds the plane around a started stream of pl and launches its
// dispatchers. The pipeline's Monitor (pl.Monitor) feeds the circuit
// breaker and is marked draining during Drain.
func New(cfg Config, pl *fxrt.Pipeline, opts fxrt.StreamOptions) (*Plane, error) {
	s, err := pl.Stream(opts)
	if err != nil {
		return nil, err
	}
	return NewBackend(cfg, s, pl.Monitor)
}

// NewBackend builds the plane around an already-running backend — the
// seam a pipegen-generated executor plugs into. mon is the monitor
// observing the backend (it feeds the circuit breaker and is marked
// draining during Drain); a nil monitor disables the breaker.
func NewBackend(cfg Config, be Backend, mon *live.Monitor) (*Plane, error) {
	if be == nil {
		return nil, fmt.Errorf("ingest: nil backend")
	}
	cfg = cfg.withDefaults()
	p := &Plane{
		cfg:         cfg,
		queue:       NewQueue(cfg.Queue),
		shedBy:      map[ShedReason]*atomic.Int64{},
		cShedReason: map[ShedReason]*live.Counter{},
	}
	p.be.Store(&backend{s: be, mon: mon})
	reg := cfg.Registry
	p.cAdmit = reg.Counter("ingest.admit")
	p.cShed = reg.Counter("ingest.shed")
	p.cDone = reg.Counter("ingest.complete")
	p.cFail = reg.Counter("ingest.fail")
	p.hSojourn = reg.Histogram("ingest.sojourn_ms")
	p.hService = reg.Histogram("ingest.service_ms")
	p.gDepth = reg.Gauge("ingest.queue_depth")
	p.gInflight = reg.Gauge("ingest.inflight")
	for _, r := range shedReasons {
		p.shedBy[r] = &atomic.Int64{}
		p.cShedReason[r] = reg.Counter("ingest.shed." + string(r))
	}
	p.cvAdmit = reg.CounterVec("ingest.tenant.admit", "tenant")
	p.cvShed = reg.CounterVec("ingest.tenant.shed", "tenant")
	p.hvSojourn = reg.HistogramVec("ingest.tenant.sojourn_ms", "tenant")
	p.gvQueueDepth = reg.GaugeVec("ingest.tenant.queue_depth", "tenant")
	p.gvQueueHigh = reg.GaugeVec("ingest.tenant.queue_high_water", "tenant")
	for i := 0; i < cfg.Dispatchers; i++ {
		p.dispWg.Add(1)
		go p.dispatcher()
	}
	return p, nil
}

// shed records a shed decision — aggregate and per-tenant counters, the
// SLO engine, the flight recorder, and (when sampled) the request trace —
// and returns it as the error to surface.
func (p *Plane) shed(id obs.TraceID, tenant string, rt *obs.ReqTrace, e *ShedError) *ShedError {
	p.shedBy[e.Reason].Add(1)
	p.cShed.Inc()
	p.cShedReason[e.Reason].Inc()
	p.cvShed.With(tenant).Inc()
	p.cfg.SLO.Record(tenant, false, 0)
	rt.Instant(obs.SpanShed, string(e.Reason), e.Detail)
	p.cfg.Tracer.RecordShed(id, tenant, string(e.Reason), e.Detail)
	return e
}

// Submit admits one decoded data set for tenant and blocks until its
// outcome: the pipeline's output, a structured *ShedError (at admission or
// at dispatch), or ctx's error if the caller gives up first. budget <= 0
// uses the configured default. When the plane has a tracer, Submit starts
// (and finishes) a head-sampled trace itself; callers that already own a
// trace — the HTTP handler accepting a traceparent — use SubmitTraced.
func (p *Plane) Submit(ctx context.Context, tenant string, ds fxrt.DataSet, budget time.Duration) (Outcome, error) {
	tr := p.cfg.Tracer
	if tr == nil {
		return p.SubmitTraced(ctx, tenant, ds, budget, obs.TraceID{}, nil)
	}
	if tenant == "" {
		tenant = "default"
	}
	id, rt := tr.Start(obs.TraceID{}, false, tenant, time.Now())
	out, err := p.SubmitTraced(ctx, tenant, ds, budget, id, rt)
	if rt != nil {
		outcome := "ok"
		switch {
		case err != nil:
			outcome = "shed"
			if _, ok := err.(*ShedError); !ok {
				outcome = "error"
			}
		case out.Err != nil:
			outcome = "error"
		}
		tr.Finish(rt, outcome, out.Sojourn, out.Service)
	}
	return out, err
}

// Tracer returns the plane's request tracer (nil when tracing is off).
func (p *Plane) Tracer() *obs.ReqTracer { return p.cfg.Tracer }

// SLO returns the plane's SLO engine (nil when disabled).
func (p *Plane) SLO() *slo.Engine { return p.cfg.SLO }

// SubmitTraced is Submit under a caller-owned trace: id is the request's
// trace ID (zero for untraced) and rt the sampled trace to record spans on
// (nil when unsampled). The caller finishes rt; the plane only records
// admission, queue, stage, and shed spans onto it.
func (p *Plane) SubmitTraced(ctx context.Context, tenant string, ds fxrt.DataSet, budget time.Duration, id obs.TraceID, rt *obs.ReqTrace) (Outcome, error) {
	if tenant == "" {
		tenant = "default"
	}
	if budget <= 0 {
		budget = p.cfg.DefaultBudget
	}
	t0 := time.Now()
	if p.draining.Load() {
		return Outcome{}, p.shed(id, tenant, rt, &ShedError{Reason: ReasonDraining, Detail: "plane draining for shutdown"})
	}
	if p.breakerOpen() {
		return Outcome{}, p.shed(id, tenant, rt, &ShedError{
			Reason:     ReasonCircuitOpen,
			Detail:     fmt.Sprintf("stage liveness below floor %.2f", p.cfg.LivenessFloor),
			RetryAfter: p.cfg.BreakerProbe,
		})
	}
	// Early rejection: if the predicted queue wait alone already blows the
	// budget, a late answer is the only possible answer — shed now.
	if w := p.predictedWait(); w > budget {
		return Outcome{}, p.shed(id, tenant, rt, &ShedError{
			Reason:     ReasonDeadline,
			Detail:     fmt.Sprintf("predicted queue wait %v exceeds budget %v", w.Round(time.Millisecond), budget),
			RetryAfter: w - budget,
		})
	}
	it := &Item{
		Tenant:   tenant,
		Payload:  ds,
		Budget:   budget,
		Enqueued: time.Now(),
		out:      make(chan Outcome, 1),
		canceled: make(chan struct{}),
		rt:       rt,
	}
	if rt != nil {
		it.idStr = id.String()
	}
	if err := p.queue.Offer(it); err != nil {
		if se, ok := err.(*ShedError); ok {
			return Outcome{}, p.shed(id, tenant, rt, se)
		}
		return Outcome{}, err
	}
	p.admitted.Add(1)
	p.cAdmit.Inc()
	p.cvAdmit.With(tenant).Inc()
	p.gDepth.Set(float64(p.queue.Len()))
	rt.Span(obs.SpanAdmission, "admit", t0, time.Since(t0), "ok", "")
	select {
	case out := <-it.out:
		return out, nil
	case <-ctx.Done():
		it.Cancel()
		rt.Instant(obs.SpanResponse, "canceled", "submitter gave up")
		return Outcome{}, ctx.Err()
	}
}

// predictedWait estimates the queue wait a newly admitted request would
// see: the EWMA per-request service time times the backlog share each
// dispatcher carries. Zero until the first request completes.
func (p *Plane) predictedWait() time.Duration {
	p.ewmaMu.Lock()
	ewma := p.ewma
	p.ewmaMu.Unlock()
	if ewma <= 0 {
		return 0
	}
	backlog := p.queue.Len() + 1
	perDispatcher := float64(backlog) / float64(p.cfg.Dispatchers)
	return time.Duration(perDispatcher * ewma * float64(time.Second))
}

// observeService folds one completed request's pipeline time into the EWMA.
func (p *Plane) observeService(d time.Duration) {
	const alpha = 0.2
	p.ewmaMu.Lock()
	if p.ewma <= 0 {
		p.ewma = d.Seconds()
	} else {
		p.ewma = (1-alpha)*p.ewma + alpha*d.Seconds()
	}
	p.ewmaMu.Unlock()
}

// breakerOpen reports whether any stage's liveness is below the floor,
// probing pipeline health at most once per BreakerProbe.
func (p *Plane) breakerOpen() bool {
	if p.cfg.LivenessFloor <= 0 {
		return false
	}
	p.brMu.Lock()
	defer p.brMu.Unlock()
	now := time.Now()
	if !p.brLast.IsZero() && now.Sub(p.brLast) < p.cfg.BreakerProbe {
		return p.brOpen
	}
	p.brLast = now
	h := p.be.Load().mon.Health()
	open := false
	for _, st := range h.Stages {
		if st.Replicas > 0 && float64(st.Live)/float64(st.Replicas) < p.cfg.LivenessFloor {
			open = true
			break
		}
	}
	p.brOpen = open
	return open
}

// dispatcher pops admitted items and runs them through the pipeline
// stream, re-checking each item's deadline at the head of the line.
func (p *Plane) dispatcher() {
	defer p.dispWg.Done()
	for {
		it, err := p.queue.Pop(nil)
		if err != nil {
			return // queue closed and flushed
		}
		p.gDepth.Set(float64(p.queue.Len()))
		p.serve(it)
	}
}

// serve runs one item: head-of-line deadline check, push into the stream
// (retrying once across a live swap), and outcome delivery.
func (p *Plane) serve(it *Item) {
	if it.Canceled() {
		p.canceled.Add(1)
		return
	}
	sojourn := time.Since(it.Enqueued)
	sojournMS := float64(sojourn) / float64(time.Millisecond)
	p.hSojourn.ObserveExemplar(sojournMS, it.idStr)
	p.hvSojourn.With(it.Tenant).ObserveExemplar(sojournMS, it.idStr)
	it.rt.Span(obs.SpanQueue, "queue", it.Enqueued, sojourn, "ok", "")
	// Head-of-line drop: the sojourn already spent the budget, so serving
	// this request can only produce a late answer — shed it and move to
	// fresher work (CoDel-style head drop under standing queues).
	if it.Budget > 0 && sojourn > it.Budget {
		e := p.shed(it.rt.ID(), it.Tenant, it.rt, &ShedError{
			Reason: ReasonDeadline,
			Detail: fmt.Sprintf("queue sojourn %v exceeded budget %v", sojourn.Round(time.Millisecond), it.Budget),
		})
		it.out <- Outcome{Err: e, Sojourn: sojourn}
		return
	}
	p.dispatch.Add(1)
	p.gInflight.Set(float64(p.dispatch.Load()))
	defer func() {
		p.dispatch.Add(-1)
		p.gInflight.Set(float64(p.dispatch.Load()))
	}()
	var r fxrt.StreamResult
	tPush := time.Now()
	for attempt := 0; ; attempt++ {
		be := p.be.Load()
		res, err := be.s.PushTraced(nil, it.Payload, it.rt)
		if err == fxrt.ErrStreamClosed && attempt == 0 {
			continue // a live swap replaced the backend; retry on the new one
		}
		if err != nil {
			p.failed.Add(1)
			p.cFail.Inc()
			p.cfg.SLO.Record(it.Tenant, false, sojournMS)
			it.rt.Span(obs.SpanService, "pipeline", tPush, time.Since(tPush), "error", err.Error())
			it.out <- Outcome{Err: err, Sojourn: sojourn}
			return
		}
		r = <-res
		break
	}
	serviceMS := float64(r.Latency) / float64(time.Millisecond)
	p.hService.ObserveExemplar(serviceMS, it.idStr)
	p.observeService(r.Latency)
	if r.Err != nil {
		p.failed.Add(1)
		p.cFail.Inc()
		it.rt.Span(obs.SpanService, "pipeline", tPush, r.Latency, "error", r.Err.Error())
	} else {
		p.completed.Add(1)
		p.cDone.Inc()
		it.rt.Span(obs.SpanService, "pipeline", tPush, r.Latency, "ok", "")
	}
	p.cfg.SLO.Record(it.Tenant, r.Err == nil, sojournMS+serviceMS)
	it.out <- Outcome{Output: r.DS, Err: r.Err, Sojourn: sojourn, Service: r.Latency}
}

// Swap replaces the backing pipeline stream with a fresh stream of pl —
// a live migration. The old stream is marked draining, drained of its
// in-flight work, and torn down; dispatchers that race the swap retry
// their push on the new stream. Admission never pauses.
func (p *Plane) Swap(pl *fxrt.Pipeline, opts fxrt.StreamOptions) error {
	ns, err := pl.Stream(opts)
	if err != nil {
		return err
	}
	p.SwapBackend(ns, pl.Monitor)
	return nil
}

// SwapBackend replaces the backing engine with an already-running backend
// — the live-migration seam shared by generic streams and generated
// executors (in either direction). The old backend is marked draining,
// drained of its in-flight work, and torn down.
func (p *Plane) SwapBackend(be Backend, mon *live.Monitor) {
	old := p.be.Swap(&backend{s: be, mon: mon})
	if old != nil {
		old.mon.SetDraining(true)
		old.s.Close() // blocks until the old backend's in-flight resolves
	}
}

// DrainStats summarizes a graceful drain.
type DrainStats struct {
	// Flushed is how many queued/in-flight requests completed during the
	// drain; Stream is the final pipeline stream statistics.
	Flushed int64
	Stream  fxrt.Stats
}

// Drain gracefully shuts the plane down: new submissions shed as
// draining, the queued backlog and every in-flight request run to
// completion (each submitter receives its outcome — zero loss), and the
// pipeline stream is torn down. Drain is idempotent; every call blocks
// until the drain completes.
func (p *Plane) Drain() DrainStats {
	p.drainOnce.Do(func() {
		p.draining.Store(true)
		p.be.Load().mon.SetDraining(true)
		before := p.completed.Load() + p.failed.Load()
		p.queue.Close()
		p.dispWg.Wait() // backlog flushed, every outcome delivered
		p.drainRes.Stream = p.be.Load().s.Close()
		p.drainRes.Flushed = p.completed.Load() + p.failed.Load() - before
	})
	return p.drainRes
}

// Stats is the plane's observable state, embedded into the live server's
// /pipeline payload and served at /v1/ingest.
type Stats struct {
	Draining       bool             `json:"draining"`
	BreakerOpen    bool             `json:"breakerOpen"`
	QueueDepth     int              `json:"queueDepth"`
	QueueHighWater int              `json:"queueHighWater"`
	Dispatching    int64            `json:"dispatching"`
	Admitted       int64            `json:"admitted"`
	Completed      int64            `json:"completed"`
	Failed         int64            `json:"failed"`
	Canceled       int64            `json:"canceled"`
	Shed           map[string]int64 `json:"shed"`
	EWMAServiceMS  float64          `json:"ewmaServiceMs"`
	StreamInFlight int              `json:"streamInFlight"`
	// Tenants is the per-tenant queue occupancy (depth and high-water).
	Tenants []TenantQueueStat `json:"tenants,omitempty"`
	// Trace is the tracer's accounting when tracing is enabled.
	Trace *obs.ReqTracerStats `json:"trace,omitempty"`
}

// Stats snapshots the plane.
func (p *Plane) Stats() Stats {
	p.ewmaMu.Lock()
	ewma := p.ewma
	p.ewmaMu.Unlock()
	p.brMu.Lock()
	open := p.brOpen
	p.brMu.Unlock()
	st := Stats{
		Draining:       p.draining.Load(),
		BreakerOpen:    open,
		QueueDepth:     p.queue.Len(),
		QueueHighWater: p.queue.HighWater(),
		Dispatching:    p.dispatch.Load(),
		Admitted:       p.admitted.Load(),
		Completed:      p.completed.Load(),
		Failed:         p.failed.Load(),
		Canceled:       p.canceled.Load(),
		Shed:           map[string]int64{},
		EWMAServiceMS:  ewma * 1000,
		StreamInFlight: p.be.Load().s.InFlight(),
	}
	for r, n := range p.shedBy {
		st.Shed[string(r)] = n.Load()
	}
	st.Tenants = p.queue.Tenants()
	// Publishing the per-tenant occupancy gauges here keeps them in step
	// with every stats poll without adding work to the admission path.
	for _, tq := range st.Tenants {
		p.gvQueueDepth.With(tq.Tenant).Set(float64(tq.Depth))
		p.gvQueueHigh.With(tq.Tenant).Set(float64(tq.HighWater))
	}
	if tr := p.cfg.Tracer; tr != nil {
		ts := tr.Stats()
		st.Trace = &ts
	}
	return st
}
