package ingest

import (
	"sync"
	"time"
)

// bucket is a token bucket: rate tokens per second, capacity burst. The
// zero rate disables limiting. Refill is computed lazily on take.
type bucket struct {
	mu     sync.Mutex
	rate   float64
	burst  float64
	tokens float64
	last   time.Time
}

func newBucket(rate, burst float64) *bucket {
	if burst < 1 {
		burst = 1
	}
	return &bucket{rate: rate, burst: burst, tokens: burst}
}

// take consumes one token if available, else reports how long until the
// next token accrues.
func (b *bucket) take(now time.Time) (ok bool, retryAfter time.Duration) {
	if b == nil || b.rate <= 0 {
		return true, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.last.IsZero() {
		b.tokens += now.Sub(b.last).Seconds() * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	need := 1 - b.tokens
	return false, time.Duration(need / b.rate * float64(time.Second))
}
