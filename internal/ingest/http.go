package ingest

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"pipemap/internal/fxrt"
	"pipemap/internal/obs"
)

// Codec adapts one application's wire format to the pipeline: it decodes a
// submit request's input into the pipeline's source data set and encodes
// the sink's output for the response. Implementations live with the
// applications (internal/apps).
type Codec interface {
	// App names the application ("ffthist", "radar", "stereo").
	App() string
	// Decode parses the request's "input" field (which may be empty: codecs
	// should synthesize a default data set) into a source data set.
	Decode(input json.RawMessage) (fxrt.DataSet, error)
	// Encode renders the pipeline's final data set as a JSON-marshalable
	// result.
	Encode(out fxrt.DataSet) (any, error)
}

// SubmitRequest is the POST /v1/submit body.
type SubmitRequest struct {
	// Tenant is the fairness and rate-limit key; empty maps to "default".
	// The X-Tenant header is an equivalent alternative.
	Tenant string `json:"tenant,omitempty"`
	// BudgetMS is the request's deadline budget in milliseconds; 0 uses the
	// plane's default.
	BudgetMS int `json:"budget_ms,omitempty"`
	// Input is the application-specific payload, decoded by the codec.
	Input json.RawMessage `json:"input,omitempty"`
}

// SubmitResponse is the success body.
type SubmitResponse struct {
	App       string  `json:"app"`
	Result    any     `json:"result"`
	SojournMS float64 `json:"sojourn_ms"`
	ServiceMS float64 `json:"service_ms"`
	// TraceID is the request's trace ID (also in the X-Trace-Id and
	// traceparent response headers), for correlating with server-side
	// flight-recorder entries and exported spans.
	TraceID string `json:"trace_id,omitempty"`
}

// ErrorBody is the structured refusal body for shed and failed requests.
type ErrorBody struct {
	Error struct {
		Reason       string `json:"reason"`
		Detail       string `json:"detail,omitempty"`
		RetryAfterMS int64  `json:"retry_after_ms,omitempty"`
		// TraceID correlates a refusal (e.g. a 429/503 shed) with the
		// server's flight recorder.
		TraceID string `json:"trace_id,omitempty"`
	} `json:"error"`
}

// maxSubmitBody bounds request bodies so a single oversized submission
// cannot balloon memory.
const maxSubmitBody = 8 << 20

// writeShed renders a *ShedError as its HTTP refusal.
func writeShed(w http.ResponseWriter, se *ShedError, traceID string) {
	var body ErrorBody
	body.Error.Reason = string(se.Reason)
	body.Error.Detail = se.Detail
	body.Error.TraceID = traceID
	if se.RetryAfter > 0 {
		body.Error.RetryAfterMS = se.RetryAfter.Milliseconds()
		secs := int(se.RetryAfter.Seconds() + 0.999)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(se.HTTPStatus())
	json.NewEncoder(w).Encode(body)
}

// writeError renders a non-shed failure with the given status.
func writeError(w http.ResponseWriter, status int, reason, detail, traceID string) {
	var body ErrorBody
	body.Error.Reason = reason
	body.Error.Detail = detail
	body.Error.TraceID = traceID
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(body)
}

// parseTraceHeaders extracts the request's trace context: a W3C
// traceparent (whose sampled flag forces sampling) or, failing that, an
// X-Trace-Id header (which always forces — a client that bothered to send
// an ID wants the trace).
func parseTraceHeaders(r *http.Request) (parent obs.TraceID, force bool) {
	if h := r.Header.Get("traceparent"); h != "" {
		if id, sampled, ok := obs.ParseTraceparent(h); ok {
			return id, sampled
		}
	}
	if h := r.Header.Get("X-Trace-Id"); h != "" {
		if id, ok := obs.ParseTraceID(h); ok {
			return id, true
		}
	}
	return obs.TraceID{}, false
}

// SubmitHandler serves POST /v1/submit: decode via the codec, submit to
// the plane, and render the outcome — 200 with the encoded result, 429/503
// with a structured shed body, or 500 for pipeline processing failures.
// The request context cancels the wait (not the work) when the client
// disconnects.
//
// The handler owns the request trace: it accepts an inbound traceparent /
// X-Trace-Id, starts the (possibly sampled) trace, echoes the ID in the
// X-Trace-Id and traceparent response headers and in every body, records
// the response-write span, and finishes the trace after the response.
func SubmitHandler(p *Plane, codec Codec) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeError(w, http.StatusMethodNotAllowed, "method_not_allowed", "POST only", "")
			return
		}
		var req SubmitRequest
		r.Body = http.MaxBytesReader(w, r.Body, maxSubmitBody)
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil && err.Error() != "EOF" {
			writeError(w, http.StatusBadRequest, "bad_request", fmt.Sprintf("decode body: %v", err), "")
			return
		}
		if req.Tenant == "" {
			req.Tenant = r.Header.Get("X-Tenant")
		}
		parent, force := parseTraceHeaders(r)
		id, rt := p.Tracer().Start(parent, force, req.Tenant, time.Now())
		if id.IsZero() {
			// Tracing disabled: still echo a client-supplied ID so the
			// caller's correlation keeps working.
			id = parent
		}
		idStr := ""
		if !id.IsZero() {
			idStr = id.String()
			w.Header().Set("X-Trace-Id", idStr)
			w.Header().Set("traceparent", id.Traceparent(rt != nil))
		}
		finish := func(outcome string, sojourn, service time.Duration) {
			p.Tracer().Finish(rt, outcome, sojourn, service)
		}
		ds, err := codec.Decode(req.Input)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad_input", err.Error(), idStr)
			finish("bad_input", 0, 0)
			return
		}
		out, err := p.SubmitTraced(r.Context(), req.Tenant, ds, time.Duration(req.BudgetMS)*time.Millisecond, id, rt)
		if err != nil {
			if se, ok := err.(*ShedError); ok {
				writeShed(w, se, idStr)
				finish("shed:"+string(se.Reason), out.Sojourn, out.Service)
				return
			}
			// Context errors: the client went away; the status is moot but
			// keep the log lines honest.
			writeError(w, http.StatusRequestTimeout, "canceled", err.Error(), idStr)
			finish("canceled", out.Sojourn, out.Service)
			return
		}
		if out.Err != nil {
			if se, ok := out.Err.(*ShedError); ok {
				writeShed(w, se, idStr)
				finish("shed:"+string(se.Reason), out.Sojourn, out.Service)
				return
			}
			writeError(w, http.StatusInternalServerError, "processing_failed", out.Err.Error(), idStr)
			finish("processing_failed", out.Sojourn, out.Service)
			return
		}
		result, err := codec.Encode(out.Output)
		if err != nil {
			writeError(w, http.StatusInternalServerError, "encode_failed", err.Error(), idStr)
			finish("encode_failed", out.Sojourn, out.Service)
			return
		}
		tResp := time.Now()
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(SubmitResponse{
			App:       codec.App(),
			Result:    result,
			SojournMS: float64(out.Sojourn) / float64(time.Millisecond),
			ServiceMS: float64(out.Service) / float64(time.Millisecond),
			TraceID:   idStr,
		})
		rt.Span(obs.SpanResponse, "response", tResp, time.Since(tResp), "ok", "")
		finish("ok", out.Sojourn, out.Service)
	})
}

// StatusHandler serves GET /v1/ingest: the plane's Stats as JSON.
func StatusHandler(p *Plane) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(p.Stats())
	})
}
