package ingest

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pipemap/internal/fxrt"
	"pipemap/internal/obs/live"
)

// incPipeline increments an int data set at every stage.
func incPipeline(stages, replicas int) *fxrt.Pipeline {
	p := &fxrt.Pipeline{}
	for i := 0; i < stages; i++ {
		p.Stages = append(p.Stages, fxrt.Stage{
			Name: fmt.Sprintf("s%d", i), Workers: 1, Replicas: replicas,
			Run: func(_ *fxrt.StageCtx, in fxrt.DataSet) (fxrt.DataSet, error) {
				return in.(int) + 1, nil
			},
		})
	}
	return p
}

func shedReason(t *testing.T, err error) ShedReason {
	t.Helper()
	var se *ShedError
	if !errors.As(err, &se) {
		t.Fatalf("error %v is not a *ShedError", err)
	}
	return se.Reason
}

func TestPlaneSubmitCompletes(t *testing.T) {
	p, err := New(Config{}, incPipeline(2, 1), fxrt.StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Drain()
	for i := 0; i < 5; i++ {
		out, err := p.Submit(context.Background(), "", i, 0)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		if out.Err != nil {
			t.Fatalf("submit %d outcome: %v", i, out.Err)
		}
		if got := out.Output.(int); got != i+2 {
			t.Fatalf("submit %d: got %d, want %d", i, got, i+2)
		}
		if out.Service <= 0 {
			t.Fatalf("submit %d: non-positive service time", i)
		}
	}
	st := p.Stats()
	if st.Admitted != 5 || st.Completed != 5 {
		t.Fatalf("stats = %+v, want 5 admitted and completed", st)
	}
}

func TestPlaneQueueFullShed(t *testing.T) {
	gate := make(chan struct{})
	pl := &fxrt.Pipeline{Stages: []fxrt.Stage{{
		Name: "gated", Workers: 1, Replicas: 1,
		Run: func(_ *fxrt.StageCtx, in fxrt.DataSet) (fxrt.DataSet, error) {
			<-gate
			return in, nil
		},
	}}}
	p, err := New(Config{
		Queue:         QueueConfig{Depth: 2},
		Dispatchers:   1,
		DefaultBudget: time.Minute, // keep deadline shedding out of this test
	}, pl, fxrt.StreamOptions{Inbox: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Saturate: the dispatcher grabs the first item and blocks in the
	// pipeline; two more fill the depth-2 queue; further submissions must
	// shed queue_full.
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := p.Submit(context.Background(), "", i, 0); err != nil {
				t.Errorf("submit %d: %v", i, err)
			}
		}(i)
		time.Sleep(5 * time.Millisecond) // let the dispatcher drain between fills
	}
	deadline := time.Now().Add(2 * time.Second)
	var sawFull bool
	for time.Now().Before(deadline) {
		// A probe can win the race and get admitted before the queue fills;
		// a short context keeps that from blocking behind the gate.
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
		_, err := p.Submit(ctx, "", 99, 0)
		cancel()
		var se *ShedError
		if errors.As(err, &se) && se.Reason == ReasonQueueFull {
			sawFull = true
			break
		}
		time.Sleep(time.Millisecond)
	}
	if !sawFull {
		t.Fatal("never shed queue_full with a saturated bounded queue")
	}
	close(gate)
	wg.Wait()
	p.Drain()
	if p.Stats().Shed[string(ReasonQueueFull)] == 0 {
		t.Fatal("queue_full shed not counted in stats")
	}
}

func TestPlaneHeadOfLineDeadlineDrop(t *testing.T) {
	gate := make(chan struct{})
	var served atomic.Int64
	pl := &fxrt.Pipeline{Stages: []fxrt.Stage{{
		Name: "gated", Workers: 1, Replicas: 1,
		Run: func(_ *fxrt.StageCtx, in fxrt.DataSet) (fxrt.DataSet, error) {
			<-gate
			served.Add(1)
			return in, nil
		},
	}}}
	p, err := New(Config{
		Queue:       QueueConfig{Depth: 8},
		Dispatchers: 1,
	}, pl, fxrt.StreamOptions{Inbox: 1})
	if err != nil {
		t.Fatal(err)
	}
	// First submission occupies the pipeline; the second waits in queue with
	// a tiny budget and must be head-dropped once its sojourn exceeds it.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := p.Submit(context.Background(), "", 0, time.Minute); err != nil {
			t.Errorf("occupying submit: %v", err)
		}
	}()
	time.Sleep(5 * time.Millisecond) // let the dispatcher pick it up
	errs := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		out, err := p.Submit(context.Background(), "", 1, 10*time.Millisecond)
		if err != nil {
			errs <- err
			return
		}
		errs <- out.Err
	}()
	time.Sleep(50 * time.Millisecond) // let its budget expire while queued
	close(gate)
	if reason := shedReason(t, <-errs); reason != ReasonDeadline {
		t.Fatalf("queued-past-budget request shed as %q, want deadline", reason)
	}
	wg.Wait()
	p.Drain()
	if got := served.Load(); got != 1 {
		t.Fatalf("pipeline served %d data sets, want 1 (expired head dropped before dispatch)", got)
	}
}

func TestPlaneDrainingShedsAndFlushes(t *testing.T) {
	p, err := New(Config{Dispatchers: 2}, incPipeline(1, 1), fxrt.StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var accepted, resolved atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				out, err := p.Submit(context.Background(), fmt.Sprintf("t%d", w), i, time.Minute)
				if err != nil {
					if shedReason(t, err) != ReasonDraining {
						t.Errorf("unexpected shed: %v", err)
					}
					continue
				}
				accepted.Add(1)
				if out.Err == nil {
					resolved.Add(1)
				}
			}
		}(w)
	}
	time.Sleep(5 * time.Millisecond)
	p.Drain()
	wg.Wait()
	if accepted.Load() == 0 {
		t.Fatal("no submissions accepted before the drain")
	}
	if resolved.Load() != accepted.Load() {
		t.Fatalf("accepted %d but only %d resolved cleanly — drain lost in-flight work",
			accepted.Load(), resolved.Load())
	}
	if _, err := p.Submit(context.Background(), "", 1, 0); shedReason(t, err) != ReasonDraining {
		t.Fatalf("submit after drain = %v, want draining shed", err)
	}
}

func TestPlaneCircuitBreakerOpensOnDeadReplicas(t *testing.T) {
	pl := incPipeline(1, 2)
	pl.Retry = fxrt.RetryPolicy{MaxRetries: 3}
	pl.DeadAfter = 2
	pl.Faults = []fxrt.Fault{{Stage: 0, Instance: 0, DataSet: -1, Kind: fxrt.FaultFail}}
	pl.Monitor = live.NewMonitor(live.Config{Stages: []live.StageInfo{
		{Name: "s0", Workers: 1, Replicas: 2},
	}})
	p, err := New(Config{
		LivenessFloor: 0.9, // one death of two replicas (0.5) trips it
		BreakerProbe:  time.Millisecond,
	}, pl, fxrt.StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Drain()
	// Drive work until the faulty instance dies, then the breaker opens.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		_, err := p.Submit(context.Background(), "", 1, time.Minute)
		if err != nil {
			if shedReason(t, err) == ReasonCircuitOpen {
				if !p.Stats().BreakerOpen {
					t.Fatal("breaker shed but stats report it closed")
				}
				return
			}
			t.Fatalf("unexpected shed: %v", err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("breaker never opened despite an instance death below the liveness floor")
}

func TestPlaneSubmitCancelable(t *testing.T) {
	gate := make(chan struct{})
	pl := &fxrt.Pipeline{Stages: []fxrt.Stage{{
		Name: "gated", Workers: 1, Replicas: 1,
		Run: func(_ *fxrt.StageCtx, in fxrt.DataSet) (fxrt.DataSet, error) {
			<-gate
			return in, nil
		},
	}}}
	p, err := New(Config{Dispatchers: 1}, pl, fxrt.StreamOptions{Inbox: 1})
	if err != nil {
		t.Fatal(err)
	}
	go p.Submit(context.Background(), "", 0, time.Minute) // occupy the dispatcher
	time.Sleep(5 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := p.Submit(ctx, "", 1, time.Minute); err != context.DeadlineExceeded {
		t.Fatalf("submit with expired ctx = %v, want context.DeadlineExceeded", err)
	}
	close(gate)
	p.Drain()
	if p.Stats().Canceled != 1 {
		t.Fatalf("stats = %+v, want 1 canceled", p.Stats())
	}
}

func TestPlaneSwapKeepsServing(t *testing.T) {
	p, err := New(Config{Dispatchers: 2}, incPipeline(1, 1), fxrt.StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var stop atomic.Bool
	var ok atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				out, err := p.Submit(context.Background(), "", 1, time.Minute)
				if err == nil && out.Err == nil {
					ok.Add(1)
				}
			}
		}()
	}
	// Swap to a two-stage pipeline mid-traffic: results change from +1 to +2.
	time.Sleep(5 * time.Millisecond)
	if err := p.Swap(incPipeline(2, 1), fxrt.StreamOptions{}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(5 * time.Millisecond)
	out, err := p.Submit(context.Background(), "", 1, time.Minute)
	if err != nil || out.Err != nil {
		t.Fatalf("submit after swap: %v / %v", err, out.Err)
	}
	if got := out.Output.(int); got != 3 {
		t.Fatalf("post-swap result = %d, want 3 (two-stage pipeline)", got)
	}
	stop.Store(true)
	wg.Wait()
	p.Drain()
	if ok.Load() == 0 {
		t.Fatal("no successful submissions across the swap")
	}
}

func TestPlaneMetricsRegistered(t *testing.T) {
	reg := live.NewRegistry(live.Options{})
	p, err := New(Config{Registry: reg}, incPipeline(1, 1), fxrt.StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Submit(context.Background(), "", 1, 0); err != nil {
		t.Fatal(err)
	}
	p.Drain()
	snap := reg.Snapshot()
	if snap.Counters["ingest.admit"].Total != 1 {
		t.Fatalf("ingest.admit = %+v, want total 1", snap.Counters["ingest.admit"])
	}
	if snap.Counters["ingest.complete"].Total != 1 {
		t.Fatalf("ingest.complete = %+v, want total 1", snap.Counters["ingest.complete"])
	}
	if _, ok := snap.Histograms["ingest.service_ms"]; !ok {
		t.Fatal("ingest.service_ms histogram not registered")
	}
}
