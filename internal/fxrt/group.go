// Package fxrt is a small goroutine-based task and data parallel runtime
// in the spirit of the paper's Fx compiler target: a pipeline of data
// parallel tasks runs on disjoint groups of workers ("processors"), with
// module replication processing alternate data sets round-robin and
// blocking rendezvous handoff between pipeline stages (the paper's model
// in which sender and receiver are both occupied by a transfer).
//
// The runtime executes real kernels (package kernels) and measures real
// wall-clock behaviour, so it can profile an application for the model
// fitting in package estimate, and validate predicted mappings end to end.
package fxrt

import (
	"fmt"
	"sync"
)

// Group is a fixed pool of worker goroutines standing in for a set of
// processors assigned to one module instance.
type Group struct {
	workers int
	jobs    chan func()
	wg      sync.WaitGroup
	closed  bool
}

// NewGroup starts a pool of n workers (n >= 1).
func NewGroup(n int) (*Group, error) {
	if n < 1 {
		return nil, fmt.Errorf("fxrt: group needs at least 1 worker, got %d", n)
	}
	g := &Group{workers: n, jobs: make(chan func())}
	g.wg.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer g.wg.Done()
			for job := range g.jobs {
				job()
			}
		}()
	}
	return g, nil
}

// Workers returns the number of workers in the group.
func (g *Group) Workers() int { return g.workers }

// ParallelFor partitions [0, total) into one contiguous block per worker
// and runs body on each block concurrently, returning when all blocks
// complete. The first error (if any) is returned.
func (g *Group) ParallelFor(total int, body func(lo, hi int) error) error {
	if total <= 0 {
		return nil
	}
	n := g.workers
	if n > total {
		n = total
	}
	var wg sync.WaitGroup
	errs := make([]error, n)
	chunk := (total + n - 1) / n
	for w := 0; w < n; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > total {
			hi = total
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		w := w
		g.jobs <- func() {
			defer wg.Done()
			errs[w] = body(lo, hi)
		}
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Close shuts the pool down and waits for the workers to exit. A closed
// group must not be used again.
func (g *Group) Close() {
	if g.closed {
		return
	}
	g.closed = true
	close(g.jobs)
	g.wg.Wait()
}
