package fxrt

import (
	"time"
)

// FaultKind selects the behaviour of an injected fault.
type FaultKind int

const (
	// FaultFail makes the attempt return an error without running the
	// stage function.
	FaultFail FaultKind = iota
	// FaultHang blocks the attempt until the pipeline run finishes (so a
	// configured stage deadline is the only way out).
	FaultHang
	// FaultSlow delays the attempt by Delay before running the stage
	// function.
	FaultSlow
)

func (k FaultKind) String() string {
	switch k {
	case FaultFail:
		return "fail"
	case FaultHang:
		return "hang"
	case FaultSlow:
		return "slow"
	default:
		return "?"
	}
}

// Fault is one deterministic injected fault. Faults fire purely as a
// function of (stage, instance, data set, attempt), so a faulty run is
// exactly reproducible: no clocks or random numbers are involved in the
// decision.
type Fault struct {
	// Stage is the stage index the fault applies to.
	Stage int
	// Instance is the replica index, or -1 for every instance.
	Instance int
	// DataSet is the stream index, or -1 for every data set.
	DataSet int
	// Kind is the injected behaviour.
	Kind FaultKind
	// Attempts limits the fault to the first Attempts attempts per
	// (instance, data set); 0 means every attempt (a permanent fault).
	// Attempts = 2 with a retrying pipeline models a transient fault that
	// heals on the third try.
	Attempts int
	// Delay is the extra latency injected by FaultSlow.
	Delay time.Duration
}

// matchFault returns the first configured fault that applies to the given
// attempt, or nil.
func (p *Pipeline) matchFault(stage, instance, dataSet, attempt int) *Fault {
	for i := range p.Faults {
		f := &p.Faults[i]
		if f.Stage != stage {
			continue
		}
		if f.Instance >= 0 && f.Instance != instance {
			continue
		}
		if f.DataSet >= 0 && f.DataSet != dataSet {
			continue
		}
		if f.Attempts > 0 && attempt >= f.Attempts {
			continue
		}
		return f
	}
	return nil
}

// RetryPolicy controls per-data-set retries within a stage. The zero value
// disables retries (a failed attempt drops the data set when the pipeline
// runs in fault-tolerant mode, or aborts the run otherwise).
type RetryPolicy struct {
	// MaxRetries is the number of retries after the first attempt, so a
	// data set gets MaxRetries+1 attempts per stage.
	MaxRetries int
	// Backoff is the delay before the first retry; each further retry
	// doubles it (capped exponential backoff). Zero retries immediately.
	Backoff time.Duration
	// MaxBackoff caps the doubled backoff; zero means uncapped.
	MaxBackoff time.Duration
}

// BackoffFor returns the delay before retry number retry (1-based). It is
// exported for pipegen-generated executors, which replicate the stream
// executor's retry loop without going through a Pipeline.
func (rp RetryPolicy) BackoffFor(retry int) time.Duration {
	if rp.Backoff <= 0 || retry < 1 {
		return 0
	}
	d := rp.Backoff
	for k := 1; k < retry; k++ {
		d *= 2
		if rp.MaxBackoff > 0 && d >= rp.MaxBackoff {
			return rp.MaxBackoff
		}
	}
	if rp.MaxBackoff > 0 && d > rp.MaxBackoff {
		d = rp.MaxBackoff
	}
	return d
}

// faultTolerant reports whether any fault-tolerance option is set, which
// routes Run/RunWithEdges through the fault-tolerant executor instead of
// the strict rendezvous executor.
func (p *Pipeline) faultTolerant() bool {
	if p.Retry.MaxRetries > 0 || p.StageDeadline > 0 || p.DeadAfter > 0 || len(p.Faults) > 0 {
		return true
	}
	for _, s := range p.Stages {
		if s.Deadline > 0 {
			return true
		}
	}
	return false
}

// deadlineFor returns the effective deadline of stage i: the stage's own
// Deadline if set, else the pipeline-wide StageDeadline (0 = none).
func (p *Pipeline) deadlineFor(i int) time.Duration {
	if d := p.Stages[i].Deadline; d > 0 {
		return d
	}
	return p.StageDeadline
}
