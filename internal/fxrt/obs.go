package fxrt

import "pipemap/internal/obs"

// ExportMetrics publishes the run's statistics into reg under the "fxrt."
// prefix, unifying runtime measurements with solver metrics collected in
// the same registry: retry/drop/timeout/death counters, throughput and
// latency gauges, and one histogram per recorded operation (failed
// attempts appear under name+"/error", see Recorder.Time).
func (s Stats) ExportMetrics(reg *obs.Registry) {
	if !reg.Enabled() {
		return
	}
	reg.Add("fxrt.datasets", int64(s.DataSets))
	reg.Add("fxrt.retried", int64(s.Retried))
	reg.Add("fxrt.dropped", int64(s.Dropped))
	reg.Add("fxrt.timeouts", int64(s.Timeouts))
	reg.Add("fxrt.dead", int64(s.Dead))
	reg.Set("fxrt.throughput", s.Throughput)
	reg.Set("fxrt.latency_seconds", s.Latency.Seconds())
	reg.Set("fxrt.elapsed_seconds", s.Elapsed.Seconds())
	for name, st := range s.OpStats {
		reg.ObserveAgg("fxrt.op."+name, int64(st.Count), st.Mean*float64(st.Count), st.Min, st.Max)
	}
}
