package fxrt

import (
	"fmt"
	"time"

	"pipemap/internal/model"
)

// ModelPipeline builds a runnable fault-tolerant pipeline that emulates a
// solved mapping: one stage per module, replicated as the mapping
// prescribes, whose work function sleeps for the module's predicted
// response time f_i divided by speedup. Replication is what makes the
// emulation interesting — the live observed period of stage i converges to
// f_i/(speedup·r_i), so the bottleneck structure of the mapping reproduces
// in the served health model, and killing a replica visibly degrades it.
//
// Each stage runs with Workers=1: the emulation spends the module's
// response time as wall-clock sleep rather than spreading real work over
// mod.Procs workers, so the mapping's per-instance processor counts are
// carried in the monitor's StageInfo, not in goroutine counts.
//
// speedup <= 0 defaults to 1 (real time). Use a large speedup to compress
// slow mappings into fast demo/CI runs without changing the relative stage
// periods.
func ModelPipeline(m model.Mapping, speedup float64) (*Pipeline, error) {
	return ModelPipelineOn(m, m.Chain, speedup)
}

// ModelPipelineOn is ModelPipeline with the emulated ground truth decoupled
// from the mapping's belief: stage sleeps are the response times of
// m.Modules evaluated against the truth chain. A truth chain whose costs
// differ from m.Chain emulates a pipeline solved under a wrong cost model —
// the scenario an adaptive controller exists to correct. truth == nil uses
// m.Chain (beliefs are true).
func ModelPipelineOn(m model.Mapping, truth *model.Chain, speedup float64) (*Pipeline, error) {
	if m.Chain == nil || len(m.Modules) == 0 {
		return nil, fmt.Errorf("fxrt: model pipeline needs a solved mapping")
	}
	if truth == nil {
		truth = m.Chain
	}
	if speedup <= 0 {
		speedup = 1
	}
	tm := model.Mapping{Chain: truth, Modules: m.Modules}
	resp := tm.ResponseTimes()
	stages := make([]Stage, len(m.Modules))
	for i, mod := range m.Modules {
		d := time.Duration(resp[i] / speedup * float64(time.Second))
		stages[i] = Stage{
			Name:     m.Chain.TaskNames(mod.Lo, mod.Hi),
			Workers:  1,
			Replicas: mod.Replicas,
			Run: func(_ *StageCtx, in DataSet) (DataSet, error) {
				if d > 0 {
					time.Sleep(d)
				}
				return in, nil
			},
		}
	}
	return &Pipeline{Stages: stages}, nil
}
