package fxrt

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

func passthrough(ctx *StageCtx, in DataSet) (DataSet, error) { return in, nil }

func TestRunWithEdgesComputesCorrectly(t *testing.T) {
	p := &Pipeline{Stages: []Stage{
		{Name: "a", Workers: 1, Replicas: 2, Run: func(ctx *StageCtx, in DataSet) (DataSet, error) {
			return in.(int) * 2, nil
		}},
		{Name: "b", Workers: 1, Replicas: 3, Run: func(ctx *StageCtx, in DataSet) (DataSet, error) {
			return in.(int) + 1, nil
		}},
	}}
	var transfers int32
	edges := []Edge{{
		Name: "edge:shift",
		Transfer: func(recv *StageCtx, in DataSet) (DataSet, error) {
			atomic.AddInt32(&transfers, 1)
			return in.(int) + 100, nil
		},
	}}
	// A third stage with a free edge exercises the nil-Transfer path.
	p.Stages = append(p.Stages, Stage{Name: "store", Workers: 1, Replicas: 1,
		Run: passthrough})
	edges = append(edges, Edge{Name: "edge:none"})
	stats, err := p.RunWithEdges(func(i int) DataSet { return i }, 40, 5, edges)
	if err != nil {
		t.Fatal(err)
	}
	if stats.DataSets != 40 {
		t.Errorf("processed %d", stats.DataSets)
	}
	if int(transfers) != 40 {
		t.Errorf("transfer ran %d times, want 40", transfers)
	}
	if _, ok := stats.Ops["edge:shift"]; !ok {
		t.Errorf("transfer time not recorded: %v", stats.Ops)
	}
}

func TestRunWithEdgesValuesEndToEnd(t *testing.T) {
	final := make([]int64, 32)
	p := &Pipeline{Stages: []Stage{
		{Name: "gen", Workers: 1, Replicas: 3, Run: func(ctx *StageCtx, in DataSet) (DataSet, error) {
			v := in.(int)
			return [2]int{v, v * v}, nil
		}},
		{Name: "sink", Workers: 1, Replicas: 2, Run: func(ctx *StageCtx, in DataSet) (DataSet, error) {
			kv := in.([2]int)
			atomic.StoreInt64(&final[kv[0]], int64(kv[1]))
			return in, nil
		}},
	}}
	edges := []Edge{{
		Name: "edge:inc",
		Transfer: func(recv *StageCtx, in DataSet) (DataSet, error) {
			kv := in.([2]int)
			kv[1]++
			return kv, nil
		},
	}}
	if _, err := p.RunWithEdges(func(i int) DataSet { return i }, 32, 4, edges); err != nil {
		t.Fatal(err)
	}
	for i := range final {
		if final[i] != int64(i*i+1) {
			t.Fatalf("final[%d] = %d, want %d", i, final[i], i*i+1)
		}
	}
}

func TestRunWithEdgesBlocksSender(t *testing.T) {
	// A slow transfer occupies both sides: with 1 replica each and
	// near-zero stage work, throughput is bounded by the transfer time.
	const transferMS = 4
	p := &Pipeline{Stages: []Stage{
		{Name: "a", Workers: 1, Replicas: 1, Run: passthrough},
		{Name: "b", Workers: 1, Replicas: 1, Run: passthrough},
	}}
	edges := []Edge{{
		Name: "edge:slow",
		Transfer: func(recv *StageCtx, in DataSet) (DataSet, error) {
			time.Sleep(transferMS * time.Millisecond)
			return in, nil
		},
	}}
	n := 30
	stats, err := p.RunWithEdges(func(i int) DataSet { return i }, n, 5, edges)
	if err != nil {
		t.Fatal(err)
	}
	maxThr := 1000.0 / transferMS
	if stats.Throughput > maxThr*1.3 {
		t.Errorf("throughput %.1f/s exceeds transfer-bound %.1f/s — sender not blocked",
			stats.Throughput, maxThr)
	}
}

func TestRunWithEdgesErrors(t *testing.T) {
	p := &Pipeline{Stages: []Stage{
		{Name: "a", Workers: 1, Replicas: 1, Run: passthrough},
		{Name: "b", Workers: 1, Replicas: 1, Run: passthrough},
	}}
	if _, err := p.RunWithEdges(func(i int) DataSet { return i }, 10, 1, nil); err == nil {
		t.Error("edge count mismatch accepted")
	}
	bad := []Edge{{
		Name: "edge:bad",
		Transfer: func(recv *StageCtx, in DataSet) (DataSet, error) {
			if in.(int) == 3 {
				return nil, fmt.Errorf("lost packet")
			}
			return in, nil
		},
	}}
	if _, err := p.RunWithEdges(func(i int) DataSet { return i }, 10, 1, bad); err == nil {
		t.Error("transfer error swallowed")
	}
	if _, err := (&Pipeline{}).RunWithEdges(func(i int) DataSet { return i }, 10, 1, nil); err == nil {
		t.Error("empty pipeline accepted")
	}
	if _, err := p.RunWithEdges(func(i int) DataSet { return i }, 0, 0, []Edge{{}}); err == nil {
		t.Error("zero data sets accepted")
	}
}
