package fxrt

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"pipemap/internal/obs"
)

// ErrStreamClosed is returned by Push after Close has begun: the stream no
// longer admits new data sets (it is draining or drained).
var ErrStreamClosed = errors.New("fxrt: stream closed")

// StreamResult is the outcome of one pushed data set: the transformed data
// set from the sink, or the error that dropped it (stage failure after
// exhausting its attempts, or a deadline). Latency is push-to-sink time
// either way.
type StreamResult struct {
	DS      DataSet
	Err     error
	Latency time.Duration
}

// StreamOptions configures a streaming execution.
type StreamOptions struct {
	// Inbox bounds every stage's inbox (and the sink's). A full inbox makes
	// the upstream forward block — backpressure propagates toward Push
	// instead of buffering without bound. <= 0 derives a per-stage default
	// of max(4, 2×replicas).
	Inbox int
	// Edges are the inter-module transfers, as in RunWithEdges: edge i-1
	// executes on the receiving instance as part of stage i's attempt and
	// is retried with it. nil runs without transfers.
	Edges []Edge
}

// sEnvelope carries one pushed data set through the streaming executor.
type sEnvelope struct {
	idx      int
	ds       DataSet
	t0       time.Time
	attempts int
	dropped  bool
	err      error
	res      chan StreamResult
	// rt is the request trace accompanying a traced push (nil for the
	// untraced fast path); every stage attempt records a span on it.
	rt *obs.ReqTrace
}

// Stream is a long-running execution of a pipeline: data sets are pushed
// one at a time and each push returns a channel that delivers that data
// set's result. Unlike Run, which streams a fixed batch and reports
// aggregate Stats, a Stream serves an ingestion data plane: inboxes are
// bounded (a full pipeline pushes back rather than buffering), every data
// set's outcome is delivered to its submitter, and Close drains in-flight
// work to zero before tearing the instances down.
//
// The executor semantics are those of the fault-tolerant executor: failed
// attempts retry with capped exponential backoff, hung attempts are cut
// off by stage deadlines, data sets that exhaust their attempts resolve
// with an error (never aborting the stream), and repeatedly failing
// instances die and leave the rotation while survivors keep serving.
type Stream struct {
	p     *Pipeline
	edges []Edge
	rec   *Recorder

	inbox   []chan sEnvelope
	quit    chan struct{}
	release chan struct{}
	stop    sync.Once
	wg      sync.WaitGroup

	mu       sync.Mutex
	closed   bool
	inflight int
	drained  chan struct{}

	start time.Time
	seq   atomic.Int64
	live  []atomic.Int32

	completed atomic.Int64
	retried   atomic.Int64
	droppedN  atomic.Int64
	timeouts  atomic.Int64
	deaths    atomic.Int64
}

// Stream starts a streaming execution of the pipeline and returns its
// handle. The pipeline's Monitor (if any) is started and observes every
// attempt exactly as in fault-tolerant batch runs.
func (p *Pipeline) Stream(opts StreamOptions) (*Stream, error) {
	if len(p.Stages) == 0 {
		return nil, fmt.Errorf("fxrt: pipeline has no stages")
	}
	l := len(p.Stages)
	if opts.Edges != nil && len(opts.Edges) != l-1 {
		return nil, fmt.Errorf("fxrt: %d edges for %d stages (want %d)",
			len(opts.Edges), l, l-1)
	}
	for i, s := range p.Stages {
		if s.Workers < 1 || s.Replicas < 1 {
			return nil, fmt.Errorf("fxrt: stage %d (%s) has workers=%d replicas=%d",
				i, s.Name, s.Workers, s.Replicas)
		}
		if s.Run == nil {
			return nil, fmt.Errorf("fxrt: stage %d (%s) has no Run", i, s.Name)
		}
	}
	s := &Stream{
		p:       p,
		edges:   opts.Edges,
		rec:     NewRecorder(),
		inbox:   make([]chan sEnvelope, l+1),
		quit:    make(chan struct{}),
		release: make(chan struct{}),
		drained: make(chan struct{}),
		start:   time.Now(),
		live:    make([]atomic.Int32, l),
	}
	for i := 0; i <= l; i++ {
		capacity := opts.Inbox
		if capacity <= 0 {
			reps := 1
			if i < l {
				reps = p.Stages[i].Replicas
			}
			capacity = 2 * reps
			if capacity < 4 {
				capacity = 4
			}
		}
		s.inbox[i] = make(chan sEnvelope, capacity)
	}
	for i := 0; i < l; i++ {
		s.live[i].Store(int32(p.Stages[i].Replicas))
		for b := 0; b < p.Stages[i].Replicas; b++ {
			s.wg.Add(1)
			go func(i, b int) {
				defer s.wg.Done()
				s.instance(i, b)
			}(i, b)
		}
	}
	s.wg.Add(1)
	go s.sink()
	p.Monitor.Start()
	return s, nil
}

// Push submits one data set and returns the channel (buffered, never
// blocking the sink) on which its result will be delivered. Push blocks
// while the first stage's inbox is full — that is the backpressure signal
// an admission queue converts into shedding — until ctx is done. A nil ctx
// never expires.
func (s *Stream) Push(ctx context.Context, ds DataSet) (<-chan StreamResult, error) {
	return s.PushTraced(ctx, ds, nil)
}

// PushTraced is Push with a request trace attached: every stage attempt
// (including retries and drops) records a span on rt. A nil rt is exactly
// Push.
func (s *Stream) PushTraced(ctx context.Context, ds DataSet, rt *obs.ReqTrace) (<-chan StreamResult, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrStreamClosed
	}
	s.inflight++
	s.mu.Unlock()
	env := sEnvelope{
		idx: int(s.seq.Add(1) - 1),
		ds:  ds,
		t0:  time.Now(),
		res: make(chan StreamResult, 1),
		rt:  rt,
	}
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	select {
	case s.inbox[0] <- env:
		return env.res, nil
	case <-done:
		s.doneOne()
		return nil, ctx.Err()
	}
}

// InFlight reports the number of pushed data sets not yet resolved.
func (s *Stream) InFlight() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inflight
}

// Closed reports whether Close has begun (the stream rejects pushes).
func (s *Stream) Closed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// doneOne retires one in-flight data set and completes the drain when the
// stream is closed and empty.
func (s *Stream) doneOne() {
	s.mu.Lock()
	s.inflight--
	if s.closed && s.inflight == 0 {
		close(s.drained)
	}
	s.mu.Unlock()
}

// Close stops admitting, waits for every in-flight data set to resolve
// (each submitter receives its result — graceful drain loses nothing),
// then stops the stage instances and returns the stream's cumulative
// statistics. Close is idempotent and safe to call concurrently.
func (s *Stream) Close() Stats {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		if s.inflight == 0 {
			close(s.drained)
		}
	}
	s.mu.Unlock()
	<-s.drained
	s.stop.Do(func() {
		close(s.quit)
		close(s.release)
	})
	s.wg.Wait()
	s.p.Monitor.Finish()
	return s.Stats()
}

// Stats snapshots the stream's cumulative statistics. DataSets counts
// resolved data sets (completed plus dropped); windowed rates live on the
// pipeline's Monitor.
func (s *Stream) Stats() Stats {
	completed := s.completed.Load()
	dropped := s.droppedN.Load()
	st := Stats{
		DataSets: int(completed + dropped),
		Elapsed:  time.Since(s.start),
		Ops:      s.rec.Means(),
		OpStats:  s.rec.Summary(),
		Retried:  int(s.retried.Load()),
		Dropped:  int(dropped),
		Timeouts: int(s.timeouts.Load()),
		Dead:     int(s.deaths.Load()),
	}
	if st.Elapsed > 0 {
		st.Throughput = float64(completed) / st.Elapsed.Seconds()
	}
	return st
}

// instance is the body of one stage replica.
func (s *Stream) instance(i, b int) {
	st := s.p.Stages[i]
	g, _ := NewGroup(st.Workers) // Workers >= 1 was validated in Stream
	var attempts sync.WaitGroup
	if g != nil {
		// Abandoned (timed-out) attempts may still be running on the group;
		// close it only after they finish, without blocking shutdown.
		defer func() {
			go func() {
				attempts.Wait()
				g.Close()
			}()
		}()
	}
	ctx := &StageCtx{Group: g, Instance: b, Rec: s.rec}
	deadline := s.p.deadlineFor(i)
	maxAttempts := s.p.Retry.MaxRetries + 1
	consecFail := 0
	for {
		select {
		case env := <-s.inbox[i]:
			if s.process(ctx, i, b, st, deadline, &attempts, maxAttempts, &consecFail, env) {
				return // instance died
			}
		case <-s.quit:
			return
		}
	}
}

// process runs one envelope through stage i on instance b, retrying per
// the pipeline policy. It reports true when the instance declared itself
// dead (the envelope was requeued to a surviving replica).
func (s *Stream) process(ctx *StageCtx, i, b int, st Stage, deadline time.Duration,
	attempts *sync.WaitGroup, maxAttempts int, consecFail *int, env sEnvelope) bool {
	if env.dropped {
		s.forward(i, env)
		return false
	}
	mon := s.p.Monitor
	for {
		t0 := time.Now()
		out, err, timedOut := attemptOnce(s.p, s.rec, s.edges, s.release,
			ctx, i, b, st, deadline, attempts, env.ds, env.idx, env.attempts)
		if err == nil {
			env.rt.StageSpan(st.Name, i, b, env.attempts, "ok", t0, time.Since(t0))
			mon.StageDone(i, time.Since(t0).Seconds())
			env.ds = out
			env.attempts = 0
			*consecFail = 0
			s.forward(i, env)
			return false
		}
		outcome := "error"
		if timedOut {
			outcome = "timeout"
		}
		env.rt.StageSpan(st.Name, i, b, env.attempts, outcome, t0, time.Since(t0))
		env.attempts++
		env.err = err
		*consecFail++
		if timedOut {
			s.timeouts.Add(1)
			mon.StageTimeout(i, env.idx)
		}
		if s.p.DeadAfter > 0 && *consecFail >= s.p.DeadAfter {
			// Die only if another live instance remains to serve the
			// stream; the last instance soldiers on.
			if s.live[i].Add(-1) >= 1 {
				s.deaths.Add(1)
				mon.InstanceDeath(i, env.idx)
				env.rt.Instant("stage", st.Name, "instance death; requeued")
				env.attempts = 0 // fresh budget on a surviving instance
				s.requeue(i, env)
				return true
			}
			s.live[i].Add(1)
		}
		if env.attempts >= maxAttempts {
			s.drop(i, &env)
			s.forward(i, env)
			return false
		}
		s.retried.Add(1)
		mon.StageRetry(i, env.idx)
		if d := s.p.Retry.BackoffFor(env.attempts); d > 0 {
			time.Sleep(d)
		}
	}
}

// drop tombstones env after stage i exhausted its attempts; the sink
// resolves it with the last attempt's error.
func (s *Stream) drop(i int, env *sEnvelope) {
	env.dropped = true
	if env.err == nil {
		env.err = fmt.Errorf("fxrt: data set %d dropped at stage %s", env.idx, s.p.Stages[i].Name)
	}
	env.ds = nil
	s.droppedN.Add(1)
	s.p.Monitor.StageDrop(i, env.idx)
	env.rt.Instant("stage", s.p.Stages[i].Name, "dropped: attempts exhausted")
}

// forward hands env to the next stage (or the sink). The send may block on
// a full inbox — that is the backpressure path — but never deadlocks:
// every stage keeps at least one live consumer, the sink always consumes,
// and quit is only closed after in-flight drains to zero.
func (s *Stream) forward(i int, env sEnvelope) {
	env.attempts = 0
	s.inbox[i+1] <- env
}

// requeue returns env to the stage's own inbox so a surviving instance
// picks it up. The inbox is bounded, so a dying instance must never block
// on itself: when full, the data set resolves as dropped instead.
func (s *Stream) requeue(i int, env sEnvelope) {
	select {
	case s.inbox[i] <- env:
	default:
		s.drop(i, &env)
		s.forward(i, env)
	}
}

// sink resolves envelopes to their submitters.
func (s *Stream) sink() {
	defer s.wg.Done()
	l := len(s.p.Stages)
	mon := s.p.Monitor
	for {
		select {
		case env := <-s.inbox[l]:
			lat := time.Since(env.t0)
			if env.dropped {
				env.res <- StreamResult{Err: env.err, Latency: lat}
			} else {
				s.completed.Add(1)
				mon.Completed(lat.Seconds())
				env.res <- StreamResult{DS: env.ds, Latency: lat}
			}
			s.doneOne()
		case <-s.quit:
			return
		}
	}
}
