package fxrt

import (
	"strings"
	"testing"
	"time"

	"pipemap/internal/model"
	"pipemap/internal/obs/live"
)

// monitorChain mirrors the simulator tests' 3-task chain: two modules, the
// first replicated twice.
func monitorChain() model.Mapping {
	c := &model.Chain{
		Tasks: []model.Task{
			{Name: "a", Exec: model.PolyExec{C2: 4}, Replicable: true},
			{Name: "b", Exec: model.PolyExec{C2: 4}, Replicable: true},
			{Name: "c", Exec: model.PolyExec{C1: 0.1, C2: 2}, Replicable: true},
		},
		ICom: []model.CostFunc{model.PolyExec{C1: 0.05, C2: 0.5}, model.ZeroExec()},
		ECom: []model.CommFunc{
			model.PolyComm{C1: 0.05, C2: 0.5, C3: 0.5},
			model.PolyComm{C1: 0.05, C2: 0.5, C3: 0.5},
		},
	}
	return model.Mapping{Chain: c, Modules: []model.Module{
		{Lo: 0, Hi: 1, Procs: 2, Replicas: 2},
		{Lo: 1, Hi: 3, Procs: 4, Replicas: 1},
	}}
}

func TestModelPipeline(t *testing.T) {
	m := monitorChain()
	p, err := ModelPipeline(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Stages) != 2 {
		t.Fatalf("stages = %d, want 2", len(p.Stages))
	}
	if p.Stages[0].Name != "a" || p.Stages[0].Replicas != 2 {
		t.Errorf("stage 0 = %+v, want name a, r=2", p.Stages[0])
	}
	if p.Stages[1].Name != "b+c" || p.Stages[1].Replicas != 1 {
		t.Errorf("stage 1 = %+v, want name b+c, r=1", p.Stages[1])
	}
	if _, err := ModelPipeline(model.Mapping{}, 1); err == nil {
		t.Error("empty mapping accepted")
	}
}

func TestModelPipelineRunsWithMonitor(t *testing.T) {
	m := monitorChain()
	// Large speedup compresses the multi-second model times into
	// microseconds so the test stays fast.
	const speedup = 1e5
	p, err := ModelPipeline(m, speedup)
	if err != nil {
		t.Fatal(err)
	}
	p.Retry = RetryPolicy{MaxRetries: 1}
	mon := live.NewMonitor(live.ConfigFromMapping(m).Scale(speedup))
	p.Monitor = mon

	const n = 40
	stats, err := p.Run(func(i int) DataSet { return i }, n, 0)
	if err != nil {
		t.Fatal(err)
	}
	if stats.DataSets != n || stats.Dropped != 0 {
		t.Fatalf("stats = %+v, want %d data sets, 0 dropped", stats, n)
	}
	h := mon.Health()
	if !h.Started || !h.Finished {
		t.Errorf("health started/finished = %v/%v, want true/true", h.Started, h.Finished)
	}
	if h.Completed != n {
		t.Errorf("completed = %d, want %d", h.Completed, n)
	}
	for i, sh := range h.Stages {
		if sh.Completed != n {
			t.Errorf("stage %d completed = %d, want %d", i, sh.Completed, n)
		}
	}
	if h.Status != "nominal" || !h.Ready {
		t.Errorf("status = %q ready=%v, want nominal/ready", h.Status, h.Ready)
	}
}

func TestMonitorObservesFaults(t *testing.T) {
	p := &Pipeline{
		Stages: []Stage{
			{Name: "front", Workers: 1, Replicas: 2,
				Run: func(_ *StageCtx, in DataSet) (DataSet, error) { return in, nil }},
			{Name: "back", Workers: 1, Replicas: 1,
				Run: func(_ *StageCtx, in DataSet) (DataSet, error) { return in, nil }},
		},
		Retry:     RetryPolicy{MaxRetries: 1},
		DeadAfter: 2,
		// Instance 0 of the front stage fails every attempt: it retries,
		// dies, and its data sets requeue to the survivor.
		Faults: []Fault{{Stage: 0, Instance: 0, DataSet: -1, Kind: FaultFail}},
	}
	mon := live.NewMonitor(live.ConfigFromMapping(monitorChain()))
	p.Monitor = mon

	const n = 30
	stats, err := p.Run(func(i int) DataSet { return i }, n, 0)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Dead != 1 {
		t.Fatalf("stats.Dead = %d, want 1", stats.Dead)
	}
	h := mon.Health()
	if h.Deaths != 1 || h.Stages[0].Live != 1 {
		t.Errorf("monitor deaths=%d live=%d, want 1/1", h.Deaths, h.Stages[0].Live)
	}
	if h.Status != "degraded" || h.Ready {
		t.Errorf("status = %q ready=%v, want degraded/not-ready", h.Status, h.Ready)
	}
	if !strings.Contains(h.Reason, "death") {
		t.Errorf("reason = %q, want mention of death", h.Reason)
	}
	if int(h.Retries) != stats.Retried {
		t.Errorf("monitor retries = %d, stats retried = %d", h.Retries, stats.Retried)
	}
	if h.Completed != int64(n-stats.Dropped) {
		t.Errorf("monitor completed = %d, want %d", h.Completed, n-stats.Dropped)
	}
	// The event stream carries the death with stage attribution.
	var sawDeath bool
	for _, ev := range mon.Events().History() {
		if ev.Kind == "death" && ev.Stage == "a" {
			sawDeath = true
		}
	}
	if !sawDeath {
		t.Errorf("no death event in history: %+v", mon.Events().History())
	}
}

func TestMonitorObservesTimeoutsAndDrops(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	p := &Pipeline{
		Stages: []Stage{
			{Name: "only", Workers: 1, Replicas: 2,
				Run: func(_ *StageCtx, in DataSet) (DataSet, error) {
					if in.(int) == 3 {
						<-block // hang data set 3 on every attempt
					}
					return in, nil
				}},
		},
		Retry:         RetryPolicy{MaxRetries: 1},
		StageDeadline: 20 * time.Millisecond,
	}
	mon := live.NewMonitor(live.Config{Stages: []live.StageInfo{{Name: "only", Replicas: 2}}})
	p.Monitor = mon
	stats, err := p.Run(func(i int) DataSet { return i }, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Dropped != 1 || stats.Timeouts != 2 {
		t.Fatalf("stats = %+v, want 1 dropped, 2 timeouts", stats)
	}
	h := mon.Health()
	if h.Drops != 1 || h.Timeouts != 2 {
		t.Errorf("monitor drops=%d timeouts=%d, want 1/2", h.Drops, h.Timeouts)
	}
	if h.Status != "degraded" {
		t.Errorf("status = %q, want degraded (window drops)", h.Status)
	}
	if h.Completed != 7 {
		t.Errorf("completed = %d, want 7", h.Completed)
	}
}

// TestStrictExecutorIgnoresMonitor documents that only the fault-tolerant
// executor reports: a Monitor alone must not change executor routing.
func TestStrictExecutorIgnoresMonitor(t *testing.T) {
	p := &Pipeline{
		Stages: []Stage{{Name: "s", Workers: 1, Replicas: 1,
			Run: func(_ *StageCtx, in DataSet) (DataSet, error) { return in, nil }}},
	}
	mon := live.NewMonitor(live.Config{Stages: []live.StageInfo{{Name: "s", Replicas: 1}}})
	p.Monitor = mon
	if p.faultTolerant() {
		t.Fatal("Monitor alone routed to the fault-tolerant executor")
	}
	if _, err := p.Run(func(i int) DataSet { return i }, 10, 0); err != nil {
		t.Fatal(err)
	}
	if got := mon.Health().Completed; got != 0 {
		t.Errorf("strict executor reported %d completions to the monitor", got)
	}
}
