package fxrt

import (
	"fmt"
	"testing"
	"time"

	"pipemap/internal/obs"
)

// TestRecorderTimeRecordsErrorsSeparately is the regression test for the
// bug where Recorder.Time recorded failed operations under the bare name,
// silently mixing failed-attempt costs into the success samples. Failures
// must land under name+"/error".
func TestRecorderTimeRecordsErrorsSeparately(t *testing.T) {
	r := NewRecorder()
	if err := r.Time("op", func() error { return nil }); err != nil {
		t.Fatal(err)
	}
	wantErr := fmt.Errorf("boom")
	if err := r.Time("op", func() error { return wantErr }); err != wantErr {
		t.Fatalf("Time swallowed the error: got %v", err)
	}
	sum := r.Summary()
	if sum["op"].Count != 1 {
		t.Errorf("op count = %d, want 1 (success only)", sum["op"].Count)
	}
	if sum["op/error"].Count != 1 {
		t.Errorf("op/error count = %d, want 1", sum["op/error"].Count)
	}
	if _, ok := sum["op/error"]; !ok {
		t.Error("failed attempt lost: no op/error entry")
	}
}

// traceIndex groups collected events for assertions.
type traceIndex struct {
	spans       []obs.Event // phase X, cat "stage"
	instants    map[string][]obs.Event
	threadNames map[int]string
}

func indexTrace(events []obs.Event) traceIndex {
	ix := traceIndex{instants: map[string][]obs.Event{}, threadNames: map[int]string{}}
	for _, e := range events {
		switch e.Phase {
		case "X":
			if e.Cat == "stage" {
				ix.spans = append(ix.spans, e)
			}
		case "i":
			ix.instants[e.Name] = append(ix.instants[e.Name], e)
		case "M":
			if e.Name == "thread_name" {
				ix.threadNames[e.TID], _ = e.Args["name"].(string)
			}
		}
	}
	return ix
}

func outcomes(spans []obs.Event) map[string]int {
	m := map[string]int{}
	for _, e := range spans {
		o, _ := e.Args["outcome"].(string)
		m[o]++
	}
	return m
}

// TestFTRunTraceSpansAndRetries checks the runtime tracing contract: one
// span per data set × stage × attempt, with failed attempts marked
// "error", dropped data sets marked by a "drop" instant, and each stage
// instance labelled via thread_name metadata.
func TestFTRunTraceSpansAndRetries(t *testing.T) {
	tr := obs.NewTracer()
	const n = 20
	p := &Pipeline{
		Stages: []Stage{workStage("w", 2, 0, nil)},
		Retry:  RetryPolicy{MaxRetries: 2, Backoff: time.Millisecond},
		Faults: []Fault{
			// Data set 3 fails once then heals: one "error" + one "ok" span.
			{Stage: 0, Instance: -1, DataSet: 3, Kind: FaultFail, Attempts: 1},
			// Data set 7 fails every attempt: exhausted → "drop" instant.
			{Stage: 0, Instance: -1, DataSet: 7, Kind: FaultFail},
		},
		Obs: tr,
	}
	stats, err := p.Run(func(i int) DataSet { return i }, n, 2)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Dropped != 1 {
		t.Fatalf("dropped = %d, want 1", stats.Dropped)
	}
	ix := indexTrace(tr.Events())

	// n-1 data sets succeed once, data set 3 needs 2 attempts, data set 7
	// burns all 3 attempts before dropping.
	wantSpans := (n - 2) + 2 + 3
	if len(ix.spans) != wantSpans {
		t.Errorf("stage spans = %d, want %d", len(ix.spans), wantSpans)
	}
	oc := outcomes(ix.spans)
	if oc["ok"] != n-1 {
		t.Errorf("ok spans = %d, want %d", oc["ok"], n-1)
	}
	if oc["error"] != 4 { // 1 (data set 3) + 3 (data set 7)
		t.Errorf("error spans = %d, want 4", oc["error"])
	}
	if len(ix.instants["drop"]) != 1 {
		t.Errorf("drop instants = %d, want 1", len(ix.instants["drop"]))
	}
	if d := ix.instants["drop"][0]; d.Args["dataset"] != 7 || d.Args["stage"] != "w" {
		t.Errorf("drop instant args wrong: %+v", d.Args)
	}
	// Both stage instances must be named rows.
	if ix.threadNames[0] != "w/0" || ix.threadNames[1] != "w/1" {
		t.Errorf("thread names wrong: %+v", ix.threadNames)
	}
	// Attempt numbers: data set 3's spans carry attempts 0 then 1.
	var ds3 []int
	for _, e := range ix.spans {
		if e.Args["dataset"] == 3 {
			ds3 = append(ds3, e.Args["attempt"].(int))
		}
	}
	if len(ds3) != 2 || ds3[0] != 0 || ds3[1] != 1 {
		t.Errorf("data set 3 attempts = %v, want [0 1]", ds3)
	}
}

// TestFTRunTraceDeathAndTimeout checks the instance-death instant and the
// "timeout" span outcome.
func TestFTRunTraceDeathAndTimeout(t *testing.T) {
	tr := obs.NewTracer()
	p := &Pipeline{
		Stages:    []Stage{workStage("w", 3, time.Millisecond, nil)},
		Retry:     RetryPolicy{MaxRetries: 1},
		DeadAfter: 1,
		Faults:    []Fault{{Stage: 0, Instance: 1, DataSet: -1, Kind: FaultFail}},
		Obs:       tr,
	}
	stats, err := p.Run(func(i int) DataSet { return i }, 30, 5)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Dead != 1 {
		t.Fatalf("dead = %d, want 1", stats.Dead)
	}
	ix := indexTrace(tr.Events())
	deaths := ix.instants["instance-death"]
	if len(deaths) != 1 {
		t.Fatalf("instance-death instants = %d, want 1", len(deaths))
	}
	if deaths[0].TID != 1 || deaths[0].Args["stage"] != "w" {
		t.Errorf("death instant wrong: tid=%d args=%+v", deaths[0].TID, deaths[0].Args)
	}

	tr2 := obs.NewTracer()
	p2 := &Pipeline{
		Stages:        []Stage{workStage("w", 2, 0, nil)},
		StageDeadline: 20 * time.Millisecond,
		Faults:        []Fault{{Stage: 0, Instance: -1, DataSet: 2, Kind: FaultHang}},
		Obs:           tr2,
	}
	stats2, err := p2.Run(func(i int) DataSet { return i }, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	if stats2.Timeouts < 1 {
		t.Fatalf("timeouts = %d, want >= 1", stats2.Timeouts)
	}
	oc := outcomes(indexTrace(tr2.Events()).spans)
	if oc["timeout"] < 1 {
		t.Errorf("no span with outcome timeout: %+v", oc)
	}
}

// TestFTRunTidsUniquePerInstance checks that multi-stage pipelines give
// every stage instance its own trace row (tid), offset by the replica
// counts of earlier stages.
func TestFTRunTidsUniquePerInstance(t *testing.T) {
	tr := obs.NewTracer()
	p := &Pipeline{
		Stages: []Stage{
			workStage("a", 2, 0, nil),
			workStage("b", 3, 0, nil),
		},
		Retry: RetryPolicy{MaxRetries: 1}, // any FT option routes through ftRun
		Obs:   tr,
	}
	if _, err := p.Run(func(i int) DataSet { return i }, 20, 2); err != nil {
		t.Fatal(err)
	}
	ix := indexTrace(tr.Events())
	want := map[int]string{0: "a/0", 1: "a/1", 2: "b/0", 3: "b/1", 4: "b/2"}
	for tid, name := range want {
		if ix.threadNames[tid] != name {
			t.Errorf("tid %d named %q, want %q", tid, ix.threadNames[tid], name)
		}
	}
	// Every span's tid must belong to the stage it names.
	for _, e := range ix.spans {
		switch e.Name {
		case "a":
			if e.TID > 1 {
				t.Errorf("stage a span on tid %d", e.TID)
			}
		case "b":
			if e.TID < 2 || e.TID > 4 {
				t.Errorf("stage b span on tid %d", e.TID)
			}
		}
	}
}

// TestExportMetrics checks that a run's statistics land in an obs.Registry
// under the fxrt. prefix, including per-op histograms with true envelopes.
func TestExportMetrics(t *testing.T) {
	p := &Pipeline{
		Stages: []Stage{{Name: "rec", Workers: 1, Replicas: 2,
			Run: func(ctx *StageCtx, in DataSet) (DataSet, error) {
				return in, ctx.Rec.Time("op", func() error {
					time.Sleep(100 * time.Microsecond)
					return nil
				})
			}}},
		Retry:  RetryPolicy{MaxRetries: 2, Backoff: time.Millisecond},
		Faults: []Fault{{Stage: 0, Instance: -1, DataSet: 1, Kind: FaultFail, Attempts: 1}},
	}
	stats, err := p.Run(func(i int) DataSet { return i }, 15, 2)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	stats.ExportMetrics(reg)
	s := reg.Snapshot()
	if s.Counters["fxrt.datasets"] != 15 {
		t.Errorf("fxrt.datasets = %d, want 15", s.Counters["fxrt.datasets"])
	}
	if s.Counters["fxrt.retried"] < 1 {
		t.Errorf("fxrt.retried = %d, want >= 1", s.Counters["fxrt.retried"])
	}
	if s.Gauges["fxrt.throughput"] <= 0 {
		t.Errorf("fxrt.throughput = %g, want > 0", s.Gauges["fxrt.throughput"])
	}
	op := s.Histograms["fxrt.op.op"]
	if op.Count != 15 {
		t.Errorf("fxrt.op.op count = %d, want 15", op.Count)
	}
	if op.Min <= 0 || op.Max < op.Min {
		t.Errorf("fxrt.op.op envelope wrong: min=%g max=%g", op.Min, op.Max)
	}
	// Nil registry: no-op, no panic.
	stats.ExportMetrics(nil)
}
