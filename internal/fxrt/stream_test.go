package fxrt

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// echoPipeline returns a pipeline that increments an int data set at every
// stage.
func echoPipeline(stages, replicas int) *Pipeline {
	p := &Pipeline{}
	for i := 0; i < stages; i++ {
		p.Stages = append(p.Stages, Stage{
			Name: fmt.Sprintf("s%d", i), Workers: 1, Replicas: replicas,
			Run: func(_ *StageCtx, in DataSet) (DataSet, error) {
				return in.(int) + 1, nil
			},
		})
	}
	return p
}

func TestStreamDeliversResults(t *testing.T) {
	s, err := echoPipeline(3, 1).Stream(StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		res, err := s.Push(context.Background(), i)
		if err != nil {
			t.Fatalf("push %d: %v", i, err)
		}
		r := <-res
		if r.Err != nil {
			t.Fatalf("data set %d: %v", i, r.Err)
		}
		if got := r.DS.(int); got != i+3 {
			t.Fatalf("data set %d: got %d, want %d", i, got, i+3)
		}
		if r.Latency <= 0 {
			t.Fatalf("data set %d: non-positive latency %v", i, r.Latency)
		}
	}
	st := s.Close()
	if st.DataSets != 10 || st.Dropped != 0 {
		t.Fatalf("stats = %+v, want 10 data sets, 0 dropped", st)
	}
}

func TestStreamResolvesFailuresAsErrors(t *testing.T) {
	p := echoPipeline(2, 1)
	p.Retry = RetryPolicy{MaxRetries: 1}
	// Data set 3 fails every attempt at stage 1; everything else flows.
	p.Faults = []Fault{{Stage: 1, Instance: -1, DataSet: 3, Kind: FaultFail}}
	s, err := p.Stream(StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var failed, ok int
	for i := 0; i < 8; i++ {
		res, err := s.Push(context.Background(), i)
		if err != nil {
			t.Fatal(err)
		}
		if r := <-res; r.Err != nil {
			failed++
		} else {
			ok++
		}
	}
	st := s.Close()
	if failed != 1 || ok != 7 {
		t.Fatalf("failed=%d ok=%d, want 1/7", failed, ok)
	}
	if st.Dropped != 1 || st.Retried == 0 {
		t.Fatalf("stats = %+v, want 1 dropped with retries", st)
	}
}

func TestStreamBackpressureBoundedInbox(t *testing.T) {
	gate := make(chan struct{})
	p := &Pipeline{Stages: []Stage{{
		Name: "slow", Workers: 1, Replicas: 1,
		Run: func(_ *StageCtx, in DataSet) (DataSet, error) {
			<-gate
			return in, nil
		},
	}}}
	s, err := p.Stream(StreamOptions{Inbox: 1})
	if err != nil {
		t.Fatal(err)
	}
	// One data set occupies the instance, one fills the inbox; the third
	// push must block until its context expires.
	var results []<-chan StreamResult
	for i := 0; i < 2; i++ {
		res, err := s.Push(context.Background(), i)
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, res)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, err := s.Push(ctx, 99); err == nil {
		t.Fatal("push into a full pipeline succeeded, want backpressure block + ctx expiry")
	} else if context.DeadlineExceeded != err {
		t.Fatalf("push error = %v, want context.DeadlineExceeded", err)
	}
	if time.Since(start) < 20*time.Millisecond {
		t.Fatal("push returned before the context expired — inbox not bounded?")
	}
	close(gate)
	for _, res := range results {
		if r := <-res; r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	if st := s.Close(); st.DataSets != 2 {
		t.Fatalf("stats = %+v, want exactly the 2 admitted data sets", st)
	}
}

func TestStreamCloseDrainsZeroLoss(t *testing.T) {
	p := &Pipeline{Stages: []Stage{{
		Name: "slow", Workers: 1, Replicas: 2,
		Run: func(_ *StageCtx, in DataSet) (DataSet, error) {
			time.Sleep(time.Millisecond)
			return in, nil
		},
	}}}
	s, err := p.Stream(StreamOptions{Inbox: 8})
	if err != nil {
		t.Fatal(err)
	}
	var accepted, resolved atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				res, err := s.Push(context.Background(), w*100+i)
				if err != nil {
					return // closed mid-loop: expected
				}
				accepted.Add(1)
				go func() {
					<-res
					resolved.Add(1)
				}()
			}
		}(w)
	}
	time.Sleep(10 * time.Millisecond)
	st := s.Close()
	wg.Wait()
	// Every accepted push must have resolved by the time Close returned.
	deadline := time.Now().Add(time.Second)
	for resolved.Load() != accepted.Load() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if resolved.Load() != accepted.Load() {
		t.Fatalf("accepted %d but resolved %d — graceful drain lost in-flight work",
			accepted.Load(), resolved.Load())
	}
	if st.DataSets != int(accepted.Load()) {
		t.Fatalf("stats count %d != accepted %d", st.DataSets, accepted.Load())
	}
	if _, err := s.Push(context.Background(), 1); err != ErrStreamClosed {
		t.Fatalf("push after close = %v, want ErrStreamClosed", err)
	}
}

func TestStreamInstanceDeathFailsOver(t *testing.T) {
	p := echoPipeline(1, 2)
	p.Retry = RetryPolicy{MaxRetries: 3}
	p.DeadAfter = 2
	p.Faults = []Fault{{Stage: 0, Instance: 0, DataSet: -1, Kind: FaultFail}}
	s, err := p.Stream(StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		res, err := s.Push(context.Background(), i)
		if err != nil {
			t.Fatal(err)
		}
		if r := <-res; r.Err != nil {
			t.Fatalf("data set %d lost to a failing instance: %v (survivor should absorb)", i, r.Err)
		}
	}
	st := s.Close()
	if st.Dead != 1 {
		t.Fatalf("stats = %+v, want exactly 1 instance death", st)
	}
}

func TestStreamConcurrentHammer(t *testing.T) {
	p := echoPipeline(2, 2)
	p.Retry = RetryPolicy{MaxRetries: 1}
	s, err := p.Stream(StreamOptions{Inbox: 4})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	var ok atomic.Int64
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				res, err := s.Push(context.Background(), i)
				if err != nil {
					t.Errorf("push: %v", err)
					return
				}
				if r := <-res; r.Err != nil {
					t.Errorf("result: %v", r.Err)
					return
				}
				ok.Add(1)
			}
		}(w)
	}
	wg.Wait()
	st := s.Close()
	if ok.Load() != 400 || st.DataSets != 400 {
		t.Fatalf("ok=%d stats=%+v, want 400", ok.Load(), st)
	}
}
