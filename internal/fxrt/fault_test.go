package fxrt

import (
	"sync/atomic"
	"testing"
	"time"
)

// workStage returns a stage doing d of busy-sleep per data set.
func workStage(name string, replicas int, d time.Duration, processed *int32) Stage {
	return Stage{Name: name, Workers: 1, Replicas: replicas,
		Run: func(ctx *StageCtx, in DataSet) (DataSet, error) {
			if d > 0 {
				time.Sleep(d)
			}
			if processed != nil {
				atomic.AddInt32(processed, 1)
			}
			return in, nil
		}}
}

func TestTransientFailureCompletesViaRetries(t *testing.T) {
	results := make([]int64, 40)
	p := &Pipeline{
		Stages: []Stage{
			{Name: "sq", Workers: 1, Replicas: 2, Run: func(ctx *StageCtx, in DataSet) (DataSet, error) {
				v := in.(int)
				return [2]int{v, v * v}, nil
			}},
			{Name: "store", Workers: 1, Replicas: 1, Run: func(ctx *StageCtx, in DataSet) (DataSet, error) {
				kv := in.([2]int)
				atomic.StoreInt64(&results[kv[0]], int64(kv[1]))
				return in, nil
			}},
		},
		Retry: RetryPolicy{MaxRetries: 3, Backoff: time.Millisecond, MaxBackoff: 4 * time.Millisecond},
		// Data set 7 fails its first two attempts at stage 0, on any
		// instance, then heals.
		Faults: []Fault{{Stage: 0, Instance: -1, DataSet: 7, Kind: FaultFail, Attempts: 2}},
	}
	stats, err := p.Run(func(i int) DataSet { return i }, 40, 5)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Dropped != 0 {
		t.Errorf("dropped %d data sets, want 0", stats.Dropped)
	}
	if stats.Retried < 2 {
		t.Errorf("retried %d times, want >= 2", stats.Retried)
	}
	for i := range results {
		if results[i] != int64(i*i) {
			t.Errorf("results[%d] = %d, want %d", i, results[i], i*i)
		}
	}
}

func TestHungStageHitsDeadlineAndDrops(t *testing.T) {
	var processed int32
	p := &Pipeline{
		Stages: []Stage{
			workStage("w", 2, 0, &processed),
		},
		StageDeadline: 25 * time.Millisecond,
		// Data set 3 hangs forever on every attempt; with no retries it is
		// dropped after one deadline.
		Faults: []Fault{{Stage: 0, Instance: -1, DataSet: 3, Kind: FaultHang}},
	}
	n := 20
	stats, err := p.Run(func(i int) DataSet { return i }, n, 2)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Dropped != 1 {
		t.Errorf("dropped %d data sets, want 1", stats.Dropped)
	}
	if stats.Timeouts < 1 {
		t.Errorf("timeouts = %d, want >= 1", stats.Timeouts)
	}
	if int(processed) != n-1 {
		t.Errorf("processed %d data sets, want %d", processed, n-1)
	}
}

func TestDeadInstanceDegradesThroughputButCompletes(t *testing.T) {
	const n, work = 60, 3 * time.Millisecond
	run := func(faults []Fault) Stats {
		var processed int32
		p := &Pipeline{
			Stages:    []Stage{workStage("w", 3, work, &processed)},
			Retry:     RetryPolicy{MaxRetries: 1},
			DeadAfter: 1,
			Faults:    faults,
		}
		stats, err := p.Run(func(i int) DataSet { return i }, n, 10)
		if err != nil {
			t.Fatal(err)
		}
		if stats.Dropped != 0 {
			t.Fatalf("dropped %d data sets, want 0", stats.Dropped)
		}
		if int(processed) != n {
			t.Fatalf("processed %d data sets, want %d", processed, n)
		}
		return stats
	}
	healthy := run(nil)
	// Instance 1 fails permanently: after DeadAfter=1 failures it is
	// declared dead, its data set is requeued, and 2 of 3 replicas serve
	// the rest of the stream.
	degraded := run([]Fault{{Stage: 0, Instance: 1, DataSet: -1, Kind: FaultFail}})
	if degraded.Dead != 1 {
		t.Errorf("dead instances = %d, want 1", degraded.Dead)
	}
	if degraded.Throughput >= healthy.Throughput*0.9 {
		t.Errorf("throughput did not degrade: healthy %.1f/s, one replica dead %.1f/s",
			healthy.Throughput, degraded.Throughput)
	}
}

func TestLastInstanceNeverDies(t *testing.T) {
	p := &Pipeline{
		Stages:    []Stage{workStage("solo", 1, 0, nil)},
		DeadAfter: 1,
		// Every data set fails on the only instance: the instance must
		// stay in rotation and drop them all rather than abandoning the
		// stream.
		Faults: []Fault{{Stage: 0, Instance: -1, DataSet: -1, Kind: FaultFail}},
	}
	n := 10
	stats, err := p.Run(func(i int) DataSet { return i }, n, 1)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Dead != 0 {
		t.Errorf("dead instances = %d, want 0 (last instance must survive)", stats.Dead)
	}
	if stats.Dropped != n {
		t.Errorf("dropped %d, want all %d", stats.Dropped, n)
	}
}

func TestSlowFaultTimesOutThenRetrySucceeds(t *testing.T) {
	p := &Pipeline{
		Stages:        []Stage{workStage("w", 1, 0, nil)},
		StageDeadline: 20 * time.Millisecond,
		Retry:         RetryPolicy{MaxRetries: 2},
		// First attempt on data set 5 is slowed past the deadline; the
		// retry runs at full speed.
		Faults: []Fault{{Stage: 0, Instance: -1, DataSet: 5, Kind: FaultSlow,
			Attempts: 1, Delay: 200 * time.Millisecond}},
	}
	stats, err := p.Run(func(i int) DataSet { return i }, 15, 2)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Timeouts < 1 {
		t.Errorf("timeouts = %d, want >= 1", stats.Timeouts)
	}
	if stats.Dropped != 0 {
		t.Errorf("dropped %d, want 0", stats.Dropped)
	}
}

func TestFaultTolerantRunWithEdges(t *testing.T) {
	final := make([]int64, 30)
	var transfers int32
	p := &Pipeline{
		Stages: []Stage{
			{Name: "gen", Workers: 1, Replicas: 2, Run: func(ctx *StageCtx, in DataSet) (DataSet, error) {
				v := in.(int)
				return [2]int{v, v * 10}, nil
			}},
			{Name: "sink", Workers: 1, Replicas: 2, Run: func(ctx *StageCtx, in DataSet) (DataSet, error) {
				kv := in.([2]int)
				atomic.StoreInt64(&final[kv[0]], int64(kv[1]))
				return in, nil
			}},
		},
		Retry:  RetryPolicy{MaxRetries: 2, Backoff: time.Millisecond},
		Faults: []Fault{{Stage: 1, Instance: -1, DataSet: 11, Kind: FaultFail, Attempts: 1}},
	}
	edges := []Edge{{
		Name: "edge:inc",
		Transfer: func(recv *StageCtx, in DataSet) (DataSet, error) {
			atomic.AddInt32(&transfers, 1)
			kv := in.([2]int)
			kv[1]++
			return kv, nil
		},
	}}
	stats, err := p.RunWithEdges(func(i int) DataSet { return i }, 30, 4, edges)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Dropped != 0 || stats.Retried < 1 {
		t.Errorf("dropped=%d retried=%d, want 0 and >=1", stats.Dropped, stats.Retried)
	}
	// The transfer reruns with the retried attempt, so at least n runs.
	if int(transfers) < 30 {
		t.Errorf("transfer ran %d times, want >= 30", transfers)
	}
	for i := range final {
		if final[i] != int64(i*10+1) {
			t.Errorf("final[%d] = %d, want %d", i, final[i], i*10+1)
		}
	}
	if _, ok := stats.Ops["edge:inc"]; !ok {
		t.Errorf("transfer time not recorded: %v", stats.Ops)
	}
}

func TestSlowFaultVisibleInOpStats(t *testing.T) {
	p := &Pipeline{
		Stages: []Stage{{Name: "s", Workers: 1, Replicas: 2,
			Run: func(ctx *StageCtx, in DataSet) (DataSet, error) {
				return in, ctx.Rec.Time("exec:s", func() error {
					time.Sleep(time.Millisecond)
					return nil
				})
			}}},
		// Slow down instance 1 on every data set; Recorder max should sit
		// far above the mean.
		Faults: []Fault{{Stage: 0, Instance: 1, DataSet: 4, Kind: FaultSlow, Delay: 30 * time.Millisecond}},
	}
	// The injected delay happens before st.Run, so record inside the stage
	// only shows base time; instead check OpStats plumbing end to end.
	stats, err := p.Run(func(i int) DataSet { return i }, 20, 2)
	if err != nil {
		t.Fatal(err)
	}
	st, ok := stats.OpStats["exec:s"]
	if !ok {
		t.Fatalf("OpStats missing exec:s: %v", stats.OpStats)
	}
	if st.Count != 20 || st.Min <= 0 || st.Max < st.Min || st.Mean < st.Min || st.Mean > st.Max {
		t.Errorf("inconsistent OpStat: %+v", st)
	}
}

func TestBackoffCapped(t *testing.T) {
	rp := RetryPolicy{MaxRetries: 10, Backoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond}
	if d := rp.BackoffFor(1); d != time.Millisecond {
		t.Errorf("backoff(1) = %v", d)
	}
	if d := rp.BackoffFor(2); d != 2*time.Millisecond {
		t.Errorf("backoff(2) = %v", d)
	}
	if d := rp.BackoffFor(3); d != 4*time.Millisecond {
		t.Errorf("backoff(3) = %v", d)
	}
	if d := rp.BackoffFor(4); d != 5*time.Millisecond {
		t.Errorf("backoff(4) = %v, want capped at 5ms", d)
	}
	if d := rp.BackoffFor(30); d != 5*time.Millisecond {
		t.Errorf("backoff(30) = %v, want capped at 5ms", d)
	}
	if d := (RetryPolicy{}).BackoffFor(3); d != 0 {
		t.Errorf("zero policy backoff = %v, want 0", d)
	}
}

func TestValidationErrorsComeBeforeEdgeCount(t *testing.T) {
	// An empty pipeline must report "no stages", not a confusing edge
	// count mismatch.
	_, err := (&Pipeline{}).RunWithEdges(func(i int) DataSet { return i }, 10, 1, nil)
	if err == nil {
		t.Fatal("empty pipeline accepted")
	}
	if got := err.Error(); got != "fxrt: pipeline has no stages" {
		t.Errorf("empty pipeline error = %q, want the no-stages message", got)
	}
}
