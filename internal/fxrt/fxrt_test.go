package fxrt

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestGroupParallelForCoversRange(t *testing.T) {
	g, err := NewGroup(4)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	var hits [100]int32
	err = g.ParallelFor(100, func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&hits[i], 1)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d visited %d times", i, h)
		}
	}
}

func TestGroupParallelForEmptyAndSmall(t *testing.T) {
	g, err := NewGroup(8)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if err := g.ParallelFor(0, func(lo, hi int) error { return nil }); err != nil {
		t.Error(err)
	}
	// total < workers: each index once.
	var n int32
	if err := g.ParallelFor(3, func(lo, hi int) error {
		atomic.AddInt32(&n, int32(hi-lo))
		return nil
	}); err != nil {
		t.Error(err)
	}
	if n != 3 {
		t.Errorf("visited %d of 3", n)
	}
}

func TestGroupParallelForError(t *testing.T) {
	g, err := NewGroup(2)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	wantErr := fmt.Errorf("boom")
	err = g.ParallelFor(10, func(lo, hi int) error {
		if lo == 0 {
			return wantErr
		}
		return nil
	})
	if err == nil {
		t.Error("error swallowed")
	}
}

func TestNewGroupInvalid(t *testing.T) {
	if _, err := NewGroup(0); err == nil {
		t.Error("zero workers accepted")
	}
}

func TestGroupCloseIdempotent(t *testing.T) {
	g, err := NewGroup(1)
	if err != nil {
		t.Fatal(err)
	}
	g.Close()
	g.Close()
}

func TestPipelinePreservesOrderAndProcessesAll(t *testing.T) {
	var processed int32
	p := &Pipeline{Stages: []Stage{
		{Name: "double", Workers: 2, Replicas: 3, Run: func(ctx *StageCtx, in DataSet) (DataSet, error) {
			atomic.AddInt32(&processed, 1)
			return in.(int) * 2, nil
		}},
		{Name: "inc", Workers: 1, Replicas: 2, Run: func(ctx *StageCtx, in DataSet) (DataSet, error) {
			return in.(int) + 1, nil
		}},
	}}
	n := 50
	stats, err := p.Run(func(i int) DataSet { return i }, n, 5)
	if err != nil {
		t.Fatal(err)
	}
	if stats.DataSets != n || int(processed) != n {
		t.Errorf("processed %d data sets, want %d", processed, n)
	}
	if stats.Throughput <= 0 {
		t.Errorf("throughput %g", stats.Throughput)
	}
}

func TestPipelineComputesCorrectValues(t *testing.T) {
	// Route results to a results slice via the final stage and check every
	// data set was transformed exactly once despite replication.
	results := make([]int64, 64)
	p := &Pipeline{Stages: []Stage{
		{Name: "square", Workers: 1, Replicas: 4, Run: func(ctx *StageCtx, in DataSet) (DataSet, error) {
			v := in.(int)
			return [2]int{v, v * v}, nil
		}},
		{Name: "store", Workers: 1, Replicas: 2, Run: func(ctx *StageCtx, in DataSet) (DataSet, error) {
			kv := in.([2]int)
			atomic.StoreInt64(&results[kv[0]], int64(kv[1]))
			return in, nil
		}},
	}}
	if _, err := p.Run(func(i int) DataSet { return i }, 64, 8); err != nil {
		t.Fatal(err)
	}
	for i := range results {
		if results[i] != int64(i*i) {
			t.Fatalf("results[%d] = %d, want %d", i, results[i], i*i)
		}
	}
}

func TestPipelineReplicationImprovesThroughput(t *testing.T) {
	work := func(ctx *StageCtx, in DataSet) (DataSet, error) {
		time.Sleep(2 * time.Millisecond)
		return in, nil
	}
	run := func(reps int) float64 {
		p := &Pipeline{Stages: []Stage{{Name: "w", Workers: 1, Replicas: reps, Run: work}}}
		stats, err := p.Run(func(i int) DataSet { return i }, 60, 10)
		if err != nil {
			t.Fatal(err)
		}
		return stats.Throughput
	}
	t1 := run(1)
	t4 := run(4)
	if t4 < 2*t1 {
		t.Errorf("4 replicas gave %.1f/s vs %.1f/s for 1; expected ~4x", t4, t1)
	}
}

func TestPipelineErrorPropagates(t *testing.T) {
	p := &Pipeline{Stages: []Stage{
		{Name: "ok", Workers: 1, Replicas: 2, Run: func(ctx *StageCtx, in DataSet) (DataSet, error) {
			return in, nil
		}},
		{Name: "bad", Workers: 1, Replicas: 1, Run: func(ctx *StageCtx, in DataSet) (DataSet, error) {
			if in.(int) == 7 {
				return nil, fmt.Errorf("poison")
			}
			return in, nil
		}},
	}}
	if _, err := p.Run(func(i int) DataSet { return i }, 20, 2); err == nil {
		t.Error("stage error swallowed")
	}
}

func TestPipelineValidation(t *testing.T) {
	if _, err := (&Pipeline{}).Run(func(i int) DataSet { return i }, 10, 1); err == nil {
		t.Error("empty pipeline accepted")
	}
	p := &Pipeline{Stages: []Stage{{Name: "x", Workers: 0, Replicas: 1,
		Run: func(ctx *StageCtx, in DataSet) (DataSet, error) { return in, nil }}}}
	if _, err := p.Run(func(i int) DataSet { return i }, 10, 1); err == nil {
		t.Error("zero workers accepted")
	}
	p2 := &Pipeline{Stages: []Stage{{Name: "x", Workers: 1, Replicas: 1}}}
	if _, err := p2.Run(func(i int) DataSet { return i }, 10, 1); err == nil {
		t.Error("nil Run accepted")
	}
	p3 := &Pipeline{Stages: []Stage{{Name: "x", Workers: 1, Replicas: 1,
		Run: func(ctx *StageCtx, in DataSet) (DataSet, error) { return in, nil }}}}
	if _, err := p3.Run(func(i int) DataSet { return i }, 0, 0); err == nil {
		t.Error("zero data sets accepted")
	}
}

func TestPipelineErrorLeaksNoGoroutines(t *testing.T) {
	// A mid-stream stage error must wind down every stage instance and
	// worker Group: after Run returns, the goroutine count settles back to
	// its baseline (polled with retries to absorb scheduler lag).
	before := runtime.NumGoroutine()
	p := &Pipeline{Stages: []Stage{
		{Name: "a", Workers: 3, Replicas: 2, Run: func(ctx *StageCtx, in DataSet) (DataSet, error) {
			return in, nil
		}},
		{Name: "bad", Workers: 2, Replicas: 2, Run: func(ctx *StageCtx, in DataSet) (DataSet, error) {
			if in.(int) == 9 {
				return nil, fmt.Errorf("mid-stream failure")
			}
			return in, nil
		}},
	}}
	if _, err := p.Run(func(i int) DataSet { return i }, 30, 3); err == nil {
		t.Fatal("stage error swallowed")
	}
	var after int
	for attempt := 0; attempt < 100; attempt++ {
		after = runtime.NumGoroutine()
		if after <= before {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Errorf("goroutines leaked after failed run: %d before, %d after", before, after)
}

func TestRecorder(t *testing.T) {
	r := NewRecorder()
	r.Observe("op", 1.0)
	r.Observe("op", 3.0)
	if err := r.Time("timed", func() error { return nil }); err != nil {
		t.Fatal(err)
	}
	means := r.Means()
	if means["op"] != 2.0 {
		t.Errorf("mean = %g, want 2", means["op"])
	}
	if _, ok := means["timed"]; !ok {
		t.Error("timed op not recorded")
	}
}

func TestRecorderMinMax(t *testing.T) {
	r := NewRecorder()
	for _, v := range []float64{2.0, 0.5, 3.5, 1.0} {
		r.Observe("op", v)
	}
	s := r.Summary()["op"]
	if s.Min != 0.5 || s.Max != 3.5 {
		t.Errorf("min/max = %g/%g, want 0.5/3.5", s.Min, s.Max)
	}
	if s.Count != 4 {
		t.Errorf("count = %d, want 4", s.Count)
	}
	if want := (2.0 + 0.5 + 3.5 + 1.0) / 4; s.Mean != want {
		t.Errorf("mean = %g, want %g", s.Mean, want)
	}
	// A single sample is its own min, max and mean.
	r2 := NewRecorder()
	r2.Observe("one", 7)
	if s := r2.Summary()["one"]; s.Min != 7 || s.Max != 7 || s.Mean != 7 || s.Count != 1 {
		t.Errorf("single sample summary = %+v", s)
	}
	if len(NewRecorder().Summary()) != 0 {
		t.Error("empty recorder has non-empty summary")
	}
}

func TestPipelineOpsRecorded(t *testing.T) {
	p := &Pipeline{Stages: []Stage{
		{Name: "s", Workers: 2, Replicas: 1, Run: func(ctx *StageCtx, in DataSet) (DataSet, error) {
			err := ctx.Rec.Time("exec:s", func() error {
				return ctx.Group.ParallelFor(8, func(lo, hi int) error { return nil })
			})
			return in, err
		}},
	}}
	stats, err := p.Run(func(i int) DataSet { return i }, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := stats.Ops["exec:s"]; !ok {
		t.Errorf("ops missing exec:s: %v", stats.Ops)
	}
}

func TestBlockRangeCoversExactly(t *testing.T) {
	for _, tc := range []struct{ total, parts int }{
		{10, 3}, {7, 7}, {3, 8}, {100, 1}, {0, 4}, {64, 10},
	} {
		covered := 0
		prevHi := 0
		for p := 0; p < tc.parts; p++ {
			lo, hi := BlockRange(tc.total, tc.parts, p)
			if lo != prevHi {
				t.Errorf("total=%d parts=%d part=%d: lo %d != prev hi %d",
					tc.total, tc.parts, p, lo, prevHi)
			}
			if hi < lo {
				t.Errorf("negative block at part %d", p)
			}
			covered += hi - lo
			prevHi = hi
		}
		if covered != tc.total {
			t.Errorf("total=%d parts=%d: covered %d", tc.total, tc.parts, covered)
		}
		if prevHi != tc.total {
			t.Errorf("total=%d parts=%d: last hi %d", tc.total, tc.parts, prevHi)
		}
	}
}

func TestBlockRangeBalance(t *testing.T) {
	// Blocks differ by at most one item.
	min, max := 1<<30, 0
	for p := 0; p < 7; p++ {
		lo, hi := BlockRange(23, 7, p)
		if n := hi - lo; n < min {
			min = n
		} else if n > max {
			max = n
		}
	}
	if max-min > 1 {
		t.Errorf("block sizes differ by %d", max-min)
	}
}

func TestBlockRangeInvalid(t *testing.T) {
	if lo, hi := BlockRange(10, 0, 0); lo != 0 || hi != 0 {
		t.Error("zero parts should yield empty range")
	}
	if lo, hi := BlockRange(10, 3, 5); lo != 0 || hi != 0 {
		t.Error("out-of-range part should yield empty range")
	}
}

func TestParallelReduceSums(t *testing.T) {
	g, err := NewGroup(4)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	// Sum of squares over 16 parts.
	got, err := ParallelReduce(g, 16,
		func(part int) (int, error) { return part * part, nil },
		func(a, b int) (int, error) { return a + b, nil },
	)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for i := 0; i < 16; i++ {
		want += i * i
	}
	if got != want {
		t.Errorf("reduce = %d, want %d", got, want)
	}
}

func TestParallelReduceErrors(t *testing.T) {
	g, err := NewGroup(2)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if _, err := ParallelReduce(g, 0,
		func(int) (int, error) { return 0, nil },
		func(a, b int) (int, error) { return a + b, nil }); err == nil {
		t.Error("zero parts accepted")
	}
	if _, err := ParallelReduce(g, 4,
		func(p int) (int, error) {
			if p == 2 {
				return 0, fmt.Errorf("boom")
			}
			return p, nil
		},
		func(a, b int) (int, error) { return a + b, nil }); err == nil {
		t.Error("produce error swallowed")
	}
	if _, err := ParallelReduce(g, 4,
		func(p int) (int, error) { return p, nil },
		func(a, b int) (int, error) { return 0, fmt.Errorf("merge fail") }); err == nil {
		t.Error("combine error swallowed")
	}
}
