package fxrt

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"pipemap/internal/obs"
	"pipemap/internal/obs/live"
)

// DataSet is one unit of streaming data flowing through a pipeline.
type DataSet interface{}

// StageCtx is passed to a stage's work function.
type StageCtx struct {
	// Group is the instance's worker pool.
	Group *Group
	// Instance is the replica index of this stage instance.
	Instance int
	// Rec accumulates named operation timings for profiling.
	Rec *Recorder
}

// Stage is one module of a pipeline: a work function running on Workers
// workers, replicated Replicas times (instances process alternate data
// sets round-robin, per the paper's replication model).
type Stage struct {
	Name     string
	Workers  int
	Replicas int
	// Run processes one data set and returns the data set for the next
	// stage. It must be safe for concurrent invocation across instances
	// (each instance has its own Group; shared inputs must be treated as
	// read-only).
	Run func(ctx *StageCtx, in DataSet) (DataSet, error)
	// Deadline bounds one attempt of this stage in fault-tolerant runs,
	// overriding Pipeline.StageDeadline; zero inherits the pipeline-wide
	// value.
	Deadline time.Duration
}

// Stats reports a pipeline execution.
type Stats struct {
	// DataSets is the number of data sets processed.
	DataSets int
	// Elapsed is the wall-clock duration from first input to last output.
	Elapsed time.Duration
	// Throughput is data sets per second over the post-warmup window.
	Throughput float64
	// Latency is the mean data set traversal time.
	Latency time.Duration
	// Ops maps operation names (as recorded by stages) to mean durations
	// in seconds.
	Ops map[string]float64
	// OpStats maps operation names to mean/min/max summaries; a Max far
	// above the Mean flags a straggling or slowed instance.
	OpStats map[string]OpStat
	// Retried is the total number of retry attempts across all stages
	// (fault-tolerant runs only).
	Retried int
	// Dropped is the number of data sets abandoned after exhausting their
	// attempts at some stage; dropped data sets do not reach the sink.
	Dropped int
	// Timeouts is the number of attempts cut off by a stage deadline.
	Timeouts int
	// Dead is the number of stage instances declared dead and removed
	// from rotation during the run.
	Dead int
}

// OpStat summarizes the samples of one recorded operation.
type OpStat struct {
	Mean, Min, Max float64
	Count          int
}

// opAgg is the running aggregate behind one OpStat.
type opAgg struct {
	sum, min, max float64
	n             int
}

// Recorder accumulates named operation durations across stage instances.
type Recorder struct {
	mu  sync.Mutex
	ops map[string]*opAgg
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{ops: map[string]*opAgg{}}
}

// Observe adds one sample of the named operation.
func (r *Recorder) Observe(name string, seconds float64) {
	r.mu.Lock()
	a := r.ops[name]
	if a == nil {
		a = &opAgg{min: seconds, max: seconds}
		r.ops[name] = a
	}
	a.sum += seconds
	a.n++
	if seconds < a.min {
		a.min = seconds
	}
	if seconds > a.max {
		a.max = seconds
	}
	r.mu.Unlock()
}

// Time runs f and records its duration under name, or under name+"/error"
// when f fails, so the cost of failed (retried) attempts stays visible in
// metrics instead of silently inflating the success samples.
func (r *Recorder) Time(name string, f func() error) error {
	start := time.Now()
	err := f()
	if err != nil {
		name += "/error"
	}
	r.Observe(name, time.Since(start).Seconds())
	return err
}

// Means returns the mean duration of every recorded operation.
func (r *Recorder) Means() map[string]float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]float64, len(r.ops))
	for k, a := range r.ops {
		out[k] = a.sum / float64(a.n)
	}
	return out
}

// Summary returns mean, min and max of every recorded operation.
func (r *Recorder) Summary() map[string]OpStat {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]OpStat, len(r.ops))
	for k, a := range r.ops {
		out[k] = OpStat{Mean: a.sum / float64(a.n), Min: a.min, Max: a.max, Count: a.n}
	}
	return out
}

// Pipeline is a chain of stages executing a stream of data sets.
//
// The zero-value configuration runs the strict rendezvous executor that
// models the paper's execution semantics exactly and aborts on the first
// stage error. Setting any of the fault-tolerance fields (Retry,
// StageDeadline, DeadAfter, Faults, or a per-stage Deadline) routes
// Run/RunWithEdges through the fault-tolerant executor instead: failed
// attempts are retried with capped exponential backoff, hung attempts are
// cut off by deadlines, data sets that exhaust their attempts are dropped
// and counted (never aborting the stream), and repeatedly failing
// instances are declared dead and removed from the round-robin while the
// surviving replicas keep serving at reduced throughput.
type Pipeline struct {
	Stages []Stage
	// Retry is the per-data-set retry policy applied at every stage.
	Retry RetryPolicy
	// StageDeadline bounds one attempt of any stage; zero disables
	// deadlines. A stage's own Deadline overrides it.
	StageDeadline time.Duration
	// DeadAfter declares an instance dead after this many consecutive
	// failed attempts, removing it from rotation (its in-flight data set
	// is requeued to a surviving replica); zero never declares death. The
	// last live instance of a stage is never removed.
	DeadAfter int
	// Faults injects deterministic failures for testing (see Fault).
	Faults []Fault
	// Obs receives one trace span per data set × stage × attempt in
	// fault-tolerant runs, plus instant events for instance deaths and
	// dropped data sets; nil disables tracing with no overhead.
	Obs *obs.Tracer
	// Monitor receives live per-attempt observations (completions with
	// latency, retries, timeouts, drops, instance deaths) in
	// fault-tolerant runs, feeding the health model served by obs/live.
	// nil disables live monitoring with no overhead. The strict rendezvous
	// executor does not report to it; attach fault-tolerance options (even
	// just a RetryPolicy) to serve live traffic.
	Monitor *live.Monitor
}

// envelope carries a data set with its stream index.
type envelope struct {
	idx int
	ds  DataSet
	t0  time.Time
}

// validate checks the pipeline structure and run parameters shared by Run
// and RunWithEdges, returning the effective warmup count. edges is only
// inspected when withEdges is set.
func (p *Pipeline) validate(n, warmup int, edges []Edge, withEdges bool) (int, error) {
	if len(p.Stages) == 0 {
		return 0, fmt.Errorf("fxrt: pipeline has no stages")
	}
	if withEdges && len(edges) != len(p.Stages)-1 {
		return 0, fmt.Errorf("fxrt: %d edges for %d stages (want %d)",
			len(edges), len(p.Stages), len(p.Stages)-1)
	}
	if n <= 0 {
		return 0, fmt.Errorf("fxrt: need at least one data set")
	}
	if warmup <= 0 {
		warmup = n / 5
	}
	if warmup >= n {
		warmup = n - 1
	}
	for i, s := range p.Stages {
		if s.Workers < 1 || s.Replicas < 1 {
			return 0, fmt.Errorf("fxrt: stage %d (%s) has workers=%d replicas=%d",
				i, s.Name, s.Workers, s.Replicas)
		}
		if s.Run == nil {
			return 0, fmt.Errorf("fxrt: stage %d (%s) has no Run", i, s.Name)
		}
	}
	return warmup, nil
}

// Run streams n data sets produced by source through the pipeline and
// returns execution statistics. warmup data sets are excluded from the
// throughput window (pass 0 for n/5).
func (p *Pipeline) Run(source func(i int) DataSet, n, warmup int) (Stats, error) {
	warmup, err := p.validate(n, warmup, nil, false)
	if err != nil {
		return Stats{}, err
	}
	if p.faultTolerant() {
		return p.runFT(source, n, warmup, nil)
	}

	rec := NewRecorder()
	l := len(p.Stages)
	// Rendezvous channels: ch[i][a][b] carries data sets from instance a
	// of stage i-1 to instance b of stage i. ch[0][0][b] is the source
	// feed. Unbuffered channels model the blocking transfer of the
	// execution model.
	ch := make([][][]chan envelope, l+1)
	srcReps := 1
	for i := 0; i <= l; i++ {
		var from, to int
		switch i {
		case 0:
			from, to = srcReps, p.Stages[0].Replicas
		case l:
			from, to = p.Stages[l-1].Replicas, 1
		default:
			from, to = p.Stages[i-1].Replicas, p.Stages[i].Replicas
		}
		ch[i] = make([][]chan envelope, from)
		for a := 0; a < from; a++ {
			ch[i][a] = make([]chan envelope, to)
			for b := 0; b < to; b++ {
				ch[i][a][b] = make(chan envelope)
			}
		}
	}

	var (
		errOnce sync.Once
		runErr  error
		failed  atomic.Bool
	)
	setErr := func(err error) {
		if err != nil {
			failed.Store(true)
			errOnce.Do(func() { runErr = err })
		}
	}

	var wg sync.WaitGroup
	// Stage instances.
	for i := 0; i < l; i++ {
		st := p.Stages[i]
		for b := 0; b < st.Replicas; b++ {
			wg.Add(1)
			go func(i, b int, st Stage) {
				defer wg.Done()
				g, err := NewGroup(st.Workers)
				if err != nil {
					setErr(err)
					// Must still drain the schedule to unblock peers.
					g = nil
				}
				if g != nil {
					defer g.Close()
				}
				ctx := &StageCtx{Group: g, Instance: b, Rec: rec}
				prevReps := srcReps
				if i > 0 {
					prevReps = p.Stages[i-1].Replicas
				}
				nextReps := 1
				if i < l-1 {
					nextReps = p.Stages[i+1].Replicas
				}
				for idx := b; idx < n; idx += st.Replicas {
					env := <-ch[i][idx%prevReps][b]
					if g != nil && !failed.Load() {
						out, err := st.Run(ctx, env.ds)
						if err != nil {
							setErr(fmt.Errorf("fxrt: stage %s instance %d data set %d: %w",
								st.Name, b, idx, err))
						} else {
							env.ds = out
						}
					}
					ch[i+1][b][idx%nextReps] <- env
				}
			}(i, b, st)
		}
	}

	// Source.
	start := time.Now()
	wg.Add(1)
	go func() {
		defer wg.Done()
		r0 := p.Stages[0].Replicas
		for idx := 0; idx < n; idx++ {
			ch[0][0][idx%r0] <- envelope{idx: idx, ds: source(idx), t0: time.Now()}
		}
	}()

	// Sink: consume outputs in stream order from the last stage.
	lastReps := p.Stages[l-1].Replicas
	outTimes := make([]time.Time, n)
	var latSum time.Duration
	for idx := 0; idx < n; idx++ {
		env := <-ch[l][idx%lastReps][0]
		now := time.Now()
		outTimes[env.idx] = now
		latSum += now.Sub(env.t0)
	}
	wg.Wait()
	if runErr != nil {
		return Stats{}, runErr
	}

	stats := Stats{
		DataSets: n,
		Elapsed:  outTimes[n-1].Sub(start),
		Latency:  latSum / time.Duration(n),
		Ops:      rec.Means(),
		OpStats:  rec.Summary(),
	}
	window := outTimes[n-1].Sub(outTimes[warmup])
	if window > 0 {
		stats.Throughput = float64(n-1-warmup) / window.Seconds()
	}
	return stats, nil
}
