package fxrt

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Edge optionally attaches a real data transfer to a pipeline edge,
// mirroring the paper's communication model: the sending and receiving
// instances are both occupied for the entire duration of the transfer.
// When an edge has a Transfer function, the downstream instance executes
// it at handoff while the upstream instance blocks until it completes —
// exactly the rendezvous semantics of section 2.1 — and its duration is
// recorded under Name.
type Edge struct {
	// Name labels the transfer in recorded statistics (e.g.
	// "edge:transpose").
	Name string
	// Transfer converts the upstream output into the downstream input. It
	// runs on the receiving instance's worker group; the sender is blocked
	// while it runs. A nil Transfer makes the handoff free (pointer pass).
	Transfer func(recv *StageCtx, in DataSet) (DataSet, error)
}

// transferEnvelope carries a data set plus a completion signal so the
// sender can block for the transfer duration.
type transferEnvelope struct {
	envelope
	done chan struct{}
}

// RunWithEdges streams n data sets through the pipeline with explicit
// edge transfers; edges must have len(p.Stages)-1 entries (individual
// entries may have a nil Transfer). Unlike plain Run, the sender of an
// edge with a Transfer is blocked until the receiver finishes executing
// it, charging the transfer time to both sides as the execution model
// prescribes.
func (p *Pipeline) RunWithEdges(source func(i int) DataSet, n, warmup int, edges []Edge) (Stats, error) {
	warmup, err := p.validate(n, warmup, edges, true)
	if err != nil {
		return Stats{}, err
	}
	if p.faultTolerant() {
		return p.runFT(source, n, warmup, edges)
	}

	rec := NewRecorder()
	l := len(p.Stages)
	ch := make([][][]chan transferEnvelope, l+1)
	for i := 0; i <= l; i++ {
		var from, to int
		switch i {
		case 0:
			from, to = 1, p.Stages[0].Replicas
		case l:
			from, to = p.Stages[l-1].Replicas, 1
		default:
			from, to = p.Stages[i-1].Replicas, p.Stages[i].Replicas
		}
		ch[i] = make([][]chan transferEnvelope, from)
		for a := 0; a < from; a++ {
			ch[i][a] = make([]chan transferEnvelope, to)
			for b := 0; b < to; b++ {
				ch[i][a][b] = make(chan transferEnvelope)
			}
		}
	}

	var (
		errOnce sync.Once
		runErr  error
		failed  atomic.Bool
	)
	setErr := func(err error) {
		if err != nil {
			failed.Store(true)
			errOnce.Do(func() { runErr = err })
		}
	}

	var wg sync.WaitGroup
	for i := 0; i < l; i++ {
		st := p.Stages[i]
		for b := 0; b < st.Replicas; b++ {
			wg.Add(1)
			go func(i, b int, st Stage) {
				defer wg.Done()
				g, gerr := NewGroup(st.Workers)
				if gerr != nil {
					setErr(gerr)
				} else {
					defer g.Close()
				}
				ctx := &StageCtx{Group: g, Instance: b, Rec: rec}
				prevReps := 1
				if i > 0 {
					prevReps = p.Stages[i-1].Replicas
				}
				nextReps := 1
				if i < l-1 {
					nextReps = p.Stages[i+1].Replicas
				}
				for idx := b; idx < n; idx += st.Replicas {
					env := <-ch[i][idx%prevReps][b]
					// Incoming edge transfer: executed here (the receiver)
					// while the sender blocks on env.done.
					if i > 0 && edges[i-1].Transfer != nil && g != nil && !failed.Load() {
						start := time.Now()
						out, err := edges[i-1].Transfer(ctx, env.ds)
						rec.Observe(edges[i-1].Name, time.Since(start).Seconds())
						if err != nil {
							setErr(fmt.Errorf("fxrt: edge %s data set %d: %w",
								edges[i-1].Name, idx, err))
						} else {
							env.ds = out
						}
					}
					if env.done != nil {
						close(env.done) // release the sender
					}
					if g != nil && !failed.Load() {
						out, err := st.Run(ctx, env.ds)
						if err != nil {
							setErr(fmt.Errorf("fxrt: stage %s instance %d data set %d: %w",
								st.Name, b, idx, err))
						} else {
							env.ds = out
						}
					}
					// Outgoing handoff: block until the receiver finishes
					// the next edge's transfer (rendezvous).
					next := transferEnvelope{envelope: env.envelope}
					next.ds = env.ds
					if i < l-1 && edges[i].Transfer != nil {
						next.done = make(chan struct{})
					}
					ch[i+1][b][idx%nextReps] <- next
					if next.done != nil {
						<-next.done
					}
				}
			}(i, b, st)
		}
	}

	start := time.Now()
	wg.Add(1)
	go func() {
		defer wg.Done()
		r0 := p.Stages[0].Replicas
		for idx := 0; idx < n; idx++ {
			ch[0][0][idx%r0] <- transferEnvelope{
				envelope: envelope{idx: idx, ds: source(idx), t0: time.Now()},
			}
		}
	}()

	lastReps := p.Stages[l-1].Replicas
	outTimes := make([]time.Time, n)
	var latSum time.Duration
	for idx := 0; idx < n; idx++ {
		env := <-ch[l][idx%lastReps][0]
		if env.done != nil {
			close(env.done)
		}
		now := time.Now()
		outTimes[env.idx] = now
		latSum += now.Sub(env.t0)
	}
	wg.Wait()
	if runErr != nil {
		return Stats{}, runErr
	}

	stats := Stats{
		DataSets: n,
		Elapsed:  outTimes[n-1].Sub(start),
		Latency:  latSum / time.Duration(n),
		Ops:      rec.Means(),
		OpStats:  rec.Summary(),
	}
	// Output times can arrive out of order across instances; delimit the
	// window with running maxima.
	var windowStart, windowEnd time.Time
	for d := 0; d < n; d++ {
		if outTimes[d].After(windowEnd) {
			windowEnd = outTimes[d]
		}
		if d <= warmup && outTimes[d].After(windowStart) {
			windowStart = outTimes[d]
		}
	}
	if window := windowEnd.Sub(windowStart); window > 0 {
		stats.Throughput = float64(n-1-warmup) / window.Seconds()
	}
	return stats, nil
}
