package fxrt

import (
	"context"
	"testing"
	"time"

	"pipemap/internal/obs"
)

func startedTrace(t *testing.T) *obs.ReqTrace {
	t.Helper()
	tr := obs.NewReqTracer(obs.ReqTracerConfig{SampleRate: 1})
	_, rt := tr.Start(obs.TraceID{}, false, "tenant", time.Now())
	if rt == nil {
		t.Fatal("rate-1 tracer did not sample")
	}
	return rt
}

// TestPushTracedRecordsStageSpans asserts the streaming executor records
// one stage span per attempt — including the failed attempt before a
// retry — attributed to the right stage index and attempt number.
func TestPushTracedRecordsStageSpans(t *testing.T) {
	p := echoPipeline(2, 1)
	p.Retry = RetryPolicy{MaxRetries: 2}
	// Stage 1 fails its first attempt only: the trace must show the error
	// attempt and the healing retry.
	p.Faults = []Fault{{Stage: 1, Instance: -1, DataSet: -1, Kind: FaultFail, Attempts: 1}}
	s, err := p.Stream(StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rt := startedTrace(t)
	res, err := s.PushTraced(context.Background(), 0, rt)
	if err != nil {
		t.Fatal(err)
	}
	if r := <-res; r.Err != nil {
		t.Fatalf("push result: %v", r.Err)
	}
	s.Close()

	var stageSpans []obs.ReqSpan
	for _, sp := range rt.Spans() {
		if sp.Kind == obs.SpanStage && sp.DurUS >= 0 && sp.Name != "" {
			stageSpans = append(stageSpans, sp)
		}
	}
	if len(stageSpans) != 3 {
		t.Fatalf("got %d stage spans %+v, want 3 (s0 ok, s1 error, s1 retry ok)", len(stageSpans), stageSpans)
	}
	want := []struct {
		name    string
		stage   int
		attempt int
		outcome string
	}{
		{"s0", 0, 0, "ok"},
		{"s1", 1, 0, "error"},
		{"s1", 1, 1, "ok"},
	}
	for i, w := range want {
		sp := stageSpans[i]
		if sp.Name != w.name || sp.Stage != w.stage || sp.Attempt != w.attempt || sp.Outcome != w.outcome {
			t.Errorf("span %d = %+v, want %+v", i, sp, w)
		}
	}
}

// TestPushTracedRecordsDrop asserts an exhausted data set leaves a drop
// marker on its trace.
func TestPushTracedRecordsDrop(t *testing.T) {
	p := echoPipeline(1, 1)
	p.Retry = RetryPolicy{MaxRetries: 1}
	p.Faults = []Fault{{Stage: 0, Instance: -1, DataSet: -1, Kind: FaultFail}}
	s, err := p.Stream(StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rt := startedTrace(t)
	res, err := s.PushTraced(context.Background(), 0, rt)
	if err != nil {
		t.Fatal(err)
	}
	if r := <-res; r.Err == nil {
		t.Fatal("permanently faulty stage produced a result")
	}
	s.Close()

	var drops, errorAttempts int
	for _, sp := range rt.Spans() {
		if sp.Kind == obs.SpanStage && sp.Outcome == "error" {
			errorAttempts++
		}
		if sp.Kind == obs.SpanStage && sp.Detail != "" && sp.DurUS == 0 {
			drops++
		}
	}
	if errorAttempts != 2 {
		t.Errorf("error attempts = %d, want 2 (initial + one retry)", errorAttempts)
	}
	if drops != 1 {
		t.Errorf("drop markers = %d, want 1 (spans: %+v)", drops, rt.Spans())
	}
}

// TestPushNilTraceUnchanged pins that the untraced path still flows (a nil
// trace must not cost correctness or panic anywhere in the executor).
func TestPushNilTraceUnchanged(t *testing.T) {
	s, err := echoPipeline(2, 1).Stream(StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.PushTraced(context.Background(), 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r := <-res; r.Err != nil || r.DS.(int) != 7 {
		t.Fatalf("result = %+v, want 7", r)
	}
	s.Close()
}
