package fxrt

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// ftEnvelope carries a data set through the fault-tolerant executor.
type ftEnvelope struct {
	idx      int
	ds       DataSet
	t0       time.Time
	dropped  bool
	attempts int // attempts at the current stage
}

// ftRun holds the shared state of one fault-tolerant execution.
//
// Unlike the strict executor, stages pull work from a shared per-stage
// inbox: the round-robin over instances is dynamic, so a dead instance is
// removed from rotation simply by no longer pulling, and the survivors
// absorb its share of the stream at reduced throughput. Dropped data sets
// keep flowing as tombstones so every stage and the sink account for
// exactly n envelopes. Inboxes are buffered generously (sends never
// block), which relaxes the paper's rendezvous timing model; use the
// strict executor (no fault-tolerance options) for model validation runs.
type ftRun struct {
	p     *Pipeline
	edges []Edge
	rec   *Recorder
	n     int
	// tidBase[i] is the trace thread id of stage i's instance 0; instance b
	// traces on tidBase[i]+b, giving every replica its own viewer row.
	tidBase []int

	inbox []chan ftEnvelope
	done  []atomic.Int64 // envelopes forwarded past each stage
	quit  []chan struct{}
	once  []sync.Once
	live  []atomic.Int32

	// release is closed at the end of the run to unblock injected hangs,
	// so abandoned attempt goroutines can exit.
	release chan struct{}

	retried  atomic.Int64
	droppedN atomic.Int64
	timeouts atomic.Int64
	deaths   atomic.Int64
}

// runFT executes the pipeline with retries, deadlines, fault injection and
// graceful instance death. edges is nil for plain Run; with edges, each
// transfer executes on the receiving instance as part of the stage attempt
// (and is retried with it), without blocking the sender.
func (p *Pipeline) runFT(source func(i int) DataSet, n, warmup int, edges []Edge) (Stats, error) {
	l := len(p.Stages)
	totalReps := 0
	for _, s := range p.Stages {
		totalReps += s.Replicas
	}
	r := &ftRun{
		p:       p,
		edges:   edges,
		rec:     NewRecorder(),
		n:       n,
		tidBase: make([]int, l),
		inbox:   make([]chan ftEnvelope, l+1),
		done:    make([]atomic.Int64, l),
		quit:    make([]chan struct{}, l),
		once:    make([]sync.Once, l),
		live:    make([]atomic.Int32, l),
		release: make(chan struct{}),
	}
	for i, base := 0, 0; i < l; i++ {
		r.tidBase[i] = base
		if p.Obs != nil {
			for b := 0; b < p.Stages[i].Replicas; b++ {
				p.Obs.NameThread(base+b, fmt.Sprintf("%s/%d", p.Stages[i].Name, b))
			}
		}
		base += p.Stages[i].Replicas
	}
	for i := 0; i <= l; i++ {
		// Capacity covers all n envelopes plus every possible death
		// requeue, so no send can block (or deadlock on a dead peer).
		r.inbox[i] = make(chan ftEnvelope, n+totalReps+1)
	}
	for i := 0; i < l; i++ {
		r.quit[i] = make(chan struct{})
		r.live[i].Store(int32(p.Stages[i].Replicas))
	}

	var wg sync.WaitGroup
	for i := 0; i < l; i++ {
		for b := 0; b < p.Stages[i].Replicas; b++ {
			wg.Add(1)
			go func(i, b int) {
				defer wg.Done()
				r.instance(i, b)
			}(i, b)
		}
	}

	mon := p.Monitor
	mon.Start()
	start := time.Now()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for idx := 0; idx < n; idx++ {
			r.inbox[0] <- ftEnvelope{idx: idx, ds: source(idx), t0: time.Now()}
		}
	}()

	// Sink: every data set arrives exactly once, completed or tombstoned.
	// Requeues and retries reorder the stream arbitrarily, so the warmup
	// window is delimited by completion order at the sink (whose
	// timestamps are monotone), not by stream index.
	var latSum time.Duration
	completed := 0
	var windowStart, windowEnd time.Time
	for got := 0; got < n; got++ {
		env := <-r.inbox[l]
		if env.dropped {
			continue
		}
		now := time.Now()
		latSum += now.Sub(env.t0)
		mon.Completed(now.Sub(env.t0).Seconds())
		completed++
		windowEnd = now
		if completed == warmup+1 {
			windowStart = now
		}
	}
	wg.Wait()
	close(r.release)
	mon.Finish()

	stats := Stats{
		DataSets: n,
		Ops:      r.rec.Means(),
		OpStats:  r.rec.Summary(),
		Retried:  int(r.retried.Load()),
		Dropped:  int(r.droppedN.Load()),
		Timeouts: int(r.timeouts.Load()),
		Dead:     int(r.deaths.Load()),
	}
	if completed > 0 {
		stats.Elapsed = windowEnd.Sub(start)
		stats.Latency = latSum / time.Duration(completed)
	}
	if window := windowEnd.Sub(windowStart); completed > warmup+1 && window > 0 {
		stats.Throughput = float64(completed-warmup-1) / window.Seconds()
	}
	return stats, nil
}

// instance is the body of one stage replica: pull, attempt with retries,
// forward (or die and requeue).
func (r *ftRun) instance(i, b int) {
	st := r.p.Stages[i]
	g, gerr := NewGroup(st.Workers)
	if g != nil {
		// Abandoned (timed-out) attempts may still be running on the
		// group; close it only after they finish, without blocking the
		// pipeline's exit. Injected hangs finish when release is closed;
		// genuinely hung user code keeps its group open (documented).
		var attempts sync.WaitGroup
		defer func() {
			go func() {
				attempts.Wait()
				g.Close()
			}()
		}()
		r.serve(i, b, st, g, &attempts)
		return
	}
	_ = gerr // cannot happen: Workers >= 1 is validated before the run
	r.serve(i, b, st, nil, &sync.WaitGroup{})
}

func (r *ftRun) serve(i, b int, st Stage, g *Group, attempts *sync.WaitGroup) {
	ctx := &StageCtx{Group: g, Instance: b, Rec: r.rec}
	tr := r.p.Obs
	mon := r.p.Monitor
	tid := r.tidBase[i] + b
	deadline := r.p.deadlineFor(i)
	maxAttempts := r.p.Retry.MaxRetries + 1
	consecFail := 0
	for {
		var env ftEnvelope
		select {
		case env = <-r.inbox[i]:
		case <-r.quit[i]:
			return
		}
		if env.dropped {
			r.forward(i, env)
			continue
		}
		for {
			t0 := time.Now()
			out, err, timedOut := r.attempt(ctx, i, b, st, deadline, attempts, &env)
			outcome := "ok"
			if timedOut {
				outcome = "timeout"
			} else if err != nil {
				outcome = "error"
			}
			tr.StageSpan(st.Name, tid, env.idx, env.attempts, outcome, t0, time.Since(t0))
			if err == nil {
				mon.StageDone(i, time.Since(t0).Seconds())
				env.ds = out
				env.attempts = 0
				consecFail = 0
				r.forward(i, env)
				break
			}
			env.attempts++
			consecFail++
			if timedOut {
				r.timeouts.Add(1)
				mon.StageTimeout(i, env.idx)
			}
			if r.p.DeadAfter > 0 && consecFail >= r.p.DeadAfter {
				// Die only if another live instance remains to serve the
				// stream; the last instance soldiers on, dropping what it
				// cannot process.
				if r.live[i].Add(-1) >= 1 {
					r.deaths.Add(1)
					mon.InstanceDeath(i, env.idx)
					if tr.Enabled() {
						tr.InstantArgs("fault", "instance-death", tid, time.Now(),
							map[string]any{"dataset": env.idx, "stage": st.Name})
					}
					env.attempts = 0 // fresh budget on a surviving instance
					r.requeue(i, env)
					return
				}
				r.live[i].Add(1)
			}
			if env.attempts >= maxAttempts {
				env.dropped = true
				env.ds = nil
				r.droppedN.Add(1)
				mon.StageDrop(i, env.idx)
				if tr.Enabled() {
					tr.InstantArgs("fault", "drop", tid, time.Now(),
						map[string]any{"dataset": env.idx, "stage": st.Name})
				}
				r.forward(i, env)
				break
			}
			r.retried.Add(1)
			mon.StageRetry(i, env.idx)
			if d := r.p.Retry.BackoffFor(env.attempts); d > 0 {
				time.Sleep(d)
			}
		}
	}
}

// attempt executes one try of stage i on env: the incoming edge transfer
// (if any), injected faults, and the stage function, bounded by deadline.
func (r *ftRun) attempt(ctx *StageCtx, i, b int, st Stage, deadline time.Duration,
	attempts *sync.WaitGroup, env *ftEnvelope) (DataSet, error, bool) {
	return attemptOnce(r.p, r.rec, r.edges, r.release, ctx, i, b, st, deadline,
		attempts, env.ds, env.idx, env.attempts)
}

// attemptOnce executes one try of stage i on a data set: the incoming edge
// transfer (if any), injected faults, and the stage function, bounded by
// deadline. It is shared by the batch fault-tolerant executor and the
// streaming executor. release unblocks injected hangs when the run ends;
// attempts tracks abandoned (timed-out) goroutines so the instance's group
// closes only after they finish.
func attemptOnce(p *Pipeline, rec *Recorder, edges []Edge, release chan struct{},
	ctx *StageCtx, i, b int, st Stage, deadline time.Duration,
	attempts *sync.WaitGroup, in DataSet, idx, attemptNo int) (DataSet, error, bool) {
	run := func() (DataSet, error) {
		v := in
		if i > 0 && edges != nil && edges[i-1].Transfer != nil {
			t := time.Now()
			out, err := edges[i-1].Transfer(ctx, v)
			rec.Observe(edges[i-1].Name, time.Since(t).Seconds())
			if err != nil {
				return nil, fmt.Errorf("fxrt: edge %s data set %d: %w", edges[i-1].Name, idx, err)
			}
			v = out
		}
		if f := p.matchFault(i, b, idx, attemptNo); f != nil {
			switch f.Kind {
			case FaultFail:
				return nil, fmt.Errorf("fxrt: injected failure at stage %s instance %d data set %d attempt %d",
					st.Name, b, idx, attemptNo)
			case FaultHang:
				<-release
				return nil, fmt.Errorf("fxrt: injected hang at stage %s instance %d data set %d released",
					st.Name, b, idx)
			case FaultSlow:
				time.Sleep(f.Delay)
			}
		}
		return st.Run(ctx, v)
	}
	if deadline <= 0 {
		out, err := run()
		return out, err, false
	}
	type result struct {
		ds  DataSet
		err error
	}
	ch := make(chan result, 1)
	attempts.Add(1)
	go func() {
		defer attempts.Done()
		out, err := run()
		ch <- result{out, err}
	}()
	timer := time.NewTimer(deadline)
	defer timer.Stop()
	select {
	case res := <-ch:
		return res.ds, res.err, false
	case <-timer.C:
		return nil, fmt.Errorf("fxrt: stage %s instance %d data set %d: deadline %v exceeded",
			st.Name, b, idx, deadline), true
	}
}

// forward hands env to the next stage (or the sink) and closes the stage's
// quit channel once all n data sets have passed it. Inbox capacity
// guarantees the send never blocks.
func (r *ftRun) forward(i int, env ftEnvelope) {
	env.attempts = 0
	r.inbox[i+1] <- env
	if r.done[i].Add(1) == int64(r.n) {
		r.once[i].Do(func() { close(r.quit[i]) })
	}
}

// requeue returns env to the stage's own inbox so a surviving instance
// picks it up. The capacity bound covers all possible requeues, but drop
// defensively rather than ever blocking a dying instance.
func (r *ftRun) requeue(i int, env ftEnvelope) {
	select {
	case r.inbox[i] <- env:
	default:
		env.dropped = true
		env.ds = nil
		r.droppedN.Add(1)
		r.p.Monitor.StageDrop(i, env.idx)
		r.forward(i, env)
	}
}
