package fxrt

import "fmt"

// BlockRange computes the half-open range [lo, hi) of the part-th block
// when total items are split into parts contiguous blocks as evenly as
// possible (the first total%parts blocks get one extra item). It is the
// standard HPF-style block distribution used by the runners.
func BlockRange(total, parts, part int) (lo, hi int) {
	if parts <= 0 || part < 0 || part >= parts {
		return 0, 0
	}
	base := total / parts
	extra := total % parts
	if part < extra {
		lo = part * (base + 1)
		hi = lo + base + 1
		return lo, hi
	}
	lo = extra*(base+1) + (part-extra)*base
	hi = lo + base
	return lo, hi
}

// ParallelReduce runs parts independent partial computations on the group
// and folds their results left to right with combine. It is the runtime's
// generic reduction: each part produces a partial value (e.g. a partial
// histogram) and combine merges two partials. The fold is sequential and
// deterministic, matching the paper's model of a reduction step with
// internal communication.
func ParallelReduce[T any](g *Group, parts int, produce func(part int) (T, error), combine func(a, b T) (T, error)) (T, error) {
	var zero T
	if parts <= 0 {
		return zero, fmt.Errorf("fxrt: reduce needs at least one part, got %d", parts)
	}
	partials := make([]T, parts)
	errs := make([]error, parts)
	err := g.ParallelFor(parts, func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			partials[i], errs[i] = produce(i)
			if errs[i] != nil {
				return errs[i]
			}
		}
		return nil
	})
	if err != nil {
		return zero, err
	}
	acc := partials[0]
	for i := 1; i < parts; i++ {
		acc, err = combine(acc, partials[i])
		if err != nil {
			return zero, err
		}
	}
	return acc, nil
}
