package greedy

import (
	"fmt"
	"time"

	"pipemap/internal/model"
)

// Map computes a full mapping — clustering, replication and processor
// assignment — with the two-phase heuristic of section 4.2: an approximate
// greedy assignment on singleton modules determines the clustering, which
// is then fixed while a second greedy pass (optionally with backtracking)
// produces the final assignment.
func Map(c *model.Chain, pl model.Platform, opt Options) (model.Mapping, error) {
	if err := c.Validate(); err != nil {
		return model.Mapping{}, err
	}
	if err := pl.Validate(); err != nil {
		return model.Mapping{}, err
	}
	start := time.Now()
	spans := model.Singletons(c.Len())
	if !opt.DisableClustering {
		var err error
		spans, err = Cluster(c, pl, opt)
		if err != nil {
			return model.Mapping{}, err
		}
	}
	m, err := Assign(c, pl, spans, opt)
	if err != nil {
		return model.Mapping{}, err
	}
	if opt.Trace.Enabled() || opt.Metrics.Enabled() {
		opt.Trace.SpanArgs("greedy", "map", 0, start, time.Since(start),
			map[string]any{"k": c.Len(), "P": pl.Procs, "modules": len(spans)})
		opt.Metrics.Observe("greedy.map_seconds", time.Since(start).Seconds())
	}
	return m, nil
}

// Cluster runs the approximate clustering phase: greedy-assign processors
// to singleton modules, then sweep adjacent module pairs, merging a pair
// whenever the merged module on the pair's combined processors responds
// faster than the slower of the two separate modules; after merging, test
// each merged module for profitable splits. The sweep repeats until a pass
// makes no change.
func Cluster(c *model.Chain, pl model.Platform, opt Options) ([]model.Span, error) {
	start := time.Now()
	var mergeTests, splitTests, passes int64
	spans := model.Singletons(c.Len())
	// Approximate assignment to seed the merge decisions.
	raw, s, err := assignRaw(c, pl, spans, opt)
	if err != nil {
		// If even singletons do not fit (memory minimums exceed P), try
		// merged prefixes: fall back to coarser feasible clusterings by
		// merging everything — the assignment phase will report a precise
		// error if nothing fits.
		return clusterFallback(c, pl, opt)
	}
	for pass := 0; pass < len(spans); pass++ {
		passes++
		changed := false
		// Merge sweep.
		for i := 0; i+1 < len(spans); {
			mergeTests++
			if mergeImproves(c, pl, s, spans, raw, i, opt) {
				newHi := spans[i+1].Hi
				spans = append(spans[:i+1], spans[i+2:]...)
				spans[i].Hi = newHi
				raw, s, err = assignRaw(c, pl, spans, opt)
				if err != nil {
					return nil, err
				}
				changed = true
			} else {
				i++
			}
		}
		// Split sweep: test breaking each multi-task module at each
		// internal edge.
		for i := 0; i < len(spans); i++ {
			sp := spans[i]
			if sp.Hi-sp.Lo < 2 {
				continue
			}
			splitTests++
			cut, ok := splitImproves(c, pl, spans, raw, i, opt)
			if ok {
				ns := make([]model.Span, 0, len(spans)+1)
				ns = append(ns, spans[:i]...)
				ns = append(ns, model.Span{Lo: sp.Lo, Hi: cut}, model.Span{Lo: cut, Hi: sp.Hi})
				ns = append(ns, spans[i+1:]...)
				if r2, s2, err2 := assignRaw(c, pl, ns, opt); err2 == nil {
					spans, raw, s = ns, r2, s2
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	if opt.Trace.Enabled() || opt.Metrics.Enabled() {
		opt.Trace.SpanArgs("greedy", "cluster", 0, start, time.Since(start),
			map[string]any{"passes": passes, "merge_tests": mergeTests,
				"split_tests": splitTests, "modules": len(spans)})
		opt.Metrics.Add("greedy.cluster.merge_tests", mergeTests)
		opt.Metrics.Add("greedy.cluster.split_tests", splitTests)
		opt.Metrics.Add("greedy.cluster.passes", passes)
	}
	return spans, nil
}

// assignRaw runs the greedy loop on a clustering and returns the raw
// per-module processor counts along with the evaluation state.
func assignRaw(c *model.Chain, pl model.Platform, spans []model.Span, opt Options) ([]int, *state, error) {
	mc := model.CollapseClustering(c, spans)
	s, err := newState(mc, pl, opt)
	if err != nil {
		return nil, nil, err
	}
	raw := greedyLoop(s, opt)
	return raw, s, nil
}

// mergeImproves decides whether modules i and i+1 of the clustering should
// be merged, given the current approximate processor counts: compare the
// bottleneck contribution of the pair when separate against the merged
// module running on their combined processors.
func mergeImproves(c *model.Chain, pl model.Platform, s *state, spans []model.Span, raw []int, i int, opt Options) bool {
	combined := raw[i] + raw[i+1]
	lo, hi := spans[i].Lo, spans[i+1].Hi
	min := c.ModuleMinProcs(lo, hi, pl.MemPerProc)
	if min < 0 || min > combined {
		return false
	}
	// Effective neighbour counts for edge costs.
	effOf := func(j int) int {
		r := model.SplitReplicas(raw[j], s.min[j], s.repl[j])
		return r.ProcsPerInstance
	}
	// Separate: the pair's worse effective response, including the edge
	// between them and the edges to the outside.
	sepWorst := 0.0
	for _, j := range []int{i, i + 1} {
		rj := model.SplitReplicas(raw[j], s.min[j], s.repl[j])
		f := s.mc.Tasks[j].Exec.Eval(rj.ProcsPerInstance)
		if j > 0 {
			f += s.mc.ECom[j-1].Eval(effOf(j-1), rj.ProcsPerInstance)
		}
		if j < len(raw)-1 {
			f += s.mc.ECom[j].Eval(rj.ProcsPerInstance, effOf(j+1))
		}
		f /= float64(rj.Replicas)
		if f > sepWorst {
			sepWorst = f
		}
	}
	// Merged: composed exec (internal redistribution replaces the external
	// edge), on the combined processors with maximal replication.
	rm := model.SplitReplicas(combined, min, c.ModuleReplicable(lo, hi) && !opt.DisableReplication)
	if rm.Replicas == 0 {
		return false
	}
	f := c.ModuleExec(lo, hi).Eval(rm.ProcsPerInstance)
	if i > 0 {
		f += c.ECom[lo-1].Eval(effOf(i-1), rm.ProcsPerInstance)
	}
	if i+1 < len(raw)-1 {
		f += c.ECom[hi-1].Eval(rm.ProcsPerInstance, effOf(i+2))
	}
	f /= float64(rm.Replicas)
	return f < sepWorst
}

// splitImproves decides whether module i should be split at some internal
// edge, given its current processor count: it searches cut points and
// processor divisions whose worse half beats the module's current
// effective response. It returns the best cut task index and whether a
// profitable split exists.
func splitImproves(c *model.Chain, pl model.Platform, spans []model.Span, raw []int, i int, opt Options) (int, bool) {
	sp := spans[i]
	p := raw[i]
	min := c.ModuleMinProcs(sp.Lo, sp.Hi, pl.MemPerProc)
	rm := model.SplitReplicas(p, min, c.ModuleReplicable(sp.Lo, sp.Hi) && !opt.DisableReplication)
	if rm.Replicas == 0 {
		return 0, false
	}
	cur := c.ModuleExec(sp.Lo, sp.Hi).Eval(rm.ProcsPerInstance) / float64(rm.Replicas)
	bestCut, best := 0, cur
	for cut := sp.Lo + 1; cut < sp.Hi; cut++ {
		minA := c.ModuleMinProcs(sp.Lo, cut, pl.MemPerProc)
		minB := c.ModuleMinProcs(cut, sp.Hi, pl.MemPerProc)
		if minA < 0 || minB < 0 || minA+minB > p {
			continue
		}
		for pa := minA; pa <= p-minB; pa++ {
			pb := p - pa
			ra := model.SplitReplicas(pa, minA, c.ModuleReplicable(sp.Lo, cut) && !opt.DisableReplication)
			rb := model.SplitReplicas(pb, minB, c.ModuleReplicable(cut, sp.Hi) && !opt.DisableReplication)
			if ra.Replicas == 0 || rb.Replicas == 0 {
				continue
			}
			fa := c.ModuleExec(sp.Lo, cut).Eval(ra.ProcsPerInstance)
			fb := c.ModuleExec(cut, sp.Hi).Eval(rb.ProcsPerInstance)
			edge := c.ECom[cut-1].Eval(ra.ProcsPerInstance, rb.ProcsPerInstance)
			fa = (fa + edge) / float64(ra.Replicas)
			fb = (fb + edge) / float64(rb.Replicas)
			worse := fa
			if fb > worse {
				worse = fb
			}
			if worse < best {
				best, bestCut = worse, cut
			}
		}
	}
	return bestCut, bestCut != 0
}

// clusterFallback handles chains whose singleton clustering is infeasible
// (per-task minimums exceed the platform): search coarser clusterings from
// fewest modules upward and return the first that fits.
func clusterFallback(c *model.Chain, pl model.Platform, opt Options) ([]model.Span, error) {
	all := model.AllClusterings(c.Len())
	var best []model.Span
	for _, spans := range all {
		if _, _, err := assignRaw(c, pl, spans, opt); err == nil {
			if best == nil || len(spans) > len(best) {
				best = spans
			}
		}
	}
	if best == nil {
		return nil, fmt.Errorf("greedy: no clustering of %d tasks fits on %d processors",
			c.Len(), pl.Procs)
	}
	return best, nil
}
