package greedy

import (
	"math/rand"
	"reflect"
	"testing"

	"pipemap/internal/dp"
	"pipemap/internal/obs"
	"pipemap/internal/testutil"
)

// TestMapNeverBeatsDP is the end-to-end optimality bound: the full greedy
// pipeline (clustering refinement + assignment + backtracking) can never
// exceed the DP's provably optimal throughput on instances small enough to
// solve exactly.
func TestMapNeverBeatsDP(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	cfg := testutil.RandChainConfig{MinTasks: 2, MaxTasks: 5, MaxMinProcs: 2, AllowNonReplicable: true}
	trials := 0
	for trial := 0; trial < 60; trial++ {
		c, pl := testutil.RandChain(rng, cfg, 4+rng.Intn(5))
		g, gErr := Map(c, pl, Options{Backtrack: 2})
		d, dErr := dp.MapChain(c, pl, dp.Options{})
		if dErr != nil {
			// If the exact solver finds nothing feasible, greedy must not
			// claim success either.
			if gErr == nil {
				t.Errorf("trial %d: greedy found %v where DP found nothing", trial, &g)
			}
			continue
		}
		if gErr != nil {
			continue // greedy may miss feasible instances; that is allowed
		}
		trials++
		if g.Throughput() > d.Throughput()+1e-9 {
			t.Errorf("trial %d: greedy %.12f beats DP optimum %.12f\n g: %v\n d: %v",
				trial, g.Throughput(), d.Throughput(), &g, &d)
		}
		if err := g.Validate(pl); err != nil {
			t.Errorf("trial %d: greedy mapping invalid: %v", trial, err)
		}
	}
	if trials == 0 {
		t.Fatal("no feasible trials")
	}
}

// TestInstrumentedMapIdentical asserts the observability hooks cannot
// change what the heuristic computes, and that they record its phases.
func TestInstrumentedMapIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	cfg := testutil.DefaultRandChainConfig()
	for trial := 0; trial < 25; trial++ {
		c, pl := testutil.RandChain(rng, cfg, 4+rng.Intn(8))
		plain, errPlain := Map(c, pl, Options{Backtrack: 2})
		tr := obs.NewTracer()
		reg := obs.NewRegistry()
		inst, errInst := Map(c, pl, Options{Backtrack: 2, Trace: tr, Metrics: reg})
		if (errPlain == nil) != (errInst == nil) {
			t.Fatalf("trial %d: error disagreement: plain=%v instrumented=%v", trial, errPlain, errInst)
		}
		if errPlain != nil {
			continue
		}
		if !reflect.DeepEqual(plain.Modules, inst.Modules) {
			t.Errorf("trial %d: instrumentation changed the mapping:\nplain: %v\nobs:   %v",
				trial, &plain, &inst)
		}
		if tr.Len() == 0 {
			t.Errorf("trial %d: tracer collected no greedy spans", trial)
		}
		s := reg.Snapshot()
		if s.Counters["greedy.evals"] == 0 {
			t.Errorf("trial %d: no throughput evaluations counted: %+v", trial, s.Counters)
		}
		if s.Histograms["greedy.map_seconds"].Count == 0 {
			t.Errorf("trial %d: map timing histogram empty", trial)
		}
	}
}
