package greedy

import (
	"strings"
	"testing"

	"pipemap/internal/dp"
	"pipemap/internal/model"
	"pipemap/internal/testutil"
)

func TestCertifyTheorem1(t *testing.T) {
	c := &model.Chain{
		Tasks: []model.Task{
			{Name: "a", Exec: model.PolyExec{C2: 5}},
			{Name: "b", Exec: model.PolyExec{C2: 7}},
		},
		ICom: []model.CostFunc{model.ZeroExec()},
		ECom: []model.CommFunc{model.PolyComm{C1: 0.1, C4: 0.02, C5: 0.02}},
	}
	pl := model.Platform{Procs: 12}
	cert := Certify(c, pl)
	if !cert.Optimal || cert.Recommended.Variant != SlowestOnly {
		t.Fatalf("Theorem 1 chain not certified: %+v", cert)
	}
	if !strings.Contains(cert.Reason, "Theorem 1") {
		t.Errorf("reason %q does not cite Theorem 1", cert.Reason)
	}
	// The certificate must be honest: the recommended configuration
	// reaches the DP optimum.
	g, err := Assign(c, pl, model.Singletons(2), cert.Recommended)
	if err != nil {
		t.Fatal(err)
	}
	d, err := dp.AssignClustered(c, pl, model.Singletons(2), dp.Options{DisableReplication: true})
	if err != nil {
		t.Fatal(err)
	}
	// Certify's theorems assume no replication; compare accordingly.
	g2, err := Assign(c, pl, model.Singletons(2), Options{
		Variant: cert.Recommended.Variant, DisableReplication: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = g
	if !testutil.AlmostEqual(g2.Throughput(), d.Throughput(), 1e-9) {
		t.Errorf("certified config %g missed optimum %g", g2.Throughput(), d.Throughput())
	}
}

func TestCertifyTheorem2(t *testing.T) {
	c := &model.Chain{
		Tasks: []model.Task{
			{Name: "a", Exec: model.PolyExec{C1: 1, C2: 8, C3: 0.0005}},
			{Name: "b", Exec: model.PolyExec{C1: 1, C2: 6, C3: 0.0005}},
		},
		ICom: []model.CostFunc{model.PolyExec{C2: 0.01}},
		// Tiny 1/ps term: not monotone, but convex and dominated.
		ECom: []model.CommFunc{model.PolyComm{C1: 0.001, C2: 0.005, C3: 0.005}},
	}
	cert := Certify(c, model.Platform{Procs: 16})
	if cert.Analysis.MonotoneComm {
		t.Fatalf("chain unexpectedly monotone: %+v", cert.Analysis)
	}
	if !cert.Optimal || cert.Recommended.Backtrack == 0 {
		t.Fatalf("Theorem 2 chain not certified: %+v", cert)
	}
	if !strings.Contains(cert.Reason, "Theorem 2") {
		t.Errorf("reason %q does not cite Theorem 2", cert.Reason)
	}
}

func TestCertifyNoTheorem(t *testing.T) {
	cliff, err := model.NewTableCost(map[int]float64{1: 10, 9: 10, 10: 1})
	if err != nil {
		t.Fatal(err)
	}
	c := &model.Chain{
		Tasks: []model.Task{
			{Name: "a", Exec: model.PolyExec{C2: 8}},
			{Name: "b", Exec: cliff},
		},
		ICom: []model.CostFunc{model.ZeroExec()},
		ECom: []model.CommFunc{model.PolyComm{C2: 3, C3: 3}},
	}
	cert := Certify(c, model.Platform{Procs: 12})
	if cert.Optimal {
		t.Fatalf("pathological chain certified optimal: %+v", cert)
	}
	if !strings.Contains(cert.Reason, "heuristic") {
		t.Errorf("reason %q should warn the result is heuristic", cert.Reason)
	}
}
