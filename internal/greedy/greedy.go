// Package greedy implements the fast heuristic mapping algorithm from
// section 4 of Subhlok & Vondran (PPoPP 1995).
//
// The core procedure Greedy(T, P) starts every module at its minimum
// processor count and repeatedly identifies the bottleneck module — the
// one with the largest effective response time — and adds one processor to
// whichever of the bottleneck, its predecessor, or its successor improves
// throughput the most (the neighbours matter because response time
// includes communication, which depends on their processor counts). The
// best assignment ever seen is retained. The procedure runs in O(Pk) time.
//
// Two provable regimes from the paper are available as variants:
//
//   - SlowestOnly adds processors to the bottleneck module only; by
//     Theorem 1 this is optimal when communication time increases
//     monotonically with the processor counts involved.
//   - Bounded backtracking (Theorem 2): when the cost functions are convex
//     and computation dominates communication, the plain greedy
//     over-allocates at most two processors per module, so a bounded
//     retract-and-redistribute post-pass recovers the optimum.
//
// Clustering is decided in a first approximate phase (section 4.2): run
// the greedy assignment on singleton modules, sweep adjacent pairs testing
// whether merging them improves their combined response, re-test splits,
// then re-run the assignment on the final clustering.
package greedy

import (
	"fmt"
	"math"
	"time"

	"pipemap/internal/model"
	"pipemap/internal/obs"
)

// Variant selects which modules are candidates for the next processor.
type Variant int

const (
	// Neighbors is the paper's main procedure: try the bottleneck module
	// and both neighbours, keep the best.
	Neighbors Variant = iota
	// SlowestOnly adds processors only to the bottleneck module
	// (Theorem 1's provably optimal regime).
	SlowestOnly
)

// Options configures the greedy mapper.
type Options struct {
	// Variant selects the candidate rule; default Neighbors.
	Variant Variant
	// DisableReplication forces single-instance modules.
	DisableReplication bool
	// DisableClustering skips the clustering phase of Map and keeps every
	// task in its own module.
	DisableClustering bool
	// Backtrack enables the bounded retract-and-redistribute post-pass,
	// retracting up to this many processors from a module at a time
	// (Theorem 2 suggests 2). Zero disables backtracking.
	Backtrack int
	// MaxBacktrackRounds caps post-pass sweeps; zero means a small default.
	MaxBacktrackRounds int
	// Trace receives solver spans (assignment and clustering phases with
	// evaluation counts); nil disables tracing.
	Trace *obs.Tracer
	// Metrics receives solver counters; nil disables.
	Metrics *obs.Registry
}

// state evaluates candidate assignments for one module chain. It caches
// the per-module minimums, replicability and composed exec functions so a
// throughput evaluation is O(k) with no allocation.
type state struct {
	mc   *model.Chain
	pl   model.Platform
	min  []int
	repl []bool
	raw  []int
	// scratch for effective counts.
	eff  []int
	reps []int
	// evals counts throughput evaluations, the unit of greedy search work.
	evals int64
}

func newState(mc *model.Chain, pl model.Platform, opt Options) (*state, error) {
	k := mc.Len()
	s := &state{
		mc: mc, pl: pl,
		min:  make([]int, k),
		repl: make([]bool, k),
		raw:  make([]int, k),
		eff:  make([]int, k),
		reps: make([]int, k),
	}
	sum := 0
	for i := 0; i < k; i++ {
		min := mc.ModuleMinProcs(i, i+1, pl.MemPerProc)
		if min < 0 {
			return nil, fmt.Errorf("greedy: module %q does not fit in memory at any processor count",
				mc.Tasks[i].Name)
		}
		s.min[i] = min
		s.repl[i] = mc.Tasks[i].Replicable && !opt.DisableReplication
		s.raw[i] = min
		sum += min
	}
	if sum > pl.Procs {
		return nil, fmt.Errorf("greedy: chain needs at least %d processors, platform has %d",
			sum, pl.Procs)
	}
	return s, nil
}

// throughput evaluates the current raw assignment: 1 / max effective
// response. It also returns the bottleneck module index.
func (s *state) throughput() (float64, int) {
	s.evals++
	k := len(s.raw)
	for i := 0; i < k; i++ {
		r := model.SplitReplicas(s.raw[i], s.min[i], s.repl[i])
		s.eff[i] = r.ProcsPerInstance
		s.reps[i] = r.Replicas
	}
	worst, worstIdx := -1.0, 0
	for i := 0; i < k; i++ {
		f := s.mc.Tasks[i].Exec.Eval(s.eff[i])
		if i > 0 {
			f += s.mc.ECom[i-1].Eval(s.eff[i-1], s.eff[i])
		}
		if i < k-1 {
			f += s.mc.ECom[i].Eval(s.eff[i], s.eff[i+1])
		}
		f /= float64(s.reps[i])
		if f > worst {
			worst, worstIdx = f, i
		}
	}
	if worst <= 0 {
		return math.Inf(1), worstIdx
	}
	return 1 / worst, worstIdx
}

// tryAdd evaluates the throughput if one processor were added to module i.
func (s *state) tryAdd(i int) float64 {
	s.raw[i]++
	thr, _ := s.throughput()
	s.raw[i]--
	return thr
}

// used returns the total raw processors assigned.
func (s *state) used() int {
	sum := 0
	for _, p := range s.raw {
		sum += p
	}
	return sum
}

// Assign runs the greedy processor assignment on the given clustering of
// the chain (section 4.1). Pass model.Singletons(c.Len()) for per-task
// modules.
func Assign(c *model.Chain, pl model.Platform, spans []model.Span, opt Options) (model.Mapping, error) {
	if err := c.Validate(); err != nil {
		return model.Mapping{}, err
	}
	if err := pl.Validate(); err != nil {
		return model.Mapping{}, err
	}
	if !model.ValidClustering(spans, c.Len()) {
		return model.Mapping{}, fmt.Errorf("greedy: invalid clustering %v for %d tasks", spans, c.Len())
	}
	mc := model.CollapseClustering(c, spans)
	s, err := newState(mc, pl, opt)
	if err != nil {
		return model.Mapping{}, err
	}
	start := time.Now()
	raw := greedyLoop(s, opt)
	if opt.Backtrack > 0 {
		raw = backtrack(s, raw, opt)
	}
	if opt.Trace.Enabled() || opt.Metrics.Enabled() {
		opt.Trace.SpanArgs("greedy", "assign", 0, start, time.Since(start),
			map[string]any{"modules": len(spans), "P": pl.Procs, "evals": s.evals})
		opt.Metrics.Add("greedy.evals", s.evals)
		opt.Metrics.Inc("greedy.assigns")
		opt.Metrics.Observe("greedy.assign_seconds", time.Since(start).Seconds())
	}
	return buildMapping(c, spans, s, raw), nil
}

// greedyLoop is the paper's core loop: starting from the minimums already
// in s.raw, add processors one at a time and return the best raw
// assignment encountered.
func greedyLoop(s *state, opt Options) []int {
	best := append([]int(nil), s.raw...)
	bestThr, _ := s.throughput()
	k := len(s.raw)
	for s.used() < s.pl.Procs {
		_, bottleneck := s.throughput()
		// Candidate modules whose extra processor could shrink the
		// bottleneck response.
		var cands []int
		switch opt.Variant {
		case SlowestOnly:
			cands = []int{bottleneck}
		default:
			cands = make([]int, 0, 3)
			// Order (self, pred, succ) makes the bottleneck win ties.
			cands = append(cands, bottleneck)
			if bottleneck > 0 {
				cands = append(cands, bottleneck-1)
			}
			if bottleneck < k-1 {
				cands = append(cands, bottleneck+1)
			}
		}
		bestCand, bestCandThr := -1, -1.0
		for _, cand := range cands {
			if thr := s.tryAdd(cand); thr > bestCandThr {
				bestCand, bestCandThr = cand, thr
			}
		}
		s.raw[bestCand]++
		if bestCandThr > bestThr {
			bestThr = bestCandThr
			copy(best, s.raw)
		}
	}
	return best
}

// backtrack is the bounded retract-and-redistribute post-pass: repeatedly
// try removing up to opt.Backtrack processors from one module and greedily
// re-adding the freed processors; keep any strict improvement.
func backtrack(s *state, raw []int, opt Options) []int {
	rounds := opt.MaxBacktrackRounds
	if rounds <= 0 {
		rounds = 4
	}
	copy(s.raw, raw)
	best := append([]int(nil), raw...)
	bestThr := evalRaw(s, best)
	k := len(best)
	for round := 0; round < rounds; round++ {
		improved := false
		for j := 0; j < k; j++ {
			for d := 1; d <= opt.Backtrack && best[j]-d >= s.min[j]; d++ {
				cand := append([]int(nil), best...)
				cand[j] -= d
				copy(s.raw, cand)
				// Re-add the freed processors greedily.
				sub := Options{Variant: opt.Variant, DisableReplication: opt.DisableReplication}
				cand = greedyLoop(s, sub)
				if thr := evalRaw(s, cand); thr > bestThr+1e-15 {
					bestThr, best = thr, cand
					improved = true
				}
			}
		}
		if !improved {
			break
		}
	}
	copy(s.raw, best)
	return best
}

func evalRaw(s *state, raw []int) float64 {
	copy(s.raw, raw)
	thr, _ := s.throughput()
	return thr
}

// buildMapping converts a raw per-module assignment into a model.Mapping
// with the replication split applied.
func buildMapping(c *model.Chain, spans []model.Span, s *state, raw []int) model.Mapping {
	mods := make([]model.Module, len(spans))
	for i, sp := range spans {
		r := model.SplitReplicas(raw[i], s.min[i], s.repl[i])
		mods[i] = model.Module{Lo: sp.Lo, Hi: sp.Hi, Procs: r.ProcsPerInstance, Replicas: r.Replicas}
	}
	return model.Mapping{Chain: c, Modules: mods}
}
