package greedy

import (
	"math/rand"
	"testing"

	"pipemap/internal/dp"
	"pipemap/internal/model"
	"pipemap/internal/testutil"
)

func TestAssignNeverBeatsDP(t *testing.T) {
	// The DP is provably optimal, so greedy must never exceed it; on
	// well-behaved chains it should usually match it.
	rng := rand.New(rand.NewSource(11))
	cfg := testutil.DefaultRandChainConfig()
	matches := 0
	trials := 0
	for trial := 0; trial < 50; trial++ {
		c, pl := testutil.RandChain(rng, cfg, 6+rng.Intn(10))
		spans := model.Singletons(c.Len())
		g, err := Assign(c, pl, spans, Options{})
		if err != nil {
			continue
		}
		d, err := dp.AssignClustered(c, pl, spans, dp.Options{})
		if err != nil {
			continue
		}
		trials++
		if g.Throughput() > d.Throughput()+1e-9 {
			t.Errorf("trial %d: greedy %g beats DP %g\n g: %v\n d: %v",
				trial, g.Throughput(), d.Throughput(), &g, &d)
		}
		if testutil.AlmostEqual(g.Throughput(), d.Throughput(), 1e-9) {
			matches++
		}
		if err := g.Validate(pl); err != nil {
			t.Errorf("trial %d: greedy mapping invalid: %v", trial, err)
		}
	}
	if trials == 0 {
		t.Fatal("no feasible trials")
	}
	// The paper's observation: the heuristic is usually optimal. Require a
	// solid majority on random well-behaved chains.
	if matches*2 < trials {
		t.Errorf("greedy matched DP on only %d/%d trials", matches, trials)
	}
	t.Logf("greedy matched DP optimum on %d/%d feasible trials", matches, trials)
}

func TestAssignOptimalWithoutCommunication(t *testing.T) {
	// With zero communication cost the greedy algorithm is provably
	// optimal (section 3.1 notes the O(Pk) slowest-task argument).
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		k := 2 + rng.Intn(3)
		c := &model.Chain{
			Tasks: make([]model.Task, k),
			ICom:  make([]model.CostFunc, k-1),
			ECom:  make([]model.CommFunc, k-1),
		}
		for i := 0; i < k; i++ {
			c.Tasks[i] = model.Task{
				Name: string(rune('a' + i)),
				Exec: model.PolyExec{C2: 1 + rng.Float64()*10},
			}
		}
		for i := 0; i < k-1; i++ {
			c.ICom[i] = model.ZeroExec()
			c.ECom[i] = model.ZeroComm()
		}
		pl := model.Platform{Procs: 4 + rng.Intn(10)}
		spans := model.Singletons(k)
		g, err := Assign(c, pl, spans, Options{DisableReplication: true})
		if err != nil {
			t.Fatal(err)
		}
		d, err := dp.AssignClustered(c, pl, spans, dp.Options{DisableReplication: true})
		if err != nil {
			t.Fatal(err)
		}
		if !testutil.AlmostEqual(g.Throughput(), d.Throughput(), 1e-9) {
			t.Errorf("trial %d: greedy %g != optimal %g without comm", trial,
				g.Throughput(), d.Throughput())
		}
	}
}

func TestSlowestOnlyOptimalUnderMonotoneComm(t *testing.T) {
	// Theorem 1: with communication time monotonically increasing in the
	// processor counts, adding to the slowest task is optimal.
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 30; trial++ {
		k := 2 + rng.Intn(3)
		c := &model.Chain{
			Tasks: make([]model.Task, k),
			ICom:  make([]model.CostFunc, k-1),
			ECom:  make([]model.CommFunc, k-1),
		}
		for i := 0; i < k; i++ {
			c.Tasks[i] = model.Task{
				Name: string(rune('a' + i)),
				Exec: model.PolyExec{C2: 1 + rng.Float64()*10},
			}
		}
		for i := 0; i < k-1; i++ {
			c.ICom[i] = model.ZeroExec()
			// Monotone increasing: only fixed and per-processor terms.
			c.ECom[i] = model.PolyComm{
				C1: rng.Float64() * 0.1,
				C4: rng.Float64() * 0.05,
				C5: rng.Float64() * 0.05,
			}
		}
		pl := model.Platform{Procs: 4 + rng.Intn(10)}
		spans := model.Singletons(k)
		g, err := Assign(c, pl, spans, Options{Variant: SlowestOnly, DisableReplication: true})
		if err != nil {
			t.Fatal(err)
		}
		d, err := dp.AssignClustered(c, pl, spans, dp.Options{DisableReplication: true})
		if err != nil {
			t.Fatal(err)
		}
		if !testutil.AlmostEqual(g.Throughput(), d.Throughput(), 1e-9) {
			t.Errorf("trial %d: slowest-only %g != optimal %g under monotone comm\n g: %v\n d: %v",
				trial, g.Throughput(), d.Throughput(), &g, &d)
		}
	}
}

// pathologicalChain reproduces the paper's section 4 example: a task whose
// cost function has a cliff (no benefit from 2..9 processors, then a big
// drop at 10). Crossing the cliff requires a run of non-improving steps
// while the edge cost — which grows with the receiver's processor count —
// inflates the neighbour's response; the neighbour-greedy rule diverts
// processors away and never reaches the optimum.
func pathologicalChain(t *testing.T) *model.Chain {
	t.Helper()
	points := map[int]float64{1: 10}
	for p := 2; p <= 9; p++ {
		points[p] = 10
	}
	for p := 10; p <= 16; p++ {
		points[p] = 1
	}
	cliff, err := model.NewTableCost(points)
	if err != nil {
		t.Fatal(err)
	}
	return &model.Chain{
		Tasks: []model.Task{
			{Name: "smooth", Exec: model.PolyExec{C2: 8}},
			{Name: "cliff", Exec: cliff},
		},
		ICom: []model.CostFunc{model.ZeroExec()},
		ECom: []model.CommFunc{model.PolyComm{C5: 0.3}},
	}
}

func TestGreedyPathologyAndDPRescue(t *testing.T) {
	c := pathologicalChain(t)
	pl := model.Platform{Procs: 12}
	spans := model.Singletons(2)
	g, err := Assign(c, pl, spans, Options{DisableReplication: true})
	if err != nil {
		t.Fatal(err)
	}
	d, err := dp.AssignClustered(c, pl, spans, dp.Options{DisableReplication: true})
	if err != nil {
		t.Fatal(err)
	}
	// DP must find the cliff configuration: cliff task at 10 processors.
	if d.Modules[1].Procs < 10 {
		t.Errorf("DP missed the cliff: %v", &d)
	}
	if g.Throughput() > d.Throughput()+1e-9 {
		t.Errorf("greedy %g beats DP %g", g.Throughput(), d.Throughput())
	}
	// The plain greedy gets stuck below the cliff while DP crosses it.
	if g.Modules[1].Procs >= 10 {
		t.Errorf("greedy unexpectedly crossed the cliff: %v", &g)
	}
	if g.Throughput() >= d.Throughput()-1e-9 {
		t.Errorf("pathology did not separate greedy %g from DP %g", g.Throughput(), d.Throughput())
	}
	// Theorem 1's slowest-only variant is not distracted by the neighbour
	// moves and does cross the cliff here.
	so, err := Assign(c, pl, spans, Options{Variant: SlowestOnly, DisableReplication: true})
	if err != nil {
		t.Fatal(err)
	}
	if so.Throughput() < d.Throughput()-1e-9 {
		t.Errorf("slowest-only %g missed the DP optimum %g", so.Throughput(), d.Throughput())
	}
}

func TestBacktrackImproves(t *testing.T) {
	// Backtracking may recover part of the pathology; at minimum it must
	// never hurt.
	c := pathologicalChain(t)
	pl := model.Platform{Procs: 12}
	spans := model.Singletons(2)
	plain, err := Assign(c, pl, spans, Options{DisableReplication: true})
	if err != nil {
		t.Fatal(err)
	}
	bt, err := Assign(c, pl, spans, Options{DisableReplication: true, Backtrack: 2})
	if err != nil {
		t.Fatal(err)
	}
	if bt.Throughput() < plain.Throughput()-1e-9 {
		t.Errorf("backtracking hurt: %g < %g", bt.Throughput(), plain.Throughput())
	}
}

func TestAssignErrors(t *testing.T) {
	c := pathologicalChain(t)
	if _, err := Assign(c, model.Platform{Procs: 0}, model.Singletons(2), Options{}); err == nil {
		t.Error("zero processors accepted")
	}
	if _, err := Assign(c, model.Platform{Procs: 8}, []model.Span{{Lo: 0, Hi: 1}}, Options{}); err == nil {
		t.Error("invalid clustering accepted")
	}
	heavy := &model.Chain{
		Tasks: []model.Task{
			{Name: "x", Exec: model.PolyExec{C2: 1}, Mem: model.Memory{Data: 1e6}},
		},
	}
	if _, err := Assign(heavy, model.Platform{Procs: 4, MemPerProc: 10}, model.Singletons(1), Options{}); err == nil {
		t.Error("memory-infeasible chain accepted")
	}
	bad := &model.Chain{}
	if _, err := Assign(bad, model.Platform{Procs: 4}, nil, Options{}); err == nil {
		t.Error("invalid chain accepted")
	}
}

func TestAssignTracksBestEverSeen(t *testing.T) {
	// With strong per-processor overheads the best assignment appears
	// before all processors are consumed; greedy must report that one, not
	// the final saturated state.
	c := &model.Chain{
		Tasks: []model.Task{
			{Name: "a", Exec: model.PolyExec{C2: 2, C3: 0.5}},
			{Name: "b", Exec: model.PolyExec{C2: 2, C3: 0.5}},
		},
		ICom: []model.CostFunc{model.ZeroExec()},
		ECom: []model.CommFunc{model.ZeroComm()},
	}
	pl := model.Platform{Procs: 20}
	m, err := Assign(c, pl, model.Singletons(2), Options{DisableReplication: true})
	if err != nil {
		t.Fatal(err)
	}
	if m.TotalProcs() == pl.Procs {
		t.Errorf("greedy returned a saturated assignment despite overheads: %v", &m)
	}
	// f(p) = 2/p + 0.5p is minimized at p=2 (f=2.0).
	if m.Modules[0].Procs != 2 || m.Modules[1].Procs != 2 {
		t.Errorf("assignment = %v, want 2/2", &m)
	}
}

func TestBacktrackRoundsOption(t *testing.T) {
	c := pathologicalChain(t)
	pl := model.Platform{Procs: 12}
	spans := model.Singletons(2)
	// Explicit round cap must not panic or regress the plain result.
	capped, err := Assign(c, pl, spans, Options{
		DisableReplication: true, Backtrack: 2, MaxBacktrackRounds: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Assign(c, pl, spans, Options{DisableReplication: true})
	if err != nil {
		t.Fatal(err)
	}
	if capped.Throughput() < plain.Throughput()-1e-9 {
		t.Errorf("capped backtracking regressed: %g < %g",
			capped.Throughput(), plain.Throughput())
	}
}
